// Mixed fleet: the heterogeneous deployment the profile builder exists
// for. One shared medium carries two device classes — mains-powered CSMA
// backbone routers that can afford an always-on radio and fast DODAG
// beaconing, and battery-powered LPL leaves that duty-cycle. The leaves
// push readings to the border router; the report shows the per-class
// radio-on divergence a homogeneous Config cannot express (E13 measures
// the same effect against both homogeneous baselines).
//
//	go run ./examples/mixed-fleet
package main

import (
	"fmt"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
)

func main() {
	// Two device classes. The backbone overrides the stack-wide RPL
	// config with fast fixed-rate beaconing so sleeping leaves catch a
	// DIO quickly; the leaves wake every 250 ms.
	backbone := core.Profile{
		Name: "backbone",
		MAC:  core.MACCSMA,
		Router: &rpl.Config{
			Trickle: rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 1, K: 1 << 30},
		},
	}
	leaf := core.Profile{
		Name: "leaf",
		MAC:  core.MACLPL,
		LPL:  mac.LPLConfig{WakeInterval: 250 * time.Millisecond},
	}

	// A short plant spine: border router, two backbone routers, and two
	// leaf sensors hung off each backbone position.
	topo := core.Topology{
		{Pos: radio.Position{}, Profile: "backbone"},
		{Pos: radio.Position{X: 15}, Profile: "backbone"},
		{Pos: radio.Position{X: 30}, Profile: "backbone"},
		{Pos: radio.Position{X: 15, Y: 12}, Profile: "leaf"},
		{Pos: radio.Position{X: 15, Y: -12}, Profile: "leaf"},
		{Pos: radio.Position{X: 30, Y: 12}, Profile: "leaf"},
		{Pos: radio.Position{X: 30, Y: -12}, Profile: "leaf"},
	}

	d := core.NewStack(core.Stack{
		Seed:     99,
		Profiles: []core.Profile{backbone, leaf},
		Topology: topo,
	})

	ok, took := d.RunUntilConverged(2 * time.Minute)
	fmt.Printf("mixed DODAG converged: %v (in %v of virtual time)\n", ok, took)

	// Leaves report upward every 10 s; the root counts arrivals.
	delivered := 0
	d.Root().Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
		delivered++
	})
	for _, n := range d.NodesByProfile("leaf") {
		n := n
		d.K.Every(10*time.Second, 5*time.Second, func() {
			_ = n.Router.SendUp(lowpan.ProtoRaw, []byte("reading"))
		})
	}

	start := d.K.Now()
	d.K.RunFor(5 * time.Minute)
	span := d.K.Now() - start

	fmt.Printf("leaf readings delivered to the border router: %d\n", delivered)
	for _, class := range []string{"backbone", "leaf"} {
		var on time.Duration
		nodes := d.NodesByProfile(class)
		for _, n := range nodes {
			on += d.M.Energy().Ledger(int(n.ID)).RadioOn()
		}
		frac := float64(on) / float64(len(nodes)) / float64(span)
		if frac > 1 {
			frac = 1 // always-on MACs accrue idle listening over tx airtime
		}
		fmt.Printf("class %-8s (%d nodes): radio on %5.1f%% of the run\n",
			class, len(nodes), frac*100)
	}
}
