// HVAC building: the paper's §V-B worked example as a runnable program.
// Three control policies condition the same simulated office week; the
// safety monitor accounts soft-margin violations as a continuous
// quantity, and a provider contract converts energy savings and comfort
// penalties into revenue.
//
//	go run ./examples/hvac-building
package main

import (
	"fmt"
	"math/rand"
	"time"

	"iiotds/internal/hvac"
	"iiotds/internal/safety"
)

func main() {
	cfg := hvac.DefaultSimConfig()
	cfg.Days = 7

	fmt.Printf("simulating %d days of building operation per policy\n\n", cfg.Days)

	// The provider's §V-B contract: paid for energy saved against the
	// strict baseline, penalized for discomfort.
	const (
		pricePerKWh      = 0.20
		penaltyPerDegMin = 0.002
	)

	var baseline float64
	for i, c := range hvac.Controllers() {
		res := hvac.Simulate(c, cfg)
		if i == 0 {
			baseline = res.EnergyKWh
		}
		revenue := pricePerKWh*(baseline-res.EnergyKWh) - penaltyPerDegMin*res.SeverityDegMin
		fmt.Println(res.String())
		fmt.Printf("%-10s contract revenue: %+.2f\n\n", c.Name(), revenue)
	}

	// The same margins expressed through the safety monitor, driven by
	// the occupancy-aware controller at one-minute samples.
	fmt.Println("--- safety-monitor view (occupancy-aware policy, 1 day) ---")
	mon := safety.NewMonitor()
	zone := hvac.DefaultZone(18)
	occ := hvac.NewOccupancy(rand.New(rand.NewSource(1)))
	ctl := hvac.OccupancyAwareController{}
	w := cfg.Weather
	for t := time.Duration(0); t < 24*time.Hour; t += time.Minute {
		occupied := occ.Occupied(t)
		if occupied {
			_ = mon.SetBand("zone/temp", safety.ComfortBand(hvac.Setpoint, 1, 6))
		} else {
			_ = mon.SetBand("zone/temp", safety.HardOnlyBand(10, 35))
		}
		u := ctl.Control(zone.TempC, occupied, t, occ)
		zone.Step(time.Minute, u, w.OutsideC(t), 0)
		mon.Observe("zone/temp", t, zone.TempC)
	}
	rep := mon.ReportOf("zone/temp")
	fmt.Printf("soft violations: %d episodes, %v outside band, severity %.0f °C·s\n",
		rep.SoftViolations, rep.SoftTime, rep.SoftSeverity)
	fmt.Printf("hard violations: %d (must stay 0 — that is the safety part)\n", rep.HardViolations)
}
