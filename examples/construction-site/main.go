// Construction site: the paper's §IV-C administrative-scalability
// scenario — several contractors' sensing systems share one physical
// site and one radio band. The example shows delivery collapsing on a
// shared channel, then two remedies: an agreed spectrum plan, and
// decentralized adaptive channel hopping that needs no agreement at all.
//
//	go run ./examples/construction-site
package main

import (
	"fmt"
	"math"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/spectrum"
)

type contractor struct {
	name     string
	macs     []*mac.CSMA
	sent, ok int
	failures metrics.Counter
}

func buildSite(k *sim.Kernel, m *radio.Medium, plan spectrum.Plan, names []string) []*contractor {
	const leaves = 6
	var out []*contractor
	var nextID radio.NodeID
	for ci, name := range names {
		c := &contractor{name: name, macs: make([]*mac.CSMA, leaves+1)}
		out = append(out, c)
		center := radio.Position{X: 15 + float64(ci)*12, Y: 25}
		for j := 0; j <= leaves; j++ {
			id := nextID
			nextID++
			pos := center
			if j > 0 {
				ang := 2 * math.Pi * float64(j) / leaves
				pos = radio.Position{X: center.X + 10*math.Cos(ang), Y: center.Y + 10*math.Sin(ang)}
			}
			idx := j
			m.Attach(id, pos, radio.ReceiverFunc(func(f radio.Frame) { c.macs[idx].RadioReceive(f) }))
			c.macs[j] = mac.NewCSMA(m, id, mac.CSMAConfig{
				Config: mac.Config{Channel: plan.ChannelOf(name), Tenant: name},
			})
			c.macs[j].Start()
		}
		sink := c.macs[0]
		_ = sink
		sinkID := nextID - radio.NodeID(leaves+1)
		payload := make([]byte, 48)
		for j := 1; j <= leaves; j++ {
			j := j
			k.Every(200*time.Millisecond, 100*time.Millisecond, func() {
				if c.macs[j].QueueLen() > 4 {
					return
				}
				c.sent++
				c.macs[j].Send(sinkID, payload, func(ok bool) {
					if ok {
						c.ok++
					} else {
						c.failures.Inc()
					}
				})
			})
		}
	}
	return out
}

func run(regime string, names []string) {
	k := sim.New(99)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, radio.DefaultParams(), reg)

	var plan spectrum.Plan
	switch regime {
	case "coordinated":
		plan = spectrum.CoordinatedPlan(names)
	default:
		plan = spectrum.UncoordinatedPlan(names)
	}
	site := buildSite(k, m, plan, names)

	var hoppers []*spectrum.Hopper
	if regime == "adaptive" {
		for _, c := range site {
			c := c
			h := spectrum.NewHopper(k, c.name, spectrum.DefaultChannel, &c.failures,
				spectrum.RetunerFunc(func(_ string, ch uint8) {
					for _, mc := range c.macs {
						mc.Retune(ch)
					}
				}),
				spectrum.HopperConfig{Interval: 10 * time.Second, CollisionThreshold: 2})
			h.Start()
			hoppers = append(hoppers, h)
		}
	}

	k.RunFor(3 * time.Minute)

	fmt.Printf("\n%s (%d contractors):\n", regime, len(names))
	for i, c := range site {
		ch := plan.ChannelOf(c.name)
		if regime == "adaptive" {
			ch = hoppers[i].Current()
		}
		fmt.Printf("  %-10s ch%-3d delivered %5d/%5d (%.1f%%)\n",
			c.name, ch, c.ok, c.sent, 100*float64(c.ok)/float64(c.sent))
	}
	fmt.Printf("  cross-tenant collisions: %.0f, retries: %.0f\n",
		reg.Counter("radio.collisions_cross_tenant").Value(),
		reg.CounterWith("mac.retries", metrics.L("mac", "csma")).Value())
}

func main() {
	names := []string{"concrete", "electrical", "plumbing", "steel", "surveying"}
	fmt.Println("five contractors share one construction site and one 2.4 GHz band")
	for _, regime := range []string{"uncoordinated", "coordinated", "adaptive"} {
		run(regime, names)
	}
}
