// Quickstart: the smallest complete use of the library — emulate a
// 9-node industrial sensing network, run a continuous aggregate query,
// and read one sensor over CoAP through the mesh.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/coap"
	"iiotds/internal/core"
	"iiotds/internal/radio"
)

func main() {
	// 1. Build a deployment: a 3×3 grid of devices 15 m apart; node 0
	//    is the border router. Every node is one device class ("sensor")
	//    with a CoAP endpoint; see examples/mixed-fleet for a deployment
	//    that composes several classes.
	d := core.NewStack(core.Stack{
		Seed: 42,
		Profiles: []core.Profile{
			{Name: "sensor", WithCoAP: true},
		},
		Topology: core.Uniform("sensor", radio.GridTopology(9, 15)),
	})

	// 2. Give every field device a sensor.
	for i := 1; i < 9; i++ {
		i := i
		d.Nodes[i].SetSampler(func(attr string) (float64, bool) {
			return 20 + float64(i), attr == "temp"
		})
	}

	// 3. Let the routing protocol self-organize.
	ok, took := d.RunUntilConverged(2 * time.Minute)
	fmt.Printf("mesh converged: %v (in %v of virtual time)\n", ok, took)

	// 4. Run a TinyDB-style aggregate query from the border router.
	d.Root().Agg.OnResult = func(r agg.Result) {
		fmt.Printf("epoch %d: AVG(temp) = %.2f across %d nodes\n", r.EpochNo, r.Value, r.Count)
	}
	d.Root().Agg.RunQuery(agg.Query{ID: 1, Fn: agg.Avg, Attr: "temp", Epoch: 10 * time.Second, MaxDepth: 6})
	d.K.RunFor(45 * time.Second)

	// 5. Read one device directly over CoAP, multi-hop through the mesh.
	d.Nodes[8].Server.Resource("sensors/temp").Get(func(string, *coap.Message) *coap.Message {
		return coap.TextResponse("28.00")
	})
	d.Root().CoAP.Get(d.Nodes[8].Addr(), "sensors/temp", func(m *coap.Message, err error) {
		if err != nil {
			fmt.Println("CoAP GET failed:", err)
			return
		}
		fmt.Printf("CoAP GET node 8 /sensors/temp -> [%s] %s °C\n", m.Code, m.Payload)
	})
	d.K.RunFor(30 * time.Second)
}
