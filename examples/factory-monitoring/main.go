// Factory monitoring: a plant telemetry scenario exercising the three-
// tier architecture (Fig. 1) — heterogeneous legacy devices behind
// protocol adapters at the edge, a mesh carrying merged aggregates to
// the border router, a pub/sub application tier with an alerting rule,
// and a time-series storage tier.
//
//	go run ./examples/factory-monitoring
package main

import (
	"fmt"
	"time"

	"iiotds/internal/adapter"
	"iiotds/internal/agg"
	"iiotds/internal/bus"
	"iiotds/internal/core"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
)

func main() {
	// The plant floor: 25 mesh nodes monitoring presses and conveyors,
	// all one device class, plus the broker/storage backend tiers.
	d := core.NewStack(core.Stack{
		Seed:        7,
		Profiles:    []core.Profile{{Name: "zone-sensor"}},
		Topology:    core.Uniform("zone-sensor", radio.GridTopology(25, 15)),
		WithBackend: true,
	})
	defer d.Close()

	// Legacy integration at the gateway: a Modbus press controller is
	// decoded through its adapter into canonical observations.
	mb := adapter.NewModbusAdapter()
	mbMap := adapter.ModbusMap{
		"bearing_temp": {Register: 200, Scale: 10, Unit: "C"},
		"rpm":          {Register: 201, Scale: 1, Unit: "rpm"},
	}
	mb.RegisterModel("press-ctl", mbMap)
	press := &registry.Device{
		ID: "press-7", Vendor: "Siematic", Model: "press-ctl",
		Protocol: adapter.ProtocolModbus, Tenant: "plant-a",
	}
	pressEmu := adapter.NewModbusEmulator(press, mbMap)
	if err := d.Registry.Register(press); err != nil {
		panic(err)
	}

	// Mesh sensors: vibration per zone.
	for i := 1; i < 25; i++ {
		i := i
		d.Nodes[i].SetSampler(func(attr string) (float64, bool) {
			if attr != "vibration" {
				return 0, false
			}
			v := 1.0 + 0.1*float64(i%5) + d.K.Rand().Float64()*0.2
			if d.K.Now() > 3*time.Minute && i == 13 {
				v += 4 // a bearing starts failing in zone 13
			}
			return v, true
		})
	}

	ok, _ := d.RunUntilConverged(3 * time.Minute)
	fmt.Println("plant mesh converged:", ok)

	// Application tier: alert when zone vibration exceeds threshold.
	alerts := 0
	if _, err := d.Bus.Subscribe("obs/mesh/vibration_max", func(m bus.Message) {
		var v float64
		fmt.Sscanf(string(m.Payload), "%f", &v)
		if v > 4 {
			alerts++
			fmt.Printf("ALERT: plant vibration max %.2f g — dispatch maintenance\n", v)
		}
	}); err != nil {
		panic(err)
	}

	// Border router lifts each epoch's MAX(vibration) into the backend.
	d.Root().Agg.OnResult = func(r agg.Result) {
		_ = d.PublishObservation(registry.Observation{
			Device: "mesh", Cap: "vibration_max", Value: r.Value, Unit: "g", At: d.K.Now(),
		})
	}
	d.Root().Agg.RunQuery(agg.Query{ID: 9, Fn: agg.Max, Attr: "vibration", Epoch: 15 * time.Second, MaxDepth: 10})

	// Poll the legacy press periodically into the same backend.
	d.K.Every(30*time.Second, 0, func() {
		pressEmu.SetState("bearing_temp", 55+10*d.K.Rand().Float64())
		pressEmu.SetState("rpm", 880+40*d.K.Rand().Float64())
		obs, err := mb.Decode(press, pressEmu.Frame(), d.K.Now())
		if err != nil {
			return
		}
		for _, o := range obs {
			_ = d.PublishObservation(o)
		}
	})

	// Run one factory shift (compressed).
	for i := 0; i < 6; i++ {
		d.K.RunFor(time.Minute)
		time.Sleep(10 * time.Millisecond) // let the bus goroutines drain
	}

	fmt.Println("\n--- shift report ---")
	for _, name := range d.TSDB.Names() {
		s := d.TSDB.Series(name)
		if mean, ok := s.Mean(); ok {
			last, _ := s.Last()
			fmt.Printf("%-28s samples=%-4d mean=%7.2f last=%7.2f\n", name, s.Len(), mean, last.V)
		}
	}
	fmt.Printf("alerts raised: %d\n", alerts)
	fmt.Printf("network energy: mean %.2f J/node\n", d.M.Energy().MeanTotalJoules())
}
