// Partition tolerance: the §V-C scenario — an always-on plant store that
// must keep accepting sensor state during a network partition. A CP
// (quorum) replica set and an AP (CRDT + gossip) replica set face the
// same partition; the CAP theorem decides who stays available, and
// anti-entropy decides how fast the AP side converges after the heal.
//
//	go run ./examples/partition-tolerance
package main

import (
	"fmt"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/gossip"
	"iiotds/internal/sim"
	"iiotds/internal/store"
)

func runMode(mode store.Mode) {
	k := sim.New(11)
	net := gossip.NewNetwork()
	names := []string{"line-1", "line-2", "office", "cloud-a", "cloud-b"}
	replicas := make(map[string]*store.Replica, len(names))
	for i, n := range names {
		replicas[n] = store.NewReplica(net.Attach(n), clock.Kernel{K: k}, store.ReplicaConfig{
			Mode:        mode,
			ClusterSize: len(names),
			Gossip:      gossip.Config{Interval: time.Second, Seed: int64(i + 1)},
		})
	}

	okOps, failedOps := 0, 0
	put := func(r string, key, val string) {
		replicas[r].Put(key, []byte(val), func(err error) {
			if err != nil {
				failedOps++
			} else {
				okOps++
			}
		})
	}

	fmt.Printf("\n=== %s store ===\n", mode)
	put("line-1", "valve-7", "open")
	k.RunFor(5 * time.Second)

	fmt.Println("backhaul fails: {line-1, line-2} cut off from {office, cloud-a, cloud-b}")
	net.SetPartition([]string{"line-1", "line-2"}, []string{"office", "cloud-a", "cloud-b"})

	// The plant side MUST keep recording state to operate (§V-C).
	put("line-1", "valve-7", "closed")
	put("line-2", "press-temp", "82.5")
	put("office", "shift", "night") // majority side
	k.RunFor(30 * time.Second)
	fmt.Printf("during partition: %d ops succeeded, %d unavailable\n", okOps, failedOps)
	fmt.Printf("  line-1 sees valve-7=%q, office sees valve-7=%q\n",
		replicas["line-1"].LocalValue("valve-7"), replicas["office"].LocalValue("valve-7"))

	fmt.Println("backhaul restored")
	net.Heal()
	k.RunFor(30 * time.Second)
	fmt.Printf("after heal: every replica sees valve-7=%q, press-temp=%q, shift=%q\n",
		replicas["cloud-b"].LocalValue("valve-7"),
		replicas["office"].LocalValue("press-temp"),
		replicas["line-1"].LocalValue("shift"))
	for _, r := range replicas {
		r.Stop()
	}
}

func main() {
	runMode(store.ModeCP)
	runMode(store.ModeAP)
	fmt.Println("\nthe CP run shows Brewer's theorem as operational pain; the AP run")
	fmt.Println("shows the eventual-consistency design §V-C prescribes for always-on plants")
}
