// Package iiotds's root benchmark suite: one testing.B entry per
// experiment in DESIGN.md §3 (each benchmark iteration regenerates that
// experiment's table at Quick scale; run cmd/iiotbench -scale full for
// the paper-scale sweeps), plus micro-benchmarks of the hot codec paths.
//
//	go test -bench=. -benchmem
package main

import (
	"testing"
	"time"

	"iiotds/internal/adapter"
	"iiotds/internal/coap"
	"iiotds/internal/crdt"
	"iiotds/internal/exp"
	"iiotds/internal/lowpan"
	"iiotds/internal/netbuf"
	"iiotds/internal/registry"
	"iiotds/internal/security"
)

// benchExperiment runs one experiment harness per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := runner.Run(exp.Quick)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1Interop(b *testing.B)          { benchExperiment(b, "E1") }
func BenchmarkE2SizeScalability(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3DutyCycleLatency(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4Funneling(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5RNFD(b *testing.B)             { benchExperiment(b, "E5") }
func BenchmarkE6Coexistence(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Redundancy(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8HVAC(b *testing.B)             { benchExperiment(b, "E8") }
func BenchmarkE9Partitions(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10SelfHealing(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Security(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE13MixedFleet(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14ChurnSoak(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15CityScale(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16StoreIngest(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkF1ThreeTier(b *testing.B)        { benchExperiment(b, "F1") }

// --- micro-benchmarks of the per-message hot paths ---

func BenchmarkCoAPMarshal(b *testing.B) {
	m := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET, MessageID: 7, Token: []byte{1, 2, 3, 4}}
	m.SetPath("sensors/temp/1")
	m.AddUintOption(coap.OptContentFormat, coap.FormatJSON)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoAPUnmarshal(b *testing.B) {
	m := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET, MessageID: 7, Token: []byte{1, 2, 3, 4}}
	m.SetPath("sensors/temp/1")
	data, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := coap.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowpanFragmentReassemble(b *testing.B) {
	a := lowpan.NewAdaptation(lowpan.Config{Compress: true})
	a.UsePool(netbuf.NewPool())
	payload := make([]byte, 512)
	d := &lowpan.Datagram{Src: 1, Dst: 2, Proto: lowpan.ProtoCoAP, Payload: payload}
	var scratch []*netbuf.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frames, err := a.Encode(d, scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
		scratch = frames[:0]
		var got *lowpan.Datagram
		for _, f := range frames {
			g, err := a.Feed(0, 1, f.Bytes())
			if err != nil {
				b.Fatal(err)
			}
			if g != nil {
				got = g
			}
			f.Release()
		}
		if got == nil {
			b.Fatal("no reassembly")
		}
	}
}

func BenchmarkCRDTORSetMerge(b *testing.B) {
	mk := func(id crdt.ReplicaID) *crdt.ORSet {
		s := crdt.NewORSet(id)
		for i := 0; i < 64; i++ {
			s.Add(string(rune('a' + i%26)))
		}
		return s
	}
	x, y := mk("x"), mk("y")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Copy()
		c.Merge(y)
	}
}

func BenchmarkAdapterModbusDecode(b *testing.B) {
	mb := adapter.NewModbusAdapter()
	mbMap := adapter.ModbusMap{
		"temp": {Register: 100, Scale: 100, Unit: "C"},
		"rpm":  {Register: 101, Scale: 1, Unit: "rpm"},
	}
	mb.RegisterModel("plc-7", mbMap)
	dev := &registry.Device{ID: "d", Model: "plc-7", Protocol: adapter.ProtocolModbus}
	emu := adapter.NewModbusEmulator(dev, mbMap)
	emu.SetState("temp", 36.5)
	emu.SetState("rpm", 900)
	frame := emu.Frame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mb.Decode(dev, frame, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks for design choices DESIGN.md calls out ---

// BenchmarkAblationHeaderCompression quantifies what IPHC-style header
// compression buys per datagram: bytes on the wire and frame count for a
// typical CoAP-sized payload.
func BenchmarkAblationHeaderCompression(b *testing.B) {
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"compressed", true}, {"uncompressed", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			a := lowpan.NewAdaptation(lowpan.Config{Compress: mode.compress})
			a.UsePool(netbuf.NewPool())
			d := &lowpan.Datagram{Src: 1, Dst: 2, Proto: lowpan.ProtoCoAP, Payload: make([]byte, 80)}
			var bytesOut, frames int
			var scratch []*netbuf.Buffer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fs, err := a.Encode(d, scratch[:0])
				if err != nil {
					b.Fatal(err)
				}
				scratch = fs[:0]
				frames += len(fs)
				for _, f := range fs {
					bytesOut += len(f.Bytes())
					f.Release()
				}
			}
			b.ReportMetric(float64(bytesOut)/float64(b.N), "bytes/datagram")
			b.ReportMetric(float64(frames)/float64(b.N), "frames/datagram")
		})
	}
}

// BenchmarkAblationAEADOverhead quantifies the per-frame cost of link
// protection (E11's overhead, isolated from the radio).
func BenchmarkAblationAEADOverhead(b *testing.B) {
	ks := security.NewKeyStore()
	if err := ks.Set(1, make([]byte, 16)); err != nil {
		b.Fatal(err)
	}
	tx, err := security.NewChannel(ks, 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	var out int
	for i := 0; i < b.N; i++ {
		out += len(tx.Seal(payload, nil))
	}
	b.ReportMetric(float64(out)/float64(b.N)-float64(len(payload)), "overhead-bytes/frame")
}
