module iiotds

go 1.22
