package coap

import "iiotds/internal/clock"

// KernelScheduler adapts the simulation kernel to the Scheduler
// interface, so CoAP exchanges inside the emulation run on virtual time.
type KernelScheduler = clock.Kernel
