package coap

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"iiotds/internal/netbuf"
)

// HandlerFunc serves one request method on one resource. It returns the
// response message (Code, Payload, Options); the message layer fills in
// type, token, and IDs. Returning nil suppresses the response.
type HandlerFunc func(from string, req *Message) *Message

// DefaultMaxObservers bounds observer state per resource when no explicit
// limit is configured — sized for constrained nodes. Gateways raise it
// via Server.SetObserverLimit / Resource.SetMaxObservers.
const DefaultMaxObservers = 64

// defaultConfirmEvery makes every n-th notification confirmable so dead
// observers are eventually detected and dropped.
const defaultConfirmEvery = 8

// obsShards is the number of observer shards per resource. Sharding keys
// on the (addr, token) registration key, so lock contention and fan-out
// work spread evenly; it must be a power of two.
const obsShards = 16

type observer struct {
	addr  string
	token []byte
	// lastMID holds the message ID of the most recent notification sent
	// to this observer (low 16 bits), read by RST handling. It is atomic
	// because Notify stores it outside the shard lock while
	// removeObserverByMID reads it under the lock.
	lastMID atomic.Uint32
}

// obsShard is one lock-striped slice of a resource's observer table.
type obsShard struct {
	mu sync.Mutex
	m  map[string]*observer
	n  atomic.Int64 // len(m), readable without the lock
}

// Resource is one node in the server's resource tree.
type Resource struct {
	path   string
	server *Server

	mu         sync.Mutex // guards rt, observable, handlers
	rt         string     // resource type for /.well-known/core
	observable bool
	handlers   map[Code]HandlerFunc

	obsSeq atomic.Uint32
	nobs   atomic.Int64 // total observers across shards
	maxObs atomic.Int64 // per-resource cap; 0 = server default
	shards [obsShards]obsShard
}

// Server is a CoAP origin server: a set of resources plus the CoRE
// link-format discovery document (/.well-known/core, RFC 6690), which is
// what the registry layer uses for device discovery.
type Server struct {
	conn *Conn

	mu        sync.Mutex
	resources map[string]*Resource

	maxObs       atomic.Int64 // default per-resource cap; 0 = DefaultMaxObservers
	confirmEvery atomic.Int64 // 0 = defaultConfirmEvery, <0 = never confirmable
	rejectMaxAge atomic.Int64 // Max-Age (seconds) on 5.03 admission rejects; 0 = none

	pool atomic.Pointer[notifyPool]
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{resources: make(map[string]*Resource)}
}

// SetObserverLimit sets the default per-resource observer cap (admission
// control). n <= 0 restores DefaultMaxObservers.
func (s *Server) SetObserverLimit(n int) {
	if n < 0 {
		n = 0
	}
	s.maxObs.Store(int64(n))
}

// SetRejectMaxAge makes observe-admission rejects (5.03) carry a Max-Age
// option of age seconds, hinting clients when to retry. 0 disables the
// option (the default, and the constrained-node behavior).
func (s *Server) SetRejectMaxAge(age uint32) { s.rejectMaxAge.Store(int64(age)) }

// SetConfirmEvery makes every n-th notification per resource confirmable
// (dead-observer detection). n == 0 restores the default (8); n < 0
// disables confirmable notifications entirely.
func (s *Server) SetConfirmEvery(n int) { s.confirmEvery.Store(int64(n)) }

func (s *Server) confirmEveryVal() uint32 {
	v := s.confirmEvery.Load()
	switch {
	case v == 0:
		return defaultConfirmEvery
	case v < 0:
		return 0
	default:
		return uint32(v)
	}
}

// Resource registers (or returns) the resource at path.
func (s *Server) Resource(path string) *Resource {
	path = strings.Trim(path, "/")
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.resources[path]
	if !ok {
		r = &Resource{
			path:     path,
			handlers: make(map[Code]HandlerFunc),
			server:   s,
		}
		s.resources[path] = r
	}
	return r
}

// Paths returns all registered resource paths, sorted.
func (s *Server) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.resources))
	for p := range s.resources {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Get installs the GET handler. It returns r for chaining.
func (r *Resource) Get(fn HandlerFunc) *Resource { r.setHandler(CodeGET, fn); return r }

// Put installs the PUT handler.
func (r *Resource) Put(fn HandlerFunc) *Resource { r.setHandler(CodePUT, fn); return r }

// Post installs the POST handler.
func (r *Resource) Post(fn HandlerFunc) *Resource { r.setHandler(CodePOST, fn); return r }

// Delete installs the DELETE handler.
func (r *Resource) Delete(fn HandlerFunc) *Resource { r.setHandler(CodeDELETE, fn); return r }

func (r *Resource) setHandler(code Code, fn HandlerFunc) {
	r.mu.Lock()
	r.handlers[code] = fn
	r.mu.Unlock()
}

// Observable marks the resource as observable (RFC 7641).
func (r *Resource) Observable() *Resource {
	r.mu.Lock()
	r.observable = true
	r.mu.Unlock()
	return r
}

// ResourceType sets the rt= attribute advertised in /.well-known/core.
func (r *Resource) ResourceType(rt string) *Resource {
	r.mu.Lock()
	r.rt = rt
	r.mu.Unlock()
	return r
}

// SetMaxObservers overrides the server's observer cap for this resource.
// n <= 0 restores the server default.
func (r *Resource) SetMaxObservers(n int) *Resource {
	if n < 0 {
		n = 0
	}
	r.maxObs.Store(int64(n))
	return r
}

func (r *Resource) maxObservers() int64 {
	if v := r.maxObs.Load(); v > 0 {
		return v
	}
	if v := r.server.maxObs.Load(); v > 0 {
		return v
	}
	return DefaultMaxObservers
}

// ObserverCount returns the number of registered observers.
func (r *Resource) ObserverCount() int { return int(r.nobs.Load()) }

// shardOf maps a registration key onto its shard (FNV-1a).
func shardOf(k string) int {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return int(h & (obsShards - 1))
}

// Notify pushes a new representation to every observer. Without a notify
// pool (Server.StartNotifyPool) the fan-out runs inline on the caller —
// deterministic, in ascending observer-address order, which is what the
// simulation relies on. With a pool, each observer shard is dispatched to
// its own worker through a bounded queue; a full queue drops that shard's
// push (backpressure — the next notification carries the newer state).
func (r *Resource) Notify(contentFormat uint32, payload []byte) {
	srv := r.server
	if srv == nil || srv.conn == nil {
		return
	}
	seq := r.obsSeq.Add(1)
	if p := srv.pool.Load(); p != nil {
		p.dispatch(r, seq, contentFormat, payload)
		return
	}
	r.notifyAll(seq, contentFormat, payload)
}

// notifyAll is the inline (deterministic) fan-out: observers across all
// shards, sorted by address, one message-ID block for the whole batch.
func (r *Resource) notifyAll(seq, contentFormat uint32, payload []byte) {
	c := r.server.conn
	var obs []*observer
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, o := range sh.m {
			obs = append(obs, o)
		}
		sh.mu.Unlock()
	}
	if len(obs) == 0 {
		return
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].addr < obs[j].addr })
	mid := c.allocMIDs(len(obs))
	con := false
	if ce := r.server.confirmEveryVal(); ce > 0 {
		con = seq%ce == 0
	}
	for i, o := range obs {
		m := &Message{Code: CodeContent, Token: o.token, Payload: payload}
		m.AddUintOption(OptObserve, seq)
		m.AddUintOption(OptContentFormat, contentFormat)
		m.MessageID = mid + uint16(i)
		o.lastMID.Store(uint32(m.MessageID))
		if con {
			m.Type = Confirmable
			addr, token := o.addr, o.token
			c.send(addr, m, func(error) {
				// Unreachable observer: drop the registration.
				r.removeObserver(addr, token)
			})
		} else {
			m.Type = NonConfirmable
			data, err := m.Marshal()
			if err == nil {
				_ = c.tr.Send(o.addr, data)
			}
		}
	}
}

// notifyShard fans one notification out to one observer shard. It is the
// gateway hot path: the message body (options + payload) is encoded once
// per shard, per-observer packets are assembled in a reused buffer, and
// message IDs come from a single batched allocation — zero allocations
// per observer at steady state (CI-gated). scratch is the caller's reused
// observer slice; the (possibly grown) slice is returned for reuse.
func (r *Resource) notifyShard(si int, seq, contentFormat uint32, payload []byte, enc *notifyEncoder, scratch []*observer) []*observer {
	c := r.server.conn
	sh := &r.shards[si]
	sh.mu.Lock()
	for _, o := range sh.m {
		scratch = append(scratch, o)
	}
	sh.mu.Unlock()
	if len(scratch) == 0 {
		return scratch
	}
	mid := c.allocMIDs(len(scratch))
	con := false
	if ce := r.server.confirmEveryVal(); ce > 0 {
		con = seq%ce == 0
	}
	if !con {
		enc.prepare(seq, contentFormat, payload)
	}
	for i, o := range scratch {
		m := mid + uint16(i)
		o.lastMID.Store(uint32(m))
		if con {
			msg := &Message{Type: Confirmable, Code: CodeContent, Token: o.token, Payload: payload, MessageID: m}
			msg.AddUintOption(OptObserve, seq)
			msg.AddUintOption(OptContentFormat, contentFormat)
			addr, token := o.addr, o.token
			c.send(addr, msg, func(error) {
				r.removeObserver(addr, token)
			})
		} else {
			_ = c.tr.Send(o.addr, enc.packet(m, o.token))
		}
	}
	return scratch
}

// notifyEncoder assembles NON notification datagrams without allocating:
// the option block and payload are laid down once per notification, then
// each observer's packet patches in the 4-byte header and token. The
// encoded bytes are identical to Message.Marshal output (pinned by test).
type notifyEncoder struct {
	body []byte // options + payload marker + payload
	pkt  []byte // per-observer packet, reused between sends
}

// appendUintOpt appends one option with delta < 13 and a uint value.
func appendUintOpt(b []byte, delta int, v uint32) []byte {
	var vb [4]byte
	n := 0
	for x := v; x > 0; x >>= 8 {
		n++
	}
	for i := 0; i < n; i++ {
		vb[i] = byte(v >> (8 * (n - 1 - i)))
	}
	b = append(b, byte(delta)<<4|byte(n))
	return append(b, vb[:n]...)
}

// prepare encodes the shared body: Observe (6) and Content-Format (12)
// options in ascending-ID delta form, then the payload.
func (e *notifyEncoder) prepare(seq, contentFormat uint32, payload []byte) {
	b := appendUintOpt(e.body[:0], int(OptObserve), seq)
	b = appendUintOpt(b, int(OptContentFormat-OptObserve), contentFormat)
	if len(payload) > 0 {
		b = append(b, 0xFF)
		b = append(b, payload...)
	}
	e.body = b
}

// packet assembles the datagram for one observer. The returned slice is
// valid until the next packet call; transports must not retain it.
func (e *notifyEncoder) packet(mid uint16, token []byte) []byte {
	p := e.pkt[:0]
	p = append(p, version<<6|uint8(NonConfirmable)<<4|uint8(len(token)))
	p = append(p, uint8(CodeContent))
	p = append(p, byte(mid>>8), byte(mid))
	p = append(p, token...)
	p = append(p, e.body...)
	e.pkt = p
	return p
}

// notifyJob is one (resource, shard) fan-out unit of work.
type notifyJob struct {
	r       *Resource
	seq     uint32
	cf      uint32
	payload []byte
}

// notifyPool runs per-shard fan-out workers behind bounded queues. Worker
// i owns observer shard i of every resource, so no two workers ever touch
// the same observer and each holds only its own shard's lock.
type notifyPool struct {
	queues  []chan notifyJob
	wg      sync.WaitGroup
	dropped atomic.Int64
}

// StartNotifyPool switches Notify to parallel per-shard fan-out (one
// worker and one bounded queue per observer shard). Use on gateways over
// real transports; the inline path stays the default because only it is
// deterministic. queueLen <= 0 selects 256.
func (s *Server) StartNotifyPool(queueLen int) {
	if queueLen <= 0 {
		queueLen = 256
	}
	p := &notifyPool{queues: make([]chan notifyJob, obsShards)}
	for i := range p.queues {
		p.queues[i] = make(chan notifyJob, queueLen)
	}
	p.wg.Add(obsShards)
	for i := range p.queues {
		go p.worker(i)
	}
	if old := s.pool.Swap(p); old != nil {
		old.stop()
	}
}

// StopNotifyPool drains the pool and restores inline fan-out.
func (s *Server) StopNotifyPool() {
	if p := s.pool.Swap(nil); p != nil {
		p.stop()
	}
}

// NotifyDropped reports shard pushes rejected by full queues
// (backpressure drops) since the pool started.
func (s *Server) NotifyDropped() int64 {
	if p := s.pool.Load(); p != nil {
		return p.dropped.Load()
	}
	return 0
}

func (p *notifyPool) stop() {
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
}

func (p *notifyPool) worker(i int) {
	defer p.wg.Done()
	var enc notifyEncoder
	var scratch []*observer
	for job := range p.queues[i] {
		scratch = job.r.notifyShard(i, job.seq, job.cf, job.payload, &enc, scratch[:0])
	}
}

func (p *notifyPool) dispatch(r *Resource, seq, cf uint32, payload []byte) {
	job := notifyJob{r: r, seq: seq, cf: cf, payload: payload}
	for i := 0; i < obsShards; i++ {
		if r.shards[i].n.Load() == 0 {
			continue
		}
		select {
		case p.queues[i] <- job:
		default:
			p.dropped.Add(1)
		}
	}
}

func (r *Resource) addObserver(addr string, token []byte) error {
	k := tokenKey(addr, token)
	sh := &r.shards[shardOf(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[k]; ok {
		return nil // re-registration with the same token refreshes in place
	}
	if r.nobs.Add(1) > r.maxObservers() {
		r.nobs.Add(-1)
		return ErrTooManyObservers
	}
	if sh.m == nil {
		sh.m = make(map[string]*observer)
	}
	sh.m[k] = &observer{addr: addr, token: netbuf.CloneBytes(token)}
	sh.n.Store(int64(len(sh.m)))
	return nil
}

func (r *Resource) removeObserver(addr string, token []byte) {
	k := tokenKey(addr, token)
	sh := &r.shards[shardOf(k)]
	sh.mu.Lock()
	if _, ok := sh.m[k]; ok {
		delete(sh.m, k)
		sh.n.Store(int64(len(sh.m)))
		r.nobs.Add(-1)
	}
	sh.mu.Unlock()
}

// removeObserverByMID drops whatever observer last received the
// notification with the given MID (RST handling).
func (s *Server) removeObserverByMID(addr string, mid uint16) {
	s.mu.Lock()
	resources := make([]*Resource, 0, len(s.resources))
	for _, r := range s.resources {
		resources = append(resources, r)
	}
	s.mu.Unlock()
	for _, r := range resources {
		for i := range r.shards {
			sh := &r.shards[i]
			sh.mu.Lock()
			for k, o := range sh.m {
				if o.addr == addr && uint16(o.lastMID.Load()) == mid {
					delete(sh.m, k)
					sh.n.Store(int64(len(sh.m)))
					r.nobs.Add(-1)
				}
			}
			sh.mu.Unlock()
		}
	}
}

// linkFormat renders the CoRE link-format discovery document.
func (s *Server) linkFormat() []byte {
	var sb strings.Builder
	for i, p := range s.Paths() {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "</%s>", p)
		s.mu.Lock()
		r := s.resources[p]
		s.mu.Unlock()
		r.mu.Lock()
		rt, observable := r.rt, r.observable
		r.mu.Unlock()
		if rt != "" {
			fmt.Fprintf(&sb, ";rt=%q", rt)
		}
		if observable {
			sb.WriteString(";obs")
		}
	}
	return []byte(sb.String())
}

// handle dispatches one request and returns the response (nil = silent).
func (s *Server) handle(from string, req *Message) *Message {
	path := req.Path()
	if path == ".well-known/core" && req.Code == CodeGET {
		resp := &Message{Code: CodeContent, Payload: s.linkFormat()}
		resp.AddUintOption(OptContentFormat, FormatLinkFormat)
		return resp
	}
	s.mu.Lock()
	r, ok := s.resources[path]
	s.mu.Unlock()
	if !ok {
		return &Message{Code: CodeNotFound}
	}
	r.mu.Lock()
	fn, ok := r.handlers[req.Code]
	observable := r.observable
	r.mu.Unlock()
	if !ok {
		return &Message{Code: CodeMethodNotAllowed}
	}

	// Observe intent (RFC 7641). Deregistration (Observe=1) takes effect
	// regardless of the handler outcome; registration (Observe=0) waits
	// for the response — §4.1 only adds an observer when the GET
	// succeeds, so a failed read never leaves a dangling registration.
	register := false
	if req.Code == CodeGET && observable {
		if opt, has := req.Option(OptObserve); has {
			switch opt.Uint() {
			case 0:
				register = true
			case 1:
				r.removeObserver(from, req.Token)
			}
		}
	}

	resp := fn(from, req)
	if resp == nil {
		return nil
	}
	if register && resp.Code.IsSuccess() {
		if err := r.addObserver(from, req.Token); err != nil {
			// Admission reject: 5.03, with a retry hint when configured.
			reject := &Message{Code: CodeServiceUnavailable}
			if age := s.rejectMaxAge.Load(); age > 0 {
				reject.AddUintOption(OptMaxAge, uint32(age))
			}
			return reject
		}
		resp.AddUintOption(OptObserve, r.obsSeq.Add(1))
	}
	s.applyBlock2(req, resp)
	return resp
}

// applyBlock2 slices large response payloads per RFC 7959 (stateless
// server: the handler regenerates the full representation each time and
// the requested window is cut here).
func (s *Server) applyBlock2(req, resp *Message) {
	if !resp.Code.IsSuccess() || s.conn == nil {
		return
	}
	size := s.conn.cfg.BlockSize
	num := uint32(0)
	if opt, has := req.Option(OptBlock2); has {
		v := opt.Uint()
		num = v >> 4
		if reqSize := 1 << ((v & 0x7) + 4); reqSize < size {
			size = reqSize
		}
	} else if len(resp.Payload) <= size {
		return
	}
	szx := uint32(0)
	for 1<<(szx+5) <= size && szx < 6 {
		szx++
	}
	size = 1 << (szx + 4)
	off := int(num) * size
	if off > len(resp.Payload) || (off == len(resp.Payload) && num > 0) {
		resp.Code = CodeBadRequest
		resp.Payload = nil
		return
	}
	end := off + size
	more := uint32(0)
	if end < len(resp.Payload) {
		more = 0x8
	} else {
		end = len(resp.Payload)
	}
	resp.Payload = netbuf.CloneBytes(resp.Payload[off:end])
	resp.RemoveOption(OptBlock2)
	resp.AddUintOption(OptBlock2, num<<4|more|szx)
}

// TextResponse builds a 2.05 Content response with text payload.
func TextResponse(text string) *Message {
	m := &Message{Code: CodeContent, Payload: []byte(text)}
	m.AddUintOption(OptContentFormat, FormatText)
	return m
}

// ErrorResponse builds an error response with a diagnostic payload.
func ErrorResponse(code Code, diag string) *Message {
	return &Message{Code: code, Payload: []byte(diag)}
}
