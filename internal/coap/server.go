package coap

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"iiotds/internal/netbuf"
)

// HandlerFunc serves one request method on one resource. It returns the
// response message (Code, Payload, Options); the message layer fills in
// type, token, and IDs. Returning nil suppresses the response.
type HandlerFunc func(from string, req *Message) *Message

// maxObserversPerResource bounds observer state on constrained nodes.
const maxObserversPerResource = 64

// conNotifyEvery makes every n-th notification confirmable so dead
// observers are eventually detected and dropped.
const conNotifyEvery = 8

type observer struct {
	addr    string
	token   []byte
	lastMID uint16
	fails   int
}

// Resource is one node in the server's resource tree.
type Resource struct {
	path       string
	rt         string // resource type for /.well-known/core
	observable bool
	handlers   map[Code]HandlerFunc

	mu        sync.Mutex
	observers map[string]*observer
	obsSeq    uint32
	server    *Server
}

// Server is a CoAP origin server: a set of resources plus the CoRE
// link-format discovery document (/.well-known/core, RFC 6690), which is
// what the registry layer uses for device discovery.
type Server struct {
	conn *Conn

	mu        sync.Mutex
	resources map[string]*Resource
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{resources: make(map[string]*Resource)}
}

// Resource registers (or returns) the resource at path.
func (s *Server) Resource(path string) *Resource {
	path = strings.Trim(path, "/")
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.resources[path]
	if !ok {
		r = &Resource{
			path:      path,
			handlers:  make(map[Code]HandlerFunc),
			observers: make(map[string]*observer),
			server:    s,
		}
		s.resources[path] = r
	}
	return r
}

// Paths returns all registered resource paths, sorted.
func (s *Server) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.resources))
	for p := range s.resources {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Get installs the GET handler. It returns r for chaining.
func (r *Resource) Get(fn HandlerFunc) *Resource { r.handlers[CodeGET] = fn; return r }

// Put installs the PUT handler.
func (r *Resource) Put(fn HandlerFunc) *Resource { r.handlers[CodePUT] = fn; return r }

// Post installs the POST handler.
func (r *Resource) Post(fn HandlerFunc) *Resource { r.handlers[CodePOST] = fn; return r }

// Delete installs the DELETE handler.
func (r *Resource) Delete(fn HandlerFunc) *Resource { r.handlers[CodeDELETE] = fn; return r }

// Observable marks the resource as observable (RFC 7641).
func (r *Resource) Observable() *Resource { r.observable = true; return r }

// ResourceType sets the rt= attribute advertised in /.well-known/core.
func (r *Resource) ResourceType(rt string) *Resource { r.rt = rt; return r }

// ObserverCount returns the number of registered observers.
func (r *Resource) ObserverCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.observers)
}

// Notify pushes a new representation to every observer.
func (r *Resource) Notify(contentFormat uint32, payload []byte) {
	srv := r.server
	if srv == nil || srv.conn == nil {
		return
	}
	c := srv.conn
	r.mu.Lock()
	r.obsSeq++
	seq := r.obsSeq
	obs := make([]*observer, 0, len(r.observers))
	for _, o := range r.observers {
		obs = append(obs, o)
	}
	r.mu.Unlock()
	sort.Slice(obs, func(i, j int) bool { return obs[i].addr < obs[j].addr })

	for _, o := range obs {
		m := &Message{Code: CodeContent, Token: o.token, Payload: payload}
		m.AddUintOption(OptObserve, seq)
		m.AddUintOption(OptContentFormat, contentFormat)
		c.mu.Lock()
		m.MessageID = c.newMID()
		c.mu.Unlock()
		o.lastMID = m.MessageID
		if seq%conNotifyEvery == 0 {
			m.Type = Confirmable
			addr, token := o.addr, o.token
			c.send(addr, m, func(error) {
				// Unreachable observer: drop the registration.
				r.removeObserver(addr, token)
			})
		} else {
			m.Type = NonConfirmable
			data, err := m.Marshal()
			if err == nil {
				_ = c.tr.Send(o.addr, data)
			}
		}
	}
}

func (r *Resource) addObserver(addr string, token []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := tokenKey(addr, token)
	if _, ok := r.observers[k]; !ok && len(r.observers) >= maxObserversPerResource {
		return ErrTooManyObservers
	}
	r.observers[k] = &observer{addr: addr, token: netbuf.CloneBytes(token)}
	return nil
}

func (r *Resource) removeObserver(addr string, token []byte) {
	r.mu.Lock()
	delete(r.observers, tokenKey(addr, token))
	r.mu.Unlock()
}

// removeObserverByMID drops whatever observer last received the
// notification with the given MID (RST handling).
func (s *Server) removeObserverByMID(addr string, mid uint16) {
	s.mu.Lock()
	resources := make([]*Resource, 0, len(s.resources))
	for _, r := range s.resources {
		resources = append(resources, r)
	}
	s.mu.Unlock()
	for _, r := range resources {
		r.mu.Lock()
		for k, o := range r.observers {
			if o.addr == addr && o.lastMID == mid {
				delete(r.observers, k)
			}
		}
		r.mu.Unlock()
	}
}

// linkFormat renders the CoRE link-format discovery document.
func (s *Server) linkFormat() []byte {
	var sb strings.Builder
	for i, p := range s.Paths() {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "</%s>", p)
		s.mu.Lock()
		r := s.resources[p]
		s.mu.Unlock()
		if r.rt != "" {
			fmt.Fprintf(&sb, ";rt=%q", r.rt)
		}
		if r.observable {
			sb.WriteString(";obs")
		}
	}
	return []byte(sb.String())
}

// handle dispatches one request and returns the response (nil = silent).
func (s *Server) handle(from string, req *Message) *Message {
	path := req.Path()
	if path == ".well-known/core" && req.Code == CodeGET {
		resp := &Message{Code: CodeContent, Payload: s.linkFormat()}
		resp.AddUintOption(OptContentFormat, FormatLinkFormat)
		return resp
	}
	s.mu.Lock()
	r, ok := s.resources[path]
	s.mu.Unlock()
	if !ok {
		return &Message{Code: CodeNotFound}
	}
	fn, ok := r.handlers[req.Code]
	if !ok {
		return &Message{Code: CodeMethodNotAllowed}
	}

	// Observe registration / deregistration (RFC 7641).
	if req.Code == CodeGET && r.observable {
		if opt, has := req.Option(OptObserve); has {
			switch opt.Uint() {
			case 0:
				if err := r.addObserver(from, req.Token); err != nil {
					return &Message{Code: CodeServiceUnavailable}
				}
			case 1:
				r.removeObserver(from, req.Token)
			}
		}
	}

	resp := fn(from, req)
	if resp == nil {
		return nil
	}
	if req.Code == CodeGET && r.observable {
		if opt, has := req.Option(OptObserve); has && opt.Uint() == 0 && resp.Code.IsSuccess() {
			r.mu.Lock()
			r.obsSeq++
			seq := r.obsSeq
			r.mu.Unlock()
			resp.AddUintOption(OptObserve, seq)
		}
	}
	s.applyBlock2(req, resp)
	return resp
}

// applyBlock2 slices large response payloads per RFC 7959 (stateless
// server: the handler regenerates the full representation each time and
// the requested window is cut here).
func (s *Server) applyBlock2(req, resp *Message) {
	if !resp.Code.IsSuccess() || s.conn == nil {
		return
	}
	size := s.conn.cfg.BlockSize
	num := uint32(0)
	if opt, has := req.Option(OptBlock2); has {
		v := opt.Uint()
		num = v >> 4
		if reqSize := 1 << ((v & 0x7) + 4); reqSize < size {
			size = reqSize
		}
	} else if len(resp.Payload) <= size {
		return
	}
	szx := uint32(0)
	for 1<<(szx+5) <= size && szx < 6 {
		szx++
	}
	size = 1 << (szx + 4)
	off := int(num) * size
	if off > len(resp.Payload) || (off == len(resp.Payload) && num > 0) {
		resp.Code = CodeBadRequest
		resp.Payload = nil
		return
	}
	end := off + size
	more := uint32(0)
	if end < len(resp.Payload) {
		more = 0x8
	} else {
		end = len(resp.Payload)
	}
	resp.Payload = netbuf.CloneBytes(resp.Payload[off:end])
	resp.RemoveOption(OptBlock2)
	resp.AddUintOption(OptBlock2, num<<4|more|szx)
}

// TextResponse builds a 2.05 Content response with text payload.
func TextResponse(text string) *Message {
	m := &Message{Code: CodeContent, Payload: []byte(text)}
	m.AddUintOption(OptContentFormat, FormatText)
	return m
}

// ErrorResponse builds an error response with a diagnostic payload.
func ErrorResponse(code Code, diag string) *Message {
	return &Message{Code: code, Payload: []byte(diag)}
}
