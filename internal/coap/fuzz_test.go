package coap

import (
	"bytes"
	"testing"
)

// fuzzSeedMessages returns marshaled messages covering the header,
// token, option-delta, and payload encoding paths.
func fuzzSeedMessages(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	mk := func(m *Message) {
		data, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	mk(&Message{Type: Confirmable, Code: CodeGET, MessageID: 1})
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 7, Token: []byte{1, 2, 3, 4}}
	m.SetPath("sensors/temp/1")
	m.AddUintOption(OptContentFormat, FormatJSON)
	mk(m)
	m2 := &Message{Type: NonConfirmable, Code: CodePOST, MessageID: 65535, Payload: []byte(`{"v":21.5}`)}
	m2.SetPath("a")
	mk(m2)
	return seeds
}

// FuzzUnmarshal throws arbitrary bytes at the wire parser. Whatever
// parses must survive a Marshal/Unmarshal round trip unchanged — the
// parser and serializer agree on every message the parser accepts.
func FuzzUnmarshal(f *testing.F) {
	for _, s := range fuzzSeedMessages(f) {
		f.Add(s)
		f.Add(s[:len(s)-1])
	}
	f.Add([]byte{})
	f.Add([]byte{0x40})
	f.Add([]byte{0x4F, 0x01, 0x00, 0x01}) // token length 15 (reserved)
	f.Add([]byte{0x40, 0x01, 0x00, 0x01, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v (%+v)", err, m)
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshaled bytes failed to parse: %v", err)
		}
		if m.Type != m2.Type || m.Code != m2.Code || m.MessageID != m2.MessageID ||
			!bytes.Equal(m.Token, m2.Token) || !bytes.Equal(m.Payload, m2.Payload) ||
			len(m.Options) != len(m2.Options) {
			t.Fatalf("round trip changed message:\n first %+v\nsecond %+v", m, m2)
		}
		for i := range m.Options {
			if m.Options[i].ID != m2.Options[i].ID || !bytes.Equal(m.Options[i].Value, m2.Options[i].Value) {
				t.Fatalf("option %d changed: %+v vs %+v", i, m.Options[i], m2.Options[i])
			}
		}
	})
}

// FuzzMarshalRoundTrip builds messages from fuzzed fields and checks
// that anything Marshal accepts comes back identical through Unmarshal.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add(byte(0), byte(1), uint16(7), []byte{1, 2}, "sensors/temp", []byte(`21.5`))
	f.Add(byte(1), byte(69), uint16(0), []byte{}, "", []byte{})
	f.Add(byte(2), byte(132), uint16(65535), []byte{1, 2, 3, 4, 5, 6, 7, 8}, "a/b/c/d", bytes.Repeat([]byte{0xAB}, 64))

	f.Fuzz(func(t *testing.T, typ, code byte, mid uint16, token []byte, path string, payload []byte) {
		m := &Message{Type: Type(typ % 4), Code: Code(code), MessageID: mid, Token: token, Payload: payload}
		if path != "" {
			m.SetPath(path)
		}
		data, err := m.Marshal()
		if err != nil {
			return // invalid field combinations are rejected by contract
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Marshal output failed to parse: %v", err)
		}
		if got.Type != m.Type || got.Code != m.Code || got.MessageID != m.MessageID ||
			!bytes.Equal(got.Token, m.Token) || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip changed message:\n  sent %+v\n   got %+v", m, got)
		}
	})
}
