package coap

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/sim"
)

// --- codec tests ---

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 4242,
		Token:     []byte{1, 2, 3, 4},
		Payload:   []byte("hello"),
	}
	m.SetPath("sensors/temp/1")
	m.AddUintOption(OptContentFormat, FormatJSON)
	m.AddUintOption(OptObserve, 0)
	m.AddOption(OptURIQuery, []byte("unit=c"))
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Code != m.Code || got.MessageID != m.MessageID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Token, m.Token) || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("token/payload mismatch")
	}
	if got.Path() != "sensors/temp/1" {
		t.Fatalf("path = %q", got.Path())
	}
	if cf, ok := got.Option(OptContentFormat); !ok || cf.Uint() != FormatJSON {
		t.Fatal("content format lost")
	}
	if q := got.Queries(); len(q) != 1 || q[0] != "unit=c" {
		t.Fatalf("queries = %v", q)
	}
}

func TestLargeOptionDeltasAndLengths(t *testing.T) {
	m := &Message{Type: NonConfirmable, Code: CodeContent, MessageID: 1}
	// Delta 1 (IfMatch), then a jump to a large custom option number
	// (forces 14-nibble extended delta), plus a long value (extended len).
	m.AddOption(OptIfMatch, []byte{9})
	m.AddOption(OptionID(2000), bytes.Repeat([]byte{0xAB}, 300))
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 2 {
		t.Fatalf("options = %d", len(got.Options))
	}
	o, ok := got.Option(OptionID(2000))
	if !ok || len(o.Value) != 300 || o.Value[0] != 0xAB {
		t.Fatal("extended option mangled")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"short":           {0x40, 0x01},
		"bad version":     {0x80, 0x01, 0, 1},
		"token too long":  {0x49, 0x01, 0, 1},
		"truncated token": {0x44, 0x01, 0, 1, 0xAA},
		"marker no data":  {0x40, 0x01, 0, 1, 0xFF},
		"reserved nibble": {0x40, 0x01, 0, 1, 0xF0},
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestMarshalTokenTooLong(t *testing.T) {
	m := &Message{Token: make([]byte, 9)}
	if _, err := m.Marshal(); err != ErrBadToken {
		t.Fatalf("err = %v", err)
	}
}

func TestCodeString(t *testing.T) {
	if got := CodeContent.String(); got != "2.05" {
		t.Fatalf("CodeContent = %q", got)
	}
	if got := CodeNotFound.String(); got != "4.04" {
		t.Fatalf("CodeNotFound = %q", got)
	}
	if !CodeGET.IsRequest() || CodeGET.IsResponse() {
		t.Fatal("GET classification wrong")
	}
	if !CodeContent.IsSuccess() || CodeNotFound.IsSuccess() {
		t.Fatal("success classification wrong")
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		Confirmable: "CON", NonConfirmable: "NON",
		Acknowledgement: "ACK", Reset: "RST",
	} {
		if typ.String() != want {
			t.Errorf("%d = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, code uint8, mid uint16, token []byte, payload []byte, path string) bool {
		if len(token) > 8 {
			token = token[:8]
		}
		m := &Message{
			Type: Type(typ % 4), Code: Code(code), MessageID: mid,
			Token: token, Payload: payload,
		}
		m.SetPath(path)
		data, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.Code != m.Code || got.MessageID != m.MessageID {
			return false
		}
		if len(token) > 0 && !bytes.Equal(got.Token, token) {
			return false
		}
		if len(payload) > 0 && !bytes.Equal(got.Payload, payload) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPathEdgeCases(t *testing.T) {
	m := &Message{}
	m.SetPath("//a//b/")
	if got := m.Path(); got != "a/b" {
		t.Fatalf("path = %q, want a/b", got)
	}
	m.SetPath("")
	if got := m.Path(); got != "" {
		t.Fatalf("empty path = %q", got)
	}
}

// --- endpoint tests (deterministic: virtual time + loop transport) ---

type world struct {
	k     *sim.Kernel
	board *Switchboard
}

func newWorld() *world {
	return &world{k: sim.New(1), board: NewSwitchboard()}
}

func (w *world) endpoint(addr string, cfg ConnConfig) (*Conn, *LoopTransport) {
	tr := w.board.Attach(addr)
	return NewConn(tr, KernelScheduler{K: w.k}, cfg), tr
}

func newServerConn(w *world, addr string) (*Conn, *Server) {
	conn, _ := w.endpoint(addr, ConnConfig{})
	srv := NewServer()
	srv.Resource("sensors/temp").ResourceType("iiot.temp").Get(func(from string, req *Message) *Message {
		return TextResponse("21.5")
	})
	srv.Resource("actuators/valve").Put(func(from string, req *Message) *Message {
		return &Message{Code: CodeChanged}
	})
	conn.Serve(srv)
	return conn, srv
}

func TestGetRequestResponse(t *testing.T) {
	w := newWorld()
	newServerConn(w, "srv")
	cli, _ := w.endpoint("cli", ConnConfig{})
	var resp *Message
	cli.Get("srv", "sensors/temp", func(m *Message, err error) {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
			return
		}
		resp = m
	})
	w.k.RunFor(time.Second)
	if resp == nil {
		t.Fatal("no response")
	}
	if resp.Code != CodeContent || string(resp.Payload) != "21.5" {
		t.Fatalf("resp = %v %q", resp.Code, resp.Payload)
	}
}

func TestPutChangesAndNotFound(t *testing.T) {
	w := newWorld()
	newServerConn(w, "srv")
	cli, _ := w.endpoint("cli", ConnConfig{})
	var codes []Code
	cli.Put("srv", "actuators/valve", FormatText, []byte("open"), func(m *Message, err error) {
		codes = append(codes, m.Code)
	})
	cli.Get("srv", "no/such/path", func(m *Message, err error) {
		codes = append(codes, m.Code)
	})
	cli.Post("srv", "sensors/temp", FormatText, nil, func(m *Message, err error) {
		codes = append(codes, m.Code) // POST not allowed on temp
	})
	w.k.RunFor(time.Second)
	if len(codes) != 3 || codes[0] != CodeChanged || codes[1] != CodeNotFound || codes[2] != CodeMethodNotAllowed {
		t.Fatalf("codes = %v", codes)
	}
}

func TestConRetransmissionRecoversFromLoss(t *testing.T) {
	w := newWorld()
	newServerConn(w, "srv")
	cli, tr := w.endpoint("cli", ConnConfig{AckTimeout: time.Second})
	tr.SetDropFirst(2) // first two transmissions vanish
	var resp *Message
	cli.Get("srv", "sensors/temp", func(m *Message, err error) { resp = m })
	w.k.RunFor(30 * time.Second)
	if resp == nil || string(resp.Payload) != "21.5" {
		t.Fatal("retransmission did not recover the exchange")
	}
	if tr.Sent() < 3 {
		t.Fatalf("sent %d datagrams, want ≥3", tr.Sent())
	}
}

func TestConGivesUpAfterMaxRetransmit(t *testing.T) {
	w := newWorld()
	cli, tr := w.endpoint("cli", ConnConfig{AckTimeout: time.Second, MaxRetransmit: 3})
	tr.SetDropEvery(1) // everything is lost
	var gotErr error
	cli.Get("nowhere", "x", func(m *Message, err error) { gotErr = err })
	w.k.RunFor(5 * time.Minute)
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if tr.Sent() != 4 { // initial + 3 retransmits
		t.Fatalf("sent %d, want 4", tr.Sent())
	}
}

// TestResetFailsInFlightAndStaysUsable pins the reboot semantics of
// Conn.Reset (used by Deployment.Crash): in-flight exchanges fail with
// ErrClosed, no pending/awaiting entries survive, and — unlike Close —
// the endpoint keeps working afterwards.
func TestResetFailsInFlightAndStaysUsable(t *testing.T) {
	w := newWorld()
	newServerConn(w, "srv")
	cli, _ := w.endpoint("cli", ConnConfig{AckTimeout: 10 * time.Second})
	var errs []error
	cli.Get("ghost-a", "x", func(m *Message, err error) { errs = append(errs, err) })
	cli.Get("ghost-b", "x", func(m *Message, err error) { errs = append(errs, err) })
	w.k.RunFor(time.Second)
	if p, a := cli.Exchanges(); p != 2 || a != 2 {
		t.Fatalf("pending=%d awaiting=%d before Reset, want 2/2", p, a)
	}
	cli.Reset()
	if len(errs) != 2 || errs[0] != ErrClosed || errs[1] != ErrClosed {
		t.Fatalf("errs = %v, want two ErrClosed", errs)
	}
	if p, a := cli.Exchanges(); p != 0 || a != 0 {
		t.Fatalf("exchange state leaked across Reset: pending=%d awaiting=%d", p, a)
	}
	// Canceled retransmission timers must not fire later.
	w.k.RunFor(5 * time.Minute)
	if len(errs) != 2 {
		t.Fatalf("stale timer fired after Reset: errs = %v", errs)
	}
	// The endpoint survives the reboot: a fresh request round-trips.
	var resp *Message
	cli.Get("srv", "sensors/temp", func(m *Message, err error) { resp = m })
	w.k.RunFor(time.Minute)
	if resp == nil || string(resp.Payload) != "21.5" {
		t.Fatal("endpoint unusable after Reset")
	}
}

func TestServerDedupRepliesFromCache(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	calls := 0
	srv := NewServer()
	srv.Resource("count").Get(func(from string, req *Message) *Message {
		calls++
		return TextResponse(fmt.Sprint(calls))
	})
	srvConn.Serve(srv)

	cli, _ := w.endpoint("cli", ConnConfig{AckTimeout: time.Second})
	// Drop the server's first response so the client retransmits the
	// same MID; the handler must run once and the cached response must
	// be replayed.
	srvTr := srvConn.tr.(*LoopTransport)
	srvTr.SetDropFirst(1)
	var resp *Message
	cli.Get("srv", "count", func(m *Message, err error) { resp = m })
	w.k.RunFor(time.Minute)
	if resp == nil {
		t.Fatal("no response")
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1 (dedup)", calls)
	}
	if string(resp.Payload) != "1" {
		t.Fatalf("payload = %q", resp.Payload)
	}
}

func TestNonRequestTimeout(t *testing.T) {
	w := newWorld()
	cli, _ := w.endpoint("cli", ConnConfig{NonTimeout: 5 * time.Second})
	var gotErr error
	m := &Message{Type: NonConfirmable, Code: CodeGET}
	m.SetPath("x")
	cli.Request("ghost", m, func(resp *Message, err error) { gotErr = err })
	w.k.RunFor(time.Minute)
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestObserveNotifications(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	temp := srv.Resource("temp").Observable().Get(func(from string, req *Message) *Message {
		return TextResponse("20.0")
	})
	srvConn.Serve(srv)

	cli, _ := w.endpoint("cli", ConnConfig{})
	var payloads []string
	var seqs []uint32
	tok := cli.Observe("srv", "temp", func(m *Message, err error) {
		if err != nil {
			return
		}
		payloads = append(payloads, string(m.Payload))
		if o, ok := m.Option(OptObserve); ok {
			seqs = append(seqs, o.Uint())
		}
	})
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 1 {
		t.Fatalf("observers = %d", temp.ObserverCount())
	}
	temp.Notify(FormatText, []byte("20.5"))
	w.k.RunFor(time.Second)
	temp.Notify(FormatText, []byte("21.0"))
	w.k.RunFor(time.Second)
	want := []string{"20.0", "20.5", "21.0"}
	if len(payloads) != 3 {
		t.Fatalf("payloads = %v", payloads)
	}
	for i := range want {
		if payloads[i] != want[i] {
			t.Fatalf("payloads = %v", payloads)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("observe seq not increasing: %v", seqs)
		}
	}
	// Cancel: no further notifications.
	cli.CancelObserve("srv", tok, "temp")
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 0 {
		t.Fatal("observer not removed after cancel")
	}
	temp.Notify(FormatText, []byte("99"))
	w.k.RunFor(time.Second)
	if len(payloads) != 3 {
		t.Fatalf("notification after cancel: %v", payloads)
	}
}

func TestObserverDroppedOnRST(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	temp := srv.Resource("temp").Observable().Get(func(string, *Message) *Message {
		return TextResponse("x")
	})
	srvConn.Serve(srv)
	cli, _ := w.endpoint("cli", ConnConfig{})
	cli.Observe("srv", "temp", func(m *Message, err error) {})
	w.k.RunFor(time.Second)
	// Client dies; a fresh endpoint at the same address RSTs unknown
	// notifications, and the server must clean up.
	_ = cli.Close()
	cli2, _ := w.endpoint("cli2", ConnConfig{})
	_ = cli2
	// Replace the address: simulate by re-attaching "cli".
	fresh := NewConn(w.board.Attach("cli"), KernelScheduler{K: w.k}, ConnConfig{})
	_ = fresh
	temp.Notify(FormatText, []byte("y"))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 0 {
		t.Fatalf("observer count = %d after RST, want 0", temp.ObserverCount())
	}
}

func TestBlockwiseTransfer(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{BlockSize: 64})
	big := strings.Repeat("0123456789abcdef", 40) // 640 bytes
	srv := NewServer()
	srv.Resource("fw").Get(func(string, *Message) *Message {
		return TextResponse(big)
	})
	srvConn.Serve(srv)
	cli, _ := w.endpoint("cli", ConnConfig{BlockSize: 64})
	var resp *Message
	cli.Get("srv", "fw", func(m *Message, err error) {
		if err != nil {
			t.Errorf("blockwise error: %v", err)
			return
		}
		resp = m
	})
	w.k.RunFor(time.Minute)
	if resp == nil {
		t.Fatal("no reassembled response")
	}
	if string(resp.Payload) != big {
		t.Fatalf("reassembled %d bytes, want %d", len(resp.Payload), len(big))
	}
}

func TestBlockwiseOutOfRange(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{BlockSize: 64})
	srv := NewServer()
	srv.Resource("fw").Get(func(string, *Message) *Message { return TextResponse("small") })
	srvConn.Serve(srv)
	cli, _ := w.endpoint("cli", ConnConfig{})
	m := &Message{Type: Confirmable, Code: CodeGET}
	m.SetPath("fw")
	m.AddUintOption(OptBlock2, 99<<4) // block 99 of a 5-byte payload
	var code Code
	cli.Request("srv", m, func(resp *Message, err error) {
		if err == nil {
			code = resp.Code
		}
	})
	w.k.RunFor(time.Minute)
	if code != CodeBadRequest {
		t.Fatalf("code = %v, want 4.00", code)
	}
}

func TestWellKnownCore(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	srv.Resource("sensors/temp").ResourceType("iiot.temp").Observable().Get(func(string, *Message) *Message {
		return TextResponse("1")
	})
	srv.Resource("actuators/valve").Put(func(string, *Message) *Message {
		return &Message{Code: CodeChanged}
	})
	srvConn.Serve(srv)
	cli, _ := w.endpoint("cli", ConnConfig{})
	var body string
	cli.Get("srv", ".well-known/core", func(m *Message, err error) {
		if err == nil {
			body = string(m.Payload)
		}
	})
	w.k.RunFor(time.Second)
	if !strings.Contains(body, "</sensors/temp>") || !strings.Contains(body, `rt="iiot.temp"`) ||
		!strings.Contains(body, ";obs") || !strings.Contains(body, "</actuators/valve>") {
		t.Fatalf("link format = %q", body)
	}
}

func TestCloseFailsOutstanding(t *testing.T) {
	w := newWorld()
	cli, _ := w.endpoint("cli", ConnConfig{})
	var gotErr error
	cli.Get("void", "x", func(m *Message, err error) { gotErr = err })
	_ = cli.Close()
	if gotErr != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", gotErr)
	}
	// Requests after close fail immediately.
	var after error
	cli.Get("void", "x", func(m *Message, err error) { after = err })
	if after != ErrClosed {
		t.Fatalf("after-close err = %v", after)
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	srvTr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	srvConn := NewConn(srvTr, &SystemScheduler{}, ConnConfig{})
	defer srvConn.Close()
	srv := NewServer()
	srv.Resource("ping").Get(func(string, *Message) *Message { return TextResponse("pong") })
	srvConn.Serve(srv)

	cliTr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewConn(cliTr, &SystemScheduler{}, ConnConfig{})
	defer cli.Close()

	done := make(chan string, 1)
	cli.Get(srvTr.LocalAddr(), "ping", func(m *Message, err error) {
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- string(m.Payload)
	})
	select {
	case got := <-done:
		if got != "pong" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("UDP round trip timed out")
	}
}
