package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/trace"
)

// Request/exchange errors.
var (
	ErrTimeout          = errors.New("coap: request timed out")
	ErrReset            = errors.New("coap: peer reset the exchange")
	ErrClosed           = errors.New("coap: connection closed")
	ErrTooManyObservers = errors.New("coap: observer table full")
)

// ConnConfig tunes the message layer (defaults follow RFC 7252 §4.8).
type ConnConfig struct {
	// AckTimeout is the initial CON retransmission timeout (default 2 s).
	AckTimeout time.Duration
	// AckRandomFactor spreads the initial timeout (default 1.5).
	AckRandomFactor float64
	// MaxRetransmit is the CON retransmission budget (default 4).
	MaxRetransmit int
	// NonTimeout is how long a NON request waits for its response
	// (default 10 s).
	NonTimeout time.Duration
	// ExchangeLifetime bounds message-ID deduplication state
	// (default 60 s; the RFC's 247 s is long for simulations).
	ExchangeLifetime time.Duration
	// BlockSize is the block-wise transfer block size; must be a power
	// of two in [16,1024] (default 64, sized to constrained links).
	BlockSize int
	// Seed seeds the deterministic jitter source (default 1).
	Seed int64
}

func (c *ConnConfig) applyDefaults() {
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.AckRandomFactor == 0 {
		c.AckRandomFactor = 1.5
	}
	if c.MaxRetransmit == 0 {
		c.MaxRetransmit = 4
	}
	if c.NonTimeout == 0 {
		c.NonTimeout = 10 * time.Second
	}
	if c.ExchangeLifetime == 0 {
		c.ExchangeLifetime = 60 * time.Second
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ResponseFunc receives the outcome of a request: exactly one of resp and
// err is non-nil, except observe registrations where it fires once per
// notification.
type ResponseFunc func(resp *Message, err error)

// outCON tracks an in-flight confirmable message awaiting its ACK.
type outCON struct {
	data     []byte
	addr     string
	attempts int
	timeout  time.Duration
	cancel   CancelFunc
	onFail   func(err error)
	journey  uint64
}

// reqState tracks a request awaiting its response (matched by token).
type reqState struct {
	fn      ResponseFunc
	observe bool
	timer   CancelFunc
	// Block-wise assembly state.
	assembling []byte
	origReq    *Message
	addr       string
	journey    uint64
}

type dedupEntry struct {
	at       time.Duration
	response []byte // cached ACK/response bytes for duplicate CONs
}

// dedupRef is one entry of the dedup expiry queue: insertion times are
// monotonic, so expiry pops from the front instead of scanning the whole
// map (which made every request O(table size)). The at field detects
// refs made stale by a key being re-inserted with a fresher timestamp.
type dedupRef struct {
	k  string
	at time.Duration
}

// Conn is a CoAP endpoint: client and server share one transport, as the
// protocol intends.
type Conn struct {
	tr    Transport
	sched Scheduler
	cfg   ConnConfig

	mu        sync.Mutex
	rng       *rand.Rand
	nextMID   uint16
	nextToken uint64
	pending   map[string]*outCON    // addr|mid
	awaiting  map[string]*reqState  // addr|token
	dedup     map[string]dedupEntry // addr|mid
	dedupQ    []dedupRef            // dedup keys in insertion (time) order
	dedupHead int                   // first live index of dedupQ
	closed    bool

	server *Server

	// rec, when set, receives message-layer trace events. Only install a
	// recorder on simulation-backed endpoints: the recorder is not
	// concurrency-safe, and only the sim mesh guarantees single-threaded
	// callbacks.
	rec       *trace.Recorder
	traceNode int32

	// js, when set, ties CoAP exchanges into the stack's packet
	// journeys: a request allocates (or inherits) a journey ID, and
	// every send — including message-layer retransmits — runs in that
	// journey's context so the mesh datagrams underneath carry it.
	// Leave nil on real-UDP endpoints (iiotgw), where there is no
	// simulated packet path to correlate with.
	js *netbuf.Journeys
}

// NewConn creates an endpoint over tr, driven by sched.
func NewConn(tr Transport, sched Scheduler, cfg ConnConfig) *Conn {
	cfg.applyDefaults()
	c := &Conn{
		tr:       tr,
		sched:    sched,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nextMID:  uint16(cfg.Seed),
		pending:  make(map[string]*outCON),
		awaiting: make(map[string]*reqState),
		dedup:    make(map[string]dedupEntry),
	}
	tr.SetReceiver(c.onDatagram)
	return c
}

// SetTrace installs a flight recorder on this endpoint; node is the
// simulated node ID stamped on events. Use only on endpoints whose
// transport and scheduler run on a single simulation kernel.
func (c *Conn) SetTrace(rec *trace.Recorder, node int32) {
	c.rec = rec
	c.traceNode = node
}

// SetJourneys ties this endpoint into the stack's journey-ID context
// (typically medium.Buffers().Journeys()). Simulation-only, like
// SetTrace: the context is not concurrency-safe.
func (c *Conn) SetJourneys(js *netbuf.Journeys) { c.js = js }

// journeyCurrent returns the journey context's current ID (0 without a
// context).
func (c *Conn) journeyCurrent() uint64 {
	if c.js == nil {
		return 0
	}
	return c.js.Current()
}

// withJourney runs fn with jid installed as the current journey, so
// transport sends underneath inherit it.
func (c *Conn) withJourney(jid uint64, fn func()) {
	if c.js == nil {
		fn()
		return
	}
	prev := c.js.SetCurrent(jid)
	fn()
	c.js.SetCurrent(prev)
}

// Serve installs a server (resource tree) on this endpoint.
func (c *Conn) Serve(s *Server) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.server = s
	s.conn = c
}

// LocalAddr returns the transport address.
func (c *Conn) LocalAddr() string { return c.tr.LocalAddr() }

// Close shuts the endpoint down; outstanding requests fail with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, p := range c.pending {
		if p.cancel != nil {
			p.cancel()
		}
	}
	var fns []ResponseFunc
	for _, r := range c.awaiting {
		if r.timer != nil {
			r.timer()
		}
		fns = append(fns, r.fn)
	}
	c.pending = map[string]*outCON{}
	c.awaiting = map[string]*reqState{}
	c.mu.Unlock()
	for _, fn := range fns {
		fn(nil, ErrClosed)
	}
	return c.tr.Close()
}

// Exchanges reports the endpoint's in-flight exchange state: pending is
// the number of unacknowledged CONs still retransmitting, awaiting the
// number of requests waiting for a response. Diagnostics and leak tests.
func (c *Conn) Exchanges() (pending, awaiting int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending), len(c.awaiting)
}

// Reset models a device reboot: all volatile exchange state — pending
// CON retransmissions, requests awaiting responses, and the duplicate-
// detection cache — is dropped, and outstanding requests fail with
// ErrClosed. Unlike Close the endpoint stays usable and the transport
// stays open: the rebooted node comes back with fresh (well, Seed-reset
// is not modeled — MIDs/tokens keep counting, which RFC 7252 permits)
// exchange state. Failure callbacks fire in sorted key order so a
// simulated crash produces a deterministic event sequence.
func (c *Conn) Reset() {
	c.mu.Lock()
	for _, p := range c.pending {
		if p.cancel != nil {
			p.cancel()
		}
	}
	keys := make([]string, 0, len(c.awaiting))
	for k := range c.awaiting {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fns := make([]ResponseFunc, 0, len(keys))
	for _, k := range keys {
		r := c.awaiting[k]
		if r.timer != nil {
			r.timer()
		}
		fns = append(fns, r.fn)
	}
	c.pending = make(map[string]*outCON)
	c.awaiting = make(map[string]*reqState)
	c.dedup = make(map[string]dedupEntry)
	c.dedupQ = nil
	c.dedupHead = 0
	c.mu.Unlock()
	for _, fn := range fns {
		fn(nil, ErrClosed)
	}
}

func key(addr string, mid uint16) string { return fmt.Sprintf("%s|%d", addr, mid) }

func tokenKey(addr string, token []byte) string {
	return fmt.Sprintf("%s|%x", addr, token)
}

func (c *Conn) newMID() uint16 {
	c.nextMID++
	return c.nextMID
}

// allocMIDs reserves a block of n consecutive message IDs in one lock
// round and returns the first, so a notification fan-out pays one lock
// acquisition per batch instead of one per observer. The ID sequence is
// exactly what n calls of newMID would have produced. MIDs wrap at 2^16;
// batches larger than that alias within themselves, which RFC 7252
// tolerates for NONs (retransmission state is never keyed on them here).
func (c *Conn) allocMIDs(n int) uint16 {
	c.mu.Lock()
	first := c.nextMID + 1
	c.nextMID += uint16(n)
	c.mu.Unlock()
	return first
}

func (c *Conn) newToken() []byte {
	c.nextToken++
	tok := make([]byte, 8)
	binary.BigEndian.PutUint64(tok, c.nextToken)
	return tok
}

// Request sends req to addr and invokes fn with the response. If req.Type
// is Confirmable, the message layer retransmits with exponential backoff.
// Responses carrying Block2 with the "more" flag are fetched and
// reassembled transparently. If the request carries Observe=0, fn fires
// once per notification until CancelObserve.
func (c *Conn) Request(addr string, req *Message, fn ResponseFunc) {
	if fn == nil {
		fn = func(*Message, error) {} // fire-and-forget request
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fn(nil, ErrClosed)
		return
	}
	if req.Token == nil {
		req.Token = c.newToken()
	}
	req.MessageID = c.newMID()
	// The exchange's journey: continue the packet being processed (a
	// request made from a receive handler), or start a fresh one.
	jid := c.journeyCurrent()
	if jid == 0 && c.js != nil {
		jid = c.js.New()
	}
	c.rec.Emit(c.traceNode, trace.CoAPRequest, int64(req.MessageID), int64(req.Code), 0, jid)
	obsOpt, isObs := req.Option(OptObserve)
	observe := isObs && obsOpt.Uint() == 0
	st := &reqState{fn: fn, observe: observe, origReq: req, addr: addr, journey: jid}
	tk := tokenKey(addr, req.Token)
	c.awaiting[tk] = st
	if req.Type == NonConfirmable {
		st.timer = c.sched.Schedule(c.cfg.NonTimeout, func() {
			c.failRequest(tk, ErrTimeout)
		})
	}
	c.mu.Unlock()
	c.withJourney(jid, func() {
		c.send(addr, req, func(err error) { c.failRequest(tk, err) })
	})
}

// Get is a convenience confirmable GET.
func (c *Conn) Get(addr, path string, fn ResponseFunc) {
	m := &Message{Type: Confirmable, Code: CodeGET}
	m.SetPath(path)
	c.Request(addr, m, fn)
}

// Put is a convenience confirmable PUT.
func (c *Conn) Put(addr, path string, contentFormat uint32, payload []byte, fn ResponseFunc) {
	m := &Message{Type: Confirmable, Code: CodePUT, Payload: payload}
	m.SetPath(path)
	m.AddUintOption(OptContentFormat, contentFormat)
	c.Request(addr, m, fn)
}

// Post is a convenience confirmable POST.
func (c *Conn) Post(addr, path string, contentFormat uint32, payload []byte, fn ResponseFunc) {
	m := &Message{Type: Confirmable, Code: CodePOST, Payload: payload}
	m.SetPath(path)
	m.AddUintOption(OptContentFormat, contentFormat)
	c.Request(addr, m, fn)
}

// Observe registers for notifications of path at addr. The returned token
// identifies the registration for CancelObserve.
func (c *Conn) Observe(addr, path string, fn ResponseFunc) []byte {
	m := &Message{Type: Confirmable, Code: CodeGET}
	m.SetPath(path)
	m.AddUintOption(OptObserve, 0)
	c.mu.Lock()
	tok := c.newToken()
	c.mu.Unlock()
	m.Token = tok
	c.Request(addr, m, fn)
	return tok
}

// CancelObserve deregisters a previous Observe (RFC 7641 §3.6, with
// Observe=1).
func (c *Conn) CancelObserve(addr string, token []byte, path string) {
	c.mu.Lock()
	delete(c.awaiting, tokenKey(addr, token))
	c.mu.Unlock()
	m := &Message{Type: NonConfirmable, Code: CodeGET, Token: token, MessageID: 0}
	m.SetPath(path)
	m.AddUintOption(OptObserve, 1)
	c.mu.Lock()
	m.MessageID = c.newMID()
	c.mu.Unlock()
	data, err := m.Marshal()
	if err == nil {
		_ = c.tr.Send(addr, data)
	}
}

// failRequest finishes a pending request with an error.
func (c *Conn) failRequest(tk string, err error) {
	c.mu.Lock()
	st, ok := c.awaiting[tk]
	if ok {
		delete(c.awaiting, tk)
		if st.timer != nil {
			st.timer()
		}
	}
	c.mu.Unlock()
	if ok {
		st.fn(nil, err)
	}
}

// send transmits m to addr; for CONs it installs the retransmission state.
// onFail fires if the message layer gives up.
func (c *Conn) send(addr string, m *Message, onFail func(err error)) {
	data, err := m.Marshal()
	if err != nil {
		if onFail != nil {
			onFail(err)
		}
		return
	}
	if m.Type == Confirmable {
		c.mu.Lock()
		timeout := time.Duration(float64(c.cfg.AckTimeout) * (1 + (c.cfg.AckRandomFactor-1)*c.rng.Float64()))
		p := &outCON{data: data, addr: addr, timeout: timeout, onFail: onFail, journey: c.journeyCurrent()}
		k := key(addr, m.MessageID)
		c.pending[k] = p
		c.armRetransmit(k, p)
		c.mu.Unlock()
	}
	_ = c.tr.Send(addr, data)
}

// armRetransmit must be called with c.mu held.
func (c *Conn) armRetransmit(k string, p *outCON) {
	p.cancel = c.sched.Schedule(p.timeout, func() {
		c.mu.Lock()
		cur, ok := c.pending[k]
		if !ok || cur != p || c.closed {
			c.mu.Unlock()
			return
		}
		p.attempts++
		if p.attempts > c.cfg.MaxRetransmit {
			delete(c.pending, k)
			onFail := p.onFail
			c.mu.Unlock()
			c.rec.Emit(c.traceNode, trace.CoAPTimeout, 0, int64(p.attempts), 0, p.journey)
			if onFail != nil {
				onFail(ErrTimeout)
			}
			return
		}
		p.timeout *= 2
		c.armRetransmit(k, p)
		data, addr := p.data, p.addr
		c.mu.Unlock()
		c.rec.Emit(c.traceNode, trace.CoAPRetransmit, 0, int64(p.attempts), 0, p.journey)
		// The retransmitted copy continues the original journey.
		c.withJourney(p.journey, func() {
			_ = c.tr.Send(addr, data)
		})
	})
}

// ackReceived clears retransmission state for (addr, mid).
func (c *Conn) ackReceived(addr string, mid uint16) {
	c.mu.Lock()
	k := key(addr, mid)
	if p, ok := c.pending[k]; ok {
		if p.cancel != nil {
			p.cancel()
		}
		delete(c.pending, k)
	}
	c.mu.Unlock()
}

// onDatagram is the transport receive callback.
func (c *Conn) onDatagram(from string, data []byte) {
	m, err := Unmarshal(data)
	if err != nil {
		return // RFC: silently ignore garbage
	}
	switch m.Type {
	case Acknowledgement:
		c.ackReceived(from, m.MessageID)
		if m.Code != CodeEmpty {
			c.handleResponse(from, m)
		}
	case Reset:
		c.ackReceived(from, m.MessageID)
		c.handleReset(from, m)
	case Confirmable, NonConfirmable:
		if m.Code.IsRequest() {
			c.handleRequest(from, m)
		} else if m.Code.IsResponse() {
			if m.Type == Confirmable {
				c.sendEmpty(Acknowledgement, from, m.MessageID)
			}
			c.handleResponse(from, m)
		} else if m.Type == Confirmable {
			// CON ping: answer with RST per RFC 7252 §4.3.
			c.sendEmpty(Reset, from, m.MessageID)
		}
	}
}

func (c *Conn) sendEmpty(t Type, addr string, mid uint16) {
	m := &Message{Type: t, Code: CodeEmpty, MessageID: mid}
	data, err := m.Marshal()
	if err == nil {
		_ = c.tr.Send(addr, data)
	}
}

func (c *Conn) handleReset(from string, m *Message) {
	// A RST aborts whatever exchange used this MID; observers are
	// removed by the server layer on notification RSTs.
	if c.server != nil {
		c.server.removeObserverByMID(from, m.MessageID)
	}
}

// handleResponse routes a response to its waiting request by token.
func (c *Conn) handleResponse(from string, m *Message) {
	tk := tokenKey(from, m.Token)
	c.mu.Lock()
	st, ok := c.awaiting[tk]
	if !ok {
		c.mu.Unlock()
		// Unsolicited response (e.g., notification after cancel): RST
		// non-ACK messages so the peer stops.
		if m.Type == NonConfirmable || m.Type == Confirmable {
			c.sendEmpty(Reset, from, m.MessageID)
		}
		return
	}
	// Block-wise: accumulate and continue fetching.
	if blk, has := m.Option(OptBlock2); has && m.Code.IsSuccess() {
		v := blk.Uint()
		more := v&0x8 != 0
		st.assembling = append(st.assembling, m.Payload...)
		if more {
			num := v >> 4
			szx := v & 0x7
			next := *st.origReq
			next.Token = m.Token
			next.MessageID = c.newMID()
			next.RemoveOption(OptBlock2)
			next.AddUintOption(OptBlock2, (num+1)<<4|szx)
			next.Payload = nil
			addr := st.addr
			jid := st.journey
			c.mu.Unlock()
			c.withJourney(jid, func() {
				c.send(addr, &next, func(err error) { c.failRequest(tk, err) })
			})
			return
		}
		m.Payload = st.assembling
		st.assembling = nil
	}
	if !st.observe {
		delete(c.awaiting, tk)
		if st.timer != nil {
			st.timer()
		}
	}
	fn := st.fn
	jid := st.journey
	c.mu.Unlock()
	c.rec.Emit(c.traceNode, trace.CoAPResponse, int64(m.MessageID), int64(m.Code), 0, jid)
	fn(m, nil)
}

// handleRequest dispatches an inbound request to the server.
func (c *Conn) handleRequest(from string, m *Message) {
	now := c.sched.Now()
	k := key(from, m.MessageID)
	c.mu.Lock()
	c.expireDedupLocked(now)
	// Deduplicate: replay the cached response for a repeated CON.
	if e, dup := c.dedup[k]; dup && m.Type == Confirmable {
		c.mu.Unlock()
		if e.response != nil {
			_ = c.tr.Send(from, e.response)
		}
		return
	}
	server := c.server
	c.mu.Unlock()

	var resp *Message
	if server == nil {
		resp = &Message{Code: CodeNotImplemented}
	} else {
		resp = server.handle(from, m)
	}
	if resp == nil {
		// Server chose not to respond (e.g., observe dereg via RST).
		if m.Type == Confirmable {
			c.sendEmpty(Acknowledgement, from, m.MessageID)
		}
		return
	}
	resp.Token = m.Token
	if m.Type == Confirmable {
		resp.Type = Acknowledgement
		resp.MessageID = m.MessageID
	} else {
		resp.Type = NonConfirmable
		c.mu.Lock()
		resp.MessageID = c.newMID()
		c.mu.Unlock()
	}
	data, err := resp.Marshal()
	if err != nil {
		return
	}
	if m.Type == Confirmable {
		// Only CONs are deduplicated (RFC 7252 §4.5): caching NON
		// requests too would retain a response per message for no replay
		// benefit — and let a stale NON entry alias a later CON that
		// reuses the MID.
		c.mu.Lock()
		c.dedup[k] = dedupEntry{at: now, response: data}
		c.dedupQ = append(c.dedupQ, dedupRef{k: k, at: now})
		c.mu.Unlock()
	}
	_ = c.tr.Send(from, data)
}

// expireDedupLocked drops dedup entries older than ExchangeLifetime.
// Queue order is insertion order and timestamps are monotonic, so it
// stops at the first live entry — amortized O(1) per request. Must be
// called with c.mu held.
func (c *Conn) expireDedupLocked(now time.Duration) {
	for c.dedupHead < len(c.dedupQ) {
		ref := c.dedupQ[c.dedupHead]
		if e, ok := c.dedup[ref.k]; ok && e.at == ref.at {
			if now-e.at <= c.cfg.ExchangeLifetime {
				break
			}
			delete(c.dedup, ref.k)
		}
		c.dedupQ[c.dedupHead] = dedupRef{} // release the key string
		c.dedupHead++
	}
	if c.dedupHead > 64 && c.dedupHead*2 >= len(c.dedupQ) {
		n := copy(c.dedupQ, c.dedupQ[c.dedupHead:])
		clear(c.dedupQ[n:])
		c.dedupQ = c.dedupQ[:n]
		c.dedupHead = 0
	}
}
