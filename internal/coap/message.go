// Package coap implements the Constrained Application Protocol (RFC 7252,
// paper ref [15]) — the middleware protocol §III-B presents as the
// textbook answer to sensing-layer interoperability — plus the Observe
// extension (RFC 7641) and a simplified block-wise transfer (RFC 7959).
//
// The implementation is transport-agnostic: the same message layer,
// client, and server run over real UDP sockets (cmd/iiotgw) and over the
// emulated RPL mesh (internal/core), which is exactly the property that
// makes CoAP useful as integration middleware.
package coap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"iiotds/internal/netbuf"
)

// Type is the CoAP message type.
type Type uint8

// Message types (RFC 7252 §3).
const (
	Confirmable     Type = 0
	NonConfirmable  Type = 1
	Acknowledgement Type = 2
	Reset           Type = 3
)

// String returns the RFC's abbreviation.
func (t Type) String() string {
	switch t {
	case Confirmable:
		return "CON"
	case NonConfirmable:
		return "NON"
	case Acknowledgement:
		return "ACK"
	case Reset:
		return "RST"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Code is a CoAP method or response code, encoded as c.dd.
type Code uint8

// MakeCode builds a Code from its class and detail.
func MakeCode(class, detail uint8) Code { return Code(class<<5 | detail&0x1F) }

// Class returns the code class (0 request, 2 success, 4 client error,
// 5 server error).
func (c Code) Class() uint8 { return uint8(c) >> 5 }

// Detail returns the dd part of c.dd.
func (c Code) Detail() uint8 { return uint8(c) & 0x1F }

// String renders c.dd form.
func (c Code) String() string { return fmt.Sprintf("%d.%02d", c.Class(), c.Detail()) }

// Method and response codes (RFC 7252 §12.1).
const (
	CodeEmpty  Code = 0
	CodeGET    Code = Code(1)
	CodePOST   Code = Code(2)
	CodePUT    Code = Code(3)
	CodeDELETE Code = Code(4)
)

// Response codes.
var (
	CodeCreated              = MakeCode(2, 1)
	CodeDeleted              = MakeCode(2, 2)
	CodeValid                = MakeCode(2, 3)
	CodeChanged              = MakeCode(2, 4)
	CodeContent              = MakeCode(2, 5)
	CodeBadRequest           = MakeCode(4, 0)
	CodeUnauthorized         = MakeCode(4, 1)
	CodeForbidden            = MakeCode(4, 3)
	CodeNotFound             = MakeCode(4, 4)
	CodeMethodNotAllowed     = MakeCode(4, 5)
	CodeRequestTooLarge      = MakeCode(4, 13)
	CodeInternalServerError  = MakeCode(5, 0)
	CodeNotImplemented       = MakeCode(5, 1)
	CodeServiceUnavailable   = MakeCode(5, 3)
	CodeGatewayTimeout       = MakeCode(5, 4)
	CodeProxyingNotSupported = MakeCode(5, 5)
)

// IsRequest reports whether the code is a request method.
func (c Code) IsRequest() bool { return c.Class() == 0 && c != CodeEmpty }

// IsResponse reports whether the code is a response.
func (c Code) IsResponse() bool { return c.Class() >= 2 }

// IsSuccess reports whether the code is a 2.xx response.
func (c Code) IsSuccess() bool { return c.Class() == 2 }

// OptionID identifies a CoAP option (RFC 7252 §12.2).
type OptionID uint16

// Option numbers used by this implementation.
const (
	OptIfMatch       OptionID = 1
	OptObserve       OptionID = 6
	OptURIPath       OptionID = 11
	OptContentFormat OptionID = 12
	OptMaxAge        OptionID = 14
	OptURIQuery      OptionID = 15
	OptAccept        OptionID = 17
	OptBlock2        OptionID = 23
	OptBlock1        OptionID = 27
)

// Content formats (RFC 7252 §12.3).
const (
	FormatText       uint32 = 0
	FormatLinkFormat uint32 = 40
	FormatOctets     uint32 = 42
	FormatJSON       uint32 = 50
	FormatCBOR       uint32 = 60
)

// Option is one CoAP option instance.
type Option struct {
	ID    OptionID
	Value []byte
}

// Uint decodes the option value as a uint (RFC 7252 §3.2 uint format).
func (o Option) Uint() uint32 {
	var v uint32
	for _, b := range o.Value {
		v = v<<8 | uint32(b)
	}
	return v
}

// uintBytes encodes v in the minimal big-endian form (empty for zero).
func uintBytes(v uint32) []byte {
	switch {
	case v == 0:
		return nil
	case v < 1<<8:
		return []byte{byte(v)}
	case v < 1<<16:
		return []byte{byte(v >> 8), byte(v)}
	case v < 1<<24:
		return []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	default:
		return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
}

// Message is one CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// AddOption appends an option.
func (m *Message) AddOption(id OptionID, value []byte) {
	m.Options = append(m.Options, Option{ID: id, Value: value})
}

// AddUintOption appends an option with a uint value.
func (m *Message) AddUintOption(id OptionID, v uint32) {
	m.AddOption(id, uintBytes(v))
}

// Option returns the first option with the given ID.
func (m *Message) Option(id OptionID) (Option, bool) {
	for _, o := range m.Options {
		if o.ID == id {
			return o, true
		}
	}
	return Option{}, false
}

// RemoveOption deletes every instance of the option.
func (m *Message) RemoveOption(id OptionID) {
	out := m.Options[:0]
	for _, o := range m.Options {
		if o.ID != id {
			out = append(out, o)
		}
	}
	m.Options = out
}

// SetPath sets the Uri-Path options from a "/"-separated path.
func (m *Message) SetPath(path string) {
	m.RemoveOption(OptURIPath)
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			if i > start {
				m.AddOption(OptURIPath, []byte(path[start:i]))
			}
			start = i + 1
		}
	}
}

// Path reassembles the Uri-Path options into a "/"-separated path.
func (m *Message) Path() string {
	var out []byte
	for _, o := range m.Options {
		if o.ID == OptURIPath {
			if len(out) > 0 {
				out = append(out, '/')
			}
			out = append(out, o.Value...)
		}
	}
	return string(out)
}

// Queries returns all Uri-Query option values.
func (m *Message) Queries() []string {
	var out []string
	for _, o := range m.Options {
		if o.ID == OptURIQuery {
			out = append(out, string(o.Value))
		}
	}
	return out
}

// Marshaling errors.
var (
	ErrTruncated  = errors.New("coap: truncated message")
	ErrBadVersion = errors.New("coap: unsupported version")
	ErrBadToken   = errors.New("coap: token longer than 8 bytes")
	ErrBadOption  = errors.New("coap: malformed option")
	ErrFormat     = errors.New("coap: message format error")
)

const version = 1

// Marshal serializes the message per RFC 7252 §3.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, ErrBadToken
	}
	buf := make([]byte, 0, 4+len(m.Token)+len(m.Payload)+len(m.Options)*4)
	buf = append(buf, version<<6|uint8(m.Type)<<4|uint8(len(m.Token)))
	buf = append(buf, uint8(m.Code))
	var mid [2]byte
	binary.BigEndian.PutUint16(mid[:], m.MessageID)
	buf = append(buf, mid[:]...)
	buf = append(buf, m.Token...)

	// Options must be encoded in ascending ID order with delta encoding.
	opts := make([]Option, len(m.Options))
	copy(opts, m.Options)
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].ID < opts[j].ID })
	prev := OptionID(0)
	for _, o := range opts {
		delta := int(o.ID - prev)
		prev = o.ID
		length := len(o.Value)
		db, dext := optNibble(delta)
		lb, lext := optNibble(length)
		buf = append(buf, db<<4|lb)
		buf = append(buf, dext...)
		buf = append(buf, lext...)
		buf = append(buf, o.Value...)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, 0xFF)
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// optNibble encodes a delta or length into its nibble and extension bytes.
func optNibble(v int) (nibble uint8, ext []byte) {
	switch {
	case v < 13:
		return uint8(v), nil
	case v < 269:
		return 13, []byte{uint8(v - 13)}
	default:
		e := make([]byte, 2)
		binary.BigEndian.PutUint16(e, uint16(v-269))
		return 14, e
	}
}

// Unmarshal parses a CoAP message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 4 {
		return nil, ErrTruncated
	}
	if data[0]>>6 != version {
		return nil, ErrBadVersion
	}
	m := &Message{
		Type:      Type(data[0] >> 4 & 0x3),
		Code:      Code(data[1]),
		MessageID: binary.BigEndian.Uint16(data[2:4]),
	}
	tkl := int(data[0] & 0x0F)
	if tkl > 8 {
		return nil, ErrBadToken
	}
	p := 4
	if len(data) < p+tkl {
		return nil, ErrTruncated
	}
	if tkl > 0 {
		m.Token = netbuf.CloneBytes(data[p : p+tkl])
	}
	p += tkl

	prev := OptionID(0)
	for p < len(data) {
		if data[p] == 0xFF {
			p++
			if p >= len(data) {
				return nil, ErrFormat // payload marker with empty payload
			}
			m.Payload = netbuf.CloneBytes(data[p:])
			return m, nil
		}
		db := int(data[p] >> 4)
		lb := int(data[p] & 0x0F)
		p++
		delta, n, err := optExt(data, p, db)
		if err != nil {
			return nil, err
		}
		p = n
		length, n, err := optExt(data, p, lb)
		if err != nil {
			return nil, err
		}
		p = n
		if len(data) < p+length {
			return nil, ErrTruncated
		}
		// Option numbers are 16-bit; a cumulative delta past 65535 would
		// silently wrap OptionID to a smaller number, breaking the
		// ascending-order invariant Marshal relies on.
		if int(prev)+delta > 0xFFFF {
			return nil, ErrBadOption
		}
		prev += OptionID(delta)
		m.Options = append(m.Options, Option{
			ID:    prev,
			Value: netbuf.CloneBytes(data[p : p+length]),
		})
		p += length
	}
	return m, nil
}

func optExt(data []byte, p, nibble int) (value, next int, err error) {
	switch nibble {
	case 13:
		if p >= len(data) {
			return 0, 0, ErrTruncated
		}
		return int(data[p]) + 13, p + 1, nil
	case 14:
		if p+1 >= len(data) {
			return 0, 0, ErrTruncated
		}
		return int(binary.BigEndian.Uint16(data[p:p+2])) + 269, p + 2, nil
	case 15:
		return 0, 0, ErrBadOption
	default:
		return nibble, p, nil
	}
}
