package coap

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rawClient is a hand-driven CoAP endpoint: it records every inbound
// message and sends crafted datagrams, giving observe tests full control
// over registration, RSTs, and deregistration on the wire.
type rawClient struct {
	tr   *LoopTransport
	addr string

	mu   sync.Mutex
	msgs []*Message
}

func newRawClient(w *world, addr string) *rawClient {
	c := &rawClient{tr: w.board.Attach(addr), addr: addr}
	c.tr.SetReceiver(func(from string, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		c.mu.Lock()
		c.msgs = append(c.msgs, m)
		c.mu.Unlock()
	})
	return c
}

func (c *rawClient) send(t *testing.T, dst string, m *Message) {
	t.Helper()
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := c.tr.Send(dst, data); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func (c *rawClient) received() []*Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Message, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func registerMsg(token []byte, mid uint16, path string, observe uint32) *Message {
	m := &Message{Type: NonConfirmable, Code: CodeGET, MessageID: mid, Token: token}
	m.SetPath(path)
	m.AddUintOption(OptObserve, observe)
	return m
}

// TestObserveLifecycle walks one registration through its whole arc:
// register → notifications (NON, with every-8th confirmable) → RST-drop
// via removeObserverByMID → re-register with the same token → explicit
// deregistration with Observe=1.
func TestObserveLifecycle(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	temp := srv.Resource("temp").Observable().Get(func(string, *Message) *Message {
		return TextResponse("20.0")
	})
	srvConn.Serve(srv)

	cli := newRawClient(w, "cli")
	tok := []byte{0xAA, 0xBB}

	// Register.
	cli.send(t, "srv", registerMsg(tok, 1, "temp", 0))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 1 {
		t.Fatalf("observers = %d after register", temp.ObserverCount())
	}
	got := cli.received()
	if len(got) != 1 || !got[0].Code.IsSuccess() {
		t.Fatalf("registration response = %+v", got)
	}
	if _, has := got[0].Option(OptObserve); !has {
		t.Fatal("registration response missing Observe option")
	}

	// Notify through seq 8: seqs 2..8, so seq 8 must be confirmable and
	// the rest non-confirmable.
	for i := 0; i < 7; i++ {
		temp.Notify(FormatText, []byte(fmt.Sprintf("2%d.0", i)))
		w.k.RunFor(time.Second)
	}
	got = cli.received()
	if len(got) != 8 {
		t.Fatalf("received %d messages, want 8 (1 response + 7 notifications)", len(got))
	}
	var cons, nons int
	lastSeq := uint32(0)
	for _, m := range got[1:] {
		switch m.Type {
		case Confirmable:
			cons++
		case NonConfirmable:
			nons++
		default:
			t.Fatalf("unexpected notification type %v", m.Type)
		}
		o, has := m.Option(OptObserve)
		if !has {
			t.Fatal("notification missing Observe option")
		}
		if o.Uint() <= lastSeq {
			t.Fatalf("observe seq not increasing: %d after %d", o.Uint(), lastSeq)
		}
		lastSeq = o.Uint()
	}
	if cons != 1 || nons != 6 {
		t.Fatalf("cons=%d nons=%d, want 1 CON (seq 8) and 6 NONs", cons, nons)
	}

	// RST the last notification: the server must drop the registration
	// (removeObserverByMID).
	last := got[len(got)-1]
	cli.send(t, "srv", &Message{Type: Reset, Code: CodeEmpty, MessageID: last.MessageID})
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 0 {
		t.Fatalf("observers = %d after RST, want 0", temp.ObserverCount())
	}

	// Re-register with the same token.
	cli.send(t, "srv", registerMsg(tok, 2, "temp", 0))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 1 {
		t.Fatalf("observers = %d after re-register", temp.ObserverCount())
	}
	before := len(cli.received())
	temp.Notify(FormatText, []byte("30.0"))
	w.k.RunFor(time.Second)
	if len(cli.received()) != before+1 {
		t.Fatal("no notification after re-registration")
	}

	// Deregister (Observe=1).
	cli.send(t, "srv", registerMsg(tok, 3, "temp", 1))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 0 {
		t.Fatalf("observers = %d after deregister, want 0", temp.ObserverCount())
	}
	before = len(cli.received())
	temp.Notify(FormatText, []byte("31.0"))
	w.k.RunFor(time.Second)
	after := cli.received()
	for _, m := range after[before:] {
		if _, has := m.Option(OptObserve); has && m.Code == CodeContent && m.Type != Acknowledgement {
			t.Fatalf("notification after deregister: %+v", m)
		}
	}
}

// TestFailedGETDoesNotRegisterObserver pins RFC 7641 §4.1: a non-success
// response must not leave a registration behind. The old code registered
// before invoking the handler, so a 5.00 from the adapter decode path
// left a dangling observer that kept receiving notifications.
func TestFailedGETDoesNotRegisterObserver(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	fail := true
	temp := srv.Resource("temp").Observable().Get(func(string, *Message) *Message {
		if fail {
			return ErrorResponse(CodeInternalServerError, "decode error")
		}
		return TextResponse("20.0")
	})
	srvConn.Serve(srv)

	cli := newRawClient(w, "cli")
	cli.send(t, "srv", registerMsg([]byte{1}, 1, "temp", 0))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 0 {
		t.Fatalf("observers = %d after failed GET, want 0", temp.ObserverCount())
	}
	got := cli.received()
	if len(got) != 1 || got[0].Code != CodeInternalServerError {
		t.Fatalf("response = %+v, want 5.00", got)
	}
	if _, has := got[0].Option(OptObserve); has {
		t.Fatal("error response must not carry an Observe option")
	}

	// The same GET succeeding afterwards must register normally.
	fail = false
	cli.send(t, "srv", registerMsg([]byte{1}, 2, "temp", 0))
	w.k.RunFor(time.Second)
	if temp.ObserverCount() != 1 {
		t.Fatalf("observers = %d after successful GET, want 1", temp.ObserverCount())
	}
}

// TestObserverCapBoundary exercises admission control at a configurable
// cap: the table fills to exactly the limit, the next registration gets
// 5.03 with the configured Max-Age retry hint, and re-registering an
// existing observer never consumes a slot.
func TestObserverCapBoundary(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{})
	srv := NewServer()
	srv.SetObserverLimit(4)
	srv.SetRejectMaxAge(30)
	temp := srv.Resource("temp").Observable().Get(func(string, *Message) *Message {
		return TextResponse("20.0")
	})
	srvConn.Serve(srv)

	clients := make([]*rawClient, 5)
	for i := range clients {
		clients[i] = newRawClient(w, fmt.Sprintf("cli%d", i))
	}
	for i := 0; i < 4; i++ {
		clients[i].send(t, "srv", registerMsg([]byte{byte(i)}, uint16(i+1), "temp", 0))
		w.k.RunFor(time.Second)
	}
	if temp.ObserverCount() != 4 {
		t.Fatalf("observers = %d, want 4", temp.ObserverCount())
	}

	// Boundary: the fifth distinct observer is rejected with 5.03+Max-Age.
	clients[4].send(t, "srv", registerMsg([]byte{4}, 5, "temp", 0))
	w.k.RunFor(time.Second)
	got := clients[4].received()
	if len(got) != 1 || got[0].Code != CodeServiceUnavailable {
		t.Fatalf("over-cap response = %+v, want 5.03", got)
	}
	if age, has := got[0].Option(OptMaxAge); !has || age.Uint() != 30 {
		t.Fatalf("over-cap response Max-Age = %v, want 30", got[0].Options)
	}
	if temp.ObserverCount() != 4 {
		t.Fatalf("observers = %d after reject, want 4", temp.ObserverCount())
	}

	// Re-registering observer 0 with its existing token is not a new slot.
	clients[0].send(t, "srv", registerMsg([]byte{0}, 6, "temp", 0))
	w.k.RunFor(time.Second)
	got = clients[0].received()
	if last := got[len(got)-1]; !last.Code.IsSuccess() {
		t.Fatalf("re-registration at cap rejected: %+v", last)
	}
	if temp.ObserverCount() != 4 {
		t.Fatalf("observers = %d after re-register, want 4", temp.ObserverCount())
	}

	// A freed slot is reusable.
	clients[1].send(t, "srv", registerMsg([]byte{1}, 7, "temp", 1))
	w.k.RunFor(time.Second)
	clients[4].send(t, "srv", registerMsg([]byte{4}, 8, "temp", 0))
	w.k.RunFor(time.Second)
	got = clients[4].received()
	if last := got[len(got)-1]; !last.Code.IsSuccess() {
		t.Fatalf("registration into freed slot rejected: %+v", last)
	}
	if temp.ObserverCount() != 4 {
		t.Fatalf("observers = %d, want 4", temp.ObserverCount())
	}
}

// sinkTransport discards (or counts) outbound datagrams; the inbound
// path is never used. It lets observe fan-out run without a peer.
type sinkTransport struct {
	sent atomic.Int64
}

func (s *sinkTransport) Send(addr string, data []byte) error {
	s.sent.Add(1)
	return nil
}
func (s *sinkTransport) SetReceiver(func(from string, data []byte)) {}
func (s *sinkTransport) LocalAddr() string                          { return "sink" }
func (s *sinkTransport) Close() error                               { return nil }

// TestLastMIDRaceNotifyVsRST is the -race regression for the
// observer.lastMID data race: Notify used to write lastMID after
// dropping the resource lock while removeObserverByMID read it under the
// lock. Run with -race; the atomic field keeps this quiet.
func TestLastMIDRaceNotifyVsRST(t *testing.T) {
	conn := NewConn(&sinkTransport{}, &SystemScheduler{}, ConnConfig{})
	defer conn.Close()
	srv := NewServer()
	srv.SetObserverLimit(1024)
	srv.SetConfirmEvery(-1) // NON-only: no retransmit timers to leak
	temp := srv.Resource("temp").Observable().Get(func(string, *Message) *Message {
		return TextResponse("x")
	})
	conn.Serve(srv)
	for i := 0; i < 64; i++ {
		if err := temp.addObserver(fmt.Sprintf("c%d", i), []byte{byte(i), 1}); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for mid := uint16(0); mid < 2000; mid++ {
			srv.removeObserverByMID("c3", mid)
		}
	}()
	for i := 0; i < 50; i++ {
		temp.Notify(FormatText, []byte("21.5"))
	}
	<-done
}

// TestNotifyEncoderMatchesMarshal pins the zero-alloc NON encoder to the
// generic Message.Marshal byte stream.
func TestNotifyEncoderMatchesMarshal(t *testing.T) {
	cases := []struct {
		seq, cf uint32
		payload []byte
		token   []byte
		mid     uint16
	}{
		{1, FormatText, []byte("20.5"), []byte{0xAA}, 7},
		{0, FormatText, nil, nil, 0},
		{300, FormatJSON, []byte(`{"v":1}`), []byte{1, 2, 3, 4, 5, 6, 7, 8}, 65535},
		{1 << 20, FormatOctets, bytes.Repeat([]byte{0xFF}, 64), []byte{0}, 256},
	}
	var enc notifyEncoder
	for _, c := range cases {
		m := &Message{Type: NonConfirmable, Code: CodeContent, MessageID: c.mid, Token: c.token, Payload: c.payload}
		m.AddUintOption(OptObserve, c.seq)
		m.AddUintOption(OptContentFormat, c.cf)
		want, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		enc.prepare(c.seq, c.cf, c.payload)
		got := enc.packet(c.mid, c.token)
		if !bytes.Equal(got, want) {
			t.Errorf("seq=%d cf=%d: encoder\n got %x\nwant %x", c.seq, c.cf, got, want)
		}
	}
}

// TestNotifyNONHotPathZeroAllocs is the CI alloc gate on the NON-notify
// hot path: per-shard fan-out with the reused encoder and scratch slice
// must not allocate per observer (or per shard) at steady state.
func TestNotifyNONHotPathZeroAllocs(t *testing.T) {
	conn := NewConn(&sinkTransport{}, &SystemScheduler{}, ConnConfig{})
	defer conn.Close()
	srv := NewServer()
	srv.SetObserverLimit(1 << 20)
	srv.SetConfirmEvery(-1)
	temp := srv.Resource("temp").Observable()
	conn.Serve(srv)
	for i := 0; i < 512; i++ {
		if err := temp.addObserver(fmt.Sprintf("client-%05d", i), []byte{byte(i >> 8), byte(i), 9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	var enc notifyEncoder
	var scratch []*observer
	payload := []byte("21.53")
	allocs := testing.AllocsPerRun(100, func() {
		seq := temp.obsSeq.Add(1)
		for si := 0; si < obsShards; si++ {
			scratch = temp.notifyShard(si, seq, FormatText, payload, &enc, scratch[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("NON-notify hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestNotifyPoolDelivers checks the parallel fan-out path end to end:
// all observers receive the notification and the pool drains cleanly.
func TestNotifyPoolDelivers(t *testing.T) {
	sink := &sinkTransport{}
	conn := NewConn(sink, &SystemScheduler{}, ConnConfig{})
	defer conn.Close()
	srv := NewServer()
	srv.SetObserverLimit(1 << 20)
	srv.SetConfirmEvery(-1)
	temp := srv.Resource("temp").Observable()
	conn.Serve(srv)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := temp.addObserver(fmt.Sprintf("c%d", i), []byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srv.StartNotifyPool(64)
	defer srv.StopNotifyPool()
	temp.Notify(FormatText, []byte("22.0"))
	deadline := time.Now().Add(10 * time.Second)
	for sink.sent.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/%d notifications", sink.sent.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if d := srv.NotifyDropped(); d != 0 {
		t.Fatalf("dropped = %d with an idle queue", d)
	}
	if temp.ObserverCount() != n {
		t.Fatalf("observers = %d after notify, want %d", temp.ObserverCount(), n)
	}
}

// blockingTransport parks every Send until released, so queue
// backpressure is reachable deterministically.
type blockingTransport struct {
	release chan struct{}
}

func (b *blockingTransport) Send(addr string, data []byte) error {
	<-b.release
	return nil
}
func (b *blockingTransport) SetReceiver(func(from string, data []byte)) {}
func (b *blockingTransport) LocalAddr() string                          { return "blocked" }
func (b *blockingTransport) Close() error                               { return nil }

// TestNotifyPoolBackpressure fills a length-1 shard queue behind a
// blocked transport and checks that excess pushes are counted as drops
// instead of blocking the publisher.
func TestNotifyPoolBackpressure(t *testing.T) {
	bt := &blockingTransport{release: make(chan struct{})}
	conn := NewConn(bt, &SystemScheduler{}, ConnConfig{})
	srv := NewServer()
	srv.SetConfirmEvery(-1)
	temp := srv.Resource("temp").Observable()
	conn.Serve(srv)
	// One observer: exactly one shard is active, so per-notify dispatch
	// is one queue push.
	if err := temp.addObserver("c0", []byte{1}); err != nil {
		t.Fatal(err)
	}
	srv.StartNotifyPool(1)
	// First notify occupies the worker (blocked in Send), second fills
	// the queue, the rest must be dropped.
	for i := 0; i < 10; i++ {
		temp.Notify(FormatText, []byte("x"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.NotifyDropped() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want >= 8", srv.NotifyDropped())
		}
		time.Sleep(time.Millisecond)
	}
	close(bt.release)
	srv.StopNotifyPool()
	_ = conn.Close()
}

// TestDedupCONOnlyAndQueueExpiry pins the dedup-state rework: NON
// requests leave no dedup entries, CON entries expire via the FIFO queue
// (amortized O(1)) exactly as the old full scan did, and an expired
// entry's MID can be reused.
func TestDedupCONOnlyAndQueueExpiry(t *testing.T) {
	w := newWorld()
	srvConn, _ := w.endpoint("srv", ConnConfig{ExchangeLifetime: 10 * time.Second})
	calls := 0
	srv := NewServer()
	srv.Resource("count").Get(func(string, *Message) *Message {
		calls++
		return TextResponse(fmt.Sprint(calls))
	})
	srvConn.Serve(srv)
	cli := newRawClient(w, "cli")

	// NON requests must not retain dedup state.
	for mid := uint16(1); mid <= 5; mid++ {
		m := &Message{Type: NonConfirmable, Code: CodeGET, MessageID: mid, Token: []byte{byte(mid)}}
		m.SetPath("count")
		cli.send(t, "srv", m)
	}
	w.k.RunFor(time.Second)
	srvConn.mu.Lock()
	nd := len(srvConn.dedup)
	srvConn.mu.Unlock()
	if nd != 0 {
		t.Fatalf("dedup entries after NON requests = %d, want 0", nd)
	}

	// A duplicate CON replays the cached response without re-invoking
	// the handler.
	con := &Message{Type: Confirmable, Code: CodeGET, MessageID: 100, Token: []byte{0xC0}}
	con.SetPath("count")
	callsBefore := calls
	cli.send(t, "srv", con)
	w.k.RunFor(time.Second)
	cli.send(t, "srv", con)
	w.k.RunFor(time.Second)
	if calls != callsBefore+1 {
		t.Fatalf("handler calls = %d, want %d (duplicate CON deduped)", calls, callsBefore+1)
	}

	// After ExchangeLifetime the entry expires (popped from the queue on
	// the next request) and the same MID is served fresh.
	w.k.RunFor(time.Minute)
	cli.send(t, "srv", con)
	w.k.RunFor(time.Second)
	if calls != callsBefore+2 {
		t.Fatalf("handler calls = %d, want %d (entry expired)", calls, callsBefore+2)
	}
	srvConn.mu.Lock()
	live := len(srvConn.dedup)
	qlen := len(srvConn.dedupQ) - srvConn.dedupHead
	srvConn.mu.Unlock()
	if live != 1 || qlen > 2 {
		t.Fatalf("dedup map=%d queue=%d, want the expired entry gone", live, qlen)
	}
}
