package coap

import (
	"fmt"
	"net"
	"sync"

	"iiotds/internal/clock"
	"iiotds/internal/netbuf"
)

// Transport moves opaque CoAP datagrams between endpoints identified by
// string addresses. Implementations exist for real UDP sockets and for
// the emulated RPL mesh (internal/core), which is what lets the same
// middleware code run in both worlds.
type Transport interface {
	// Send transmits one datagram to addr.
	Send(addr string, data []byte) error
	// SetReceiver installs the inbound datagram callback. It must be
	// called exactly once, before any datagram arrives.
	SetReceiver(fn func(from string, data []byte))
	// LocalAddr returns this endpoint's address.
	LocalAddr() string
	// Close releases transport resources.
	Close() error
}

// CancelFunc cancels a scheduled call; it is safe to call more than once.
type CancelFunc = clock.CancelFunc

// Scheduler abstracts time so the CoAP message layer (retransmissions,
// exchange lifetimes) runs identically on virtual time in the simulator
// and on the wall clock over UDP.
type Scheduler = clock.Scheduler

// SystemScheduler implements Scheduler on the wall clock.
type SystemScheduler = clock.System

// UDPTransport is a Transport over a real UDP socket.
type UDPTransport struct {
	conn *net.UDPConn

	mu   sync.Mutex
	recv func(from string, data []byte)
	done chan struct{}
}

// NewUDPTransport opens a UDP socket bound to bind (e.g., ":5683" or
// "127.0.0.1:0") and starts its reader goroutine.
func NewUDPTransport(bind string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: listen %q: %w", bind, err)
	}
	t := &UDPTransport{conn: conn, done: make(chan struct{})}
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	defer close(t.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			data := make([]byte, n)
			copy(data, buf[:n])
			recv(from.String(), data)
		}
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(addr string, data []byte) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("coap: resolve %q: %w", addr, err)
	}
	_, err = t.conn.WriteToUDP(data, ua)
	return err
}

// SetReceiver implements Transport.
func (t *UDPTransport) SetReceiver(fn func(from string, data []byte)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	err := t.conn.Close()
	<-t.done
	return err
}

var _ Transport = (*UDPTransport)(nil)

// LoopTransport is an in-memory transport connecting named endpoints
// through a shared switchboard — handy for unit tests and single-process
// demos. Delivery is synchronous.
type LoopTransport struct {
	board *Switchboard
	addr  string

	mu   sync.Mutex
	recv func(from string, data []byte)

	// DropEvery, when n > 0, drops every n-th outbound datagram
	// (deterministic loss for retransmission tests). DropFirst drops
	// the first n datagrams outright.
	dropEvery int
	dropFirst int
	sent      int
}

// Switchboard connects LoopTransports by address.
type Switchboard struct {
	mu    sync.Mutex
	ports map[string]*LoopTransport
}

// NewSwitchboard returns an empty switchboard.
func NewSwitchboard() *Switchboard {
	return &Switchboard{ports: make(map[string]*LoopTransport)}
}

// Attach creates (and registers) a transport with the given address.
func (s *Switchboard) Attach(addr string) *LoopTransport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ports[addr]; dup {
		panic(fmt.Sprintf("coap: switchboard address %q attached twice", addr))
	}
	t := &LoopTransport{board: s, addr: addr}
	s.ports[addr] = t
	return t
}

// SetDropEvery makes the transport drop every n-th outbound datagram.
func (t *LoopTransport) SetDropEvery(n int) {
	t.mu.Lock()
	t.dropEvery = n
	t.mu.Unlock()
}

// SetDropFirst makes the transport drop the next n outbound datagrams.
func (t *LoopTransport) SetDropFirst(n int) {
	t.mu.Lock()
	t.dropFirst = n
	t.mu.Unlock()
}

// Sent returns the number of Send calls (including dropped ones).
func (t *LoopTransport) Sent() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent
}

// Send implements Transport.
func (t *LoopTransport) Send(addr string, data []byte) error {
	t.mu.Lock()
	t.sent++
	drop := t.dropEvery > 0 && t.sent%t.dropEvery == 0
	if t.dropFirst > 0 {
		t.dropFirst--
		drop = true
	}
	t.mu.Unlock()
	if drop {
		return nil // lost in transit
	}
	t.board.mu.Lock()
	dst := t.board.ports[addr]
	t.board.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("coap: no endpoint %q", addr)
	}
	dst.mu.Lock()
	recv := dst.recv
	dst.mu.Unlock()
	if recv != nil {
		recv(t.addr, netbuf.CloneBytes(data))
	}
	return nil
}

// SetReceiver implements Transport.
func (t *LoopTransport) SetReceiver(fn func(from string, data []byte)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

// LocalAddr implements Transport.
func (t *LoopTransport) LocalAddr() string { return t.addr }

// Close implements Transport.
func (t *LoopTransport) Close() error {
	t.board.mu.Lock()
	delete(t.board.ports, t.addr)
	t.board.mu.Unlock()
	return nil
}

var _ Transport = (*LoopTransport)(nil)
