package redundancy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestParityRecoversSingleLoss(t *testing.T) {
	blocks := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")}
	parity, err := EncodeParity(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < len(blocks); lost++ {
		damaged := make([][]byte, len(blocks))
		copy(damaged, blocks)
		damaged[lost] = nil
		if err := RecoverParity(damaged, parity); err != nil {
			t.Fatalf("recover block %d: %v", lost, err)
		}
		if !bytes.Equal(damaged[lost], blocks[lost]) {
			t.Fatalf("block %d reconstructed wrong: %q", lost, damaged[lost])
		}
	}
}

func TestParityDoubleLossUnrecoverable(t *testing.T) {
	blocks := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	parity, _ := EncodeParity(blocks)
	blocks[0], blocks[2] = nil, nil
	if err := RecoverParity(blocks, parity); err != ErrUnrecoverable {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestParityValidation(t *testing.T) {
	if _, err := EncodeParity(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := EncodeParity([][]byte{[]byte("ab"), []byte("abc")}); err == nil {
		t.Fatal("ragged blocks accepted")
	}
	if err := RecoverParity([][]byte{[]byte("ab"), []byte("cd")}, []byte("xy")); err != nil {
		t.Fatalf("no-loss recover: %v", err)
	}
}

func TestPropertyParityRoundTrip(t *testing.T) {
	f := func(a, b, c []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		if n == 0 {
			return true
		}
		blocks := [][]byte{a[:n], b[:n], c[:n]}
		parity, err := EncodeParity(blocks)
		if err != nil {
			return false
		}
		damaged := [][]byte{blocks[0], nil, blocks[2]}
		if err := RecoverParity(damaged, parity); err != nil {
			return false
		}
		return bytes.Equal(damaged[1], blocks[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// lossyLink drops deterministically from a seeded RNG.
func lossyLink(seed int64, prr float64) Link {
	rng := rand.New(rand.NewSource(seed))
	return LinkFunc(func([]byte) bool { return rng.Float64() < prr })
}

func TestSendFECOnPerfectAndDeadLinks(t *testing.T) {
	ok, sent, err := SendFEC(LinkFunc(func([]byte) bool { return true }), []byte("payload"), 4)
	if err != nil || !ok || sent != 5 {
		t.Fatalf("perfect link: ok=%v sent=%d err=%v", ok, sent, err)
	}
	ok, _, err = SendFEC(LinkFunc(func([]byte) bool { return false }), []byte("payload"), 4)
	if err != nil || ok {
		t.Fatalf("dead link delivered")
	}
	if _, _, err := SendFEC(lossyLink(1, 1), []byte("x"), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSendFECBeatsPlainOnLossyLink(t *testing.T) {
	const trials = 2000
	const prr = 0.9
	plainOK, fecOK := 0, 0
	plain := lossyLink(42, prr)
	fec := lossyLink(43, prr)
	for i := 0; i < trials; i++ {
		// Plain: 4 fragments, all must arrive.
		all := true
		for j := 0; j < 4; j++ {
			if !plain.Try(nil) {
				all = false
			}
		}
		if all {
			plainOK++
		}
		if ok, _, _ := SendFEC(fec, bytes.Repeat([]byte{1}, 64), 4); ok {
			fecOK++
		}
	}
	// Analytically: plain ≈ 0.9^4 ≈ 0.656; FEC(4+1, any ≤1 loss) ≈ 0.918.
	if fecOK <= plainOK {
		t.Fatalf("FEC %d not better than plain %d", fecOK, plainOK)
	}
	if got := float64(fecOK) / trials; math.Abs(got-0.918) > 0.05 {
		t.Fatalf("FEC delivery = %v, want ≈0.918", got)
	}
}

func TestARQDeliversWithinBudget(t *testing.T) {
	// Fails twice, succeeds on the third try.
	n := 0
	lk := LinkFunc(func([]byte) bool { n++; return n >= 3 })
	p := ARQPolicy{MaxRetries: 5, AttemptCost: 10 * time.Millisecond, Deadline: time.Second}
	ok, attempts, spent, deadlineHit := p.Send(lk, []byte("x"))
	if !ok || attempts != 3 || spent != 30*time.Millisecond || deadlineHit {
		t.Fatalf("ok=%v attempts=%d spent=%v deadline=%v", ok, attempts, spent, deadlineHit)
	}
}

func TestARQDeadlineStopsRetries(t *testing.T) {
	lk := LinkFunc(func([]byte) bool { return false })
	p := ARQPolicy{MaxRetries: 100, AttemptCost: 30 * time.Millisecond, Deadline: 100 * time.Millisecond}
	ok, attempts, spent, deadlineHit := p.Send(lk, []byte("x"))
	if ok || !deadlineHit {
		t.Fatalf("ok=%v deadlineHit=%v", ok, deadlineHit)
	}
	if attempts != 3 || spent != 90*time.Millisecond {
		t.Fatalf("attempts=%d spent=%v, want 3 within 100ms", attempts, spent)
	}
}

func TestARQRetryBudgetExhausted(t *testing.T) {
	lk := LinkFunc(func([]byte) bool { return false })
	p := ARQPolicy{MaxRetries: 2, AttemptCost: time.Millisecond, Deadline: time.Hour}
	ok, attempts, _, deadlineHit := p.Send(lk, []byte("x"))
	if ok || deadlineHit || attempts != 3 {
		t.Fatalf("ok=%v attempts=%d deadlineHit=%v", ok, attempts, deadlineHit)
	}
}

func TestVoteMedian(t *testing.T) {
	v, err := VoteMedian([]float64{20.1, 20.3, 99.9}, nil, 2)
	if err != nil || v != 20.3 {
		t.Fatalf("median = %v, %v", v, err)
	}
	// One faulty sensor (99.9) cannot drag the median outside the
	// correct readings' range.
	if v < 20.1 || v > 20.3 {
		t.Fatalf("faulty sensor moved median to %v", v)
	}
	// Even count: mean of middle two.
	v, err = VoteMedian([]float64{1, 2, 3, 4}, nil, 2)
	if err != nil || v != 2.5 {
		t.Fatalf("even median = %v", v)
	}
}

func TestVoteMedianSkipsInvalidAndChecksQuorum(t *testing.T) {
	valid := []bool{true, false, true}
	v, err := VoteMedian([]float64{10, 999, 12}, valid, 2)
	if err != nil || v != 11 {
		t.Fatalf("median = %v, %v", v, err)
	}
	if _, err := VoteMedian([]float64{10, 999, 12}, valid, 3); err == nil {
		t.Fatal("quorum violation accepted")
	}
	if _, err := VoteMedian(nil, nil, 0); err == nil {
		t.Fatal("empty readings accepted")
	}
}

func TestPropertyMedianBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		m, err := VoteMedian(vals, nil, 1)
		if err != nil {
			return false
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
