// Package redundancy implements the three redundancy types §V-A reviews
// for the sensing-and-actuation layer (after Johnson [42]):
//
//   - information redundancy: XOR parity coding so lost fragments are
//     reconstructed without retransmission;
//   - time redundancy: bounded retransmission under a deadline, making
//     the paper's tension with soft-realtime requirements measurable;
//   - physical redundancy: replicated sensors with median voting.
//
// Strategies operate over an abstract lossy Link so they run against the
// radio emulation (E7) and against deterministic test doubles alike.
package redundancy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"iiotds/internal/netbuf"
)

// Link is one attempt-oriented lossy channel: Try transmits one payload
// and reports whether it arrived. Implementations decide what "arrive"
// means (MAC ACK in the emulation, a coin flip in tests).
type Link interface {
	Try(payload []byte) bool
}

// LinkFunc adapts a function to Link.
type LinkFunc func(payload []byte) bool

// Try implements Link.
func (f LinkFunc) Try(payload []byte) bool { return f(payload) }

// --- information redundancy ---

// ErrUnrecoverable is returned when too many blocks are missing.
var ErrUnrecoverable = errors.New("redundancy: too many blocks lost")

// XOR parity recovers any single lost block per parity group. Groups of
// k data blocks carry one parity block (rate k/(k+1)).

// EncodeParity returns the XOR parity of blocks, all of which must share
// one length.
func EncodeParity(blocks [][]byte) ([]byte, error) {
	if len(blocks) == 0 {
		return nil, errors.New("redundancy: empty group")
	}
	n := len(blocks[0])
	parity := make([]byte, n)
	for _, b := range blocks {
		if len(b) != n {
			return nil, fmt.Errorf("redundancy: block length %d != %d", len(b), n)
		}
		for i, v := range b {
			parity[i] ^= v
		}
	}
	return parity, nil
}

// RecoverParity reconstructs the single nil block in blocks using the
// parity block. It fails if more than one block is missing.
func RecoverParity(blocks [][]byte, parity []byte) error {
	missing := -1
	for i, b := range blocks {
		if b == nil {
			if missing >= 0 {
				return ErrUnrecoverable
			}
			missing = i
		}
	}
	if missing < 0 {
		return nil // nothing to do
	}
	rec := netbuf.CloneBytes(parity)
	for i, b := range blocks {
		if i == missing {
			continue
		}
		if len(b) != len(rec) {
			return fmt.Errorf("redundancy: block length %d != %d", len(b), len(rec))
		}
		for j, v := range b {
			rec[j] ^= v
		}
	}
	blocks[missing] = rec
	return nil
}

// SendFEC transmits payload as k equal blocks plus one parity block over
// lk, then reports whether the receiver (which sees the per-block
// outcomes) could reconstruct the payload. Each block is tried once: the
// redundancy is in information, not time.
func SendFEC(lk Link, payload []byte, k int) (delivered bool, blocksSent int, err error) {
	if k <= 0 {
		return false, 0, fmt.Errorf("redundancy: k = %d", k)
	}
	blockLen := (len(payload) + k - 1) / k
	if blockLen == 0 {
		blockLen = 1
	}
	blocks := make([][]byte, k)
	for i := 0; i < k; i++ {
		b := make([]byte, blockLen)
		start := i * blockLen
		if start < len(payload) {
			end := start + blockLen
			if end > len(payload) {
				end = len(payload)
			}
			copy(b, payload[start:end])
		}
		blocks[i] = b
	}
	parity, err := EncodeParity(blocks)
	if err != nil {
		return false, 0, err
	}
	received := make([][]byte, k)
	var parityRx []byte
	for i, b := range blocks {
		blocksSent++
		if lk.Try(b) {
			received[i] = b
		}
	}
	blocksSent++
	if lk.Try(parity) {
		parityRx = parity
	}
	lost := 0
	for _, b := range received {
		if b == nil {
			lost++
		}
	}
	switch {
	case lost == 0:
		return true, blocksSent, nil
	case lost == 1 && parityRx != nil:
		if err := RecoverParity(received, parityRx); err != nil {
			return false, blocksSent, nil
		}
		return true, blocksSent, nil
	default:
		return false, blocksSent, nil
	}
}

// --- time redundancy ---

// ARQPolicy is bounded retransmission under a latency budget.
type ARQPolicy struct {
	// MaxRetries bounds attempts beyond the first.
	MaxRetries int
	// AttemptCost is the latency charged per attempt (frame time plus
	// timeout).
	AttemptCost time.Duration
	// Deadline is the soft-realtime budget; attempts stop when the next
	// try would exceed it.
	Deadline time.Duration
}

// Send tries payload under the policy. It reports delivery, the number
// of attempts, the latency consumed, and whether the deadline was the
// reason for giving up.
func (p ARQPolicy) Send(lk Link, payload []byte) (delivered bool, attempts int, spent time.Duration, deadlineHit bool) {
	for attempts < p.MaxRetries+1 {
		if p.Deadline > 0 && spent+p.AttemptCost > p.Deadline {
			return false, attempts, spent, true
		}
		attempts++
		spent += p.AttemptCost
		if lk.Try(payload) {
			return true, attempts, spent, false
		}
	}
	return false, attempts, spent, false
}

// --- physical redundancy ---

// ErrNoQuorum is returned when too few replicated sensors responded.
var ErrNoQuorum = errors.New("redundancy: not enough sensor readings")

// VoteMedian fuses replicated sensor readings by median, the standard
// fault-masking vote for analog values: up to (n-1)/2 arbitrarily wrong
// readings cannot move the median outside the range of correct ones.
// ok=false entries (failed sensors) are skipped.
func VoteMedian(readings []float64, valid []bool, minQuorum int) (float64, error) {
	var vals []float64
	for i, v := range readings {
		if valid == nil || valid[i] {
			vals = append(vals, v)
		}
	}
	if len(vals) < minQuorum || len(vals) == 0 {
		return 0, fmt.Errorf("%w: %d of %d required", ErrNoQuorum, len(vals), minQuorum)
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], nil
	}
	// Overflow-safe midpoint: same-sign operands use a+(b-a)/2 (the sum
	// could overflow), opposite-sign operands use (a+b)/2 (the difference
	// could overflow). An ±Inf pair has no midpoint; return the lower.
	a, b := vals[mid-1], vals[mid]
	var m float64
	if (a < 0) == (b < 0) {
		m = a + (b-a)/2
	} else {
		m = (a + b) / 2
	}
	if math.IsNaN(m) {
		m = a
	}
	return m, nil
}
