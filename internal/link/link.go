// Package link provides the logical link layer of the sensing-and-
// actuation stack: protocol multiplexing over a MAC, and a neighbor table
// with ETX (expected transmission count) estimation that the routing
// layer's objective function consumes.
package link

import (
	"fmt"

	"iiotds/internal/mac"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/trace"
)

// Protocol identifies an upper-layer protocol multiplexed over one MAC.
type Protocol byte

// Well-known protocol numbers.
const (
	// ProtoNet carries network-layer datagrams (lowpan/rpl).
	ProtoNet Protocol = 1
	// ProtoRouting carries routing control traffic (DIO/DAO/RNFD).
	ProtoRouting Protocol = 2
	// ProtoApp carries raw single-hop application traffic.
	ProtoApp Protocol = 3
)

// Handler receives demultiplexed payloads. The payload is a view into a
// pooled buffer valid only for the duration of the call; copy with
// netbuf.CloneBytes to retain it.
type Handler func(from radio.NodeID, payload []byte)

// Link multiplexes protocols over one MAC and observes transmission
// outcomes to estimate per-neighbor link quality.
type Link struct {
	mac       mac.MAC
	id        radio.NodeID
	handlers  map[Protocol]Handler
	neighbors *Table
	rec       *trace.Recorder
}

// New wraps m (the MAC of node id) as a link layer. It installs itself as
// the MAC's receive handler.
func New(id radio.NodeID, m mac.MAC) *Link {
	l := &Link{
		mac:       m,
		id:        id,
		handlers:  make(map[Protocol]Handler),
		neighbors: NewTable(),
	}
	m.OnReceive(l.onReceive)
	return l
}

// ID returns the node this link layer belongs to.
func (l *Link) ID() radio.NodeID { return l.id }

// Neighbors returns the neighbor table.
func (l *Link) Neighbors() *Table { return l.neighbors }

// SetRecorder installs the flight recorder ARQ outcomes are traced into.
func (l *Link) SetRecorder(rec *trace.Recorder) { l.rec = rec }

// Reboot models a device restart while the stack is stopped: the
// neighbor table (ETX estimates) is discarded and the MAC reboots
// (fresh sequence numbers, cleared dedup state). Protocol handlers stay
// registered — the stack object survives, only its volatile state is
// lost, as a real node's RAM would be.
func (l *Link) Reboot() {
	l.neighbors = NewTable()
	l.mac.Reboot()
}

// ForgetNeighbor drops everything this node knows about a neighbor that
// rebooted: its ETX estimate (stale link quality must not steer routing)
// and the MAC's dedup entry (the neighbor's restarted sequence numbering
// must not be mistaken for ARQ duplicates).
func (l *Link) ForgetNeighbor(id radio.NodeID) {
	l.neighbors.Forget(id)
	l.mac.ForgetNeighbor(id)
}

// Handle registers the handler for proto. Registering twice panics: each
// protocol has exactly one owner.
func (l *Link) Handle(proto Protocol, h Handler) {
	if _, dup := l.handlers[proto]; dup {
		panic(fmt.Sprintf("link: handler for protocol %d registered twice", proto))
	}
	l.handlers[proto] = h
}

// Buffers returns the packet-buffer pool of the underlying stack, for
// callers that build datagrams directly into pooled buffers (SendBuf).
func (l *Link) Buffers() *netbuf.Pool { return l.mac.Buffers() }

// Send transmits payload to neighbor to under proto. The payload is
// copied at call time into a pooled buffer, so the caller may reuse it
// immediately. done (may be nil) reports link-layer delivery; the
// outcome also feeds the ETX estimator.
func (l *Link) Send(to radio.NodeID, proto Protocol, payload []byte, done func(ok bool)) {
	b := l.mac.Buffers().Get()
	b.Append(payload)
	l.SendBuf(to, proto, b, done)
}

// SendBuf transmits b to neighbor to under proto, prepending the
// protocol byte into b's headroom. It takes ownership of the caller's
// reference: Retain first to keep using b afterwards. The MAC retains
// the framed buffer across ARQ retransmissions instead of re-encoding.
func (l *Link) SendBuf(to radio.NodeID, proto Protocol, b *netbuf.Buffer, done func(ok bool)) {
	b.Prepend(1)[0] = byte(proto)
	// The MAC owns b (and may have released it) by the time the done
	// closure runs, so capture the journey ID now.
	jid := b.Journey()
	l.mac.SendBuf(to, b, func(ok bool) {
		if to != radio.Broadcast {
			l.neighbors.RecordTx(to, ok)
			typ := trace.LinkAck
			if !ok {
				typ = trace.LinkDrop
			}
			// F carries the post-update ETX estimate, making ETX evolution
			// reconstructible from the trace alone.
			l.rec.Emit(int32(l.id), typ, int64(to), int64(proto), l.neighbors.ETX(to), jid)
		}
		if done != nil {
			done(ok)
		}
	})
}

// Broadcast transmits payload to all neighbors under proto, copying it
// at call time.
func (l *Link) Broadcast(proto Protocol, payload []byte) {
	l.Send(radio.Broadcast, proto, payload, nil)
}

// BroadcastBuf transmits b to all neighbors under proto, taking
// ownership of the caller's reference.
func (l *Link) BroadcastBuf(proto Protocol, b *netbuf.Buffer) {
	l.SendBuf(radio.Broadcast, proto, b, nil)
}

func (l *Link) onReceive(from radio.NodeID, raw []byte) {
	if len(raw) < 1 {
		return
	}
	l.neighbors.RecordRx(from)
	if h, ok := l.handlers[Protocol(raw[0])]; ok {
		h(from, raw[1:])
	}
}
