package link

import (
	"math"
	"sort"

	"iiotds/internal/radio"
)

// etxAlpha is the EWMA weight given to a new transmission outcome.
const etxAlpha = 0.2

// priorSuccessRate seeds the estimator for untested links. Starting from
// a mildly skeptical prior (rather than trusting the first sample) keeps
// one lucky delivery on a marginal link from making it look perfect,
// which would otherwise cause routing churn over gray-region links.
const priorSuccessRate = 0.7

// maxETX caps the estimate for links that currently deliver nothing, so
// arithmetic over path costs stays finite.
const maxETX = 16.0

// Entry is the state tracked for one neighbor.
type Entry struct {
	ID radio.NodeID
	// SuccessRate is an EWMA of unicast delivery outcomes in [0,1].
	SuccessRate float64
	// TxCount and RxCount are lifetime counters.
	TxCount uint64
	RxCount uint64
}

// ETX returns the expected number of transmissions for one delivery over
// this link (1/SuccessRate), capped at maxETX.
func (e *Entry) ETX() float64 {
	if e.SuccessRate <= 1/maxETX {
		return maxETX
	}
	return 1 / e.SuccessRate
}

// Table tracks link-quality state per neighbor. It is not safe for
// concurrent use; the simulation is single-threaded.
type Table struct {
	entries map[radio.NodeID]*Entry
}

// NewTable returns an empty neighbor table.
func NewTable() *Table {
	return &Table{entries: make(map[radio.NodeID]*Entry)}
}

func (t *Table) get(id radio.NodeID) *Entry {
	e, ok := t.entries[id]
	if !ok {
		e = &Entry{ID: id, SuccessRate: priorSuccessRate}
		t.entries[id] = e
	}
	return e
}

// RecordTx folds a unicast outcome into the neighbor's estimate.
func (t *Table) RecordTx(id radio.NodeID, ok bool) {
	e := t.get(id)
	e.TxCount++
	sample := 0.0
	if ok {
		sample = 1.0
	}
	e.SuccessRate = (1-etxAlpha)*e.SuccessRate + etxAlpha*sample
}

// RecordRx notes that a frame was heard from the neighbor.
func (t *Table) RecordRx(id radio.NodeID) {
	t.get(id).RxCount++
}

// Lookup returns the entry for id, or nil if the neighbor is unknown.
func (t *Table) Lookup(id radio.NodeID) *Entry {
	return t.entries[id]
}

// ETX returns the ETX toward id; unknown neighbors cost maxETX.
func (t *Table) ETX(id radio.NodeID) float64 {
	e := t.entries[id]
	if e == nil {
		return maxETX
	}
	return e.ETX()
}

// Len returns the number of known neighbors.
func (t *Table) Len() int { return len(t.entries) }

// IDs returns known neighbor IDs sorted by ascending ETX (ties by ID).
func (t *Table) IDs() []radio.NodeID {
	ids := make([]radio.NodeID, 0, len(t.entries))
	for id := range t.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := t.entries[ids[i]].ETX(), t.entries[ids[j]].ETX()
		if math.Abs(a-b) > 1e-9 {
			return a < b
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Forget drops a neighbor (e.g., after prolonged silence).
func (t *Table) Forget(id radio.NodeID) { delete(t.entries, id) }
