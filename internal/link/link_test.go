package link

import (
	"testing"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// pair builds two linked CSMA nodes 10 m apart.
func pair(t *testing.T) (*sim.Kernel, *radio.Medium, *Link, *Link) {
	t.Helper()
	k := sim.New(21)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	var m1, m2 *mac.CSMA
	m.Attach(1, radio.Position{X: 0}, radio.ReceiverFunc(func(f radio.Frame) { m1.RadioReceive(f) }))
	m.Attach(2, radio.Position{X: 10}, radio.ReceiverFunc(func(f radio.Frame) { m2.RadioReceive(f) }))
	m1 = mac.NewCSMA(m, 1, mac.CSMAConfig{})
	m2 = mac.NewCSMA(m, 2, mac.CSMAConfig{})
	m1.Start()
	m2.Start()
	return k, m, New(1, m1), New(2, m2)
}

func TestProtocolDemux(t *testing.T) {
	k, _, l1, l2 := pair(t)
	var gotNet, gotApp []byte
	l2.Handle(ProtoNet, func(_ radio.NodeID, p []byte) { gotNet = p })
	l2.Handle(ProtoApp, func(_ radio.NodeID, p []byte) { gotApp = p })
	l1.Send(2, ProtoNet, []byte("n"), nil)
	l1.Send(2, ProtoApp, []byte("a"), nil)
	k.RunFor(time.Second)
	if string(gotNet) != "n" || string(gotApp) != "a" {
		t.Fatalf("demux wrong: net=%q app=%q", gotNet, gotApp)
	}
}

func TestUnhandledProtocolDropped(t *testing.T) {
	k, _, l1, l2 := pair(t)
	_ = l2
	l1.Send(2, ProtoRouting, []byte("x"), nil) // no handler registered
	k.RunFor(time.Second)                      // must not panic
}

func TestDuplicateHandlerPanics(t *testing.T) {
	_, _, _, l2 := pair(t)
	l2.Handle(ProtoNet, func(radio.NodeID, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l2.Handle(ProtoNet, func(radio.NodeID, []byte) {})
}

func TestETXTracksLinkQuality(t *testing.T) {
	k, m, l1, _ := pair(t)
	m.SetLinkPRR(1, 2, 0.5)
	for i := 0; i < 50; i++ {
		l1.Send(2, ProtoApp, []byte{byte(i)}, nil)
	}
	k.RunFor(time.Minute)
	etx := l1.Neighbors().ETX(2)
	// With MAC retries most sends succeed; ETX should stay near 1, and
	// the entry must exist with transmissions recorded.
	e := l1.Neighbors().Lookup(2)
	if e == nil || e.TxCount == 0 {
		t.Fatal("no tx outcomes recorded")
	}
	if etx < 1 || etx > maxETX {
		t.Fatalf("ETX = %v out of range", etx)
	}
}

func TestETXDeadLinkPessimistic(t *testing.T) {
	k, m, l1, _ := pair(t)
	m.SetLinkPRR(1, 2, 0)
	m.SetLinkPRR(2, 1, 0)
	for i := 0; i < 10; i++ {
		l1.Send(2, ProtoApp, []byte{1}, nil)
	}
	k.RunFor(time.Minute)
	if etx := l1.Neighbors().ETX(2); etx < 4 {
		t.Fatalf("dead link ETX = %v, want pessimistic", etx)
	}
}

func TestRecordRxCreatesEntry(t *testing.T) {
	k, _, l1, l2 := pair(t)
	l2.Handle(ProtoApp, func(radio.NodeID, []byte) {})
	l1.Send(2, ProtoApp, []byte("x"), nil)
	k.RunFor(time.Second)
	e := l2.Neighbors().Lookup(1)
	if e == nil || e.RxCount == 0 {
		t.Fatal("receiver did not record the sender as neighbor")
	}
	// Rx-only neighbor: the skeptical prior, ~1.43.
	if got := e.ETX(); got < 1.4 || got > 1.5 {
		t.Fatalf("rx-only ETX = %v, want ≈1/0.7", got)
	}
}

func TestTableIDsSortedByETX(t *testing.T) {
	tab := NewTable()
	tab.RecordTx(5, true)
	tab.RecordTx(5, true)
	for i := 0; i < 10; i++ {
		tab.RecordTx(7, false)
	}
	tab.RecordRx(9)
	ids := tab.IDs()
	if len(ids) != 3 || ids[0] != 5 || ids[2] != 7 {
		t.Fatalf("IDs() = %v, want best-first [5 9 7]", ids)
	}
}

func TestForget(t *testing.T) {
	tab := NewTable()
	tab.RecordRx(3)
	tab.Forget(3)
	if tab.Len() != 0 || tab.Lookup(3) != nil {
		t.Fatal("Forget did not remove entry")
	}
	if tab.ETX(3) != maxETX {
		t.Fatal("unknown neighbor should cost maxETX")
	}
}

func TestBroadcastDoesNotPolluteETX(t *testing.T) {
	k, _, l1, l2 := pair(t)
	l2.Handle(ProtoApp, func(radio.NodeID, []byte) {})
	l1.Broadcast(ProtoApp, []byte("b"))
	k.RunFor(time.Second)
	if e := l1.Neighbors().Lookup(radio.Broadcast); e != nil {
		t.Fatal("broadcast outcome recorded as a neighbor")
	}
}

func TestEntryETXSingleFailureNotPegged(t *testing.T) {
	tab := NewTable()
	tab.RecordTx(1, false)
	if etx := tab.ETX(1); etx >= maxETX {
		t.Fatalf("single failure ETX = %v, want < cap", etx)
	}
}
