package diag

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestStuckDetector(t *testing.T) {
	d := NewStuckDetector(5, 0.001)
	// Healthy varying signal: never flags.
	for i := 0; i < 20; i++ {
		if d.Observe(20 + float64(i%3)) {
			t.Fatal("varying signal flagged as stuck")
		}
	}
	// Freeze: flags exactly once at the window boundary.
	flags := 0
	for i := 0; i < 10; i++ {
		if d.Observe(21.37) {
			flags++
		}
	}
	if flags != 1 {
		t.Fatalf("flags = %d, want 1", flags)
	}
	// Recovery clears, refreeze reflags.
	d.Observe(25)
	flags = 0
	for i := 0; i < 10; i++ {
		if d.Observe(25) {
			flags++
		}
	}
	if flags != 1 {
		t.Fatalf("reflag count = %d, want 1", flags)
	}
}

func TestRangeDetector(t *testing.T) {
	d := RangeDetector{Min: -40, Max: 85}
	if d.Observe(20) || d.Observe(-40) || d.Observe(85) {
		t.Fatal("in-range flagged")
	}
	if !d.Observe(-41) || !d.Observe(86) || !d.Observe(math.NaN()) {
		t.Fatal("out-of-range not flagged")
	}
}

func TestDriftDetector(t *testing.T) {
	d := NewDriftDetector(2, 5)
	peers := []float64{20, 20.5, 19.5}
	// Healthy.
	for i := 0; i < 20; i++ {
		if d.Observe(20.2, peers) {
			t.Fatal("healthy sensor flagged as drifting")
		}
	}
	// Drift away persistently: flags once after persistence.
	flags := 0
	for i := 0; i < 10; i++ {
		if d.Observe(25, peers) {
			flags++
		}
	}
	if flags != 1 {
		t.Fatalf("flags = %d, want 1", flags)
	}
	// A brief excursion (< persistence) does not flag.
	d2 := NewDriftDetector(2, 5)
	for i := 0; i < 3; i++ {
		if d2.Observe(25, peers) {
			t.Fatal("brief excursion flagged")
		}
	}
	if d2.Observe(20, peers) {
		t.Fatal("recovered sensor flagged")
	}
}

func TestDriftDetectorNoPeers(t *testing.T) {
	d := NewDriftDetector(1, 1)
	if d.Observe(99, nil) {
		t.Fatal("flagged without peers")
	}
}

func TestActuatorVerifier(t *testing.T) {
	v := NewActuatorVerifier(0.5, 10*time.Minute)
	v.Command(0, 20, +1) // heater on at 20 °C
	// Effect arrives: no fault.
	if v.Observe(5*time.Minute, 20.7) {
		t.Fatal("working actuator flagged")
	}
	// After success the verifier is idle.
	if v.Observe(time.Hour, 20.7) {
		t.Fatal("idle verifier flagged")
	}
	// Broken actuator: no effect by the deadline.
	v.Command(2*time.Hour, 20, +1)
	if v.Observe(2*time.Hour+5*time.Minute, 20.1) {
		t.Fatal("flagged before deadline")
	}
	if !v.Observe(2*time.Hour+11*time.Minute, 20.1) {
		t.Fatal("broken actuator not flagged")
	}
}

func TestActuatorVerifierCoolingDirection(t *testing.T) {
	v := NewActuatorVerifier(0.5, 10*time.Minute)
	v.Command(0, 25, -1)
	if v.Observe(5*time.Minute, 24.3) {
		t.Fatal("working cooler flagged")
	}
}

func TestEngineDetectsSeededFaults(t *testing.T) {
	e := NewEngine(-40, 85)
	rng := rand.New(rand.NewSource(4))
	// Sensors: s0 healthy, s1 stuck, s2 drifting, s3 out-of-range spike.
	base := 20.0
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * time.Minute
		healthy := base + rng.Float64()
		peerVals := []float64{healthy, base + rng.Float64(), base + rng.Float64()}
		e.Observe("s0", at, healthy, peerVals)
		e.Observe("s1", at, 21.00, peerVals) // frozen
		drifting := base + float64(i)*0.05   // slow ramp away
		e.Observe("s2", at, drifting, peerVals)
		v := base + rng.Float64()
		if i == 100 {
			v = 400 // spike
		}
		e.Observe("s3", at, v, peerVals)
	}
	if len(e.FindingsFor("s0")) != 0 {
		t.Fatalf("healthy sensor flagged: %+v", e.FindingsFor("s0"))
	}
	assertHas := func(sensor string, ft FaultType) {
		t.Helper()
		for _, f := range e.FindingsFor(sensor) {
			if f.Type == ft {
				return
			}
		}
		t.Fatalf("%s: no %v finding; got %+v", sensor, ft, e.FindingsFor(sensor))
	}
	assertHas("s1", FaultStuck)
	assertHas("s2", FaultDrift)
	assertHas("s3", FaultRange)
}

func TestFaultTypeString(t *testing.T) {
	for ft, want := range map[FaultType]string{
		FaultStuck: "stuck-at", FaultRange: "out-of-range",
		FaultDrift: "drift", FaultActuator: "actuator-no-effect",
	} {
		if ft.String() != want {
			t.Errorf("%d = %q", ft, ft.String())
		}
	}
}
