// Package diag implements automated diagnosis of sensing and actuation
// components — the maintainability gap §V-D calls out ("little work has
// been done on automated diagnosis of sensing and actuation components").
// Detectors watch observation streams for the classic field failure
// modes: stuck-at sensors, out-of-physical-range readings, drift away
// from spatially correlated peers, and actuators whose commands have no
// observable effect.
package diag

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// FaultType classifies a finding.
type FaultType int

// Detected fault classes.
const (
	FaultStuck FaultType = iota
	FaultRange
	FaultDrift
	FaultActuator
)

// String names the fault type.
func (f FaultType) String() string {
	switch f {
	case FaultStuck:
		return "stuck-at"
	case FaultRange:
		return "out-of-range"
	case FaultDrift:
		return "drift"
	case FaultActuator:
		return "actuator-no-effect"
	default:
		return fmt.Sprintf("FaultType(%d)", int(f))
	}
}

// Finding is one diagnosis.
type Finding struct {
	Sensor string
	Type   FaultType
	At     time.Duration
	Detail string
}

// StuckDetector flags a sensor whose last Window readings are identical
// within Epsilon — dead transducers report a frozen value.
type StuckDetector struct {
	Window  int
	Epsilon float64

	history []float64
	flagged bool
}

// NewStuckDetector returns a detector with the given window (default 20)
// and epsilon (default 1e-9).
func NewStuckDetector(window int, epsilon float64) *StuckDetector {
	if window == 0 {
		window = 20
	}
	if epsilon == 0 {
		epsilon = 1e-9
	}
	return &StuckDetector{Window: window, Epsilon: epsilon}
}

// Observe feeds a reading; it returns true exactly when the fault is
// first detected.
func (d *StuckDetector) Observe(v float64) bool {
	d.history = append(d.history, v)
	if len(d.history) > d.Window {
		d.history = d.history[len(d.history)-d.Window:]
	}
	if len(d.history) < d.Window {
		return false
	}
	lo, hi := d.history[0], d.history[0]
	for _, x := range d.history {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	stuck := hi-lo <= d.Epsilon
	if stuck && !d.flagged {
		d.flagged = true
		return true
	}
	if !stuck {
		d.flagged = false
	}
	return false
}

// RangeDetector flags physically impossible readings.
type RangeDetector struct {
	Min, Max float64
}

// Observe reports whether v is outside the physical range.
func (d RangeDetector) Observe(v float64) bool {
	return v < d.Min || v > d.Max || math.IsNaN(v)
}

// DriftDetector compares a sensor against the median of its spatially
// correlated peers: persistent deviation beyond Threshold for Persist
// consecutive comparisons flags drift or miscalibration.
type DriftDetector struct {
	Threshold float64
	Persist   int

	run     int
	flagged bool
}

// NewDriftDetector returns a detector (defaults: threshold 3.0 units,
// persistence 10 samples).
func NewDriftDetector(threshold float64, persist int) *DriftDetector {
	if threshold == 0 {
		threshold = 3
	}
	if persist == 0 {
		persist = 10
	}
	return &DriftDetector{Threshold: threshold, Persist: persist}
}

// Observe feeds the sensor's value and its peers' values; it returns
// true exactly when drift is first detected.
func (d *DriftDetector) Observe(v float64, peers []float64) bool {
	if len(peers) == 0 {
		return false
	}
	med := median(peers)
	if math.Abs(v-med) > d.Threshold {
		d.run++
	} else {
		d.run = 0
		d.flagged = false
	}
	if d.run >= d.Persist && !d.flagged {
		d.flagged = true
		return true
	}
	return false
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return s[mid-1] + (s[mid]-s[mid-1])/2
}

// ActuatorVerifier checks that commands have observable effects: after a
// command, the controlled quantity must move in the expected direction
// by MinEffect within Deadline.
type ActuatorVerifier struct {
	MinEffect float64
	Deadline  time.Duration

	pending   bool
	issuedAt  time.Duration
	baseline  float64
	direction float64 // +1 expects increase, -1 decrease
}

// NewActuatorVerifier returns a verifier (defaults: effect 0.2 units
// within 15 min).
func NewActuatorVerifier(minEffect float64, deadline time.Duration) *ActuatorVerifier {
	if minEffect == 0 {
		minEffect = 0.2
	}
	if deadline == 0 {
		deadline = 15 * time.Minute
	}
	return &ActuatorVerifier{MinEffect: minEffect, Deadline: deadline}
}

// Command records that an actuation was issued at time at while the
// controlled value read baseline; direction is +1 or -1.
func (a *ActuatorVerifier) Command(at time.Duration, baseline, direction float64) {
	a.pending = true
	a.issuedAt = at
	a.baseline = baseline
	a.direction = direction
}

// Observe feeds the controlled quantity; it returns true exactly when
// the deadline passes without the expected effect.
func (a *ActuatorVerifier) Observe(at time.Duration, v float64) bool {
	if !a.pending {
		return false
	}
	if (v-a.baseline)*a.direction >= a.MinEffect {
		a.pending = false // effect observed
		return false
	}
	if at-a.issuedAt > a.Deadline {
		a.pending = false
		return true
	}
	return false
}

// Engine runs the full detector suite over named sensor streams and
// collects findings.
type Engine struct {
	physMin, physMax float64
	stuck            map[string]*StuckDetector
	drift            map[string]*DriftDetector
	rangeFlagged     map[string]bool

	Findings []Finding
}

// NewEngine creates an engine with the given physical range for all
// sensors.
func NewEngine(physMin, physMax float64) *Engine {
	return &Engine{
		physMin:      physMin,
		physMax:      physMax,
		stuck:        make(map[string]*StuckDetector),
		drift:        make(map[string]*DriftDetector),
		rangeFlagged: make(map[string]bool),
	}
}

// Observe feeds one reading of sensor at time at, with the current
// readings of its peers.
func (e *Engine) Observe(sensor string, at time.Duration, v float64, peers []float64) {
	if (RangeDetector{Min: e.physMin, Max: e.physMax}).Observe(v) {
		if !e.rangeFlagged[sensor] {
			e.rangeFlagged[sensor] = true
			e.Findings = append(e.Findings, Finding{
				Sensor: sensor, Type: FaultRange, At: at,
				Detail: fmt.Sprintf("value %v outside [%v,%v]", v, e.physMin, e.physMax),
			})
		}
		return // out-of-range values would pollute the other detectors
	}
	e.rangeFlagged[sensor] = false
	sd, ok := e.stuck[sensor]
	if !ok {
		sd = NewStuckDetector(0, 0)
		e.stuck[sensor] = sd
	}
	if sd.Observe(v) {
		e.Findings = append(e.Findings, Finding{
			Sensor: sensor, Type: FaultStuck, At: at,
			Detail: fmt.Sprintf("last %d readings frozen at %v", sd.Window, v),
		})
	}
	dd, ok := e.drift[sensor]
	if !ok {
		dd = NewDriftDetector(0, 0)
		e.drift[sensor] = dd
	}
	if dd.Observe(v, peers) {
		e.Findings = append(e.Findings, Finding{
			Sensor: sensor, Type: FaultDrift, At: at,
			Detail: fmt.Sprintf("deviates >%v from peer median", dd.Threshold),
		})
	}
}

// FindingsFor returns the findings for one sensor.
func (e *Engine) FindingsFor(sensor string) []Finding {
	var out []Finding
	for _, f := range e.Findings {
		if f.Sensor == sensor {
			out = append(out, f)
		}
	}
	return out
}
