package gateway

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/coap"
)

// This file is the synthetic client swarm: a Transport implementation
// that impersonates very large observer populations against one real
// Gateway, so the fan-out path (sharded registry, batched MIDs,
// zero-alloc NON encoding, per-shard workers) is exercised at the scale
// the paper's city deployments imply — without a million sockets.
//
// The swarm drives three phases: a registration storm (GET Observe=0
// from every observer), timed notification rounds (one Publish each,
// latency recorded per delivery), and a deregistration storm (GET
// Observe=1) after which the registry must be empty — the leak check.

// SwarmConfig sizes one swarm run.
type SwarmConfig struct {
	// Observers is the total concurrent observer population.
	Observers int
	// Resources spreads the population over this many observable
	// resources (default 1). Observer i registers to resource
	// i % Resources.
	Resources int
	// NotifyRounds is how many representation pushes each resource
	// fans out (default 4). Every delivery's latency is recorded.
	NotifyRounds int
	// PayloadSize is the representation size in bytes (default 16).
	PayloadSize int
	// QueueLen bounds each fan-out shard's job queue (0 = default).
	QueueLen int
	// ConfirmEvery is the CON cadence; 0 selects all-NON (the hot path
	// under measurement). Positive values exercise the CON path — the
	// swarm transport ACKs confirmables synchronously.
	ConfirmEvery int
	// Workers is the request-storm concurrency (default 8).
	Workers int
	// RoundTimeout bounds the wait for one round's deliveries
	// (default 2 min).
	RoundTimeout time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c *SwarmConfig) applyDefaults() {
	if c.Resources <= 0 {
		c.Resources = 1
	}
	if c.NotifyRounds <= 0 {
		c.NotifyRounds = 4
	}
	if c.PayloadSize <= 0 {
		c.PayloadSize = 16
	}
	if c.ConfirmEvery == 0 {
		c.ConfirmEvery = -1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 2 * time.Minute
	}
}

// SwarmResult is one swarm run's measurements.
type SwarmResult struct {
	Observers    int `json:"observers"`
	Resources    int `json:"resources"`
	NotifyRounds int `json:"notify_rounds"`
	PayloadSize  int `json:"payload_size"`
	ConfirmEvery int `json:"confirm_every"`

	RegisterSeconds float64 `json:"register_seconds"`
	RegisterPerSec  float64 `json:"register_per_sec"`
	Registered      int     `json:"registered"`

	Delivered   int64   `json:"delivered"`
	NotifyDrops int64   `json:"notify_drops"`
	P50ms       float64 `json:"notify_p50_ms"`
	P90ms       float64 `json:"notify_p90_ms"`
	P99ms       float64 `json:"notify_p99_ms"`
	MaxMs       float64 `json:"notify_max_ms"`

	DeregisterSeconds float64 `json:"deregister_seconds"`
	LeakedObservers   int     `json:"leaked_observers"`

	HeapMB float64 `json:"heap_mb"`
}

func (r SwarmResult) String() string {
	return fmt.Sprintf(
		"observers=%d resources=%d registered=%d (%.0f/s) delivered=%d drops=%d p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms leaked=%d heap=%.0fMB",
		r.Observers, r.Resources, r.Registered, r.RegisterPerSec, r.Delivered,
		r.NotifyDrops, r.P50ms, r.P90ms, r.P99ms, r.MaxMs, r.LeakedObservers, r.HeapMB)
}

// Swarm phases, stored in swarmTransport.phase.
const (
	phaseStorm int32 = iota // register/deregister: outbound sends are responses
	phaseNotify
)

// swarmTransport absorbs the gateway's outbound datagrams. During
// notify rounds each delivery stamps its latency into a preallocated
// slab; outside them deliveries are request responses and only counted.
// Confirmable deliveries are ACKed synchronously (the Conn releases its
// lock before Transport.Send, so re-entry is safe).
type swarmTransport struct {
	recv func(from string, data []byte)
	mu   sync.Mutex

	phase      atomic.Int32
	roundStart atomic.Int64 // UnixNano of the current round's Publish
	seq        atomic.Int64 // claims a latency slot (pre-write)
	delivered  atomic.Int64 // publishes the slot (post-write)
	responses  atomic.Int64 // storm-phase responses
	lat        []int64      // nanoseconds, indexed by seq claims
}

func (t *swarmTransport) Send(addr string, data []byte) error {
	if len(data) >= 4 && (data[0]>>4)&0x3 == uint8(coap.Confirmable) {
		// Play the observer: answer the CON with an empty ACK (ver=1,
		// type=ACK, tkl=0, code 0.00, echoed MID) from addr itself.
		t.recvCB()(addr, []byte{0x60, 0x00, data[2], data[3]})
	}
	if t.phase.Load() == phaseNotify {
		// Claim a slot, write it, THEN publish: the driver spins on
		// delivered, so every claimed slot below it is fully written.
		i := t.seq.Add(1) - 1
		if i >= 0 && i < int64(len(t.lat)) {
			t.lat[i] = time.Now().UnixNano() - t.roundStart.Load()
		}
		t.delivered.Add(1)
		return nil
	}
	t.responses.Add(1)
	return nil
}

func (t *swarmTransport) recvCB() func(from string, data []byte) {
	t.mu.Lock()
	fn := t.recv
	t.mu.Unlock()
	return fn
}

func (t *swarmTransport) SetReceiver(fn func(from string, data []byte)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

func (t *swarmTransport) LocalAddr() string { return "gw" }
func (t *swarmTransport) Close() error      { return nil }

var _ coap.Transport = (*swarmTransport)(nil)

// swarmToken is shared by every observer: registry keys are
// (address, token), so distinct addresses alone keep observers distinct
// — and sharing the marshalled registration datagram across a resource's
// whole population makes million-observer storms cheap to drive.
var swarmToken = []byte{0x5e, 0xed}

func swarmPath(i int) string { return fmt.Sprintf("swarm/%d", i) }

func observeDatagram(path string, register bool) []byte {
	obs := uint32(1)
	if register {
		obs = 0
	}
	m := &coap.Message{Type: coap.NonConfirmable, Code: coap.CodeGET, Token: swarmToken, MessageID: 0x5e5e}
	m.AddUintOption(coap.OptObserve, obs)
	m.SetPath(path)
	data, err := m.Marshal()
	if err != nil {
		panic(err)
	}
	return data
}

// storm injects one datagram per observer (dgram[i%Resources]) from
// cfg.Workers goroutines and returns the wall time it took.
func (cfg *SwarmConfig) storm(tr *swarmTransport, dgrams [][]byte) time.Duration {
	recv := tr.recvCB()
	start := time.Now()
	var wg sync.WaitGroup
	chunk := (cfg.Observers + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > cfg.Observers {
			hi = cfg.Observers
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				recv(observerAddr(i), dgrams[i%len(dgrams)])
			}
		}(lo, hi)
	}
	wg.Wait()
	return time.Since(start)
}

func observerAddr(i int) string { return "o" + fmt.Sprint(i) }

// RunSwarm builds a Gateway on a swarm transport and drives the full
// register → notify → deregister lifecycle, returning measurements.
func RunSwarm(cfg SwarmConfig) (*SwarmResult, error) {
	cfg.applyDefaults()
	if cfg.Observers <= 0 {
		return nil, fmt.Errorf("gateway: swarm needs observers > 0")
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	tr := &swarmTransport{lat: make([]int64, cfg.Observers*cfg.NotifyRounds)}
	conn := coap.NewConn(tr, &clock.System{}, coap.ConnConfig{})
	defer conn.Close()
	gw := New(conn, Config{
		MaxObservers: cfg.Observers,
		RejectMaxAge: 5,
		ConfirmEvery: cfg.ConfirmEvery,
		QueueLen:     cfg.QueueLen,
	})
	defer gw.Close()
	payload := make([]byte, cfg.PayloadSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	regs := make([][]byte, cfg.Resources)
	deregs := make([][]byte, cfg.Resources)
	for i := 0; i < cfg.Resources; i++ {
		gw.AddResource(swarmPath(i), "swarm", nil)
		// Warm the cache: registration only sticks on a success
		// response (RFC 7641 §4.1), and a cold cached resource answers
		// 5.03.
		gw.Publish(swarmPath(i), coap.FormatText, payload)
		regs[i] = observeDatagram(swarmPath(i), true)
		deregs[i] = observeDatagram(swarmPath(i), false)
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	res := &SwarmResult{
		Observers:    cfg.Observers,
		Resources:    cfg.Resources,
		NotifyRounds: cfg.NotifyRounds,
		PayloadSize:  cfg.PayloadSize,
		ConfirmEvery: cfg.ConfirmEvery,
	}

	// Phase 1: registration storm.
	logf("swarm: registering %d observers across %d resources", cfg.Observers, cfg.Resources)
	regDur := cfg.storm(tr, regs)
	res.RegisterSeconds = regDur.Seconds()
	res.RegisterPerSec = float64(cfg.Observers) / regDur.Seconds()
	for i := 0; i < cfg.Resources; i++ {
		res.Registered += gw.Server().Resource(swarmPath(i)).ObserverCount()
	}
	if res.Registered != cfg.Observers {
		return res, fmt.Errorf("gateway: swarm registered %d of %d observers", res.Registered, cfg.Observers)
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	res.HeapMB = float64(msAfter.HeapAlloc) / (1 << 20)
	logf("swarm: registered %d in %.2fs (%.0f/s), heap %.0f MB",
		res.Registered, res.RegisterSeconds, res.RegisterPerSec, res.HeapMB)

	// Phase 2: notify rounds. One Publish per resource per round; wait
	// until every registered observer's delivery lands before the next.
	tr.phase.Store(phaseNotify)
	for round := 0; round < cfg.NotifyRounds; round++ {
		target := int64(cfg.Observers) * int64(round+1)
		tr.roundStart.Store(time.Now().UnixNano())
		for i := 0; i < cfg.Resources; i++ {
			gw.Publish(swarmPath(i), coap.FormatText, payload)
		}
		deadline := time.Now().Add(cfg.RoundTimeout)
		for tr.delivered.Load() < target {
			if time.Now().After(deadline) {
				res.Delivered = tr.delivered.Load()
				res.NotifyDrops = gw.Server().NotifyDropped()
				return res, fmt.Errorf("gateway: swarm round %d timed out: delivered %d of %d (drops %d)",
					round, res.Delivered, target, res.NotifyDrops)
			}
			time.Sleep(time.Millisecond)
		}
		logf("swarm: round %d/%d fanned out to %d observers", round+1, cfg.NotifyRounds, cfg.Observers)
	}
	tr.phase.Store(phaseStorm)
	res.Delivered = tr.delivered.Load()
	res.NotifyDrops = gw.Server().NotifyDropped()

	lat := tr.lat[:res.Delivered]
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	res.P50ms = pctMS(lat, 50)
	res.P90ms = pctMS(lat, 90)
	res.P99ms = pctMS(lat, 99)
	res.MaxMs = pctMS(lat, 100)

	// Phase 3: deregistration storm, then the leak check — the registry
	// must be empty, or shutdown churn leaks observer state.
	logf("swarm: deregistering %d observers", cfg.Observers)
	res.DeregisterSeconds = cfg.storm(tr, deregs).Seconds()
	for i := 0; i < cfg.Resources; i++ {
		res.LeakedObservers += gw.Server().Resource(swarmPath(i)).ObserverCount()
	}
	logf("swarm: done: %s", res)
	return res, nil
}

// pctMS returns the p-th percentile of sorted nanosecond latencies, in
// milliseconds.
func pctMS(sorted []int64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / 1e6
}
