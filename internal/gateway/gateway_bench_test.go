package gateway

import (
	"fmt"
	"testing"

	"iiotds/internal/clock"
	"iiotds/internal/coap"
)

// sinkTransport swallows outbound datagrams; receiver injection drives
// registration. It is the benchmark-grade stand-in for a UDP socket.
type sinkTransport struct {
	recv func(from string, data []byte)
}

func (t *sinkTransport) Send(string, []byte) error                     { return nil }
func (t *sinkTransport) SetReceiver(fn func(from string, data []byte)) { t.recv = fn }
func (t *sinkTransport) LocalAddr() string                             { return "gw" }
func (t *sinkTransport) Close() error                                  { return nil }

// benchGateway builds a gateway with n registered observers on one
// resource, using the inline (synchronous) notify path so the benchmark
// measures fan-out work, not goroutine scheduling.
func benchGateway(b *testing.B, n int, inline bool) *Gateway {
	b.Helper()
	tr := &sinkTransport{}
	conn := coap.NewConn(tr, &clock.System{}, coap.ConnConfig{})
	gw := New(conn, Config{MaxObservers: n, ConfirmEvery: -1, Inline: inline})
	gw.AddResource("bench", "bench", nil)
	gw.Publish("bench", coap.FormatText, []byte("warm"))
	reg := observeDatagram("bench", true)
	for i := 0; i < n; i++ {
		tr.recv(observerAddr(i), reg)
	}
	if got := gw.Server().Resource("bench").ObserverCount(); got != n {
		b.Fatalf("registered %d of %d", got, n)
	}
	b.Cleanup(func() {
		gw.Close()
		conn.Close()
	})
	return gw
}

// BenchmarkNotifyFanOut measures one full NON notification fan-out per
// iteration across observer populations, on the inline (deterministic)
// path — the sim's sequential gather-sort-send loop. The pooled path's
// per-observer cost is gated separately (the coap package's zero-alloc
// hot-path test) and measured end to end by the swarm benchmark.
func BenchmarkNotifyFanOut(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("observers=%d", n), func(b *testing.B) {
			gw := benchGateway(b, n, true)
			payload := []byte("22.5")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gw.Publish("bench", coap.FormatText, payload)
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "notifies/s")
		})
	}
}

// BenchmarkObserverRegistration measures the registration request path
// (dedup bookkeeping, handler dispatch, shard insert) per new observer.
func BenchmarkObserverRegistration(b *testing.B) {
	tr := &sinkTransport{}
	conn := coap.NewConn(tr, &clock.System{}, coap.ConnConfig{})
	defer conn.Close()
	gw := New(conn, Config{MaxObservers: 1 << 30, ConfirmEvery: -1, Inline: true})
	defer gw.Close()
	gw.AddResource("bench", "bench", nil)
	gw.Publish("bench", coap.FormatText, []byte("warm"))
	reg := observeDatagram("bench", true)
	addrs := make([]string, 1<<16)
	for i := range addrs {
		addrs[i] = observerAddr(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.recv(addrs[i%len(addrs)], reg)
	}
}
