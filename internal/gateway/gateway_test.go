package gateway

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/coap"
	"iiotds/internal/metrics"
	"iiotds/internal/sim"
)

// virtualWorld is a gateway on a loop switchboard driven by a virtual
// kernel, plus a raw client endpoint for hand-built datagrams.
type virtualWorld struct {
	k      *sim.Kernel
	board  *coap.Switchboard
	gw     *Gateway
	client *coap.Conn
}

func newVirtualWorld(t *testing.T, cfg Config) *virtualWorld {
	t.Helper()
	k := sim.New(1)
	sched := clock.Kernel{K: k}
	cfg.Sched = sched
	cfg.Inline = true // pool workers are wall-clock goroutines; this world is virtual
	board := coap.NewSwitchboard()
	conn := coap.NewConn(board.Attach("gw"), sched, coap.ConnConfig{})
	gw := New(conn, cfg)
	client := coap.NewConn(board.Attach("client"), sched, coap.ConnConfig{Seed: 7})
	client.Serve(coap.NewServer()) // answer notifications (ACK CONs)
	t.Cleanup(func() {
		gw.Close()
		conn.Close()
		client.Close()
	})
	return &virtualWorld{k: k, board: board, gw: gw, client: client}
}

func TestCoalescerLeadingAndTrailingEdge(t *testing.T) {
	k := sim.New(1)
	sched := clock.Kernel{K: k}
	var pushes []string
	co := NewCoalescer(sched, 100*time.Millisecond, func(cf uint32, p []byte) {
		pushes = append(pushes, string(p))
	})

	// First offer after a quiet period pushes immediately.
	co.Offer(0, []byte("a"))
	if len(pushes) != 1 || pushes[0] != "a" {
		t.Fatalf("leading edge: pushes = %q", pushes)
	}

	// A burst inside the window is held, newest-wins, and flushed once
	// on the trailing edge.
	k.Schedule(10*time.Millisecond, func() { co.Offer(0, []byte("b")) })
	k.Schedule(20*time.Millisecond, func() { co.Offer(0, []byte("c")) })
	k.Schedule(30*time.Millisecond, func() { co.Offer(0, []byte("d")) })
	k.RunFor(99 * time.Millisecond)
	if len(pushes) != 1 {
		t.Fatalf("burst pushed early: %q", pushes)
	}
	k.RunFor(20 * time.Millisecond)
	if len(pushes) != 2 || pushes[1] != "d" {
		t.Fatalf("trailing edge: pushes = %q", pushes)
	}

	offered, pushed, coalesced := co.Counts()
	if offered != 4 || pushed != 2 || coalesced != 2 {
		t.Fatalf("counts = (%d, %d, %d), want (4, 2, 2)", offered, pushed, coalesced)
	}

	// After the window, the next offer pushes immediately again.
	k.RunFor(200 * time.Millisecond)
	co.Offer(0, []byte("e"))
	if len(pushes) != 3 || pushes[2] != "e" {
		t.Fatalf("post-quiet offer: pushes = %q", pushes)
	}
}

func TestCoalescerDisabledPushesEverything(t *testing.T) {
	k := sim.New(1)
	n := 0
	co := NewCoalescer(clock.Kernel{K: k}, 0, func(uint32, []byte) { n++ })
	for i := 0; i < 5; i++ {
		co.Offer(0, []byte("x"))
	}
	if n != 5 {
		t.Fatalf("pushes = %d, want 5", n)
	}
}

func TestCacheLastValueSemantics(t *testing.T) {
	k := sim.New(1)
	c := NewCache(clock.Kernel{K: k})
	if _, ok := c.Get("t"); ok {
		t.Fatal("cold cache returned an entry")
	}
	buf := []byte("v1")
	c.Set("t", coap.FormatText, buf)
	buf[0] = 'X' // caller reuse must not corrupt the entry
	e, ok := c.Get("t")
	if !ok || string(e.Payload) != "v1" || e.Seq != 1 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	k.RunFor(3 * time.Second)
	c.Set("t", coap.FormatJSON, []byte("v2"))
	e, _ = c.Get("t")
	if e.Seq != 2 || e.ContentFormat != coap.FormatJSON {
		t.Fatalf("after update: %+v", e)
	}
	if age := c.Age(e); age != 0 {
		t.Fatalf("fresh entry age = %v", age)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.HitsMisses()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestGatewayServesReadsFromCache(t *testing.T) {
	w := newVirtualWorld(t, Config{})
	w.gw.AddResource("plant/temp", "iiot.s.temp", nil)

	var codes []coap.Code
	var bodies []string
	get := func() {
		w.client.Get("gw", "plant/temp", func(m *coap.Message, err error) {
			if err != nil {
				t.Errorf("GET failed: %v", err)
				return
			}
			codes = append(codes, m.Code)
			bodies = append(bodies, string(m.Payload))
		})
	}

	get() // cold, no fallback: 5.03 so the client retries after first publish
	w.k.Run()
	if len(codes) != 1 || codes[0] != coap.CodeServiceUnavailable {
		t.Fatalf("cold read: codes = %v", codes)
	}

	w.gw.Publish("plant/temp", coap.FormatText, []byte("21.5"))
	w.k.Run()
	get()
	w.k.Run()
	if len(codes) != 2 || codes[1] != coap.CodeContent || bodies[1] != "21.5" {
		t.Fatalf("warm read: codes = %v bodies = %q", codes, bodies)
	}
}

func TestGatewayColdReadFallback(t *testing.T) {
	w := newVirtualWorld(t, Config{})
	w.gw.AddResource("plant/valve", "iiot.a.valve", func(string, *coap.Message) *coap.Message {
		return coap.TextResponse("open")
	})
	got := ""
	w.client.Get("gw", "plant/valve", func(m *coap.Message, err error) {
		if err == nil {
			got = string(m.Payload)
		}
	})
	w.k.Run()
	if got != "open" {
		t.Fatalf("fallback read = %q", got)
	}
}

func TestGatewayPublishNotifiesObservers(t *testing.T) {
	reg := metrics.NewRegistry()
	w := newVirtualWorld(t, Config{Coalesce: 50 * time.Millisecond, Metrics: reg})
	w.gw.AddResource("plant/temp", "iiot.s.temp", nil)

	// Registration only sticks on a success response, so warm the
	// cache before observing. The registration GET answers with this
	// representation.
	w.gw.Publish("plant/temp", coap.FormatText, []byte("19.0"))
	w.k.Run()

	var seen []string
	w.client.Observe("gw", "plant/temp", func(m *coap.Message, err error) {
		if err == nil {
			seen = append(seen, string(m.Payload))
		}
	})
	w.k.Run()

	// Let the coalescing window from the warm-up publish pass, then
	// burst three publishes inside one window: observers must see the
	// leading value and the trailing (newest) value only.
	w.k.RunFor(100 * time.Millisecond)
	w.gw.Publish("plant/temp", coap.FormatText, []byte("20.0"))
	w.k.Schedule(10*time.Millisecond, func() { w.gw.Publish("plant/temp", coap.FormatText, []byte("20.4")) })
	w.k.Schedule(20*time.Millisecond, func() { w.gw.Publish("plant/temp", coap.FormatText, []byte("20.9")) })
	w.k.Run()

	want := []string{"19.0", "20.0", "20.9"}
	if len(seen) != len(want) {
		t.Fatalf("deliveries = %q, want %q", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("deliveries = %q, want %q", seen, want)
		}
	}

	st := w.gw.Stats()
	if st.Offered != 4 || st.Published != 3 || st.Coalesced != 1 || st.Observers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if e, ok := w.gw.Cache().Get("plant/temp"); !ok || string(e.Payload) != "20.9" {
		t.Fatalf("cache after burst = %+v ok=%v", e, ok)
	}
}

func TestGatewayAdmissionControl(t *testing.T) {
	w := newVirtualWorld(t, Config{MaxObservers: 1, RejectMaxAge: 17})
	w.gw.AddResource("plant/temp", "iiot.s.temp", nil)
	w.gw.Publish("plant/temp", coap.FormatText, []byte("20.0"))
	w.k.Run()

	w.client.Observe("gw", "plant/temp", func(*coap.Message, error) {})
	w.k.Run()

	// Second registration from a second endpoint must bounce with
	// 5.03 + Max-Age — "come back later", not silent degradation.
	other := coap.NewConn(w.board.Attach("other"), clock.Kernel{K: w.k}, coap.ConnConfig{Seed: 9})
	other.Serve(coap.NewServer())
	defer other.Close()
	var code coap.Code
	var maxAge uint32
	other.Observe("gw", "plant/temp", func(m *coap.Message, err error) {
		if err != nil {
			return // ErrClosed fires for the kept registration at cleanup
		}
		code = m.Code
		if o, ok := m.Option(coap.OptMaxAge); ok {
			maxAge = o.Uint()
		}
	})
	w.k.Run()
	if code != coap.CodeServiceUnavailable || maxAge != 17 {
		t.Fatalf("admission reject: code=%v max-age=%d, want 5.03 max-age=17", code, maxAge)
	}
	if got := w.gw.Stats().Observers; got != 1 {
		t.Fatalf("observers after reject = %d, want 1", got)
	}
}

func TestHTTPReadPath(t *testing.T) {
	reg := metrics.NewRegistry()
	w := newVirtualWorld(t, Config{Metrics: reg})
	w.gw.AddResource("plant/temp", "iiot.s.temp", nil)
	h := w.gw.HTTPHandler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/v1/last/plant/temp"); rec.Code != 404 {
		t.Fatalf("cold read status = %d, want 404", rec.Code)
	}

	w.gw.Publish("plant/temp", coap.FormatText, []byte("21.5"))
	w.k.Run()
	rec := get("/v1/last/plant/temp")
	if rec.Code != 200 {
		t.Fatalf("warm read status = %d: %s", rec.Code, rec.Body)
	}
	var doc lastValue
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Resource != "plant/temp" || doc.Value != "21.5" || doc.Seq != 1 || doc.ContentFormat != coap.FormatText {
		t.Fatalf("doc = %+v", doc)
	}

	rec = get("/v1/resources")
	var list []resourceInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(list) != 1 || list[0].Resource != "plant/temp" || !list[0].Cached {
		t.Fatalf("resources = %+v", list)
	}

	rec = get("/v1/stats")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st.Resources != 1 || st.Published != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHTTPServerHasTimeouts(t *testing.T) {
	s := NewHTTPServer(":0", nil)
	if s.ReadTimeout == 0 || s.WriteTimeout == 0 || s.ReadHeaderTimeout == 0 || s.IdleTimeout == 0 {
		t.Fatalf("missing timeouts: %+v", s)
	}
}

// TestSwarmLifecycle runs a small swarm end to end: register, notify,
// deregister, and the leak check. This is the scaled-down version of the
// BENCH_gateway.json run and the CI smoke.
func TestSwarmLifecycle(t *testing.T) {
	res, err := RunSwarm(SwarmConfig{
		Observers:    2000,
		Resources:    4,
		NotifyRounds: 3,
	})
	if err != nil {
		t.Fatalf("swarm: %v (result %+v)", err, res)
	}
	if res.Registered != 2000 {
		t.Fatalf("registered = %d", res.Registered)
	}
	if want := int64(2000 * 3); res.Delivered != want {
		t.Fatalf("delivered = %d, want %d", res.Delivered, want)
	}
	if res.NotifyDrops != 0 {
		t.Fatalf("drops = %d", res.NotifyDrops)
	}
	if res.LeakedObservers != 0 {
		t.Fatalf("leaked observers after deregister storm = %d", res.LeakedObservers)
	}
	if res.P99ms <= 0 || res.MaxMs < res.P99ms || res.P99ms < res.P50ms {
		t.Fatalf("implausible latencies: %+v", res)
	}
}

// TestSwarmConfirmableRounds drives the CON cadence through the swarm:
// every notification is confirmable and the transport ACKs each one, so
// no observer may be dropped as dead.
func TestSwarmConfirmableRounds(t *testing.T) {
	res, err := RunSwarm(SwarmConfig{
		Observers:    300,
		Resources:    2,
		NotifyRounds: 2,
		ConfirmEvery: 1,
	})
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}
	if res.LeakedObservers != 0 || res.Delivered != 600 {
		t.Fatalf("CON swarm result: %+v", res)
	}
}
