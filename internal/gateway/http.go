package gateway

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"iiotds/internal/coap"
	"iiotds/internal/metrics"
)

// lastValue is the /v1/last JSON document.
type lastValue struct {
	Resource      string `json:"resource"`
	Value         string `json:"value,omitempty"`
	ValueB64      string `json:"value_b64,omitempty"`
	ContentFormat uint32 `json:"content_format"`
	Seq           uint64 `json:"seq"`
	AgeMS         int64  `json:"age_ms"`
}

// resourceInfo is one row of the /v1/resources JSON document.
type resourceInfo struct {
	Resource  string `json:"resource"`
	Observers int    `json:"observers"`
	Cached    bool   `json:"cached"`
}

func textFormat(cf uint32) bool {
	switch cf {
	case coap.FormatText, coap.FormatJSON, coap.FormatLinkFormat:
		return true
	}
	return false
}

// HTTPHandler serves the gateway's HTTP/JSON read path:
//
//	GET /v1/last/<resource-path>  last cached representation (404 when cold)
//	GET /v1/resources             resource census with observer counts
//	GET /v1/stats                 gateway-wide counters
//
// Every response is served from gateway memory — polling clients never
// reach the CoAP side, let alone the mesh.
func (g *Gateway) HTTPHandler() http.Handler {
	var requests *metrics.Counter
	var cacheServed *metrics.Counter
	if g.reg != nil {
		requests = g.reg.Counter("gw.http.requests")
		cacheServed = g.reg.Counter("gw.http.cache_served")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/last/", func(w http.ResponseWriter, r *http.Request) {
		if requests != nil {
			requests.Inc()
		}
		path := strings.Trim(strings.TrimPrefix(r.URL.Path, "/v1/last/"), "/")
		e, ok := g.cache.Get(path)
		if !ok {
			http.Error(w, `{"error":"no representation cached"}`, http.StatusNotFound)
			return
		}
		if cacheServed != nil {
			cacheServed.Inc()
		}
		doc := lastValue{
			Resource:      path,
			ContentFormat: e.ContentFormat,
			Seq:           e.Seq,
			AgeMS:         g.cache.Age(e).Milliseconds(),
		}
		if textFormat(e.ContentFormat) {
			doc.Value = string(e.Payload)
		} else {
			doc.ValueB64 = base64.StdEncoding.EncodeToString(e.Payload)
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/v1/resources", func(w http.ResponseWriter, r *http.Request) {
		if requests != nil {
			requests.Inc()
		}
		out := make([]resourceInfo, 0)
		for _, p := range g.srv.Paths() {
			_, cached := g.cache.Get(p)
			out = append(out, resourceInfo{
				Resource:  p,
				Observers: g.srv.Resource(p).ObserverCount(),
				Cached:    cached,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if requests != nil {
			requests.Inc()
		}
		writeJSON(w, g.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// NewHTTPServer wraps h in an http.Server with read/write/idle timeouts
// set, so a slow or stalled client cannot pin a gateway goroutine
// forever (the default http.Server has no timeouts at all).
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}
