package gateway

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/netbuf"
)

// Entry is one cached representation. Entries are immutable once stored:
// Set swaps in a fresh entry, so a reader's snapshot (including the
// payload slice) stays valid while a writer replaces it.
type Entry struct {
	Payload       []byte
	ContentFormat uint32
	Seq           uint64        // monotonically increasing per path
	At            time.Duration // scheduler time of the Set
}

// Cache is the gateway's last-value store: one entry per resource path,
// written on every representation push, read by the CoAP GET handler and
// the HTTP/JSON polling path — which is what keeps a million dashboard
// clients from ever touching the constrained mesh.
type Cache struct {
	sched clock.Scheduler

	mu sync.RWMutex
	m  map[string]*Entry

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cache stamped by sched.
func NewCache(sched clock.Scheduler) *Cache {
	return &Cache{sched: sched, m: make(map[string]*Entry)}
}

// Set stores the latest representation for path (payload is copied).
func (c *Cache) Set(path string, contentFormat uint32, payload []byte) {
	now := c.sched.Now()
	c.mu.Lock()
	var seq uint64 = 1
	if old, ok := c.m[path]; ok {
		seq = old.Seq + 1
	}
	c.m[path] = &Entry{
		Payload:       netbuf.CloneBytes(payload),
		ContentFormat: contentFormat,
		Seq:           seq,
		At:            now,
	}
	c.mu.Unlock()
}

// Get returns the cached representation for path.
func (c *Cache) Get(path string) (Entry, bool) {
	c.mu.RLock()
	e, ok := c.m[path]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return Entry{}, false
	}
	c.hits.Add(1)
	return *e, true
}

// Age reports how long ago the entry was stored.
func (c *Cache) Age(e Entry) time.Duration { return c.sched.Now() - e.At }

// Len returns the number of cached paths.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Paths returns all cached paths, sorted.
func (c *Cache) Paths() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.m))
	for p := range c.m {
		out = append(out, p)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// HitsMisses reports read-path counters.
func (c *Cache) HitsMisses() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
