// Package gateway builds the paper's Fig. 1 border-router tier into a
// load-bearing observe gateway: the constrained mesh (or a device
// adapter) publishes representations into the gateway once, and the
// gateway fans them out to very large CoAP observer populations and
// serves HTTP/JSON polling clients from a last-value cache — so neither
// kind of client ever touches the mesh per read.
//
// The pieces, catalogued by the edge-middleware survey the ROADMAP cites
// (Renart et al.): a sharded observer registry with per-shard fan-out
// workers (internal/coap's notify pool), per-resource notification
// coalescing (bursty updates collapse into one representation push),
// admission control (observer caps answered with 5.03 + Max-Age), and a
// last-value cache behind both the CoAP GET handler and the HTTP read
// path.
package gateway

import (
	"fmt"
	"sync"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/coap"
	"iiotds/internal/metrics"
)

// Config tunes one Gateway.
type Config struct {
	// MaxObservers caps observers per resource (admission control);
	// <= 0 keeps coap.DefaultMaxObservers.
	MaxObservers int
	// RejectMaxAge is the Max-Age retry hint (seconds) carried on 5.03
	// admission rejects; 0 omits the option.
	RejectMaxAge uint32
	// Coalesce is the minimum interval between notification pushes per
	// resource: offers arriving faster collapse into one trailing push
	// carrying the newest representation. 0 pushes every offer.
	Coalesce time.Duration
	// ConfirmEvery makes every n-th notification confirmable
	// (dead-observer detection); 0 keeps the protocol default (8),
	// negative disables confirmables.
	ConfirmEvery int
	// QueueLen bounds each observer shard's outbound notify queue;
	// <= 0 selects the coap default.
	QueueLen int
	// Inline disables the parallel fan-out pool: Notify delivers
	// synchronously, in deterministic (address-sorted) order. Required
	// when the gateway runs on virtual time inside a simulation — pool
	// workers are real goroutines and would race the virtual clock.
	Inline bool
	// Sched drives coalescer timers; nil selects the system clock.
	Sched clock.Scheduler
	// Metrics, when set, receives gateway instrumentation.
	Metrics *metrics.Registry
}

// Gateway owns the observe fan-out machinery on top of one CoAP endpoint.
type Gateway struct {
	cfg   Config
	conn  *coap.Conn
	srv   *coap.Server
	sched clock.Scheduler
	cache *Cache

	mu sync.Mutex
	co map[string]*Coalescer

	reg       *metrics.Registry
	published *metrics.Counter // representation pushes that reached Notify
	offered   *metrics.Counter // Publish calls
	coalesced *metrics.Counter // offers absorbed into a pending push
}

// New wires a Gateway onto conn: it installs a coap.Server configured
// for gateway-scale observe (sharded fan-out pool, observer caps,
// admission-reject Max-Age) and an empty last-value cache.
func New(conn *coap.Conn, cfg Config) *Gateway {
	sched := cfg.Sched
	if sched == nil {
		sched = &clock.System{}
	}
	srv := coap.NewServer()
	if cfg.MaxObservers > 0 {
		srv.SetObserverLimit(cfg.MaxObservers)
	}
	srv.SetRejectMaxAge(cfg.RejectMaxAge)
	srv.SetConfirmEvery(cfg.ConfirmEvery)
	g := &Gateway{
		cfg:   cfg,
		conn:  conn,
		srv:   srv,
		sched: sched,
		cache: NewCache(sched),
		co:    make(map[string]*Coalescer),
		reg:   cfg.Metrics,
	}
	if g.reg != nil {
		g.published = g.reg.Counter("gw.notify.published")
		g.offered = g.reg.Counter("gw.notify.offered")
		g.coalesced = g.reg.Counter("gw.notify.coalesced")
	}
	conn.Serve(srv)
	if !cfg.Inline {
		srv.StartNotifyPool(cfg.QueueLen)
	}
	return g
}

// Server exposes the underlying CoAP server for extra routes (PUT
// handlers, discovery attributes).
func (g *Gateway) Server() *coap.Server { return g.srv }

// Cache exposes the last-value cache (the HTTP read path serves from it).
func (g *Gateway) Cache() *Cache { return g.cache }

// AddResource registers an observable resource whose GET serves from the
// last-value cache. fallback, when non-nil, answers reads while the
// cache is still cold (e.g. a synchronous device-adapter read); without
// one, cold reads get 5.03 so clients retry after the first publish.
func (g *Gateway) AddResource(path, rt string, fallback coap.HandlerFunc) *coap.Resource {
	r := g.srv.Resource(path).ResourceType(rt).Observable()
	r.Get(func(from string, req *coap.Message) *coap.Message {
		if e, ok := g.cache.Get(path); ok {
			resp := &coap.Message{Code: coap.CodeContent, Payload: e.Payload}
			resp.AddUintOption(coap.OptContentFormat, e.ContentFormat)
			return resp
		}
		if fallback != nil {
			return fallback(from, req)
		}
		return &coap.Message{Code: coap.CodeServiceUnavailable}
	})
	return r
}

// Publish offers a new representation for path: it lands in the
// last-value cache and — subject to coalescing — fans out to every
// observer. The payload is copied; callers may reuse the slice.
func (g *Gateway) Publish(path string, contentFormat uint32, payload []byte) {
	if g.offered != nil {
		g.offered.Inc()
	}
	g.coalescer(path).Offer(contentFormat, payload)
}

func (g *Gateway) coalescer(path string) *Coalescer {
	g.mu.Lock()
	defer g.mu.Unlock()
	co, ok := g.co[path]
	if !ok {
		r := g.srv.Resource(path)
		co = NewCoalescer(g.sched, g.cfg.Coalesce, func(cf uint32, p []byte) {
			g.cache.Set(path, cf, p)
			if g.published != nil {
				g.published.Inc()
			}
			r.Notify(cf, p)
		})
		g.co[path] = co
	}
	return co
}

// Flush pushes any pending coalesced representations immediately.
func (g *Gateway) Flush() {
	g.mu.Lock()
	cos := make([]*Coalescer, 0, len(g.co))
	for _, co := range g.co {
		cos = append(cos, co)
	}
	g.mu.Unlock()
	for _, co := range cos {
		co.Flush()
	}
}

// Close flushes pending pushes and stops the fan-out pool.
func (g *Gateway) Close() {
	g.Flush()
	g.srv.StopNotifyPool()
}

// Stats is a point-in-time gateway census.
type Stats struct {
	Resources    int   `json:"resources"`
	Observers    int   `json:"observers"`
	Published    int64 `json:"published"`
	Offered      int64 `json:"offered"`
	Coalesced    int64 `json:"coalesced"`
	NotifyDrops  int64 `json:"notify_drops"`
	CacheEntries int   `json:"cache_entries"`
}

// Stats sums gateway-wide counters (observers across all resources,
// coalescer totals, backpressure drops).
func (g *Gateway) Stats() Stats {
	s := Stats{NotifyDrops: g.srv.NotifyDropped(), CacheEntries: g.cache.Len()}
	for _, p := range g.srv.Paths() {
		s.Resources++
		s.Observers += g.srv.Resource(p).ObserverCount()
	}
	g.mu.Lock()
	for _, co := range g.co {
		off, pushed, coal := co.Counts()
		s.Offered += off
		s.Coalesced += coal
		s.Published += pushed
	}
	g.mu.Unlock()
	return s
}

// String renders a one-line census for logs.
func (s Stats) String() string {
	return fmt.Sprintf("resources=%d observers=%d published=%d offered=%d coalesced=%d drops=%d",
		s.Resources, s.Observers, s.Published, s.Offered, s.Coalesced, s.NotifyDrops)
}
