package gateway

import (
	"sync"
	"time"

	"iiotds/internal/clock"
)

// Coalescer rate-limits representation pushes for one resource. The
// first offer after a quiet period goes out immediately; offers arriving
// within min of the last push are held, newest-wins, and flushed once on
// the trailing edge — so a sensor bursting 100 updates in 50 ms costs
// observers two notifications (the leading one and the final state), not
// a hundred.
type Coalescer struct {
	sched clock.Scheduler
	min   time.Duration
	out   func(contentFormat uint32, payload []byte)

	mu         sync.Mutex
	started    bool
	last       time.Duration // sched.Now() of the last push
	hasPending bool
	pendingCF  uint32
	pending    []byte

	offered   int64
	pushed    int64
	coalesced int64
}

// NewCoalescer builds a coalescer pushing through out. min <= 0 disables
// coalescing (every offer pushes). out receives a payload it owns.
func NewCoalescer(sched clock.Scheduler, min time.Duration, out func(cf uint32, payload []byte)) *Coalescer {
	return &Coalescer{sched: sched, min: min, out: out}
}

// Offer submits a new representation. The payload is copied when held;
// when pushed through immediately it is handed to out as-is.
func (co *Coalescer) Offer(contentFormat uint32, payload []byte) {
	if co.min <= 0 {
		co.mu.Lock()
		co.offered++
		co.pushed++
		co.mu.Unlock()
		co.out(contentFormat, payload)
		return
	}
	now := co.sched.Now()
	co.mu.Lock()
	co.offered++
	if !co.hasPending && (!co.started || now-co.last >= co.min) {
		co.started = true
		co.last = now
		co.pushed++
		co.mu.Unlock()
		co.out(contentFormat, payload)
		return
	}
	if co.hasPending {
		co.coalesced++
	}
	co.pendingCF = contentFormat
	co.pending = append(co.pending[:0], payload...)
	arm := !co.hasPending
	co.hasPending = true
	delay := co.last + co.min - now
	co.mu.Unlock()
	if arm {
		if delay < 0 {
			delay = 0
		}
		co.sched.Schedule(delay, co.Flush)
	}
}

// Flush pushes the pending representation now, if any.
func (co *Coalescer) Flush() {
	co.mu.Lock()
	if !co.hasPending {
		co.mu.Unlock()
		return
	}
	co.hasPending = false
	cf, p := co.pendingCF, co.pending
	// Hand the buffer to out (which may retain it asynchronously); the
	// next held offer allocates a fresh one.
	co.pending = nil
	co.last = co.sched.Now()
	co.pushed++
	co.mu.Unlock()
	co.out(cf, p)
}

// Counts reports (offered, pushed, coalesced) totals. coalesced counts
// offers whose representation was overwritten before ever being pushed.
func (co *Coalescer) Counts() (offered, pushed, coalesced int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.offered, co.pushed, co.coalesced
}
