package radio

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"iiotds/internal/sim"
)

// audibleOrder returns the receiver IDs a send from `from` on channel ch
// would consider audible, in fan-out visit order — the order that
// decides which receiver consumes which RNG draw. It walks the same
// candidate path Send does (spatial index, or the flat ordered scan
// under SetBruteForce) applying the same skip conditions.
func audibleOrder(m *Medium, from NodeID, ch uint8) []NodeID {
	src := m.mustNode(from)
	var out []NodeID
	m.forEachCandidate(src.pos, func(n *nodeState) {
		if n.id == from || n.down || !n.listening || n.channel != ch {
			return
		}
		if !m.audible(from, n.id) {
			return
		}
		out = append(out, n.id)
	})
	return out
}

// requireParity fails unless the indexed and brute-force fan-out paths
// agree on the audible set and its order for every attached sender.
func requireParity(t *testing.T, m *Medium, ch uint8, ctx string) {
	t.Helper()
	for _, from := range m.NodeIDs() {
		m.SetBruteForce(false)
		indexed := audibleOrder(m, from, ch)
		m.SetBruteForce(true)
		brute := audibleOrder(m, from, ch)
		m.SetBruteForce(false)
		if !reflect.DeepEqual(indexed, brute) {
			t.Fatalf("%s: from=%d indexed audible set %v != brute %v", ctx, from, indexed, brute)
		}
	}
}

// TestSetPositionRebuckets pins the index maintenance: crossing a cell
// boundary moves the node between cell buckets.
func TestSetPositionRebuckets(t *testing.T) {
	_, m := newTestMedium(t)
	attach(m, 1, 5, 5)
	oldKey := m.cellOf(Position{X: 5, Y: 5})
	if got := len(m.cells[oldKey]); got != 1 {
		t.Fatalf("node not bucketed at origin cell, len=%d", got)
	}
	far := Position{X: 5 + 3*m.cellSize, Y: 5}
	m.SetPosition(1, far)
	if got := len(m.cells[oldKey]); got != 0 {
		t.Fatalf("old cell still holds %d nodes after move", got)
	}
	if got := len(m.cells[m.cellOf(far)]); got != 1 {
		t.Fatalf("new cell holds %d nodes, want 1", got)
	}
}

// TestMobileRoamOracle roams an asset tag across many cell boundaries.
// At every step the indexed medium must agree with an identically
// seeded brute-force medium on delivered traffic in both directions —
// any divergence in audible sets or RNG draw order would desynchronize
// the two runs immediately.
func TestMobileRoamOracle(t *testing.T) {
	const tag = NodeID(999)
	build := func(brute bool) (*sim.Kernel, *Medium, map[NodeID]*int, *int) {
		k := sim.New(42)
		m := NewMedium(k, DefaultParams(), nil)
		m.SetBruteForce(brute)
		rx := make(map[NodeID]*int)
		for i := 0; i < 100; i++ {
			id := NodeID(i)
			n := new(int)
			rx[id] = n
			m.Attach(id, Position{X: float64(i%10) * 12, Y: float64(i/10) * 12}, ReceiverFunc(func(Frame) { *n++ }))
			m.SetListening(id, true)
		}
		tagRx := new(int)
		m.Attach(tag, Position{}, ReceiverFunc(func(Frame) { *tagRx++ }))
		m.SetListening(tag, true)
		return k, m, rx, tagRx
	}
	ki, mi, rxi, tagRxi := build(false)
	kb, mb, rxb, tagRxb := build(true)

	// A diagonal walk in 9 m steps: cellSize is 35 m, so the tag crosses
	// a cell boundary roughly every fourth step and leaves the station
	// grid entirely near the end.
	for step := 0; step < 40; step++ {
		pos := Position{X: -20 + float64(step)*9, Y: -15 + float64(step)*7}
		mi.SetPosition(tag, pos)
		mb.SetPosition(tag, pos)
		for _, m := range []*Medium{mi, mb} {
			m.Send(Frame{From: tag, To: Broadcast, Size: 30})
			m.Send(Frame{From: NodeID(step % 100), To: Broadcast, Size: 30})
		}
		ki.Run()
		kb.Run()
		if pi, pb := mi.PRR(tag, NodeID(step%100)), mb.PRR(tag, NodeID(step%100)); pi != pb {
			t.Fatalf("step %d: PRR indexed %v != brute %v", step, pi, pb)
		}
		if !reflect.DeepEqual(mi.NeighborsOf(tag), mb.NeighborsOf(tag)) {
			t.Fatalf("step %d: NeighborsOf diverged: %v vs %v", step, mi.NeighborsOf(tag), mb.NeighborsOf(tag))
		}
		if *tagRxi != *tagRxb {
			t.Fatalf("step %d: tag received %d (indexed) vs %d (brute)", step, *tagRxi, *tagRxb)
		}
		for id, n := range rxi {
			if *n != *rxb[id] {
				t.Fatalf("step %d: node %d received %d (indexed) vs %d (brute)", step, id, *n, *rxb[id])
			}
		}
	}
	if *tagRxi == 0 {
		t.Fatal("roam never delivered anything to the tag; test is vacuous")
	}
}

// scatterMedium builds a medium with randomized positions, channels,
// down/listening flags, PRR overrides (including far beyond RangeMax),
// and possibly a link filter, all driven by rng.
func scatterMedium(rng *rand.Rand, n int) *Medium {
	k := sim.New(rng.Int63())
	m := NewMedium(k, DefaultParams(), nil)
	span := 40 + rng.Float64()*400
	for i := 0; i < n; i++ {
		id := NodeID(i)
		m.Attach(id, Position{X: rng.Float64()*span - span/2, Y: rng.Float64()*span - span/2}, ReceiverFunc(func(Frame) {}))
		m.SetListening(id, rng.Float64() < 0.8)
		if rng.Float64() < 0.1 {
			m.SetDown(id, true)
		}
		if rng.Float64() < 0.3 {
			m.SetChannel(id, uint8(rng.Intn(3)))
		}
	}
	for i := 0; i < n/3; i++ {
		from, to := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		m.SetLinkPRR(from, to, rng.Float64()) // may create far-link audibility
		if rng.Float64() < 0.3 {
			m.SetLinkPRR(from, to, -1) // and exercise removal bookkeeping
		}
	}
	if rng.Float64() < 0.5 {
		mod := NodeID(2 + rng.Intn(5))
		m.SetLinkFilter(func(a, b NodeID) bool { return (a+b)%mod != 0 })
	}
	return m
}

// TestIndexedAudibleParityProperty is the satellite property test:
// under random positions, channels, down/listening flags, filters, and
// overrides, the indexed audible set equals the brute-force O(N) scan's
// set in the same ID order.
func TestIndexedAudibleParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		m := scatterMedium(rng, 2+rng.Intn(80))
		for ch := uint8(0); ch < 3; ch++ {
			requireParity(t, m, ch, "scatter")
		}
		// Shuffle some nodes around (re-bucketing) and re-check.
		ids := m.NodeIDs()
		for i := 0; i < 5; i++ {
			m.SetPosition(ids[rng.Intn(len(ids))], Position{X: rng.Float64()*500 - 250, Y: rng.Float64()*500 - 250})
		}
		requireParity(t, m, 0, "after moves")
	}
}

// FuzzAudibleParity drives the same parity property from fuzzed inputs.
func FuzzAudibleParity(f *testing.F) {
	f.Add(int64(1), uint8(12))
	f.Add(int64(99), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		nodes := 2 + int(n)%96
		rng := rand.New(rand.NewSource(seed))
		m := scatterMedium(rng, nodes)
		for _, from := range m.NodeIDs() {
			m.SetBruteForce(false)
			indexed := audibleOrder(m, from, 0)
			m.SetBruteForce(true)
			brute := audibleOrder(m, from, 0)
			if !reflect.DeepEqual(indexed, brute) {
				t.Fatalf("from=%d indexed %v != brute %v", from, indexed, brute)
			}
		}
	})
}

// TestOverrideBeyondRange: a PRR override makes a link audible far past
// RangeMax; the override receiver must join the candidate set (it is in
// no nearby cell) and leave it when the override is removed.
func TestOverrideBeyondRange(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 500, 0) // 500 m away: inaudible by distance
	m.SetLinkPRR(1, 2, 1.0)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatalf("override link delivered %d frames, want 1", len(c2.frames))
	}
	m.SetLinkPRR(1, 2, -1)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatalf("after override removal got %d frames, want still 1", len(c2.frames))
	}
	if len(m.overRecv) != 0 || len(m.overTo) != 0 {
		t.Fatalf("override bookkeeping leaked: overRecv=%d overTo=%d", len(m.overRecv), len(m.overTo))
	}
}

// TestApplyForeignDeliversExactly: a ghost transmission announced from
// another shard delivers to local listeners at the original end-of-air
// instant, drawing loss from the local RNG.
func TestApplyForeignDeliversExactly(t *testing.T) {
	k, m := newTestMedium(t)
	var gotAt time.Duration = -1
	var gotPayload []byte
	m.Attach(5, Position{X: 10}, ReceiverFunc(func(f Frame) {
		gotAt = k.Now()
		gotPayload = append([]byte(nil), f.Payload.Bytes()...)
	}))
	m.SetListening(5, true)

	payload := []byte{0xAB, 0xCD}
	start := 2 * time.Millisecond
	end := start + m.Airtime(20)
	k.At(time.Millisecond, func() { // a barrier instant before end
		m.ApplyForeign(Announcement{
			From: 77, Pos: Position{X: 0}, Channel: 0, Size: 20,
			Start: start, End: end, Payload: payload,
		})
	})
	k.RunUntil(time.Second)
	if gotAt != end {
		t.Fatalf("foreign frame delivered at %v, want %v", gotAt, end)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload %x, want %x", gotPayload, payload)
	}
}

// TestAnnounceHookFires: Send reports every accepted transmission to the
// announce hook with the sender position and flight interval.
func TestAnnounceHookFires(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 3, 4)
	var got []Announcement
	m.SetAnnounce(func(f Frame, pos Position, start, end sim.Time) {
		got = append(got, NewAnnouncement(f, pos, start, end))
	})
	air := m.Send(Frame{From: 1, To: Broadcast, Size: 40})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("announce fired %d times, want 1", len(got))
	}
	a := got[0]
	if a.From != 1 || a.Pos.X != 3 || a.Pos.Y != 4 || a.End-a.Start != air {
		t.Fatalf("announcement %+v inconsistent with send (air %v)", a, air)
	}
}
