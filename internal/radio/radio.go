// Package radio emulates the shared lossy wireless medium of the
// sensing-and-actuation layer: distance-based packet reception, frame
// airtime, co-channel collisions, multiple channels (for the paper's
// §IV-C coexistence discussion), and per-frame energy accounting.
//
// The model is deliberately at the granularity the paper's claims need:
// loss grows with distance, concurrent co-channel transmissions audible at
// a receiver destroy each other (no capture effect), nodes only hear
// frames while their radio is listening on the right channel, and every
// transmitted or received byte costs energy.
package radio

import (
	"fmt"
	"math"
	"sort"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// NodeID identifies a radio endpoint on a medium.
type NodeID int

// Broadcast is the destination address for frames addressed to every
// listener in range.
const Broadcast NodeID = -1

// Position is a point in the deployment plane, in meters.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in meters.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Frame is one link-layer transmission unit. Payload is opaque to the
// medium; Size is the on-air size in bytes (header overhead included), and
// governs airtime and energy.
//
// Payload ownership: Send borrows the caller's buffer and retains its
// own reference for the duration of the flight, so a MAC may keep (and
// later retransmit) its reference without re-encoding. On delivery
// every receiver gets an independent clone — copy-on-fanout — valid
// only for the duration of its RadioReceive callback; a receiver that
// mutates or retains the payload cannot corrupt what sibling receivers
// of a broadcast or the sender's retransmit queue observe.
type Frame struct {
	From    NodeID
	To      NodeID // Broadcast or a specific node
	Channel uint8
	Tenant  string // administrative domain, for §IV-C accounting
	Size    int    // bytes on air
	Payload *netbuf.Buffer
}

// Receiver is implemented by the link/MAC layer of each node to accept
// frames the medium delivers.
type Receiver interface {
	RadioReceive(f Frame)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(f Frame)

// RadioReceive calls f.
func (f ReceiverFunc) RadioReceive(fr Frame) { f(fr) }

var _ Receiver = ReceiverFunc(nil)

// LinkFilter can veto delivery between a pair of nodes; the fault package
// uses it to create partitions and asymmetric links.
type LinkFilter func(from, to NodeID) bool

// Params configures the propagation and PHY model.
type Params struct {
	// BitRate in bits per second (default 250 kbps, 802.15.4-class).
	BitRate float64
	// RangeReliable is the distance up to which PRR is PRRMax.
	RangeReliable float64
	// RangeMax is the distance beyond which PRR is zero; between
	// RangeReliable and RangeMax the PRR decays linearly. This gray
	// region reproduces the lossy links low-power deployments see.
	RangeMax float64
	// PRRMax is the packet reception ratio inside RangeReliable
	// (default 1.0; lower it to model a uniformly noisy site).
	PRRMax float64
	// TurnaroundOverhead is fixed per-frame on-air overhead (preamble,
	// SFD, CRC) in bytes.
	TurnaroundOverhead int
}

// DefaultParams models an indoor industrial 802.15.4 deployment.
func DefaultParams() Params {
	return Params{
		BitRate:            250_000,
		RangeReliable:      20,
		RangeMax:           35,
		PRRMax:             1.0,
		TurnaroundOverhead: 11, // 802.15.4 PHY+sync overhead
	}
}

type nodeState struct {
	id        NodeID
	pos       Position
	recv      Receiver
	led       *metrics.EnergyLedger // resolved once at Attach (hot path)
	channel   uint8
	listening bool
	down      bool
}

// delivery is one in-flight frame copy headed to one receiver. The
// resolved receiver pointer rides along so the fan-out and completion
// never go back through the node map.
type delivery struct {
	to        NodeID
	n         *nodeState
	corrupted bool
}

// transmission is one in-flight frame with all its deliveries. The
// structs are pooled per medium (with dels capacity and the completion
// closure kept across reuse) so the steady-state send path does not
// allocate.
type transmission struct {
	frame      Frame
	start      sim.Time
	end        sim.Time
	srcPos     Position   // sender position at Send time
	src        *nodeState // local sender; nil for foreign (sharded.go)
	foreign    bool       // sender lives on another shard (sharded.go)
	epoch      uint64     // medium posEpoch when the flight started
	dels       []delivery
	completeFn func() // prebuilt m.complete(tx) closure
}

// cellKey addresses one square cell of the spatial index. The grid is
// unbounded: keys are computed by flooring coordinates, so negative and
// far-out positions hash fine.
type cellKey struct {
	x, y int32
}

// Medium is the shared wireless channel set. It is single-threaded and
// must only be used from the owning simulation kernel's event callbacks.
type Medium struct {
	k      *sim.Kernel
	params Params
	nodes  map[NodeID]*nodeState
	// ordered mirrors nodes sorted by ID. Delivery fan-out must walk
	// nodes in a fixed order: each audible receiver consumes a PRR draw
	// from the kernel's single RNG, so iterating the map directly would
	// make loss patterns depend on Go's randomized map order and break
	// run-to-run determinism (DESIGN.md §5).
	ordered []*nodeState
	active  []*transmission
	txFree  []*transmission // recycled transmission structs
	pool    *netbuf.Pool    // packet buffers for this medium's stack
	filter  LinkFilter
	energy  *metrics.EnergySet
	reg     *metrics.Registry
	rec     *trace.Recorder
	prrOver map[[2]NodeID]float64

	// Spatial index (DESIGN.md §9). Nodes are bucketed into square cells
	// of side RangeMax; every node audible from a position by distance is
	// inside the 3×3 cell neighborhood of that position. Cell slices are
	// kept sorted by ID so the fan-out's streaming merge visits
	// candidates in exactly the ascending-ID order the flat `ordered`
	// scan used — the audible subset, and therefore the RNG draw
	// sequence, is byte-identical.
	cellSize float64
	cells    map[cellKey][]*nodeState
	// candCache memoizes, per center cell, the merged ID-sorted 3×3
	// neighborhood the fan-out walks. Topology edits (attach, re-bucket)
	// bump gridGen, lazily invalidating every entry; steady-state sends
	// then iterate one flat slice with no per-candidate merge work.
	candCache map[cellKey]*candList
	gridGen   uint64
	// Collision-check pruning (DESIGN.md §9). Two transmissions can only
	// interact when their senders are within 2·RangeMax: every receiver
	// sits strictly inside RangeMax of its sender whenever no PRR
	// override is installed. nearTx is the per-send scratch holding the
	// live co-channel transmissions that pass the bound; posEpoch counts
	// SetPosition calls so flights that overlap node movement fall back
	// to the unpruned loop (a moved receiver may have left its sender's
	// disk, voiding the bound).
	nearTx   []*transmission
	posEpoch uint64
	// PRR overrides can make a link audible beyond RangeMax (the fault
	// layer's degraded-link model is distance-free), so override
	// receivers are merged into every candidate set as a tenth stream.
	overTo   map[NodeID]int // incoming-override count per receiver
	overRecv []*nodeState   // attached override receivers, ID-sorted
	brute    bool           // force the O(N) ordered scan (oracle/baseline)

	// announce, when set, observes every accepted transmission so a
	// sharded deployment can mirror border traffic into neighbor shards
	// (sharded.go). nil for a standalone medium.
	announce func(f Frame, pos Position, start, end sim.Time)

	// Hot-path counters resolved once at construction: Registry.Counter
	// is a mutex+map lookup, too slow for the per-frame path.
	cTxFrames   *metrics.Counter
	cTxBytes    *metrics.Counter
	cRxFrames   *metrics.Counter
	cCollisions *metrics.Counter
	cCollXTen   *metrics.Counter
	cDropLoss   *metrics.Counter
	cDropGone   *metrics.Counter
}

// NewMedium creates a medium on kernel k. reg may be nil, in which case a
// private registry is created.
func NewMedium(k *sim.Kernel, p Params, reg *metrics.Registry) *Medium {
	if p.BitRate <= 0 {
		panic("radio: BitRate must be positive")
	}
	if p.RangeMax < p.RangeReliable {
		panic("radio: RangeMax < RangeReliable")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	cs := p.RangeMax
	if cs <= 0 {
		// Degenerate model: nothing is audible by distance, only via PRR
		// overrides. Any positive cell size keeps the grid well-defined.
		cs = 1
	}
	return &Medium{
		k:         k,
		params:    p,
		nodes:     make(map[NodeID]*nodeState),
		pool:      netbuf.NewPool(),
		energy:    metrics.NewEnergySet(metrics.DefaultPowerProfile()),
		reg:       reg,
		prrOver:   make(map[[2]NodeID]float64),
		cellSize:  cs,
		cells:     make(map[cellKey][]*nodeState),
		candCache: make(map[cellKey]*candList),
		overTo:    make(map[NodeID]int),

		cTxFrames:   reg.Counter("radio.tx_frames"),
		cTxBytes:    reg.Counter("radio.tx_bytes"),
		cRxFrames:   reg.Counter("radio.rx_frames"),
		cCollisions: reg.Counter("radio.collisions"),
		cCollXTen:   reg.Counter("radio.collisions_cross_tenant"),
		cDropLoss:   reg.Counter("radio.dropped_loss"),
		cDropGone:   reg.Counter("radio.dropped_gone"),
	}
}

// Buffers returns the medium's packet-buffer pool. The whole stack of
// one node shares this pool, so buffers flow between layers without
// crossing pools (and, like the medium, it is single-threaded).
func (m *Medium) Buffers() *netbuf.Pool { return m.pool }

// Kernel returns the simulation kernel the medium runs on.
func (m *Medium) Kernel() *sim.Kernel { return m.k }

// Registry returns the metrics registry used for medium counters.
func (m *Medium) Registry() *metrics.Registry { return m.reg }

// SetRecorder installs the flight recorder the medium emits trace events
// into. nil (the default) disables tracing.
func (m *Medium) SetRecorder(rec *trace.Recorder) { m.rec = rec }

// Recorder returns the installed flight recorder (possibly nil).
func (m *Medium) Recorder() *trace.Recorder { return m.rec }

// Energy returns the per-node energy ledgers.
func (m *Medium) Energy() *metrics.EnergySet { return m.energy }

// Attach registers a node at pos with the given receiver. The node starts
// on channel 0 with its radio off.
func (m *Medium) Attach(id NodeID, pos Position, recv Receiver) {
	if _, dup := m.nodes[id]; dup {
		panic(fmt.Sprintf("radio: node %d attached twice", id))
	}
	if recv == nil {
		panic("radio: Attach with nil receiver")
	}
	n := &nodeState{id: id, pos: pos, recv: recv, led: m.energy.Ledger(int(id))}
	m.nodes[id] = n
	insertSorted(&m.ordered, n)
	m.cellInsert(n)
	if m.overTo[id] > 0 {
		// An override targeting this node was installed before it
		// attached; it joins the override-receiver stream now.
		insertSorted(&m.overRecv, n)
	}
}

// insertSorted inserts n into the ID-sorted slice *s.
func insertSorted(s *[]*nodeState, n *nodeState) {
	v := *s
	at := sort.Search(len(v), func(i int) bool { return v[i].id > n.id })
	v = append(v, nil)
	copy(v[at+1:], v[at:])
	v[at] = n
	*s = v
}

// removeSorted removes the node with the given id from the ID-sorted
// slice *s (no-op if absent).
func removeSorted(s *[]*nodeState, id NodeID) {
	v := *s
	at := sort.Search(len(v), func(i int) bool { return v[i].id >= id })
	if at == len(v) || v[at].id != id {
		return
	}
	copy(v[at:], v[at+1:])
	v[len(v)-1] = nil
	*s = v[:len(v)-1]
}

// cellOf returns the grid cell containing p.
func (m *Medium) cellOf(p Position) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / m.cellSize)),
		y: int32(math.Floor(p.Y / m.cellSize)),
	}
}

func (m *Medium) cellInsert(n *nodeState) {
	key := m.cellOf(n.pos)
	s := m.cells[key]
	insertSorted(&s, n)
	m.cells[key] = s
	m.gridGen++
}

func (m *Medium) cellRemove(n *nodeState, key cellKey) {
	s := m.cells[key]
	removeSorted(&s, n.id)
	if len(s) == 0 {
		delete(m.cells, key)
	} else {
		m.cells[key] = s
	}
	m.gridGen++
}

// SetPosition moves a node (e.g., a mobile asset tag), re-bucketing it
// in the spatial index when it crosses a cell boundary.
func (m *Medium) SetPosition(id NodeID, pos Position) {
	n := m.mustNode(id)
	m.posEpoch++
	oldKey := m.cellOf(n.pos)
	n.pos = pos
	if newKey := m.cellOf(pos); newKey != oldKey {
		m.cellRemove(n, oldKey)
		m.cellInsert(n)
	}
}

// SetBruteForce forces (true) or restores (false) the reference O(N)
// medium: the flat ordered-scan delivery fan-out instead of the spatial
// index, and unpruned collision loops over every active transmission
// instead of the 2·RangeMax sender-distance cut. The two engines visit
// the same audible receivers in the same ID order and corrupt the same
// deliveries — the grid and pruning invariants DESIGN.md §9 proves — so
// results are byte-identical; only wall-clock time differs. Tests use
// the brute path as the oracle and benchmarks as the baseline.
func (m *Medium) SetBruteForce(on bool) { m.brute = on }

// PositionOf returns a node's position.
func (m *Medium) PositionOf(id NodeID) Position { return m.mustNode(id).pos }

// SetChannel tunes a node's radio.
func (m *Medium) SetChannel(id NodeID, ch uint8) { m.mustNode(id).channel = ch }

// ChannelOf returns the channel a node is tuned to.
func (m *Medium) ChannelOf(id NodeID) uint8 { return m.mustNode(id).channel }

// SetListening turns a node's receiver on or off. Only listening nodes
// receive frames; idle-listening energy is charged by the MAC layer, which
// owns the duty-cycling policy.
func (m *Medium) SetListening(id NodeID, on bool) { m.mustNode(id).listening = on }

// Listening reports whether a node's receiver is on.
func (m *Medium) Listening(id NodeID) bool { return m.mustNode(id).listening }

// SetDown marks a node crashed (true) or recovered (false). Down nodes
// neither send nor receive.
func (m *Medium) SetDown(id NodeID, down bool) { m.mustNode(id).down = down }

// Down reports whether the node is crashed.
func (m *Medium) Down(id NodeID) bool { return m.mustNode(id).down }

// SetLinkFilter installs a delivery veto; nil removes it.
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// SetLinkPRR overrides the distance-based PRR for the directed link
// from->to with a fixed value in [0,1]. Use a negative value to remove the
// override.
func (m *Medium) SetLinkPRR(from, to NodeID, prr float64) {
	key := [2]NodeID{from, to}
	if prr < 0 {
		if _, ok := m.prrOver[key]; ok {
			delete(m.prrOver, key)
			m.overTo[to]--
			if m.overTo[to] == 0 {
				delete(m.overTo, to)
				removeSorted(&m.overRecv, to)
			}
		}
		return
	}
	if prr > 1 {
		panic(fmt.Sprintf("radio: PRR %v > 1", prr))
	}
	if _, ok := m.prrOver[key]; !ok {
		m.overTo[to]++
		if m.overTo[to] == 1 {
			if n, ok := m.nodes[to]; ok {
				insertSorted(&m.overRecv, n)
			}
		}
	}
	m.prrOver[key] = prr
}

// NodeIDs returns all attached node IDs in ascending order.
func (m *Medium) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *Medium) mustNode(id NodeID) *nodeState {
	n, ok := m.nodes[id]
	if !ok {
		panic(fmt.Sprintf("radio: unknown node %d", id))
	}
	return n
}

// PRR returns the packet reception ratio of the directed link from->to
// under the current model (override, else distance), ignoring collisions.
func (m *Medium) PRR(from, to NodeID) float64 {
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr
	}
	d := m.mustNode(from).pos.Distance(m.mustNode(to).pos)
	return m.prrAtDistance(d)
}

func (m *Medium) prrAtDistance(d float64) float64 {
	p := m.params
	switch {
	case d <= p.RangeReliable:
		return p.PRRMax
	case d >= p.RangeMax:
		return 0
	default:
		return p.PRRMax * (p.RangeMax - d) / (p.RangeMax - p.RangeReliable)
	}
}

// Airtime returns the on-air duration of a frame of the given payload
// size in bytes.
func (m *Medium) Airtime(sizeBytes int) time.Duration {
	bits := float64(sizeBytes+m.params.TurnaroundOverhead) * 8
	return time.Duration(bits / m.params.BitRate * float64(time.Second))
}

// CarrierSense reports whether node id currently hears an ongoing
// co-channel transmission (for CSMA back-off decisions).
func (m *Medium) CarrierSense(id NodeID) bool {
	n := m.mustNode(id)
	now := m.k.Now()
	for _, tx := range m.active {
		if tx.end <= now || tx.frame.Channel != n.channel {
			continue
		}
		if m.txAudible(tx, n) {
			return true
		}
	}
	return false
}

// getTx pops a recycled transmission or creates one with its
// completion closure prebuilt (so Send schedules without allocating).
func (m *Medium) getTx() *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.completeFn = func() { m.complete(tx) }
	return tx
}

// putTx recycles a completed transmission, dropping its payload
// reference but keeping the dels capacity and closure.
func (m *Medium) putTx(tx *transmission) {
	tx.frame = Frame{}
	tx.srcPos = Position{}
	tx.src = nil
	tx.foreign = false
	for i := range tx.dels {
		tx.dels[i].n = nil
	}
	tx.dels = tx.dels[:0]
	m.txFree = append(m.txFree, tx)
}

// audible reports whether from's signal carries to to at all (within
// RangeMax and not vetoed). Audibility is what matters for interference;
// successful decoding additionally passes the PRR draw.
func (m *Medium) audible(from, to NodeID) bool {
	if from == to {
		return false
	}
	if m.filter != nil && !m.filter(from, to) {
		return false
	}
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr > 0
	}
	src, dst := m.mustNode(from), m.mustNode(to)
	return src.pos.Distance(dst.pos) < m.params.RangeMax
}

// audibleAt is the fan-out hot path's audibility predicate: the sender
// is given by ID + position and the receiver by its resolved state, so
// the common case (no overrides installed) touches no maps at all. It
// decides exactly like audible/foreignAudible — filter, then override,
// then distance — so the audible set is unchanged.
func (m *Medium) audibleAt(from NodeID, pos Position, dst *nodeState) bool {
	if from == dst.id {
		return false
	}
	if m.filter != nil && !m.filter(from, dst.id) {
		return false
	}
	if len(m.prrOver) > 0 {
		if prr, ok := m.prrOver[[2]NodeID{from, dst.id}]; ok {
			return prr > 0
		}
	}
	return pos.Distance(dst.pos) < m.params.RangeMax
}

// foreignAudible is audible for a sender that is not attached to this
// medium (a ghost transmission mirrored from another shard): the sender
// is known only by ID and position. Filters and PRR overrides are keyed
// by deployment-global IDs, so partitions and degraded links keep
// working across shard boundaries.
func (m *Medium) foreignAudible(from NodeID, pos Position, to NodeID) bool {
	if from == to {
		return false
	}
	if m.filter != nil && !m.filter(from, to) {
		return false
	}
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr > 0
	}
	return pos.Distance(m.mustNode(to).pos) < m.params.RangeMax
}

// txAudible reports whether an in-flight transmission is audible at dst,
// handling foreign senders that have no nodeState here. Local senders
// are judged at their current position (a node moved mid-flight carries
// its interference with it, as the flat scan always did); foreign ones
// at the announced position.
func (m *Medium) txAudible(tx *transmission, dst *nodeState) bool {
	pos := tx.srcPos
	if tx.src != nil {
		pos = tx.src.pos
	}
	return m.audibleAt(tx.frame.From, pos, dst)
}

// nearActive collects the live co-channel transmissions that could
// possibly interact with a frame sent from pos, into a reused scratch
// slice (valid until the next call). A transmission is skipped only
// when the 2·RangeMax sender-distance bound proves no shared audible
// point exists — and only when that bound actually holds: no PRR
// override installed (overrides are distance-free) and no node moved
// since the flight started (posEpoch match; a moved receiver may have
// left its sender's disk). Iterating the pruned list is therefore
// decision-for-decision identical to iterating m.active: everything
// dropped would have failed the audibility predicate anyway.
func (m *Medium) nearActive(pos Position, ch uint8, now sim.Time) []*transmission {
	near := m.nearTx[:0]
	limit := 2 * m.params.RangeMax
	prune := !m.brute && len(m.prrOver) == 0
	for _, other := range m.active {
		if other.end <= now || other.frame.Channel != ch {
			continue
		}
		if prune && other.epoch == m.posEpoch {
			// No movement since this flight started, so its send-time
			// position is current for the sender and every receiver.
			if pos.Distance(other.srcPos) >= limit {
				continue
			}
		}
		near = append(near, other)
	}
	m.nearTx = near
	return near
}

// foreignPRR is PRR for a sender known only by ID and position.
func (m *Medium) foreignPRR(from NodeID, pos Position, to NodeID) float64 {
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr
	}
	return m.prrAtDistance(pos.Distance(m.mustNode(to).pos))
}

// candList is one candCache entry: the ID-sorted union of a 3×3 cell
// neighborhood, valid while gen matches the medium's gridGen. The slice
// keeps its capacity across rebuilds, so steady-state invalidation
// churn (mobile nodes crossing cell boundaries) does not allocate.
type candList struct {
	gen  uint64
	list []*nodeState
}

// forEachCandidate visits every node that could possibly be audible from
// center — the 3×3 cell neighborhood (cell side = RangeMax, so distance
// audibility cannot reach farther) plus the override receivers (PRR
// overrides are distance-free) — in strictly ascending ID order with
// duplicates suppressed. Because candidates are a superset of the
// audible set presented in the same ID order as the flat scan, the
// audible subset — and with it the RNG draw order — is identical to the
// brute-force path. With SetBruteForce the flat ordered scan is used
// instead.
//
// The neighborhood union is memoized per center cell (candCache) and
// invalidated wholesale by gridGen whenever any node attaches or
// re-buckets; a static fleet pays the 9-cell streaming merge once per
// cell and every later send iterates one flat slice. Cells are
// disjoint, so the cached union needs no dedup; only the override
// stream — merged live, since SetLinkPRR does not bump gridGen — can
// duplicate a cell member. Zero heap allocations in steady state.
func (m *Medium) forEachCandidate(center Position, fn func(*nodeState)) {
	if m.brute {
		for _, n := range m.ordered {
			fn(n)
		}
		return
	}
	c := m.cellOf(center)
	cl := m.candCache[c]
	if cl == nil {
		cl = &candList{gen: m.gridGen - 1}
		m.candCache[c] = cl
	}
	if cl.gen != m.gridGen {
		cl.list = cl.list[:0]
		var streams [9][]*nodeState
		ns := 0
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				if s := m.cells[cellKey{c.x + dx, c.y + dy}]; len(s) > 0 {
					streams[ns] = s
					ns++
				}
			}
		}
		for {
			best := -1
			for i := 0; i < ns; i++ {
				if len(streams[i]) == 0 {
					continue
				}
				if best < 0 || streams[i][0].id < streams[best][0].id {
					best = i
				}
			}
			if best < 0 {
				break
			}
			cl.list = append(cl.list, streams[best][0])
			streams[best] = streams[best][1:]
		}
		cl.gen = m.gridGen
	}
	if len(m.overRecv) == 0 {
		for _, n := range cl.list {
			fn(n)
		}
		return
	}
	// Two-way merge with the override receivers, suppressing the
	// duplicate when an override target is also a neighborhood member.
	a, b := cl.list, m.overRecv
	last := NodeID(0)
	first := true
	for len(a) > 0 || len(b) > 0 {
		var n *nodeState
		if len(b) == 0 || (len(a) > 0 && a[0].id <= b[0].id) {
			n, a = a[0], a[1:]
		} else {
			n, b = b[0], b[1:]
		}
		if !first && n.id == last {
			continue
		}
		first = false
		last = n.id
		fn(n)
	}
}

// Send transmits frame f from node f.From. Delivery callbacks fire at the
// end of the frame's airtime. The return value is the airtime, which the
// caller's MAC must respect before transmitting again.
//
// Send borrows f.Payload: it retains its own flight reference and
// releases it after delivery fan-out, so the caller's reference (e.g. a
// MAC's ARQ queue entry) stays valid for retransmission.
func (m *Medium) Send(f Frame) time.Duration {
	src := m.mustNode(f.From)
	if src.down {
		return 0
	}
	if f.Payload != nil {
		if n := f.Payload.Len(); f.Size < n {
			f.Size = n
		}
		f.Payload.Retain()
	}
	air := m.Airtime(f.Size)
	now := m.k.Now()
	m.cTxFrames.Inc()
	m.cTxBytes.Add(float64(f.Size))
	src.led.Spend(metrics.StateTx, air)
	m.rec.Emit(int32(f.From), trace.RadioTx, int64(f.To), int64(f.Size), 0, payloadJourney(f.Payload))

	tx := m.getTx()
	tx.frame = f
	tx.start, tx.end = now, now+air
	tx.srcPos = src.pos
	tx.src = src
	tx.epoch = m.posEpoch

	// Mark collisions: any receiver that can hear both this frame and an
	// already-active co-channel frame decodes neither. Only the spatially
	// near transmissions (nearActive) can have such a receiver.
	near := m.nearActive(src.pos, f.Channel, now)
	for _, other := range near {
		for i := range other.dels {
			d := &other.dels[i]
			if !d.corrupted && m.audibleAt(f.From, src.pos, d.n) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != f.Tenant {
					m.cCollXTen.Inc()
				}
				m.rec.Emit(int32(d.to), trace.RadioCollision, int64(other.frame.From), int64(f.From), 0, payloadJourney(other.frame.Payload))
			}
		}
	}

	m.forEachCandidate(src.pos, func(n *nodeState) {
		id := n.id
		if id == f.From || n.down || !n.listening || n.channel != f.Channel {
			return
		}
		// Audibility and link PRR share one distance computation, and the
		// override map (rare) is consulted only when any are installed;
		// the decision order matches audible()/PRR() exactly, so the
		// audible set and the loss-draw values are unchanged.
		if m.filter != nil && !m.filter(f.From, id) {
			return
		}
		prr, over := 0.0, false
		if len(m.prrOver) > 0 {
			prr, over = m.prrOver[[2]NodeID{f.From, id}]
		}
		if over {
			if prr <= 0 {
				return
			}
		} else {
			dist := src.pos.Distance(n.pos)
			if dist >= m.params.RangeMax {
				return
			}
			prr = m.prrAtDistance(dist)
		}
		// The receiver's radio is busy for the whole frame either way.
		n.led.Spend(metrics.StateRx, air)
		tx.dels = append(tx.dels, delivery{to: id, n: n})
		d := &tx.dels[len(tx.dels)-1]
		// Collision with other concurrently active frames audible here.
		for _, other := range near {
			if m.txAudible(other, n) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != f.Tenant {
					m.cCollXTen.Inc()
				}
				m.rec.Emit(int32(id), trace.RadioCollision, int64(other.frame.From), int64(f.From), 0, payloadJourney(f.Payload))
				break
			}
		}
		// Stochastic loss from link quality.
		if !d.corrupted && m.k.Rand().Float64() >= prr {
			d.corrupted = true
			m.cDropLoss.Inc()
			m.rec.Emit(int32(id), trace.RadioLoss, int64(f.From), int64(f.Size), 0, payloadJourney(f.Payload))
		}
	})

	m.active = append(m.active, tx)
	m.k.Schedule(air, tx.completeFn)
	if m.announce != nil {
		m.announce(f, src.pos, now, now+air)
	}
	return air
}

// payloadJourney reads the journey ID off a frame payload; control
// frames built without a payload buffer have no journey.
func payloadJourney(b *netbuf.Buffer) uint64 {
	if b == nil {
		return 0
	}
	return b.Journey()
}

func (m *Medium) complete(tx *transmission) {
	// Remove from active first: receive handlers re-enter Send (ACKs),
	// and a completed frame must not collide with them.
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	f := tx.frame
	for i := range tx.dels {
		d := &tx.dels[i]
		n := d.n
		if n.down || !n.listening || n.channel != f.Channel {
			// Receiver went away mid-frame.
			m.cDropGone.Inc()
			continue
		}
		if d.corrupted {
			continue
		}
		m.cRxFrames.Inc()
		m.rec.Emit(int32(d.to), trace.RadioDeliver, int64(f.From), int64(f.Size), 0, payloadJourney(f.Payload))
		if f.Payload != nil {
			// Copy-on-fanout: each receiver gets its own view, alive only
			// for the callback. Receivers that retain must copy.
			view := f.Payload.Clone()
			df := f
			df.Payload = view
			n.recv.RadioReceive(df)
			view.Release()
		} else {
			n.recv.RadioReceive(f)
		}
	}
	if f.Payload != nil {
		f.Payload.Release() // flight reference taken in Send
	}
	m.putTx(tx)
}

// NeighborsOf returns the IDs of nodes within RangeMax of id, nearest
// first. Candidates come from the spatial index (any node within
// RangeMax is in the 3×3 cell neighborhood); the full (distance, id)
// sort makes the result independent of collection order.
func (m *Medium) NeighborsOf(id NodeID) []NodeID {
	src := m.mustNode(id)
	type cand struct {
		id NodeID
		d  float64
	}
	var cands []cand
	m.forEachCandidate(src.pos, func(n *nodeState) {
		if n.id == id {
			return
		}
		if d := src.pos.Distance(n.pos); d < m.params.RangeMax {
			cands = append(cands, cand{n.id, d})
		}
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	ids := make([]NodeID, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	return ids
}
