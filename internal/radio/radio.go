// Package radio emulates the shared lossy wireless medium of the
// sensing-and-actuation layer: distance-based packet reception, frame
// airtime, co-channel collisions, multiple channels (for the paper's
// §IV-C coexistence discussion), and per-frame energy accounting.
//
// The model is deliberately at the granularity the paper's claims need:
// loss grows with distance, concurrent co-channel transmissions audible at
// a receiver destroy each other (no capture effect), nodes only hear
// frames while their radio is listening on the right channel, and every
// transmitted or received byte costs energy.
package radio

import (
	"fmt"
	"math"
	"sort"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// NodeID identifies a radio endpoint on a medium.
type NodeID int

// Broadcast is the destination address for frames addressed to every
// listener in range.
const Broadcast NodeID = -1

// Position is a point in the deployment plane, in meters.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in meters.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Frame is one link-layer transmission unit. Payload is opaque to the
// medium; Size is the on-air size in bytes (header overhead included), and
// governs airtime and energy.
//
// Payload ownership: Send borrows the caller's buffer and retains its
// own reference for the duration of the flight, so a MAC may keep (and
// later retransmit) its reference without re-encoding. On delivery
// every receiver gets an independent clone — copy-on-fanout — valid
// only for the duration of its RadioReceive callback; a receiver that
// mutates or retains the payload cannot corrupt what sibling receivers
// of a broadcast or the sender's retransmit queue observe.
type Frame struct {
	From    NodeID
	To      NodeID // Broadcast or a specific node
	Channel uint8
	Tenant  string // administrative domain, for §IV-C accounting
	Size    int    // bytes on air
	Payload *netbuf.Buffer
}

// Receiver is implemented by the link/MAC layer of each node to accept
// frames the medium delivers.
type Receiver interface {
	RadioReceive(f Frame)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(f Frame)

// RadioReceive calls f.
func (f ReceiverFunc) RadioReceive(fr Frame) { f(fr) }

var _ Receiver = ReceiverFunc(nil)

// LinkFilter can veto delivery between a pair of nodes; the fault package
// uses it to create partitions and asymmetric links.
type LinkFilter func(from, to NodeID) bool

// Params configures the propagation and PHY model.
type Params struct {
	// BitRate in bits per second (default 250 kbps, 802.15.4-class).
	BitRate float64
	// RangeReliable is the distance up to which PRR is PRRMax.
	RangeReliable float64
	// RangeMax is the distance beyond which PRR is zero; between
	// RangeReliable and RangeMax the PRR decays linearly. This gray
	// region reproduces the lossy links low-power deployments see.
	RangeMax float64
	// PRRMax is the packet reception ratio inside RangeReliable
	// (default 1.0; lower it to model a uniformly noisy site).
	PRRMax float64
	// TurnaroundOverhead is fixed per-frame on-air overhead (preamble,
	// SFD, CRC) in bytes.
	TurnaroundOverhead int
}

// DefaultParams models an indoor industrial 802.15.4 deployment.
func DefaultParams() Params {
	return Params{
		BitRate:            250_000,
		RangeReliable:      20,
		RangeMax:           35,
		PRRMax:             1.0,
		TurnaroundOverhead: 11, // 802.15.4 PHY+sync overhead
	}
}

type nodeState struct {
	id        NodeID
	pos       Position
	recv      Receiver
	channel   uint8
	listening bool
	down      bool
}

// delivery is one in-flight frame copy headed to one receiver.
type delivery struct {
	to        NodeID
	corrupted bool
}

// transmission is one in-flight frame with all its deliveries. The
// structs are pooled per medium (with dels capacity and the completion
// closure kept across reuse) so the steady-state send path does not
// allocate.
type transmission struct {
	frame      Frame
	start      sim.Time
	end        sim.Time
	dels       []delivery
	completeFn func() // prebuilt m.complete(tx) closure
}

// Medium is the shared wireless channel set. It is single-threaded and
// must only be used from the owning simulation kernel's event callbacks.
type Medium struct {
	k      *sim.Kernel
	params Params
	nodes  map[NodeID]*nodeState
	// ordered mirrors nodes sorted by ID. Delivery fan-out must walk
	// nodes in a fixed order: each audible receiver consumes a PRR draw
	// from the kernel's single RNG, so iterating the map directly would
	// make loss patterns depend on Go's randomized map order and break
	// run-to-run determinism (DESIGN.md §5).
	ordered []*nodeState
	active  []*transmission
	txFree  []*transmission // recycled transmission structs
	pool    *netbuf.Pool    // packet buffers for this medium's stack
	filter  LinkFilter
	energy  *metrics.EnergySet
	reg     *metrics.Registry
	rec     *trace.Recorder
	prrOver map[[2]NodeID]float64

	// Hot-path counters resolved once at construction: Registry.Counter
	// is a mutex+map lookup, too slow for the per-frame path.
	cTxFrames   *metrics.Counter
	cTxBytes    *metrics.Counter
	cRxFrames   *metrics.Counter
	cCollisions *metrics.Counter
	cCollXTen   *metrics.Counter
	cDropLoss   *metrics.Counter
	cDropGone   *metrics.Counter
}

// NewMedium creates a medium on kernel k. reg may be nil, in which case a
// private registry is created.
func NewMedium(k *sim.Kernel, p Params, reg *metrics.Registry) *Medium {
	if p.BitRate <= 0 {
		panic("radio: BitRate must be positive")
	}
	if p.RangeMax < p.RangeReliable {
		panic("radio: RangeMax < RangeReliable")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Medium{
		k:       k,
		params:  p,
		nodes:   make(map[NodeID]*nodeState),
		pool:    netbuf.NewPool(),
		energy:  metrics.NewEnergySet(metrics.DefaultPowerProfile()),
		reg:     reg,
		prrOver: make(map[[2]NodeID]float64),

		cTxFrames:   reg.Counter("radio.tx_frames"),
		cTxBytes:    reg.Counter("radio.tx_bytes"),
		cRxFrames:   reg.Counter("radio.rx_frames"),
		cCollisions: reg.Counter("radio.collisions"),
		cCollXTen:   reg.Counter("radio.collisions_cross_tenant"),
		cDropLoss:   reg.Counter("radio.dropped_loss"),
		cDropGone:   reg.Counter("radio.dropped_gone"),
	}
}

// Buffers returns the medium's packet-buffer pool. The whole stack of
// one node shares this pool, so buffers flow between layers without
// crossing pools (and, like the medium, it is single-threaded).
func (m *Medium) Buffers() *netbuf.Pool { return m.pool }

// Kernel returns the simulation kernel the medium runs on.
func (m *Medium) Kernel() *sim.Kernel { return m.k }

// Registry returns the metrics registry used for medium counters.
func (m *Medium) Registry() *metrics.Registry { return m.reg }

// SetRecorder installs the flight recorder the medium emits trace events
// into. nil (the default) disables tracing.
func (m *Medium) SetRecorder(rec *trace.Recorder) { m.rec = rec }

// Recorder returns the installed flight recorder (possibly nil).
func (m *Medium) Recorder() *trace.Recorder { return m.rec }

// Energy returns the per-node energy ledgers.
func (m *Medium) Energy() *metrics.EnergySet { return m.energy }

// Attach registers a node at pos with the given receiver. The node starts
// on channel 0 with its radio off.
func (m *Medium) Attach(id NodeID, pos Position, recv Receiver) {
	if _, dup := m.nodes[id]; dup {
		panic(fmt.Sprintf("radio: node %d attached twice", id))
	}
	if recv == nil {
		panic("radio: Attach with nil receiver")
	}
	n := &nodeState{id: id, pos: pos, recv: recv}
	m.nodes[id] = n
	at := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].id > id })
	m.ordered = append(m.ordered, nil)
	copy(m.ordered[at+1:], m.ordered[at:])
	m.ordered[at] = n
}

// SetPosition moves a node (e.g., a mobile asset tag).
func (m *Medium) SetPosition(id NodeID, pos Position) {
	m.mustNode(id).pos = pos
}

// PositionOf returns a node's position.
func (m *Medium) PositionOf(id NodeID) Position { return m.mustNode(id).pos }

// SetChannel tunes a node's radio.
func (m *Medium) SetChannel(id NodeID, ch uint8) { m.mustNode(id).channel = ch }

// ChannelOf returns the channel a node is tuned to.
func (m *Medium) ChannelOf(id NodeID) uint8 { return m.mustNode(id).channel }

// SetListening turns a node's receiver on or off. Only listening nodes
// receive frames; idle-listening energy is charged by the MAC layer, which
// owns the duty-cycling policy.
func (m *Medium) SetListening(id NodeID, on bool) { m.mustNode(id).listening = on }

// Listening reports whether a node's receiver is on.
func (m *Medium) Listening(id NodeID) bool { return m.mustNode(id).listening }

// SetDown marks a node crashed (true) or recovered (false). Down nodes
// neither send nor receive.
func (m *Medium) SetDown(id NodeID, down bool) { m.mustNode(id).down = down }

// Down reports whether the node is crashed.
func (m *Medium) Down(id NodeID) bool { return m.mustNode(id).down }

// SetLinkFilter installs a delivery veto; nil removes it.
func (m *Medium) SetLinkFilter(f LinkFilter) { m.filter = f }

// SetLinkPRR overrides the distance-based PRR for the directed link
// from->to with a fixed value in [0,1]. Use a negative value to remove the
// override.
func (m *Medium) SetLinkPRR(from, to NodeID, prr float64) {
	key := [2]NodeID{from, to}
	if prr < 0 {
		delete(m.prrOver, key)
		return
	}
	if prr > 1 {
		panic(fmt.Sprintf("radio: PRR %v > 1", prr))
	}
	m.prrOver[key] = prr
}

// NodeIDs returns all attached node IDs in ascending order.
func (m *Medium) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *Medium) mustNode(id NodeID) *nodeState {
	n, ok := m.nodes[id]
	if !ok {
		panic(fmt.Sprintf("radio: unknown node %d", id))
	}
	return n
}

// PRR returns the packet reception ratio of the directed link from->to
// under the current model (override, else distance), ignoring collisions.
func (m *Medium) PRR(from, to NodeID) float64 {
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr
	}
	d := m.mustNode(from).pos.Distance(m.mustNode(to).pos)
	return m.prrAtDistance(d)
}

func (m *Medium) prrAtDistance(d float64) float64 {
	p := m.params
	switch {
	case d <= p.RangeReliable:
		return p.PRRMax
	case d >= p.RangeMax:
		return 0
	default:
		return p.PRRMax * (p.RangeMax - d) / (p.RangeMax - p.RangeReliable)
	}
}

// Airtime returns the on-air duration of a frame of the given payload
// size in bytes.
func (m *Medium) Airtime(sizeBytes int) time.Duration {
	bits := float64(sizeBytes+m.params.TurnaroundOverhead) * 8
	return time.Duration(bits / m.params.BitRate * float64(time.Second))
}

// CarrierSense reports whether node id currently hears an ongoing
// co-channel transmission (for CSMA back-off decisions).
func (m *Medium) CarrierSense(id NodeID) bool {
	n := m.mustNode(id)
	now := m.k.Now()
	for _, tx := range m.active {
		if tx.end <= now || tx.frame.Channel != n.channel {
			continue
		}
		if m.audible(tx.frame.From, id) {
			return true
		}
	}
	return false
}

// getTx pops a recycled transmission or creates one with its
// completion closure prebuilt (so Send schedules without allocating).
func (m *Medium) getTx() *transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.completeFn = func() { m.complete(tx) }
	return tx
}

// putTx recycles a completed transmission, dropping its payload
// reference but keeping the dels capacity and closure.
func (m *Medium) putTx(tx *transmission) {
	tx.frame = Frame{}
	tx.dels = tx.dels[:0]
	m.txFree = append(m.txFree, tx)
}

// audible reports whether from's signal carries to to at all (within
// RangeMax and not vetoed). Audibility is what matters for interference;
// successful decoding additionally passes the PRR draw.
func (m *Medium) audible(from, to NodeID) bool {
	if from == to {
		return false
	}
	if m.filter != nil && !m.filter(from, to) {
		return false
	}
	if prr, ok := m.prrOver[[2]NodeID{from, to}]; ok {
		return prr > 0
	}
	src, dst := m.mustNode(from), m.mustNode(to)
	return src.pos.Distance(dst.pos) < m.params.RangeMax
}

// Send transmits frame f from node f.From. Delivery callbacks fire at the
// end of the frame's airtime. The return value is the airtime, which the
// caller's MAC must respect before transmitting again.
//
// Send borrows f.Payload: it retains its own flight reference and
// releases it after delivery fan-out, so the caller's reference (e.g. a
// MAC's ARQ queue entry) stays valid for retransmission.
func (m *Medium) Send(f Frame) time.Duration {
	src := m.mustNode(f.From)
	if src.down {
		return 0
	}
	if f.Payload != nil {
		if n := f.Payload.Len(); f.Size < n {
			f.Size = n
		}
		f.Payload.Retain()
	}
	air := m.Airtime(f.Size)
	now := m.k.Now()
	m.cTxFrames.Inc()
	m.cTxBytes.Add(float64(f.Size))
	m.energy.Ledger(int(f.From)).Spend(metrics.StateTx, air)
	m.rec.Emit(int32(f.From), trace.RadioTx, int64(f.To), int64(f.Size), 0, payloadJourney(f.Payload))

	tx := m.getTx()
	tx.frame = f
	tx.start, tx.end = now, now+air

	// Mark collisions: any receiver that can hear both this frame and an
	// already-active co-channel frame decodes neither.
	for _, other := range m.active {
		if other.end <= now || other.frame.Channel != f.Channel {
			continue
		}
		for i := range other.dels {
			d := &other.dels[i]
			if !d.corrupted && m.audible(f.From, d.to) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != f.Tenant {
					m.cCollXTen.Inc()
				}
				m.rec.Emit(int32(d.to), trace.RadioCollision, int64(other.frame.From), int64(f.From), 0, payloadJourney(other.frame.Payload))
			}
		}
	}

	for _, n := range m.ordered {
		id := n.id
		if id == f.From || n.down || !n.listening || n.channel != f.Channel {
			continue
		}
		if !m.audible(f.From, id) {
			continue
		}
		// The receiver's radio is busy for the whole frame either way.
		m.energy.Ledger(int(id)).Spend(metrics.StateRx, air)
		tx.dels = append(tx.dels, delivery{to: id})
		d := &tx.dels[len(tx.dels)-1]
		// Collision with other concurrently active frames audible here.
		for _, other := range m.active {
			if other.end > now && other.frame.Channel == f.Channel && m.audible(other.frame.From, id) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != f.Tenant {
					m.cCollXTen.Inc()
				}
				m.rec.Emit(int32(id), trace.RadioCollision, int64(other.frame.From), int64(f.From), 0, payloadJourney(f.Payload))
				break
			}
		}
		// Stochastic loss from link quality.
		if !d.corrupted && m.k.Rand().Float64() >= m.PRR(f.From, id) {
			d.corrupted = true
			m.cDropLoss.Inc()
			m.rec.Emit(int32(id), trace.RadioLoss, int64(f.From), int64(f.Size), 0, payloadJourney(f.Payload))
		}
	}

	m.active = append(m.active, tx)
	m.k.Schedule(air, tx.completeFn)
	return air
}

// payloadJourney reads the journey ID off a frame payload; control
// frames built without a payload buffer have no journey.
func payloadJourney(b *netbuf.Buffer) uint64 {
	if b == nil {
		return 0
	}
	return b.Journey()
}

func (m *Medium) complete(tx *transmission) {
	// Remove from active first: receive handlers re-enter Send (ACKs),
	// and a completed frame must not collide with them.
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	f := tx.frame
	for i := range tx.dels {
		d := &tx.dels[i]
		n := m.nodes[d.to]
		if n == nil || n.down || !n.listening || n.channel != f.Channel {
			// Receiver went away mid-frame.
			m.cDropGone.Inc()
			continue
		}
		if d.corrupted {
			continue
		}
		m.cRxFrames.Inc()
		m.rec.Emit(int32(d.to), trace.RadioDeliver, int64(f.From), int64(f.Size), 0, payloadJourney(f.Payload))
		if f.Payload != nil {
			// Copy-on-fanout: each receiver gets its own view, alive only
			// for the callback. Receivers that retain must copy.
			view := f.Payload.Clone()
			df := f
			df.Payload = view
			n.recv.RadioReceive(df)
			view.Release()
		} else {
			n.recv.RadioReceive(f)
		}
	}
	if f.Payload != nil {
		f.Payload.Release() // flight reference taken in Send
	}
	m.putTx(tx)
}

// NeighborsOf returns the IDs of nodes within RangeMax of id, nearest
// first.
func (m *Medium) NeighborsOf(id NodeID) []NodeID {
	src := m.mustNode(id)
	type cand struct {
		id NodeID
		d  float64
	}
	var cands []cand
	for oid, n := range m.nodes {
		if oid == id {
			continue
		}
		d := src.pos.Distance(n.pos)
		if d < m.params.RangeMax {
			cands = append(cands, cand{oid, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	ids := make([]NodeID, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	return ids
}
