package radio

import (
	"math/rand"
	"testing"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/sim"
)

type collector struct {
	frames   []Frame
	payloads [][]byte // copied per frame: delivered views die with the callback
}

func (c *collector) RadioReceive(f Frame) {
	c.frames = append(c.frames, f)
	var p []byte
	if f.Payload != nil {
		p = netbuf.CloneBytes(f.Payload.Bytes())
	}
	c.payloads = append(c.payloads, p)
}

func newTestMedium(t *testing.T) (*sim.Kernel, *Medium) {
	t.Helper()
	k := sim.New(1)
	return k, NewMedium(k, DefaultParams(), nil)
}

func attach(m *Medium, id NodeID, x, y float64) *collector {
	c := &collector{}
	m.Attach(id, Position{X: x, Y: y}, c)
	m.SetListening(id, true)
	return c
}

func TestDeliveryInRange(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 10, 0)
	pl := netbuf.FromBytes([]byte("hello"))
	m.Send(Frame{From: 1, To: 2, Payload: pl, Size: 20})
	pl.Release() // the medium's flight reference keeps it alive
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(c2.frames))
	}
	if string(c2.payloads[0]) != "hello" {
		t.Fatalf("payload = %q", c2.payloads[0])
	}
}

// TestBroadcastFanoutIsolation is the regression test for the payload
// aliasing bug: one Frame.Payload used to fan out to every receiver of
// a broadcast as the same slice, so a receiver mutating its "own" bytes
// corrupted its siblings — and the sender's retained retransmit buffer.
func TestBroadcastFanoutIsolation(t *testing.T) {
	k := sim.New(1)
	m := NewMedium(k, DefaultParams(), nil)
	attach(m, 1, 0, 0)
	var got2, got3 []byte
	vandal := func(f Frame) {
		b := f.Payload.Bytes()
		got2 = netbuf.CloneBytes(b)
		for i := range b {
			b[i] = 0xFF // scribble over the delivered view
		}
	}
	m.Attach(2, Position{X: 5}, ReceiverFunc(vandal))
	m.SetListening(2, true)
	m.Attach(3, Position{X: 10}, ReceiverFunc(func(f Frame) {
		got3 = netbuf.CloneBytes(f.Payload.Bytes())
	}))
	m.SetListening(3, true)

	sent := m.Buffers().Get()
	sent.Append([]byte("fragile"))
	sent.Retain() // sender's retransmit-queue reference
	m.Send(Frame{From: 1, To: Broadcast, Payload: sent, Size: 20})
	sent.Release() // drop the send-call ref; the retained ref remains
	k.Run()

	// Node 2 (lower ID, dispatched first) scribbled its view; node 3 and
	// the sender's retained buffer must be untouched.
	if string(got2) != "fragile" {
		t.Fatalf("node 2 saw %q", got2)
	}
	if string(got3) != "fragile" {
		t.Fatalf("sibling receiver corrupted by node 2's mutation: %q", got3)
	}
	if string(sent.Bytes()) != "fragile" {
		t.Fatalf("sender's retransmit buffer corrupted: %q", sent.Bytes())
	}
	sent.Release()
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 100, 0)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 0 {
		t.Fatalf("out-of-range node received %d frames", len(c2.frames))
	}
}

func TestGrayRegionLoss(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 30, 0) // PRR = (35-30)/(35-20) = 1/3
	const n = 3000
	for i := 0; i < n; i++ {
		i := i
		k.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			m.Send(Frame{From: 1, To: 2, Size: 20})
		})
	}
	k.Run()
	got := float64(len(c2.frames)) / n
	if got < 0.28 || got > 0.39 {
		t.Fatalf("gray-region delivery ratio = %v, want ≈ 1/3", got)
	}
}

func TestNotListeningNoDelivery(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 5, 0)
	m.SetListening(2, false)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 0 {
		t.Fatal("sleeping node received a frame")
	}
}

func TestChannelIsolation(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 5, 0)
	c3 := attach(m, 3, 5, 5)
	m.SetChannel(1, 11)
	m.SetChannel(2, 11)
	m.SetChannel(3, 12)
	m.Send(Frame{From: 1, To: Broadcast, Channel: 11, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatalf("co-channel node got %d frames, want 1", len(c2.frames))
	}
	if len(c3.frames) != 0 {
		t.Fatalf("cross-channel node got %d frames, want 0", len(c3.frames))
	}
}

func TestCollisionDestroysBoth(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 10, 0)
	c3 := attach(m, 3, 5, 0) // hears both
	// Overlapping transmissions from 1 and 2.
	k.Schedule(0, func() { m.Send(Frame{From: 1, To: 3, Size: 50}) })
	k.Schedule(100*time.Microsecond, func() { m.Send(Frame{From: 2, To: 3, Size: 50}) })
	k.Run()
	if len(c3.frames) != 0 {
		t.Fatalf("receiver decoded %d frames during collision, want 0", len(c3.frames))
	}
	if m.Registry().Counter("radio.collisions").Value() == 0 {
		t.Fatal("collision counter not incremented")
	}
}

func TestNonOverlappingFramesBothDelivered(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 10, 0)
	c3 := attach(m, 3, 5, 0)
	air := m.Airtime(50)
	k.Schedule(0, func() { m.Send(Frame{From: 1, To: 3, Size: 50}) })
	k.Schedule(air+time.Millisecond, func() { m.Send(Frame{From: 2, To: 3, Size: 50}) })
	k.Run()
	if len(c3.frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(c3.frames))
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// Nodes 1 and 2 are out of range of each other but both reach 3:
	// the classic hidden-terminal case must still collide at 3.
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 60, 0)
	c3 := attach(m, 3, 30, 0)
	m.SetLinkPRR(1, 3, 1)
	m.SetLinkPRR(2, 3, 1)
	k.Schedule(0, func() { m.Send(Frame{From: 1, To: 3, Size: 50}) })
	k.Schedule(50*time.Microsecond, func() { m.Send(Frame{From: 2, To: 3, Size: 50}) })
	k.Run()
	if len(c3.frames) != 0 {
		t.Fatalf("hidden-terminal frames decoded: %d", len(c3.frames))
	}
}

func TestCarrierSense(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 10, 0)
	var during, after bool
	k.Schedule(0, func() { m.Send(Frame{From: 1, To: Broadcast, Size: 100}) })
	k.Schedule(time.Microsecond, func() { during = m.CarrierSense(2) })
	k.Schedule(time.Second, func() { after = m.CarrierSense(2) })
	k.Run()
	if !during {
		t.Fatal("carrier sense false during transmission")
	}
	if after {
		t.Fatal("carrier sense true after transmission ended")
	}
}

func TestDownNodeNeitherSendsNorReceives(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 5, 0)
	m.SetDown(2, true)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 0 {
		t.Fatal("down node received a frame")
	}
	m.SetDown(1, true)
	if air := m.Send(Frame{From: 1, To: 2, Size: 20}); air != 0 {
		t.Fatal("down node transmitted")
	}
	// Recovery restores delivery.
	m.SetDown(1, false)
	m.SetDown(2, false)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatalf("recovered node got %d frames, want 1", len(c2.frames))
	}
}

func TestLinkFilterPartition(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 5, 0)
	m.SetLinkFilter(func(from, to NodeID) bool { return false })
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 0 {
		t.Fatal("filtered link delivered")
	}
	m.SetLinkFilter(nil)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatal("removing filter did not restore delivery")
	}
}

func TestEnergyAccounting(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 5, 0)
	m.Send(Frame{From: 1, To: 2, Size: 100})
	k.Run()
	if m.Energy().Ledger(1).Joules(1) == 0 && m.Energy().Ledger(1).TotalJoules() == 0 {
		t.Fatal("sender spent no energy")
	}
	if m.Energy().Ledger(2).TotalJoules() == 0 {
		t.Fatal("receiver spent no energy")
	}
}

func TestAirtimeScalesWithSize(t *testing.T) {
	_, m := newTestMedium(t)
	small, big := m.Airtime(10), m.Airtime(100)
	if big <= small {
		t.Fatalf("airtime(100)=%v <= airtime(10)=%v", big, small)
	}
	// 127-byte 802.15.4 frame ≈ 4.4 ms at 250 kbps.
	got := m.Airtime(127 - 11)
	if got < 4*time.Millisecond || got > 5*time.Millisecond {
		t.Fatalf("max-frame airtime = %v, want ≈4.4ms", got)
	}
}

func TestSetLinkPRRZeroBlocksAndNegativeRestores(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	c2 := attach(m, 2, 5, 0)
	m.SetLinkPRR(1, 2, 0)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 0 {
		t.Fatal("PRR=0 link delivered")
	}
	m.SetLinkPRR(1, 2, -1)
	m.Send(Frame{From: 1, To: 2, Size: 20})
	k.Run()
	if len(c2.frames) != 1 {
		t.Fatal("PRR override removal failed")
	}
}

func TestNeighborsSortedByDistance(t *testing.T) {
	_, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 30, 0)
	attach(m, 3, 10, 0)
	attach(m, 4, 500, 0)
	got := m.NeighborsOf(1)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("NeighborsOf = %v, want [3 2]", got)
	}
}

func TestCrossTenantCollisionCounter(t *testing.T) {
	k, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	attach(m, 2, 10, 0)
	attach(m, 3, 5, 0)
	k.Schedule(0, func() { m.Send(Frame{From: 1, To: 3, Size: 50, Tenant: "acme"}) })
	k.Schedule(50*time.Microsecond, func() { m.Send(Frame{From: 2, To: 3, Size: 50, Tenant: "globex"}) })
	k.Run()
	if m.Registry().Counter("radio.collisions_cross_tenant").Value() == 0 {
		t.Fatal("cross-tenant collision not counted")
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	_, m := newTestMedium(t)
	attach(m, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Attach(1, Position{}, &collector{})
}

func TestGridTopology(t *testing.T) {
	top := GridTopology(9, 10)
	if len(top) != 9 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != (Position{0, 0}) || top[4] != (Position{10, 10}) || top[8] != (Position{20, 20}) {
		t.Fatalf("grid positions wrong: %v", top)
	}
	w, h := top.Bounds()
	if w != 20 || h != 20 {
		t.Fatalf("Bounds = %v,%v", w, h)
	}
}

func TestLineTopology(t *testing.T) {
	top := LineTopology(4, 15)
	if top[3] != (Position{X: 45}) {
		t.Fatalf("line positions wrong: %v", top)
	}
}

func TestConnectedRandomTopologyIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const maxLink = 25.0
	top := ConnectedRandomTopology(60, 200, 200, maxLink, rng)
	if len(top) != 60 {
		t.Fatalf("len = %d", len(top))
	}
	// BFS over the maxLink graph must reach every node.
	adj := func(i int) []int {
		var out []int
		for j := range top {
			if j != i && top[i].Distance(top[j]) <= maxLink {
				out = append(out, j)
			}
		}
		return out
	}
	seen := map[int]bool{0: true}
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(top) {
		t.Fatalf("topology disconnected: reached %d of %d", len(seen), len(top))
	}
}

func TestTopologyPanicsOnZeroNodes(t *testing.T) {
	for name, fn := range map[string]func(){
		"grid": func() { GridTopology(0, 1) },
		"line": func() { LineTopology(0, 1) },
		"rand": func() { RandomTopology(0, 1, 1, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
