// Cross-shard transmission mirroring for sharded deployments.
//
// When one deployment is split over several kernels (sim.ShardGroup),
// each shard owns a Medium holding only its own nodes. A transmission
// near a shard boundary must also be heard by the neighbor shard's
// nodes: the sending shard announces it (SetAnnounce hook, fired by
// Send), the group's barrier carries the Announcement across, and the
// receiving shard applies it as a "ghost" transmission — a foreign
// sender known only by ID and position, fanned out to local receivers
// with the local RNG, colliding symmetrically with local and other
// foreign frames.
//
// Timing is exact for deliveries: the group's lookahead is the minimum
// frame airtime, so the barrier that carries an announcement for a
// frame sent at t falls no later than t + airtime — always at or
// before the frame's own delivery instant — and the ghost's completion
// is scheduled at the original End. Only carrier-sense and collision
// visibility of cross-shard frames lags until the barrier; that lag is
// part of the sharded model (DESIGN.md §9) and is identical at every
// worker count, so results depend on the shard count (a model
// parameter) but never on how many OS threads execute them.
package radio

import (
	"iiotds/internal/metrics"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// Announcement describes a transmission to a medium that does not host
// the sender. Payload is an owned copy of the frame bytes (the
// sender-side netbuf is not shared across shards); it must not be
// mutated after construction.
type Announcement struct {
	From    NodeID
	To      NodeID
	Pos     Position // sender position at Send time
	Channel uint8
	Tenant  string
	Size    int
	Start   sim.Time
	End     sim.Time
	Payload []byte // nil for payload-free control frames
}

// NewAnnouncement captures frame f sent from pos over [start, end] into
// a self-contained Announcement, copying the payload bytes out of the
// sender's pooled buffer.
func NewAnnouncement(f Frame, pos Position, start, end sim.Time) Announcement {
	a := Announcement{
		From:    f.From,
		To:      f.To,
		Pos:     pos,
		Channel: f.Channel,
		Tenant:  f.Tenant,
		Size:    f.Size,
		Start:   start,
		End:     end,
	}
	if f.Payload != nil {
		a.Payload = append([]byte(nil), f.Payload.Bytes()...)
	}
	return a
}

// SetAnnounce installs the hook Send fires for every accepted
// transmission (after local fan-out). The sharded deployment glue uses
// it to post announcements toward neighbor shards; nil removes it.
func (m *Medium) SetAnnounce(fn func(f Frame, pos Position, start, end sim.Time)) {
	m.announce = fn
}

// ApplyForeign applies an announced cross-shard transmission to this
// medium's nodes. It must run at a shard barrier (the group guarantees
// barrier time ≤ a.End). The fan-out mirrors Send: candidates come
// from the spatial index around the foreign position plus override
// receivers, in ascending ID order; each audible receiver draws loss
// from THIS medium's kernel RNG; overlapping local and foreign actives
// collide both ways. Delivery completes at the original a.End, each
// receiver getting its own pooled copy of the payload (journey IDs do
// not cross shards: the copy carries journey 0).
func (m *Medium) ApplyForeign(a Announcement) {
	now := m.k.Now()
	if a.End <= now {
		// The announcement arrived after the frame ended (cannot happen
		// under the group's lookahead discipline; guarded for safety).
		return
	}
	air := a.End - a.Start

	tx := m.getTx()
	tx.frame = Frame{From: a.From, To: a.To, Channel: a.Channel, Tenant: a.Tenant, Size: a.Size}
	if a.Payload != nil {
		b := m.pool.Get()
		b.Append(a.Payload)
		tx.frame.Payload = b // flight reference, released in complete()
	}
	tx.start, tx.end = a.Start, a.End
	tx.srcPos = a.Pos
	tx.foreign = true
	tx.epoch = m.posEpoch

	// The ghost corrupts deliveries of frames already in flight here —
	// local or previously applied foreign — exactly as a local Send
	// would, pruned to the spatially near ones (nearActive).
	near := m.nearActive(a.Pos, a.Channel, now)
	for _, other := range near {
		for i := range other.dels {
			d := &other.dels[i]
			if !d.corrupted && m.audibleAt(a.From, a.Pos, d.n) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != a.Tenant {
					m.cCollXTen.Inc()
				}
				m.rec.Emit(int32(d.to), trace.RadioCollision, int64(other.frame.From), int64(a.From), 0, payloadJourney(other.frame.Payload))
			}
		}
	}

	m.forEachCandidate(a.Pos, func(n *nodeState) {
		id := n.id
		if id == a.From || n.down || !n.listening || n.channel != a.Channel {
			return
		}
		// Mirror of Send's inlined audibility + PRR: one distance
		// computation, override map touched only when non-empty
		// (identical decisions to foreignAudible/foreignPRR).
		if m.filter != nil && !m.filter(a.From, id) {
			return
		}
		prr, over := 0.0, false
		if len(m.prrOver) > 0 {
			prr, over = m.prrOver[[2]NodeID{a.From, id}]
		}
		if over {
			if prr <= 0 {
				return
			}
		} else {
			dist := a.Pos.Distance(n.pos)
			if dist >= m.params.RangeMax {
				return
			}
			prr = m.prrAtDistance(dist)
		}
		n.led.Spend(metrics.StateRx, air)
		tx.dels = append(tx.dels, delivery{to: id, n: n})
		d := &tx.dels[len(tx.dels)-1]
		for _, other := range near {
			if m.txAudible(other, n) {
				d.corrupted = true
				m.cCollisions.Inc()
				if other.frame.Tenant != a.Tenant {
					m.cCollXTen.Inc()
				}
				// journey IDs do not cross shards; the owned copy's
				// journey is 0, read off the buffer for the linter's
				// benefit and for symmetry with Send.
				m.rec.Emit(int32(id), trace.RadioCollision, int64(other.frame.From), int64(a.From), 0, payloadJourney(tx.frame.Payload))
				break
			}
		}
		if !d.corrupted && m.k.Rand().Float64() >= prr {
			d.corrupted = true
			m.cDropLoss.Inc()
			m.rec.Emit(int32(id), trace.RadioLoss, int64(a.From), int64(a.Size), 0, payloadJourney(tx.frame.Payload))
		}
	})

	m.active = append(m.active, tx)
	m.k.At(a.End, tx.completeFn)
}
