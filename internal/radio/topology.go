package radio

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology is a set of node positions, produced by the generators below
// and consumed when building deployments. Index i is the position of the
// i-th node.
type Topology []Position

// GridTopology lays out n nodes on a near-square grid with the given
// spacing in meters. The first position is the grid corner (0,0), which
// deployments conventionally use for the border router.
func GridTopology(n int, spacing float64) Topology {
	if n <= 0 {
		panic(fmt.Sprintf("radio: GridTopology n=%d", n))
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	t := make(Topology, n)
	for i := 0; i < n; i++ {
		t[i] = Position{
			X: float64(i%cols) * spacing,
			Y: float64(i/cols) * spacing,
		}
	}
	return t
}

// LineTopology lays out n nodes on a line with the given spacing: the
// canonical multi-hop chain for latency experiments (E3).
func LineTopology(n int, spacing float64) Topology {
	if n <= 0 {
		panic(fmt.Sprintf("radio: LineTopology n=%d", n))
	}
	t := make(Topology, n)
	for i := 0; i < n; i++ {
		t[i] = Position{X: float64(i) * spacing}
	}
	return t
}

// RandomTopology scatters n nodes uniformly over a w×h meter area using
// rng. Position 0 is forced to the area center so the border router sits
// mid-field, which produces the funneling patterns E4 studies.
func RandomTopology(n int, w, h float64, rng *rand.Rand) Topology {
	if n <= 0 {
		panic(fmt.Sprintf("radio: RandomTopology n=%d", n))
	}
	t := make(Topology, n)
	t[0] = Position{X: w / 2, Y: h / 2}
	for i := 1; i < n; i++ {
		t[i] = Position{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return t
}

// ConnectedRandomTopology scatters nodes like RandomTopology but retries
// node placement until each node is within maxLink of some
// earlier-placed node, guaranteeing a connected deployment.
func ConnectedRandomTopology(n int, w, h, maxLink float64, rng *rand.Rand) Topology {
	if n <= 0 {
		panic(fmt.Sprintf("radio: ConnectedRandomTopology n=%d", n))
	}
	t := make(Topology, 0, n)
	t = append(t, Position{X: w / 2, Y: h / 2})
	for len(t) < n {
		p := Position{X: rng.Float64() * w, Y: rng.Float64() * h}
		for _, q := range t {
			if p.Distance(q) <= maxLink {
				t = append(t, p)
				break
			}
		}
	}
	return t
}

// Bounds returns the width and height of the topology's bounding box.
func (t Topology) Bounds() (w, h float64) {
	for _, p := range t {
		if p.X > w {
			w = p.X
		}
		if p.Y > h {
			h = p.Y
		}
	}
	return w, h
}
