package radio

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"iiotds/internal/sim"
)

// benchMedium builds an N-node medium. dense packs everyone into one
// RangeMax-sized neighborhood (every node hears every other — the
// worst case for fan-out work); sparse spreads nodes at roughly
// uniform density ~6 neighbors each, the regime a city-scale fleet
// lives in and where the spatial index pays off.
func benchMedium(n int, dense bool) (*sim.Kernel, *Medium) {
	k := sim.New(1)
	m := NewMedium(k, DefaultParams(), nil)
	rng := rand.New(rand.NewSource(7))
	span := 30.0 // everyone within one cell neighborhood
	if !dense {
		// Area giving ~6 expected nodes within RangeMax of a point.
		span = DefaultParams().RangeMax * math.Sqrt(math.Pi*float64(n)/6)
	}
	for i := 0; i < n; i++ {
		m.Attach(NodeID(i), Position{X: rng.Float64() * span, Y: rng.Float64() * span}, ReceiverFunc(func(Frame) {}))
		m.SetListening(NodeID(i), true)
	}
	return k, m
}

// BenchmarkSend measures one Send fan-out plus its completion drain.
// The indexed path visits only the 3×3 cell neighborhood; brute is the
// reference O(N) scan. BENCH_spatial.json records the before/after.
func BenchmarkSend(b *testing.B) {
	for _, density := range []string{"dense", "sparse"} {
		for _, n := range []int{100, 1000, 10000} {
			for _, mode := range []string{"indexed", "brute"} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", density, n, mode), func(b *testing.B) {
					k, m := benchMedium(n, density == "dense")
					m.SetBruteForce(mode == "brute")
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m.Send(Frame{From: NodeID(i % n), To: Broadcast, Size: 30})
						k.Run() // drain the completion event
					}
				})
			}
		}
	}
}

// TestSendFanoutAllocFree is the CI gate for the satellite requirement:
// the indexed delivery path allocates nothing in steady state. The
// first sends warm the transmission pool, per-node energy ledgers, and
// the per-cell candidate caches from every spot; after that, Send +
// completion must be 0 allocs/op.
func TestSendFanoutAllocFree(t *testing.T) {
	k, m := benchMedium(500, false)
	for i := 0; i < 500; i++ { // warm pools, ledgers, caches from every spot
		m.Send(Frame{From: NodeID(i), To: Broadcast, Size: 30})
		k.Run()
	}
	i := 0
	avg := testing.AllocsPerRun(300, func() {
		m.Send(Frame{From: NodeID(i % 500), To: Broadcast, Size: 30})
		k.Run()
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state indexed Send = %v allocs/op, want 0", avg)
	}
}
