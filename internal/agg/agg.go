// Package agg implements TinyDB/TAG-style in-network aggregation (paper
// ref [31]): the root floods a declarative query; every node samples
// locally each epoch, merges its children's partial state records, and
// forwards one merged record to its parent. The funnel region around the
// border router then carries O(children) merged records per epoch instead
// of O(network) raw readings — the load relief §IV-B describes.
package agg

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
)

// ProtoAgg is the lowpan protocol number for partial state records.
const ProtoAgg lowpan.Proto = 4

// ProtoFlood is the link protocol number for query dissemination.
const ProtoFlood link.Protocol = 4

// Func is an aggregation function.
type Func int

// Supported aggregate functions.
const (
	Count Func = iota
	Sum
	Min
	Max
	Avg
)

// String names the function.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// Query is a continuous aggregate query over one attribute.
type Query struct {
	ID       uint16        `json:"id"`
	Fn       Func          `json:"fn"`
	Attr     string        `json:"attr"`
	Epoch    time.Duration `json:"epoch"`
	MaxDepth int           `json:"max_depth"` // scheduling horizon (tree depth bound)
}

// PSR is a partial state record: the mergeable aggregate state.
type PSR struct {
	QueryID uint16  `json:"q"`
	EpochNo uint32  `json:"e"`
	Count   uint32  `json:"n"`
	Sum     float64 `json:"s"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

// merge folds other into p.
func (p *PSR) merge(other PSR) {
	if other.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = other
		return
	}
	p.Count += other.Count
	p.Sum += other.Sum
	if other.Min < p.Min {
		p.Min = other.Min
	}
	if other.Max > p.Max {
		p.Max = other.Max
	}
}

// Result is the root's per-epoch answer.
type Result struct {
	Query   Query
	EpochNo uint32
	Count   uint32
	Value   float64
}

// value extracts the query's answer from a PSR.
func (q Query) value(p PSR) float64 {
	switch q.Fn {
	case Count:
		return float64(p.Count)
	case Sum:
		return p.Sum
	case Min:
		return p.Min
	case Max:
		return p.Max
	case Avg:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Sum / float64(p.Count)
	default:
		return math.NaN()
	}
}

// Sampler provides the node's local reading for an attribute; ok=false
// means the node does not produce this attribute.
type Sampler func(attr string) (value float64, ok bool)

// queryState is per-node per-query runtime state.
type queryState struct {
	q       Query
	depth   int
	pending PSR
	epochNo uint32
	timer   sim.Event
}

// floodMsg disseminates a query.
type floodMsg struct {
	Query Query `json:"query"`
	Depth int   `json:"depth"`
}

// Node is the aggregation service running on one mesh node.
type Node struct {
	k       *sim.Kernel
	r       *rpl.Router
	lnk     *link.Link
	sampler Sampler

	queries map[uint16]*queryState
	seenQ   map[uint16]bool

	// OnResult fires at the root once per epoch per query.
	OnResult func(res Result)
	// LateRecords counts PSRs that missed their epoch deadline.
	LateRecords int
}

// NewNode creates the aggregation service for the node behind r/lnk.
// sampler may be nil at the root.
func NewNode(k *sim.Kernel, r *rpl.Router, lnk *link.Link, sampler Sampler) *Node {
	n := &Node{
		k:       k,
		r:       r,
		lnk:     lnk,
		sampler: sampler,
		queries: make(map[uint16]*queryState),
		seenQ:   make(map[uint16]bool),
	}
	lnk.Handle(ProtoFlood, n.onFlood)
	r.Handle(ProtoAgg, n.onPSR)
	return n
}

// RunQuery (root only) starts disseminating and collecting a query.
func (n *Node) RunQuery(q Query) {
	if !n.r.IsRoot() {
		panic("agg: RunQuery on non-root")
	}
	if q.Epoch <= 0 {
		panic("agg: query epoch must be positive")
	}
	if q.MaxDepth <= 0 {
		q.MaxDepth = 10
	}
	n.install(q, 0)
	n.flood(q, 0)
}

// StopQuery cancels a query locally (results stop; dissemination of the
// stop is by epoch timeout in a full system and omitted here).
func (n *Node) StopQuery(id uint16) {
	if st, ok := n.queries[id]; ok {
		st.timer.Cancel()
		delete(n.queries, id)
	}
}

func (n *Node) flood(q Query, depth int) {
	data, err := json.Marshal(floodMsg{Query: q, Depth: depth})
	if err != nil {
		return
	}
	msg := make([]byte, 2+len(data))
	binary.BigEndian.PutUint16(msg[:2], q.ID)
	copy(msg[2:], data)
	n.lnk.Broadcast(ProtoFlood, msg)
}

func (n *Node) onFlood(from radio.NodeID, raw []byte) {
	if len(raw) < 2 {
		return
	}
	var fm floodMsg
	if err := json.Unmarshal(raw[2:], &fm); err != nil {
		return
	}
	if n.seenQ[fm.Query.ID] {
		return
	}
	n.install(fm.Query, fm.Depth+1)
	n.flood(fm.Query, fm.Depth+1)
}

func (n *Node) install(q Query, depth int) {
	n.seenQ[q.ID] = true
	if depth > q.MaxDepth {
		depth = q.MaxDepth
	}
	st := &queryState{q: q, depth: depth}
	n.queries[q.ID] = st
	n.scheduleEpoch(st)
}

// slotOffset returns when, within an epoch, this node transmits its
// merged PSR: deeper nodes earlier, so records cascade up one epoch.
func (st *queryState) slotOffset() time.Duration {
	frac := float64(st.q.MaxDepth-st.depth+1) / float64(st.q.MaxDepth+2)
	return time.Duration(float64(st.q.Epoch) * frac)
}

func (n *Node) scheduleEpoch(st *queryState) {
	epoch := st.q.Epoch
	now := n.k.Now()
	boundary := (now/epoch + 1) * epoch
	st.epochNo = uint32(boundary / epoch)
	at := boundary - epoch + st.slotOffset()
	if at <= now {
		at += epoch
		st.epochNo++
	}
	st.timer = n.k.At(at, func() { n.fireEpoch(st) })
}

func (n *Node) fireEpoch(st *queryState) {
	if _, live := n.queries[st.q.ID]; !live {
		return
	}
	// Fold in the local sample.
	if n.sampler != nil {
		if v, ok := n.sampler(st.q.Attr); ok {
			st.pending.merge(PSR{QueryID: st.q.ID, EpochNo: st.epochNo, Count: 1, Sum: v, Min: v, Max: v})
		}
	}
	if n.r.IsRoot() {
		if n.OnResult != nil && st.pending.Count > 0 {
			n.OnResult(Result{
				Query:   st.q,
				EpochNo: st.epochNo,
				Count:   st.pending.Count,
				Value:   st.q.value(st.pending),
			})
		}
	} else if st.pending.Count > 0 && !n.r.Partitioned() {
		st.pending.QueryID = st.q.ID
		st.pending.EpochNo = st.epochNo
		data, err := json.Marshal(st.pending)
		if err == nil {
			_ = n.r.SendTo(n.r.Parent(), ProtoAgg, data)
		}
	}
	st.pending = PSR{}
	n.scheduleEpoch(st)
}

func (n *Node) onPSR(src radio.NodeID, payload []byte) {
	var p PSR
	if err := json.Unmarshal(payload, &p); err != nil {
		return
	}
	st, ok := n.queries[p.QueryID]
	if !ok {
		return
	}
	// Accept records for the epoch we are currently accumulating; late
	// ones are folded forward rather than lost (TAG tolerates this
	// smearing; exactness is traded for load).
	if p.EpochNo < st.epochNo {
		n.LateRecords++
	}
	st.pending.merge(p)
}
