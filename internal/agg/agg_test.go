package agg

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/link"
	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
)

func TestPSRMergeCombinesAggregates(t *testing.T) {
	a := PSR{Count: 2, Sum: 10, Min: 3, Max: 7}
	b := PSR{Count: 1, Sum: 9, Min: 9, Max: 9}
	a.merge(b)
	if a.Count != 3 || a.Sum != 19 || a.Min != 3 || a.Max != 9 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestPSRMergeWithEmpty(t *testing.T) {
	a := PSR{}
	b := PSR{Count: 1, Sum: 5, Min: 5, Max: 5}
	a.merge(b)
	if a != b {
		t.Fatalf("empty.merge(x) = %+v, want %+v", a, b)
	}
	b.merge(PSR{})
	if b.Count != 1 {
		t.Fatal("merging empty changed state")
	}
}

func TestPSRMergeCommutativeAssociative(t *testing.T) {
	f := func(c1, c2, c3 uint8, s1, s2, s3 float64) bool {
		if math.IsNaN(s1) || math.IsNaN(s2) || math.IsNaN(s3) {
			return true
		}
		// Keep sums in a physical sensor range: float64 addition is not
		// associative near overflow, and no transducer reads 1e308.
		s1, s2, s3 = math.Mod(s1, 1e6), math.Mod(s2, 1e6), math.Mod(s3, 1e6)
		mk := func(c uint8, s float64) PSR {
			if c == 0 {
				return PSR{}
			}
			return PSR{Count: uint32(c), Sum: s, Min: s, Max: s}
		}
		a, b, c := mk(c1, s1), mk(c2, s2), mk(c3, s3)
		eq := func(x, y PSR) bool {
			return x.Count == y.Count && x.Min == y.Min && x.Max == y.Max &&
				math.Abs(x.Sum-y.Sum) <= 1e-6*(1+math.Abs(x.Sum))
		}
		ab := a
		ab.merge(b)
		ba := b
		ba.merge(a)
		if !eq(ab, ba) {
			return false
		}
		abc1 := ab
		abc1.merge(c)
		bc := b
		bc.merge(c)
		abc2 := a
		abc2.merge(bc)
		return eq(abc1, abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryValue(t *testing.T) {
	p := PSR{Count: 4, Sum: 20, Min: 2, Max: 9}
	cases := map[Func]float64{Count: 4, Sum: 20, Min: 2, Max: 9, Avg: 5}
	for fn, want := range cases {
		q := Query{Fn: fn}
		if got := q.value(p); got != want {
			t.Errorf("%v = %v, want %v", fn, got, want)
		}
	}
	if !math.IsNaN((Query{Fn: Avg}).value(PSR{})) {
		t.Fatal("AVG of empty PSR should be NaN")
	}
}

func TestFuncString(t *testing.T) {
	for fn, want := range map[Func]string{Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX", Avg: "AVG"} {
		if fn.String() != want {
			t.Errorf("%d = %q", fn, fn.String())
		}
	}
}

func TestSlotOffsetOrdering(t *testing.T) {
	q := Query{Epoch: 10 * time.Second, MaxDepth: 8}
	prev := time.Duration(-1)
	// Deeper nodes must transmit earlier within the epoch so partial
	// records cascade upward in one epoch.
	for depth := q.MaxDepth; depth >= 0; depth-- {
		st := &queryState{q: q, depth: depth}
		off := st.slotOffset()
		if off <= prev {
			t.Fatalf("slot offsets not increasing toward the root: depth=%d off=%v prev=%v", depth, off, prev)
		}
		if off <= 0 || off >= q.Epoch {
			t.Fatalf("offset %v outside epoch", off)
		}
		prev = off
	}
}

// buildAggNet creates an n-node line with routers and agg services.
func buildAggNet(t *testing.T, n int) (*sim.Kernel, []*Node, []*rpl.Router) {
	t.Helper()
	k := sim.New(77)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	macs := make([]*mac.CSMA, n)
	nodes := make([]*Node, n)
	routers := make([]*rpl.Router, n)
	for i := 0; i < n; i++ {
		id := radio.NodeID(i)
		idx := i
		m.Attach(id, radio.Position{X: float64(i) * 15}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = mac.NewCSMA(m, id, mac.CSMAConfig{})
		macs[i].Start()
		lnk := link.New(id, macs[i])
		routers[i] = rpl.NewRouter(k, lnk, i == 0, 0, rpl.Config{
			Trickle:             rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 4, K: 3},
			DAOInterval:         5 * time.Second,
			ParentProbeInterval: 5 * time.Second,
		}, nil)
		val := 10 + float64(i)
		nodes[i] = NewNode(k, routers[i], lnk, func(attr string) (float64, bool) {
			return val, attr == "temp"
		})
		routers[i].Start()
	}
	return k, nodes, routers
}

func TestQueryDisseminationAndResults(t *testing.T) {
	k, nodes, _ := buildAggNet(t, 5)
	k.RunUntil(30 * time.Second)
	var results []Result
	nodes[0].OnResult = func(r Result) { results = append(results, r) }
	nodes[0].RunQuery(Query{ID: 3, Fn: Sum, Attr: "temp", Epoch: 10 * time.Second, MaxDepth: 6})
	k.RunFor(90 * time.Second)
	if len(results) < 5 {
		t.Fatalf("results = %d epochs", len(results))
	}
	// Sum over all 5 nodes (root samples too): 10+11+12+13+14 = 60.
	// TAG smears: a straggling record may miss its epoch and fold into
	// the next (which then over-counts), so require the exact result in
	// the majority of epochs rather than in every one.
	exact := 0
	for _, r := range results {
		if r.Count == 5 && r.Value == 60 {
			exact++
		}
	}
	if exact*2 < len(results) {
		t.Fatalf("only %d/%d epochs produced the exact aggregate", exact, len(results))
	}
}

func TestStopQueryHaltsResults(t *testing.T) {
	k, nodes, _ := buildAggNet(t, 3)
	k.RunUntil(20 * time.Second)
	count := 0
	nodes[0].OnResult = func(Result) { count++ }
	nodes[0].RunQuery(Query{ID: 4, Fn: Count, Attr: "temp", Epoch: 5 * time.Second, MaxDepth: 4})
	k.RunFor(20 * time.Second)
	got := count
	if got == 0 {
		t.Fatal("no results before stop")
	}
	nodes[0].StopQuery(4)
	k.RunFor(30 * time.Second)
	if count != got {
		t.Fatalf("results continued after StopQuery: %d -> %d", got, count)
	}
}

func TestRunQueryValidation(t *testing.T) {
	k, nodes, _ := buildAggNet(t, 2)
	_ = k
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-root RunQuery")
		}
	}()
	nodes[1].RunQuery(Query{ID: 9, Fn: Avg, Attr: "x", Epoch: time.Second})
}

func TestRunQueryZeroEpochPanics(t *testing.T) {
	_, nodes, _ := buildAggNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero epoch")
		}
	}()
	nodes[0].RunQuery(Query{ID: 9, Fn: Avg, Attr: "x"})
}

func TestLateRecordsFoldForward(t *testing.T) {
	// Two-node net where the link degrades mid-run: late PSRs are not
	// lost, they fold into the next epoch (TAG smearing).
	k, nodes, routers := buildAggNet(t, 2)
	_ = routers
	k.RunUntil(20 * time.Second)
	var total uint32
	nodes[0].OnResult = func(r Result) { total += r.Count }
	nodes[0].RunQuery(Query{ID: 5, Fn: Count, Attr: "temp", Epoch: 5 * time.Second, MaxDepth: 3})
	k.RunFor(60 * time.Second)
	if total == 0 {
		t.Fatal("no records collected")
	}
}
