// Package hvac is the paper's §V-B worked example: HVAC control in an
// office building with two competing requirements — occupant comfort and
// energy savings — where soft safety margins vary with occupancy and may
// be deliberately violated to save energy.
//
// Substitution (DESIGN.md): real buildings are replaced by a first-order
// RC thermal zone model with stochastic occupancy; this preserves the
// comfort-vs-energy trade-off structure the section reasons about.
package hvac

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Zone is a first-order thermal model of one conditioned space:
// dT/dt = (outside-T)/tau + u*heatRate + noise.
type Zone struct {
	// TempC is the current air temperature.
	TempC float64
	// TimeConstant tau: how fast the zone drifts toward outside
	// (default 4 h).
	TimeConstant time.Duration
	// HeatRate is the temperature slew at full actuation, °C/hour
	// (default 5, sized so the plant can hold the setpoint against the
	// design-day cold snap; cooling is the negative direction).
	HeatRate float64
	// MaxPowerW is electrical power at full actuation (default 2500 W).
	MaxPowerW float64
}

// DefaultZone returns a typical office zone starting at startC.
func DefaultZone(startC float64) *Zone {
	return &Zone{
		TempC:        startC,
		TimeConstant: 4 * time.Hour,
		HeatRate:     5,
		MaxPowerW:    2500,
	}
}

// Step advances the zone by dt under actuation u in [-1,1] (negative =
// cooling) with the given outside temperature; it returns the energy
// consumed in joules. noise perturbs the temperature (door openings,
// solar gain) and comes from the caller's RNG for determinism.
func (z *Zone) Step(dt time.Duration, u, outsideC, noise float64) (joules float64) {
	if u > 1 {
		u = 1
	}
	if u < -1 {
		u = -1
	}
	h := dt.Hours()
	leak := (outsideC - z.TempC) * (1 - math.Exp(-float64(dt)/float64(z.TimeConstant)))
	z.TempC += leak + u*z.HeatRate*h + noise
	return math.Abs(u) * z.MaxPowerW * dt.Seconds()
}

// Weather is a simple diurnal outside-temperature model.
type Weather struct {
	// MeanC and SwingC describe the sinusoid; coldest at 04:00.
	MeanC  float64
	SwingC float64
}

// OutsideC returns the outside temperature at time-of-day t.
func (w Weather) OutsideC(t time.Duration) float64 {
	dayFrac := math.Mod(t.Hours(), 24) / 24
	return w.MeanC + w.SwingC*math.Sin(2*math.Pi*(dayFrac-4.0/24-0.25))
}

// Occupancy is a weekday office schedule with stochastic arrival and
// departure jitter per day.
type Occupancy struct {
	// ArriveHour and LeaveHour bound the nominal occupied window.
	ArriveHour, LeaveHour float64
	// JitterHour randomizes daily arrival/departure.
	JitterHour float64

	day     int
	arrive  float64
	leave   float64
	rng     *rand.Rand
	started bool
}

// NewOccupancy returns a 9-to-17 office schedule with ±30 min jitter.
func NewOccupancy(rng *rand.Rand) *Occupancy {
	return &Occupancy{ArriveHour: 9, LeaveHour: 17, JitterHour: 0.5, rng: rng}
}

// Occupied reports whether the space is occupied at absolute time t.
func (o *Occupancy) Occupied(t time.Duration) bool {
	day := int(t.Hours() / 24)
	if !o.started || day != o.day {
		o.day = day
		o.started = true
		o.arrive = o.ArriveHour + (o.rng.Float64()*2-1)*o.JitterHour
		o.leave = o.LeaveHour + (o.rng.Float64()*2-1)*o.JitterHour
	}
	hod := math.Mod(t.Hours(), 24)
	return hod >= o.arrive && hod < o.leave
}

// NextArrival returns the next scheduled (nominal) arrival after t — what
// a predictive controller can know from the calendar.
func (o *Occupancy) NextArrival(t time.Duration) time.Duration {
	day := math.Floor(t.Hours() / 24)
	candidate := time.Duration((day*24 + o.ArriveHour) * float64(time.Hour))
	if candidate <= t {
		candidate = time.Duration(((day+1)*24 + o.ArriveHour) * float64(time.Hour))
	}
	return candidate
}

// Controller decides actuation from what a real controller could see.
type Controller interface {
	Name() string
	// Control returns u in [-1,1].
	Control(tempC float64, occupied bool, t time.Duration, occ *Occupancy) float64
}

// Setpoint is the shared comfort setpoint.
const Setpoint = 22.0

// StrictController holds a tight band around the setpoint at all times —
// maximal comfort, maximal energy.
type StrictController struct{}

// Name implements Controller.
func (StrictController) Name() string { return "strict" }

// Control implements Controller: bang-bang with ±0.5 °C hysteresis.
func (StrictController) Control(tempC float64, _ bool, _ time.Duration, _ *Occupancy) float64 {
	switch {
	case tempC < Setpoint-0.5:
		return 1
	case tempC > Setpoint+0.5:
		return -1
	default:
		return 0
	}
}

// EconomicController widens the deadband and applies a fixed night
// setback — saves energy but violates comfort around occupancy edges.
type EconomicController struct{}

// Name implements Controller.
func (EconomicController) Name() string { return "economic" }

// Control implements Controller.
func (EconomicController) Control(tempC float64, _ bool, t time.Duration, _ *Occupancy) float64 {
	set := Setpoint
	hod := math.Mod(t.Hours(), 24)
	if hod < 7 || hod >= 19 {
		set = Setpoint - 4 // night setback
	}
	switch {
	case tempC < set-1.5:
		return 1
	case tempC > set+1.5:
		return -1
	default:
		return 0
	}
}

// OccupancyAwareController relaxes entirely while the space is empty and
// pre-conditions ahead of the calendar's next arrival — the §V-B idea of
// margins that depend on who occupies a space when.
type OccupancyAwareController struct {
	// Preheat is how far ahead of scheduled arrival conditioning
	// starts (default 90 min).
	Preheat time.Duration
}

// Name implements Controller.
func (OccupancyAwareController) Name() string { return "occupancy" }

// Control implements Controller.
func (c OccupancyAwareController) Control(tempC float64, occupied bool, t time.Duration, occ *Occupancy) float64 {
	preheat := c.Preheat
	if preheat == 0 {
		preheat = 90 * time.Minute
	}
	active := occupied
	if !active && occ != nil {
		next := occ.NextArrival(t)
		active = next-t <= preheat
	}
	if !active {
		// Unoccupied: only guard the hard physical limits.
		switch {
		case tempC < 12:
			return 1
		case tempC > 32:
			return -1
		default:
			return 0
		}
	}
	switch {
	case tempC < Setpoint-0.5:
		return 1
	case tempC > Setpoint+0.5:
		return -1
	default:
		return 0
	}
}

// Controllers returns the three policies compared in E8.
func Controllers() []Controller {
	return []Controller{
		StrictController{},
		EconomicController{},
		OccupancyAwareController{},
	}
}

// Result summarizes one simulated run.
type Result struct {
	Controller string
	EnergyKWh  float64
	// ComfortViolationMin is occupied time outside the ±1 °C comfort
	// band, in minutes.
	ComfortViolationMin float64
	// SeverityDegMin integrates degrees-outside-band over occupied
	// minutes.
	SeverityDegMin float64
	// MinC and MaxC are the temperature extremes reached.
	MinC, MaxC float64
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-10s energy=%6.1f kWh  comfort-viol=%6.0f min  severity=%7.0f °C·min  range=[%.1f,%.1f]°C",
		r.Controller, r.EnergyKWh, r.ComfortViolationMin, r.SeverityDegMin, r.MinC, r.MaxC)
}

// SimConfig configures a run of Simulate.
type SimConfig struct {
	Days    int
	StepDur time.Duration
	Weather Weather
	Seed    int64
	// NoiseC is the per-step temperature disturbance amplitude.
	NoiseC float64
}

// DefaultSimConfig returns a one-week simulation.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Days:    7,
		StepDur: time.Minute,
		Weather: Weather{MeanC: 12, SwingC: 6},
		Seed:    1,
		NoiseC:  0.02,
	}
}

// Simulate runs controller c over the configured horizon and returns its
// result. The same seed gives every controller identical weather,
// occupancy, and disturbances — a paired comparison.
func Simulate(c Controller, cfg SimConfig) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	occ := NewOccupancy(rand.New(rand.NewSource(cfg.Seed + 1)))
	zone := DefaultZone(18)
	res := Result{Controller: c.Name(), MinC: zone.TempC, MaxC: zone.TempC}
	var joules float64
	horizon := time.Duration(cfg.Days) * 24 * time.Hour
	for t := time.Duration(0); t < horizon; t += cfg.StepDur {
		occupied := occ.Occupied(t)
		u := c.Control(zone.TempC, occupied, t, occ)
		noise := (rng.Float64()*2 - 1) * cfg.NoiseC
		joules += zone.Step(cfg.StepDur, u, cfg.Weather.OutsideC(t), noise)
		if zone.TempC < res.MinC {
			res.MinC = zone.TempC
		}
		if zone.TempC > res.MaxC {
			res.MaxC = zone.TempC
		}
		if occupied {
			dist := 0.0
			if zone.TempC < Setpoint-1 {
				dist = (Setpoint - 1) - zone.TempC
			} else if zone.TempC > Setpoint+1 {
				dist = zone.TempC - (Setpoint + 1)
			}
			if dist > 0 {
				res.ComfortViolationMin += cfg.StepDur.Minutes()
				res.SeverityDegMin += dist * cfg.StepDur.Minutes()
			}
		}
	}
	res.EnergyKWh = joules / 3.6e6
	return res
}
