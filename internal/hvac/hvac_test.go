package hvac

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestZoneDriftsTowardOutside(t *testing.T) {
	z := DefaultZone(22)
	for i := 0; i < 240; i++ { // 4 hours unpowered, outside 10 °C
		z.Step(time.Minute, 0, 10, 0)
	}
	// After one time constant, ~63% of the gap closes: 22→~14.4.
	if z.TempC > 15.5 || z.TempC < 13.5 {
		t.Fatalf("temp after 1 tau = %v, want ≈14.4", z.TempC)
	}
}

func TestZoneHeatingRaisesTemp(t *testing.T) {
	z := DefaultZone(18)
	var joules float64
	for i := 0; i < 60; i++ {
		joules += z.Step(time.Minute, 1, 18, 0) // outside = inside: no leak
	}
	// Pure heating would give 23 °C; leak back toward the 18 °C outside
	// air as the zone warms trims that slightly.
	if z.TempC < 22 || z.TempC > 23.5 {
		t.Fatalf("temp after 1 h full heat = %v, want ≈22.5", z.TempC)
	}
	if math.Abs(joules-2500*3600) > 1 {
		t.Fatalf("energy = %v J, want 9 MJ", joules)
	}
}

func TestZoneCoolingAndClamping(t *testing.T) {
	z := DefaultZone(30)
	z.Step(time.Hour, -5, 30, 0) // u clamped to -1
	if z.TempC > 25.5 || z.TempC < 24.5 {
		t.Fatalf("temp after 1 h cooling = %v, want ≈25", z.TempC)
	}
}

func TestWeatherDiurnalCycle(t *testing.T) {
	w := Weather{MeanC: 12, SwingC: 6}
	coldest := w.OutsideC(4 * time.Hour)
	warmest := w.OutsideC(16 * time.Hour)
	if coldest > 7 || warmest < 17 {
		t.Fatalf("diurnal cycle wrong: 4h=%v 16h=%v", coldest, warmest)
	}
	// 24h periodicity.
	if math.Abs(w.OutsideC(30*time.Hour)-w.OutsideC(6*time.Hour)) > 1e-9 {
		t.Fatal("weather not 24h periodic")
	}
}

func TestOccupancySchedule(t *testing.T) {
	occ := NewOccupancy(rand.New(rand.NewSource(2)))
	if occ.Occupied(3 * time.Hour) {
		t.Fatal("occupied at 03:00")
	}
	if !occ.Occupied(12 * time.Hour) {
		t.Fatal("not occupied at noon")
	}
	if occ.Occupied(22 * time.Hour) {
		t.Fatal("occupied at 22:00")
	}
	// Next arrival from evening is next day's morning.
	next := occ.NextArrival(20 * time.Hour)
	if next != 33*time.Hour { // 24 + 9
		t.Fatalf("NextArrival = %v, want 33h", next)
	}
	if got := occ.NextArrival(2 * time.Hour); got != 9*time.Hour {
		t.Fatalf("NextArrival = %v, want 9h", got)
	}
}

func TestControllersBehaveAtExtremes(t *testing.T) {
	for _, c := range Controllers() {
		if u := c.Control(10, true, 12*time.Hour, nil); u != 1 {
			t.Errorf("%s: cold occupied → u=%v, want 1", c.Name(), u)
		}
		if u := c.Control(35, true, 12*time.Hour, nil); u != -1 {
			t.Errorf("%s: hot occupied → u=%v, want -1", c.Name(), u)
		}
	}
}

func TestOccupancyAwareRelaxesWhenEmpty(t *testing.T) {
	c := OccupancyAwareController{}
	occ := NewOccupancy(rand.New(rand.NewSource(3)))
	// 1 AM, 16 °C, empty, next arrival 8 hours away: no heating.
	if u := c.Control(16, false, 1*time.Hour, occ); u != 0 {
		t.Fatalf("unoccupied u = %v, want 0", u)
	}
	// 8 AM (within 90 min preheat of 9 AM): heats.
	if u := c.Control(16, false, 8*time.Hour, occ); u != 1 {
		t.Fatalf("preheat u = %v, want 1", u)
	}
	// Hard limit still guarded when empty.
	if u := c.Control(11, false, 1*time.Hour, occ); u != 1 {
		t.Fatalf("hard-low u = %v, want 1", u)
	}
}

func TestSimulateParetoOrdering(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Days = 3
	var results []Result
	for _, c := range Controllers() {
		results = append(results, Simulate(c, cfg))
	}
	strict, economic, occupancy := results[0], results[1], results[2]
	// The §V-B shape: strict burns the most energy with near-zero
	// violations; occupancy-aware saves energy at modest comfort cost;
	// both must beat strict on energy.
	if !(occupancy.EnergyKWh < strict.EnergyKWh) {
		t.Fatalf("occupancy (%v kWh) not cheaper than strict (%v kWh)",
			occupancy.EnergyKWh, strict.EnergyKWh)
	}
	if !(economic.EnergyKWh < strict.EnergyKWh) {
		t.Fatalf("economic (%v kWh) not cheaper than strict (%v kWh)",
			economic.EnergyKWh, strict.EnergyKWh)
	}
	if strict.ComfortViolationMin > 60 {
		t.Fatalf("strict controller violated comfort for %v min", strict.ComfortViolationMin)
	}
	// Occupancy-aware must dominate economic on comfort (it preheats).
	if occupancy.ComfortViolationMin > economic.ComfortViolationMin {
		t.Fatalf("occupancy viol (%v) worse than economic (%v)",
			occupancy.ComfortViolationMin, economic.ComfortViolationMin)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Days = 1
	a := Simulate(StrictController{}, cfg)
	b := Simulate(StrictController{}, cfg)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Controller: "x", EnergyKWh: 1.5}
	if len(r.String()) == 0 {
		t.Fatal("empty String()")
	}
}
