package fault

import (
	"testing"
	"time"

	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

type fakeTarget struct {
	crashed   map[radio.NodeID]bool
	recovered map[radio.NodeID]bool
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{crashed: map[radio.NodeID]bool{}, recovered: map[radio.NodeID]bool{}}
}

func (f *fakeTarget) Crash(id radio.NodeID)   { f.crashed[id] = true }
func (f *fakeTarget) Recover(id radio.NodeID) { f.recovered[id] = true }

func setup(t *testing.T) (*sim.Kernel, *radio.Medium, *fakeTarget, *Ledger, *Injector, []*int) {
	t.Helper()
	k := sim.New(1)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	rx := make([]*int, 4)
	for i := 0; i < 4; i++ {
		n := new(int)
		rx[i] = n
		m.Attach(radio.NodeID(i), radio.Position{X: float64(i) * 5}, radio.ReceiverFunc(func(radio.Frame) { *n++ }))
		m.SetListening(radio.NodeID(i), true)
	}
	tgt := newFakeTarget()
	ledger := NewLedger(0)
	return k, m, tgt, ledger, NewInjector(k, m, tgt, ledger), rx
}

func TestCrashAndRecover(t *testing.T) {
	k, m, tgt, ledger, inj, _ := setup(t)
	inj.CrashAt(10*time.Second, 2)
	inj.RecoverAt(30*time.Second, 2)
	k.RunUntil(20 * time.Second)
	if !tgt.crashed[2] || !m.Down(2) {
		t.Fatal("crash not applied")
	}
	k.RunUntil(40 * time.Second)
	if !tgt.recovered[2] || m.Down(2) {
		t.Fatal("recovery not applied")
	}
	s := ledger.StatsOf("node-2", 40*time.Second)
	if s.Failures != 1 || s.Repairs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Up 0-10s and 30-40s over one failure: MTTF = 20s of accumulated
	// up time per failure; down 10-30s over one repair: MTTR = 20s.
	if s.MTTF != 20*time.Second || s.MTTR != 20*time.Second {
		t.Fatalf("MTTF=%v MTTR=%v", s.MTTF, s.MTTR)
	}
	// Availability: up 10s + 10s of 40s = 0.5.
	if s.Availability != 0.5 {
		t.Fatalf("availability = %v", s.Availability)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	k, m, _, _, inj, rx := setup(t)
	inj.PartitionAt(time.Second, []radio.NodeID{0, 1}, []radio.NodeID{2, 3})
	inj.HealAt(time.Minute)
	k.RunUntil(2 * time.Second)
	if !inj.Partitioned() {
		t.Fatal("partition not installed")
	}
	// Under the partition node 1 (same group) hears node 0, node 2
	// (other group) does not. Frames are spaced so node 0's single
	// radio does not collide with itself.
	m.Send(radio.Frame{From: 0, To: 1, Size: 10})
	k.At(2500*time.Millisecond, func() { m.Send(radio.Frame{From: 0, To: 2, Size: 10}) })
	k.RunUntil(3 * time.Second)
	if *rx[1] != 2 { // promiscuous: hears both transmissions
		t.Fatalf("node 1 heard %d frames under partition, want 2", *rx[1])
	}
	if *rx[2] != 0 {
		t.Fatalf("node 2 heard %d frames across partition, want 0", *rx[2])
	}
	k.RunUntil(2 * time.Minute)
	if inj.Partitioned() {
		t.Fatal("heal not applied")
	}
	m.Send(radio.Frame{From: 0, To: 2, Size: 10})
	k.Run()
	if *rx[2] != 1 {
		t.Fatalf("node 2 heard %d frames after heal, want 1", *rx[2])
	}
}

func TestDegradeAndRestoreLink(t *testing.T) {
	k, m, _, _, inj, _ := setup(t)
	inj.DegradeLinkAt(time.Second, 0, 1, 0)
	inj.RestoreLinkAt(time.Minute, 0, 1)
	k.RunUntil(2 * time.Second)
	if m.PRR(0, 1) != 0 || m.PRR(1, 0) != 0 {
		t.Fatal("degradation not applied")
	}
	k.RunUntil(2 * time.Minute)
	if m.PRR(0, 1) != 1 {
		t.Fatalf("PRR after restore = %v", m.PRR(0, 1))
	}
}

func TestLedgerDoubleEventsIgnored(t *testing.T) {
	l := NewLedger(0)
	l.RecordFailure("x", 10*time.Second)
	l.RecordFailure("x", 12*time.Second) // already down
	l.RecordRepair("x", 20*time.Second)
	l.RecordRepair("x", 22*time.Second) // already up
	s := l.StatsOf("x", 30*time.Second)
	if s.Failures != 1 || s.Repairs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MTTF != 20*time.Second { // up 0-10 and 20-30
		t.Fatalf("MTTF = %v", s.MTTF)
	}
}

func TestLedgerNeverFailedComponent(t *testing.T) {
	l := NewLedger(0)
	s := l.StatsOf("ghost", time.Hour)
	if s.Availability != 1 || s.Failures != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLedgerStillDownComponent(t *testing.T) {
	l := NewLedger(0)
	l.RecordFailure("x", 10*time.Second)
	s := l.StatsOf("x", 40*time.Second)
	if s.Availability != 0.25 {
		t.Fatalf("availability = %v, want 0.25", s.Availability)
	}
	if s.MTTR != 30*time.Second {
		t.Fatalf("MTTR = %v", s.MTTR)
	}
}

func TestSystemAvailability(t *testing.T) {
	l := NewLedger(0)
	l.RecordFailure("a", 0)
	l.RecordRepair("a", 50*time.Second) // a: 50% over 100s
	l.RecordFailure("b", 75*time.Second)
	l.RecordRepair("b", 100*time.Second) // b: 75%
	got := l.SystemAvailability(100 * time.Second)
	if got < 0.624 || got > 0.626 {
		t.Fatalf("system availability = %v, want 0.625", got)
	}
	if names := l.Components(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("Components = %v", names)
	}
}
