package fault

import (
	"math/rand"
	"time"

	"iiotds/internal/radio"
)

// This file is the churn engine: generator processes that drive an
// Injector from the simulation kernel with a sustained, reproducible
// fault load — exponential crash/recover churn over a node subset, link
// flapping, Gilbert–Elliott burst-loss degradation, and periodic
// partition/heal storms. Every stochastic choice is drawn from one
// per-engine rand.Rand seeded at construction, and every draw happens
// inside a kernel callback, so a given (config, seed) pair produces
// exactly one schedule: the E14 soak is byte-identical run-to-run and at
// any trial-runner parallelism (DESIGN.md §5).

// GELink puts one link pair under Gilbert–Elliott burst-loss modulation:
// a two-state Markov chain steps every ChurnConfig.GEStep; in the Good
// state the link delivers at GoodPRR, in the Bad state at BadPRR. Bursts
// of loss (mean length GEStep/PBadGood) are what distinguishes this from
// the medium's independent per-frame loss.
type GELink struct {
	A, B radio.NodeID
	// PGoodBad and PBadGood are the per-step transition probabilities.
	PGoodBad, PBadGood float64
	// GoodPRR (default 1) and BadPRR are the delivery ratios installed
	// in each state.
	GoodPRR, BadPRR float64
}

// ChurnConfig parameterizes a churn schedule. Zero-valued sections
// disable their generator: MeanUp == 0 disables crash/recover churn,
// MeanFlap == 0 disables flapping, GEStep == 0 disables burst loss, and
// MeanPartition == 0 disables partition storms.
type ChurnConfig struct {
	// Nodes is the crash/recover candidate subset. List only nodes the
	// experiment may lose — never the border router if the DODAG must
	// survive the soak.
	Nodes []radio.NodeID
	// A node stays up for MinUp plus an exponential draw of mean MeanUp,
	// then crashes; it stays down for MinDown plus an exponential draw
	// of mean MeanDown, then recovers. The floors model the reality that
	// devices neither fail nor reboot instantaneously, and they bound
	// how quickly a just-recovered node can be re-crashed — which is
	// what gives the DODAG time to re-admit it.
	MeanUp, MinUp     time.Duration
	MeanDown, MinDown time.Duration

	// FlapLinks flap between full delivery and FlapPRR, toggling after
	// exponential holds of mean MeanFlap.
	FlapLinks [][2]radio.NodeID
	MeanFlap  time.Duration
	FlapPRR   float64

	// GELinks are modulated by per-link Gilbert–Elliott chains stepped
	// every GEStep.
	GELinks []GELink
	GEStep  time.Duration

	// Partition storms: after exponential gaps of mean MeanPartition,
	// Groups is installed for PartitionHold, then healed.
	MeanPartition time.Duration
	PartitionHold time.Duration
	Groups        [][]radio.NodeID
}

// Churn drives an Injector with the generated fault schedule. Like the
// injector's mutating methods, Start, Stop, and the accessors must run
// on the kernel goroutine (between kernel runs or inside callbacks).
type Churn struct {
	inj *Injector
	k   Sched
	rng *rand.Rand
	cfg ChurnConfig

	started bool
	stopped bool
	down    map[radio.NodeID]bool

	crashes     int
	recoveries  int
	flapDown    []bool
	geBad       []bool
	partitioned bool

	// OnCrash and OnRecover, when set, observe the schedule as it is
	// applied (after the injector acted) — e.g. E14 arms its rejoin
	// probe from OnRecover.
	OnCrash   func(id radio.NodeID)
	OnRecover func(id radio.NodeID)
}

// NewChurn creates a churn engine over inj, drawing its schedule from a
// dedicated generator seeded with seed (independent of the kernel's own
// RNG, so the fault schedule does not shift when protocol randomness
// changes).
func NewChurn(inj *Injector, seed int64, cfg ChurnConfig) *Churn {
	for i := range cfg.GELinks {
		if cfg.GELinks[i].GoodPRR == 0 {
			cfg.GELinks[i].GoodPRR = 1
		}
	}
	return &Churn{
		inj:      inj,
		k:        inj.k,
		rng:      rand.New(rand.NewSource(seed)),
		cfg:      cfg,
		down:     make(map[radio.NodeID]bool),
		flapDown: make([]bool, len(cfg.FlapLinks)),
		geBad:    make([]bool, len(cfg.GELinks)),
	}
}

// expDur draws an exponential duration of the given mean.
func (c *Churn) expDur(mean time.Duration) time.Duration {
	return time.Duration(c.rng.ExpFloat64() * float64(mean))
}

// Start launches the generator processes. Idempotent.
func (c *Churn) Start() {
	if c.started {
		return
	}
	c.started = true
	c.stopped = false
	if c.cfg.MeanUp > 0 {
		for _, id := range c.cfg.Nodes {
			c.armCrash(id)
		}
	}
	if c.cfg.MeanFlap > 0 {
		for i := range c.cfg.FlapLinks {
			c.armFlap(i)
		}
	}
	if c.cfg.GEStep > 0 && len(c.cfg.GELinks) > 0 {
		c.k.Schedule(c.cfg.GEStep, c.geStep)
	}
	if c.cfg.MeanPartition > 0 && len(c.cfg.Groups) > 0 {
		c.armPartition()
	}
}

// Stop quiesces the engine: no new crashes, flaps, chain steps, or
// storms are generated; link overrides are restored and an active
// partition is healed. Recoveries already owed to crashed nodes still
// fire — a soak's drain phase ends with every node back up.
func (c *Churn) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for i, l := range c.cfg.FlapLinks {
		if c.flapDown[i] {
			c.inj.RestoreLink(l[0], l[1])
			c.flapDown[i] = false
		}
	}
	for i, g := range c.cfg.GELinks {
		c.inj.RestoreLink(g.A, g.B)
		c.geBad[i] = false
	}
	if c.partitioned {
		c.inj.Heal()
		c.partitioned = false
	}
}

// Crashes returns the number of crashes injected so far.
func (c *Churn) Crashes() int { return c.crashes }

// Recoveries returns the number of completed crash→recover cycles.
func (c *Churn) Recoveries() int { return c.recoveries }

// Down reports whether the engine currently holds id crashed.
func (c *Churn) Down(id radio.NodeID) bool { return c.down[id] }

func (c *Churn) armCrash(id radio.NodeID) {
	delay := c.cfg.MinUp + c.expDur(c.cfg.MeanUp)
	c.k.Schedule(delay, func() {
		if c.stopped {
			return
		}
		c.down[id] = true
		c.crashes++
		c.inj.Crash(id)
		if c.OnCrash != nil {
			c.OnCrash(id)
		}
		c.armRecover(id)
	})
}

func (c *Churn) armRecover(id radio.NodeID) {
	delay := c.cfg.MinDown + c.expDur(c.cfg.MeanDown)
	c.k.Schedule(delay, func() {
		// Deliberately no stopped check before the recovery itself:
		// Stop never strands a node down.
		c.down[id] = false
		c.recoveries++
		c.inj.Recover(id)
		if c.OnRecover != nil {
			c.OnRecover(id)
		}
		if !c.stopped {
			c.armCrash(id)
		}
	})
}

func (c *Churn) armFlap(i int) {
	delay := c.expDur(c.cfg.MeanFlap)
	c.k.Schedule(delay, func() {
		if c.stopped {
			return
		}
		l := c.cfg.FlapLinks[i]
		if c.flapDown[i] {
			c.inj.RestoreLink(l[0], l[1])
		} else {
			c.inj.DegradeLink(l[0], l[1], c.cfg.FlapPRR)
		}
		c.flapDown[i] = !c.flapDown[i]
		c.armFlap(i)
	})
}

// geStep advances every Gilbert–Elliott chain one step. The loop order
// is fixed (config order), so the per-link draw sequence — and therefore
// the whole burst schedule — is deterministic.
func (c *Churn) geStep() {
	if c.stopped {
		return
	}
	for i := range c.cfg.GELinks {
		g := &c.cfg.GELinks[i]
		p := g.PGoodBad
		if c.geBad[i] {
			p = g.PBadGood
		}
		if c.rng.Float64() < p {
			c.geBad[i] = !c.geBad[i]
			prr := g.GoodPRR
			if c.geBad[i] {
				prr = g.BadPRR
			}
			c.inj.DegradeLink(g.A, g.B, prr)
		}
	}
	c.k.Schedule(c.cfg.GEStep, c.geStep)
}

func (c *Churn) armPartition() {
	gap := c.expDur(c.cfg.MeanPartition)
	c.k.Schedule(gap, func() {
		if c.stopped {
			return
		}
		c.partitioned = true
		c.inj.Partition(c.cfg.Groups...)
		c.k.Schedule(c.cfg.PartitionHold, func() {
			if !c.partitioned {
				return // Stop already healed
			}
			c.partitioned = false
			c.inj.Heal()
			if !c.stopped {
				c.armPartition()
			}
		})
	})
}
