// Package fault provides failure injection for the emulation — crashes,
// recoveries, network partitions, and link degradation on a schedule —
// plus the reliability ledger that turns injected faults into the §V-A
// metrics: MTTF, MTTR, and availability.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// Target is what the injector crashes and recovers: the deployment layer
// implements it by stopping/starting a node's full protocol stack.
type Target interface {
	Crash(id radio.NodeID)
	Recover(id radio.NodeID)
}

// Sched is the scheduling surface the injector and churn engine need: a
// virtual clock and one-shot callbacks. *sim.Kernel satisfies it for
// flat deployments; *sim.ShardGroup satisfies it for sharded ones, where
// fault callbacks run on the control timeline at group barriers — the
// only instants at which every stripe is quiescent and cross-stripe
// mutation is legal. Neither the injector nor churn ever cancels a
// returned event or draws from a kernel RNG, which is what makes the
// two implementations interchangeable.
type Sched interface {
	Now() sim.Time
	Schedule(d sim.Time, fn func()) sim.Event
	At(t sim.Time, fn func()) sim.Event
}

// MediumCtl is the radio-control surface the injector needs.
// *radio.Medium satisfies it for flat deployments; a sharded deployment
// implements it by fanning each operation to the owning stripe(s).
type MediumCtl interface {
	SetDown(id radio.NodeID, down bool)
	SetLinkFilter(f radio.LinkFilter)
	SetLinkPRR(from, to radio.NodeID, prr float64)
}

// Injector applies faults to a deployment, either immediately (Crash,
// Partition, ...) or on a schedule (CrashAt, PartitionAt, ...).
//
// Thread contract: every mutating method — the immediate operations and
// the callbacks the *At methods schedule — must run on the simulation
// kernel's goroutine (directly between kernel runs, or inside a kernel
// callback such as a Churn generator). That is what keeps injected fault
// sequences deterministic. The read-only Partitioned accessor is the one
// exception: it is guarded by a mutex so test goroutines may poll it
// while the kernel runs elsewhere.
type Injector struct {
	k      Sched
	m      MediumCtl
	target Target
	ledger *Ledger
	rec    *trace.Recorder

	mu          sync.Mutex // guards partitioned and groups (see above)
	partitioned bool
	groups      map[radio.NodeID]int
}

// NewInjector creates an injector. target may be nil if only link faults
// are used; ledger may be nil to skip accounting.
func NewInjector(k Sched, m MediumCtl, target Target, ledger *Ledger) *Injector {
	return &Injector{k: k, m: m, target: target, ledger: ledger}
}

// SetRecorder installs the flight recorder injected faults are traced
// into (FaultCrash/FaultRecover/FaultPartition/FaultHeal/FaultLink).
func (inj *Injector) SetRecorder(rec *trace.Recorder) { inj.rec = rec }

// Crash takes node id down immediately: the target's stack is stopped,
// the radio stops delivering to it, and the ledger records the failure.
func (inj *Injector) Crash(id radio.NodeID) {
	if inj.target != nil {
		inj.target.Crash(id)
	}
	inj.m.SetDown(id, true)
	if inj.ledger != nil {
		inj.ledger.RecordFailure(fmt.Sprintf("node-%d", id), inj.k.Now())
	}
	inj.rec.Emit(int32(id), trace.FaultCrash, 0, 0, 0, 0)
}

// Recover restarts a crashed node immediately.
func (inj *Injector) Recover(id radio.NodeID) {
	inj.m.SetDown(id, false)
	if inj.target != nil {
		inj.target.Recover(id)
	}
	if inj.ledger != nil {
		inj.ledger.RecordRepair(fmt.Sprintf("node-%d", id), inj.k.Now())
	}
	inj.rec.Emit(int32(id), trace.FaultRecover, 0, 0, 0, 0)
}

// CrashAt schedules a crash of node id at absolute time t.
func (inj *Injector) CrashAt(t time.Duration, id radio.NodeID) {
	inj.k.At(t, func() { inj.Crash(id) })
}

// RecoverAt schedules a recovery of node id at absolute time t.
func (inj *Injector) RecoverAt(t time.Duration, id radio.NodeID) {
	inj.k.At(t, func() { inj.Recover(id) })
}

// Partition splits the radio medium into groups immediately: frames only
// pass between nodes of the same group. Nodes not listed form group 0.
func (inj *Injector) Partition(groups ...[]radio.NodeID) {
	gm := make(map[radio.NodeID]int)
	for i, g := range groups {
		for _, id := range g {
			gm[id] = i + 1
		}
	}
	inj.mu.Lock()
	inj.groups = gm
	inj.partitioned = true
	inj.mu.Unlock()
	inj.m.SetLinkFilter(func(from, to radio.NodeID) bool {
		return gm[from] == gm[to]
	})
	inj.rec.Emit(-1, trace.FaultPartition, int64(len(groups)), 0, 0, 0)
}

// Heal removes the partition immediately.
func (inj *Injector) Heal() {
	inj.mu.Lock()
	inj.partitioned = false
	inj.mu.Unlock()
	inj.m.SetLinkFilter(nil)
	inj.rec.Emit(-1, trace.FaultHeal, 0, 0, 0, 0)
}

// PartitionAt schedules a partition into groups at time t.
func (inj *Injector) PartitionAt(t time.Duration, groups ...[]radio.NodeID) {
	inj.k.At(t, func() { inj.Partition(groups...) })
}

// HealAt removes the partition at time t.
func (inj *Injector) HealAt(t time.Duration) {
	inj.k.At(t, func() { inj.Heal() })
}

// Partitioned reports whether a partition is currently installed. Unlike
// the mutating methods it is safe to call from any goroutine.
func (inj *Injector) Partitioned() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.partitioned
}

// DegradeLink sets the link PRR between a and b immediately (both
// directions).
func (inj *Injector) DegradeLink(a, b radio.NodeID, prr float64) {
	inj.m.SetLinkPRR(a, b, prr)
	inj.m.SetLinkPRR(b, a, prr)
	inj.rec.Emit(int32(a), trace.FaultLink, int64(b), 0, prr, 0)
}

// RestoreLink removes PRR overrides for the pair immediately.
func (inj *Injector) RestoreLink(a, b radio.NodeID) {
	inj.m.SetLinkPRR(a, b, -1)
	inj.m.SetLinkPRR(b, a, -1)
	inj.rec.Emit(int32(a), trace.FaultLink, int64(b), 0, -1, 0)
}

// DegradeLinkAt sets the directed link PRR at time t (both directions).
func (inj *Injector) DegradeLinkAt(t time.Duration, a, b radio.NodeID, prr float64) {
	inj.k.At(t, func() { inj.DegradeLink(a, b, prr) })
}

// RestoreLinkAt removes PRR overrides for the pair at time t.
func (inj *Injector) RestoreLinkAt(t time.Duration, a, b radio.NodeID) {
	inj.k.At(t, func() { inj.RestoreLink(a, b) })
}

// --- reliability accounting ---

// componentState tracks one component's failure history.
type componentState struct {
	up        bool
	since     time.Duration // start of the current state
	upTotal   time.Duration
	downTotal time.Duration
	failures  int
	repairs   int
}

// Ledger computes MTTF/MTTR/availability from failure and repair events.
type Ledger struct {
	start      time.Duration
	components map[string]*componentState
}

// NewLedger starts accounting at time start (components are presumed up).
func NewLedger(start time.Duration) *Ledger {
	return &Ledger{start: start, components: make(map[string]*componentState)}
}

func (l *Ledger) get(name string) *componentState {
	c, ok := l.components[name]
	if !ok {
		c = &componentState{up: true, since: l.start}
		l.components[name] = c
	}
	return c
}

// RecordFailure marks the component down at time t.
func (l *Ledger) RecordFailure(name string, t time.Duration) {
	c := l.get(name)
	if !c.up {
		return
	}
	c.upTotal += t - c.since
	c.up = false
	c.since = t
	c.failures++
}

// RecordRepair marks the component up at time t.
func (l *Ledger) RecordRepair(name string, t time.Duration) {
	c := l.get(name)
	if c.up {
		return
	}
	c.downTotal += t - c.since
	c.up = true
	c.since = t
	c.repairs++
}

// Stats summarizes one component as of time now.
type Stats struct {
	Failures     int
	Repairs      int
	MTTF         time.Duration // mean up time between failures
	MTTR         time.Duration // mean down time
	Availability float64       // up / (up + down)
}

// StatsOf returns the component's statistics as of now.
//
// Edge semantics (pinned by TestLedgerStatsEdgeSemantics):
//
//   - An unknown component is perfectly available (Availability 1, zero
//     MTTF/MTTR): the ledger only learns of components through events.
//   - A component that never failed reports MTTF = its total uptime — a
//     censored observation (the true MTTF is at least that), which keeps
//     fleet-wide MTTF averages finite.
//   - A component that failed but was never repaired reports MTTR = its
//     total downtime so far (again censored); a never-failed component
//     reports MTTR = 0, not "unknown".
func (l *Ledger) StatsOf(name string, now time.Duration) Stats {
	c, ok := l.components[name]
	if !ok {
		return Stats{Availability: 1}
	}
	up, down := c.upTotal, c.downTotal
	if c.up {
		up += now - c.since
	} else {
		down += now - c.since
	}
	s := Stats{Failures: c.failures, Repairs: c.repairs}
	if c.failures > 0 {
		s.MTTF = up / time.Duration(c.failures)
	} else {
		s.MTTF = up
	}
	if c.repairs > 0 {
		s.MTTR = down / time.Duration(c.repairs)
	} else if c.failures > 0 && !c.up {
		s.MTTR = down
	}
	if up+down > 0 {
		s.Availability = float64(up) / float64(up+down)
	} else {
		s.Availability = 1
	}
	return s
}

// Components returns all tracked component names, sorted.
func (l *Ledger) Components() []string {
	out := make([]string, 0, len(l.components))
	for n := range l.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SystemAvailability averages availability over all components.
func (l *Ledger) SystemAvailability(now time.Duration) float64 {
	if len(l.components) == 0 {
		return 1
	}
	var sum float64
	for name := range l.components {
		sum += l.StatsOf(name, now).Availability
	}
	return sum / float64(len(l.components))
}
