package fault

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"iiotds/internal/radio"
)

// churnFixture runs a churn engine over the shared injector fixture and
// returns the applied schedule as "<time> <event> <node>" strings.
func churnFixture(t *testing.T, seed int64, cfg ChurnConfig, run time.Duration) ([]string, *Churn) {
	t.Helper()
	k, _, _, _, inj, _ := setup(t)
	churn := NewChurn(inj, seed, cfg)
	var events []string
	churn.OnCrash = func(id radio.NodeID) {
		events = append(events, fmt.Sprintf("%v crash %d", k.Now(), id))
	}
	churn.OnRecover = func(id radio.NodeID) {
		events = append(events, fmt.Sprintf("%v recover %d", k.Now(), id))
	}
	churn.Start()
	k.RunUntil(run)
	churn.Stop()
	k.Run() // drain: owed recoveries fire
	return events, churn
}

func testChurnCfg() ChurnConfig {
	return ChurnConfig{
		Nodes:  []radio.NodeID{1, 2, 3},
		MeanUp: 20 * time.Second, MinUp: 5 * time.Second,
		MeanDown: 5 * time.Second, MinDown: 2 * time.Second,
	}
}

func TestChurnScheduleDeterministic(t *testing.T) {
	a, _ := churnFixture(t, 7, testChurnCfg(), 5*time.Minute)
	b, _ := churnFixture(t, 7, testChurnCfg(), 5*time.Minute)
	if len(a) == 0 {
		t.Fatal("no churn events generated")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", a, b)
	}
	c, _ := churnFixture(t, 8, testChurnCfg(), 5*time.Minute)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical %d-event schedules", len(a))
	}
}

func TestChurnStopDrainsToAllUp(t *testing.T) {
	events, churn := churnFixture(t, 3, testChurnCfg(), 5*time.Minute)
	if churn.Crashes() == 0 {
		t.Fatal("no crashes injected")
	}
	// Every crash is paired with a recovery once the drain completes:
	// Stop never strands a node down.
	if churn.Crashes() != churn.Recoveries() {
		t.Fatalf("crashes %d != recoveries %d after drain", churn.Crashes(), churn.Recoveries())
	}
	for _, id := range []radio.NodeID{1, 2, 3} {
		if churn.Down(id) {
			t.Fatalf("node %d still down after Stop+drain", id)
		}
	}
	_ = events
}

func TestChurnRespectsFloors(t *testing.T) {
	k, _, _, _, inj, _ := setup(t)
	cfg := ChurnConfig{
		Nodes:  []radio.NodeID{1},
		MeanUp: time.Second, MinUp: 10 * time.Second,
		MeanDown: time.Second, MinDown: 4 * time.Second,
	}
	churn := NewChurn(inj, 1, cfg)
	var times []time.Duration
	var kinds []string
	churn.OnCrash = func(radio.NodeID) { times = append(times, k.Now()); kinds = append(kinds, "crash") }
	churn.OnRecover = func(radio.NodeID) { times = append(times, k.Now()); kinds = append(kinds, "recover") }
	churn.Start()
	k.RunUntil(3 * time.Minute)
	churn.Stop()
	k.Run()
	if len(times) < 4 {
		t.Fatalf("only %d events in 3 minutes", len(times))
	}
	prev := time.Duration(0)
	for i, at := range times {
		gap := at - prev
		floor := cfg.MinUp // gap before a crash is an up period
		if kinds[i] == "recover" {
			floor = cfg.MinDown
		}
		if gap < floor {
			t.Fatalf("event %d (%s) after %v, below floor %v", i, kinds[i], gap, floor)
		}
		prev = at
	}
}

func TestChurnLinkFaultsRestoredOnStop(t *testing.T) {
	k, m, _, _, inj, _ := setup(t)
	cfg := ChurnConfig{
		FlapLinks: [][2]radio.NodeID{{0, 1}},
		MeanFlap:  3 * time.Second,
		FlapPRR:   0.1,
		GELinks:   []GELink{{A: 2, B: 3, PGoodBad: 0.5, PBadGood: 0.2, BadPRR: 0.2}},
		GEStep:    time.Second,
	}
	churn := NewChurn(inj, 5, cfg)
	churn.Start()
	sawFlap, sawBurst := false, false
	k.Every(500*time.Millisecond, 0, func() {
		if m.PRR(0, 1) == 0.1 {
			sawFlap = true
		}
		if m.PRR(2, 3) == 0.2 {
			sawBurst = true
		}
	})
	k.RunUntil(2 * time.Minute)
	churn.Stop()
	if !sawFlap {
		t.Error("flap link never degraded")
	}
	if !sawBurst {
		t.Error("Gilbert–Elliott link never entered the bad state")
	}
	if got := m.PRR(0, 1); got != 1 {
		t.Errorf("flap link PRR after Stop = %v, want override removed", got)
	}
	if got := m.PRR(2, 3); got != 1 {
		t.Errorf("GE link PRR after Stop = %v, want override removed", got)
	}
}

func TestChurnPartitionStorm(t *testing.T) {
	k, _, _, _, inj, _ := setup(t)
	cfg := ChurnConfig{
		MeanPartition: 10 * time.Second,
		PartitionHold: 5 * time.Second,
		Groups:        [][]radio.NodeID{{2, 3}},
	}
	churn := NewChurn(inj, 9, cfg)
	churn.Start()
	sawPartition := false
	k.Every(time.Second, 0, func() {
		if inj.Partitioned() {
			sawPartition = true
		}
	})
	k.RunUntil(2 * time.Minute)
	churn.Stop()
	if !sawPartition {
		t.Fatal("no partition storm in 2 minutes")
	}
	if inj.Partitioned() {
		t.Fatal("partition still installed after Stop")
	}
}

// TestLedgerStatsEdgeSemantics pins the censored-observation semantics
// documented on StatsOf.
func TestLedgerStatsEdgeSemantics(t *testing.T) {
	l := NewLedger(0)

	// Unknown component: perfectly available, zero MTTF/MTTR.
	if s := l.StatsOf("unknown", time.Hour); s.Availability != 1 || s.MTTF != 0 || s.MTTR != 0 {
		t.Fatalf("unknown component stats = %+v", s)
	}

	// Known but never failed (a spurious repair creates it up): MTTF is
	// the censored total uptime, MTTR stays 0.
	l.RecordRepair("steady", 10*time.Second)
	s := l.StatsOf("steady", 100*time.Second)
	if s.Failures != 0 || s.MTTF != 100*time.Second || s.MTTR != 0 || s.Availability != 1 {
		t.Fatalf("never-failed stats = %+v", s)
	}

	// Failed, never repaired: MTTR is the censored downtime so far.
	l.RecordFailure("stuck", 40*time.Second)
	s = l.StatsOf("stuck", 100*time.Second)
	if s.Failures != 1 || s.Repairs != 0 {
		t.Fatalf("still-down stats = %+v", s)
	}
	if s.MTTF != 40*time.Second || s.MTTR != 60*time.Second {
		t.Fatalf("still-down MTTF=%v MTTR=%v, want 40s/60s", s.MTTF, s.MTTR)
	}
	if s.Availability != 0.4 {
		t.Fatalf("still-down availability = %v", s.Availability)
	}
}

// TestInjectorPartitionedCrossGoroutine exercises the documented thread
// contract: Partitioned may be polled from another goroutine while the
// kernel mutates partition state (the race detector is the assertion).
func TestInjectorPartitionedCrossGoroutine(t *testing.T) {
	k, _, _, _, inj, _ := setup(t)
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		if i%2 == 0 {
			inj.PartitionAt(at, []radio.NodeID{0, 1}, []radio.NodeID{2, 3})
		} else {
			inj.HealAt(at)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			_ = inj.Partitioned()
		}
	}()
	k.Run()
	<-done
}
