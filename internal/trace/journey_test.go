package trace

import (
	"testing"
	"time"

	"iiotds/internal/metrics"
)

// jev builds a journey-stamped event at a millisecond timestamp.
func jev(ms int, node int32, typ Type, a, b int64, j uint64) Event {
	return Event{At: time.Duration(ms) * time.Millisecond, Node: node, Type: typ, A: a, B: b, J: j}
}

// roundTrip is a full CoAP exchange 5 → 3 → 0 and back, journey 1, with
// one backoff, one radio loss, and one MAC retry on the middle hop.
func roundTrip() []Event {
	return []Event{
		jev(0, 5, CoAPRequest, 17, 1, 1),
		jev(1, 5, RPLForward, 3, 0, 1),
		jev(2, 5, MACBackoff, 1, 0, 1),
		jev(3, 5, MACTx, 3, 9, 1),
		jev(4, 3, RadioDeliver, 5, 40, 1),
		jev(5, 3, RPLForward, 0, 0, 1),
		jev(6, 3, MACTx, 0, 10, 1),
		jev(7, 0, RadioLoss, 3, 0, 1),
		jev(8, 3, MACRetry, 0, 1, 1),
		jev(9, 0, RadioDeliver, 3, 40, 1),
		jev(10, 0, RPLDeliver, 5, 33, 1),
		jev(11, 0, RPLForward, 3, 5, 1),
		jev(13, 3, RPLForward, 5, 5, 1),
		jev(15, 5, RPLDeliver, 0, 33, 1),
		jev(16, 5, CoAPResponse, 17, 69, 1),
	}
}

func TestJourneyRoundTripReconstruction(t *testing.T) {
	js := Journeys(roundTrip())
	if len(js) != 1 {
		t.Fatalf("got %d journeys, want 1", len(js))
	}
	j := js[0]
	if j.ID != 1 || len(j.Events) != 15 {
		t.Fatalf("journey %d with %d events, want 1 with 15", j.ID, len(j.Events))
	}
	if j.Outcome != OutcomeDelivered {
		t.Errorf("outcome = %s, want delivered", j.Outcome)
	}
	if !j.IsCoAP() {
		t.Error("IsCoAP = false for a CoAP exchange")
	}
	if j.Retries != 1 || j.Backoffs != 1 || j.Losses != 1 || j.Deliveries != 2 {
		t.Errorf("retries/backoffs/losses/deliveries = %d/%d/%d/%d, want 1/1/1/2",
			j.Retries, j.Backoffs, j.Losses, j.Deliveries)
	}
	if got, want := j.Duration(), 16*time.Millisecond; got != want {
		t.Errorf("duration = %v, want %v", got, want)
	}

	// Hop sequence: request legs 5→3, 3→0 then response legs 0→3, 3→5.
	wantHops := []struct {
		from, to int32
		took     time.Duration
	}{
		{5, 3, 4 * time.Millisecond}, // forward@1ms → next forward@5ms
		{3, 0, 5 * time.Millisecond}, // forward@5ms → deliver@10ms
		{0, 3, 2 * time.Millisecond}, // forward@11ms → forward@13ms
		{3, 5, 2 * time.Millisecond}, // forward@13ms → deliver@15ms
	}
	if len(j.Hops) != len(wantHops) {
		t.Fatalf("got %d hops, want %d: %+v", len(j.Hops), len(wantHops), j.Hops)
	}
	for i, w := range wantHops {
		h := j.Hops[i]
		if h.From != w.from || h.To != w.to || h.Took != w.took {
			t.Errorf("hop %d = {%d→%d took %v}, want {%d→%d took %v}",
				i, h.From, h.To, h.Took, w.from, w.to, w.took)
		}
	}

	// Per-layer breakdown: gaps attribute to the earlier event's layer,
	// and the breakdown must account for the whole duration.
	var sum time.Duration
	for _, d := range j.LayerNanos {
		sum += d
	}
	if sum != j.Duration() {
		t.Errorf("layer breakdown sums to %v, want %v", sum, j.Duration())
	}
	// CoAPRequest@0 → RPLForward@1: 1ms on the CoAP layer.
	if got := j.LayerNanos[LayerCoAP]; got != 1*time.Millisecond {
		t.Errorf("coap layer time = %v, want 1ms", got)
	}
	// Gaps after the two RadioDeliver/RadioLoss events: 4→5, 7→8, 9→10.
	if got := j.LayerNanos[LayerRadio]; got != 3*time.Millisecond {
		t.Errorf("radio layer time = %v, want 3ms", got)
	}
}

func TestJourneyTerminalOutcomes(t *testing.T) {
	events := []Event{
		// Journey 2: routing failure.
		jev(0, 2, RPLNoRoute, 9, 0, 2),
		// Journey 3: MAC gave up.
		jev(1, 4, RPLForward, 1, 9, 3),
		jev(2, 4, MACTx, 1, 5, 3),
		jev(3, 4, MACTxFail, 1, 0, 3),
		// Journey 4: CoAP exchange that timed out (MAC failure on the
		// path must NOT mask the CoAP-level verdict).
		jev(4, 6, CoAPRequest, 8, 1, 4),
		jev(5, 6, RPLForward, 2, 0, 4),
		jev(6, 6, MACTxFail, 2, 0, 4),
		jev(7, 6, CoAPTimeout, 8, 0, 4),
		// Journey 5: trace ends mid-flight.
		jev(8, 7, RPLForward, 2, 0, 5),
		// Journey-less control traffic is ignored.
		jev(9, 1, RPLDIOSent, -1, 256, 0),
	}
	js := Journeys(events)
	if len(js) != 4 {
		t.Fatalf("got %d journeys, want 4", len(js))
	}
	want := map[uint64]Outcome{
		2: OutcomeNoRoute,
		3: OutcomeMACTxFail,
		4: OutcomeCoAPTimeout,
		5: OutcomeIncomplete,
	}
	for _, j := range js {
		if j.Outcome != want[j.ID] {
			t.Errorf("journey %d outcome = %s, want %s", j.ID, j.Outcome, want[j.ID])
		}
	}
	// Sorted by ascending ID (= creation order).
	for i := 1; i < len(js); i++ {
		if js[i-1].ID >= js[i].ID {
			t.Errorf("journeys out of ID order: %d before %d", js[i-1].ID, js[i].ID)
		}
	}
}

func TestObserveJourneys(t *testing.T) {
	events := append(roundTrip(), jev(20, 2, RPLNoRoute, 9, 0, 2))
	reg := metrics.NewRegistry()
	ObserveJourneys(Journeys(events), reg)
	if got := reg.CounterWith("journey.count", metrics.L("outcome", "delivered")).Value(); got != 1 {
		t.Errorf("delivered count = %v, want 1", got)
	}
	if got := reg.CounterWith("journey.count", metrics.L("outcome", "no_route")).Value(); got != 1 {
		t.Errorf("no_route count = %v, want 1", got)
	}
	if got := reg.Histogram("journey.hops").Count(); got != 2 {
		t.Errorf("hops histogram count = %d, want 2", got)
	}
	if got := reg.Histogram("journey.hops").Max(); got != 4 {
		t.Errorf("hops histogram max = %v, want 4", got)
	}
	if got := reg.Histogram("journey.hop_latency_seconds").Count(); got != 4 {
		t.Errorf("hop latency samples = %d, want 4 (dead hops excluded)", got)
	}
	if got := reg.Histogram("journey.duration_seconds").Max(); got != 0.016 {
		t.Errorf("max duration = %v, want 0.016", got)
	}
}

func TestCoAPCoverage(t *testing.T) {
	events := roundTrip()
	if cov, tot := CoAPCoverage(events); cov != 1 || tot != 1 {
		t.Errorf("coverage = %d/%d, want 1/1", cov, tot)
	}
	// A response that lost its journey ID (j=0) is an uncovered exchange.
	events = append(events, jev(30, 9, CoAPResponse, 4, 69, 0))
	if cov, tot := CoAPCoverage(events); cov != 1 || tot != 2 {
		t.Errorf("coverage = %d/%d, want 1/2", cov, tot)
	}
	// A response whose journey never recorded the request is uncovered too.
	events = append(events, jev(31, 9, CoAPResponse, 4, 69, 77))
	if cov, tot := CoAPCoverage(events); cov != 1 || tot != 3 {
		t.Errorf("coverage = %d/%d, want 1/3", cov, tot)
	}
	if cov, tot := CoAPCoverage(nil); cov != 0 || tot != 0 {
		t.Errorf("empty coverage = %d/%d, want 0/0", cov, tot)
	}
}
