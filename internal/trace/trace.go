// Package trace is the emulation stack's flight recorder: a per-kernel,
// fixed-capacity ring of structured events that every protocol layer
// emits into. It exists to make a distributed deployment *observable*
// (the paper's §V-D maintainability argument): what the radio delivered,
// what the MAC retried, when RPL switched parents, how an RNFD suspicion
// became a verdict — each stamped with the virtual time and node that
// produced it.
//
// Design rules:
//
//   - Disabled is free. A nil *Recorder is the disabled recorder; Emit on
//     nil is a single branch and allocates nothing, so instrumentation
//     stays compiled into the hot paths permanently.
//   - Enabled is allocation-free too. Events are fixed-size scalar
//     records written into a preallocated ring; when the ring wraps, the
//     oldest events are dropped but per-type counts stay exact.
//   - Deterministic. The recorder is owned by a single simulation kernel
//     and written only from its event callbacks, in execution order.
//     Under the determinism regime (DESIGN.md §5) the recorded stream —
//     and therefore its JSONL export and summary — is byte-identical
//     run-to-run and at any trial-runner parallelism, which makes the
//     recorder double as a correctness oracle.
//
// The recorder is NOT safe for concurrent use; attach it only to
// components driven by one simulation kernel (or one goroutine).
package trace

import (
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp (duration since simulation start). It
// mirrors sim.Time without importing the kernel package.
type Time = time.Duration

// Layer identifies the protocol layer an event originated from.
type Layer uint8

// Layers, bottom-up through the stack.
const (
	LayerRadio Layer = iota
	LayerMAC
	LayerLink
	LayerRPL
	LayerCoAP
	LayerBus
	// LayerFault carries injected-fault events (crash, recover,
	// partition) — the churn engine's schedule, recorded alongside the
	// protocol reactions it provokes.
	LayerFault
	// LayerStore carries data-storage tier events (ingest, segment
	// flushes, compaction, anti-entropy) from the sharded store.
	LayerStore
	numLayers
	// LayerAny matches every layer in a Filter.
	LayerAny Layer = 0xff
)

var layerNames = [numLayers]string{"radio", "mac", "link", "rpl", "coap", "bus", "fault", "store"}

// String returns the layer's lowercase name.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "?"
}

// ParseLayer maps a lowercase layer name ("radio", "mac", "link",
// "rpl", "coap", "bus", "fault") back to its Layer, for command-line
// filters.
func ParseLayer(name string) (Layer, bool) {
	for i, n := range layerNames {
		if n == name {
			return Layer(i), true
		}
	}
	return LayerAny, false
}

// Type identifies what happened. Each type belongs to exactly one layer;
// the A/B/F fields of an Event are interpreted per type as documented on
// the constants.
type Type uint8

// Event types. A, B, F describe the typed payload fields.
const (
	// RadioTx: a frame went on the air. A = destination (-1 broadcast),
	// B = size in bytes.
	RadioTx Type = iota
	// RadioDeliver: a frame was decoded by a receiver. Node is the
	// receiver, A = sender, B = size in bytes.
	RadioDeliver
	// RadioLoss: a frame copy was lost to stochastic link loss. Node is
	// the intended receiver, A = sender.
	RadioLoss
	// RadioCollision: a frame copy was destroyed by co-channel
	// interference. Node is the receiver, A = the transmitter whose frame
	// was corrupted.
	RadioCollision

	// MACTx: a data frame transmission attempt. A = destination, B = MAC
	// sequence number.
	MACTx
	// MACBackoff: carrier sense found the channel busy and the sender
	// backed off. A = backoff exponent.
	MACBackoff
	// MACRetry: an ACK timeout triggered a retransmission. A =
	// destination, B = attempt number.
	MACRetry
	// MACTxFail: the retry budget was exhausted and the send failed.
	// A = destination.
	MACTxFail
	// MACWakeup: a duty-cycled receiver woke for a channel check.
	MACWakeup
	// MACStrobe: an LPL sender strobed a data copy. A = destination,
	// B = MAC sequence number.
	MACStrobe
	// MACBeacon: a receiver-initiated MAC advertised a wake-up.
	MACBeacon

	// LinkAck: a unicast link transmission was acknowledged. A = peer,
	// F = the peer's ETX estimate after the update.
	LinkAck
	// LinkDrop: a unicast link transmission failed (ARQ gave up).
	// A = peer, F = the peer's ETX estimate after the update.
	LinkDrop

	// RPLDIOSent: a DIO beacon was sent. A = destination (-1 multicast),
	// B = advertised rank.
	RPLDIOSent
	// RPLDIORecv: a DIO was received. A = sender, B = its advertised rank.
	RPLDIORecv
	// RPLDAOSent: a DAO (downward-route advertisement) was sent.
	// A = parent, B = DAO sequence number.
	RPLDAOSent
	// RPLParentSwitch: the preferred parent changed. A = new parent
	// (-1 detached), B = new rank.
	RPLParentSwitch
	// RPLDetach: the node left the DODAG (poisoned its subtree).
	RPLDetach
	// RPLNoRoute: a datagram was dropped for lack of a route.
	// A = destination.
	RPLNoRoute
	// RPLForward: a datagram was handed to the link layer toward its
	// next hop (both origination and multi-hop forwarding). A = next
	// hop, B = final destination.
	RPLForward
	// RPLDeliver: a datagram reached its destination and was handed up
	// to the protocol handler. A = source, B = protocol number.
	RPLDeliver

	// RNFDSentinel: the node qualified as an RNFD sentinel (good link to
	// the root with proven history).
	RNFDSentinel
	// RNFDSuspect: a sentinel's local timeout expired and it raised a
	// suspicion. B = epoch.
	RNFDSuspect
	// RNFDSuspectHeard: a flooded suspicion was learned. A = the
	// suspecting sentinel, B = distinct suspects known after learning it.
	RNFDSuspectHeard
	// RNFDVerdict: the node declared the root dead. B = distinct
	// suspects at verdict time.
	RNFDVerdict

	// CoAPRequest: a client request was sent. A = message ID, B = code.
	CoAPRequest
	// CoAPResponse: a response (or notification) was delivered to a
	// waiting request. A = message ID, B = code.
	CoAPResponse
	// CoAPRetransmit: the message layer retransmitted a confirmable.
	// A = message ID, B = attempt number.
	CoAPRetransmit
	// CoAPTimeout: the message layer gave up on a confirmable.
	// A = message ID.
	CoAPTimeout

	// BusPublish: a message was published to the broker. A = number of
	// matching subscriptions.
	BusPublish
	// BusDeliver: a message was delivered to one subscription.
	// A = subscription ID.
	BusDeliver

	// FaultCrash: a node was crashed by the fault injector.
	FaultCrash
	// FaultRecover: a crashed node was restarted by the fault injector.
	FaultRecover
	// FaultPartition: the medium was split into isolated groups.
	// Node = -1, A = number of explicit groups installed.
	FaultPartition
	// FaultHeal: a partition was removed. Node = -1.
	FaultHeal
	// FaultLink: a directed link's delivery ratio was overridden (burst
	// loss, flapping). A = the link's far end, F = the new PRR
	// (negative = override removed, the link is restored).
	FaultLink

	// StoreAppend: a batch of readings was ingested into a shard.
	// Node = the store's node ID (-1 for a free-standing store),
	// A = shard index, B = batch point count.
	StoreAppend
	// StoreFlush: an open series head was closed into an encoded
	// segment. A = shard index, B = points flushed.
	StoreFlush
	// StoreCompact: closed segments were merged. A = shard index,
	// B = segments compacted away.
	StoreCompact
	// StoreAntiEntropy: AP gossip merged remote points into a replica.
	// A = shard index, B = points merged.
	StoreAntiEntropy
	// StoreUnavail: a CP operation failed for lack of quorum.
	// A = shard index.
	StoreUnavail

	numTypes
	// TypeAny matches every type in a Filter.
	TypeAny Type = 0xff
)

// typeInfo maps each Type to its layer and wire name.
var typeInfo = [numTypes]struct {
	layer Layer
	name  string
}{
	RadioTx:          {LayerRadio, "tx"},
	RadioDeliver:     {LayerRadio, "deliver"},
	RadioLoss:        {LayerRadio, "loss"},
	RadioCollision:   {LayerRadio, "collision"},
	MACTx:            {LayerMAC, "tx"},
	MACBackoff:       {LayerMAC, "backoff"},
	MACRetry:         {LayerMAC, "retry"},
	MACTxFail:        {LayerMAC, "tx_fail"},
	MACWakeup:        {LayerMAC, "wakeup"},
	MACStrobe:        {LayerMAC, "strobe"},
	MACBeacon:        {LayerMAC, "beacon"},
	LinkAck:          {LayerLink, "ack"},
	LinkDrop:         {LayerLink, "drop"},
	RPLDIOSent:       {LayerRPL, "dio_sent"},
	RPLDIORecv:       {LayerRPL, "dio_recv"},
	RPLDAOSent:       {LayerRPL, "dao_sent"},
	RPLParentSwitch:  {LayerRPL, "parent_switch"},
	RPLDetach:        {LayerRPL, "detach"},
	RPLNoRoute:       {LayerRPL, "no_route"},
	RPLForward:       {LayerRPL, "forward"},
	RPLDeliver:       {LayerRPL, "deliver"},
	RNFDSentinel:     {LayerRPL, "rnfd_sentinel"},
	RNFDSuspect:      {LayerRPL, "rnfd_suspect"},
	RNFDSuspectHeard: {LayerRPL, "rnfd_suspect_heard"},
	RNFDVerdict:      {LayerRPL, "rnfd_verdict"},
	CoAPRequest:      {LayerCoAP, "request"},
	CoAPResponse:     {LayerCoAP, "response"},
	CoAPRetransmit:   {LayerCoAP, "retransmit"},
	CoAPTimeout:      {LayerCoAP, "timeout"},
	BusPublish:       {LayerBus, "publish"},
	BusDeliver:       {LayerBus, "deliver"},
	FaultCrash:       {LayerFault, "crash"},
	FaultRecover:     {LayerFault, "recover"},
	FaultPartition:   {LayerFault, "partition"},
	FaultHeal:        {LayerFault, "heal"},
	FaultLink:        {LayerFault, "link"},
	StoreAppend:      {LayerStore, "append"},
	StoreFlush:       {LayerStore, "flush"},
	StoreCompact:     {LayerStore, "compact"},
	StoreAntiEntropy: {LayerStore, "anti_entropy"},
	StoreUnavail:     {LayerStore, "unavail"},
}

// Layer returns the protocol layer the type belongs to.
func (t Type) Layer() Layer {
	if int(t) < len(typeInfo) {
		return typeInfo[t].layer
	}
	return LayerAny
}

// String returns the type's wire name (unique within its layer).
func (t Type) String() string {
	if int(t) < len(typeInfo) {
		return typeInfo[t].name
	}
	return "?"
}

// NumTypes returns the number of defined event types.
func NumTypes() int { return int(numTypes) }

// Event is one recorded occurrence. It is a fixed-size scalar record so
// the ring never allocates per event. The meaning of A, B, and F is
// documented per Type.
type Event struct {
	// At is the virtual time of the event.
	At Time
	// Node is the node the event happened on; -1 for network-wide events.
	Node int32
	// Type identifies what happened (and implies the Layer).
	Type Type
	// A and B are typed integer fields (peer IDs, sequence numbers,
	// sizes, ranks — per Type).
	A, B int64
	// F is a typed float field (e.g. an ETX estimate).
	F float64
	// J is the journey ID of the logical packet the event concerns, or
	// 0 for events not tied to a packet (control beacons, bus traffic,
	// injected faults). IDs are kernel-scoped counters carried on
	// netbuf.Buffer; see that package's Journeys.
	J uint64
}

// Recorder is the per-kernel flight recorder. A nil Recorder is valid
// and permanently disabled: every method is a safe no-op, and the Emit
// fast path is a single branch.
type Recorder struct {
	now     func() Time
	buf     []Event
	next    int  // next slot to write
	wrapped bool // the ring has overwritten old events at least once
	total   uint64
	counts  [numTypes]uint64
}

// New returns a recorder with the given ring capacity, reading virtual
// time from now (typically sim.Kernel.Now). Capacity must be positive.
func New(capacity int, now func() Time) *Recorder {
	if capacity <= 0 {
		panic("trace: non-positive recorder capacity")
	}
	if now == nil {
		panic("trace: nil clock")
	}
	return &Recorder{now: now, buf: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event. On a nil (disabled) recorder it is a no-op
// that performs no allocation and no work beyond the nil check. j is
// the journey ID of the packet the event concerns (0 if none).
func (r *Recorder) Emit(node int32, typ Type, a, b int64, f float64, j uint64) {
	if r == nil {
		return
	}
	r.buf[r.next] = Event{At: r.now(), Node: node, Type: typ, A: a, B: b, F: f, J: j}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	r.counts[typ]++
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events emitted since creation (including
// events the ring has since dropped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	kept := uint64(r.len())
	return r.total - kept
}

// len returns the number of events currently held.
func (r *Recorder) len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Events returns the retained events in emission (= virtual time) order.
// The returned slice is freshly allocated and safe to keep.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.len())
	r.Each(Filter{}, func(e Event) { out = append(out, e) })
	return out
}

// Reset discards all retained events and counts.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.next = 0
	r.wrapped = false
	r.total = 0
	r.counts = [numTypes]uint64{}
}

// Filter selects events for query and export. The zero Filter (also
// available as All()) matches everything; restrict it with the ByNode /
// ByLayer / ByLayers / ByType combinators. Each combinator *replaces*
// any prior restriction on its dimension, so ByLayer(LayerAny) or
// ByType(TypeAny) on an already-restricted filter lifts the restriction
// cleanly (no stale state survives).
type Filter struct {
	node      int32
	hasNode   bool
	layerMask uint16 // one bit per Layer; 0 = no layer restriction
	typ       Type
	typeSet   bool
}

// All returns the filter that matches every event.
func All() Filter { return Filter{} }

// ByNode returns a copy of f restricted to node (-1 selects the
// network-wide events).
func (f Filter) ByNode(node int32) Filter {
	f.node, f.hasNode = node, true
	return f
}

// ByLayer returns a copy of f restricted to one layer (LayerAny lifts
// any existing layer restriction).
func (f Filter) ByLayer(l Layer) Filter {
	return f.ByLayers(l)
}

// ByLayers returns a copy of f restricted to the union of the given
// layers, replacing any prior layer restriction. Passing no layers, or
// LayerAny anywhere in the list, lifts the restriction.
func (f Filter) ByLayers(layers ...Layer) Filter {
	f.layerMask = 0
	for _, l := range layers {
		if l >= numLayers {
			f.layerMask = 0
			return f
		}
		f.layerMask |= 1 << l
	}
	return f
}

// ByType returns a copy of f restricted to one event type (TypeAny lifts
// the restriction).
func (f Filter) ByType(t Type) Filter {
	if t == TypeAny {
		f.typ, f.typeSet = 0, false
		return f
	}
	f.typ, f.typeSet = t, true
	return f
}

// match reports whether e passes the filter.
func (f Filter) match(e Event) bool {
	if f.hasNode && e.Node != f.node {
		return false
	}
	if f.layerMask != 0 {
		l := e.Type.Layer()
		if l >= numLayers || f.layerMask&(1<<l) == 0 {
			return false
		}
	}
	if f.typeSet && e.Type != f.typ {
		return false
	}
	return true
}

// Each calls fn for every retained event matching f, in emission order.
func (r *Recorder) Each(f Filter, fn func(Event)) {
	if r == nil {
		return
	}
	if r.wrapped {
		for _, e := range r.buf[r.next:] {
			if f.match(e) {
				fn(e)
			}
		}
	}
	for _, e := range r.buf[:r.next] {
		if f.match(e) {
			fn(e)
		}
	}
}

// Count returns how many events of type t were emitted (exact even when
// the ring has dropped the events themselves).
func (r *Recorder) Count(t Type) uint64 {
	if r == nil || t >= numTypes {
		return 0
	}
	return r.counts[t]
}

// defaultCapacity is the process-wide fallback ring capacity applied by
// components (e.g. core.NewDeployment) whose configuration leaves the
// recorder capacity unset. 0 means tracing is off by default.
var defaultCapacity atomic.Int64

// SetDefaultCapacity sets the process-wide fallback ring capacity.
// n <= 0 disables tracing by default.
func SetDefaultCapacity(n int) {
	if n < 0 {
		n = 0
	}
	defaultCapacity.Store(int64(n))
}

// DefaultCapacity returns the process-wide fallback ring capacity.
func DefaultCapacity() int { return int(defaultCapacity.Load()) }
