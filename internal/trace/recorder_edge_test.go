package trace

import (
	"testing"
	"time"
)

// TestDroppedExactAcrossMultipleWraps pins Dropped() exactness when the
// ring has wrapped several times over: total and dropped must track
// every emission, not just the first wrap.
func TestDroppedExactAcrossMultipleWraps(t *testing.T) {
	var now time.Duration
	r := New(3, fixedClock(&now))
	for _, emits := range []struct {
		n            int
		total, dropp uint64
	}{
		{2, 2, 0},    // under capacity: nothing dropped
		{1, 3, 0},    // exactly full: still nothing dropped
		{1, 4, 1},    // first overwrite
		{8, 12, 9},   // wraps the ring twice more
		{30, 42, 39}, // ten further wraps
	} {
		for i := 0; i < emits.n; i++ {
			now++
			r.Emit(1, MACTx, 0, 0, 0, 0)
		}
		if r.Total() != emits.total || r.Dropped() != emits.dropp {
			t.Errorf("after %d emits: total=%d dropped=%d, want %d/%d",
				emits.total, r.Total(), r.Dropped(), emits.total, emits.dropp)
		}
	}
	if r.Count(MACTx) != 42 {
		t.Errorf("Count(MACTx) = %d, want 42 (exact across wraps)", r.Count(MACTx))
	}
}

// TestEventsOrderAfterWrap pins that Events() returns the retained
// window oldest-first even when the write cursor sits mid-ring.
func TestEventsOrderAfterWrap(t *testing.T) {
	var now time.Duration
	r := New(4, fixedClock(&now))
	// 4k+2 emissions leave the cursor mid-ring on every wrap count.
	for i := 0; i < 4*3+2; i++ {
		now = time.Duration(i) * time.Microsecond
		r.Emit(int32(i), MACTx, int64(i), 0, 0, uint64(i+1))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantNode := int32(10 + i) // newest four are 10..13
		if e.Node != wantNode || e.J != uint64(wantNode+1) {
			t.Errorf("retained[%d] = node %d j %d, want node %d j %d",
				i, e.Node, e.J, wantNode, wantNode+1)
		}
		if i > 0 && evs[i].At <= evs[i-1].At {
			t.Errorf("retained events out of time order at %d: %v <= %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

// TestResetThenReEmit pins that Reset() fully rewinds the ring — counts,
// totals, wrap state — and the recorder is immediately reusable.
func TestResetThenReEmit(t *testing.T) {
	var now time.Duration
	r := New(2, fixedClock(&now))
	for i := 0; i < 5; i++ {
		r.Emit(1, MACTx, 0, 0, 0, 0) // wraps twice
	}
	r.Reset()
	if r.Total() != 0 || r.Dropped() != 0 || r.Count(MACTx) != 0 || len(r.Events()) != 0 {
		t.Fatalf("after Reset: total=%d dropped=%d count=%d events=%d, want all 0",
			r.Total(), r.Dropped(), r.Count(MACTx), len(r.Events()))
	}
	now = 7 * time.Second
	r.Emit(9, LinkAck, 2, 0, 1.5, 3)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Node != 9 || evs[0].J != 3 {
		t.Fatalf("re-emit after Reset: events = %+v", evs)
	}
	if r.Total() != 1 || r.Dropped() != 0 {
		t.Errorf("re-emit after Reset: total=%d dropped=%d, want 1/0", r.Total(), r.Dropped())
	}
}

// TestFilterCombinatorComposition is the table test pinning Filter's
// replace-not-accumulate semantics: ByLayer(LayerAny) / ByType(TypeAny)
// applied after a restriction lift it cleanly, later restrictions
// replace earlier ones on the same dimension, and multi-layer unions
// via ByLayers compose with the other dimensions.
func TestFilterCombinatorComposition(t *testing.T) {
	var now time.Duration
	r := New(16, fixedClock(&now))
	r.Emit(1, RadioTx, 2, 40, 0, 1)
	r.Emit(2, RadioDeliver, 1, 40, 0, 1)
	r.Emit(1, MACTx, 2, 0, 0, 1)
	r.Emit(1, RPLDIOSent, -1, 256, 0, 0)
	r.Emit(3, CoAPRequest, 7, 1, 0, 2)
	r.Emit(-1, FaultPartition, 2, 0, 0, 0)

	count := func(f Filter) int {
		n := 0
		r.Each(f, func(Event) { n++ })
		return n
	}
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", All(), 6},
		{"one layer", All().ByLayer(LayerRadio), 2},
		{"restrict then lift layer", All().ByLayer(LayerRadio).ByLayer(LayerAny), 6},
		{"restrict then lift type", All().ByType(MACTx).ByType(TypeAny), 6},
		{"lift both after both", All().ByLayer(LayerMAC).ByType(MACTx).ByLayer(LayerAny).ByType(TypeAny), 6},
		{"later layer replaces earlier", All().ByLayer(LayerRadio).ByLayer(LayerMAC), 1},
		{"later type replaces earlier", All().ByType(RadioTx).ByType(CoAPRequest), 1},
		{"multi-layer union", All().ByLayers(LayerRadio, LayerMAC), 3},
		{"union replaced by single", All().ByLayers(LayerRadio, LayerMAC).ByLayer(LayerCoAP), 1},
		{"single replaced by union", All().ByLayer(LayerCoAP).ByLayers(LayerRadio, LayerFault), 3},
		{"ByLayers() lifts", All().ByLayer(LayerRadio).ByLayers(), 6},
		{"LayerAny inside union lifts", All().ByLayers(LayerRadio, LayerAny), 6},
		{"union + node", All().ByLayers(LayerRadio, LayerMAC).ByNode(1), 2},
		{"union + type", All().ByLayers(LayerRadio, LayerMAC).ByType(RadioDeliver), 1},
		{"fault layer reachable", All().ByLayer(LayerFault), 1},
	}
	for _, c := range cases {
		if got := count(c.f); got != c.want {
			t.Errorf("%s: matched %d, want %d", c.name, got, c.want)
		}
	}
}
