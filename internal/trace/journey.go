package trace

import (
	"sort"
	"time"

	"iiotds/internal/metrics"
)

// This file is the journey reconstruction engine: it folds a recorded
// event stream back into per-packet flight paths. A journey is every
// event stamped with the same journey ID (Event.J) — the full causal
// story of one logical datagram (and, for CoAP, its response riding the
// same ID back), from the RPL send through MAC retries, radio losses,
// multi-hop forwarding, to delivery or a terminal failure.
//
// IDs are kernel-scoped counters assigned by netbuf.Journeys, so within
// one trial's trace they are unique and dense; 0 marks events not tied
// to any packet (control beacons, bus traffic, injected faults), which
// reconstruction ignores.

// Outcome classifies how a journey ended.
type Outcome uint8

const (
	// OutcomeIncomplete: the trace ended (or the ring dropped events)
	// before a terminal event was seen.
	OutcomeIncomplete Outcome = iota
	// OutcomeDelivered: the packet reached its destination handler —
	// and, for CoAP journeys, a response made it back to the requester.
	OutcomeDelivered
	// OutcomeMACTxFail: a MAC exhausted its retry budget and the journey
	// never recovered.
	OutcomeMACTxFail
	// OutcomeNoRoute: RPL had no route toward the destination.
	OutcomeNoRoute
	// OutcomeCoAPTimeout: the CoAP message layer gave up on the exchange.
	OutcomeCoAPTimeout
)

var outcomeNames = [...]string{"incomplete", "delivered", "mac_tx_fail", "no_route", "coap_timeout"}

// String returns the outcome's lowercase name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "?"
}

// Hop is one link-level leg of a journey: an RPL forwarding decision
// (origination included) at node From toward next hop To. Took is the
// virtual time from this decision to the next routing event (the next
// hop's forward, or the delivery); 0 if the journey died on this hop.
type Hop struct {
	From int32
	To   int32
	At   Time
	Took time.Duration
}

// Journey is one reconstructed packet flight path.
type Journey struct {
	// ID is the journey ID shared by all of the journey's events.
	ID uint64
	// Events are the journey's events in emission (= virtual time) order.
	Events []Event
	// Start and End bound the journey in virtual time.
	Start, End Time
	// Hops is the RPL-level hop sequence (request and, for CoAP
	// round trips, response legs in one list).
	Hops []Hop
	// Retries counts MAC retransmissions plus CoAP retransmits.
	Retries int
	// Backoffs counts MAC carrier-sense backoffs.
	Backoffs int
	// Losses counts radio-level copy losses (stochastic loss and
	// collisions) suffered by this packet.
	Losses int
	// Deliveries counts RPL deliveries to a destination handler (a CoAP
	// round trip has two: request at the server, response back at the
	// client).
	Deliveries int
	// Outcome is the terminal classification.
	Outcome Outcome
	// LayerNanos breaks the journey's duration down by layer: the gap
	// between consecutive events is attributed to the layer of the
	// earlier event (the layer that "held" the packet during the gap).
	// Index with a Layer value.
	LayerNanos [int(numLayers)]time.Duration
}

// Duration returns the journey's total virtual-time span.
func (j *Journey) Duration() time.Duration { return j.End - j.Start }

// IsCoAP reports whether the journey carries a CoAP exchange.
func (j *Journey) IsCoAP() bool {
	for _, e := range j.Events {
		if e.Type == CoAPRequest {
			return true
		}
	}
	return false
}

// Journeys reconstructs every journey present in events (typically
// Recorder.Events() or ReadJSONL output). Events with J == 0 are
// ignored. The result is sorted by ascending journey ID — which, IDs
// being a kernel-scoped counter, is also creation order.
func Journeys(events []Event) []*Journey {
	byID := make(map[uint64]*Journey)
	for _, e := range events {
		if e.J == 0 {
			continue
		}
		j := byID[e.J]
		if j == nil {
			j = &Journey{ID: e.J, Start: e.At}
			byID[e.J] = j
		}
		if n := len(j.Events); n > 0 {
			prev := j.Events[n-1]
			if l := prev.Type.Layer(); l < numLayers {
				j.LayerNanos[l] += e.At - prev.At
			}
		}
		j.Events = append(j.Events, e)
		j.End = e.At
		switch e.Type {
		case MACRetry, CoAPRetransmit:
			j.Retries++
		case MACBackoff:
			j.Backoffs++
		case RadioLoss, RadioCollision:
			j.Losses++
		case RPLDeliver:
			j.Deliveries++
		}
	}
	out := make([]*Journey, 0, len(byID))
	for _, j := range byID {
		j.finish()
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// finish derives the hop sequence and terminal outcome from the
// collected event list.
func (j *Journey) finish() {
	// Hop sequence: each RPLForward opens a leg that closes at the next
	// routing event (forward at the next hop, or delivery).
	for i, e := range j.Events {
		if e.Type != RPLForward {
			continue
		}
		h := Hop{From: e.Node, To: int32(e.A), At: e.At}
		for _, later := range j.Events[i+1:] {
			if later.Type == RPLForward || later.Type == RPLDeliver {
				h.Took = later.At - e.At
				break
			}
		}
		j.Hops = append(j.Hops, h)
	}

	var hasReq, hasResp, hasCoAPTimeout, hasNoRoute, hasTxFail bool
	for _, e := range j.Events {
		switch e.Type {
		case CoAPRequest:
			hasReq = true
		case CoAPResponse:
			hasResp = true
		case CoAPTimeout:
			hasCoAPTimeout = true
		case RPLNoRoute:
			hasNoRoute = true
		case MACTxFail:
			hasTxFail = true
		}
	}
	switch {
	case hasReq:
		// A CoAP journey succeeds only if the response made it back.
		switch {
		case hasResp:
			j.Outcome = OutcomeDelivered
		case hasCoAPTimeout:
			j.Outcome = OutcomeCoAPTimeout
		case hasNoRoute:
			j.Outcome = OutcomeNoRoute
		case hasTxFail:
			j.Outcome = OutcomeMACTxFail
		default:
			j.Outcome = OutcomeIncomplete
		}
	case j.Deliveries > 0:
		j.Outcome = OutcomeDelivered
	case hasNoRoute:
		j.Outcome = OutcomeNoRoute
	case hasTxFail:
		j.Outcome = OutcomeMACTxFail
	default:
		j.Outcome = OutcomeIncomplete
	}
}

// ObserveJourneys folds reconstructed journeys into aggregate metrics:
//
//	journey.count{outcome=...}       counter per terminal outcome
//	journey.hops                     histogram of hop counts
//	journey.duration_seconds         histogram of end-to-end durations
//	journey.hop_latency_seconds      histogram of per-hop latencies
//	journey.retries                  histogram of retry counts
func ObserveJourneys(js []*Journey, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	hops := reg.Histogram("journey.hops")
	dur := reg.Histogram("journey.duration_seconds")
	hopLat := reg.Histogram("journey.hop_latency_seconds")
	retries := reg.Histogram("journey.retries")
	for _, j := range js {
		reg.CounterWith("journey.count", metrics.L("outcome", j.Outcome.String())).Inc()
		hops.Observe(float64(len(j.Hops)))
		dur.ObserveDuration(j.Duration())
		retries.Observe(float64(j.Retries))
		for _, h := range j.Hops {
			if h.Took > 0 {
				hopLat.ObserveDuration(h.Took)
			}
		}
	}
}

// CoAPCoverage reports how many delivered CoAP exchanges the trace
// contains (one per CoAPResponse event) and how many of those are
// covered by a complete journey: a nonzero journey ID whose journey
// also recorded the originating CoAPRequest. The CI gate demands
// covered/total ≥ 0.99; with no exchanges at all the check is vacuous
// (callers should treat 0/0 as full coverage).
func CoAPCoverage(events []Event) (covered, total int) {
	byID := make(map[uint64]*Journey)
	for _, j := range Journeys(events) {
		byID[j.ID] = j
	}
	for _, e := range events {
		if e.Type != CoAPResponse {
			continue
		}
		total++
		if j := byID[e.J]; j != nil {
			for _, je := range j.Events {
				if je.Type == CoAPRequest {
					covered++
					break
				}
			}
		}
	}
	return covered, total
}
