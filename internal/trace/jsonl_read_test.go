package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestReadJSONLRoundTrip pins that ReadJSONL inverts WriteJSONL: the
// parsed events equal the recorder's retained events, journey IDs
// included.
func TestReadJSONLRoundTrip(t *testing.T) {
	var now time.Duration
	r := New(16, fixedClock(&now))
	now = 1500 * time.Millisecond
	r.Emit(3, RPLDIOSent, -1, 256, 0, 0)
	now = 2 * time.Second
	r.Emit(4, LinkAck, 3, 0, 1.25, 7)
	now = 3 * time.Second
	r.Emit(-1, FaultPartition, 2, 0, 0, 0)
	r.Emit(5, RPLForward, 1, 0, 0, 18446744073709551615) // max uint64 survives

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, All()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReadJSONLLegacyNoJourney pins that dumps written before journey
// IDs (no "j" key) still parse, with J=0.
func TestReadJSONLLegacyNoJourney(t *testing.T) {
	legacy := `{"at_ns":1500000000,"node":3,"layer":"rpl","type":"dio_sent","a":-1,"b":256,"f":0}` + "\n" +
		`{"at_ns":2000000000,"node":4,"layer":"link","type":"ack","a":3,"b":0,"f":1.25}` + "\n"
	evs, err := ReadJSONL(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("parsed %d events, want 2", len(evs))
	}
	if evs[0].Type != RPLDIOSent || evs[0].J != 0 || evs[1].Type != LinkAck || evs[1].F != 1.25 {
		t.Errorf("legacy parse = %+v", evs)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"garbage", "not json"},
		{"unknown type", `{"at_ns":1,"node":3,"layer":"rpl","type":"warp_drive","a":0,"b":0,"f":0,"j":0}`},
		{"unknown layer", `{"at_ns":1,"node":3,"layer":"quantum","type":"tx","a":0,"b":0,"f":0,"j":0}`},
		{"bad int", `{"at_ns":xx,"node":3,"layer":"rpl","type":"dio_sent","a":0,"b":0,"f":0,"j":0}`},
		{"bad journey", `{"at_ns":1,"node":3,"layer":"rpl","type":"dio_sent","a":0,"b":0,"f":0,"j":-4}`},
	}
	for _, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: ReadJSONL accepted %q", c.name, c.line)
		}
	}
	// Blank lines are tolerated (trailing newline, hand-edited dumps).
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Errorf("blank-line input: evs=%v err=%v", evs, err)
	}
}
