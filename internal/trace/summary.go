package trace

import (
	"fmt"
	"strings"
)

// TypeCount is one (event type, count) pair of a Summary. It marshals
// with the layer and type names so JSON reports are self-describing.
type TypeCount struct {
	// T is the event type (canonical ordering key).
	T Type `json:"-"`
	// Count is how many events of this type were emitted.
	Count uint64 `json:"count"`
}

// MarshalJSON emits {"layer":...,"type":...,"count":...}.
func (tc TypeCount) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"layer":%q,"type":%q,"count":%d}`,
		tc.T.Layer().String(), tc.T.String(), tc.Count)), nil
}

// Summary is the compact per-recorder digest: exact per-type event
// counts (independent of ring drops) in canonical type order. Summaries
// merge associatively, so the experiment runner can fold per-trial
// summaries in trial-index order and obtain the same result at any
// parallelism level.
type Summary struct {
	// Total counts all emitted events; Dropped counts events the ring
	// overwrote before export.
	Total   uint64      `json:"total"`
	Dropped uint64      `json:"dropped"`
	Counts  []TypeCount `json:"counts,omitempty"`
}

// Summary returns the recorder's digest. On a nil recorder it returns
// the zero Summary.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	s := Summary{Total: r.total, Dropped: r.Dropped()}
	for t := Type(0); t < numTypes; t++ {
		if c := r.counts[t]; c > 0 {
			s.Counts = append(s.Counts, TypeCount{T: t, Count: c})
		}
	}
	return s
}

// Add merges o into s: totals sum, per-type counts sum. Both operands'
// Counts must be in canonical type order (as produced by Summary and
// Add), which the result preserves.
func (s *Summary) Add(o Summary) {
	s.Total += o.Total
	s.Dropped += o.Dropped
	if len(o.Counts) == 0 {
		return
	}
	merged := make([]TypeCount, 0, len(s.Counts)+len(o.Counts))
	i, j := 0, 0
	for i < len(s.Counts) && j < len(o.Counts) {
		a, b := s.Counts[i], o.Counts[j]
		switch {
		case a.T == b.T:
			merged = append(merged, TypeCount{T: a.T, Count: a.Count + b.Count})
			i++
			j++
		case a.T < b.T:
			merged = append(merged, a)
			i++
		default:
			merged = append(merged, b)
			j++
		}
	}
	merged = append(merged, s.Counts[i:]...)
	merged = append(merged, o.Counts[j:]...)
	s.Counts = merged
}

// String renders the summary as a fixed-width table, one line per event
// type, in canonical order — the per-experiment digest iiotbench prints.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events (%d dropped from ring)\n", s.Total, s.Dropped)
	for _, tc := range s.Counts {
		fmt.Fprintf(&sb, "  %-6s %-20s %d\n", tc.T.Layer().String(), tc.T.String(), tc.Count)
	}
	return sb.String()
}
