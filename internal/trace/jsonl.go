package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSONL writes every retained event matching f to w, one JSON
// object per line, in emission order. Lines are hand-formatted (no
// reflection) with a fixed key order, so the output is byte-identical
// for identical event streams:
//
//	{"at_ns":1500000000,"node":3,"layer":"rpl","type":"dio_sent","a":-1,"b":256,"f":0,"j":0}
func (r *Recorder) WriteJSONL(w io.Writer, f Filter) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 128)
	var err error
	r.Each(f, func(e Event) {
		if err != nil {
			return
		}
		buf = appendEventJSON(buf[:0], e)
		_, err = bw.Write(buf)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// appendEventJSON appends one JSONL line (with trailing newline) for e.
func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"at_ns":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"layer":"`...)
	b = append(b, e.Type.Layer().String()...)
	b = append(b, `","type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, `","a":`...)
	b = strconv.AppendInt(b, e.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, e.B, 10)
	b = append(b, `,"f":`...)
	b = strconv.AppendFloat(b, e.F, 'g', -1, 64)
	b = append(b, `,"j":`...)
	b = strconv.AppendUint(b, e.J, 10)
	b = append(b, '}', '\n')
	return b
}

// typeByWire maps (layer name, type name) back to the Type, for parsing
// JSONL dumps. Built lazily; names are unique within a layer.
var typeByWire map[[2]string]Type

func wireType(layer, name string) (Type, bool) {
	if typeByWire == nil {
		typeByWire = make(map[[2]string]Type, int(numTypes))
		for t := Type(0); t < numTypes; t++ {
			typeByWire[[2]string{t.Layer().String(), t.String()}] = t
		}
	}
	t, ok := typeByWire[[2]string{layer, name}]
	return t, ok
}

// ReadJSONL parses an event stream previously written by WriteJSONL.
// It accepts exactly the hand-formatted key order WriteJSONL produces
// (this is a tool-side parser for our own dumps, not a general JSON
// reader); lines missing the "j" key — dumps from before journey IDs —
// parse with J=0. Unknown layer/type names are an error, so a dump from
// a newer binary fails loudly instead of silently dropping events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := parseEventJSON(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseEventJSON parses one WriteJSONL line.
func parseEventJSON(line string) (Event, error) {
	var e Event
	rest, ok := strings.CutPrefix(line, `{"at_ns":`)
	if !ok {
		return e, fmt.Errorf("malformed event line %q", line)
	}
	atNS, rest, err := cutInt(rest, `,"node":`)
	if err != nil {
		return e, err
	}
	node, rest, err := cutInt(rest, `,"layer":"`)
	if err != nil {
		return e, err
	}
	layer, rest, ok := strings.Cut(rest, `","type":"`)
	if !ok {
		return e, fmt.Errorf("missing type in %q", line)
	}
	typ, rest, ok := strings.Cut(rest, `","a":`)
	if !ok {
		return e, fmt.Errorf("missing a field in %q", line)
	}
	a, rest, err := cutInt(rest, `,"b":`)
	if err != nil {
		return e, err
	}
	b, rest, err := cutInt(rest, `,"f":`)
	if err != nil {
		return e, err
	}
	var j uint64
	fStr, jStr, hasJ := strings.Cut(rest, `,"j":`)
	if hasJ {
		jStr = strings.TrimSuffix(jStr, "}")
		if j, err = strconv.ParseUint(jStr, 10, 64); err != nil {
			return e, fmt.Errorf("bad j %q: %v", jStr, err)
		}
	} else {
		fStr = strings.TrimSuffix(fStr, "}")
	}
	f, err := strconv.ParseFloat(fStr, 64)
	if err != nil {
		return e, fmt.Errorf("bad f %q: %v", fStr, err)
	}
	t, ok := wireType(layer, typ)
	if !ok {
		return e, fmt.Errorf("unknown event %s/%s", layer, typ)
	}
	e = Event{At: Time(atNS), Node: int32(node), Type: t, A: a, B: b, F: f, J: j}
	return e, nil
}

// cutInt parses a decimal integer prefix of s up to sep and returns the
// value and the remainder after sep.
func cutInt(s, sep string) (int64, string, error) {
	numStr, rest, ok := strings.Cut(s, sep)
	if !ok {
		return 0, "", fmt.Errorf("missing %q separator", sep)
	}
	v, err := strconv.ParseInt(numStr, 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad integer %q: %v", numStr, err)
	}
	return v, rest, nil
}
