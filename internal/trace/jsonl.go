package trace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteJSONL writes every retained event matching f to w, one JSON
// object per line, in emission order. Lines are hand-formatted (no
// reflection) with a fixed key order, so the output is byte-identical
// for identical event streams:
//
//	{"at_ns":1500000000,"node":3,"layer":"rpl","type":"dio_sent","a":-1,"b":256,"f":0}
func (r *Recorder) WriteJSONL(w io.Writer, f Filter) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 128)
	var err error
	r.Each(f, func(e Event) {
		if err != nil {
			return
		}
		buf = appendEventJSON(buf[:0], e)
		_, err = bw.Write(buf)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// appendEventJSON appends one JSONL line (with trailing newline) for e.
func appendEventJSON(b []byte, e Event) []byte {
	b = append(b, `{"at_ns":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"layer":"`...)
	b = append(b, e.Type.Layer().String()...)
	b = append(b, `","type":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, `","a":`...)
	b = strconv.AppendInt(b, e.A, 10)
	b = append(b, `,"b":`...)
	b = strconv.AppendInt(b, e.B, 10)
	b = append(b, `,"f":`...)
	b = strconv.AppendFloat(b, e.F, 'g', -1, 64)
	b = append(b, '}', '\n')
	return b
}
