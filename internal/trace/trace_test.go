package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func fixedClock(t *time.Duration) func() Time { return func() Time { return *t } }

func TestEmitAndOrder(t *testing.T) {
	var now time.Duration
	r := New(8, fixedClock(&now))
	for i := 0; i < 5; i++ {
		now = time.Duration(i) * time.Second
		r.Emit(int32(i), RPLDIOSent, -1, 256, 0, 0)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Node != int32(i) || e.At != time.Duration(i)*time.Second {
			t.Errorf("event %d out of order: %+v", i, e)
		}
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Errorf("total=%d dropped=%d, want 5/0", r.Total(), r.Dropped())
	}
}

func TestRingWrapKeepsNewestAndExactCounts(t *testing.T) {
	var now time.Duration
	r := New(4, fixedClock(&now))
	for i := 0; i < 10; i++ {
		now = time.Duration(i)
		r.Emit(int32(i), MACTx, 0, 0, 0, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Node != int32(6+i) {
			t.Errorf("retained[%d].Node = %d, want %d", i, e.Node, 6+i)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Errorf("total=%d dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
	if r.Count(MACTx) != 10 {
		t.Errorf("Count(MACTx) = %d, want 10 (counts survive ring drops)", r.Count(MACTx))
	}
}

func TestFilter(t *testing.T) {
	var now time.Duration
	r := New(16, fixedClock(&now))
	r.Emit(1, RPLDIOSent, -1, 0, 0, 0)
	r.Emit(2, RPLDIORecv, 1, 0, 0, 0)
	r.Emit(1, MACTx, 2, 0, 0, 0)
	r.Emit(-1, BusPublish, 1, 0, 0, 0)

	count := func(f Filter) int {
		n := 0
		r.Each(f, func(Event) { n++ })
		return n
	}
	if got := count(All()); got != 4 {
		t.Errorf("All() matched %d, want 4", got)
	}
	if got := count(All().ByNode(1)); got != 2 {
		t.Errorf("ByNode(1) matched %d, want 2", got)
	}
	if got := count(All().ByLayer(LayerRPL)); got != 2 {
		t.Errorf("ByLayer(rpl) matched %d, want 2", got)
	}
	if got := count(All().ByType(BusPublish)); got != 1 {
		t.Errorf("ByType(publish) matched %d, want 1", got)
	}
	if got := count(All().ByNode(1).ByLayer(LayerMAC)); got != 1 {
		t.Errorf("node 1 + mac matched %d, want 1", got)
	}
	if got := count(All().ByLayer(LayerAny).ByType(TypeAny)); got != 4 {
		t.Errorf("Any restrictions matched %d, want 4", got)
	}
}

func TestJSONLDeterministicAndFiltered(t *testing.T) {
	build := func() *Recorder {
		var now time.Duration
		r := New(16, fixedClock(&now))
		now = 1500 * time.Millisecond
		r.Emit(3, RPLDIOSent, -1, 256, 0, 0)
		now = 2 * time.Second
		r.Emit(4, LinkAck, 3, 0, 1.25, 7)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a, All()); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b, All()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical recorders exported different JSONL:\n%s\n---\n%s", a.String(), b.String())
	}
	want := `{"at_ns":1500000000,"node":3,"layer":"rpl","type":"dio_sent","a":-1,"b":256,"f":0,"j":0}` + "\n" +
		`{"at_ns":2000000000,"node":4,"layer":"link","type":"ack","a":3,"b":0,"f":1.25,"j":7}` + "\n"
	if a.String() != want {
		t.Errorf("JSONL =\n%s\nwant\n%s", a.String(), want)
	}
	var f bytes.Buffer
	if err := build().WriteJSONL(&f, All().ByLayer(LayerLink)); err != nil {
		t.Fatal(err)
	}
	if got := f.String(); strings.Count(got, "\n") != 1 || !strings.Contains(got, `"layer":"link"`) {
		t.Errorf("filtered JSONL = %q", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	var now time.Duration
	a := New(4, fixedClock(&now))
	a.Emit(1, MACTx, 0, 0, 0, 0)
	a.Emit(1, MACTx, 0, 0, 0, 0)
	a.Emit(1, RPLDIOSent, 0, 0, 0, 0)
	b := New(2, fixedClock(&now))
	b.Emit(2, MACTx, 0, 0, 0, 0)
	b.Emit(2, BusDeliver, 0, 0, 0, 0)
	b.Emit(2, BusDeliver, 0, 0, 0, 0) // wraps: 1 dropped

	s := a.Summary()
	s.Add(b.Summary())
	if s.Total != 6 || s.Dropped != 1 {
		t.Fatalf("merged total=%d dropped=%d, want 6/1", s.Total, s.Dropped)
	}
	want := []TypeCount{
		{T: MACTx, Count: 3},
		{T: RPLDIOSent, Count: 1},
		{T: BusDeliver, Count: 2},
	}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("merged counts = %+v, want %+v", s.Counts, want)
	}

	// Merging in the opposite order must produce the same result
	// (associativity is what makes the runner's fold order-independent).
	s2 := b.Summary()
	s2.Add(a.Summary())
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("merge is order-dependent: %+v vs %+v", s, s2)
	}
}

func TestSummaryStringAndJSON(t *testing.T) {
	var now time.Duration
	r := New(4, fixedClock(&now))
	r.Emit(1, RNFDVerdict, 0, 2, 0, 0)
	s := r.Summary()
	str := s.String()
	if !strings.Contains(str, "rnfd_verdict") || !strings.Contains(str, "rpl") {
		t.Errorf("summary string missing fields:\n%s", str)
	}
	j, err := s.Counts[0].MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j) != `{"layer":"rpl","type":"rnfd_verdict","count":1}` {
		t.Errorf("TypeCount JSON = %s", j)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(1, MACTx, 0, 0, 0, 0) // must not panic
	if r.Enabled() || r.Total() != 0 || r.Cap() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder not inert")
	}
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder Events = %v", evs)
	}
	if s := r.Summary(); s.Total != 0 || len(s.Counts) != 0 {
		t.Errorf("nil recorder Summary = %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, All()); err != nil || buf.Len() != 0 {
		t.Error("nil recorder WriteJSONL wrote output")
	}
	r.Reset() // no-op
}

func TestTypeTableComplete(t *testing.T) {
	for typ := Type(0); typ < Type(NumTypes()); typ++ {
		if typ.String() == "?" || typ.String() == "" {
			t.Errorf("type %d has no name", typ)
		}
		if typ.Layer() >= numLayers {
			t.Errorf("type %d (%s) has no layer", typ, typ)
		}
	}
}

// TestEmitAllocs is the acceptance gate: the emit path must not allocate
// — neither disabled (nil recorder) nor enabled (preallocated ring).
func TestEmitAllocs(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Emit(3, MACTx, 7, 9, 1.5, 0)
	}); n != 0 {
		t.Errorf("disabled Emit allocates %.1f per op, want 0", n)
	}
	var now time.Duration
	r := New(1024, fixedClock(&now))
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(3, MACTx, 7, 9, 1.5, 0)
	}); n != 0 {
		t.Errorf("enabled Emit allocates %.1f per op, want 0", n)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(3, MACTx, 7, 9, 1.5, 0)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	var now time.Duration
	r := New(4096, fixedClock(&now))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(3, MACTx, 7, 9, 1.5, 0)
	}
}
