// Package spectrum addresses §IV-C administrative scalability: multiple
// tenants' systems sharing the same physical space compete for wireless
// channels. It provides the three coexistence regimes E6 compares:
//
//   - Uncoordinated: every tenant uses the default channel (what happens
//     when nobody talks to each other on a construction site);
//   - Coordinated: a spectrum plan assigns tenants distinct channels
//     (requires the administrative cooperation the paper says is hard);
//   - Adaptive: each tenant independently senses its collision rate and
//     hops away from bad channels — decentralized, no cooperation needed.
package spectrum

import (
	"fmt"
	"sort"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/sim"
)

// Channels available in the emulated band (802.15.4's 2.4 GHz numbering).
var Channels = []uint8{11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26}

// DefaultChannel is where uncoordinated deployments land.
const DefaultChannel uint8 = 11

// Plan assigns tenants to channels.
type Plan map[string]uint8

// CoordinatedPlan spreads tenants across the band round-robin — the
// outcome of an explicit spectrum agreement between administrations.
func CoordinatedPlan(tenants []string) Plan {
	sorted := append([]string(nil), tenants...)
	sort.Strings(sorted)
	p := make(Plan, len(sorted))
	for i, t := range sorted {
		p[t] = Channels[i%len(Channels)]
	}
	return p
}

// UncoordinatedPlan puts every tenant on the default channel.
func UncoordinatedPlan(tenants []string) Plan {
	p := make(Plan, len(tenants))
	for _, t := range tenants {
		p[t] = DefaultChannel
	}
	return p
}

// ChannelOf returns the tenant's channel under the plan.
func (p Plan) ChannelOf(tenant string) uint8 {
	if ch, ok := p[tenant]; ok {
		return ch
	}
	return DefaultChannel
}

// String renders the plan.
func (p Plan) String() string {
	tenants := make([]string, 0, len(p))
	for t := range p {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	s := ""
	for i, t := range tenants {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:ch%d", t, p[t])
	}
	return s
}

// Retuner is what a hopper adjusts: typically the deployment layer,
// which retunes every node of a tenant.
type Retuner interface {
	RetuneTenant(tenant string, ch uint8)
}

// RetunerFunc adapts a function to Retuner.
type RetunerFunc func(tenant string, ch uint8)

// RetuneTenant implements Retuner.
func (f RetunerFunc) RetuneTenant(tenant string, ch uint8) { f(tenant, ch) }

// HopperConfig tunes the adaptive channel hopper.
type HopperConfig struct {
	// Interval between quality evaluations (default 10 s).
	Interval time.Duration
	// CollisionThreshold is the per-interval collision count above
	// which the tenant hops (default 20).
	CollisionThreshold float64
}

func (c *HopperConfig) applyDefaults() {
	if c.Interval == 0 {
		c.Interval = 10 * time.Second
	}
	if c.CollisionThreshold == 0 {
		c.CollisionThreshold = 20
	}
}

// Hopper is the decentralized adaptive regime: each tenant watches its
// own collision counter and hops pseudo-randomly when the channel turns
// bad. No tenant-to-tenant coordination is required; disjoint channels
// emerge (usually) from local decisions.
type Hopper struct {
	k       *sim.Kernel
	tenant  string
	retuner Retuner
	counter *metrics.Counter
	cfg     HopperConfig

	current  uint8
	lastSeen float64
	rep      *sim.Repeater

	// Hops counts channel changes.
	Hops int
}

// NewHopper creates a hopper for tenant, reading collisions from counter
// (typically the medium's per-tenant collision counter).
func NewHopper(k *sim.Kernel, tenant string, start uint8, counter *metrics.Counter, retuner Retuner, cfg HopperConfig) *Hopper {
	cfg.applyDefaults()
	return &Hopper{
		k:       k,
		tenant:  tenant,
		retuner: retuner,
		counter: counter,
		cfg:     cfg,
		current: start,
	}
}

// Current returns the channel the tenant currently occupies.
func (h *Hopper) Current() uint8 { return h.current }

// Start begins periodic evaluation.
func (h *Hopper) Start() {
	if h.rep != nil {
		return
	}
	h.lastSeen = h.counter.Value()
	h.rep = h.k.Every(h.cfg.Interval, h.cfg.Interval/4, h.evaluate)
}

// Stop halts evaluation.
func (h *Hopper) Stop() {
	if h.rep != nil {
		h.rep.Stop()
		h.rep = nil
	}
}

func (h *Hopper) evaluate() {
	now := h.counter.Value()
	delta := now - h.lastSeen
	h.lastSeen = now
	if delta <= h.cfg.CollisionThreshold {
		return
	}
	// Hop to a pseudo-random other channel.
	next := Channels[h.k.Rand().Intn(len(Channels))]
	for next == h.current {
		next = Channels[h.k.Rand().Intn(len(Channels))]
	}
	h.current = next
	h.Hops++
	h.retuner.RetuneTenant(h.tenant, next)
}
