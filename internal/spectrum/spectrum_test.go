package spectrum

import (
	"testing"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/sim"
)

func TestCoordinatedPlanDistinctChannels(t *testing.T) {
	tenants := []string{"acme", "globex", "initech"}
	p := CoordinatedPlan(tenants)
	seen := map[uint8]bool{}
	for _, tn := range tenants {
		ch := p.ChannelOf(tn)
		if seen[ch] {
			t.Fatalf("channel %d assigned twice", ch)
		}
		seen[ch] = true
	}
	// Deterministic regardless of input order.
	p2 := CoordinatedPlan([]string{"initech", "acme", "globex"})
	for _, tn := range tenants {
		if p.ChannelOf(tn) != p2.ChannelOf(tn) {
			t.Fatal("plan depends on input order")
		}
	}
}

func TestCoordinatedPlanWrapsAroundBand(t *testing.T) {
	var tenants []string
	for i := 0; i < 20; i++ { // more tenants than channels
		tenants = append(tenants, string(rune('a'+i)))
	}
	p := CoordinatedPlan(tenants)
	for _, tn := range tenants {
		ch := p.ChannelOf(tn)
		if ch < 11 || ch > 26 {
			t.Fatalf("channel %d outside band", ch)
		}
	}
}

func TestUncoordinatedPlanCollapsesToDefault(t *testing.T) {
	p := UncoordinatedPlan([]string{"a", "b"})
	if p.ChannelOf("a") != DefaultChannel || p.ChannelOf("b") != DefaultChannel {
		t.Fatal("uncoordinated tenants not on default channel")
	}
	if p.ChannelOf("unknown") != DefaultChannel {
		t.Fatal("unknown tenant not defaulted")
	}
	if len(p.String()) == 0 {
		t.Fatal("empty String()")
	}
}

func TestHopperHopsOnCollisions(t *testing.T) {
	k := sim.New(9)
	var counter metrics.Counter
	retunes := map[string]uint8{}
	h := NewHopper(k, "acme", DefaultChannel, &counter,
		RetunerFunc(func(tn string, ch uint8) { retunes[tn] = ch }),
		HopperConfig{Interval: 10 * time.Second, CollisionThreshold: 5})
	h.Start()
	// Sustained collisions: the counter grows fast.
	k.Every(time.Second, 0, func() { counter.Add(3) })
	k.RunUntil(time.Minute)
	if h.Hops == 0 {
		t.Fatal("hopper never hopped despite collisions")
	}
	if retunes["acme"] != h.Current() {
		t.Fatalf("retuner saw %d, hopper at %d", retunes["acme"], h.Current())
	}
	if h.Current() == DefaultChannel && h.Hops == 1 {
		t.Fatal("hop landed on the same channel")
	}
}

func TestHopperStaysOnQuietChannel(t *testing.T) {
	k := sim.New(10)
	var counter metrics.Counter
	h := NewHopper(k, "acme", 15, &counter,
		RetunerFunc(func(string, uint8) {}),
		HopperConfig{Interval: 10 * time.Second, CollisionThreshold: 5})
	h.Start()
	k.RunUntil(5 * time.Minute)
	if h.Hops != 0 || h.Current() != 15 {
		t.Fatalf("hopper moved without collisions: hops=%d ch=%d", h.Hops, h.Current())
	}
	h.Stop()
	counter.Add(1000)
	k.RunUntil(10 * time.Minute)
	if h.Hops != 0 {
		t.Fatal("stopped hopper hopped")
	}
}
