package gossip

import (
	"encoding/json"
	"testing"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/crdt"
	"iiotds/internal/sim"
)

// counterState wraps a PNCounter as a gossip.State.
type counterState struct {
	c *crdt.PNCounter
}

func (s *counterState) Snapshot() ([]byte, error) { return s.c.Marshal() }
func (s *counterState) Merge(remote []byte) error {
	other, err := crdt.UnmarshalPNCounter(remote)
	if err != nil {
		return err
	}
	s.c.Merge(other)
	return nil
}

func TestEnginesConverge(t *testing.T) {
	k := sim.New(5)
	net := NewNetwork()
	const n = 5
	states := make([]*counterState, n)
	engines := make([]*Engine, n)
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		states[i] = &counterState{c: crdt.NewPNCounter()}
		engines[i] = New(net.Attach(names[i]), clock.Kernel{K: k}, states[i],
			Config{Interval: time.Second, Seed: int64(i + 1)})
		engines[i].Start()
	}
	// Each replica increments locally.
	for i := 0; i < n; i++ {
		states[i].c.Add(crdt.ReplicaID(names[i]), int64(i+1))
	}
	k.RunFor(30 * time.Second)
	want := int64(1 + 2 + 3 + 4 + 5)
	for i, s := range states {
		if got := s.c.Value(); got != want {
			t.Fatalf("replica %d = %d, want %d", i, got, want)
		}
	}
	if engines[0].RoundsRun == 0 || engines[0].BytesSent == 0 {
		t.Fatal("engine stats not recorded")
	}
}

func TestPartitionBlocksThenHealConverges(t *testing.T) {
	k := sim.New(6)
	net := NewNetwork()
	names := []string{"a", "b", "c", "d"}
	states := make([]*counterState, len(names))
	for i, name := range names {
		states[i] = &counterState{c: crdt.NewPNCounter()}
		New(net.Attach(name), clock.Kernel{K: k}, states[i],
			Config{Interval: time.Second, Seed: int64(i + 1)}).Start()
	}
	net.SetPartition([]string{"a", "b"}, []string{"c", "d"})
	states[0].c.Add("a", 10)
	states[2].c.Add("c", 100)
	k.RunFor(20 * time.Second)
	if v := states[1].c.Value(); v != 10 {
		t.Fatalf("same-side replica b = %d, want 10", v)
	}
	if v := states[0].c.Value(); v != 10 {
		t.Fatalf("partition leaked: a = %d", v)
	}
	if net.Dropped == 0 {
		t.Fatal("no messages dropped by partition")
	}
	net.Heal()
	k.RunFor(30 * time.Second)
	for i, s := range states {
		if got := s.c.Value(); got != 110 {
			t.Fatalf("replica %d = %d after heal, want 110", i, got)
		}
	}
}

func TestStopHaltsRounds(t *testing.T) {
	k := sim.New(7)
	net := NewNetwork()
	s := &counterState{c: crdt.NewPNCounter()}
	e := New(net.Attach("a"), clock.Kernel{K: k}, s, Config{Interval: time.Second})
	net.Attach("b").SetReceiver(func(string, []byte) {})
	e.Start()
	k.RunFor(5 * time.Second)
	rounds := e.RoundsRun
	if rounds == 0 {
		t.Fatal("no rounds ran")
	}
	e.Stop()
	k.RunFor(time.Minute)
	if e.RoundsRun != rounds {
		t.Fatal("rounds continued after Stop")
	}
	e.Start() // restart works
	k.RunFor(5 * time.Second)
	if e.RoundsRun == rounds {
		t.Fatal("restart did not resume rounds")
	}
}

func TestMalformedGossipIgnored(t *testing.T) {
	k := sim.New(8)
	net := NewNetwork()
	s := &counterState{c: crdt.NewPNCounter()}
	New(net.Attach("a"), clock.Kernel{K: k}, s, Config{Interval: time.Second}).Start()
	rogue := net.Attach("rogue")
	rogue.SetReceiver(func(string, []byte) {})
	if err := rogue.Send("a", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	// A valid envelope with garbage state must also be harmless.
	env, _ := json.Marshal(envelope{Kind: "push", State: []byte("garbage")})
	if err := rogue.Send("a", env); err != nil {
		t.Fatal(err)
	}
	k.RunFor(5 * time.Second)
	if s.c.Value() != 0 {
		t.Fatal("garbage mutated state")
	}
}

func TestNetworkUnknownPeer(t *testing.T) {
	net := NewNetwork()
	p := net.Attach("a")
	if err := p.Send("ghost", []byte("x")); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	net := NewNetwork()
	net.Attach("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Attach("a")
}

func TestPeersSortedAndExcludesSelf(t *testing.T) {
	net := NewNetwork()
	a := net.Attach("a")
	net.Attach("c")
	net.Attach("b")
	got := a.Peers()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Peers = %v", got)
	}
}
