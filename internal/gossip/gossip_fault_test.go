package gossip

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/fault"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// mediumAdapter lets a fault.Injector drive partitions on the in-memory
// gossip fabric: it implements fault.MediumCtl by translating the
// injector's radio-level operations (link filters over radio.NodeID)
// into Network partition groups over port names. Node i maps to
// names[i]. Link PRR degradation has no analogue on the lossless fabric
// and is ignored.
type mediumAdapter struct {
	net   *Network
	names []string
	down  map[radio.NodeID]bool
	filt  radio.LinkFilter
}

func newMediumAdapter(net *Network, names []string) *mediumAdapter {
	return &mediumAdapter{net: net, names: names, down: make(map[radio.NodeID]bool)}
}

func (m *mediumAdapter) SetDown(id radio.NodeID, down bool) {
	m.down[id] = down
	m.apply()
}

func (m *mediumAdapter) SetLinkFilter(f radio.LinkFilter) {
	m.filt = f
	m.apply()
}

func (m *mediumAdapter) SetLinkPRR(from, to radio.NodeID, prr float64) {}

// apply recomputes the Network's partition groups from the current
// filter and down set. The injector's filters are group-membership
// predicates (symmetric and transitive), so connected components are
// exact; a down node is isolated in a singleton group.
func (m *mediumAdapter) apply() {
	anyDown := false
	for _, d := range m.down {
		anyDown = anyDown || d
	}
	if m.filt == nil && !anyDown {
		m.net.Heal()
		return
	}
	connected := func(a, b radio.NodeID) bool {
		if m.down[a] || m.down[b] {
			return false
		}
		return m.filt == nil || (m.filt(a, b) && m.filt(b, a))
	}
	var groups [][]string
	assigned := make([]bool, len(m.names))
	for i := range m.names {
		if assigned[i] {
			continue
		}
		group := []string{m.names[i]}
		assigned[i] = true
		for j := i + 1; j < len(m.names); j++ {
			if !assigned[j] && connected(radio.NodeID(i), radio.NodeID(j)) {
				group = append(group, m.names[j])
				assigned[j] = true
			}
		}
		groups = append(groups, group)
	}
	m.net.SetPartition(groups...)
}

var _ fault.MediumCtl = (*mediumAdapter)(nil)

// logState is a grow-only per-origin append-log CRDT that counts every
// element it adopts from remote snapshots, so a duplicate delivery
// (re-applying an element that was already merged) is observable as
// adopted > written.
type logState struct {
	logs    map[string][]int
	adopted int
}

func newLogState() *logState { return &logState{logs: make(map[string][]int)} }

func (s *logState) write(origin string, v int) { s.logs[origin] = append(s.logs[origin], v) }

func (s *logState) Snapshot() ([]byte, error) { return json.Marshal(s.logs) }

func (s *logState) Merge(remote []byte) error {
	var other map[string][]int
	if err := json.Unmarshal(remote, &other); err != nil {
		return err
	}
	for origin, log := range other {
		if local := s.logs[origin]; len(log) > len(local) {
			s.logs[origin] = append(local, log[len(local):]...)
			s.adopted += len(log) - len(local)
		}
	}
	return nil
}

// TestInjectorPartitionHealGossip drives a gossip partition through
// fault.Injector (the same injector the deployment layer uses) and
// checks that anti-entropy stalls across the cut, resumes after the
// scheduled heal, and delivers every update exactly once.
func TestInjectorPartitionHealGossip(t *testing.T) {
	k := sim.New(11)
	net := NewNetwork()
	names := []string{"a", "b", "c", "d"}
	states := make([]*logState, len(names))
	engines := make([]*Engine, len(names))
	for i, name := range names {
		states[i] = newLogState()
		engines[i] = New(net.Attach(name), clock.Kernel{K: k}, states[i],
			Config{Interval: time.Second, Seed: int64(i + 1)})
		engines[i].Start()
	}
	inj := fault.NewInjector(k, newMediumAdapter(net, names), nil, nil)

	// Cut {a,b} | {c,d} at 5s, write on both sides at 6s, heal at 30s.
	inj.PartitionAt(5*time.Second, []radio.NodeID{0, 1}, []radio.NodeID{2, 3})
	k.At(sim.Time(6*time.Second), func() {
		states[0].write("a", 1)
		states[2].write("c", 100)
	})
	inj.HealAt(30 * time.Second)

	k.RunFor(20 * time.Second) // t = 20s: partitioned
	if !inj.Partitioned() {
		t.Fatal("injector reports no partition")
	}
	if got := len(states[1].logs["a"]); got != 1 {
		t.Fatalf("same-side replica b missing a's write: %d", got)
	}
	if got := len(states[1].logs["c"]); got != 0 {
		t.Fatalf("partition leaked c's write to b: %d", got)
	}
	if net.Dropped == 0 {
		t.Fatal("no gossip dropped by the injected partition")
	}
	stalled := engines[0].RoundsRun
	if stalled == 0 {
		t.Fatal("no rounds ran before the cut")
	}

	k.RunFor(40 * time.Second) // t = 60s: healed at 30s, anti-entropy resumed
	if inj.Partitioned() {
		t.Fatal("injector still reports a partition after HealAt")
	}
	if engines[0].RoundsRun <= stalled {
		t.Fatal("anti-entropy did not resume after heal")
	}
	for i, s := range states {
		if len(s.logs["a"]) != 1 || len(s.logs["c"]) != 1 {
			t.Fatalf("replica %s did not converge: %v", names[i], s.logs)
		}
		// Exactly-once: each replica adopts each foreign write once —
		// repeated gossip rounds must not re-apply merged elements.
		want := 2
		if i == 0 || i == 2 {
			want = 1 // writers adopt only the other side's element
		}
		if s.adopted != want {
			t.Fatalf("replica %s adopted %d elements, want %d (duplicate delivery)",
				names[i], s.adopted, want)
		}
	}
}

// TestInjectorCrashIsolatesReplica maps the injector's node-down fault
// onto the fabric: a crashed replica stops receiving gossip, and a
// recovered one catches up.
func TestInjectorCrashIsolatesReplica(t *testing.T) {
	k := sim.New(12)
	net := NewNetwork()
	names := []string{"a", "b", "c"}
	states := make([]*logState, len(names))
	for i, name := range names {
		states[i] = newLogState()
		New(net.Attach(name), clock.Kernel{K: k}, states[i],
			Config{Interval: time.Second, Seed: int64(i + 1)}).Start()
	}
	inj := fault.NewInjector(k, newMediumAdapter(net, names), nil, nil)

	inj.CrashAt(2*time.Second, 2) // c goes down
	k.At(sim.Time(3*time.Second), func() { states[0].write("a", 7) })
	k.RunFor(15 * time.Second)
	if got := len(states[2].logs["a"]); got != 0 {
		t.Fatalf("crashed replica c received gossip: %d", got)
	}
	if got := len(states[1].logs["a"]); got != 1 {
		t.Fatalf("healthy replica b missed the write: %d", got)
	}
	inj.Recover(2)
	k.RunFor(15 * time.Second)
	if got := len(states[2].logs["a"]); got != 1 {
		t.Fatalf("recovered replica c did not catch up: %d", got)
	}
}

// recordingMessenger captures the exact peer-selection sequence an
// engine produces, with no inbound traffic to perturb the RNG.
type recordingMessenger struct {
	self    string
	peers   []string
	targets []string
}

func (m *recordingMessenger) Send(peer string, data []byte) error {
	m.targets = append(m.targets, peer)
	return nil
}
func (m *recordingMessenger) SetReceiver(fn func(from string, data []byte)) {}
func (m *recordingMessenger) Self() string                                  { return m.self }
func (m *recordingMessenger) Peers() []string {
	return append([]string(nil), m.peers...)
}

// peerSequence runs one engine for rounds seconds of virtual time and
// returns the peers it pushed to, in order.
func peerSequence(seed int64, secs int) []string {
	k := sim.New(seed + 99)
	m := &recordingMessenger{self: "a", peers: []string{"b", "c", "d", "e"}}
	New(m, clock.Kernel{K: k}, newLogState(), Config{Interval: time.Second, Seed: seed}).Start()
	k.RunFor(time.Duration(secs) * time.Second)
	return m.targets
}

// TestPeerSelectionDeterministic pins the peer-selection stream at two
// seeds: the sequence is a function of (seed, round count) alone, so
// any change to the RNG draw order — jitter first, then shuffle — or to
// the shuffle itself shows up as a diff against these golden sequences.
// Regenerate with: go test -run TestPeerSelectionDeterministic -v
// (the failure message prints the observed sequence).
func TestPeerSelectionDeterministic(t *testing.T) {
	golden := map[int64][]string{
		1:  nil, // filled below from pinned literals
		42: nil,
	}
	golden[1] = goldenSeed1
	golden[42] = goldenSeed42
	for seed, want := range golden {
		got := peerSequence(seed, 12)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d peer sequence drifted:\n got  %s\n want %s",
				seed, fmt.Sprintf("%q", got), fmt.Sprintf("%q", want))
		}
		again := peerSequence(seed, 12)
		if !reflect.DeepEqual(got, again) {
			t.Errorf("seed %d not reproducible across runs", seed)
		}
	}
}

// Pinned peer-selection sequences (12 virtual seconds, 4 peers,
// Fanout 1): the regression contract for the engine's RNG draw order.
var goldenSeed1 = []string{"d", "c", "b", "e", "e", "b", "e", "e", "c", "c", "e"}

var goldenSeed42 = []string{"d", "e", "c", "d", "b", "e", "c", "e", "d", "d", "c"}
