// Package gossip provides the anti-entropy replication engine that keeps
// CRDT state converging across replicas: periodic push-pull state
// exchange with randomly chosen peers (paper refs [24,25]). It is the
// availability mechanism §V-C calls for — replicas accept updates locally
// at all times and reconcile when connectivity allows.
package gossip

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/netbuf"
)

// Messenger moves opaque gossip payloads between named peers. The
// in-memory Network below implements it with partition injection; the
// emulation wires it over CoAP/RPL.
type Messenger interface {
	// Send delivers data to peer (best effort).
	Send(peer string, data []byte) error
	// SetReceiver installs the inbound callback; call once.
	SetReceiver(fn func(from string, data []byte))
	// Self returns this node's name.
	Self() string
	// Peers returns the other replicas' names.
	Peers() []string
}

// State is the replicated object the engine synchronizes: a state-based
// CRDT snapshot/merge pair.
type State interface {
	// Snapshot serializes the current local state.
	Snapshot() ([]byte, error)
	// Merge folds a remote snapshot into local state.
	Merge(remote []byte) error
}

// Config tunes the engine.
type Config struct {
	// Interval between gossip rounds (default 1 s).
	Interval time.Duration
	// Fanout is how many peers are contacted per round (default 1).
	Fanout int
	// Seed seeds peer selection (default 1).
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.Fanout == 0 {
		c.Fanout = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// envelope is the wire format.
type envelope struct {
	Kind  string `json:"kind"` // "push" or "reply"
	State []byte `json:"state"`
}

// Engine runs anti-entropy rounds for one replica.
type Engine struct {
	msg   Messenger
	sched clock.Scheduler
	state State
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	stop    clock.CancelFunc
	running bool

	// RoundsRun and BytesSent instrument convergence cost (E9).
	RoundsRun int
	BytesSent int
}

// New creates an engine; call Start to begin rounds.
func New(msg Messenger, sched clock.Scheduler, state State, cfg Config) *Engine {
	cfg.applyDefaults()
	e := &Engine{
		msg:   msg,
		sched: sched,
		state: state,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	msg.SetReceiver(e.onMessage)
	return e
}

// Start begins periodic rounds.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return
	}
	e.running = true
	e.armLocked()
}

func (e *Engine) armLocked() {
	// Jitter each round ±25% so replica schedules do not lock step.
	d := e.cfg.Interval
	jitter := time.Duration(e.rng.Int63n(int64(d)/2+1)) - d/4
	e.stop = e.sched.Schedule(d+jitter, func() {
		e.round()
		e.mu.Lock()
		if e.running {
			e.armLocked()
		}
		e.mu.Unlock()
	})
}

// Stop halts the engine.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.running = false
	if e.stop != nil {
		e.stop()
	}
}

// round performs one push-pull exchange with Fanout random peers.
func (e *Engine) round() {
	peers := e.msg.Peers()
	if len(peers) == 0 {
		return
	}
	e.mu.Lock()
	e.RoundsRun++
	e.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	n := e.cfg.Fanout
	if n > len(peers) {
		n = len(peers)
	}
	targets := append([]string(nil), peers[:n]...)
	e.mu.Unlock()

	snap, err := e.state.Snapshot()
	if err != nil {
		return
	}
	data, err := json.Marshal(envelope{Kind: "push", State: snap})
	if err != nil {
		return
	}
	for _, p := range targets {
		e.mu.Lock()
		e.BytesSent += len(data)
		e.mu.Unlock()
		_ = e.msg.Send(p, data)
	}
}

func (e *Engine) onMessage(from string, data []byte) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return
	}
	_ = e.state.Merge(env.State)
	if env.Kind == "push" {
		// Pull half: reply with our (merged) state.
		snap, err := e.state.Snapshot()
		if err != nil {
			return
		}
		reply, err := json.Marshal(envelope{Kind: "reply", State: snap})
		if err != nil {
			return
		}
		e.mu.Lock()
		e.BytesSent += len(reply)
		e.mu.Unlock()
		_ = e.msg.Send(from, reply)
	}
}

// --- in-memory partitionable network ---

// Network is an in-memory Messenger fabric with partition injection,
// used by tests and the CAP experiment (E9).
type Network struct {
	mu        sync.Mutex
	ports     map[string]*Port
	partition map[string]int // peer -> partition group; absent = group 0
	// Dropped counts messages suppressed by partitions.
	Dropped int
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{ports: make(map[string]*Port), partition: make(map[string]int)}
}

// Attach registers a peer.
func (n *Network) Attach(name string) *Port {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.ports[name]; dup {
		panic(fmt.Sprintf("gossip: peer %q attached twice", name))
	}
	p := &Port{net: n, name: name}
	n.ports[name] = p
	return p
}

// SetPartition places each listed group of peers in its own partition;
// peers not listed go to group 0. Passing no groups heals the network.
func (n *Network) SetPartition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
	for i, g := range groups {
		for _, name := range g {
			n.partition[name] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.SetPartition() }

func (n *Network) send(from, to string, data []byte) error {
	n.mu.Lock()
	if n.partition[from] != n.partition[to] {
		n.Dropped++
		n.mu.Unlock()
		return nil // silently lost, like a real partition
	}
	dst := n.ports[to]
	n.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("gossip: unknown peer %q", to)
	}
	dst.mu.Lock()
	recv := dst.recv
	dst.mu.Unlock()
	if recv != nil {
		recv(from, netbuf.CloneBytes(data))
	}
	return nil
}

// Port is one peer's attachment to a Network.
type Port struct {
	net  *Network
	name string

	mu   sync.Mutex
	recv func(from string, data []byte)
}

// Send implements Messenger.
func (p *Port) Send(peer string, data []byte) error { return p.net.send(p.name, peer, data) }

// SetReceiver implements Messenger.
func (p *Port) SetReceiver(fn func(from string, data []byte)) {
	p.mu.Lock()
	p.recv = fn
	p.mu.Unlock()
}

// Self implements Messenger.
func (p *Port) Self() string { return p.name }

// Peers implements Messenger.
func (p *Port) Peers() []string {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	out := make([]string, 0, len(p.net.ports)-1)
	for name := range p.net.ports {
		if name != p.name {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

var _ Messenger = (*Port)(nil)
