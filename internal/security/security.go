// Package security implements the link/application-layer protections
// §V-E observes are specified but rarely deployed on constrained devices:
// pre-shared-key session establishment, AEAD frame protection, and
// anti-replay windows. The experiment E11 quantifies exactly what the
// paper says operators avoid paying: bytes on air, latency, and energy.
//
// Substitution note (DESIGN.md): 802.15.4 security suites use AES-CCM;
// the Go standard library ships AES-GCM, an AEAD of the same family and
// interface (nonce, tag, AAD). Framing overhead is configured to match
// CCM-8-class framing as closely as GCM allows (12-byte minimum tag).
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"iiotds/internal/netbuf"
)

// Errors returned by Open.
var (
	ErrAuth     = errors.New("security: authentication failed")
	ErrReplay   = errors.New("security: replayed frame")
	ErrTooShort = errors.New("security: frame too short")
	ErrNoKey    = errors.New("security: unknown key")
)

// tagSize is the AEAD tag length (GCM's minimum, closest to CCM-8-class
// framing available in the stdlib).
const tagSize = 12

// counterLen is the explicit per-frame counter (builds the nonce and
// drives anti-replay).
const counterLen = 8

// headerLen is keyID(1) + counter(8).
const headerLen = 1 + counterLen

// Overhead returns the per-frame byte cost of protection.
func Overhead() int { return headerLen + tagSize }

// KeyStore holds symmetric keys by key ID.
type KeyStore struct {
	mu   sync.Mutex
	keys map[uint8][]byte
}

// NewKeyStore returns an empty key store.
func NewKeyStore() *KeyStore {
	return &KeyStore{keys: make(map[uint8][]byte)}
}

// Set installs a 16- or 32-byte AES key under id.
func (s *KeyStore) Set(id uint8, key []byte) error {
	if len(key) != 16 && len(key) != 32 {
		return fmt.Errorf("security: key must be 16 or 32 bytes, got %d", len(key))
	}
	s.mu.Lock()
	s.keys[id] = netbuf.CloneBytes(key)
	s.mu.Unlock()
	return nil
}

// Get returns the key under id.
func (s *KeyStore) Get(id uint8) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoKey, id)
	}
	return netbuf.CloneBytes(k), nil
}

// ReplayWindow is a sliding-window anti-replay filter (RFC 6479 style):
// it accepts each counter at most once and rejects counters older than
// the window.
type ReplayWindow struct {
	top    uint64 // highest counter accepted
	bitmap uint64 // bit i set = (top - i) seen
	seeded bool
}

// windowSize is how far behind the highest counter a frame may trail.
const windowSize = 64

// Check reports whether ctr is fresh, and records it if so.
func (w *ReplayWindow) Check(ctr uint64) bool {
	if !w.seeded {
		w.seeded = true
		w.top = ctr
		w.bitmap = 1
		return true
	}
	switch {
	case ctr > w.top:
		shift := ctr - w.top
		if shift >= windowSize {
			w.bitmap = 1
		} else {
			w.bitmap = w.bitmap<<shift | 1
		}
		w.top = ctr
		return true
	case w.top-ctr >= windowSize:
		return false // too old to validate
	default:
		bit := uint64(1) << (w.top - ctr)
		if w.bitmap&bit != 0 {
			return false // already seen
		}
		w.bitmap |= bit
		return true
	}
}

// Channel protects frames in one direction of a session. Create one per
// direction with the same session key.
type Channel struct {
	mu     sync.Mutex
	keyID  uint8
	aead   cipher.AEAD
	ctr    uint64
	replay ReplayWindow
	nbuf   [12]byte // nonce scratch for the in-place buffer paths

	// SealedFrames / RejectedFrames instrument E11.
	SealedFrames   uint64
	RejectedFrames uint64
}

// NewChannel builds a channel from the key stored under keyID.
func NewChannel(ks *KeyStore, keyID uint8) (*Channel, error) {
	key, err := ks.Get(keyID)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	aead, err := cipher.NewGCMWithTagSize(block, tagSize)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return &Channel{keyID: keyID, aead: aead}, nil
}

// nonce builds the 12-byte nonce from the frame counter.
func (c *Channel) nonce(ctr uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], ctr)
	return n
}

// Seal protects plaintext with optional additional authenticated data,
// returning the on-air frame: [keyID][ctr:8][ciphertext||tag].
func (c *Channel) Seal(plaintext, aad []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctr++
	c.SealedFrames++
	out := make([]byte, headerLen, headerLen+len(plaintext)+tagSize)
	out[0] = c.keyID
	binary.BigEndian.PutUint64(out[1:headerLen], c.ctr)
	return c.aead.Seal(out, c.nonce(c.ctr), plaintext, aad)
}

// SealBuffer protects b's contents in place: the plaintext is encrypted
// where it sits, the tag grows into the tailroom, and the
// [keyID][ctr:8] header goes into the headroom. The resulting frame is
// byte-identical to Seal's output with no intermediate copy.
func (c *Channel) SealBuffer(b *netbuf.Buffer, aad []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctr++
	c.SealedFrames++
	// Reserve the tag space first: Extend may reallocate, so the
	// plaintext view is taken after.
	n := b.Len()
	b.Extend(tagSize)
	pt := b.Bytes()[:n]
	binary.BigEndian.PutUint64(c.nbuf[4:], c.ctr)
	c.aead.Seal(pt[:0], c.nbuf[:], pt, aad)
	h := b.Prepend(headerLen)
	h[0] = c.keyID
	binary.BigEndian.PutUint64(h[1:headerLen], c.ctr)
}

// OpenBuffer verifies and decrypts a sealed frame in place, trimming
// the header and tag so b holds exactly the plaintext on success. On
// error b's contents are undefined and the caller should Release it.
func (c *Channel) OpenBuffer(b *netbuf.Buffer, aad []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b.Len() < headerLen+tagSize {
		c.RejectedFrames++
		return ErrTooShort
	}
	frame := b.Bytes()
	if frame[0] != c.keyID {
		c.RejectedFrames++
		return fmt.Errorf("%w: id %d", ErrNoKey, frame[0])
	}
	ctr := binary.BigEndian.Uint64(frame[1:headerLen])
	b.TrimFront(headerLen)
	ct := b.Bytes()
	binary.BigEndian.PutUint64(c.nbuf[4:], ctr)
	plain, err := c.aead.Open(ct[:0], c.nbuf[:], ct, aad)
	if err != nil {
		c.RejectedFrames++
		return ErrAuth
	}
	b.Truncate(len(plain))
	// Replay check after authentication: only genuine frames may
	// advance the window.
	if !c.replay.Check(ctr) {
		c.RejectedFrames++
		return ErrReplay
	}
	return nil
}

// Open verifies and decrypts a frame, enforcing key ID, authenticity,
// and replay freshness.
func (c *Channel) Open(frame, aad []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(frame) < headerLen+tagSize {
		c.RejectedFrames++
		return nil, ErrTooShort
	}
	if frame[0] != c.keyID {
		c.RejectedFrames++
		return nil, fmt.Errorf("%w: id %d", ErrNoKey, frame[0])
	}
	ctr := binary.BigEndian.Uint64(frame[1:headerLen])
	plain, err := c.aead.Open(nil, c.nonce(ctr), frame[headerLen:], aad)
	if err != nil {
		c.RejectedFrames++
		return nil, ErrAuth
	}
	// Replay check after authentication: only genuine frames may
	// advance the window.
	if !c.replay.Check(ctr) {
		c.RejectedFrames++
		return nil, ErrReplay
	}
	return plain, nil
}

// DeriveSessionKey computes a per-session key from a pre-shared key and
// both parties' nonces (HKDF-style single HMAC-SHA256 extract+expand,
// truncated to 16 bytes for AES-128-class devices).
func DeriveSessionKey(psk, nonceA, nonceB []byte) []byte {
	mac := hmac.New(sha256.New, psk)
	mac.Write([]byte("iiotds-session-v1"))
	mac.Write(nonceA)
	mac.Write(nonceB)
	return mac.Sum(nil)[:16]
}

// Handshake is the two-message PSK session establishment: the initiator
// sends nonceA, the responder replies with nonceB and both derive the
// session key. It is deliberately minimal — the cost being measured, not
// the ceremony.
type Handshake struct {
	psk    []byte
	nonceA []byte
	nonceB []byte
}

// NewHandshake starts a handshake with the given pre-shared key.
func NewHandshake(psk []byte) *Handshake { return &Handshake{psk: netbuf.CloneBytes(psk)} }

// Initiate produces message 1 (the initiator nonce).
func (h *Handshake) Initiate(nonceA []byte) []byte {
	h.nonceA = netbuf.CloneBytes(nonceA)
	return h.nonceA
}

// Respond consumes message 1 and produces message 2; the responder's
// session key is ready afterwards.
func (h *Handshake) Respond(msg1, nonceB []byte) (msg2 []byte, session []byte) {
	h.nonceA = netbuf.CloneBytes(msg1)
	h.nonceB = netbuf.CloneBytes(nonceB)
	return h.nonceB, DeriveSessionKey(h.psk, h.nonceA, h.nonceB)
}

// Complete consumes message 2 on the initiator side and returns the
// session key.
func (h *Handshake) Complete(msg2 []byte) []byte {
	h.nonceB = netbuf.CloneBytes(msg2)
	return DeriveSessionKey(h.psk, h.nonceA, h.nonceB)
}
