package security

import (
	"bytes"
	"testing"
	"testing/quick"

	"iiotds/internal/netbuf"
)

func pair(t *testing.T) (*Channel, *Channel) {
	t.Helper()
	ks := NewKeyStore()
	if err := ks.Set(1, bytes.Repeat([]byte{7}, 16)); err != nil {
		t.Fatal(err)
	}
	tx, err := NewChannel(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewChannel(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestSealOpenRoundTrip(t *testing.T) {
	tx, rx := pair(t)
	frame := tx.Seal([]byte("temp=21.5"), []byte("hdr"))
	got, err := rx.Open(frame, []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "temp=21.5" {
		t.Fatalf("got %q", got)
	}
	if tx.SealedFrames != 1 {
		t.Fatalf("SealedFrames = %d", tx.SealedFrames)
	}
}

func TestOverheadIsExact(t *testing.T) {
	tx, _ := pair(t)
	pt := []byte("0123456789")
	frame := tx.Seal(pt, nil)
	if len(frame)-len(pt) != Overhead() {
		t.Fatalf("overhead = %d, want %d", len(frame)-len(pt), Overhead())
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	tx, rx := pair(t)
	frame := tx.Seal([]byte("valve=open"), nil)
	for _, idx := range []int{0, 5, headerLen, len(frame) - 1} {
		tampered := append([]byte(nil), frame...)
		tampered[idx] ^= 0x01
		if _, err := rx.Open(tampered, nil); err == nil {
			t.Fatalf("tampered byte %d accepted", idx)
		}
	}
	// The untampered frame still opens (window not poisoned).
	if _, err := rx.Open(frame, nil); err != nil {
		t.Fatalf("genuine frame rejected after tamper attempts: %v", err)
	}
	if rx.RejectedFrames == 0 {
		t.Fatal("rejections not counted")
	}
}

func TestWrongAADRejected(t *testing.T) {
	tx, rx := pair(t)
	frame := tx.Seal([]byte("x"), []byte("route=a"))
	if _, err := rx.Open(frame, []byte("route=b")); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestReplayRejected(t *testing.T) {
	tx, rx := pair(t)
	frame := tx.Seal([]byte("cmd"), nil)
	if _, err := rx.Open(frame, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(frame, nil); err != ErrReplay {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestOutOfOrderWithinWindowAccepted(t *testing.T) {
	tx, rx := pair(t)
	f1 := tx.Seal([]byte("1"), nil)
	f2 := tx.Seal([]byte("2"), nil)
	f3 := tx.Seal([]byte("3"), nil)
	for _, f := range [][]byte{f3, f1, f2} { // reordered
		if _, err := rx.Open(f, nil); err != nil {
			t.Fatalf("in-window reorder rejected: %v", err)
		}
	}
	// But replaying any of them still fails.
	if _, err := rx.Open(f1, nil); err != ErrReplay {
		t.Fatalf("replay after reorder err = %v", err)
	}
}

func TestAncientFrameRejected(t *testing.T) {
	tx, rx := pair(t)
	old := tx.Seal([]byte("old"), nil)
	var last []byte
	for i := 0; i < windowSize+8; i++ {
		last = tx.Seal([]byte("new"), nil)
	}
	if _, err := rx.Open(last, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Open(old, nil); err != ErrReplay {
		t.Fatalf("ancient frame err = %v, want ErrReplay", err)
	}
}

func TestReplayWindowUnit(t *testing.T) {
	var w ReplayWindow
	if !w.Check(100) {
		t.Fatal("first counter rejected")
	}
	if w.Check(100) {
		t.Fatal("duplicate accepted")
	}
	if !w.Check(99) || !w.Check(101) || !w.Check(40) {
		t.Fatal("in-window counters rejected")
	}
	if w.Check(99) {
		t.Fatal("duplicate 99 accepted")
	}
	if w.Check(101 - windowSize) {
		t.Fatal("out-of-window counter accepted")
	}
	// Large jump resets the bitmap.
	if !w.Check(10_000) || w.Check(10_000) {
		t.Fatal("jump handling wrong")
	}
}

func TestShortAndWrongKeyFrames(t *testing.T) {
	tx, rx := pair(t)
	if _, err := rx.Open([]byte{1, 2, 3}, nil); err != ErrTooShort {
		t.Fatalf("short err = %v", err)
	}
	frame := tx.Seal([]byte("x"), nil)
	frame[0] = 9 // unknown key ID
	if _, err := rx.Open(frame, nil); err == nil {
		t.Fatal("wrong key ID accepted")
	}
}

func TestKeyStoreValidation(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.Set(1, []byte("short")); err == nil {
		t.Fatal("bad key length accepted")
	}
	if _, err := ks.Get(42); err == nil {
		t.Fatal("missing key returned")
	}
	if err := ks.Set(2, bytes.Repeat([]byte{1}, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewChannel(ks, 2); err != nil {
		t.Fatalf("AES-256 channel: %v", err)
	}
}

func TestHandshakeDerivesSameKey(t *testing.T) {
	psk := bytes.Repeat([]byte{0xAA}, 16)
	init := NewHandshake(psk)
	resp := NewHandshake(psk)
	msg1 := init.Initiate([]byte("nonce-A"))
	msg2, respKey := resp.Respond(msg1, []byte("nonce-B"))
	initKey := init.Complete(msg2)
	if !bytes.Equal(initKey, respKey) {
		t.Fatal("handshake keys differ")
	}
	if len(initKey) != 16 {
		t.Fatalf("key length = %d", len(initKey))
	}
	// Different nonces give different keys.
	other := DeriveSessionKey(psk, []byte("nonce-X"), []byte("nonce-B"))
	if bytes.Equal(other, initKey) {
		t.Fatal("nonce change did not change key")
	}
	// Different PSK gives different keys.
	if bytes.Equal(DeriveSessionKey([]byte("wrong"), []byte("nonce-A"), []byte("nonce-B")), initKey) {
		t.Fatal("psk change did not change key")
	}
}

func TestEndToEndWithDerivedKey(t *testing.T) {
	psk := bytes.Repeat([]byte{3}, 16)
	a, b := NewHandshake(psk), NewHandshake(psk)
	m1 := a.Initiate([]byte("na"))
	m2, kb := b.Respond(m1, []byte("nb"))
	ka := a.Complete(m2)
	ks := NewKeyStore()
	if err := ks.Set(5, ka); err != nil {
		t.Fatal(err)
	}
	ks2 := NewKeyStore()
	if err := ks2.Set(5, kb); err != nil {
		t.Fatal(err)
	}
	tx, _ := NewChannel(ks, 5)
	rx, _ := NewChannel(ks2, 5)
	got, err := rx.Open(tx.Seal([]byte("secured"), nil), nil)
	if err != nil || string(got) != "secured" {
		t.Fatalf("e2e: %v %q", err, got)
	}
}

func TestPropertySealOpenAnyPayload(t *testing.T) {
	tx, rx := pair(t)
	f := func(payload, aad []byte) bool {
		frame := tx.Seal(payload, aad)
		got, err := rx.Open(frame, aad)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSealBufferMatchesSeal pins the in-place buffer path to the slice
// path byte for byte: two channels with the same key and counter state
// must produce identical on-air frames, and OpenBuffer must recover the
// plaintext in place (header and tag trimmed).
func TestSealBufferMatchesSeal(t *testing.T) {
	txA, _ := pair(t)
	txB, rx := pair(t)
	pool := netbuf.NewPool()
	pool.SetPoison(true)
	for i := 0; i < 5; i++ {
		pt := []byte("reading-21.5-round-" + string(rune('a'+i)))
		aad := []byte{byte(i)}
		want := txA.Seal(pt, aad)

		b := pool.Get()
		b.Append(pt)
		txB.SealBuffer(b, aad)
		if !bytes.Equal(b.Bytes(), want) {
			t.Fatalf("round %d: SealBuffer %x != Seal %x", i, b.Bytes(), want)
		}

		if err := rx.OpenBuffer(b, aad); err != nil {
			t.Fatalf("round %d: OpenBuffer: %v", i, err)
		}
		if !bytes.Equal(b.Bytes(), pt) {
			t.Fatalf("round %d: OpenBuffer left %x, want %x", i, b.Bytes(), pt)
		}
		b.Release()
	}
}

// TestOpenBufferRejections mirrors Open's error contract on the in-place
// path: short frames, wrong key IDs, tampered bytes, and replays.
func TestOpenBufferRejections(t *testing.T) {
	tx, rx := pair(t)
	pool := netbuf.NewPool()

	short := pool.Get()
	short.Append([]byte{1, 2, 3})
	if err := rx.OpenBuffer(short, nil); err != ErrTooShort {
		t.Fatalf("short frame: %v", err)
	}
	short.Release()

	mk := func(pt []byte) *netbuf.Buffer {
		b := pool.Get()
		b.Append(pt)
		tx.SealBuffer(b, nil)
		return b
	}

	wrong := mk([]byte("x"))
	wrong.Bytes()[0] ^= 0xFF // wrong key ID
	if err := rx.OpenBuffer(wrong, nil); err == nil {
		t.Fatal("wrong key ID accepted")
	}
	wrong.Release()

	tampered := mk([]byte("y"))
	tampered.Bytes()[tampered.Len()-1] ^= 1
	if err := rx.OpenBuffer(tampered, nil); err != ErrAuth {
		t.Fatalf("tampered frame: %v", err)
	}
	tampered.Release()

	fresh := mk([]byte("z"))
	replay := fresh.Clone()
	if err := rx.OpenBuffer(fresh, nil); err != nil {
		t.Fatal(err)
	}
	fresh.Release()
	if err := rx.OpenBuffer(replay, nil); err != ErrReplay {
		t.Fatalf("replayed frame: %v", err)
	}
	replay.Release()

	if rx.RejectedFrames != 4 {
		t.Fatalf("RejectedFrames = %d, want 4", rx.RejectedFrames)
	}
}

// TestRebootWithOldKeyRejectedAsReplay pins the hazard that makes re-keying
// after a crash mandatory: a rebooted node loses its send counter (a fresh
// Channel starts at zero) while the peer's ReplayWindow survives, so every
// frame the rebooted node seals under the old key reuses counters the peer
// has already accepted and is rejected with ErrReplay.
func TestRebootWithOldKeyRejectedAsReplay(t *testing.T) {
	ks := NewKeyStore()
	if err := ks.Set(1, bytes.Repeat([]byte{7}, 16)); err != nil {
		t.Fatal(err)
	}
	tx, _ := NewChannel(ks, 1)
	rx, _ := NewChannel(ks, 1)

	// Pre-crash traffic advances both the sender counter and the peer's
	// replay window.
	for i := 0; i < 5; i++ {
		if _, err := rx.Open(tx.Seal([]byte("pre"), nil), nil); err != nil {
			t.Fatalf("pre-crash frame %d: %v", i, err)
		}
	}

	// Reboot: RAM state (the counter) is lost, the provisioned key is not.
	rebooted, _ := NewChannel(ks, 1)
	for i := 0; i < 5; i++ {
		if _, err := rx.Open(rebooted.Seal([]byte("post"), nil), nil); err != ErrReplay {
			t.Fatalf("post-reboot frame %d with stale key: err = %v, want ErrReplay", i, err)
		}
	}
}

// TestRekeyAfterRebootAccepted is the E11 recovery path: after a reboot the
// node runs a fresh handshake with new nonces, both sides derive a new
// session key and build new Channels, and the peer accepts the rebooted
// node's zeroed-counter traffic because its replay window is fresh too.
func TestRekeyAfterRebootAccepted(t *testing.T) {
	psk := bytes.Repeat([]byte{0x42}, 16)

	// Session 1: normal operation before the crash.
	a1, b1 := NewHandshake(psk), NewHandshake(psk)
	m2, kb1 := b1.Respond(a1.Initiate([]byte("boot-1-a")), []byte("boot-1-b"))
	ka1 := a1.Complete(m2)
	ksA, ksB := NewKeyStore(), NewKeyStore()
	if err := ksA.Set(1, ka1); err != nil {
		t.Fatal(err)
	}
	if err := ksB.Set(1, kb1); err != nil {
		t.Fatal(err)
	}
	tx1, _ := NewChannel(ksA, 1)
	rx1, _ := NewChannel(ksB, 1)
	for i := 0; i < 5; i++ {
		if _, err := rx1.Open(tx1.Seal([]byte("pre"), nil), nil); err != nil {
			t.Fatalf("session-1 frame %d: %v", i, err)
		}
	}

	// Node A crashes and reboots. Session 2: fresh handshake with new
	// nonces yields a different key, so the peer installs a new Channel
	// with a fresh replay window.
	a2, b2 := NewHandshake(psk), NewHandshake(psk)
	m2b, kb2 := b2.Respond(a2.Initiate([]byte("boot-2-a")), []byte("boot-2-b"))
	ka2 := a2.Complete(m2b)
	if bytes.Equal(ka2, ka1) {
		t.Fatal("re-key produced the same session key")
	}
	if err := ksA.Set(1, ka2); err != nil {
		t.Fatal(err)
	}
	if err := ksB.Set(1, kb2); err != nil {
		t.Fatal(err)
	}
	tx2, _ := NewChannel(ksA, 1)
	rx2, _ := NewChannel(ksB, 1)
	for i := 0; i < 5; i++ {
		got, err := rx2.Open(tx2.Seal([]byte("post"), nil), nil)
		if err != nil {
			t.Fatalf("post-rekey frame %d rejected: %v", i, err)
		}
		if string(got) != "post" {
			t.Fatalf("post-rekey frame %d payload = %q", i, got)
		}
	}
	if rx2.RejectedFrames != 0 {
		t.Fatalf("peer rejected %d re-keyed frames", rx2.RejectedFrames)
	}
}
