// Package safety implements the runtime safety monitor of §V-B: hard
// invariants whose violation is catastrophic, and *soft* (continuous)
// margins whose violation is a matter of degree — the paper's HVAC
// example, where comfort bands flex with occupancy and the provider's
// revenue couples to both violations and energy. The monitor accounts
// violation episodes, violation-time integrals, and severity so policies
// can be compared quantitatively (E8).
package safety

import (
	"fmt"
	"sort"
	"time"
)

// Band is an allowed range for a monitored quantity. Hard bounds define
// safety proper; the soft bounds inside them define comfort/quality.
type Band struct {
	HardLow, HardHigh float64
	SoftLow, SoftHigh float64
}

// Validate checks band consistency.
func (b Band) Validate() error {
	if b.HardLow > b.SoftLow || b.SoftLow > b.SoftHigh || b.SoftHigh > b.HardHigh {
		return fmt.Errorf("safety: inconsistent band %+v", b)
	}
	return nil
}

// ruleState tracks one monitored quantity.
type ruleState struct {
	band        Band
	bandSet     bool
	lastAt      time.Duration
	lastVal     float64
	hasVal      bool
	hardViol    int
	softViol    int
	inHard      bool
	inSoft      bool
	hardTime    time.Duration
	softTime    time.Duration
	softIntegal float64 // ∫ max(0, distance outside soft band) dt, in unit·seconds
}

// Violation is an episode report.
type Violation struct {
	Rule  string
	Hard  bool
	At    time.Duration
	Value float64
}

// Monitor evaluates streams of samples against bands.
type Monitor struct {
	rules map[string]*ruleState
	// OnViolation, if set, fires at each new violation episode.
	OnViolation func(v Violation)
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{rules: make(map[string]*ruleState)}
}

// SetBand installs (or replaces) the band for a rule. Bands may change at
// runtime — §V-B's point that soft margins vary with who occupies a space
// when.
func (m *Monitor) SetBand(rule string, b Band) error {
	if err := b.Validate(); err != nil {
		return err
	}
	st, ok := m.rules[rule]
	if !ok {
		st = &ruleState{}
		m.rules[rule] = st
	}
	st.band = b
	st.bandSet = true
	return nil
}

// Observe feeds one sample at time at. Violation time accrues between
// consecutive samples while outside a band.
func (m *Monitor) Observe(rule string, at time.Duration, value float64) {
	st, ok := m.rules[rule]
	if !ok || !st.bandSet {
		return
	}
	if st.hasVal {
		dt := at - st.lastAt
		if dt > 0 {
			if st.inHard {
				st.hardTime += dt
			}
			if st.inSoft {
				st.softTime += dt
				st.softIntegal += st.softDistance(st.lastVal) * dt.Seconds()
			}
		}
	}
	hard := value < st.band.HardLow || value > st.band.HardHigh
	soft := value < st.band.SoftLow || value > st.band.SoftHigh
	if hard && !st.inHard {
		st.hardViol++
		if m.OnViolation != nil {
			m.OnViolation(Violation{Rule: rule, Hard: true, At: at, Value: value})
		}
	}
	if soft && !st.inSoft {
		st.softViol++
		if m.OnViolation != nil {
			m.OnViolation(Violation{Rule: rule, Hard: false, At: at, Value: value})
		}
	}
	st.inHard, st.inSoft = hard, soft
	st.lastAt, st.lastVal, st.hasVal = at, value, true
}

func (st *ruleState) softDistance(v float64) float64 {
	switch {
	case v < st.band.SoftLow:
		return st.band.SoftLow - v
	case v > st.band.SoftHigh:
		return v - st.band.SoftHigh
	default:
		return 0
	}
}

// Report summarizes one rule.
type Report struct {
	Rule           string
	HardViolations int
	SoftViolations int
	HardTime       time.Duration
	SoftTime       time.Duration
	// SoftSeverity is ∫ distance-outside-soft-band dt (unit·seconds):
	// the continuous-safety quantity §V-B argues for.
	SoftSeverity float64
}

// ReportOf returns the accumulated report for a rule.
func (m *Monitor) ReportOf(rule string) Report {
	st, ok := m.rules[rule]
	if !ok {
		return Report{Rule: rule}
	}
	return Report{
		Rule:           rule,
		HardViolations: st.hardViol,
		SoftViolations: st.softViol,
		HardTime:       st.hardTime,
		SoftTime:       st.softTime,
		SoftSeverity:   st.softIntegal,
	}
}

// Rules returns all rule names, sorted.
func (m *Monitor) Rules() []string {
	out := make([]string, 0, len(m.rules))
	for r := range m.rules {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Revenue models the §V-B provider contract: reward for energy saved
// against a baseline, penalties proportional to soft-violation severity
// and per hard violation.
type Revenue struct {
	// EnergyPrice is revenue per joule saved vs. the baseline.
	EnergyPrice float64
	// SoftPenalty is cost per unit·second of soft-band severity.
	SoftPenalty float64
	// HardPenalty is cost per hard violation episode.
	HardPenalty float64
}

// Evaluate computes the provider's net revenue.
func (r Revenue) Evaluate(baselineEnergy, actualEnergy float64, rep Report) float64 {
	saved := baselineEnergy - actualEnergy
	return r.EnergyPrice*saved - r.SoftPenalty*rep.SoftSeverity - r.HardPenalty*float64(rep.HardViolations)
}

// ComfortBand builds a temperature band around a setpoint: soft margin
// ±soft, hard margin ±hard.
func ComfortBand(setpoint, soft, hard float64) Band {
	return Band{
		HardLow:  setpoint - hard,
		HardHigh: setpoint + hard,
		SoftLow:  setpoint - soft,
		SoftHigh: setpoint + soft,
	}
}

// HardOnlyBand is a band whose soft bounds coincide with the hard ones
// (for unoccupied spaces where only physical limits matter).
func HardOnlyBand(hardLow, hardHigh float64) Band {
	return Band{
		HardLow:  hardLow,
		HardHigh: hardHigh,
		SoftLow:  hardLow,
		SoftHigh: hardHigh,
	}
}
