package safety

import (
	"testing"
	"time"
)

func band() Band { return ComfortBand(22, 1, 4) } // soft 21..23, hard 18..26

func TestBandConstruction(t *testing.T) {
	b := band()
	if b.SoftLow != 21 || b.SoftHigh != 23 || b.HardLow != 18 || b.HardHigh != 26 {
		t.Fatalf("band = %+v", b)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Band{HardLow: 10, SoftLow: 5, SoftHigh: 20, HardHigh: 30}
	if bad.Validate() == nil {
		t.Fatal("inconsistent band accepted")
	}
	if err := (HardOnlyBand(10, 35)).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftViolationEpisodeAndSeverity(t *testing.T) {
	m := NewMonitor()
	if err := m.SetBand("zone1/temp", band()); err != nil {
		t.Fatal(err)
	}
	var events []Violation
	m.OnViolation = func(v Violation) { events = append(events, v) }
	// In band, then 2 degrees below soft for 60 s, then back.
	m.Observe("zone1/temp", 0, 22)
	m.Observe("zone1/temp", 60*time.Second, 19) // soft violation starts
	m.Observe("zone1/temp", 120*time.Second, 19)
	m.Observe("zone1/temp", 180*time.Second, 22)
	rep := m.ReportOf("zone1/temp")
	if rep.SoftViolations != 1 || rep.HardViolations != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Outside soft band from t=60 to t=180 → 120 s of soft time.
	if rep.SoftTime != 120*time.Second {
		t.Fatalf("SoftTime = %v", rep.SoftTime)
	}
	// Severity: 2 degrees × 120 s = 240 unit·s.
	if rep.SoftSeverity != 240 {
		t.Fatalf("SoftSeverity = %v", rep.SoftSeverity)
	}
	if len(events) != 1 || events[0].Hard || events[0].Rule != "zone1/temp" {
		t.Fatalf("events = %+v", events)
	}
}

func TestHardViolation(t *testing.T) {
	m := NewMonitor()
	_ = m.SetBand("t", band())
	var events []Violation
	m.OnViolation = func(v Violation) { events = append(events, v) }
	m.Observe("t", 0, 22)
	m.Observe("t", time.Minute, 17) // below hard low: both episodes fire
	rep := m.ReportOf("t")
	if rep.HardViolations != 1 || rep.SoftViolations != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestEpisodeCountingNotPerSample(t *testing.T) {
	m := NewMonitor()
	_ = m.SetBand("t", band())
	m.Observe("t", 0, 19)
	for i := 1; i <= 10; i++ {
		m.Observe("t", time.Duration(i)*time.Second, 19)
	}
	if rep := m.ReportOf("t"); rep.SoftViolations != 1 {
		t.Fatalf("episodes = %d, want 1", rep.SoftViolations)
	}
	// Recover then violate again: second episode.
	m.Observe("t", 20*time.Second, 22)
	m.Observe("t", 21*time.Second, 19)
	if rep := m.ReportOf("t"); rep.SoftViolations != 2 {
		t.Fatalf("episodes = %d, want 2", rep.SoftViolations)
	}
}

func TestBandChangeAtRuntime(t *testing.T) {
	m := NewMonitor()
	_ = m.SetBand("t", ComfortBand(22, 1, 4))
	m.Observe("t", 0, 19.5) // violates soft 21..23
	if m.ReportOf("t").SoftViolations != 1 {
		t.Fatal("tight band violation missed")
	}
	// Space becomes unoccupied: widen the band; same value is now fine.
	_ = m.SetBand("t", HardOnlyBand(12, 32))
	m.Observe("t", time.Minute, 19.5)
	rep := m.ReportOf("t")
	if rep.SoftViolations != 1 {
		t.Fatalf("widened band still violating: %+v", rep)
	}
}

func TestUnknownRuleIgnored(t *testing.T) {
	m := NewMonitor()
	m.Observe("ghost", 0, 1) // must not panic
	if rep := m.ReportOf("ghost"); rep.SoftViolations != 0 {
		t.Fatal("phantom violations")
	}
}

func TestRulesSorted(t *testing.T) {
	m := NewMonitor()
	_ = m.SetBand("b", band())
	_ = m.SetBand("a", band())
	rules := m.Rules()
	if len(rules) != 2 || rules[0] != "a" {
		t.Fatalf("Rules = %v", rules)
	}
}

func TestRevenue(t *testing.T) {
	r := Revenue{EnergyPrice: 2, SoftPenalty: 0.5, HardPenalty: 100}
	rep := Report{SoftSeverity: 10, HardViolations: 1}
	// saved = 50 J → 100 revenue − 5 soft − 100 hard = −5.
	got := r.Evaluate(150, 100, rep)
	if got != -5 {
		t.Fatalf("revenue = %v, want -5", got)
	}
}
