// Package lowpan is the adaptation layer between network-layer datagrams
// and small link frames, modeled on 6LoWPAN (RFC 4944, paper ref [12]):
// it compresses the network header and fragments datagrams that exceed
// the link MTU, with fragment offsets in 8-byte units and lazy reassembly
// expiry.
//
// Without this layer the stack could not carry CoAP messages (up to ~1 KB
// with block transfers) over 802.15.4-class frames (~100 B of payload),
// which is precisely the interoperability glue §III discusses.
package lowpan

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
)

// Proto identifies the upper-layer protocol inside a datagram.
type Proto byte

// Well-known datagram protocols.
const (
	// ProtoCoAP carries CoAP messages.
	ProtoCoAP Proto = 1
	// ProtoGossip carries anti-entropy synchronization.
	ProtoGossip Proto = 2
	// ProtoRaw carries application-defined bytes.
	ProtoRaw Proto = 3
	// ProtoScenario carries the scenario engine's AEAD-sealed heartbeats
	// (internal/scenario), kept on their own protocol number so scenario
	// instrumentation never collides with application traffic. Proto 4 is
	// taken by agg.ProtoAgg (declared in internal/agg).
	ProtoScenario Proto = 5
	// ProtoIngest carries telemetry readings bound for the storage tier:
	// nodes push up the DODAG, the border router batches into the
	// sharded time-series store (internal/store).
	ProtoIngest Proto = 6
)

// Datagram is the network-layer unit routed end-to-end across the mesh.
type Datagram struct {
	Src      radio.NodeID
	Dst      radio.NodeID
	Proto    Proto
	HopLimit uint8
	Seq      uint16
	Payload  []byte
	// Journey is the flight-recorder journey ID of the logical packet
	// (0 = none). It is in-memory metadata only: Encode stamps it onto
	// the emitted frame buffers (netbuf.Buffer.SetJourney) but it never
	// appears in the wire header, so tracing does not change airtime.
	// On receive it is restored by the router from the MAC's journey
	// context, not decoded from bytes.
	Journey uint64
}

// Header sizes. The uncompressed form models a full IPv6 header (40
// bytes); the compressed form is an IPHC-like 9 bytes. The difference is
// what header compression buys on constrained links.
const (
	compressedHeaderLen   = 9
	uncompressedHeaderLen = 40

	flagCompressed = 0x80
	headerVersion  = 0x01
)

// dispatch bytes for link frames.
const (
	dispUnfrag byte = 0x41
	dispFrag1  byte = 0xC0
	dispFragN  byte = 0xE0
)

// Frag header layout after the dispatch byte:
//
//	FRAG1: size uint16, tag uint16
//	FRAGN: size uint16, tag uint16, offset byte (8-byte units)
const (
	frag1HeaderLen = 1 + 2 + 2
	fragNHeaderLen = 1 + 2 + 2 + 1
)

// MaxDatagramSize bounds reassembly buffers (mirrors the IPv6 minimum
// MTU that 6LoWPAN must support).
const MaxDatagramSize = 1280

// ErrTooLarge is returned when a datagram exceeds MaxDatagramSize.
var ErrTooLarge = errors.New("lowpan: datagram exceeds maximum size")

// headerLen returns the serialized header size under compress.
func headerLen(compress bool) int {
	if compress {
		return compressedHeaderLen
	}
	return uncompressedHeaderLen
}

// encodeHeaderInto serializes the datagram header into buf, which must be
// headerLen(compress) bytes of zeroed scratch.
func encodeHeaderInto(buf []byte, d *Datagram, compress bool) {
	buf[0] = headerVersion
	if compress {
		buf[0] |= flagCompressed
	}
	binary.BigEndian.PutUint16(buf[1:3], uint16(d.Src))
	binary.BigEndian.PutUint16(buf[3:5], uint16(d.Dst))
	buf[5] = byte(d.Proto)
	buf[6] = d.HopLimit
	binary.BigEndian.PutUint16(buf[7:9], d.Seq)
	// Uncompressed headers carry the same information padded to IPv6
	// size; the padding is what compression removes.
	for i := compressedHeaderLen; i < len(buf); i++ {
		buf[i] = 0
	}
}

// decodeHeader parses a datagram header, returning the header length.
func decodeHeader(raw []byte) (d Datagram, hlen int, err error) {
	if len(raw) < compressedHeaderLen {
		return d, 0, fmt.Errorf("lowpan: header too short (%d bytes)", len(raw))
	}
	if raw[0]&^flagCompressed != headerVersion {
		return d, 0, fmt.Errorf("lowpan: unknown header version %#x", raw[0])
	}
	hlen = uncompressedHeaderLen
	if raw[0]&flagCompressed != 0 {
		hlen = compressedHeaderLen
	}
	if len(raw) < hlen {
		return d, 0, fmt.Errorf("lowpan: truncated header (%d < %d)", len(raw), hlen)
	}
	d.Src = radio.NodeID(binary.BigEndian.Uint16(raw[1:3]))
	d.Dst = radio.NodeID(binary.BigEndian.Uint16(raw[3:5]))
	d.Proto = Proto(raw[5])
	d.HopLimit = raw[6]
	d.Seq = binary.BigEndian.Uint16(raw[7:9])
	return d, hlen, nil
}

// Config configures an Adaptation.
type Config struct {
	// MTU is the maximum link-frame payload (default 100 bytes,
	// 802.15.4-class after MAC overhead).
	MTU int
	// Compress enables IPHC-like header compression (default in
	// NewAdaptation; disable to measure what compression buys).
	Compress bool
	// ReassemblyTimeout is how long partial datagrams are kept
	// (default 5 s).
	ReassemblyTimeout time.Duration
}

// Adaptation fragments outgoing datagrams and reassembles incoming ones.
// It is not safe for concurrent use.
type Adaptation struct {
	cfg     Config
	pool    *netbuf.Pool
	nextTag uint16
	reasm   map[reasmKey]*reasmBuf
}

type reasmKey struct {
	from radio.NodeID
	tag  uint16
}

// fragBitmap records which fragment offsets of one datagram have been
// seen. Offsets are in 8-byte units, so a MaxDatagramSize datagram has
// at most MaxDatagramSize/8 slots; three words cover them inline in the
// buffer instead of a per-reassembly map allocation.
type fragBitmap [(MaxDatagramSize/8 + 63) / 64]uint64

func (b *fragBitmap) test(slot int) bool { return b[slot/64]&(1<<(slot%64)) != 0 }
func (b *fragBitmap) set(slot int)       { b[slot/64] |= 1 << (slot % 64) }

type reasmBuf struct {
	created  time.Duration
	size     int
	received int
	data     []byte
	have     fragBitmap // fragment offsets seen, in 8-byte slots
}

// NewAdaptation returns an adaptation layer with compression enabled.
func NewAdaptation(cfg Config) *Adaptation {
	if cfg.MTU == 0 {
		cfg.MTU = 100
	}
	if cfg.MTU < 16 {
		panic(fmt.Sprintf("lowpan: MTU %d too small", cfg.MTU))
	}
	if cfg.ReassemblyTimeout == 0 {
		cfg.ReassemblyTimeout = 5 * time.Second
	}
	return &Adaptation{cfg: cfg, reasm: make(map[reasmKey]*reasmBuf)}
}

// UsePool makes Encode draw frame buffers from p (typically the stack's
// pool via link.Buffers()) instead of allocating fresh ones.
func (a *Adaptation) UsePool(p *netbuf.Pool) { a.pool = p }

func (a *Adaptation) get() *netbuf.Buffer {
	if a.pool != nil {
		return a.pool.Get()
	}
	return netbuf.New()
}

// Encode serializes d into one or more link-frame payloads, appending
// them to frames (pass frames[:0] of a scratch slice to amortize).
// Ownership of the returned buffers transfers to the caller, which must
// Release each one (handing them to link.SendBuf counts).
//
// The unfragmented case is zero-copy: the datagram is built once in a
// pooled buffer and the dispatch byte goes into its headroom. Fragments
// are per-fragment pooled copies of chunks of that buffer — true views
// are impossible because each fragment's header would overwrite the
// neighboring chunk's trailing bytes.
func (a *Adaptation) Encode(d *Datagram, frames []*netbuf.Buffer) ([]*netbuf.Buffer, error) {
	hlen := headerLen(a.cfg.Compress)
	if hlen+len(d.Payload) > MaxDatagramSize {
		return frames, ErrTooLarge
	}
	whole := a.get()
	whole.SetJourney(d.Journey)
	encodeHeaderInto(whole.Extend(hlen), d, a.cfg.Compress)
	whole.Append(d.Payload)
	size := whole.Len()
	if 1+size <= a.cfg.MTU {
		whole.Prepend(1)[0] = dispUnfrag
		return append(frames, whole), nil
	}
	// Fragmentation. Non-final fragments carry chunks that are multiples
	// of 8 bytes so offsets fit in a byte in 8-byte units.
	defer whole.Release()
	a.nextTag++
	tag := a.nextTag
	raw := whole.Bytes()

	first := (a.cfg.MTU - frag1HeaderLen) &^ 7
	f := a.get()
	f.SetJourney(d.Journey)
	h := f.Extend(frag1HeaderLen)
	h[0] = dispFrag1
	binary.BigEndian.PutUint16(h[1:3], uint16(size))
	binary.BigEndian.PutUint16(h[3:5], tag)
	f.Append(raw[:first])
	frames = append(frames, f)

	offset := first
	per := (a.cfg.MTU - fragNHeaderLen) &^ 7
	for offset < size {
		end := offset + per
		if end > size {
			end = size
		}
		f := a.get()
		f.SetJourney(d.Journey)
		h := f.Extend(fragNHeaderLen)
		h[0] = dispFragN
		binary.BigEndian.PutUint16(h[1:3], uint16(size))
		binary.BigEndian.PutUint16(h[3:5], tag)
		h[5] = byte(offset / 8)
		f.Append(raw[offset:end])
		frames = append(frames, f)
		offset = end
	}
	return frames, nil
}

// Feed processes one received link-frame payload from a neighbor. now is
// the current (virtual) time, used for reassembly expiry. It returns the
// completed datagram, or nil if more fragments are needed.
func (a *Adaptation) Feed(now time.Duration, from radio.NodeID, frame []byte) (*Datagram, error) {
	a.expire(now)
	if len(frame) < 1 {
		return nil, errors.New("lowpan: empty frame")
	}
	switch frame[0] {
	case dispUnfrag:
		return a.finish(frame[1:])
	case dispFrag1, dispFragN:
		return a.feedFragment(now, from, frame)
	default:
		return nil, fmt.Errorf("lowpan: unknown dispatch %#x", frame[0])
	}
}

func (a *Adaptation) feedFragment(now time.Duration, from radio.NodeID, frame []byte) (*Datagram, error) {
	hlen := frag1HeaderLen
	if frame[0] == dispFragN {
		hlen = fragNHeaderLen
	}
	if len(frame) < hlen {
		return nil, errors.New("lowpan: truncated fragment header")
	}
	size := int(binary.BigEndian.Uint16(frame[1:3]))
	tag := binary.BigEndian.Uint16(frame[3:5])
	if size > MaxDatagramSize {
		return nil, ErrTooLarge
	}
	offset := 0
	if frame[0] == dispFragN {
		offset = int(frame[5]) * 8
	}
	chunk := frame[hlen:]
	if offset+len(chunk) > size {
		return nil, fmt.Errorf("lowpan: fragment overruns datagram (%d+%d > %d)", offset, len(chunk), size)
	}

	key := reasmKey{from: from, tag: tag}
	buf, ok := a.reasm[key]
	if !ok || buf.size != size {
		// New datagram, or tag reuse with a different size: (re)start.
		buf = &reasmBuf{created: now, size: size, data: make([]byte, size)}
		a.reasm[key] = buf
	}
	// The overrun check above bounds offset ≤ size ≤ MaxDatagramSize, so
	// the slot always fits the bitmap.
	if slot := offset / 8; !buf.have.test(slot) {
		buf.have.set(slot)
		copy(buf.data[offset:], chunk)
		buf.received += len(chunk)
	}
	if buf.received < buf.size {
		return nil, nil
	}
	delete(a.reasm, key)
	return a.finish(buf.data)
}

func (a *Adaptation) finish(whole []byte) (*Datagram, error) {
	d, hlen, err := decodeHeader(whole)
	if err != nil {
		return nil, err
	}
	d.Payload = whole[hlen:]
	return &d, nil
}

func (a *Adaptation) expire(now time.Duration) {
	for k, b := range a.reasm {
		if now-b.created > a.cfg.ReassemblyTimeout {
			delete(a.reasm, k)
		}
	}
}

// PendingReassemblies returns the number of incomplete datagrams held.
func (a *Adaptation) PendingReassemblies() int { return len(a.reasm) }

// HeaderOverhead returns the per-datagram header bytes under the current
// compression setting — the quantity header compression reduces.
func (a *Adaptation) HeaderOverhead() int {
	if a.cfg.Compress {
		return compressedHeaderLen
	}
	return uncompressedHeaderLen
}
