package lowpan

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
)

// encodeBytes adapts buffer-based Encode for tests that inspect frames
// as plain byte slices: it copies each frame out and releases the
// pooled buffers.
func encodeBytes(a *Adaptation, d *Datagram) ([][]byte, error) {
	bufs, err := a.Encode(d, nil)
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, len(bufs))
	for i, b := range bufs {
		frames[i] = netbuf.CloneBytes(b.Bytes())
		b.Release()
	}
	return frames, nil
}

func roundTrip(t *testing.T, a *Adaptation, d *Datagram) *Datagram {
	t.Helper()
	frames, err := encodeBytes(a, d)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out *Datagram
	for i, f := range frames {
		got, err := a.Feed(0, d.Src, f)
		if err != nil {
			t.Fatalf("Feed frame %d: %v", i, err)
		}
		if got != nil {
			if i != len(frames)-1 {
				t.Fatalf("datagram completed early at frame %d/%d", i, len(frames))
			}
			out = got
		}
	}
	if out == nil {
		t.Fatal("datagram never completed")
	}
	return out
}

func equal(a, b *Datagram) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Proto == b.Proto &&
		a.HopLimit == b.HopLimit && a.Seq == b.Seq && bytes.Equal(a.Payload, b.Payload)
}

func TestSingleFrameRoundTrip(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	d := &Datagram{Src: 3, Dst: 9, Proto: ProtoCoAP, HopLimit: 16, Seq: 77, Payload: []byte("small")}
	got := roundTrip(t, a, d)
	if !equal(d, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestFragmentedRoundTrip(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	payload := make([]byte, 700)
	for i := range payload {
		payload[i] = byte(i)
	}
	d := &Datagram{Src: 1, Dst: 2, Proto: ProtoGossip, HopLimit: 8, Seq: 1, Payload: payload}
	frames, err := encodeBytes(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 7 {
		t.Fatalf("700-byte datagram produced only %d frames at MTU 100", len(frames))
	}
	for _, f := range frames {
		if len(f) > 100 {
			t.Fatalf("frame exceeds MTU: %d bytes", len(f))
		}
	}
	got := roundTrip(t, a, d)
	if !equal(d, got) {
		t.Fatal("fragmented round trip mismatch")
	}
}

func TestOutOfOrderFragments(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	d := &Datagram{Src: 4, Dst: 5, Proto: ProtoRaw, Seq: 9, Payload: payload}
	frames, err := encodeBytes(a, d)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse delivery order.
	var got *Datagram
	for i := len(frames) - 1; i >= 0; i-- {
		g, err := a.Feed(0, 4, frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
		}
	}
	if got == nil || !equal(d, got) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestDuplicateFragmentsHarmless(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	payload := make([]byte, 250)
	d := &Datagram{Src: 1, Dst: 2, Proto: ProtoRaw, Payload: payload}
	frames, _ := encodeBytes(a, d)
	if _, err := a.Feed(0, 1, frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Feed(0, 1, frames[0]); err != nil { // dup
		t.Fatal(err)
	}
	var got *Datagram
	for _, f := range frames[1:] {
		g, err := a.Feed(0, 1, f)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
		}
	}
	if got == nil || !equal(d, got) {
		t.Fatal("duplicate fragment broke reassembly")
	}
}

func TestInterleavedSourcesDoNotMix(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	mk := func(fill byte) *Datagram {
		p := make([]byte, 300)
		for i := range p {
			p[i] = fill
		}
		return &Datagram{Src: 1, Dst: 2, Proto: ProtoRaw, Payload: p}
	}
	d1, d2 := mk(0xAA), mk(0xBB)
	f1, _ := encodeBytes(a, d1)
	f2, _ := encodeBytes(a, d2)
	// Interleave frames from two different link neighbors (7 and 8).
	var got1, got2 *Datagram
	for i := 0; i < len(f1) || i < len(f2); i++ {
		if i < len(f1) {
			if g, _ := a.Feed(0, 7, f1[i]); g != nil {
				got1 = g
			}
		}
		if i < len(f2) {
			if g, _ := a.Feed(0, 8, f2[i]); g != nil {
				got2 = g
			}
		}
	}
	if got1 == nil || got2 == nil {
		t.Fatal("interleaved reassembly incomplete")
	}
	if got1.Payload[0] != 0xAA || got2.Payload[0] != 0xBB {
		t.Fatal("interleaved reassembly mixed payloads")
	}
}

func TestReassemblyExpiry(t *testing.T) {
	a := NewAdaptation(Config{Compress: true, ReassemblyTimeout: time.Second})
	payload := make([]byte, 300)
	d := &Datagram{Src: 1, Dst: 2, Proto: ProtoRaw, Payload: payload}
	frames, _ := encodeBytes(a, d)
	if _, err := a.Feed(0, 1, frames[0]); err != nil {
		t.Fatal(err)
	}
	if a.PendingReassemblies() != 1 {
		t.Fatal("no pending reassembly")
	}
	// Past the timeout, remaining fragments start a fresh (incomplete)
	// buffer rather than completing the stale one.
	got, err := a.Feed(2*time.Second, 1, frames[1])
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("stale reassembly completed after expiry")
	}
}

func TestCompressionSavesBytes(t *testing.T) {
	c := NewAdaptation(Config{Compress: true})
	u := NewAdaptation(Config{Compress: false})
	d := &Datagram{Src: 1, Dst: 2, Proto: ProtoCoAP, Payload: []byte("x")}
	fc, _ := encodeBytes(c, d)
	fu, _ := encodeBytes(u, d)
	if len(fc) != 1 || len(fu) != 1 {
		t.Fatal("tiny datagram fragmented")
	}
	saved := len(fu[0]) - len(fc[0])
	if saved != uncompressedHeaderLen-compressedHeaderLen {
		t.Fatalf("compression saved %d bytes, want %d", saved, uncompressedHeaderLen-compressedHeaderLen)
	}
	if c.HeaderOverhead() >= u.HeaderOverhead() {
		t.Fatal("HeaderOverhead ordering wrong")
	}
}

func TestUncompressedRoundTrip(t *testing.T) {
	a := NewAdaptation(Config{Compress: false})
	d := &Datagram{Src: 100, Dst: 200, Proto: ProtoCoAP, HopLimit: 3, Seq: 500, Payload: []byte("legacy")}
	got := roundTrip(t, a, d)
	if !equal(d, got) {
		t.Fatal("uncompressed round trip mismatch")
	}
}

func TestTooLarge(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	d := &Datagram{Payload: make([]byte, MaxDatagramSize+1)}
	if _, err := encodeBytes(a, d); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestGarbageFrames(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	for _, frame := range [][]byte{
		nil,
		{},
		{0xFF, 1, 2},
		{dispUnfrag},
		{dispFrag1, 0},
		{dispFragN, 0, 0, 0, 0},
	} {
		if _, err := a.Feed(0, 1, frame); err == nil {
			t.Errorf("garbage frame %v accepted", frame)
		}
	}
}

func TestFragmentOverrunRejected(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	// FRAGN claiming size 16 with offset 8 and 100 bytes of chunk.
	f := make([]byte, fragNHeaderLen+100)
	f[0] = dispFragN
	f[1], f[2] = 0, 16
	f[3], f[4] = 0, 1
	f[5] = 1
	if _, err := a.Feed(0, 1, f); err == nil {
		t.Fatal("overrunning fragment accepted")
	}
}

func TestPropertyRoundTripAnyPayload(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	f := func(src, dst uint16, proto, hop byte, seq uint16, payload []byte) bool {
		if len(payload) > MaxDatagramSize-compressedHeaderLen {
			payload = payload[:MaxDatagramSize-compressedHeaderLen]
		}
		d := &Datagram{
			Src: int16ID(src), Dst: int16ID(dst), Proto: Proto(proto),
			HopLimit: hop, Seq: seq, Payload: payload,
		}
		frames, err := encodeBytes(a, d)
		if err != nil {
			return false
		}
		var got *Datagram
		for _, fr := range frames {
			g, err := a.Feed(0, d.Src, fr)
			if err != nil {
				return false
			}
			if g != nil {
				got = g
			}
		}
		return got != nil && equal(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMTUTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptation(Config{MTU: 4})
}

// int16ID maps an arbitrary uint16 into the NodeID space used on the wire.
func int16ID(v uint16) radio.NodeID { return radio.NodeID(v) }

// TestEvictionThenRetransmitCompletes exercises the full eviction path:
// a partial reassembly times out, is evicted by the next Feed, and a
// complete retransmission of the same (source, tag) datagram then
// reassembles from a fresh buffer rather than inheriting stale bitmap
// state from the evicted one.
func TestEvictionThenRetransmitCompletes(t *testing.T) {
	a := NewAdaptation(Config{Compress: true, ReassemblyTimeout: time.Second})
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	d := &Datagram{Src: 4, Dst: 2, Proto: ProtoRaw, Seq: 9, Payload: payload}
	frames, err := encodeBytes(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Feed(0, d.Src, frames[0]); err != nil {
		t.Fatal(err)
	}
	if a.PendingReassemblies() != 1 {
		t.Fatal("no pending reassembly")
	}
	// Retransmit the whole datagram after the timeout. The first frame's
	// Feed both evicts the stale buffer and starts the new one.
	var got *Datagram
	for _, f := range frames {
		g, err := a.Feed(5*time.Second, d.Src, f)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
		}
	}
	if got == nil {
		t.Fatal("retransmission never completed")
	}
	if !equal(d, got) {
		t.Fatal("retransmitted datagram corrupted by evicted state")
	}
	if a.PendingReassemblies() != 0 {
		t.Fatal("completed reassembly not released")
	}
}

// TestTagReuseDifferentSizeRestarts covers the sender wrapping its tag
// counter while a stale partial under the same tag is still buffered:
// the mismatched size must restart the buffer, and the new datagram must
// reassemble cleanly.
func TestTagReuseDifferentSizeRestarts(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	old := &Datagram{Src: 7, Dst: 2, Proto: ProtoRaw, Payload: make([]byte, 500)}
	oldFrames, err := encodeBytes(a, old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Feed(0, old.Src, oldFrames[0]); err != nil {
		t.Fatal(err)
	}

	// Same tag, different size: a fresh Adaptation re-issues tag 1.
	b := NewAdaptation(Config{Compress: true})
	payload := make([]byte, 260)
	for i := range payload {
		payload[i] = byte(255 - i)
	}
	next := &Datagram{Src: 7, Dst: 2, Proto: ProtoRaw, Seq: 1, Payload: payload}
	nextFrames, err := encodeBytes(b, next)
	if err != nil {
		t.Fatal(err)
	}
	var got *Datagram
	for _, f := range nextFrames {
		g, err := a.Feed(0, next.Src, f)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
		}
	}
	if got == nil {
		t.Fatal("reused tag never completed")
	}
	if !equal(next, got) {
		t.Fatal("reused tag reassembled corrupted datagram")
	}
}

// TestMaxSizeDatagramUsesTopBitmapSlot reassembles a MaxDatagramSize
// datagram, driving the fragment bitmap to its highest slot.
func TestMaxSizeDatagramUsesTopBitmapSlot(t *testing.T) {
	a := NewAdaptation(Config{Compress: true})
	payload := make([]byte, MaxDatagramSize-compressedHeaderLen)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	d := &Datagram{Src: 1, Dst: 2, Proto: ProtoRaw, Payload: payload}
	got := roundTrip(t, a, d)
	if !equal(d, got) {
		t.Fatal("max-size round trip mismatch")
	}
}
