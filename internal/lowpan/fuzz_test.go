package lowpan

import (
	"bytes"
	"testing"

	"iiotds/internal/radio"
)

// FuzzEncodeFeedRoundTrip drives the adaptation layer end to end:
// whatever datagram we can Encode must reassemble via Feed into the
// identical datagram, under both header-compression modes. The seed
// corpus covers the unfragmented, two-fragment, and max-size paths, so
// plain `go test` already exercises all three.
func FuzzEncodeFeedRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), byte(ProtoCoAP), byte(64), uint16(7), []byte("hello"), true)
	f.Add(uint16(3), uint16(4), byte(ProtoGossip), byte(1), uint16(0), make([]byte, 200), false)
	f.Add(uint16(5), uint16(6), byte(ProtoRaw), byte(255), uint16(65535), make([]byte, MaxDatagramSize-compressedHeaderLen), true)
	f.Add(uint16(0), uint16(0), byte(0), byte(0), uint16(0), []byte{}, false)

	f.Fuzz(func(t *testing.T, src, dst uint16, proto, hopLimit byte, seq uint16, payload []byte, compress bool) {
		a := NewAdaptation(Config{Compress: compress})
		d := &Datagram{
			Src:      radio.NodeID(src),
			Dst:      radio.NodeID(dst),
			Proto:    Proto(proto),
			HopLimit: hopLimit,
			Seq:      seq,
			Payload:  payload,
		}
		frames, err := encodeBytes(a, d)
		if err != nil {
			if err == ErrTooLarge {
				return // oversized payloads are rejected by contract
			}
			t.Fatalf("Encode: %v", err)
		}
		var got *Datagram
		for i, fr := range frames {
			g, err := a.Feed(0, radio.NodeID(src), fr)
			if err != nil {
				t.Fatalf("Feed frame %d/%d: %v", i+1, len(frames), err)
			}
			if g != nil {
				if i != len(frames)-1 {
					t.Fatalf("reassembly completed at frame %d of %d", i+1, len(frames))
				}
				got = g
			}
		}
		if got == nil {
			t.Fatalf("no datagram after %d frames", len(frames))
		}
		if got.Src != d.Src || got.Dst != d.Dst || got.Proto != d.Proto ||
			got.HopLimit != d.HopLimit || got.Seq != d.Seq {
			t.Fatalf("header mismatch: sent %+v got %+v", d, got)
		}
		if !bytes.Equal(got.Payload, payload) {
			t.Fatalf("payload mismatch: sent %d bytes, got %d", len(payload), len(got.Payload))
		}
	})
}

// FuzzFeedArbitrary throws raw bytes at the frame parser: it must reject
// or reassemble without panicking or allocating past MaxDatagramSize,
// whatever arrives from the radio.
func FuzzFeedArbitrary(f *testing.F) {
	// Seeds: a valid unfragmented frame, a valid FRAG1, truncated
	// variants, and hostile size/offset fields.
	a := NewAdaptation(Config{Compress: true})
	frames, err := encodeBytes(a, &Datagram{Src: 1, Dst: 2, Proto: ProtoCoAP, Payload: make([]byte, 300)})
	if err != nil {
		f.Fatal(err)
	}
	for _, fr := range frames {
		f.Add(fr)
		f.Add(fr[:len(fr)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{dispUnfrag})
	f.Add([]byte{dispFrag1, 0xFF, 0xFF, 0, 1})
	f.Add([]byte{dispFragN, 0xFF, 0xFF, 0, 1, 0xFF})

	f.Fuzz(func(t *testing.T, frame []byte) {
		a := NewAdaptation(Config{Compress: true})
		d, err := a.Feed(0, 1, frame)
		if err != nil {
			return
		}
		if d != nil && len(d.Payload) > MaxDatagramSize {
			t.Fatalf("reassembled %d bytes > MaxDatagramSize", len(d.Payload))
		}
	})
}
