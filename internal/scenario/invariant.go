package scenario

import (
	"fmt"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/trace"
)

// The invariant catalog. Each invariant is a property that must hold on
// every run of every scenario — the cross-layer correctness conditions
// the paper says a deployment must keep through faults, not a
// per-protocol unit assertion. A run fails iff it produces at least one
// Violation.
//
//   - causal-delivery: the radio never delivers a frame whose sender
//     has no prior transmission, no frame is transmitted by a crashed
//     node, and trace timestamps never run backwards. Checked by a
//     post-run scan of the flight-recorder stream (skipped if the ring
//     wrapped, since the transmit history would be incomplete).
//   - energy-monotone: every node's cumulative energy spend is
//     non-decreasing between snapshots — a ledger that "refunds" joules
//     would silently corrupt every lifetime result.
//   - dodag-acyclic: following preferred parents from any node
//     terminates at the root or a detached node within n hops. RPL only
//     promises eventual loop freedom — micro-loops during a parent
//     switch are protocol-legal and observed to hold up to ~40 s on
//     duty-cycled pipelines under load — so a node is convicted only
//     when its parent chain has been looping continuously for the loop
//     grace period (3×CheckEvery, at least 60 s): a wedged loop is
//     permanent, so the grace only needs to clear the legal-transient
//     tail. The drain phase additionally waits for a loop-free instant,
//     so a fleet that cannot reach one before the drain deadline
//     surfaces through the rejoin/finish checks.
//   - replay-monotone: the secured heartbeat stream never trips the
//     receiver's anti-replay window on a genuine frame. Counters must
//     survive (or be re-keyed across) reboots; a node that reuses an
//     old session after recovery replays counters the root has already
//     seen. Fed by the heartbeat workload in run.go.
//   - rejoin: after the drain phase, every churned node is back up and
//     attached to the DODAG through a live parent — self-repair
//     completed unattended. Checked at Finish.
//   - store-converges: after the drain phase (and any scheduled
//     storage-tier partition episode), every shard of the time-series
//     store has all replicas reporting equal series digests — the
//     acked ingest stream reached a single agreed history per shard.
//     Fed by the ingest workload in run.go.
//
// Invariant names are stable identifiers: reproducer logs, shrinking,
// and CI alerts reference them.
const (
	InvCausal  = "causal-delivery"
	InvEnergy  = "energy-monotone"
	InvAcyclic = "dodag-acyclic"
	InvReplay  = "replay-monotone"
	InvRejoin  = "rejoin"
	InvStore   = "store-converges"
)

// Violation is one observed breach of an invariant.
type Violation struct {
	// Invariant is the stable name of the breached property.
	Invariant string
	// At is the virtual time of the observation.
	At time.Duration
	// Node is the node the violation was observed on (-1 if global).
	Node int
	// Detail is a human-readable description.
	Detail string
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s @%s node=%d: %s", v.Invariant, v.At, v.Node, v.Detail)
}

// maxViolations bounds how many violations one run records; a broken
// invariant often fires on every snapshot, and one witness per failure
// mode is all shrinking needs.
const maxViolations = 16

// checker evaluates the invariant catalog over one deployment run:
// periodic snapshots for the state invariants (energy, DODAG), a final
// trace scan for causality, and hooks for the workload-fed invariants.
type checker struct {
	d          *core.Deployment
	violations []Violation
	lastEnergy []float64
	checkEvery time.Duration
	// loopSince records the virtual time each node's parent chain was
	// first observed looping (-1 = not looping); conviction requires the
	// loop to outlive loopGrace (see the catalog).
	loopSince []time.Duration
}

// loopGraceMin floors the routing-loop grace period well above the
// repair times legal transients exhibit (~40 s worst observed on a
// duty-cycled pipeline under load).
const loopGraceMin = 60 * time.Second

func (c *checker) loopGrace() time.Duration {
	if g := 3 * c.checkEvery; g > loopGraceMin {
		return g
	}
	return loopGraceMin
}

// newChecker snapshots the initial state and returns the checker.
// Callers drive it with snapshot (periodically, every checkEvery, from a
// kernel callback) and finish (after the drain phase).
func newChecker(d *core.Deployment, checkEvery time.Duration) *checker {
	c := &checker{
		d:          d,
		lastEnergy: make([]float64, len(d.Nodes)),
		checkEvery: checkEvery,
		loopSince:  make([]time.Duration, len(d.Nodes)),
	}
	for i := range d.Nodes {
		c.lastEnergy[i] = d.M.Energy().Ledger(i).TotalJoules()
		c.loopSince[i] = -1
	}
	return c
}

// add records a violation, capped at maxViolations.
func (c *checker) add(v Violation) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
}

// snapshot evaluates the state invariants at the current virtual time.
func (c *checker) snapshot() {
	now := time.Duration(c.d.K.Now())
	for i := range c.d.Nodes {
		j := c.d.M.Energy().Ledger(i).TotalJoules()
		if j < c.lastEnergy[i] {
			c.add(Violation{
				Invariant: InvEnergy, At: now, Node: i,
				Detail: fmt.Sprintf("total energy decreased %.9g → %.9g J", c.lastEnergy[i], j),
			})
		}
		c.lastEnergy[i] = j
	}
	c.checkAcyclic(now)
}

// checkAcyclic walks preferred-parent pointers from every node; any
// walk longer than the fleet size has necessarily revisited a node. A
// node is convicted only when its loop has outlived loopGrace —
// short-lived micro-loops during parent switches are legal RPL.
func (c *checker) checkAcyclic(now time.Duration) {
	n := len(c.d.Nodes)
	witnessed := false
	for i := range c.d.Nodes {
		hops := 0
		at := radio.NodeID(i)
		for at != 0 && hops <= n {
			p := c.d.Nodes[int(at)].Router.Parent()
			if p == rpl.NoParent {
				break
			}
			at = p
			hops++
		}
		if hops <= n {
			c.loopSince[i] = -1
			continue
		}
		if c.loopSince[i] < 0 {
			c.loopSince[i] = now
			continue
		}
		if held := now - c.loopSince[i]; held >= c.loopGrace() && !witnessed {
			witnessed = true // one witness per snapshot is enough
			c.add(Violation{
				Invariant: InvAcyclic, At: now, Node: i,
				Detail: fmt.Sprintf("parent chain from node %d looping for %s", i, held),
			})
		}
	}
}

// replay records a replay-monotone violation (fed by the heartbeat
// workload when the root rejects a genuine frame as replayed).
func (c *checker) replay(node int, detail string) {
	c.add(Violation{
		Invariant: InvReplay, At: time.Duration(c.d.K.Now()), Node: node, Detail: detail,
	})
}

// storeDiverged records a store-converges violation (fed by the ingest
// workload when the store's replicas disagree after the drain).
func (c *checker) storeDiverged(detail string) {
	c.add(Violation{
		Invariant: InvStore, At: time.Duration(c.d.K.Now()), Node: -1, Detail: detail,
	})
}

// finish runs the end-of-run invariants: the causal trace scan and the
// rejoin check over the churned selection.
func (c *checker) finish(churned []radio.NodeID) []Violation {
	c.snapshot()
	c.checkCausal()
	now := time.Duration(c.d.K.Now())
	for _, id := range churned {
		if !healthy(c.d, id) {
			c.add(Violation{
				Invariant: InvRejoin, At: now, Node: int(id),
				Detail: "churned node not healthily attached after drain",
			})
		}
	}
	return c.violations
}

// loopFree reports whether no node's parent chain is currently looping.
// The drain phase polls it so runs end at a loop-free instant when the
// protocol can reach one.
func loopFree(d *core.Deployment) bool {
	n := len(d.Nodes)
	for i := range d.Nodes {
		hops := 0
		at := radio.NodeID(i)
		for at != 0 && hops <= n {
			p := d.Nodes[int(at)].Router.Parent()
			if p == rpl.NoParent {
				break
			}
			at = p
			hops++
		}
		if hops > n {
			return false
		}
	}
	return true
}

// healthy reports whether a node is up and attached to the DODAG
// through a live parent — the e10/e14 notion of repaired (right after
// churn, nodes can still point at corpses).
func healthy(d *core.Deployment, id radio.NodeID) bool {
	n := d.Nodes[int(id)]
	if !n.Up() || n.Router.Partitioned() {
		return false
	}
	p := n.Router.Parent()
	return p != rpl.NoParent && d.Nodes[int(p)].Up()
}

// checkCausal scans the flight-recorder stream in emission order: every
// delivery must be preceded by a transmission from its sender, no
// crashed node may transmit, and timestamps must be non-decreasing. The
// scan is skipped when the ring dropped events (incomplete history) or
// tracing is disabled.
func (c *checker) checkCausal() {
	rec := c.d.Trace
	if !rec.Enabled() || rec.Dropped() > 0 {
		return
	}
	n := len(c.d.Nodes)
	txSeen := make([]bool, n)
	down := make([]bool, n)
	var last trace.Time
	rec.Each(trace.All(), func(e trace.Event) {
		if e.At < last {
			c.add(Violation{
				Invariant: InvCausal, At: e.At, Node: int(e.Node),
				Detail: fmt.Sprintf("trace time ran backwards (%s after %s)", e.At, last),
			})
		}
		last = e.At
		switch e.Type {
		case trace.RadioTx:
			node := int(e.Node)
			if node >= 0 && node < n {
				if down[node] {
					c.add(Violation{
						Invariant: InvCausal, At: e.At, Node: node,
						Detail: "crashed node transmitted",
					})
				}
				txSeen[node] = true
			}
		case trace.RadioDeliver:
			sender := int(e.A)
			if sender >= 0 && sender < n && !txSeen[sender] {
				c.add(Violation{
					Invariant: InvCausal, At: e.At, Node: int(e.Node),
					Detail: fmt.Sprintf("delivery from node %d with no prior transmission", sender),
				})
			}
		case trace.FaultCrash:
			if node := int(e.Node); node >= 0 && node < n {
				down[node] = true
			}
		case trace.FaultRecover:
			if node := int(e.Node); node >= 0 && node < n {
				down[node] = false
			}
		}
	})
	c.checkJourneys(rec.Events())
}

// checkJourneys strengthens the causal scan from per-node to per-packet:
// reconstructed journeys let the checker pin deliveries to the
// transmission history of the *same* logical packet, and demand that
// every delivered CoAP exchange reconstructs into a complete journey
// (request and response under one ID). Only called with a complete
// (un-wrapped) event history.
func (c *checker) checkJourneys(events []trace.Event) {
	if cov, tot := trace.CoAPCoverage(events); tot > 0 && cov < tot {
		c.add(Violation{
			Invariant: InvCausal, At: time.Duration(c.d.K.Now()), Node: -1,
			Detail: fmt.Sprintf("journeys: only %d/%d delivered CoAP exchanges reconstruct completely", cov, tot),
		})
	}
	for _, j := range trace.Journeys(events) {
		txSeen := false
		for _, e := range j.Events {
			switch e.Type {
			case trace.RadioTx:
				txSeen = true
			case trace.RadioDeliver:
				if !txSeen {
					c.add(Violation{
						Invariant: InvCausal, At: e.At, Node: int(e.Node),
						Detail: fmt.Sprintf("journey %d delivered before any of its frames was transmitted", j.ID),
					})
					return // one witness is enough
				}
			}
		}
	}
}
