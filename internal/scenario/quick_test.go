package scenario

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestQuickCleanFleetPasses(t *testing.T) {
	rep := Quick(QuickConfig{Triples: 8, Seed: 1})
	if rep.Failed() {
		t.Fatalf("clean stack produced failures:\n%s", rep.Log)
	}
	if rep.Passed != 8 {
		t.Errorf("passed = %d, want 8", rep.Passed)
	}
	if !strings.Contains(rep.Log, "summary: 8 triples, 8 passed, 0 failed") {
		t.Errorf("unexpected log summary:\n%s", rep.Log)
	}
}

// TestQuickProperty is the CI property gate: a fixed-seed sweep of
// random (topology, schedule, seed) triples over the whole stack. The
// default 50 triples ride in every `go test ./...`; the dedicated
// scenario-property CI job raises SCENARIO_QUICK_TRIPLES to 500+. The
// seed is fixed, so a failure is a real regression (and its log carries
// a shrunk reproducer for `iiotsim -scenario`), never flakiness.
func TestQuickProperty(t *testing.T) {
	triples := 50
	if s := os.Getenv("SCENARIO_QUICK_TRIPLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SCENARIO_QUICK_TRIPLES=%q", s)
		}
		triples = n
	}
	rep := Quick(QuickConfig{Triples: triples, Seed: 11})
	if rep.Failed() {
		t.Fatalf("property sweep failed:\n%s", rep.Log)
	}
	lines := strings.Split(strings.TrimSpace(rep.Log), "\n")
	t.Logf("%s", lines[len(lines)-1])
}

func TestQuickGenSpecsValidate(t *testing.T) {
	// Every spec the generator can draw must validate and encode: the
	// harness promises a replayable reproducer for anything it runs.
	cfg := QuickConfig{Triples: 200, Seed: 99, MaxNodes: 20, MaxSoak: time.Minute}
	for i := 0; i < cfg.Triples; i++ {
		spec := genSpec(newQuickRng(cfg.Seed, i), cfg)
		if err := spec.Validate(); err != nil {
			t.Fatalf("triple %d: generated invalid spec: %v", i, err)
		}
		line := Format(spec)
		back, err := Parse(line)
		if err != nil {
			t.Fatalf("triple %d: reproducer does not parse: %v\n%s", i, err, line)
		}
		if Format(back) != line {
			t.Fatalf("triple %d: reproducer not stable:\n%s\n%s", i, line, Format(back))
		}
	}
}

// TestQuickCatchesPlantedBugAndShrinks is the harness's own acceptance
// test: plant the deaf-after-reboot MAC under every triple and require
// Quick to convict it via the rejoin invariant, then shrink the failing
// triple to a strictly simpler scenario that still fails.
func TestQuickCatchesPlantedBugAndShrinks(t *testing.T) {
	mut := func(s *Spec) {
		if s.Faults.Churn.Kind == "" {
			s.Faults.Churn = NodeSel{Kind: "odd"}
			s.Faults.MeanUp, s.Faults.MinUp = 25*time.Second, 20*time.Second
			s.Faults.MeanDown, s.Faults.MinDown = 6*time.Second, 5*time.Second
		}
		if s.Drain < 2*time.Minute {
			s.Drain = 2 * time.Minute
		}
		plantDeafMAC(s)
	}
	rep := Quick(QuickConfig{Triples: 4, Seed: 3, Mutate: mut})
	if !rep.Failed() {
		t.Fatalf("harness missed the planted bug:\n%s", rep.Log)
	}
	f := rep.Failures[0]
	gotRejoin := false
	for _, v := range f.ShrunkViolations {
		if v.Invariant == InvRejoin {
			gotRejoin = true
		}
	}
	if !gotRejoin {
		t.Errorf("shrunk reproducer lost the rejoin violation: %v", f.ShrunkViolations)
	}
	if f.ShrinkRuns == 0 {
		t.Error("shrinking never ran")
	}
	if !strings.Contains(rep.Log, "FAIL") || !strings.Contains(rep.Log, "shrunk") {
		t.Errorf("log missing failure narration:\n%s", rep.Log)
	}
}

func TestShrinkPrefersSimplerSpecs(t *testing.T) {
	// Shrinking a spec whose failure persists (simulated by a stub that
	// "fails" whenever churn is present) must strip every optional
	// section while keeping the load-bearing churn.
	spec := fullSpec()
	spec.Faults.FlapLink = [2]int{1, 2}
	spec.Faults.FlapEvery = 30 * time.Second
	spec.Faults.FlapPRR = 0.2
	plantDeafMAC(&spec)
	r := Run(spec, nil)
	if !r.Failed() {
		t.Fatal("planted bug did not fail")
	}
	shrunk, viol, runs := shrinkFailure(spec, r.Violations, QuickConfig{MaxShrinkRuns: 24})
	if len(viol) == 0 || runs == 0 {
		t.Fatalf("shrink lost the failure (runs=%d)", runs)
	}
	if shrunk.Faults.Churn.Kind == "" {
		t.Error("shrink dropped the churn the bug needs")
	}
	if shrunk.Faults.FlapLink != [2]int{} {
		t.Error("shrink kept the irrelevant flapping link")
	}
	if shrunk.Workload.ProbeEvery != 0 || shrunk.Workload.AggEpoch != 0 {
		t.Error("shrink kept irrelevant workloads")
	}
	if shrunk.Topo.Nodes() >= spec.Topo.Nodes() {
		t.Errorf("shrink did not reduce the fleet: %d vs %d", shrunk.Topo.Nodes(), spec.Topo.Nodes())
	}
}
