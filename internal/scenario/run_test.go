package scenario

import (
	"strings"
	"testing"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/mac"
	"iiotds/internal/radio"
)

// fullSpec is a scenario exercising every workload and the churn engine
// at once — the closest thing to a deployment soak in one spec.
func fullSpec() Spec {
	return Spec{
		Seed:     7,
		Topo:     TopoSpec{Kind: TopoGrid, N: 9},
		WithCoAP: true,
		Soak:     45 * time.Second,
		Drain:    2 * time.Minute,
		Workload: WorkloadSpec{
			ProbeEvery:     5 * time.Second,
			PushEvery:      5 * time.Second,
			AggEpoch:       10 * time.Second,
			HeartbeatEvery: 5 * time.Second,
		},
		Faults: FaultSpec{
			Churn:  NodeSel{Kind: "odd"},
			MeanUp: 25 * time.Second, MinUp: 20 * time.Second,
			MeanDown: 6 * time.Second, MinDown: 5 * time.Second,
		},
	}
}

func TestRunFullScenario(t *testing.T) {
	r := Run(fullSpec(), nil)
	if !r.Converged {
		t.Fatalf("fleet did not converge")
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if r.Crashes == 0 || r.Recoveries != r.Crashes {
		t.Errorf("churn: %d crashes, %d recoveries", r.Crashes, r.Recoveries)
	}
	if r.ProbeOK == 0 || r.Pushes == 0 || r.PushDelivered == 0 || r.AggEpochs == 0 || r.HeartbeatOK == 0 {
		t.Errorf("workloads idle: %+v", r)
	}
	if r.Repro == "" {
		t.Error("encodable spec produced no reproducer")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, b := Run(fullSpec(), nil), Run(fullSpec(), nil)
	if a.Repro != b.Repro || a.Crashes != b.Crashes || a.Heartbeats != b.Heartbeats ||
		a.Pushes != b.Pushes || a.ProbeOK != b.ProbeOK || a.ConvergeIn != b.ConvergeIn ||
		len(a.Violations) != len(b.Violations) {
		t.Errorf("identical specs diverged:\n %+v\n %+v", a, b)
	}
}

func TestRunHeterogeneousCluster(t *testing.T) {
	spec := Spec{
		Seed: 3,
		Topo: TopoSpec{Kind: TopoCluster, Heads: 3, Members: 2},
		Classes: []ClassSpec{
			{Kind: "csma"},
			{Kind: "lpl", Wake: 250 * time.Millisecond},
		},
		Soak:     30 * time.Second,
		Workload: WorkloadSpec{PushEvery: 5 * time.Second},
	}
	r := Run(spec, nil)
	if !r.Converged {
		t.Fatal("cluster fleet did not converge")
	}
	if r.Failed() {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.PushDelivered == 0 {
		t.Error("no pushes delivered across the spine")
	}
}

// TestRunIngestStore drives the ingest workload into the sharded store
// through a mid-soak storage-tier partition episode, in both replication
// modes. The run must stay violation-free (store-converges holds after
// heal + drain) and the counters must prove the pipeline was exercised
// end to end: readings left the mesh, reached the root, and were acked
// by the store.
func TestRunIngestStore(t *testing.T) {
	for _, mode := range []string{"ap", "cp"} {
		t.Run(mode, func(t *testing.T) {
			spec := Spec{
				Seed:     9,
				Topo:     TopoSpec{Kind: TopoGrid, N: 9},
				Soak:     60 * time.Second,
				Workload: WorkloadSpec{IngestEvery: 2 * time.Second},
				Store: StoreSpec{
					Mode: mode, Shards: 2, Replicas: 3,
					PartAt: 20 * time.Second, PartHold: 20 * time.Second,
				},
			}
			r := Run(spec, nil)
			if !r.Converged {
				t.Fatal("fleet did not converge")
			}
			for _, v := range r.Violations {
				t.Errorf("violation: %s", v)
			}
			if r.IngestSent == 0 || r.IngestDelivered == 0 || r.IngestAcked == 0 {
				t.Errorf("ingest pipeline idle: sent=%d delivered=%d acked=%d",
					r.IngestSent, r.IngestDelivered, r.IngestAcked)
			}
			if r.IngestFailed != 0 {
				t.Errorf("%d ingest batches failed", r.IngestFailed)
			}
			if !r.StoreConverged {
				t.Error("store replicas did not converge after the partition episode")
			}
		})
	}
}

// TestReplayBugCaught reintroduces the reuse-old-session-after-reboot
// bug family (the PR 5 state-reset class: volatile counters lost in a
// crash while the peer's window survives) and proves the
// replay-monotone invariant convicts it.
func TestReplayBugCaught(t *testing.T) {
	rekeyOnReboot = false
	t.Cleanup(func() { rekeyOnReboot = true })

	spec := fullSpec()
	spec.Workload = WorkloadSpec{HeartbeatEvery: 3 * time.Second}
	spec.WithCoAP = false
	r := Run(spec, nil)
	if !r.Converged {
		t.Fatal("fleet did not converge")
	}
	if r.Crashes == 0 {
		t.Fatal("churn never fired; the bug cannot manifest")
	}
	found := false
	for _, v := range r.Violations {
		if v.Invariant == InvReplay {
			found = true
		} else {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if !found {
		t.Error("replay-monotone invariant missed the stale-session bug")
	}
}

// deafMAC is a planted defect for the rejoin invariant: the MAC works
// until the first reboot, after which it drops every incoming frame at
// the radio boundary — a device whose receive path does not survive a
// restart.
type deafMAC struct {
	mac.MAC
	deaf bool
}

func (d *deafMAC) RadioReceive(f radio.Frame) {
	if d.deaf {
		return
	}
	d.MAC.(radio.Receiver).RadioReceive(f)
}

func (d *deafMAC) Reboot() {
	d.deaf = true
	d.MAC.Reboot()
}

func plantDeafMAC(s *Spec) {
	s.Factories.MAC = func(m *radio.Medium, id radio.NodeID, p *core.Profile) mac.MAC {
		return &deafMAC{MAC: core.DefaultMAC(m, id, p)}
	}
}

// TestRejoinBugCaught plants the deaf-after-reboot MAC under the full
// scenario and proves the rejoin invariant convicts it.
func TestRejoinBugCaught(t *testing.T) {
	spec := fullSpec()
	plantDeafMAC(&spec)
	r := Run(spec, nil)
	if !r.Converged {
		t.Fatal("fleet did not converge")
	}
	if r.Crashes == 0 {
		t.Fatal("churn never fired; the bug cannot manifest")
	}
	found := false
	for _, v := range r.Violations {
		if v.Invariant == InvRejoin {
			found = true
		}
	}
	if !found {
		t.Errorf("rejoin invariant missed the deaf-after-reboot MAC; violations: %v", r.Violations)
	}
	if r.Repro != "" {
		t.Error("spec with factories must not claim to be encodable")
	}
	if !strings.Contains(reproOf(spec), "non-encodable") {
		t.Error("reproOf should mark factory specs non-encodable")
	}
}
