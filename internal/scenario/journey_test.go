package scenario

import (
	"bytes"
	"testing"
	"time"

	"iiotds/internal/trace"
)

// roundTripJSONL exports the run's trace as JSONL and parses it back.
func roundTripJSONL(t *testing.T, res Result) []trace.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf, trace.All()); err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// probeSpec is a quiet CoAP probe scenario on a 4x4 grid: multi-hop
// round trips with no churn, so every exchange should complete and
// every delivered exchange must reconstruct into a full journey.
func probeSpec() Spec {
	return Spec{
		Seed:     42,
		Topo:     TopoSpec{Kind: TopoGrid, N: 16},
		WithCoAP: true,
		Soak:     90 * time.Second,
		Drain:    30 * time.Second,
		Workload: WorkloadSpec{ProbeEvery: 5 * time.Second},
	}
}

// TestJourneysEndToEnd drives a real deployment and pins the
// acceptance bar of the journey plumbing: every delivered CoAP
// exchange reconstructs into a complete journey (the CI gate demands
// >=99%; a healthy stack gives 100%), journeys are multi-hop with
// delivered outcomes, and the trace survives a JSONL round trip with
// journeys intact.
func TestJourneysEndToEnd(t *testing.T) {
	res := Run(probeSpec(), nil)
	if !res.Converged {
		t.Fatal("fleet did not converge")
	}
	if res.ProbeOK == 0 {
		t.Fatal("probe workload idle — nothing to reconstruct")
	}
	if res.Trace == nil || res.Trace.Dropped() > 0 {
		t.Fatalf("trace missing or wrapped (dropped=%d)", res.Trace.Dropped())
	}
	events := res.Trace.Events()

	cov, tot := trace.CoAPCoverage(events)
	if tot < res.ProbeOK {
		t.Errorf("trace has %d delivered exchanges, probes reported %d ok", tot, res.ProbeOK)
	}
	if cov != tot {
		t.Errorf("journey coverage %d/%d, want complete", cov, tot)
	}

	journeys := trace.Journeys(events)
	if len(journeys) == 0 {
		t.Fatal("no journeys reconstructed")
	}
	delivered, multiHop := 0, 0
	for _, j := range journeys {
		if j.Outcome == trace.OutcomeDelivered {
			delivered++
		}
		if len(j.Hops) > 2 {
			multiHop++
		}
		// Per-journey sanity: events in time order, layer breakdown
		// accounts for the whole span.
		var sum time.Duration
		for i, e := range j.Events {
			if i > 0 && e.At < j.Events[i-1].At {
				t.Fatalf("journey %d events out of order", j.ID)
			}
		}
		for _, d := range j.LayerNanos {
			sum += d
		}
		if sum != j.Duration() {
			t.Errorf("journey %d layer breakdown %v != duration %v", j.ID, sum, j.Duration())
		}
	}
	if delivered == 0 {
		t.Error("no delivered journeys")
	}
	if multiHop == 0 {
		t.Error("no multi-hop journeys on a 4x4 grid — hop reconstruction broken")
	}

	// The journey IDs must survive a JSONL round trip bit-exactly.
	events2 := roundTripJSONL(t, res)
	again := trace.Journeys(events2)
	if len(again) != len(journeys) {
		t.Errorf("JSONL round trip changed journey count: %d != %d", len(again), len(journeys))
	}
}

// TestJourneysDeterministic pins that journey IDs — kernel-scoped
// counters — make reconstruction reproducible: two identical runs
// yield identical journey censuses.
func TestJourneysDeterministic(t *testing.T) {
	a, b := Run(probeSpec(), nil), Run(probeSpec(), nil)
	ja, jb := trace.Journeys(a.Trace.Events()), trace.Journeys(b.Trace.Events())
	if len(ja) != len(jb) {
		t.Fatalf("journey counts diverged: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		x, y := ja[i], jb[i]
		if x.ID != y.ID || x.Outcome != y.Outcome || len(x.Events) != len(y.Events) ||
			len(x.Hops) != len(y.Hops) || x.Duration() != y.Duration() {
			t.Errorf("journey %d diverged between identical runs:\n %+v\n %+v", x.ID, x, y)
		}
	}
}
