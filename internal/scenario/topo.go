package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"iiotds/internal/radio"
)

// This file is the topology-generator catalog: every generator turns a
// small declarative TopoSpec into node positions with seeded
// determinism — the same (spec, seed) pair always yields the same
// adjacency, so a reproducer string replays the exact deployment. The
// generators cover the deployment shapes the paper's §II inventory
// names: regular sensor fields (grid), conveyor/pipeline runs
// (pipeline), plants organized as machine clusters hung off a wired
// spine (cluster), and irregular brown-field installations (rgg).

// TopoKind names a topology generator.
type TopoKind string

// Topology kinds.
const (
	// TopoGrid is a near-square grid with fixed spacing — the regular
	// sensor field most experiments use.
	TopoGrid TopoKind = "grid"
	// TopoPipeline is a linear chain — the canonical multi-hop
	// worst case (conveyor lines, pipelines).
	TopoPipeline TopoKind = "pipeline"
	// TopoCluster is a clustered factory: backbone heads on a spine,
	// leaf devices hung around each head. Nodes carry profile labels
	// ("backbone"/"leaf") so heterogeneous specs can bind device
	// classes per role.
	TopoCluster TopoKind = "cluster"
	// TopoRGG is a random geometric graph: nodes scattered over a
	// square area, each within MaxLink of an earlier node, so the
	// deployment is connected by construction.
	TopoRGG TopoKind = "rgg"
)

// TopoSpec declaratively describes one generated topology.
type TopoSpec struct {
	Kind TopoKind
	// N is the node count (grid, pipeline, rgg). Node 0 is the border
	// router by deployment convention.
	N int
	// Spacing is the grid/pipeline node spacing in meters (default 15,
	// inside the radio's 20 m reliable range).
	Spacing float64
	// Heads and Members size a cluster topology: Heads backbone nodes
	// on the spine, Members leaves per head; total 1+Heads*(1+Members).
	Heads, Members int
	// HeadSpacing, MemberDY, MemberDX are the cluster geometry
	// (defaults 15, 12, 4): heads HeadSpacing apart on the x-axis,
	// members hung ±MemberDY off their head, advancing MemberDX per
	// member pair.
	HeadSpacing, MemberDY, MemberDX float64
	// Area is the rgg square side in meters (default 18·√N, a density
	// at which rejection placement stays cheap).
	Area float64
	// Density, when positive and Area is zero, sizes the rgg area for a
	// target uniform density: Density is the expected number of nodes
	// within MaxLink of a point if N nodes were spread uniformly, so
	// Area = MaxLink·√(π·N/Density). The connected-growth sampler
	// clusters somewhat denser than uniform, but the knob is monotone —
	// city-scale fleets (E15) use it to hold per-node degree roughly
	// constant as N grows instead of fixing the area.
	Density float64
	// MaxLink is the rgg attachment radius (default 18 m). Keeping it
	// at or below the radio's reliable range (20 m) makes the
	// generated graph connected with reliable links by construction —
	// the documented density threshold for convergence-safe scenarios.
	MaxLink float64
}

// applyDefaults fills the zero-valued geometry fields.
func (ts *TopoSpec) applyDefaults() {
	if ts.Kind == "" {
		ts.Kind = TopoGrid
	}
	if ts.Spacing == 0 {
		ts.Spacing = 15
	}
	if ts.HeadSpacing == 0 {
		ts.HeadSpacing = 15
	}
	if ts.MemberDY == 0 {
		ts.MemberDY = 12
	}
	if ts.MemberDX == 0 {
		ts.MemberDX = 4
	}
	if ts.MaxLink == 0 {
		ts.MaxLink = 18
	}
	if ts.Area == 0 {
		if ts.Density > 0 {
			ts.Area = ts.MaxLink * math.Sqrt(math.Pi*float64(ts.Nodes())/ts.Density)
		} else {
			ts.Area = 18 * math.Sqrt(float64(ts.Nodes()))
		}
	}
}

// validate reports structural errors; geometry defaults must already be
// applied.
func (ts TopoSpec) validate() error {
	switch ts.Kind {
	case TopoGrid, TopoPipeline:
		if ts.N < 2 || ts.N > 4096 {
			return fmt.Errorf("scenario: topo %s n=%d out of range [2,4096]", ts.Kind, ts.N)
		}
	case TopoRGG:
		// The rgg generator and the sharded engine scale to city-size
		// fleets (E15); the structured generators stay capped where
		// single-kernel runs are practical.
		if ts.N < 2 || ts.N > 131072 {
			return fmt.Errorf("scenario: topo rgg n=%d out of range [2,131072]", ts.N)
		}
	case TopoCluster:
		if ts.Heads < 1 || ts.Members < 0 || ts.Nodes() > 4096 {
			return fmt.Errorf("scenario: topo cluster heads=%d members=%d invalid", ts.Heads, ts.Members)
		}
	default:
		return fmt.Errorf("scenario: unknown topology kind %q", ts.Kind)
	}
	if ts.Spacing < 0 || ts.HeadSpacing < 0 || ts.MemberDX < 0 || ts.MemberDY < 0 ||
		ts.Area < 0 || ts.Density < 0 || ts.MaxLink <= 0 ||
		!finite(ts.Spacing, ts.HeadSpacing, ts.MemberDX, ts.MemberDY, ts.Area, ts.Density, ts.MaxLink) {
		return fmt.Errorf("scenario: topo %s has negative or non-finite geometry", ts.Kind)
	}
	return nil
}

// Nodes returns the total node count the spec generates.
func (ts TopoSpec) Nodes() int {
	if ts.Kind == TopoCluster {
		return 1 + ts.Heads*(1+ts.Members)
	}
	return ts.N
}

// Generate produces the node positions. The same (spec, seed) pair
// always produces the same positions; only the rgg generator consumes
// randomness, from its own rand.Rand derived from seed (independent of
// the simulation kernel's RNG, so protocol randomness never shifts the
// layout).
func (ts TopoSpec) Generate(seed int64) radio.Topology {
	spec := ts
	spec.applyDefaults()
	if err := spec.validate(); err != nil {
		panic(err)
	}
	switch spec.Kind {
	case TopoPipeline:
		return radio.LineTopology(spec.N, spec.Spacing)
	case TopoCluster:
		return spec.cluster()
	case TopoRGG:
		return spec.rgg(seed)
	default:
		return radio.GridTopology(spec.N, spec.Spacing)
	}
}

// Labels returns the per-node profile labels, parallel to Generate's
// positions, or nil when every node is the same role. Cluster
// topologies label the root and spine "backbone" and the hung devices
// "leaf".
func (ts TopoSpec) Labels() []string {
	spec := ts
	spec.applyDefaults()
	if spec.Kind != TopoCluster {
		return nil
	}
	labels := make([]string, 0, spec.Nodes())
	labels = append(labels, "backbone")
	for s := 1; s <= spec.Heads; s++ {
		labels = append(labels, "backbone")
	}
	for s := 1; s <= spec.Heads; s++ {
		for l := 0; l < spec.Members; l++ {
			labels = append(labels, "leaf")
		}
	}
	return labels
}

// cluster lays out the plant spine: the border router at the origin, a
// chain of Heads backbone nodes HeadSpacing apart, and Members leaves
// hung ±MemberDY off each head, advancing MemberDX per member pair.
// Every leaf reaches its head reliably; leaf traffic crosses
// 1..Heads+1 hops.
func (ts TopoSpec) cluster() radio.Topology {
	topo := radio.Topology{{}}
	for s := 1; s <= ts.Heads; s++ {
		topo = append(topo, radio.Position{X: float64(s) * ts.HeadSpacing})
	}
	for s := 1; s <= ts.Heads; s++ {
		for l := 0; l < ts.Members; l++ {
			y := ts.MemberDY
			if l%2 == 1 {
				y = -ts.MemberDY
			}
			topo = append(topo, radio.Position{
				X: float64(s)*ts.HeadSpacing + float64(l/2)*ts.MemberDX,
				Y: y,
			})
		}
	}
	return topo
}

// rggSeedMix decorrelates the generator stream from the kernel RNG,
// which is seeded with the same scenario seed.
const rggSeedMix = 0x7079_6c6f_6e5f

// rgg scatters N nodes over an Area×Area square, the border router at
// the center, every later node rejection-sampled until it lands within
// MaxLink of an earlier one — connected by construction at any density.
//
// The accept test uses a cell grid (cell side = MaxLink, 3×3 lookup)
// instead of scanning all placed nodes: the predicate "within MaxLink
// of some earlier node" is unchanged, so the accept/reject outcome per
// candidate — and with it the RNG draw sequence and every placement —
// is byte-identical to the original O(N) scan, while 100k-node layouts
// generate in roughly linear time.
func (ts TopoSpec) rgg(seed int64) radio.Topology {
	rng := rand.New(rand.NewSource(seed ^ rggSeedMix))
	t := make(radio.Topology, 0, ts.N)
	type cellKey struct{ x, y int32 }
	cells := make(map[cellKey][]radio.Position)
	cellOf := func(p radio.Position) cellKey {
		return cellKey{int32(math.Floor(p.X / ts.MaxLink)), int32(math.Floor(p.Y / ts.MaxLink))}
	}
	add := func(p radio.Position) {
		t = append(t, p)
		k := cellOf(p)
		cells[k] = append(cells[k], p)
	}
	near := func(p radio.Position) bool {
		c := cellOf(p)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, q := range cells[cellKey{c.x + dx, c.y + dy}] {
					if p.Distance(q) <= ts.MaxLink {
						return true
					}
				}
			}
		}
		return false
	}
	add(radio.Position{X: ts.Area / 2, Y: ts.Area / 2})
	for len(t) < ts.N {
		p := radio.Position{X: rng.Float64() * ts.Area, Y: rng.Float64() * ts.Area}
		if near(p) {
			add(p)
		}
	}
	return t
}

// finite reports whether every value is a finite float.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
