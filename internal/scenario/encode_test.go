package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/mac"
	"iiotds/internal/radio"
)

func specFixtures() []Spec {
	return []Spec{
		{Seed: 1, Topo: TopoSpec{Kind: TopoGrid, N: 9}},
		{
			Seed: 42,
			Topo: TopoSpec{Kind: TopoCluster, Heads: 3, Members: 2},
			Classes: []ClassSpec{
				{Kind: "csma"},
				{Kind: "lpl", Wake: 250 * time.Millisecond},
			},
			WithCoAP: true,
			Workload: WorkloadSpec{
				ProbeEvery: 5 * time.Second, PushEvery: 10 * time.Second,
				AggEpoch: 15 * time.Second, HeartbeatEvery: 20 * time.Second,
			},
			Faults: FaultSpec{
				Churn:  NodeSel{Kind: "odd"},
				MeanUp: 25 * time.Second, MinUp: 20 * time.Second,
				MeanDown: 6 * time.Second, MinDown: 5 * time.Second,
				FlapLink: [2]int{1, 2}, FlapEvery: time.Minute, FlapPRR: 0.2,
				GELink: [2]int{5, 8}, GEPGoodBad: 0.1, GEPBadGood: 0.3,
				GEBadPRR: 0.3, GEStep: 5 * time.Second,
				Part: NodeSel{Kind: "farhalf"}, PartEvery: 150 * time.Second,
				PartHold: 10 * time.Second,
			},
			TraceCapacity: 1 << 14,
		},
		{
			Seed:   -7,
			Topo:   TopoSpec{Kind: TopoRGG, N: 12},
			Faults: FaultSpec{Churn: NodeSel{Kind: "list", IDs: []int{1, 3, 5}}, MeanUp: 30 * time.Second, MinUp: 30 * time.Second, MeanDown: 5 * time.Second, MinDown: 5 * time.Second},
		},
		{Seed: 0, Topo: TopoSpec{Kind: TopoPipeline, N: 5}, Classes: []ClassSpec{{Kind: "rimac"}}},
		{Seed: 15, Topo: TopoSpec{Kind: TopoRGG, N: 96, Density: 6}, Workload: WorkloadSpec{HeartbeatEvery: 15 * time.Second}},
		{
			Seed:     21,
			Topo:     TopoSpec{Kind: TopoGrid, N: 9},
			Workload: WorkloadSpec{IngestEvery: 5 * time.Second},
			Store: StoreSpec{Mode: "cp", Shards: 4, Replicas: 3,
				PartAt: 30 * time.Second, PartHold: 20 * time.Second},
		},
		{Seed: 22, Topo: TopoSpec{Kind: TopoGrid, N: 4}, Workload: WorkloadSpec{IngestEvery: 10 * time.Second}},
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, spec := range specFixtures() {
		line := Format(spec)
		got, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		want := spec
		want.applyDefaults()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip drifted:\n line: %s\n got:  %+v\n want: %+v", line, got, want)
		}
		if again := Format(got); again != line {
			t.Errorf("Format not stable:\n  %s\n  %s", line, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"scn2;seed=1;topo=grid:n=9",
		"scn1",
		"scn1;topo=grid:n=9",                                    // missing seed
		"scn1;seed=1",                                           // missing topo
		"scn1;seed=1;seed=2;topo=grid:n=9",                      // duplicate field
		"scn1;seed=1;topo=grid:n=9;bogus=1",                     // unknown field
		"scn1;seed=1;topo=grid:n=9:heads=3",                     // subfield of wrong kind
		"scn1;seed=1;topo=grid:n=1",                             // fleet too small
		"scn1;seed=1;topo=torus:n=9",                            // unknown kind
		"scn1;seed=1;topo=grid:n=9;classes=tdma",                // unknown class
		"scn1;seed=1;topo=grid:n=9;probe=5s",                    // probe without coap
		"scn1;seed=1;topo=grid:n=9;conv=-3s",                    // negative duration
		"scn1;seed=1;topo=grid:n=9;churn=odd:up=25s",            // churn with no recovery delay
		"scn1;seed=1;topo=grid:n=9;flap=2-2:every=10s:prr=0.1",  // degenerate link
		"scn1;seed=1;topo=grid:n=9;flap=1-20:every=10s:prr=0.1", // link out of range
		"scn1;seed=1;topo=grid:n=9;flap=1-2:every=0s:prr=0.1",   // zero period
		"scn1;seed=1;topo=grid:n=9;ge=1-2:pgb=1.5:pbg=0.3:bad=0.3:step=5s", // p>1
		"scn1;seed=1;topo=grid:n=9;churn=list(0.3):up=25s:down=5s",         // root in list
		"scn1;seed=1;topo=grid:n=9;coap=yes",
		"scn1;seed=1;topo=grid:n=9;store=ap:shards=2:rep=3",             // store without ingest
		"scn1;seed=1;topo=grid:n=9;ingest=5s;store=xx:shards=2:rep=3",   // unknown mode
		"scn1;seed=1;topo=grid:n=9;ingest=5s;store=ap:shards=0:rep=3",   // shards out of range
		"scn1;seed=1;topo=grid:n=9;ingest=5s;store=ap:shards=2:rep=9",   // replicas out of range
		"scn1;seed=1;topo=grid:n=9;ingest=5s;store=ap:hold=0s",          // zero episode hold
		"scn1;seed=1;topo=grid:n=9;ingest=5s;store=ap:part=10m:hold=5s", // episode past soak
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", in)
		}
	}
}

func TestParseCanonicalizesDurations(t *testing.T) {
	// Non-canonical duration spellings parse fine; Format then emits the
	// canonical spelling, and that line is a fixed point.
	in := "scn1;seed=1;topo=grid:n=9;conv=180s"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Converge != 3*time.Minute {
		t.Fatalf("conv = %s", s.Converge)
	}
	line := Format(s)
	if !strings.Contains(line, "conv=3m0s") {
		t.Errorf("canonical line %q should spell conv=3m0s", line)
	}
	s2, err := Parse(line)
	if err != nil || Format(s2) != line {
		t.Errorf("canonical line is not a fixed point: %q", line)
	}
}

func TestFormatPanicsOnExpertSeams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Format should panic on a spec with Factories")
		}
	}()
	s := Spec{Seed: 1, Topo: TopoSpec{Kind: TopoGrid, N: 4}}
	s.Factories.MAC = func(*radio.Medium, radio.NodeID, *core.Profile) mac.MAC { return nil }
	Format(s)
}
