package scenario

import (
	"math"
	"math/rand"
	"testing"

	"iiotds/internal/radio"
)

// maxReliableLink mirrors radio.DefaultParams().RangeReliable: generators
// promise connectivity through links no longer than this.
const maxReliableLink = 20.0

// connected reports whether the positions form a connected graph under
// links of length ≤ maxLink.
func connected(pos []struct{ X, Y float64 }, maxLink float64) bool {
	n := len(pos)
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if seen[j] {
				continue
			}
			dx, dy := pos[i].X-pos[j].X, pos[i].Y-pos[j].Y
			if dx*dx+dy*dy <= maxLink*maxLink {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == n
}

func flatten(t radio.Topology) []struct{ X, Y float64 } {
	out := make([]struct{ X, Y float64 }, len(t))
	for i, p := range t {
		out[i] = struct{ X, Y float64 }{p.X, p.Y}
	}
	return out
}

func TestTopoNodeCounts(t *testing.T) {
	cases := []struct {
		spec TopoSpec
		want int
	}{
		{TopoSpec{Kind: TopoGrid, N: 9}, 9},
		{TopoSpec{Kind: TopoPipeline, N: 6}, 6},
		{TopoSpec{Kind: TopoRGG, N: 14}, 14},
		{TopoSpec{Kind: TopoCluster, Heads: 3, Members: 4}, 1 + 3*5},
		{TopoSpec{Kind: TopoCluster, Heads: 2, Members: 0}, 3},
	}
	for _, c := range cases {
		if got := c.spec.Nodes(); got != c.want {
			t.Errorf("%s: Nodes() = %d, want %d", c.spec.Kind, got, c.want)
		}
		if got := len(c.spec.Generate(1)); got != c.want {
			t.Errorf("%s: len(Generate) = %d, want %d", c.spec.Kind, got, c.want)
		}
	}
}

func TestTopoSeedDeterminism(t *testing.T) {
	specs := []TopoSpec{
		{Kind: TopoGrid, N: 16},
		{Kind: TopoPipeline, N: 8},
		{Kind: TopoCluster, Heads: 3, Members: 3},
		{Kind: TopoRGG, N: 24},
	}
	for _, s := range specs {
		a, b := s.Generate(42), s.Generate(42)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", s.Kind)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: position %d differs across identical seeds: %v vs %v", s.Kind, i, a[i], b[i])
			}
		}
	}
	// Different seeds must move an RGG (the only seed-sensitive kind).
	s := TopoSpec{Kind: TopoRGG, N: 24}
	a, b := s.Generate(1), s.Generate(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("rgg: identical layout for different seeds")
	}
}

func TestTopoConnectivity(t *testing.T) {
	// At the documented defaults (grid/pipeline spacing 15 m, RGG
	// max-link 18 m vs the 20 m reliable range) every generated layout
	// must be connected through reliable links.
	specs := []TopoSpec{
		{Kind: TopoGrid, N: 25},
		{Kind: TopoPipeline, N: 10},
		{Kind: TopoCluster, Heads: 4, Members: 4},
	}
	for _, s := range specs {
		if !connected(flatten(s.Generate(7)), maxReliableLink) {
			t.Errorf("%s: generated layout is not connected at reliable range", s.Kind)
		}
	}
	for seed := int64(0); seed < 25; seed++ {
		s := TopoSpec{Kind: TopoRGG, N: 20}
		if !connected(flatten(s.Generate(seed)), maxReliableLink) {
			t.Errorf("rgg seed %d: layout not connected at reliable range", seed)
		}
	}
}

func TestTopoClusterLabels(t *testing.T) {
	s := TopoSpec{Kind: TopoCluster, Heads: 2, Members: 2}
	s.applyDefaults()
	labels := s.Labels()
	if len(labels) != s.Nodes() {
		t.Fatalf("labels length %d, want %d", len(labels), s.Nodes())
	}
	wantBackbone := 1 + s.Heads
	backbone := 0
	for _, l := range labels {
		switch l {
		case "backbone":
			backbone++
		case "leaf":
		default:
			t.Fatalf("unexpected label %q", l)
		}
	}
	if backbone != wantBackbone {
		t.Errorf("backbone labels = %d, want %d", backbone, wantBackbone)
	}
	if (TopoSpec{Kind: TopoGrid, N: 4}).Labels() != nil {
		t.Error("grid topology should have no labels")
	}
}

func TestTopoValidate(t *testing.T) {
	bad := []TopoSpec{
		{Kind: "torus", N: 9},
		{Kind: TopoGrid, N: 1},
		{Kind: TopoGrid, N: 5000},
		{Kind: TopoCluster, Heads: 0},
		{Kind: TopoGrid, N: 9, Spacing: -1},
		{Kind: TopoRGG, N: 9, MaxLink: -2},
		{Kind: TopoRGG, N: 131073},
		{Kind: TopoRGG, N: 9, Density: -1},
	}
	for _, s := range bad {
		s.applyDefaults()
		if err := s.validate(); err == nil {
			t.Errorf("%+v: validate accepted invalid spec", s)
		}
	}
	// rgg alone scales past the structured generators' cap.
	big := TopoSpec{Kind: TopoRGG, N: 131072}
	big.applyDefaults()
	if err := big.validate(); err != nil {
		t.Errorf("rgg n=131072 should validate: %v", err)
	}
}

// TestRGGGridMatchesBruteForce pins the grid acceleration to the
// original O(N²) rejection loop: same RNG stream, same accept predicate,
// therefore byte-identical placements. Any divergence would silently
// re-layout every rgg scenario and experiment.
func TestRGGGridMatchesBruteForce(t *testing.T) {
	for _, n := range []int{2, 16, 200} {
		for seed := int64(0); seed < 5; seed++ {
			ts := TopoSpec{Kind: TopoRGG, N: n}
			ts.applyDefaults()
			got := ts.rgg(seed)
			rng := rand.New(rand.NewSource(seed ^ rggSeedMix))
			want := radio.Topology{{X: ts.Area / 2, Y: ts.Area / 2}}
			for len(want) < ts.N {
				p := radio.Position{X: rng.Float64() * ts.Area, Y: rng.Float64() * ts.Area}
				for _, q := range want {
					if p.Distance(q) <= ts.MaxLink {
						want = append(want, p)
						break
					}
				}
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d seed=%d: position %d drifted: grid %v, brute %v", n, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRGGDensityArea pins the Density→Area derivation and its
// precedence: an explicit Area always wins.
func TestRGGDensityArea(t *testing.T) {
	ts := TopoSpec{Kind: TopoRGG, N: 1000, Density: 6}
	ts.applyDefaults()
	want := ts.MaxLink * math.Sqrt(math.Pi*1000/6)
	if math.Abs(ts.Area-want) > 1e-9 {
		t.Fatalf("density-derived area = %v, want %v", ts.Area, want)
	}
	explicit := TopoSpec{Kind: TopoRGG, N: 100, Density: 6, Area: 123}
	explicit.applyDefaults()
	if explicit.Area != 123 {
		t.Fatalf("explicit area overridden: %v", explicit.Area)
	}
	// The knob is monotone: a higher Density target yields a denser
	// realized layout (the growth sampler clusters above the uniform
	// target, but shrinking the area still packs nodes tighter).
	meanDeg := func(d float64) float64 {
		s := TopoSpec{Kind: TopoRGG, N: 500, Density: d}
		s.applyDefaults()
		topo := s.Generate(11)
		var within int
		for i, p := range topo {
			for j, q := range topo {
				if i != j && p.Distance(q) <= s.MaxLink {
					within++
				}
			}
		}
		return float64(within) / float64(len(topo))
	}
	if lo, hi := meanDeg(6), meanDeg(96); lo >= hi {
		t.Fatalf("density knob not monotone: deg(6)=%v >= deg(96)=%v", lo, hi)
	}
}
