// Package scenario is the declarative scenario engine: deployments,
// workloads, and fault schedules expressed as data (a Spec), generated
// topologies with seeded determinism (TopoSpec), a cross-cutting
// invariant checker fed from the flight recorder (invariant.go), and a
// property-test harness that sweeps random specs and shrinks failures
// to minimal reproducer strings (quick.go). The paper's position is
// that an industrial deployment's correctness is an emergent,
// cross-layer property — so the unit under test here is a whole
// deployment run, not a protocol, and the assertions are invariants
// that must hold on every run regardless of topology, schedule, or
// seed.
//
// Specs compose on top of the existing layers rather than replacing
// them: topologies become core.Topology plans for the profile/stack
// builder, fault schedules become fault.ChurnConfig for the churn
// engine, and runs execute on the deterministic kernel — so one Spec +
// seed names exactly one run, replayable from its reproducer string
// (encode.go, `iiotsim -scenario`).
package scenario

import (
	"fmt"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/fault"
	"iiotds/internal/radio"
	"iiotds/internal/store"
)

// ClassSpec names one device class by MAC discipline. It is the
// data-only projection of core.Profile that the reproducer codec can
// round-trip; specs needing full profile control (custom routers,
// tenants, RNFD) use the Spec.Profiles expert seam instead.
type ClassSpec struct {
	// Kind is the MAC discipline: "csma", "lpl", or "rimac".
	Kind string
	// Wake is the LPL wake interval (ignored by other kinds; zero uses
	// the MAC layer's own default).
	Wake time.Duration
}

// macKind maps the class kind to the core MAC selector.
func (c ClassSpec) macKind() (core.MACKind, error) {
	switch c.Kind {
	case "", "csma":
		return core.MACCSMA, nil
	case "lpl":
		return core.MACLPL, nil
	case "rimac":
		return core.MACRIMAC, nil
	}
	return 0, fmt.Errorf("scenario: unknown class kind %q", c.Kind)
}

// WorkloadSpec schedules the application traffic of a run. Zero-valued
// fields disable their generator.
type WorkloadSpec struct {
	// ProbeEvery drives round-robin confirmable CoAP GETs from the
	// border router to the fleet (requires Spec.WithCoAP).
	ProbeEvery time.Duration
	// PushEvery has every non-root node push a raw reading to the root.
	PushEvery time.Duration
	// AggEpoch runs a continuous in-network aggregation query.
	AggEpoch time.Duration
	// HeartbeatEvery has every non-root node send an AEAD-sealed
	// heartbeat to the root — the traffic the replay-monotone invariant
	// observes across reboots.
	HeartbeatEvery time.Duration
	// IngestEvery has every non-root node push a telemetry reading to
	// the root, where it is batched into the sharded time-series store
	// (Spec.Store) — the gateway→storage fan-in the store-converges
	// invariant observes.
	IngestEvery time.Duration
}

// StoreSpec configures the data-storage tier behind the ingest
// workload: a partitioned, replicated time-series store at the root.
// It is only meaningful when WorkloadSpec.IngestEvery is set; defaults
// (2 shards × 3 replicas, AP) are applied then.
type StoreSpec struct {
	// Shards is the partition count P (default 2).
	Shards int
	// Replicas is the replication factor R per shard (default 3).
	Replicas int
	// Mode is the per-shard consistency policy: "ap" (CRDT +
	// anti-entropy, the default) or "cp" (quorum).
	Mode string
	// PartAt/PartHold schedule a storage-tier partition episode: PartAt
	// into the soak phase, the last replica of every shard is cut off
	// for PartHold, then healed (with a CP repair push). The episode
	// must complete within the soak so the store can reconverge before
	// the invariant check. Zero PartHold disables the episode.
	PartAt, PartHold time.Duration
}

// enabled reports whether the store tier runs (it exists to serve the
// ingest workload).
func (st StoreSpec) enabled(w WorkloadSpec) bool { return w.IngestEvery > 0 }

// NodeSel selects a node subset by rule, so a fault schedule stays a
// few bytes of data at any fleet size.
type NodeSel struct {
	// Kind is the selection rule: "" (empty selection), "odd" (IDs
	// 1,3,5,…; never the root), "even" (IDs 2,4,6,…; never the root),
	// "farhalf" (IDs n/2..n-1), or "list" (exactly IDs).
	Kind string
	// IDs is the explicit set for Kind "list".
	IDs []int
}

// Resolve expands the selection against an n-node fleet.
func (s NodeSel) Resolve(n int) []radio.NodeID {
	var out []radio.NodeID
	switch s.Kind {
	case "odd":
		for i := 1; i < n; i += 2 {
			out = append(out, radio.NodeID(i))
		}
	case "even":
		for i := 2; i < n; i += 2 {
			out = append(out, radio.NodeID(i))
		}
	case "farhalf":
		for i := n / 2; i < n; i++ {
			out = append(out, radio.NodeID(i))
		}
	case "list":
		for _, id := range s.IDs {
			out = append(out, radio.NodeID(id))
		}
	}
	return out
}

// validate checks the selection against an n-node fleet.
func (s NodeSel) validate(n int) error {
	switch s.Kind {
	case "", "odd", "even", "farhalf":
	case "list":
		if len(s.IDs) == 0 {
			return fmt.Errorf("scenario: list selector with no IDs")
		}
		for _, id := range s.IDs {
			if id < 1 || id >= n {
				return fmt.Errorf("scenario: selector ID %d out of range [1,%d)", id, n)
			}
		}
	default:
		return fmt.Errorf("scenario: unknown selector kind %q", s.Kind)
	}
	return nil
}

// FaultSpec is the data form of a fault.ChurnConfig: crash/recover
// churn over a selection, one flapping link, one Gilbert–Elliott bursty
// link, and periodic partition storms. Zero-valued sections disable
// their generator, mirroring the churn engine's own convention.
type FaultSpec struct {
	// Churn selects the crash/recover candidates; MeanUp..MinDown are
	// the churn engine's hold parameters.
	Churn             NodeSel
	MeanUp, MinUp     time.Duration
	MeanDown, MinDown time.Duration

	// FlapLink flaps between full delivery and FlapPRR with exponential
	// holds of mean FlapEvery. The zero pair disables it.
	FlapLink  [2]int
	FlapEvery time.Duration
	FlapPRR   float64

	// GELink is modulated by a Gilbert–Elliott chain stepped every
	// GEStep with the given transition probabilities and bad-state PRR.
	GELink                           [2]int
	GEPGoodBad, GEPBadGood, GEBadPRR float64
	GEStep                           time.Duration

	// Partition storms: after exponential gaps of mean PartEvery, the
	// Part selection is cleaved off for PartHold, then healed.
	Part                NodeSel
	PartEvery, PartHold time.Duration
}

// enabled reports whether any fault generator is configured.
func (f FaultSpec) enabled() bool {
	return (f.Churn.Kind != "" && f.MeanUp > 0) ||
		(f.FlapEvery > 0 && f.FlapLink != [2]int{}) ||
		(f.GEStep > 0 && f.GELink != [2]int{}) ||
		(f.PartEvery > 0 && f.Part.Kind != "")
}

// ChurnConfig expands the spec into the churn engine's configuration
// for an n-node fleet. The expansion is pure data: the same spec and n
// always produce the same config, and therefore — with the engine's
// seeded generator — the same fault schedule.
func (f FaultSpec) ChurnConfig(n int) fault.ChurnConfig {
	cfg := fault.ChurnConfig{
		Nodes:  f.Churn.Resolve(n),
		MeanUp: f.MeanUp, MinUp: f.MinUp,
		MeanDown: f.MeanDown, MinDown: f.MinDown,
	}
	if f.FlapEvery > 0 && f.FlapLink != [2]int{} {
		cfg.FlapLinks = [][2]radio.NodeID{{radio.NodeID(f.FlapLink[0]), radio.NodeID(f.FlapLink[1])}}
		cfg.MeanFlap = f.FlapEvery
		cfg.FlapPRR = f.FlapPRR
	}
	if f.GEStep > 0 && f.GELink != [2]int{} {
		cfg.GELinks = []fault.GELink{{
			A: radio.NodeID(f.GELink[0]), B: radio.NodeID(f.GELink[1]),
			PGoodBad: f.GEPGoodBad, PBadGood: f.GEPBadGood, BadPRR: f.GEBadPRR,
		}}
		cfg.GEStep = f.GEStep
	}
	if f.PartEvery > 0 && f.Part.Kind != "" {
		cfg.MeanPartition = f.PartEvery
		cfg.PartitionHold = f.PartHold
		cfg.Groups = [][]radio.NodeID{f.Part.Resolve(n)}
	}
	return cfg
}

// validate checks the fault schedule against an n-node fleet.
func (f FaultSpec) validate(n int) error {
	if err := f.Churn.validate(n); err != nil {
		return err
	}
	if err := f.Part.validate(n); err != nil {
		return err
	}
	for _, d := range []time.Duration{
		f.MeanUp, f.MinUp, f.MeanDown, f.MinDown,
		f.FlapEvery, f.GEStep, f.PartEvery, f.PartHold,
	} {
		if d < 0 {
			return fmt.Errorf("scenario: negative fault duration")
		}
	}
	for _, p := range []float64{f.FlapPRR, f.GEPGoodBad, f.GEPBadGood, f.GEBadPRR} {
		if p < 0 || p > 1 || !finite(p) {
			return fmt.Errorf("scenario: fault probability %v out of [0,1]", p)
		}
	}
	for _, l := range [][2]int{f.FlapLink, f.GELink} {
		if l == [2]int{} {
			continue
		}
		if l[0] < 0 || l[0] >= n || l[1] < 0 || l[1] >= n || l[0] == l[1] {
			return fmt.Errorf("scenario: fault link %d-%d invalid for %d nodes", l[0], l[1], n)
		}
	}
	if f.Churn.Kind != "" && f.MeanUp > 0 && f.MeanDown == 0 && f.MinDown == 0 {
		return fmt.Errorf("scenario: churn with no recovery delay")
	}
	return nil
}

// Spec is one declarative scenario: a generated topology, the device
// classes deployed on it, the workload and fault schedules, and the
// run phase durations. Together with its Seed it names exactly one
// deterministic run.
type Spec struct {
	// Seed drives all run randomness (kernel, topology generation,
	// fault schedule derivation).
	Seed int64
	// Topo generates the node positions (and, for cluster topologies,
	// per-node role labels).
	Topo TopoSpec
	// Classes are the device classes. With role labels (cluster), class
	// 0 is the backbone and class 1 (or 0 if single) the leaves; without
	// labels, node i runs class i mod len(Classes). Empty means one
	// default CSMA class.
	Classes []ClassSpec
	// Profiles, when non-empty, bypasses Classes entirely: the listed
	// core.Profiles are used verbatim and topology labels must match
	// profile names. It is the expert seam for experiments needing full
	// profile control; it is not representable in a reproducer string.
	Profiles []core.Profile
	// WithCoAP attaches CoAP endpoints to every class.
	WithCoAP bool
	// Converge bounds the initial convergence wait; Soak is the
	// measured phase (faults active); Drain bounds the settling phase
	// after faults stop.
	Converge, Soak, Drain time.Duration
	// Workload and Faults schedule the run's traffic and fault load.
	Workload WorkloadSpec
	Faults   FaultSpec
	// Store configures the storage tier the ingest workload feeds.
	Store StoreSpec
	// TraceCapacity sizes the flight-recorder ring (0 = the process
	// default, negative = tracing disabled). Run raises a zero value to
	// a scenario default because the invariant checker reads the trace.
	TraceCapacity int
	// CheckEvery is the invariant snapshot period (0 = default 10 s).
	CheckEvery time.Duration
	// Factories override per-layer stack construction — the test seam
	// bug-injection harnesses use. Not representable in a reproducer
	// string.
	Factories core.Factories
}

// applyDefaults fills the phase and checker defaults.
func (s *Spec) applyDefaults() {
	s.Topo.applyDefaults()
	if len(s.Classes) == 0 && len(s.Profiles) == 0 {
		s.Classes = []ClassSpec{{Kind: "csma"}}
	}
	if s.Converge == 0 {
		s.Converge = 3 * time.Minute
	}
	if s.Soak == 0 {
		s.Soak = 2 * time.Minute
	}
	if s.Drain == 0 {
		s.Drain = time.Minute
	}
	if s.CheckEvery == 0 {
		s.CheckEvery = 10 * time.Second
	}
	if s.Store.enabled(s.Workload) {
		if s.Store.Shards == 0 {
			s.Store.Shards = 2
		}
		if s.Store.Replicas == 0 {
			s.Store.Replicas = 3
		}
		if s.Store.Mode == "" {
			s.Store.Mode = "ap"
		}
	}
}

// Validate reports the first structural error in the spec. Defaults are
// applied to a copy first, so a zero-filled section is never an error.
func (s Spec) Validate() error {
	s.applyDefaults()
	if err := s.Topo.validate(); err != nil {
		return err
	}
	n := s.Topo.Nodes()
	for _, c := range s.Classes {
		if _, err := c.macKind(); err != nil {
			return err
		}
		if c.Wake < 0 {
			return fmt.Errorf("scenario: negative class wake interval")
		}
	}
	for _, d := range []time.Duration{
		s.Converge, s.Soak, s.Drain, s.CheckEvery,
		s.Workload.ProbeEvery, s.Workload.PushEvery,
		s.Workload.AggEpoch, s.Workload.HeartbeatEvery,
		s.Workload.IngestEvery, s.Store.PartAt, s.Store.PartHold,
	} {
		if d < 0 {
			return fmt.Errorf("scenario: negative duration in spec")
		}
	}
	if s.Workload.ProbeEvery > 0 && !s.WithCoAP {
		return fmt.Errorf("scenario: probe workload requires WithCoAP")
	}
	if err := s.Store.validate(s.Workload, s.Soak); err != nil {
		return err
	}
	return s.Faults.validate(n)
}

// validate checks the store section against the workload and soak.
func (st StoreSpec) validate(w WorkloadSpec, soak time.Duration) error {
	if !st.enabled(w) {
		if st != (StoreSpec{}) {
			return fmt.Errorf("scenario: store section requires the ingest workload")
		}
		return nil
	}
	if st.Shards < 1 || st.Shards > 64 {
		return fmt.Errorf("scenario: store shards %d out of [1,64]", st.Shards)
	}
	if st.Replicas < 1 || st.Replicas > 7 {
		return fmt.Errorf("scenario: store replicas %d out of [1,7]", st.Replicas)
	}
	if _, err := store.ParseMode(st.Mode); err != nil {
		return err
	}
	if st.PartHold > 0 && st.PartAt+st.PartHold >= soak {
		return fmt.Errorf("scenario: store partition episode must end within the soak phase")
	}
	return nil
}
