package scenario

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/clock"
	"iiotds/internal/coap"
	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/security"
	"iiotds/internal/sim"
	"iiotds/internal/store"
	"iiotds/internal/trace"
	"iiotds/internal/trial"
)

// storeSettle is how long the run lets the storage tier reconcile after
// the final batch flush: several anti-entropy intervals (the sharded
// store gossips every second by default), well past one push-pull round
// per replica.
const storeSettle = 5 * time.Second

// Result summarizes one scenario run. Counters exist so tests and the
// property harness can tell a vacuous pass (nothing happened) from a
// real one; Violations is the verdict.
type Result struct {
	// Repro is the reproducer string for the run's spec (empty when the
	// spec uses the non-encodable Profiles/Factories seams).
	Repro string
	// Converged reports whether the DODAG completed within
	// Spec.Converge; ConvergeIn is the time it took.
	Converged  bool
	ConvergeIn time.Duration
	// Crashes and Recoveries count the churn engine's injections.
	Crashes, Recoveries int
	// Workload counters.
	ProbeOK, ProbeFail      int
	Pushes, PushDelivered   int
	AggEpochs               int
	Heartbeats, HeartbeatOK int
	// Ingest workload counters: readings sent by nodes, delivered to
	// the root, and batches acked/failed by the store tier.
	IngestSent, IngestDelivered int
	IngestAcked, IngestFailed   uint64
	// StoreConverged reports whether every store shard's replicas held
	// equal digests at the end of the run (also surfaced as the
	// store-converges invariant).
	StoreConverged bool
	// Violations are the invariant breaches observed; empty means the
	// run passed.
	Violations []Violation
	// Trace is the run's flight recorder (scenarios always trace; see
	// scenarioTraceCapacity). Callers can export it with WriteJSONL or
	// reconstruct packet journeys from it with trace.Journeys.
	Trace *trace.Recorder
}

// Failed reports whether the run breached any invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// scenarioTraceCapacity is the flight-recorder ring Run uses when the
// spec leaves TraceCapacity at zero: large enough that short property
// runs keep their full transmit history for the causal scan.
const scenarioTraceCapacity = 1 << 16

// rekeyOnReboot controls whether a recovered node re-establishes its
// heartbeat session (fresh key, fresh counters on both ends) — the
// correct behavior. Tests set it to false to reintroduce the
// reuse-old-session-after-reboot bug class and prove the
// replay-monotone invariant catches it.
var rekeyOnReboot = true

// Run executes one scenario end to end: build, converge, arm faults,
// drive the workloads, soak, drain, and evaluate the invariant catalog.
// tr may be nil outside a sweep (e.g. the iiotsim -scenario replay).
func Run(spec Spec, tr *trial.Trial) Result {
	spec.applyDefaults()
	if spec.TraceCapacity == 0 {
		spec.TraceCapacity = scenarioTraceCapacity
	}
	b := Build(spec)
	spec = b.Spec
	d := b.D
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)

	res := Result{Trace: d.Trace}
	if spec.Encodable() {
		res.Repro = Format(spec)
	}
	res.Converged, res.ConvergeIn = d.RunUntilConverged(spec.Converge)

	chk := newChecker(d, spec.CheckEvery)
	snap := d.K.Every(spec.CheckEvery, 0, chk.snapshot)

	b.ArmFaults()
	churned := spec.Faults.Churn.Resolve(spec.Topo.Nodes())

	// --- heartbeat workload (feeds the replay-monotone invariant) ---
	var hb *heartbeats
	if spec.Workload.HeartbeatEvery > 0 {
		hb = newHeartbeats(d, chk, &res)
		if b.Churn != nil {
			prev := b.Churn.OnRecover
			b.Churn.OnRecover = func(id radio.NodeID) {
				if prev != nil {
					prev(id)
				}
				hb.reboot(int(id))
			}
		}
	}

	// --- push workload ---
	var stops []*sim.Repeater
	if every := spec.Workload.PushEvery; every > 0 {
		d.Root().Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
			res.PushDelivered++
		})
		for _, n := range d.Nodes[1:] {
			n := n
			stops = append(stops, d.K.Every(every, every/4, func() {
				if !n.Up() {
					return
				}
				res.Pushes++
				_ = n.Router.SendUp(lowpan.ProtoRaw, []byte{0x5c, byte(n.ID)})
			}))
		}
	}

	// --- ingest workload (feeds the store-converges invariant) ---
	var st *store.Sharded
	var app *store.Appender
	if every := spec.Workload.IngestEvery; every > 0 {
		mode, err := store.ParseMode(spec.Store.Mode)
		if err != nil {
			panic(err) // unreachable: Validate gates Run in every caller path
		}
		st = store.NewSharded(clock.Kernel{K: d.K}, store.ShardedConfig{
			Shards: spec.Store.Shards,
			Policy: store.ShardPolicy{Mode: mode, Replicas: spec.Store.Replicas},
			Seed:   spec.Seed,
			Rec:    d.Trace,
			Node:   -1,
		})
		defer st.Stop()
		app = st.NewAppender()
		names := make([]string, len(d.Nodes))
		for i := range names {
			names[i] = fmt.Sprintf("node/%d/reading", i)
		}
		d.Root().Router.Handle(lowpan.ProtoIngest, func(src radio.NodeID, payload []byte) {
			i := int(src)
			if i <= 0 || i >= len(names) || len(payload) < 2 {
				return
			}
			res.IngestDelivered++
			app.Append(names[i], store.Point{T: time.Duration(d.K.Now()), V: float64(payload[1])})
		})
		for _, n := range d.Nodes[1:] {
			n := n
			stops = append(stops, d.K.Every(every, every/4, func() {
				if !n.Up() {
					return
				}
				res.IngestSent++
				_ = n.Router.SendUp(lowpan.ProtoIngest, []byte{0x16, byte(n.ID)})
			}))
		}
		// Drain partial batches periodically so readings replicate during
		// the run rather than piling up at the end.
		stops = append(stops, d.K.Every(spec.CheckEvery, 0, func() { app.Flush() }))
		// Storage-tier partition episode: cut the last replica of every
		// shard PartAt into the soak, heal PartHold later, and push a CP
		// repair (AP shards reconverge via gossip on their own).
		if spec.Store.PartHold > 0 {
			d.K.At(d.K.Now()+sim.Time(spec.Store.PartAt), func() {
				st.PartitionReplica(spec.Store.Replicas - 1)
			})
			d.K.At(d.K.Now()+sim.Time(spec.Store.PartAt+spec.Store.PartHold), func() {
				st.Heal()
				st.Repair()
			})
		}
	}

	// --- aggregation workload ---
	if epoch := spec.Workload.AggEpoch; epoch > 0 {
		for i, n := range d.Nodes[1:] {
			v := 20 + float64(i%10)
			n.SetSampler(func(attr string) (float64, bool) { return v, true })
		}
		d.Root().Agg.OnResult = func(agg.Result) { res.AggEpochs++ }
		d.Root().Agg.RunQuery(agg.Query{ID: 1, Fn: agg.Avg, Attr: "temp", Epoch: epoch, MaxDepth: 16})
	}

	// --- CoAP probe workload ---
	if every := spec.Workload.ProbeEvery; every > 0 {
		targets := churned
		if len(targets) == 0 {
			for _, n := range d.Nodes[1:] {
				targets = append(targets, n.ID)
			}
		}
		for _, id := range targets {
			d.Nodes[int(id)].Server.Resource("status").Get(
				func(string, *coap.Message) *coap.Message { return coap.TextResponse("ok") })
		}
		next := 0
		stops = append(stops, d.K.Every(every, 0, func() {
			id := targets[next%len(targets)]
			next++
			d.Root().CoAP.Get(d.Nodes[int(id)].Addr(), "status", func(m *coap.Message, err error) {
				if err == nil && m.Code.IsSuccess() {
					res.ProbeOK++
				} else {
					res.ProbeFail++
				}
			})
		}))
	}
	if hb != nil {
		stops = append(stops, hb.start(spec.Workload.HeartbeatEvery)...)
	}

	// --- soak ---
	if b.Churn != nil {
		b.Churn.Start()
	}
	d.K.RunFor(spec.Soak)
	if b.Churn != nil {
		b.Churn.Stop()
		res.Crashes = b.Churn.Crashes()
		res.Recoveries = b.Churn.Recoveries()
	}
	for _, s := range stops {
		s.Stop()
	}

	// --- drain: owed recoveries fire, churned nodes re-attach, and the
	// DODAG reaches a loop-free instant ---
	deadline := d.K.Now() + sim.Time(spec.Drain)
	for d.K.Now() < deadline {
		settled := loopFree(d)
		for _, id := range churned {
			if !settled {
				break
			}
			if !healthy(d, id) {
				settled = false
			}
		}
		if settled {
			break
		}
		d.K.RunFor(time.Second)
	}
	if b.Churn != nil {
		res.Recoveries = b.Churn.Recoveries()
	}
	snap.Stop()

	// --- store settle: flush the final partial batches, give the tier a
	// few anti-entropy rounds to reconcile, and check convergence ---
	if st != nil {
		app.Flush()
		d.K.RunFor(storeSettle)
		res.IngestAcked, res.IngestFailed = app.Acked(), app.Failed()
		res.StoreConverged = st.Converged()
		if !res.StoreConverged {
			chk.storeDiverged(fmt.Sprintf("%d/%d store shards converged after drain",
				st.ConvergedShards(), st.NumShards()))
		}
	}

	// The rejoin invariant only makes sense for fleets that attached in
	// the first place: a node that never joined did not fail to
	// *re*join. Non-convergence is reported via Result.Converged, not
	// as a violation, to keep the harness free of capacity flakiness.
	if !res.Converged {
		churned = nil
	}
	res.Violations = chk.finish(churned)
	return res
}

// Encodable reports whether the spec can round-trip through a
// reproducer string (the Profiles and Factories expert seams cannot).
func (s Spec) Encodable() bool {
	return len(s.Profiles) == 0 &&
		s.Factories.MAC == nil && s.Factories.Link == nil && s.Factories.Router == nil
}

// scenarioPSK is the fleet-wide pre-shared key the heartbeat sessions
// derive from. A fixed key is fine: the invariant observes counter
// discipline, not key secrecy.
var scenarioPSK = []byte("iiotds/scenario heartbeat psk v1")

// heartbeats is the secured heartbeat workload: every non-root node
// holds an AEAD session to the root (security.Channel each way) and
// periodically seals a monotone sequence number to it over
// ProtoScenario. A reboot re-derives the session from a per-incarnation
// nonce on both ends — the discipline whose absence the
// replay-monotone invariant detects: reusing the old session after a
// reboot restarts the frame counter and the root's anti-replay window
// rejects genuine frames.
type heartbeats struct {
	d   *core.Deployment
	chk *checker
	res *Result

	send []*security.Channel // per node: node → root sealer
	recv []*security.Channel // per node: root-side opener
	inc  []int               // per node: incarnation number
	seq  []uint64            // per node: application sequence
}

func newHeartbeats(d *core.Deployment, chk *checker, res *Result) *heartbeats {
	n := len(d.Nodes)
	h := &heartbeats{
		d:    d,
		chk:  chk,
		res:  res,
		send: make([]*security.Channel, n),
		recv: make([]*security.Channel, n),
		inc:  make([]int, n),
		seq:  make([]uint64, n),
	}
	for i := 1; i < n; i++ {
		h.rekey(i)
	}
	d.Root().Router.Handle(lowpan.ProtoScenario, func(src radio.NodeID, payload []byte) {
		i := int(src)
		if i <= 0 || i >= n || h.recv[i] == nil {
			return
		}
		_, err := h.recv[i].Open(payload, nil)
		switch {
		case err == nil:
			res.HeartbeatOK++
		case errors.Is(err, security.ErrReplay):
			// Replay on a genuine frame: the sender's counter ran
			// backwards past the root's window — the invariant breach.
			chk.replay(i, "root rejected genuine heartbeat as replayed")
		}
		// ErrAuth is tolerated: a frame sealed under the previous
		// incarnation's key can legitimately arrive (multi-hop delay)
		// after a rekey.
	})
	return h
}

// rekey (re-)derives node i's session for its current incarnation and
// installs fresh channels — counters and replay windows restart
// together on both ends, which is what keeps the counter stream the
// root sees monotone per session.
func (h *heartbeats) rekey(i int) {
	var nonce [12]byte
	binary.BigEndian.PutUint32(nonce[0:4], uint32(i))
	binary.BigEndian.PutUint64(nonce[4:12], uint64(h.inc[i]))
	key := security.DeriveSessionKey(scenarioPSK, nonce[:], []byte("root"))
	ks := security.NewKeyStore()
	if err := ks.Set(1, key); err != nil {
		panic(err)
	}
	send, err := security.NewChannel(ks, 1)
	if err != nil {
		panic(err)
	}
	recv, err := security.NewChannel(ks, 1)
	if err != nil {
		panic(err)
	}
	h.send[i], h.recv[i] = send, recv
}

// reboot is called when node i recovers from a crash. The correct
// discipline is a full re-key; with rekeyOnReboot disabled (bug
// injection) the node rebuilds only its sender from the old session
// key — modeling a device that lost its volatile frame counter but
// kept its provisioned key — so its counters restart behind the root's
// replay window.
func (h *heartbeats) reboot(i int) {
	if i <= 0 || i >= len(h.send) {
		return
	}
	if rekeyOnReboot {
		h.inc[i]++
		h.rekey(i)
		return
	}
	// Bug injection: the incarnation is not bumped, so rekey rebuilds
	// the sender under the SAME key with a restarted frame counter;
	// restoring the old receiver keeps the root's advanced window —
	// the rebooted node now replays counters the root has seen.
	old := h.recv[i]
	h.rekey(i)
	h.recv[i] = old
}

// start launches one heartbeat repeater per non-root node.
func (h *heartbeats) start(every time.Duration) []*sim.Repeater {
	var stops []*sim.Repeater
	for _, n := range h.d.Nodes[1:] {
		n := n
		i := int(n.ID)
		stops = append(stops, h.d.K.Every(every, every/4, func() {
			if !n.Up() {
				return
			}
			h.seq[i]++
			var payload [8]byte
			binary.BigEndian.PutUint64(payload[:], h.seq[i])
			h.res.Heartbeats++
			_ = n.Router.SendUp(lowpan.ProtoScenario, h.send[i].Seal(payload[:], nil))
		}))
	}
	return stops
}
