package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The reproducer codec. Format renders an encodable Spec as a single
// version-tagged line and Parse reads it back; the round-trip law
// Parse(Format(s)) == canonical(s) is pinned by tests and fuzzed. The
// string is the currency of the property harness: a failing triple is
// shrunk, printed as this line, and replayed with `iiotsim -scenario`.
//
// Grammar (fields `;`-separated, subfields `:`-separated):
//
//	scn1;seed=42;topo=grid:n=16:sp=15;classes=csma+lpl@250ms;coap=1;
//	conv=3m0s;soak=2m0s;drain=1m0s;check=10s;probe=5s;push=10s;
//	agg=10s;hb=15s;ingest=5s;store=ap:shards=2:rep=3:part=30s:hold=20s;
//	churn=odd:up=25s:minup=25s:down=5s:mindown=5s;
//	flap=1-2:every=60s:prr=0.2;ge=5-8:pgb=0.1:pbg=0.3:bad=0.3:step=5s;
//	part=farhalf:every=2m30s:hold=10s;trace=65536
//
// Workload and fault fields are omitted when disabled; durations use
// time.Duration.String(); floats use the shortest exact decimal; list
// selectors use `.`-separated IDs (`list(1.3.5)`). The Profiles and
// Factories expert seams are deliberately not representable — specs
// using them are built in Go, not replayed from strings.

// codecVersion tags the reproducer grammar.
const codecVersion = "scn1"

// Format renders the spec as a reproducer string. The spec is
// canonicalized (defaults applied) first, so the output names a
// concrete run. Panics if the spec is not Encodable — callers gate on
// Spec.Encodable.
func Format(s Spec) string {
	if !s.Encodable() {
		panic("scenario: Format on a spec with Profiles/Factories seams")
	}
	s.applyDefaults()
	var b strings.Builder
	b.WriteString(codecVersion)
	fmt.Fprintf(&b, ";seed=%d", s.Seed)
	b.WriteString(";topo=")
	b.WriteString(formatTopo(s.Topo))
	b.WriteString(";classes=")
	for i, c := range s.Classes {
		if i > 0 {
			b.WriteByte('+')
		}
		kind := c.Kind
		if kind == "" {
			kind = "csma"
		}
		b.WriteString(kind)
		if c.Wake > 0 {
			b.WriteByte('@')
			b.WriteString(c.Wake.String())
		}
	}
	if s.WithCoAP {
		b.WriteString(";coap=1")
	}
	fmt.Fprintf(&b, ";conv=%s;soak=%s;drain=%s;check=%s", s.Converge, s.Soak, s.Drain, s.CheckEvery)
	if d := s.Workload.ProbeEvery; d > 0 {
		fmt.Fprintf(&b, ";probe=%s", d)
	}
	if d := s.Workload.PushEvery; d > 0 {
		fmt.Fprintf(&b, ";push=%s", d)
	}
	if d := s.Workload.AggEpoch; d > 0 {
		fmt.Fprintf(&b, ";agg=%s", d)
	}
	if d := s.Workload.HeartbeatEvery; d > 0 {
		fmt.Fprintf(&b, ";hb=%s", d)
	}
	if d := s.Workload.IngestEvery; d > 0 {
		fmt.Fprintf(&b, ";ingest=%s", d)
		// The canonical spec always has the store section filled when
		// ingest is on, so the field is written in full.
		fmt.Fprintf(&b, ";store=%s:shards=%d:rep=%d", s.Store.Mode, s.Store.Shards, s.Store.Replicas)
		if s.Store.PartHold > 0 {
			fmt.Fprintf(&b, ":part=%s:hold=%s", s.Store.PartAt, s.Store.PartHold)
		}
	}
	f := s.Faults
	if f.Churn.Kind != "" {
		fmt.Fprintf(&b, ";churn=%s:up=%s:minup=%s:down=%s:mindown=%s",
			formatSel(f.Churn), f.MeanUp, f.MinUp, f.MeanDown, f.MinDown)
	}
	if f.FlapEvery > 0 && f.FlapLink != [2]int{} {
		fmt.Fprintf(&b, ";flap=%d-%d:every=%s:prr=%s",
			f.FlapLink[0], f.FlapLink[1], f.FlapEvery, ff(f.FlapPRR))
	}
	if f.GEStep > 0 && f.GELink != [2]int{} {
		fmt.Fprintf(&b, ";ge=%d-%d:pgb=%s:pbg=%s:bad=%s:step=%s",
			f.GELink[0], f.GELink[1], ff(f.GEPGoodBad), ff(f.GEPBadGood), ff(f.GEBadPRR), f.GEStep)
	}
	if f.PartEvery > 0 && f.Part.Kind != "" {
		fmt.Fprintf(&b, ";part=%s:every=%s:hold=%s", formatSel(f.Part), f.PartEvery, f.PartHold)
	}
	if s.TraceCapacity != 0 {
		fmt.Fprintf(&b, ";trace=%d", s.TraceCapacity)
	}
	return b.String()
}

// formatTopo renders the topology subfields for the spec's kind.
func formatTopo(t TopoSpec) string {
	switch t.Kind {
	case TopoCluster:
		return fmt.Sprintf("cluster:heads=%d:mem=%d:hs=%s:dy=%s:dx=%s",
			t.Heads, t.Members, ff(t.HeadSpacing), ff(t.MemberDY), ff(t.MemberDX))
	case TopoRGG:
		s := fmt.Sprintf("rgg:n=%d:area=%s:link=%s", t.N, ff(t.Area), ff(t.MaxLink))
		if t.Density > 0 {
			// Density is recorded for provenance — the canonical spec
			// already has Area filled from it, so replay does not depend
			// on re-deriving the area.
			s += ":dens=" + ff(t.Density)
		}
		return s
	default:
		return fmt.Sprintf("%s:n=%d:sp=%s", t.Kind, t.N, ff(t.Spacing))
	}
}

// formatSel renders a node selector.
func formatSel(s NodeSel) string {
	if s.Kind != "list" {
		return s.Kind
	}
	parts := make([]string, len(s.IDs))
	for i, id := range s.IDs {
		parts[i] = strconv.Itoa(id)
	}
	return "list(" + strings.Join(parts, ".") + ")"
}

// ff renders a float with the shortest exact decimal.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse reads a reproducer string back into a validated, canonical
// Spec. It is the inverse of Format and the fuzzing surface: any input
// must either parse into a spec Validate accepts or return an error —
// never panic.
func Parse(in string) (Spec, error) {
	var s Spec
	fields := strings.Split(in, ";")
	if fields[0] != codecVersion {
		return s, fmt.Errorf("scenario: not a %s reproducer string", codecVersion)
	}
	seen := map[string]bool{}
	for _, field := range fields[1:] {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return s, fmt.Errorf("scenario: malformed field %q", field)
		}
		if seen[key] {
			return s, fmt.Errorf("scenario: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "topo":
			s.Topo, err = parseTopo(val)
		case "classes":
			s.Classes, err = parseClasses(val)
		case "coap":
			if val != "1" {
				err = fmt.Errorf("scenario: coap must be 1, got %q", val)
			}
			s.WithCoAP = true
		case "conv":
			s.Converge, err = parseDur(val)
		case "soak":
			s.Soak, err = parseDur(val)
		case "drain":
			s.Drain, err = parseDur(val)
		case "check":
			s.CheckEvery, err = parseDur(val)
		case "probe":
			s.Workload.ProbeEvery, err = parseDur(val)
		case "push":
			s.Workload.PushEvery, err = parseDur(val)
		case "agg":
			s.Workload.AggEpoch, err = parseDur(val)
		case "hb":
			s.Workload.HeartbeatEvery, err = parseDur(val)
		case "ingest":
			s.Workload.IngestEvery, err = parseDur(val)
		case "store":
			err = parseStore(val, &s.Store)
		case "churn":
			err = parseChurn(val, &s.Faults)
		case "flap":
			err = parseFlap(val, &s.Faults)
		case "ge":
			err = parseGE(val, &s.Faults)
		case "part":
			err = parsePart(val, &s.Faults)
		case "trace":
			s.TraceCapacity, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("scenario: unknown field %q", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if !seen["seed"] || !seen["topo"] {
		return Spec{}, fmt.Errorf("scenario: reproducer missing seed or topo")
	}
	s.applyDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// parseDur parses a non-negative, finite duration.
func parseDur(val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad duration %q", val)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: negative duration %q", val)
	}
	return d, nil
}

// parseFloat parses a float in [0, max].
func parseFloat(val string, max float64) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || !finite(f) || f < 0 || f > max {
		return 0, fmt.Errorf("scenario: bad value %q", val)
	}
	return f, nil
}

// subfields splits a `:`-separated value into its head and a k=v map,
// rejecting malformed or duplicate entries and keys outside allowed.
func subfields(val string, allowed ...string) (head string, kv map[string]string, err error) {
	parts := strings.Split(val, ":")
	head = parts[0]
	kv = make(map[string]string, len(parts)-1)
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok || v == "" {
			return "", nil, fmt.Errorf("scenario: malformed subfield %q", p)
		}
		if _, dup := kv[k]; dup {
			return "", nil, fmt.Errorf("scenario: duplicate subfield %q", k)
		}
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return "", nil, fmt.Errorf("scenario: unknown subfield %q", k)
		}
		kv[k] = v
	}
	return head, kv, nil
}

// parseTopo reads the topo field. The allowed subfields depend on the
// kind so that irrelevant parameters (which Format would drop) cannot
// smuggle into a parsed spec and break round-trip stability.
func parseTopo(val string) (TopoSpec, error) {
	var allowed []string
	switch head, _, _ := strings.Cut(val, ":"); TopoKind(head) {
	case TopoCluster:
		allowed = []string{"heads", "mem", "hs", "dy", "dx"}
	case TopoRGG:
		allowed = []string{"n", "area", "link", "dens"}
	default:
		allowed = []string{"n", "sp"}
	}
	kind, kv, err := subfields(val, allowed...)
	if err != nil {
		return TopoSpec{}, err
	}
	t := TopoSpec{Kind: TopoKind(kind)}
	getInt := func(key string, dst *int) {
		if err != nil || kv[key] == "" {
			return
		}
		*dst, err = strconv.Atoi(kv[key])
	}
	getF := func(key string, dst *float64) {
		if err != nil || kv[key] == "" {
			return
		}
		*dst, err = parseFloat(kv[key], 1e6)
	}
	getInt("n", &t.N)
	getInt("heads", &t.Heads)
	getInt("mem", &t.Members)
	getF("sp", &t.Spacing)
	getF("hs", &t.HeadSpacing)
	getF("dy", &t.MemberDY)
	getF("dx", &t.MemberDX)
	getF("area", &t.Area)
	getF("dens", &t.Density)
	getF("link", &t.MaxLink)
	if err != nil {
		return TopoSpec{}, err
	}
	return t, nil
}

// parseClasses reads the `+`-separated class list.
func parseClasses(val string) ([]ClassSpec, error) {
	var out []ClassSpec
	for _, part := range strings.Split(val, "+") {
		kind, wake, hasWake := strings.Cut(part, "@")
		c := ClassSpec{Kind: kind}
		if _, err := c.macKind(); err != nil || kind == "" {
			return nil, fmt.Errorf("scenario: bad class %q", part)
		}
		if hasWake {
			d, err := parseDur(wake)
			if err != nil {
				return nil, err
			}
			c.Wake = d
		}
		out = append(out, c)
	}
	return out, nil
}

// parseSel reads a node selector head.
func parseSel(head string) (NodeSel, error) {
	if ids, ok := strings.CutPrefix(head, "list("); ok {
		ids, ok = strings.CutSuffix(ids, ")")
		if !ok {
			return NodeSel{}, fmt.Errorf("scenario: malformed selector %q", head)
		}
		sel := NodeSel{Kind: "list"}
		for _, p := range strings.Split(ids, ".") {
			id, err := strconv.Atoi(p)
			if err != nil {
				return NodeSel{}, fmt.Errorf("scenario: bad selector ID %q", p)
			}
			sel.IDs = append(sel.IDs, id)
		}
		return sel, nil
	}
	switch head {
	case "odd", "even", "farhalf":
		return NodeSel{Kind: head}, nil
	}
	return NodeSel{}, fmt.Errorf("scenario: unknown selector %q", head)
}

// parseLink reads an `a-b` node pair.
func parseLink(head string) ([2]int, error) {
	a, b, ok := strings.Cut(head, "-")
	if !ok {
		return [2]int{}, fmt.Errorf("scenario: malformed link %q", head)
	}
	ai, err1 := strconv.Atoi(a)
	bi, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || ai == bi {
		return [2]int{}, fmt.Errorf("scenario: malformed link %q", head)
	}
	return [2]int{ai, bi}, nil
}

// parsePeriod parses a strictly positive duration — the fault sections
// below are only encoded when active, so a zero period would not
// round-trip.
func parsePeriod(val string) (time.Duration, error) {
	d, err := parseDur(val)
	if err == nil && d == 0 {
		err = fmt.Errorf("scenario: zero fault period")
	}
	return d, err
}

// parseChurn reads the churn field into the fault spec.
func parseChurn(val string, f *FaultSpec) error {
	head, kv, err := subfields(val, "up", "minup", "down", "mindown")
	if err != nil {
		return err
	}
	if f.Churn, err = parseSel(head); err != nil {
		return err
	}
	for key, dst := range map[string]*time.Duration{
		"up": &f.MeanUp, "minup": &f.MinUp, "down": &f.MeanDown, "mindown": &f.MinDown,
	} {
		if kv[key] == "" {
			continue
		}
		if *dst, err = parseDur(kv[key]); err != nil {
			return err
		}
	}
	return nil
}

// parseFlap reads the flap field into the fault spec.
func parseFlap(val string, f *FaultSpec) error {
	head, kv, err := subfields(val, "every", "prr")
	if err != nil {
		return err
	}
	if f.FlapLink, err = parseLink(head); err != nil {
		return err
	}
	if f.FlapEvery, err = parsePeriod(kv["every"]); err != nil {
		return err
	}
	f.FlapPRR, err = parseFloat(kv["prr"], 1)
	return err
}

// parseGE reads the Gilbert–Elliott field into the fault spec.
func parseGE(val string, f *FaultSpec) error {
	head, kv, err := subfields(val, "pgb", "pbg", "bad", "step")
	if err != nil {
		return err
	}
	if f.GELink, err = parseLink(head); err != nil {
		return err
	}
	if f.GEPGoodBad, err = parseFloat(kv["pgb"], 1); err != nil {
		return err
	}
	if f.GEPBadGood, err = parseFloat(kv["pbg"], 1); err != nil {
		return err
	}
	if f.GEBadPRR, err = parseFloat(kv["bad"], 1); err != nil {
		return err
	}
	f.GEStep, err = parsePeriod(kv["step"])
	return err
}

// parseStore reads the store field (mode head, shard/replica counts,
// optional partition episode) into the store spec.
func parseStore(val string, st *StoreSpec) error {
	head, kv, err := subfields(val, "shards", "rep", "part", "hold")
	if err != nil {
		return err
	}
	st.Mode = head
	// Explicit zero must not be conflated with "unset" (which
	// applyDefaults would fill), so non-positive counts fail here.
	if kv["shards"] != "" {
		if st.Shards, err = strconv.Atoi(kv["shards"]); err != nil || st.Shards < 1 {
			return fmt.Errorf("scenario: bad store shards %q", kv["shards"])
		}
	}
	if kv["rep"] != "" {
		if st.Replicas, err = strconv.Atoi(kv["rep"]); err != nil || st.Replicas < 1 {
			return fmt.Errorf("scenario: bad store replicas %q", kv["rep"])
		}
	}
	if kv["part"] != "" {
		if st.PartAt, err = parseDur(kv["part"]); err != nil {
			return err
		}
	}
	if kv["hold"] != "" {
		if st.PartHold, err = parsePeriod(kv["hold"]); err != nil {
			return err
		}
	}
	return nil
}

// parsePart reads the partition field into the fault spec.
func parsePart(val string, f *FaultSpec) error {
	head, kv, err := subfields(val, "every", "hold")
	if err != nil {
		return err
	}
	if f.Part, err = parseSel(head); err != nil {
		return err
	}
	if f.PartEvery, err = parsePeriod(kv["every"]); err != nil {
		return err
	}
	f.PartHold, err = parseDur(kv["hold"])
	return err
}
