package scenario

import (
	"fmt"

	"iiotds/internal/core"
	"iiotds/internal/fault"
	"iiotds/internal/radio"
)

// Built is a deployment constructed from a Spec, plus the fault
// machinery once armed. The spec held here has defaults applied.
type Built struct {
	Spec Spec
	D    *core.Deployment

	// Ledger, Inj, and Churn are created by ArmFaults; nil before.
	Ledger *fault.Ledger
	Inj    *fault.Injector
	Churn  *fault.Churn
}

// ChurnSeed derives the churn engine's generator seed from the scenario
// seed. The derivation is part of the reproducer contract: E14 pinned
// it before the scenario layer existed, and a replayed spec must drive
// the exact same fault schedule.
func ChurnSeed(seed int64) int64 { return seed*7919 + 13 }

// Build expands the spec into a running deployment via the core
// profile/stack builder. Like core.NewStack it panics on structural
// errors (Validate catches them first with a useful message); use
// Validate for error-returning checks, e.g. on parsed input.
//
// Build only constructs — it does not converge, start workloads, or arm
// faults — so experiment wrappers can keep their own measurement code
// on an identical deployment. Faults arm separately (ArmFaults) because
// the reliability ledger must start at convergence, not construction:
// availability is measured over the operational phase.
func Build(spec Spec) *Built {
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	profiles, topo := expand(spec)
	d := core.NewStack(core.Stack{
		Seed:          spec.Seed,
		Profiles:      profiles,
		Topology:      topo,
		TraceCapacity: spec.TraceCapacity,
		Factories:     spec.Factories,
	})
	return &Built{Spec: spec, D: d}
}

// expand generates the spec's topology and binds every node to a
// profile — the shared front half of Build and BuildSharded. The spec
// must already be canonical.
func expand(spec Spec) ([]core.Profile, core.Topology) {
	positions := spec.Topo.Generate(spec.Seed)
	labels := spec.Topo.Labels()
	if len(spec.Profiles) > 0 {
		topo := make(core.Topology, len(positions))
		for i, pos := range positions {
			name := spec.Profiles[0].Name
			if labels != nil {
				name = labels[i]
			}
			topo[i] = core.NodeSpec{Pos: pos, Profile: name}
		}
		return spec.Profiles, topo
	}
	return classProfiles(spec, positions, labels)
}

// classProfiles expands the data-only Classes into core profiles and a
// binding plan. With role labels, class 0 is the backbone and class 1
// (or 0) the leaves — named after the labels so cluster topologies
// validate. Without labels, node i runs class i mod k under profiles
// named c0..c(k-1).
func classProfiles(spec Spec, positions radio.Topology, labels []string) ([]core.Profile, core.Topology) {
	mk := func(name string, c ClassSpec) core.Profile {
		kind, _ := c.macKind() // validated by Build
		p := core.Profile{Name: name, MAC: kind, WithCoAP: spec.WithCoAP}
		p.LPL.WakeInterval = c.Wake
		return p
	}
	topo := make(core.Topology, len(positions))
	if labels != nil {
		leafClass := spec.Classes[min(1, len(spec.Classes)-1)]
		profiles := []core.Profile{
			mk("backbone", spec.Classes[0]),
			mk("leaf", leafClass),
		}
		for i := range topo {
			topo[i] = core.NodeSpec{Pos: positions[i], Profile: labels[i]}
		}
		return profiles, topo
	}
	profiles := make([]core.Profile, len(spec.Classes))
	for i, c := range spec.Classes {
		profiles[i] = mk(fmt.Sprintf("c%d", i), c)
	}
	for i := range topo {
		topo[i] = core.NodeSpec{
			Pos:     positions[i],
			Profile: profiles[i%len(profiles)].Name,
		}
	}
	return profiles, topo
}

// BuiltSharded is a deployment constructed from a Spec onto the sharded
// multi-kernel engine (DESIGN.md §9), plus the fault machinery once
// armed. Fault callbacks run on the shard group's control timeline —
// the barrier instants at which cross-stripe mutation is legal.
type BuiltSharded struct {
	Spec Spec
	D    *core.ShardedDeployment

	Ledger *fault.Ledger
	Inj    *fault.Injector
	Churn  *fault.Churn
}

// BuildSharded expands the spec like Build, but stripes the fleet over
// the given number of simulation kernels. The stripe count is a model
// parameter (it decides which frames cross a barrier); the worker count
// (D.G.SetWorkers) is pure execution policy. Tracing is not supported
// on the sharded engine, so specs carrying TraceCapacity panic in
// core.NewShardedStack.
func BuildSharded(spec Spec, stripes int) *BuiltSharded {
	spec.applyDefaults()
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	profiles, topo := expand(spec)
	sd := core.NewShardedStack(core.Stack{
		Seed:          spec.Seed,
		Profiles:      profiles,
		Topology:      topo,
		TraceCapacity: spec.TraceCapacity,
		Factories:     spec.Factories,
	}, stripes)
	return &BuiltSharded{Spec: spec, D: sd}
}

// ArmFaults mirrors Built.ArmFaults on the sharded engine: ledger time
// and fault scheduling come from the shard group, and the injector's
// medium control fans to the owning stripe(s) through the deployment.
func (b *BuiltSharded) ArmFaults() {
	if !b.Spec.Faults.enabled() || b.Churn != nil {
		return
	}
	b.Ledger = fault.NewLedger(b.D.G.Now())
	b.Inj = fault.NewInjector(b.D.G, b.D, b.D, b.Ledger)
	b.Churn = fault.NewChurn(b.Inj, ChurnSeed(b.Spec.Seed), b.Spec.Faults.ChurnConfig(b.Spec.Topo.Nodes()))
}

// ArmFaults creates the reliability ledger, fault injector, and churn
// engine at the deployment's current virtual time. Call it after
// convergence (on the kernel goroutine contract of the injector) and
// before starting the soak; the churn engine itself still needs
// Churn.Start. No-op when the spec schedules no faults.
func (b *Built) ArmFaults() {
	if !b.Spec.Faults.enabled() || b.Churn != nil {
		return
	}
	b.Ledger = fault.NewLedger(b.D.K.Now())
	b.Inj = fault.NewInjector(b.D.K, b.D.M, b.D, b.Ledger)
	b.Inj.SetRecorder(b.D.Trace)
	b.Churn = fault.NewChurn(b.Inj, ChurnSeed(b.Spec.Seed), b.Spec.Faults.ChurnConfig(b.Spec.Topo.Nodes()))
}
