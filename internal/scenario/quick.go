package scenario

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"time"

	"iiotds/internal/trial"
)

// QuickConfig parameterizes the property harness. The zero value is a
// sensible smoke run (50 triples).
type QuickConfig struct {
	// Triples is how many random (topology, schedule, seed) triples to
	// run (default 50).
	Triples int
	// Seed is the master seed; every triple derives its own generator
	// from it, so a (Seed, index) pair names one spec regardless of how
	// many triples the run sweeps.
	Seed int64
	// MaxNodes caps generated fleet sizes (default 20, min 9).
	MaxNodes int
	// MaxSoak caps the generated soak phase (default 1 minute).
	MaxSoak time.Duration
	// MaxShrinkRuns bounds how many candidate runs shrinking may spend
	// per failure (default 24).
	MaxShrinkRuns int
	// Mutate, when set, is applied to every generated spec before it
	// runs — the seam bug-injection tests use to plant a defect (e.g. a
	// faulty MAC factory) under every triple.
	Mutate func(*Spec)
}

// Failure is one failed triple together with its shrunken reproducer.
type Failure struct {
	// Index is the triple's position in the sweep.
	Index int
	// Repro is the original spec's reproducer string (empty when the
	// spec is not encodable, e.g. under a Factories mutation).
	Repro string
	// Violations are the original run's invariant breaches.
	Violations []Violation
	// Shrunk is the minimal reproducer shrinking reached; its run still
	// breaches at least one of the original invariants.
	Shrunk string
	// ShrunkViolations are the minimal run's breaches.
	ShrunkViolations []Violation
	// ShrinkRuns is how many candidate runs shrinking spent.
	ShrinkRuns int
}

// Report summarizes a Quick sweep. Log is built strictly in triple-index
// order from deterministic runs, so it is byte-identical at any
// parallelism level — the determinism regression compares it across
// worker counts.
type Report struct {
	Triples      int
	Passed       int
	NotConverged int
	Failures     []Failure
	// Log is the human-readable transcript: one block per failure plus
	// a summary line with an FNV-64a digest over every result.
	Log string
}

// Failed reports whether any triple breached an invariant.
func (r Report) Failed() bool { return len(r.Failures) > 0 }

// quickMix derives the per-triple generator seed from the master seed.
// SplitMix64-style so adjacent indices land far apart.
func quickMix(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// newQuickRng is the per-triple generator: (master seed, index) names
// one spec.
func newQuickRng(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(quickMix(seed, i)))
}

// Quick sweeps Triples random scenario specs through Run, shrinking each
// failure to a minimal reproducer. Triples run in parallel via the trial
// runner; shrinking is sequential and deterministic.
func Quick(cfg QuickConfig) Report {
	if cfg.Triples <= 0 {
		cfg.Triples = 50
	}
	if cfg.MaxNodes < 9 {
		cfg.MaxNodes = 20
	}
	if cfg.MaxSoak <= 0 {
		cfg.MaxSoak = time.Minute
	}
	if cfg.MaxShrinkRuns <= 0 {
		cfg.MaxShrinkRuns = 24
	}

	specs := make([]Spec, cfg.Triples)
	for i := range specs {
		specs[i] = genSpec(newQuickRng(cfg.Seed, i), cfg)
		if cfg.Mutate != nil {
			cfg.Mutate(&specs[i])
		}
	}

	results, _ := trial.RunTrials(cfg.Triples, func(t *trial.Trial) Result {
		return Run(specs[t.Index], t)
	})

	rep := Report{Triples: cfg.Triples}
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario.Quick seed=%d triples=%d\n", cfg.Seed, cfg.Triples)
	h := fnv.New64a()
	for i, r := range results {
		digestResult(h, r)
		if !r.Converged {
			rep.NotConverged++
		}
		if !r.Failed() {
			continue
		}
		f := Failure{Index: i, Repro: r.Repro, Violations: r.Violations}
		shrunk, sviol, runs := shrinkFailure(specs[i], r.Violations, cfg)
		f.Shrunk = reproOf(shrunk)
		f.ShrunkViolations = sviol
		f.ShrinkRuns = runs
		rep.Failures = append(rep.Failures, f)

		fmt.Fprintf(&sb, "triple %03d FAIL repro=%s\n", i, reproOf(specs[i]))
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "  %s\n", v)
		}
		fmt.Fprintf(&sb, "triple %03d shrunk (runs=%d) repro=%s\n", i, runs, f.Shrunk)
		for _, v := range sviol {
			fmt.Fprintf(&sb, "  %s\n", v)
		}
	}
	rep.Passed = cfg.Triples - len(rep.Failures)
	fmt.Fprintf(&sb, "summary: %d triples, %d passed, %d failed, %d not-converged, digest=%016x\n",
		rep.Triples, rep.Passed, len(rep.Failures), rep.NotConverged, h.Sum64())
	rep.Log = sb.String()
	return rep
}

// digestResult folds one run's observable outcome into the report digest;
// any divergence between two sweeps of the same config shows up here.
func digestResult(w io.Writer, r Result) {
	fmt.Fprintf(w, "%s|%v|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
		r.Repro, r.Converged, r.ConvergeIn,
		r.Crashes, r.Recoveries,
		r.ProbeOK, r.ProbeFail, r.Pushes, r.PushDelivered,
		r.AggEpochs, r.Heartbeats, r.HeartbeatOK)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "%s\n", v)
	}
}

// reproOf renders a spec for logs: the reproducer string when encodable,
// a stable placeholder otherwise.
func reproOf(s Spec) string {
	s.applyDefaults()
	if s.Encodable() {
		return Format(s)
	}
	return fmt.Sprintf("<non-encodable seed=%d topo=%s nodes=%d>", s.Seed, s.Topo.Kind, s.Topo.Nodes())
}

// genSpec draws one random scenario. Generated specs stay inside the
// envelope where convergence and post-churn repair are expected to
// succeed (reliable grid spacing, bounded fleet, recovery delays short
// relative to the drain phase), so any violation indicates a genuine
// defect rather than an under-provisioned schedule.
func genSpec(rng *rand.Rand, cfg QuickConfig) Spec {
	var s Spec
	s.Seed = rng.Int63()

	switch rng.Intn(4) {
	case 0:
		s.Topo = TopoSpec{Kind: TopoGrid, N: 5 + rng.Intn(cfg.MaxNodes-4)}
	case 1:
		// Deep chains converge slowly; keep pipelines short.
		s.Topo = TopoSpec{Kind: TopoPipeline, N: 3 + rng.Intn(6)}
	case 2:
		s.Topo = TopoSpec{Kind: TopoCluster, Heads: 1 + rng.Intn(3), Members: 1 + rng.Intn(3)}
	default:
		s.Topo = TopoSpec{Kind: TopoRGG, N: 5 + rng.Intn(cfg.MaxNodes-4)}
	}
	n := s.Topo.Nodes()

	// Class 0 is always CSMA so the root/backbone stays mains-powered;
	// half the fleets add a duty-cycled leaf class.
	s.Classes = []ClassSpec{{Kind: "csma"}}
	if rng.Intn(2) == 0 {
		s.Classes = append(s.Classes,
			ClassSpec{Kind: "lpl", Wake: time.Duration(1+rng.Intn(2)) * 250 * time.Millisecond})
	}

	s.WithCoAP = rng.Intn(2) == 0
	if s.WithCoAP && rng.Intn(2) == 0 {
		s.Workload.ProbeEvery = time.Duration(5+rng.Intn(6)) * time.Second
	}
	if rng.Intn(10) < 7 {
		s.Workload.PushEvery = time.Duration(4+rng.Intn(9)) * time.Second
	}
	if rng.Intn(10) < 3 {
		s.Workload.AggEpoch = time.Duration(10+rng.Intn(11)) * time.Second
	}
	if rng.Intn(2) == 0 {
		s.Workload.HeartbeatEvery = time.Duration(5+rng.Intn(11)) * time.Second
	}

	churny := false
	if rng.Intn(10) < 6 {
		if rng.Intn(2) == 0 {
			s.Faults.Churn = NodeSel{Kind: []string{"odd", "even", "farhalf"}[rng.Intn(3)]}
			s.Faults.MinUp = time.Duration(20+rng.Intn(11)) * time.Second
			s.Faults.MeanUp = s.Faults.MinUp + time.Duration(rng.Intn(11))*time.Second
			s.Faults.MinDown = 5 * time.Second
			s.Faults.MeanDown = time.Duration(5+rng.Intn(6)) * time.Second
			churny = true
		}
		if rng.Intn(10) < 3 {
			a, b := pickLink(rng, n)
			s.Faults.FlapLink = [2]int{a, b}
			s.Faults.FlapEvery = time.Duration(20+rng.Intn(41)) * time.Second
			s.Faults.FlapPRR = float64(rng.Intn(6)) / 10
		}
		if rng.Intn(4) == 0 {
			a, b := pickLink(rng, n)
			s.Faults.GELink = [2]int{a, b}
			s.Faults.GEPGoodBad = float64(1+rng.Intn(4)) * 0.05
			s.Faults.GEPBadGood = 0.2 + float64(rng.Intn(4))*0.1
			s.Faults.GEBadPRR = float64(rng.Intn(6)) / 10
			s.Faults.GEStep = 5 * time.Second
		}
		if rng.Intn(5) == 0 {
			s.Faults.Part = NodeSel{Kind: "farhalf"}
			s.Faults.PartEvery = time.Duration(60+rng.Intn(61)) * time.Second
			s.Faults.PartHold = time.Duration(5+rng.Intn(6)) * time.Second
			churny = true
		}
	}

	s.Soak = time.Duration(30+rng.Intn(int(cfg.MaxSoak/time.Second)-29)) * time.Second
	if churny {
		// Leave the repair machinery generous headroom after faults stop.
		s.Drain = 2 * time.Minute
	} else {
		s.Drain = 30 * time.Second
	}
	return s
}

// pickLink draws a random distinct node pair.
func pickLink(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// shrinkSteps are the simplification passes, ordered so schedule noise
// (partitions, bursty links) is removed before the load-bearing parts
// (the churn and the fleet itself) are attacked.
var shrinkSteps = []struct {
	name  string
	apply func(*Spec) bool // false = no-op on this spec
}{
	{"drop-partition", func(s *Spec) bool {
		if s.Faults.Part.Kind == "" && s.Faults.PartEvery == 0 {
			return false
		}
		s.Faults.Part, s.Faults.PartEvery, s.Faults.PartHold = NodeSel{}, 0, 0
		return true
	}},
	{"drop-ge", func(s *Spec) bool {
		if s.Faults.GELink == [2]int{} {
			return false
		}
		s.Faults.GELink = [2]int{}
		s.Faults.GEPGoodBad, s.Faults.GEPBadGood, s.Faults.GEBadPRR = 0, 0, 0
		s.Faults.GEStep = 0
		return true
	}},
	{"drop-flap", func(s *Spec) bool {
		if s.Faults.FlapLink == [2]int{} {
			return false
		}
		s.Faults.FlapLink, s.Faults.FlapEvery, s.Faults.FlapPRR = [2]int{}, 0, 0
		return true
	}},
	{"drop-agg", func(s *Spec) bool {
		if s.Workload.AggEpoch == 0 {
			return false
		}
		s.Workload.AggEpoch = 0
		return true
	}},
	{"drop-ingest", func(s *Spec) bool {
		if s.Workload.IngestEvery == 0 {
			return false
		}
		s.Workload.IngestEvery = 0
		s.Store = StoreSpec{}
		return true
	}},
	{"drop-probe", func(s *Spec) bool {
		if s.Workload.ProbeEvery == 0 {
			return false
		}
		s.Workload.ProbeEvery = 0
		return true
	}},
	{"drop-push", func(s *Spec) bool {
		if s.Workload.PushEvery == 0 {
			return false
		}
		s.Workload.PushEvery = 0
		return true
	}},
	{"drop-heartbeat", func(s *Spec) bool {
		if s.Workload.HeartbeatEvery == 0 {
			return false
		}
		s.Workload.HeartbeatEvery = 0
		return true
	}},
	{"drop-churn", func(s *Spec) bool {
		if s.Faults.Churn.Kind == "" {
			return false
		}
		s.Faults.Churn = NodeSel{}
		s.Faults.MeanUp, s.Faults.MinUp, s.Faults.MeanDown, s.Faults.MinDown = 0, 0, 0, 0
		return true
	}},
	{"halve-soak", func(s *Spec) bool {
		if s.Soak <= 15*time.Second {
			return false
		}
		s.Soak = (s.Soak / 2).Round(time.Second)
		return true
	}},
	{"halve-nodes", func(s *Spec) bool {
		if s.Topo.Kind == TopoCluster {
			changed := false
			if s.Topo.Heads > 1 {
				s.Topo.Heads = (s.Topo.Heads + 1) / 2
				changed = true
			}
			if s.Topo.Members > 1 {
				s.Topo.Members = (s.Topo.Members + 1) / 2
				changed = true
			}
			return changed
		}
		if s.Topo.N <= 4 {
			return false
		}
		s.Topo.N = (s.Topo.N + 1) / 2
		return true
	}},
	{"single-class", func(s *Spec) bool {
		if len(s.Classes) <= 1 {
			return false
		}
		s.Classes = s.Classes[:1]
		return true
	}},
}

// shrinkFailure greedily simplifies a failing spec: a candidate is
// accepted iff it still validates and its run breaches at least one of
// the invariants the current reproducer breaches (so shrinking cannot
// wander onto an unrelated failure). Candidates that would leave fault
// links or selector IDs dangling after a node cut simply fail Validate
// and are skipped.
func shrinkFailure(spec Spec, viol []Violation, cfg QuickConfig) (Spec, []Violation, int) {
	cur, curViol := spec, viol
	runs := 0
	for progress := true; progress && runs < cfg.MaxShrinkRuns; {
		progress = false
		for _, step := range shrinkSteps {
			if runs >= cfg.MaxShrinkRuns {
				break
			}
			next := cur
			if !step.apply(&next) {
				continue
			}
			if next.Validate() != nil {
				continue
			}
			runs++
			r := Run(next, nil)
			if overlaps(r.Violations, curViol) {
				cur, curViol = next, r.Violations
				progress = true
			}
		}
	}
	return cur, curViol, runs
}

// overlaps reports whether a breaches any invariant that b breaches.
func overlaps(a, b []Violation) bool {
	names := make(map[string]bool, len(b))
	for _, v := range b {
		names[v.Invariant] = true
	}
	for _, v := range a {
		if names[v.Invariant] {
			return true
		}
	}
	return false
}
