package scenario

import (
	"reflect"
	"testing"
)

// FuzzParseSpec fuzzes the reproducer codec. Properties: Parse never
// panics; any input Parse accepts canonicalizes — Format of the parsed
// spec reparses to an identical spec and is a formatting fixed point.
// The codec is how failing property triples travel (CI log → developer
// terminal → iiotsim -scenario), so a string that parses but does not
// round-trip would silently replay a different run.
func FuzzParseSpec(f *testing.F) {
	for _, spec := range specFixtures() {
		f.Add(Format(spec))
	}
	f.Add("scn1;seed=7;topo=grid:n=9;classes=csma+lpl@500ms;coap=1;probe=5s")
	f.Add("scn1;seed=1;topo=cluster:heads=3:mem=2;churn=even:up=30s:minup=20s:down=6s:mindown=5s")
	f.Add("scn1;seed=2;topo=rgg:n=12:area=60:link=18;part=farhalf:every=2m0s:hold=10s")
	f.Add("scn1;seed=3;topo=pipeline:n=5;flap=1-2:every=45s:prr=0.25;trace=-1")
	f.Add("scn1;seed=4;topo=rgg:n=96:area=100:link=18:dens=6;hb=15s")
	f.Add("scn1;seed=5;topo=grid:n=9;ingest=5s;store=cp:shards=4:rep=3:part=30s:hold=20s")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		line := Format(s)
		s2, err := Parse(line)
		if err != nil {
			t.Fatalf("canonical line does not reparse: %v\n in:   %q\n line: %q", err, in, line)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("reparse drifted:\n in:   %q\n line: %q\n got:  %+v\n want: %+v", in, line, s2, s)
		}
		if again := Format(s2); again != line {
			t.Fatalf("Format not a fixed point:\n  %s\n  %s", line, again)
		}
	})
}
