// Package trial is the deterministic parallel trial runner shared by
// the experiment harnesses (internal/exp) and the scenario property
// harness (internal/scenario). Trials (distinct seeds / parameter
// points) are mutually independent: each trial builds its own
// sim.Kernel and touches no state outside it. RunTrials fans those
// trials across worker goroutines and merges results in trial-index
// order, so anything built from the merged slice is byte-identical to a
// sequential run — the determinism rule of DESIGN.md §5 survives the
// parallelism.
package trial

import (
	"runtime"
	"sync"
	"sync/atomic"

	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// parallelism is the worker count used by RunTrials; 0 means GOMAXPROCS.
var parallelism atomic.Int32

// SetParallelism sets the number of worker goroutines RunTrials fans
// trials across. n <= 0 resets to the default (GOMAXPROCS). The setting
// never affects results, only wall-clock time.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Trial is the context handed to one trial function. It is owned by a
// single worker goroutine for the duration of the trial.
type Trial struct {
	// Index is the trial's position in the sweep; results are merged in
	// Index order.
	Index int

	kernels   []*sim.Kernel
	recorders []*trace.Recorder
}

// Observe registers a kernel whose scheduling counters should be folded
// into the sweep's RunStats. Call it right after building the kernel (or
// deployment); the counters are read when the trial function returns.
// Safe on a nil Trial so shared helpers can also run outside a sweep.
func (t *Trial) Observe(k *sim.Kernel) {
	if t == nil {
		return
	}
	t.kernels = append(t.kernels, k)
}

// ObserveTrace registers a flight recorder whose event summary should be
// folded into the sweep's RunStats (and handed to the trace sink, if
// set). nil recorders are accepted and ignored, so call sites do not
// need to gate on tracing being enabled. Safe on a nil Trial.
func (t *Trial) ObserveTrace(rec *trace.Recorder) {
	if t == nil || rec == nil {
		return
	}
	t.recorders = append(t.recorders, rec)
}

// ObserveMedium attaches a flight recorder to a hand-built radio medium
// and registers it with the trial, sized by trace.DefaultCapacity().
// Experiments that assemble their own stack (rather than going through
// core.NewDeployment) call this right after radio.NewMedium so their
// MAC/radio events land in the sweep's trace summary. Returns nil — and
// records nothing — when tracing is disabled, so the emit fast paths
// stay allocation-free.
func (t *Trial) ObserveMedium(k *sim.Kernel, m *radio.Medium) *trace.Recorder {
	c := trace.DefaultCapacity()
	if c <= 0 {
		return nil
	}
	rec := trace.New(c, k.Now)
	m.SetRecorder(rec)
	t.ObserveTrace(rec)
	return rec
}

// RunStats aggregates the kernel counters of a sweep: events
// scheduled/fired/canceled and pool reuse summed across trials, heap
// depth as the per-trial high-water mark, plus the merged trace summary
// of every recorder the trials observed.
type RunStats struct {
	// Trials is the number of trials merged.
	Trials int `json:"trials"`
	// Events aggregates sim.Kernel.Stats across all observed kernels.
	Events sim.Stats `json:"events"`
	// Trace is the merged trace.Summary of all observed recorders,
	// folded in trial-index order (the merge is associative, so the
	// result is identical at any parallelism level).
	Trace trace.Summary `json:"trace"`
}

// Add merges o into s.
func (s *RunStats) Add(o RunStats) {
	s.Trials += o.Trials
	s.Events.Add(o.Events)
	s.Trace.Add(o.Trace)
}

// traceSink, when set, receives every observed recorder during the
// merge phase of RunTrials, in (trial index, registration order). It
// runs on the caller's goroutine after all workers have drained, so the
// sink may export full event streams (e.g. JSONL) deterministically.
var traceSink func(trialIndex int, rec *trace.Recorder)

// SetTraceSink installs fn as the recorder drain for subsequent
// RunTrials calls; nil removes it. Not safe to change concurrently with
// a running sweep.
func SetTraceSink(fn func(trialIndex int, rec *trace.Recorder)) { traceSink = fn }

// RunTrials runs fn for trial indices 0..n-1 across Parallelism() worker
// goroutines and returns the results in index order, plus the aggregated
// kernel stats of every kernel the trials observed. fn must confine
// itself to state reachable from its own trial — that independence is
// what lets the fan-out preserve determinism. A panic inside any trial is
// re-raised (lowest trial index first) after all workers have drained.
func RunTrials[R any](n int, fn func(t *Trial) R) ([]R, RunStats) {
	results := make([]R, n)
	trials := make([]*Trial, n)
	panics := make([]any, n)

	runOne := func(i int) {
		t := &Trial{Index: i}
		trials[i] = t
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		results[i] = fn(t)
	}

	if workers := min(Parallelism(), n); workers <= 1 {
		for i := 0; i < n; i++ {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	agg := RunStats{Trials: n}
	for i, t := range trials {
		if p := panics[i]; p != nil {
			panic(p)
		}
		if t == nil {
			continue
		}
		for _, k := range t.kernels {
			agg.Events.Add(k.Stats())
		}
		for _, rec := range t.recorders {
			agg.Trace.Add(rec.Summary())
			if traceSink != nil {
				traceSink(i, rec)
			}
		}
	}
	return results, agg
}

// Sweep runs fn once per parameter point and returns the results in
// point order. It is RunTrials with the parameter threading done for you:
// the canonical shape of every experiment's sweep loop.
func Sweep[P, R any](points []P, fn func(t *Trial, p P) R) ([]R, RunStats) {
	return RunTrials(len(points), func(t *Trial) R {
		return fn(t, points[t.Index])
	})
}
