package trial

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"iiotds/internal/sim"
)

func TestRunTrialsOrderAndStats(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		results, rs := RunTrials(10, func(tr *Trial) int {
			k := sim.New(int64(tr.Index))
			tr.Observe(k)
			k.Schedule(time.Second, func() {})
			k.Schedule(2*time.Second, func() {})
			k.RunFor(3 * time.Second)
			return tr.Index * tr.Index
		})
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
		if rs.Trials != 10 {
			t.Fatalf("workers=%d: Trials = %d, want 10", workers, rs.Trials)
		}
		if rs.Events.Scheduled != 20 || rs.Events.Fired != 20 {
			t.Fatalf("workers=%d: events = %+v, want 20 scheduled/fired", workers, rs.Events)
		}
	}
}

func TestRunTrialsActuallyParallel(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	var inFlight, peak atomic.Int32
	_, _ = RunTrials(8, func(tr *Trial) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}
	})
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestRunTrialsPanicLowestIndexFirst(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-raised panic")
		}
		if s, ok := r.(string); !ok || s != "trial 2" {
			t.Fatalf("re-raised %v, want lowest-index panic \"trial 2\"", r)
		}
	}()
	_, _ = RunTrials(8, func(tr *Trial) int {
		if tr.Index == 2 || tr.Index == 6 {
			panic(fmt.Sprintf("trial %d", tr.Index))
		}
		return 0
	})
}

func TestSweepThreadsPoints(t *testing.T) {
	pts := []string{"a", "b", "c"}
	got, rs := Sweep(pts, func(tr *Trial, p string) string {
		return fmt.Sprintf("%d:%s", tr.Index, p)
	})
	want := []string{"0:a", "1:b", "2:c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sweep result %v, want %v", got, want)
		}
	}
	if rs.Trials != 3 {
		t.Fatalf("Trials = %d, want 3", rs.Trials)
	}
}

func TestObserveNilTrial(t *testing.T) {
	var tr *Trial
	tr.Observe(sim.New(1)) // must not panic
}

func TestSetParallelismClamp(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(-5)
	if Parallelism() <= 0 {
		t.Fatalf("Parallelism() = %d after negative set, want GOMAXPROCS default", Parallelism())
	}
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
}
