package crdt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// --- VClock ---

func TestVClockCompare(t *testing.T) {
	a := NewVClock().Tick("a")
	b := NewVClock().Tick("b")
	if a.Compare(b) != Concurrent || b.Compare(a) != Concurrent {
		t.Fatal("independent ticks must be concurrent")
	}
	c := a.Copy()
	c.Tick("a")
	if a.Compare(c) != Before || c.Compare(a) != After {
		t.Fatal("extension must be after")
	}
	if a.Compare(a.Copy()) != Equal {
		t.Fatal("copy must be equal")
	}
}

func TestVClockMergeDominates(t *testing.T) {
	a := NewVClock().Tick("a")
	b := NewVClock().Tick("b")
	m := a.Copy()
	m.Merge(b)
	if !m.Dominates(a) || !m.Dominates(b) {
		t.Fatal("merge must dominate both inputs")
	}
	if got := m.IDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("IDs = %v", got)
	}
}

func TestVClockMissingEntryIsZero(t *testing.T) {
	a := NewVClock()
	b := NewVClock().Tick("x")
	if a.Compare(b) != Before {
		t.Fatal("empty clock must be before any ticked clock")
	}
	if b.Compare(a) != After {
		t.Fatal("symmetry broken")
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if o.String() != want {
			t.Errorf("%d = %q", o, o.String())
		}
	}
}

// --- generic CvRDT law checks ---

// ops applies n random operations to a replica set and returns the
// replicas (for counters / sets / registers separately below).

func TestGCounterLaws(t *testing.T) {
	mk := func(seed int64) *GCounter {
		rng := rand.New(rand.NewSource(seed))
		g := NewGCounter()
		for i := 0; i < 10; i++ {
			g.Inc(ReplicaID([]string{"a", "b", "c"}[rng.Intn(3)]), uint64(rng.Intn(5)))
		}
		return g
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := mk(s1), mk(s2), mk(s3)
		// Commutativity.
		ab := a.Copy()
		ab.Merge(b)
		ba := b.Copy()
		ba.Merge(a)
		if !reflect.DeepEqual(ab.Counts, ba.Counts) {
			return false
		}
		// Associativity.
		abc1 := a.Copy()
		abc1.Merge(b)
		abc1.Merge(c)
		bc := b.Copy()
		bc.Merge(c)
		abc2 := a.Copy()
		abc2.Merge(bc)
		if !reflect.DeepEqual(abc1.Counts, abc2.Counts) {
			return false
		}
		// Idempotence.
		aa := a.Copy()
		aa.Merge(a)
		return reflect.DeepEqual(aa.Counts, a.Counts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGCounterValueAndCodec(t *testing.T) {
	g := NewGCounter()
	g.Inc("a", 3)
	g.Inc("b", 4)
	g.Inc("a", 1)
	if g.Value() != 8 {
		t.Fatalf("Value = %d", g.Value())
	}
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalGCounter(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != 8 {
		t.Fatalf("decoded Value = %d", got.Value())
	}
}

func TestGCounterMergeIsMaxNotSum(t *testing.T) {
	a := NewGCounter()
	a.Inc("x", 5)
	b := a.Copy()
	a.Merge(b)
	a.Merge(b)
	if a.Value() != 5 {
		t.Fatalf("repeated merge inflated value to %d", a.Value())
	}
}

func TestPNCounter(t *testing.T) {
	p := NewPNCounter()
	p.Add("a", 10)
	p.Add("b", -3)
	p.Add("a", -2)
	if p.Value() != 5 {
		t.Fatalf("Value = %d", p.Value())
	}
	q := NewPNCounter()
	q.Add("c", 1)
	p.Merge(q)
	if p.Value() != 6 {
		t.Fatalf("merged Value = %d", p.Value())
	}
	data, _ := p.Marshal()
	got, err := UnmarshalPNCounter(data)
	if err != nil || got.Value() != 6 {
		t.Fatalf("codec: %v %d", err, got.Value())
	}
}

func TestPNCounterConvergence(t *testing.T) {
	// Two replicas apply disjoint ops, exchange states, converge.
	a, b := NewPNCounter(), NewPNCounter()
	a.Add("a", 7)
	b.Add("b", -4)
	a.Merge(b.Copy())
	b.Merge(a.Copy())
	if a.Value() != b.Value() || a.Value() != 3 {
		t.Fatalf("values: %d, %d", a.Value(), b.Value())
	}
}

func TestLWWRegister(t *testing.T) {
	l := NewLWWRegister()
	l.Set(10, "a", []byte("v1"))
	l.Set(5, "b", []byte("stale"))
	if string(l.Value()) != "v1" {
		t.Fatalf("stale write won: %q", l.Value())
	}
	l.Set(20, "b", []byte("v2"))
	if string(l.Value()) != "v2" {
		t.Fatalf("newer write lost: %q", l.Value())
	}
}

func TestLWWRegisterTieBreak(t *testing.T) {
	// Same timestamp: replica ID decides, identically on both sides.
	a, b := NewLWWRegister(), NewLWWRegister()
	a.Set(10, "a", []byte("from-a"))
	b.Set(10, "b", []byte("from-b"))
	a.Merge(b.Copy())
	b2 := b.Copy()
	b2.Merge(&LWWRegister{Val: []byte("from-a"), TS: 10, ID: "a"})
	if !bytes.Equal(a.Value(), b2.Value()) {
		t.Fatalf("tie-break diverged: %q vs %q", a.Value(), b2.Value())
	}
	if string(a.Value()) != "from-b" {
		t.Fatalf("higher replica ID should win ties, got %q", a.Value())
	}
}

func TestLWWLaws(t *testing.T) {
	f := func(ts1, ts2 int64, v1, v2 []byte) bool {
		a := &LWWRegister{Val: v1, TS: ts1, ID: "a"}
		b := &LWWRegister{Val: v2, TS: ts2, ID: "b"}
		ab := a.Copy()
		ab.Merge(b)
		ba := b.Copy()
		ba.Merge(a)
		if !bytes.Equal(ab.Value(), ba.Value()) || ab.TS != ba.TS || ab.ID != ba.ID {
			return false
		}
		aa := a.Copy()
		aa.Merge(a)
		return bytes.Equal(aa.Value(), a.Value())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLWWCodec(t *testing.T) {
	l := &LWWRegister{Val: []byte("x"), TS: 42, ID: "r9"}
	data, _ := l.Marshal()
	got, err := UnmarshalLWWRegister(data)
	if err != nil || string(got.Val) != "x" || got.TS != 42 || got.ID != "r9" {
		t.Fatalf("codec: %v %+v", err, got)
	}
}

func TestMVRegisterConcurrentSiblings(t *testing.T) {
	a, b := NewMVRegister(), NewMVRegister()
	a.Set("a", []byte("A"))
	b.Set("b", []byte("B"))
	a.Merge(b)
	vals := a.Values()
	if len(vals) != 2 || string(vals[0]) != "A" || string(vals[1]) != "B" {
		t.Fatalf("siblings = %q", vals)
	}
	// A subsequent write resolves the conflict.
	a.Set("a", []byte("winner"))
	b.Merge(a)
	if vals := b.Values(); len(vals) != 1 || string(vals[0]) != "winner" {
		t.Fatalf("post-resolve = %q", vals)
	}
}

func TestMVRegisterDominatedVersionDropped(t *testing.T) {
	a := NewMVRegister()
	a.Set("a", []byte("v1"))
	old := a.Copy()
	a.Set("a", []byte("v2"))
	a.Merge(old)
	if vals := a.Values(); len(vals) != 1 || string(vals[0]) != "v2" {
		t.Fatalf("dominated version survived: %q", vals)
	}
}

func TestMVRegisterIdempotentMerge(t *testing.T) {
	a := NewMVRegister()
	a.Set("a", []byte("x"))
	before := a.Values()
	a.Merge(a.Copy())
	a.Merge(a.Copy())
	if !reflect.DeepEqual(a.Values(), before) {
		t.Fatalf("idempotence broken: %q", a.Values())
	}
}

func TestMVRegisterCodec(t *testing.T) {
	a := NewMVRegister()
	a.Set("a", []byte("hello"))
	data, _ := a.Marshal()
	got, err := UnmarshalMVRegister(data)
	if err != nil || len(got.Values()) != 1 || string(got.Values()[0]) != "hello" {
		t.Fatalf("codec: %v", err)
	}
}

func TestORSetAddRemove(t *testing.T) {
	s := NewORSet("a")
	s.Add("x")
	s.Add("y")
	if !s.Contains("x") || !s.Contains("y") || s.Contains("z") {
		t.Fatal("membership wrong")
	}
	s.Remove("x")
	if s.Contains("x") {
		t.Fatal("remove failed")
	}
	if got := s.Elements(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("Elements = %v", got)
	}
	// Re-add after remove works (fresh tag).
	s.Add("x")
	if !s.Contains("x") {
		t.Fatal("re-add failed")
	}
}

func TestORSetAddWins(t *testing.T) {
	// a removes x while b concurrently re-adds it: add must win.
	a := NewORSet("a")
	a.Add("x")
	b := NewORSet("b")
	b.Merge(a)
	b.Add("x") // concurrent re-add with its own tag
	a.Remove("x")
	a.Merge(b)
	b.Merge(a)
	if !a.Contains("x") || !b.Contains("x") {
		t.Fatal("concurrent add did not win over remove")
	}
}

func TestORSetConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	replicas := []*ORSet{NewORSet("a"), NewORSet("b"), NewORSet("c")}
	words := []string{"w0", "w1", "w2", "w3"}
	for i := 0; i < 200; i++ {
		r := replicas[rng.Intn(len(replicas))]
		w := words[rng.Intn(len(words))]
		if rng.Intn(3) == 0 {
			r.Remove(w)
		} else {
			r.Add(w)
		}
		if rng.Intn(4) == 0 {
			// Random pairwise state exchange.
			o := replicas[rng.Intn(len(replicas))]
			r.Merge(o)
		}
	}
	// Full sync: everyone merges everyone.
	for _, r := range replicas {
		for _, o := range replicas {
			r.Merge(o)
		}
	}
	want := replicas[0].Elements()
	for i, r := range replicas[1:] {
		if !reflect.DeepEqual(r.Elements(), want) {
			t.Fatalf("replica %d diverged: %v vs %v", i+1, r.Elements(), want)
		}
	}
}

func TestORSetCodec(t *testing.T) {
	s := NewORSet("a")
	s.Add("k")
	data, _ := s.Marshal()
	got, err := UnmarshalORSet("b", data)
	if err != nil || !got.Contains("k") {
		t.Fatalf("codec: %v", err)
	}
	if got.ID != "b" {
		t.Fatal("decoded set must adopt the local replica ID")
	}
	got.Add("k2") // must not panic on decoded maps
	if !got.Contains("k2") {
		t.Fatal("post-decode add failed")
	}
}

func TestCountersConvergeUnderGossipStorm(t *testing.T) {
	// N replicas, random increments and random pairwise merges; after a
	// final all-pairs merge, every replica reports the same value equal
	// to the sum of all applied increments.
	const n = 5
	rng := rand.New(rand.NewSource(7))
	reps := make([]*PNCounter, n)
	ids := make([]ReplicaID, n)
	for i := range reps {
		reps[i] = NewPNCounter()
		ids[i] = ReplicaID(string(rune('a' + i)))
	}
	var want int64
	for i := 0; i < 500; i++ {
		j := rng.Intn(n)
		d := int64(rng.Intn(11) - 5)
		reps[j].Add(ids[j], d)
		want += d
		if rng.Intn(3) == 0 {
			reps[rng.Intn(n)].Merge(reps[rng.Intn(n)])
		}
	}
	for i := range reps {
		for j := range reps {
			reps[i].Merge(reps[j])
		}
	}
	for i, r := range reps {
		if r.Value() != want {
			t.Fatalf("replica %d = %d, want %d", i, r.Value(), want)
		}
	}
}
