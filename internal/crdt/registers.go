package crdt

import (
	"bytes"
	"encoding/json"
	"sort"

	"iiotds/internal/netbuf"
)

// LWWRegister is a last-writer-wins register. Timestamps are supplied by
// the caller (virtual time in the emulation); replica ID breaks ties so
// merge stays deterministic and commutative.
type LWWRegister struct {
	Val []byte    `json:"val"`
	TS  int64     `json:"ts"`
	ID  ReplicaID `json:"id"`
}

// NewLWWRegister returns an empty register.
func NewLWWRegister() *LWWRegister { return &LWWRegister{} }

// Set records a write at time ts by replica id.
func (l *LWWRegister) Set(ts int64, id ReplicaID, val []byte) {
	w := LWWRegister{Val: val, TS: ts, ID: id}
	if w.wins(l) {
		*l = w
	}
}

// wins reports whether w supersedes cur.
func (w *LWWRegister) wins(cur *LWWRegister) bool {
	if w.TS != cur.TS {
		return w.TS > cur.TS
	}
	if w.ID != cur.ID {
		return w.ID > cur.ID
	}
	return bytes.Compare(w.Val, cur.Val) > 0
}

// Value returns the current value.
func (l *LWWRegister) Value() []byte { return l.Val }

// Merge folds other into l.
func (l *LWWRegister) Merge(other *LWWRegister) {
	if other.wins(l) {
		*l = LWWRegister{Val: netbuf.CloneBytes(other.Val), TS: other.TS, ID: other.ID}
	}
}

// Copy returns an independent copy.
func (l *LWWRegister) Copy() *LWWRegister {
	return &LWWRegister{Val: netbuf.CloneBytes(l.Val), TS: l.TS, ID: l.ID}
}

// Marshal serializes the register.
func (l *LWWRegister) Marshal() ([]byte, error) { return json.Marshal(l) }

// UnmarshalLWWRegister parses a serialized LWWRegister.
func UnmarshalLWWRegister(data []byte) (*LWWRegister, error) {
	l := NewLWWRegister()
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}

// MVVersion is one concurrent version held by an MVRegister.
type MVVersion struct {
	Val   []byte `json:"val"`
	Clock VClock `json:"clock"`
}

// MVRegister is a multi-value register: concurrent writes are all kept
// (as siblings) until a later write dominates them — the "decentralized
// resolution of potentially conflicting updates" of paper ref [24].
type MVRegister struct {
	Versions []MVVersion `json:"versions"`
}

// NewMVRegister returns an empty register.
func NewMVRegister() *MVRegister { return &MVRegister{} }

// Set writes val at replica id, superseding all currently visible
// versions.
func (m *MVRegister) Set(id ReplicaID, val []byte) {
	clock := NewVClock()
	for _, v := range m.Versions {
		clock.Merge(v.Clock)
	}
	clock.Tick(id)
	m.Versions = []MVVersion{{Val: netbuf.CloneBytes(val), Clock: clock}}
}

// Values returns the current concurrent values, sorted for determinism.
func (m *MVRegister) Values() [][]byte {
	out := make([][]byte, 0, len(m.Versions))
	for _, v := range m.Versions {
		out = append(out, v.Val)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// Merge folds other into m, keeping only causally maximal versions.
func (m *MVRegister) Merge(other *MVRegister) {
	all := make([]MVVersion, 0, len(m.Versions)+len(other.Versions))
	all = append(all, m.Versions...)
	for _, v := range other.Versions {
		all = append(all, MVVersion{Val: netbuf.CloneBytes(v.Val), Clock: v.Clock.Copy()})
	}
	var keep []MVVersion
	for i, v := range all {
		dominated := false
		for j, w := range all {
			if i == j {
				continue
			}
			switch v.Clock.Compare(w.Clock) {
			case Before:
				dominated = true
			case Equal:
				// Keep only the first of identical versions.
				if j < i {
					dominated = true
				}
			}
			if dominated {
				break
			}
		}
		if !dominated {
			keep = append(keep, v)
		}
	}
	// Deduplicate identical (clock,value) pairs for determinism.
	sort.Slice(keep, func(i, j int) bool { return bytes.Compare(keep[i].Val, keep[j].Val) < 0 })
	m.Versions = keep
}

// Copy returns an independent copy.
func (m *MVRegister) Copy() *MVRegister {
	out := NewMVRegister()
	out.Merge(m)
	return out
}

// Marshal serializes the register.
func (m *MVRegister) Marshal() ([]byte, error) { return json.Marshal(m) }

// UnmarshalMVRegister parses a serialized MVRegister.
func UnmarshalMVRegister(data []byte) (*MVRegister, error) {
	m := NewMVRegister()
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}
