package crdt

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ORSet is an observed-remove set: each Add creates a unique tag; Remove
// tombstones exactly the tags observed at the removing replica, so a
// concurrent Add always survives a Remove (add-wins semantics).
type ORSet struct {
	// Adds maps element -> live tags.
	Adds map[string]map[string]bool `json:"adds"`
	// Tombs is the set of removed tags.
	Tombs map[string]bool `json:"tombs"`
	// NextTag is the per-replica tag counter.
	NextTag uint64 `json:"next_tag"`
	// ID is this replica's identity for tag generation.
	ID ReplicaID `json:"id"`
}

// NewORSet returns an empty set owned by replica id.
func NewORSet(id ReplicaID) *ORSet {
	return &ORSet{
		Adds:  make(map[string]map[string]bool),
		Tombs: make(map[string]bool),
		ID:    id,
	}
}

// Add inserts elem.
func (s *ORSet) Add(elem string) {
	s.NextTag++
	tag := fmt.Sprintf("%s#%d", s.ID, s.NextTag)
	if s.Adds[elem] == nil {
		s.Adds[elem] = make(map[string]bool)
	}
	s.Adds[elem][tag] = true
}

// Remove deletes elem by tombstoning every tag currently observed here.
func (s *ORSet) Remove(elem string) {
	for tag := range s.Adds[elem] {
		s.Tombs[tag] = true
	}
}

// Contains reports membership: some live (non-tombstoned) tag exists.
func (s *ORSet) Contains(elem string) bool {
	for tag := range s.Adds[elem] {
		if !s.Tombs[tag] {
			return true
		}
	}
	return false
}

// Elements returns the members, sorted.
func (s *ORSet) Elements() []string {
	var out []string
	for elem := range s.Adds {
		if s.Contains(elem) {
			out = append(out, elem)
		}
	}
	sort.Strings(out)
	return out
}

// Merge folds other into s (union of adds and tombstones).
func (s *ORSet) Merge(other *ORSet) {
	for elem, tags := range other.Adds {
		if s.Adds[elem] == nil {
			s.Adds[elem] = make(map[string]bool)
		}
		for tag := range tags {
			s.Adds[elem][tag] = true
		}
	}
	for tag := range other.Tombs {
		s.Tombs[tag] = true
	}
}

// Copy returns an independent copy keeping this replica's identity.
func (s *ORSet) Copy() *ORSet {
	out := NewORSet(s.ID)
	out.NextTag = s.NextTag
	out.Merge(s)
	return out
}

// Marshal serializes the set state.
func (s *ORSet) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalORSet parses a serialized ORSet, assigning it to replica id
// for subsequent local operations.
func UnmarshalORSet(id ReplicaID, data []byte) (*ORSet, error) {
	s := NewORSet(id)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, err
	}
	if s.Adds == nil {
		s.Adds = make(map[string]map[string]bool)
	}
	if s.Tombs == nil {
		s.Tombs = make(map[string]bool)
	}
	s.ID = id
	return s, nil
}
