// Package crdt implements state-based conflict-free replicated data
// types (paper ref [25]): vector clocks, G- and PN-counters, LWW and
// multi-value registers, and an observed-remove set. These are the
// building blocks §IV-B and §V-C point to for geographic scalability and
// partition-tolerant availability: replicas accept updates locally and
// merge states pairwise, converging without coordination.
//
// All types are state-based (CvRDTs): Merge is commutative, associative,
// and idempotent — properties the test suite checks mechanically with
// testing/quick.
package crdt

import "sort"

// ReplicaID names a replica.
type ReplicaID string

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Possible orderings.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// VClock is a vector clock.
type VClock map[ReplicaID]uint64

// NewVClock returns an empty clock.
func NewVClock() VClock { return make(VClock) }

// Tick increments the component of id and returns the clock.
func (v VClock) Tick(id ReplicaID) VClock {
	v[id]++
	return v
}

// Copy returns an independent copy.
func (v VClock) Copy() VClock {
	out := make(VClock, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Merge folds other into v (pointwise max).
func (v VClock) Merge(other VClock) {
	for k, n := range other {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Compare returns the causal relationship of v to other.
func (v VClock) Compare(other VClock) Ordering {
	var less, greater bool
	for k, n := range v {
		if o := other[k]; n < o {
			less = true
		} else if n > o {
			greater = true
		}
	}
	for k, o := range other {
		if _, ok := v[k]; !ok && o > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether v >= other pointwise.
func (v VClock) Dominates(other VClock) bool {
	c := v.Compare(other)
	return c == After || c == Equal
}

// IDs returns the replica IDs present, sorted.
func (v VClock) IDs() []ReplicaID {
	out := make([]ReplicaID, 0, len(v))
	for k := range v {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
