package crdt

import "encoding/json"

// GCounter is a grow-only counter: each replica increments its own
// component; the value is the sum and Merge is pointwise max.
type GCounter struct {
	Counts map[ReplicaID]uint64 `json:"counts"`
}

// NewGCounter returns a zero counter.
func NewGCounter() *GCounter {
	return &GCounter{Counts: make(map[ReplicaID]uint64)}
}

// Inc adds d (must be non-negative deltas expressed as uint) to id's
// component.
func (g *GCounter) Inc(id ReplicaID, d uint64) {
	if d == 0 {
		return // avoid zero-valued entries, which Merge never carries
	}
	if g.Counts == nil {
		g.Counts = make(map[ReplicaID]uint64)
	}
	g.Counts[id] += d
}

// Value returns the counter total.
func (g *GCounter) Value() uint64 {
	var sum uint64
	for _, n := range g.Counts {
		sum += n
	}
	return sum
}

// Merge folds other into g (pointwise max).
func (g *GCounter) Merge(other *GCounter) {
	if g.Counts == nil {
		g.Counts = make(map[ReplicaID]uint64)
	}
	for k, n := range other.Counts {
		if n > g.Counts[k] {
			g.Counts[k] = n
		}
	}
}

// Copy returns an independent copy.
func (g *GCounter) Copy() *GCounter {
	out := NewGCounter()
	out.Merge(g)
	return out
}

// Marshal serializes the counter state.
func (g *GCounter) Marshal() ([]byte, error) { return json.Marshal(g) }

// UnmarshalGCounter parses a serialized GCounter.
func UnmarshalGCounter(data []byte) (*GCounter, error) {
	g := NewGCounter()
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	if g.Counts == nil {
		g.Counts = make(map[ReplicaID]uint64)
	}
	return g, nil
}

// PNCounter supports increments and decrements as two GCounters.
type PNCounter struct {
	Pos *GCounter `json:"pos"`
	Neg *GCounter `json:"neg"`
}

// NewPNCounter returns a zero counter.
func NewPNCounter() *PNCounter {
	return &PNCounter{Pos: NewGCounter(), Neg: NewGCounter()}
}

// Add applies a positive or negative delta on behalf of id.
func (p *PNCounter) Add(id ReplicaID, d int64) {
	if d >= 0 {
		p.Pos.Inc(id, uint64(d))
	} else {
		p.Neg.Inc(id, uint64(-d))
	}
}

// Value returns the net count.
func (p *PNCounter) Value() int64 {
	return int64(p.Pos.Value()) - int64(p.Neg.Value())
}

// Merge folds other into p.
func (p *PNCounter) Merge(other *PNCounter) {
	p.Pos.Merge(other.Pos)
	p.Neg.Merge(other.Neg)
}

// Copy returns an independent copy.
func (p *PNCounter) Copy() *PNCounter {
	out := NewPNCounter()
	out.Merge(p)
	return out
}

// Marshal serializes the counter state.
func (p *PNCounter) Marshal() ([]byte, error) { return json.Marshal(p) }

// UnmarshalPNCounter parses a serialized PNCounter.
func UnmarshalPNCounter(data []byte) (*PNCounter, error) {
	p := NewPNCounter()
	if err := json.Unmarshal(data, p); err != nil {
		return nil, err
	}
	if p.Pos == nil {
		p.Pos = NewGCounter()
	}
	if p.Neg == nil {
		p.Neg = NewGCounter()
	}
	return p, nil
}
