package bus

import (
	"sync"
	"testing"
	"time"
)

// collect subscribes and returns a function that waits for n messages.
func collect(t *testing.T, b *Broker, pattern string) (waitFor func(n int) []Message) {
	t.Helper()
	var mu sync.Mutex
	var got []Message
	if _, err := b.Subscribe(pattern, func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Subscribe(%q): %v", pattern, err)
	}
	return func(n int) []Message {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			if len(got) >= n {
				out := append([]Message(nil), got...)
				mu.Unlock()
				return out
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timed out waiting for %d messages on %q, have %d", n, pattern, len(got))
		return nil
	}
}

func TestExactTopicDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	wait := collect(t, b, "obs/dev1/temp")
	if err := b.Publish("obs/dev1/temp", []byte("21"), false); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("obs/dev2/temp", []byte("99"), false); err != nil {
		t.Fatal(err)
	}
	got := wait(1)
	time.Sleep(10 * time.Millisecond)
	if len(got) != 1 || string(got[0].Payload) != "21" {
		t.Fatalf("got %v", got)
	}
}

func TestPlusWildcard(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	wait := collect(t, b, "obs/+/temp")
	b.Publish("obs/a/temp", []byte("1"), false)
	b.Publish("obs/b/temp", []byte("2"), false)
	b.Publish("obs/a/rpm", []byte("3"), false)    // no match
	b.Publish("obs/a/b/temp", []byte("4"), false) // no match: + is one level
	got := wait(2)
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
}

func TestHashWildcard(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	wait := collect(t, b, "obs/#")
	b.Publish("obs/a/temp", nil, false)
	b.Publish("obs/a/b/c/d", nil, false)
	b.Publish("cmd/a", nil, false) // no match
	got := wait(2)
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
}

func TestRetainedReplay(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	b.Publish("state/valve", []byte("open"), true)
	wait := collect(t, b, "state/valve")
	got := wait(1)
	if string(got[0].Payload) != "open" || !got[0].Retained {
		t.Fatalf("retained replay = %+v", got[0])
	}
	if topics := b.RetainedTopics(); len(topics) != 1 || topics[0] != "state/valve" {
		t.Fatalf("RetainedTopics = %v", topics)
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	var mu sync.Mutex
	count := 0
	sub, err := b.Subscribe("t", func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("t", nil, false)
	time.Sleep(50 * time.Millisecond)
	sub.Cancel()
	sub.Cancel() // idempotent
	b.Publish("t", nil, false)
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestInvalidPatterns(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	for _, p := range []string{"", "a/#/b", "a/x#", "a/x+", "+x/a"} {
		if _, err := b.Subscribe(p, func(Message) {}); err == nil {
			t.Errorf("pattern %q accepted", p)
		}
	}
}

func TestPublishWildcardTopicRejected(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.Publish("a/+/b", nil, false); err == nil {
		t.Fatal("wildcard topic accepted")
	}
}

func TestClosedBroker(t *testing.T) {
	b := NewBroker()
	b.Close()
	b.Close() // idempotent
	if err := b.Publish("t", nil, false); err != ErrClosed {
		t.Fatalf("Publish err = %v", err)
	}
	if _, err := b.Subscribe("t", func(Message) {}); err != ErrClosed {
		t.Fatalf("Subscribe err = %v", err)
	}
}

func TestSlowConsumerDoesNotBlockOthers(t *testing.T) {
	b := NewBroker()
	block := make(chan struct{})
	defer b.Close()    // runs last (after the handler is unblocked)
	defer close(block) // LIFO: unblocks the slow handler first
	if _, err := b.Subscribe("t", func(Message) { <-block }); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var last []byte
	count := 0
	if _, err := b.Subscribe("t", func(m Message) {
		mu.Lock()
		count++
		last = m.Payload
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Burst past the slow consumer's queue; drop-oldest may shed some
	// of the burst for any consumer, but the fabric must keep moving:
	// a message published after the burst must still arrive.
	for i := 0; i < 300; i++ {
		b.Publish("t", []byte("burst"), false)
	}
	b.Publish("t", []byte("final"), false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := string(last) == "final"
		n := count
		mu.Unlock()
		if done {
			if n < 128 {
				t.Fatalf("fast consumer got only %d messages", n)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("final message never reached the fast consumer")
}

func TestTopicMatchesTable(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/b/c", false},
		{"a/+", "a/b", true},
		{"a/+", "a", false},
		{"+/+", "a/b", true},
		{"#", "anything/at/all", true},
		{"a/#", "a", true}, // MQTT: '#' also matches the parent level
		{"a/#", "a/b/c", true},
	}
	for _, c := range cases {
		got := topicMatches(splitPat(c.pattern), splitPat(c.topic))
		if got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func splitPat(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// --- synchronous (inline-delivery) mode ---

func TestSyncDeliveryInline(t *testing.T) {
	b := NewSyncBroker()
	defer b.Close()
	var got []string
	if _, err := b.Subscribe("a/#", func(m Message) {
		got = append(got, m.Topic+"="+string(m.Payload))
	}); err != nil {
		t.Fatal(err)
	}
	// Inline mode: the handler has run before Publish returns, so no
	// synchronization or waiting is needed.
	if err := b.Publish("a/b", []byte("1"), false); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("a/c", []byte("2"), false); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a/b=1" || got[1] != "a/c=2" {
		t.Fatalf("inline delivery got %v", got)
	}
	if b.Delivered() != 2 {
		t.Fatalf("Delivered = %d, want 2", b.Delivered())
	}
}

func TestSyncSubscriptionOrder(t *testing.T) {
	b := NewSyncBroker()
	defer b.Close()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := b.Subscribe("t", func(Message) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("t", nil, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v, want subscription order", order)
		}
	}
}

func TestSyncRecursivePublish(t *testing.T) {
	b := NewSyncBroker()
	defer b.Close()
	var got []string
	if _, err := b.Subscribe("chain/+", func(m Message) {
		got = append(got, m.Topic)
		if m.Topic == "chain/a" {
			// A handler may publish from inside delivery.
			if err := b.Publish("chain/b", nil, false); err != nil {
				t.Errorf("recursive publish: %v", err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("chain/a", nil, false); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "chain/a" || got[1] != "chain/b" {
		t.Fatalf("recursive delivery got %v", got)
	}
}

func TestSyncRetainedReplayInline(t *testing.T) {
	b := NewSyncBroker()
	defer b.Close()
	if err := b.Publish("r/b", []byte("2"), true); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("r/a", []byte("1"), true); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err := b.Subscribe("r/#", func(m Message) {
		if !m.Retained {
			t.Errorf("replayed message %q not marked retained", m.Topic)
		}
		got = append(got, m.Topic)
	}); err != nil {
		t.Fatal(err)
	}
	// Replay happens inline during Subscribe, in sorted topic order.
	if len(got) != 2 || got[0] != "r/a" || got[1] != "r/b" {
		t.Fatalf("retained replay got %v, want [r/a r/b]", got)
	}
}

// TestRetainedCopiesPayload pins the retained-message ownership rule:
// the broker must own the retained payload, so a publisher reusing (or a
// pooled packet path recycling) its slice cannot corrupt later replays.
func TestRetainedCopiesPayload(t *testing.T) {
	b := NewSyncBroker()
	defer b.Close()
	payload := []byte("v1")
	if err := b.Publish("plant/temp", payload, true); err != nil {
		t.Fatal(err)
	}
	payload[0], payload[1] = 'X', 'X' // publisher reuses its buffer
	var got string
	if _, err := b.Subscribe("plant/temp", func(m Message) { got = string(m.Payload) }); err != nil {
		t.Fatal(err)
	}
	if got != "v1" {
		t.Fatalf("retained replay saw %q, want %q (payload not copied)", got, "v1")
	}
}
