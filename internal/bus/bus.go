// Package bus is the topic-based publish/subscribe fabric of the
// application-logic tier: the middleware through which sensing-layer
// observations reach rules, storage, and operator dashboards (§III-B).
// Topics are "/"-separated; subscriptions support MQTT-style "+" (one
// level) and "#" (rest) wildcards, retained messages, and per-subscriber
// queues so one slow consumer cannot block the rest.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"iiotds/internal/metrics"
	"iiotds/internal/netbuf"
	"iiotds/internal/trace"
)

// Message is one published event.
type Message struct {
	Topic    string
	Payload  []byte
	Retained bool
}

// Handler consumes messages for one subscription. In sync mode the
// payload may be a view into the publisher's buffer (often a pooled
// packet buffer from the network stack), valid only for the duration of
// the call: copy with netbuf.CloneBytes to retain it.
type Handler func(m Message)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("bus: broker closed")

// subscription is one registered handler.
type subscription struct {
	id      uint64
	pattern []string
	handler Handler
	queue   chan Message
	done    chan struct{}
}

// Broker routes messages from publishers to subscribers.
type Broker struct {
	mu       sync.Mutex
	subs     map[uint64]*subscription
	retained map[string]Message
	nextID   uint64
	closed   bool
	sync     bool
	wg       sync.WaitGroup

	published *metrics.Counter
	delivered *metrics.Counter

	// rec, when set, receives publish/deliver trace events. Only sync
	// brokers may carry a recorder: async delivery runs on subscriber
	// goroutines and the recorder is not concurrency-safe.
	rec *trace.Recorder
}

// NewBroker returns a running broker. Each subscriber gets a dedicated
// delivery goroutine with a bounded queue (production semantics: one
// slow consumer cannot block the rest).
func NewBroker() *Broker {
	b := &Broker{
		subs:     make(map[uint64]*subscription),
		retained: make(map[string]Message),
	}
	b.UseRegistry(metrics.NewRegistry())
	return b
}

// UseRegistry points the broker's routing counters ("bus.published",
// "bus.delivered") at reg, so they appear in the deployment-wide
// snapshot. Call before any traffic flows.
func (b *Broker) UseRegistry(reg *metrics.Registry) {
	b.published = reg.Counter("bus.published")
	b.delivered = reg.Counter("bus.delivered")
}

// SetTrace installs a flight recorder. Panics on an async broker, whose
// delivery goroutines would race on the single-threaded recorder.
func (b *Broker) SetTrace(rec *trace.Recorder) {
	if rec != nil && !b.sync {
		panic("bus: SetTrace on an async broker")
	}
	b.rec = rec
}

// Published returns how many messages have been accepted for routing.
func (b *Broker) Published() uint64 { return uint64(b.published.Value()) }

// Delivered returns how many messages have been handed to subscribers.
func (b *Broker) Delivered() uint64 { return uint64(b.delivered.Value()) }

// NewSyncBroker returns a broker that delivers every message inline on
// the publisher's goroutine, in subscription order, before Publish
// returns. This is the mode simulated deployments use: handlers run on
// the simulation thread, so they may touch the (single-threaded) event
// kernel, and delivery order is deterministic. Handlers may publish
// recursively; no queues exist, so nothing is ever dropped.
func NewSyncBroker() *Broker {
	b := NewBroker()
	b.sync = true
	return b
}

// Subscription identifies an active subscription for cancellation.
type Subscription struct {
	id     uint64
	broker *Broker
}

// Cancel removes the subscription. Idempotent.
func (s *Subscription) Cancel() {
	s.broker.mu.Lock()
	sub, ok := s.broker.subs[s.id]
	if ok {
		delete(s.broker.subs, s.id)
		close(sub.done)
	}
	s.broker.mu.Unlock()
}

// Subscribe registers handler for all topics matching pattern. Matching
// retained messages are delivered immediately. The handler runs on a
// dedicated goroutine with a bounded queue; overflow drops the oldest
// message (telemetry semantics: newest wins).
func (b *Broker) Subscribe(pattern string, handler Handler) (*Subscription, error) {
	if err := validatePattern(pattern); err != nil {
		return nil, err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.nextID++
	sub := &subscription{
		id:      b.nextID,
		pattern: strings.Split(pattern, "/"),
		handler: handler,
		queue:   make(chan Message, 128),
		done:    make(chan struct{}),
	}
	b.subs[sub.id] = sub
	// Replay retained messages that match, in deterministic topic order.
	var topics []string
	for topic, m := range b.retained {
		if topicMatches(sub.pattern, strings.Split(m.Topic, "/")) {
			topics = append(topics, topic)
		}
	}
	sort.Strings(topics)
	replay := make([]Message, 0, len(topics))
	for _, topic := range topics {
		replay = append(replay, b.retained[topic])
	}
	if !b.sync {
		b.wg.Add(1)
		go b.pump(sub)
	}
	b.mu.Unlock()

	for _, m := range replay {
		b.deliver(sub, m)
	}
	return &Subscription{id: sub.id, broker: b}, nil
}

// deliver hands m to sub via the broker's delivery discipline: inline on
// the caller in sync mode, through the bounded queue otherwise.
func (b *Broker) deliver(sub *subscription, m Message) {
	if b.sync {
		b.rec.Emit(-1, trace.BusDeliver, int64(sub.id), int64(len(m.Payload)), 0, 0)
		sub.handler(m)
		b.delivered.Inc()
		return
	}
	b.enqueue(sub, m)
}

func (b *Broker) pump(sub *subscription) {
	defer b.wg.Done()
	for {
		select {
		case m := <-sub.queue:
			sub.handler(m)
			b.delivered.Inc()
		case <-sub.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case m := <-sub.queue:
					sub.handler(m)
				default:
					return
				}
			}
		}
	}
}

func (b *Broker) enqueue(sub *subscription, m Message) {
	for {
		select {
		case sub.queue <- m:
			return
		default:
			// Bounded queue full: drop the oldest so fresh telemetry
			// is not delayed by a slow consumer.
			select {
			case <-sub.queue:
			default:
			}
		}
	}
}

// Publish routes m to all matching subscriptions. With retain, the
// message also replaces the retained message for its topic.
func (b *Broker) Publish(topic string, payload []byte, retain bool) error {
	if strings.ContainsAny(topic, "+#") {
		return fmt.Errorf("bus: topic %q must not contain wildcards", topic)
	}
	m := Message{Topic: topic, Payload: payload, Retained: false}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.published.Inc()
	b.rec.Emit(-1, trace.BusPublish, int64(len(topic)), int64(len(m.Payload)), 0, 0)
	if retain {
		// The retained copy outlives the publish call, so it must own its
		// payload — the caller's slice may be a pooled-buffer view that is
		// recycled the moment this returns.
		r := m
		r.Retained = true
		r.Payload = netbuf.CloneBytes(m.Payload)
		b.retained[topic] = r
	}
	parts := strings.Split(topic, "/")
	var targets []*subscription
	for _, sub := range b.subs {
		if topicMatches(sub.pattern, parts) {
			targets = append(targets, sub)
		}
	}
	// Deliver in subscription order so inline (sync) delivery is
	// deterministic regardless of map iteration.
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	b.mu.Unlock()
	for _, sub := range targets {
		b.deliver(sub, m)
	}
	return nil
}

// Close shuts the broker down and waits for handler goroutines to exit.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.done)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// RetainedTopics returns the topics with retained messages.
func (b *Broker) RetainedTopics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.retained))
	for t := range b.retained {
		out = append(out, t)
	}
	return out
}

// validatePattern checks wildcard placement: "+" must occupy a whole
// level; "#" must be the final level.
func validatePattern(pattern string) error {
	if pattern == "" {
		return errors.New("bus: empty pattern")
	}
	parts := strings.Split(pattern, "/")
	for i, p := range parts {
		if strings.Contains(p, "#") && (p != "#" || i != len(parts)-1) {
			return fmt.Errorf("bus: '#' must be the final level in %q", pattern)
		}
		if strings.Contains(p, "+") && p != "+" {
			return fmt.Errorf("bus: '+' must occupy a whole level in %q", pattern)
		}
	}
	return nil
}

// topicMatches reports whether a topic matches a pattern.
func topicMatches(pattern, topic []string) bool {
	for i, p := range pattern {
		if p == "#" {
			return true
		}
		if i >= len(topic) {
			return false
		}
		if p != "+" && p != topic[i] {
			return false
		}
	}
	return len(pattern) == len(topic)
}
