package netbuf

import (
	"bytes"
	"testing"
)

// FuzzBufferOps drives random Prepend/TrimFront/Append/Extend/
// Truncate/Clone/Retain/Release sequences over a small set of live
// buffers from one pool, mirroring each buffer against a plain []byte
// model. The invariants under test are exactly the ISSUE contract:
// legal sequences never panic, and no live buffer ever aliases another
// — in particular not across pool reuse, where the backing array of a
// released buffer is handed to the next Get.
func FuzzBufferOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 2, 2, 2, 6, 0, 3, 3, 8, 8})
	f.Add([]byte{0, 0, 0, 2, 7, 8, 2, 6, 8, 7, 8, 8})
	f.Fuzz(func(t *testing.T, ops []byte) {
		p := NewPool()
		p.SetPoison(true)
		type slot struct {
			b     *Buffer
			model []byte
			refs  int
		}
		var live []*slot
		next := byte(1) // distinct fill pattern per op so aliasing shows
		check := func() {
			for i, s := range live {
				if !bytes.Equal(s.b.Bytes(), s.model) {
					t.Fatalf("slot %d diverged from model: buffer=%x model=%x", i, s.b.Bytes(), s.model)
				}
			}
		}
		for i := 0; i < len(ops); i++ {
			op := ops[i] % 9
			// Operand byte: which slot / how many bytes.
			var arg byte
			if i+1 < len(ops) {
				i++
				arg = ops[i]
			}
			if op == 0 { // get
				if len(live) < 8 {
					live = append(live, &slot{b: p.Get(), refs: 1})
				}
				check()
				continue
			}
			if len(live) == 0 {
				continue
			}
			s := live[int(arg)%len(live)]
			switch op {
			case 1: // append n bytes of a fresh pattern
				n := int(arg)%40 + 1
				fill := bytes.Repeat([]byte{next}, n)
				next++
				s.b.Append(fill)
				s.model = append(s.model, fill...)
			case 2: // prepend n bytes
				n := int(arg)%20 + 1
				fill := bytes.Repeat([]byte{next}, n)
				next++
				copy(s.b.Prepend(n), fill)
				s.model = append(fill, s.model...)
			case 3: // trim front
				if len(s.model) > 0 {
					n := int(arg)%len(s.model) + 1
					s.b.TrimFront(n)
					s.model = s.model[n:]
				}
			case 4: // extend
				n := int(arg)%16 + 1
				fill := bytes.Repeat([]byte{next}, n)
				next++
				copy(s.b.Extend(n), fill)
				s.model = append(s.model, fill...)
			case 5: // truncate
				if len(s.model) > 0 {
					n := int(arg) % len(s.model)
					s.b.Truncate(n)
					s.model = s.model[:n]
				}
			case 6: // clone into a new slot
				if len(live) < 8 {
					live = append(live, &slot{b: s.b.Clone(), model: CloneBytes(s.model), refs: 1})
				}
			case 7: // retain
				if s.refs < 4 {
					s.b.Retain()
					s.refs++
				}
			case 8: // release one reference; drop the slot at zero
				s.refs--
				s.b.Release()
				if s.refs == 0 {
					for j, o := range live {
						if o == s {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			}
			check()
		}
		// Releasing everything must drain the pool back to zero live.
		for _, s := range live {
			for ; s.refs > 0; s.refs-- {
				s.b.Release()
			}
		}
		if st := p.Stats(); st.Live != 0 {
			t.Fatalf("pool leak after releasing all: %+v", st)
		}
	})
}
