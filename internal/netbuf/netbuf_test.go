package netbuf

import (
	"bytes"
	"testing"
)

func TestPrependTrimRoundTrip(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("payload"))
	copy(b.Prepend(3), "mac")
	b.Prepend(1)[0] = 'L'
	if got := string(b.Bytes()); got != "Lmacpayload" {
		t.Fatalf("Bytes = %q", got)
	}
	b.TrimFront(1)
	b.TrimFront(3)
	if got := string(b.Bytes()); got != "payload" {
		t.Fatalf("after trims = %q", got)
	}
	if b.Len() != 7 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Release()
	if s := p.Stats(); s.Live != 0 || s.Free != 1 {
		t.Fatalf("stats after release: %+v", s)
	}
}

func TestExtendTruncate(t *testing.T) {
	b := New()
	b.Append([]byte("ct"))
	copy(b.Extend(3), "tag")
	if got := string(b.Bytes()); got != "cttag" {
		t.Fatalf("Bytes = %q", got)
	}
	b.Truncate(2)
	if got := string(b.Bytes()); got != "ct" {
		t.Fatalf("after Truncate = %q", got)
	}
}

func TestGrowFrontPreservesContent(t *testing.T) {
	b := New()
	b.Append([]byte("data"))
	// Exhaust the headroom, then keep prepending: content must survive.
	for i := 0; i < 10; i++ {
		copy(b.Prepend(8), "hhhhhhhh")
	}
	want := bytes.Repeat([]byte("hhhhhhhh"), 10)
	want = append(want, []byte("data")...)
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("content corrupted by growFront: %q", b.Bytes())
	}
}

func TestGrowBackPreservesContent(t *testing.T) {
	b := New()
	chunk := bytes.Repeat([]byte{0xAB}, 100)
	for i := 0; i < 20; i++ {
		b.Append(chunk)
	}
	if b.Len() != 2000 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, c := range b.Bytes() {
		if c != 0xAB {
			t.Fatal("content corrupted by growBack")
		}
	}
}

func TestPoolReuseLIFOAndGeneration(t *testing.T) {
	p := NewPool()
	b := p.Get()
	g := b.Generation()
	b.Append([]byte("x"))
	b.Release()
	b2 := p.Get()
	if b2 != b {
		t.Fatal("pool did not reuse LIFO")
	}
	if b2.Generation() != g+1 {
		t.Fatalf("generation = %d, want %d", b2.Generation(), g+1)
	}
	if b2.Len() != 0 || b2.Headroom() != DefaultHeadroom {
		t.Fatal("reused buffer not reset")
	}
	s := p.Stats()
	if s.Gets != 2 || s.Puts != 1 || s.Allocs != 1 || s.Live != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPoisonScribblesReleasedBuffer(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Get()
	b.Append([]byte("secret"))
	view := b.Bytes() // a handler illegally retaining the view
	b.Release()
	for _, c := range view {
		if c != poisonByte {
			t.Fatalf("released bytes not poisoned: %q", view)
		}
	}
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on use after release")
		}
	}()
	b.Append([]byte("boom"))
}

func TestDoubleReleasePanics(t *testing.T) {
	b := New()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	b.Release()
}

func TestRetainKeepsBufferAlive(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("keep"))
	b.Retain()
	b.Release()
	if got := string(b.Bytes()); got != "keep" {
		t.Fatalf("retained buffer lost content: %q", got)
	}
	b.Release()
	if p.Stats().Live != 0 {
		t.Fatal("buffer not returned after final release")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("original"))
	c := b.Clone()
	c.Bytes()[0] = 'X'
	if got := string(b.Bytes()); got != "original" {
		t.Fatalf("clone aliased source: %q", got)
	}
	b.Release()
	c.Release()
}

func TestCloneBytes(t *testing.T) {
	if CloneBytes(nil) != nil {
		t.Fatal("CloneBytes(nil) != nil")
	}
	src := []byte("abc")
	dup := CloneBytes(src)
	dup[0] = 'X'
	if string(src) != "abc" {
		t.Fatal("CloneBytes aliased its input")
	}
	if got := CloneBytes([]byte{}); len(got) != 0 {
		t.Fatalf("CloneBytes(empty) = %v", got)
	}
}

// TestSteadyStateZeroAllocs is the pool's own alloc gate: once warm, a
// get/prepend/clone/release cycle must not touch the heap.
func TestSteadyStateZeroAllocs(t *testing.T) {
	p := NewPool()
	payload := make([]byte, 64)
	// Warm up: the clone below needs a second pooled buffer.
	w := p.Get()
	w2 := w.Clone()
	w.Release()
	w2.Release()
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get()
		b.Append(payload)
		copy(b.Prepend(3), "hdr")
		c := b.Clone()
		c.TrimFront(3)
		c.Release()
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state pool cycle allocates %v times/op, want 0", allocs)
	}
}
