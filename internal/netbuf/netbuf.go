// Package netbuf provides the pooled packet buffer that the emulated
// stack threads through radio, MAC, link, 6LoWPAN, security, and RPL.
//
// A Buffer is a window [off, end) over one backing array with reserved
// headroom in front, so each layer prepends its header in place with
// Prepend instead of allocating a fresh slice and copying the payload
// (the skbuff idiom). Buffers are reference counted: Retain/Release
// track ownership across the retransmit queue and the radio flight
// path, and a released pooled buffer returns to its Pool for reuse.
//
// Ownership contract (see README "packet path & buffer contract"):
//
//   - SendBuf-style APIs take ownership of the buffer passed in; the
//     caller must Retain first if it needs the bytes afterwards.
//   - Receive handlers get views ([]byte or *Buffer) that are valid
//     only for the duration of the callback; copy with CloneBytes (or
//     Clone) to retain.
//   - Every Get/Clone/Retain must be balanced by exactly one Release.
//
// Pools are deliberately NOT safe for concurrent use: the simulator
// runs one single-threaded kernel per trial, and a mutex on the hot
// path would be pure overhead. Each radio.Medium owns its own Pool.
//
// Misuse fails fast: any operation on a buffer whose refcount has
// dropped to zero panics, and a Pool with poison mode enabled (the
// default under tests, see SetPoison) scribbles returned buffers so a
// handler that retained a view across pool reuse reads garbage
// deterministically instead of another packet's bytes. Generation
// counters (Generation) let tests assert that a recycled buffer is a
// new logical packet even though the struct pointer is reused.
package netbuf

// DefaultHeadroom is reserved in front of a fresh buffer's payload so
// the full header stack prepends without moving bytes: MAC (3) +
// link proto (1) + 6LoWPAN dispatch (1) + security header (9) + slack.
const DefaultHeadroom = 16

// defaultSize sizes a fresh backing array: headroom plus an MTU-class
// frame. Oversized packets grow the array once; growth is kept across
// pool reuse so a steady-state workload stops allocating.
const defaultSize = DefaultHeadroom + 144

// poisonByte is scribbled over released buffers in poison mode.
const poisonByte = 0xDB

// Stats counts pool traffic, mirroring sim.Kernel.Stats(): Allocs is
// the number of backing arrays ever created, so Gets-Allocs buffers
// were served allocation-free from the freelist.
type Stats struct {
	Gets   uint64 // buffers handed out
	Puts   uint64 // buffers returned
	Allocs uint64 // fresh Buffer structs created (pool misses)
	Grown  uint64 // backing arrays regrown for oversized packets
	Live   int    // currently checked out
	Free   int    // currently on the freelist
}

// Pool recycles Buffers LIFO. The zero value is NOT usable; call
// NewPool. Not safe for concurrent use — one pool per kernel.
type Pool struct {
	free     []*Buffer
	stats    Stats
	poison   bool
	journeys Journeys
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Journeys returns the pool's journey-ID context. There is one pool per
// simulation kernel (owned by its radio.Medium), so the counter is
// kernel-scoped and its draws are deterministic.
func (p *Pool) Journeys() *Journeys { return &p.journeys }

// Journeys allocates deterministic packet journey IDs and tracks the
// "current" journey — the ID of the packet whose receive processing is
// on the stack right now. IDs are a plain counter (not random) so runs
// are byte-identical under the determinism regime; 0 means "no journey".
//
// The receive path brackets handler invocations with SetCurrent, so any
// traffic a layer sends synchronously while processing an inbound packet
// (a forwarded datagram, a CoAP response) continues that packet's
// journey instead of starting an unrelated one. Like the Pool itself,
// Journeys is not safe for concurrent use.
type Journeys struct {
	next uint64
	cur  uint64
}

// New allocates and returns a fresh journey ID (never 0).
func (j *Journeys) New() uint64 {
	j.next++
	return j.next
}

// Current returns the journey ID in whose context the caller runs, or 0
// if none.
func (j *Journeys) Current() uint64 { return j.cur }

// SetCurrent installs id as the current journey and returns the previous
// value so callers can restore it:
//
//	prev := js.SetCurrent(b.Journey())
//	handler(...)
//	js.SetCurrent(prev)
func (j *Journeys) SetCurrent(id uint64) (prev uint64) {
	prev = j.cur
	j.cur = id
	return prev
}

// SetPoison toggles debug poisoning: when on, every buffer returned to
// the pool is scribbled with 0xDB so use-after-release reads fail
// deterministically instead of silently observing the next packet.
func (p *Pool) SetPoison(on bool) { p.poison = on }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	s := p.stats
	s.Free = len(p.free)
	s.Live = int(s.Gets) - int(s.Puts)
	return s
}

// Get returns an empty buffer with DefaultHeadroom reserved and
// refcount 1. The caller owns the sole reference.
func (p *Pool) Get() *Buffer {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.refs = 1
		b.off, b.end = DefaultHeadroom, DefaultHeadroom
		b.journey = 0
		return b
	}
	p.stats.Allocs++
	return &Buffer{data: make([]byte, defaultSize), off: DefaultHeadroom, end: DefaultHeadroom, refs: 1, pool: p}
}

// put returns a buffer to the freelist. Called by Buffer.Release.
func (p *Pool) put(b *Buffer) {
	p.stats.Puts++
	b.gen++
	if p.poison {
		for i := range b.data {
			b.data[i] = poisonByte
		}
	}
	p.free = append(p.free, b)
}

// Buffer is a refcounted window over a backing array. The zero value
// is not usable; obtain buffers from a Pool, New, or FromBytes.
type Buffer struct {
	data     []byte
	off, end int
	refs     int
	gen      uint64
	journey  uint64
	pool     *Pool // nil for unpooled buffers
}

// New returns an unpooled empty buffer with DefaultHeadroom reserved.
// Release on an unpooled buffer just invalidates it.
func New() *Buffer {
	return &Buffer{data: make([]byte, defaultSize), off: DefaultHeadroom, end: DefaultHeadroom, refs: 1}
}

// FromBytes returns an unpooled buffer whose content is a copy of p,
// with DefaultHeadroom reserved in front. Convenient in tests.
func FromBytes(p []byte) *Buffer {
	b := New()
	b.Append(p)
	return b
}

func (b *Buffer) check() {
	if b.refs <= 0 {
		panic("netbuf: use of released buffer")
	}
}

// Len returns the number of payload bytes in the window.
func (b *Buffer) Len() int { b.check(); return b.end - b.off }

// Headroom returns how many bytes Prepend can claim without growing.
func (b *Buffer) Headroom() int { b.check(); return b.off }

// Tailroom returns how many bytes Append/Extend can claim without
// growing.
func (b *Buffer) Tailroom() int { b.check(); return len(b.data) - b.end }

// Refs returns the current reference count.
func (b *Buffer) Refs() int { return b.refs }

// Generation returns the buffer's pool-reuse generation. It increments
// every time the buffer is returned to its pool, so a holder of a
// stale reference can detect that the struct now carries a different
// packet.
func (b *Buffer) Generation() uint64 { return b.gen }

// Journey returns the ID of the logical packet this buffer carries, or
// 0 if none was assigned. The ID is sideband metadata — it never goes
// on the air — stamped by 6LoWPAN encoding and preserved across
// Prepend/TrimFront/Clone/retransmit so flight-recorder events emitted
// anywhere along the path correlate to one journey.
func (b *Buffer) Journey() uint64 { b.check(); return b.journey }

// SetJourney stamps the buffer with a journey ID (see Journey).
func (b *Buffer) SetJourney(id uint64) { b.check(); b.journey = id }

// Bytes returns the payload window. The slice is a view into the
// buffer: it is invalidated by Prepend/TrimFront/grow and must not be
// retained past Release.
func (b *Buffer) Bytes() []byte { b.check(); return b.data[b.off:b.end] }

// Prepend grows the window n bytes at the front and returns the new
// front region for the caller to fill (a header, typically). Grows the
// backing array if headroom is exhausted.
func (b *Buffer) Prepend(n int) []byte {
	b.check()
	if n < 0 {
		panic("netbuf: negative Prepend")
	}
	if n > b.off {
		b.growFront(n)
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// TrimFront shrinks the window n bytes at the front — the receive-side
// inverse of Prepend, used by each layer to strip its header in place.
func (b *Buffer) TrimFront(n int) {
	b.check()
	if n < 0 || n > b.Len() {
		panic("netbuf: TrimFront out of range")
	}
	b.off += n
}

// Append copies p onto the end of the window, growing if needed.
func (b *Buffer) Append(p []byte) {
	copy(b.Extend(len(p)), p)
}

// AppendByte appends a single byte.
func (b *Buffer) AppendByte(c byte) {
	b.Extend(1)[0] = c
}

// Extend grows the window n bytes at the tail and returns the new tail
// region for the caller to fill (an AEAD tag, typically).
func (b *Buffer) Extend(n int) []byte {
	b.check()
	if n < 0 {
		panic("netbuf: negative Extend")
	}
	if b.end+n > len(b.data) {
		b.growBack(n)
	}
	b.end += n
	return b.data[b.end-n : b.end]
}

// Truncate shrinks the window to n bytes, dropping the tail.
func (b *Buffer) Truncate(n int) {
	b.check()
	if n < 0 || n > b.Len() {
		panic("netbuf: Truncate out of range")
	}
	b.end = b.off + n
}

// Reset empties the buffer and restores DefaultHeadroom.
func (b *Buffer) Reset() {
	b.check()
	b.off, b.end = DefaultHeadroom, DefaultHeadroom
}

// growFront reallocates so at least n bytes of headroom exist,
// preserving the window content and its tailroom.
func (b *Buffer) growFront(n int) {
	need := n + DefaultHeadroom
	nd := make([]byte, need+len(b.data)-b.off)
	copy(nd[need:], b.data[b.off:])
	b.end += need - b.off
	b.off = need
	b.data = nd
	if b.pool != nil {
		b.pool.stats.Grown++
	}
}

// growBack reallocates so at least n bytes of tailroom exist.
func (b *Buffer) growBack(n int) {
	c := len(b.data) * 2
	if c < b.end+n {
		c = b.end + n + defaultSize
	}
	nd := make([]byte, c)
	copy(nd, b.data[:b.end])
	b.data = nd
	if b.pool != nil {
		b.pool.stats.Grown++
	}
}

// Retain adds a reference and returns the same buffer. Each Retain
// needs a matching Release.
func (b *Buffer) Retain() *Buffer {
	b.check()
	b.refs++
	return b
}

// Release drops one reference. When the last reference is gone a
// pooled buffer returns to its pool (possibly poisoned); any further
// use panics.
func (b *Buffer) Release() {
	b.check()
	b.refs--
	if b.refs == 0 && b.pool != nil {
		b.pool.put(b)
	}
}

// Clone returns an independent copy of the window bytes in a new
// buffer (from the same pool when the source is pooled), with
// DefaultHeadroom restored. This is the copy-on-fanout primitive: the
// radio medium clones the in-flight buffer once per receiver so no two
// receivers — nor the sender's retained retransmit buffer — alias.
func (b *Buffer) Clone() *Buffer {
	b.check()
	var c *Buffer
	if b.pool != nil {
		c = b.pool.Get()
	} else {
		c = New()
	}
	c.Append(b.Bytes())
	c.journey = b.journey
	return c
}

// CloneBytes returns an independent copy of p (nil in, nil out). It is
// the one blessed defensive-copy idiom for handlers that retain a
// received view past the callback; grep for CloneBytes to find every
// place the stack pays for a copy.
func CloneBytes(p []byte) []byte {
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}
