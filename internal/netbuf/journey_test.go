package netbuf

import "testing"

func TestJourneysCounterAndContext(t *testing.T) {
	p := NewPool()
	js := p.Journeys()
	if js.Current() != 0 {
		t.Fatalf("fresh pool current journey = %d, want 0", js.Current())
	}
	// IDs are a dense 1-based counter.
	if a, b := js.New(), js.New(); a != 1 || b != 2 {
		t.Fatalf("New() issued %d, %d, want 1, 2", a, b)
	}
	// SetCurrent returns the previous value so callers can bracket
	// handler invocations and restore on the way out.
	if prev := js.SetCurrent(7); prev != 0 {
		t.Fatalf("SetCurrent prev = %d, want 0", prev)
	}
	if js.Current() != 7 {
		t.Fatalf("current = %d, want 7", js.Current())
	}
	if prev := js.SetCurrent(0); prev != 7 {
		t.Fatalf("restore prev = %d, want 7", prev)
	}
	// The counter is per-pool (= per-kernel), so independent trials
	// never share an ID sequence.
	if other := NewPool().Journeys().New(); other != 1 {
		t.Fatalf("second pool's first ID = %d, want 1", other)
	}
}

func TestBufferJourneyLifecycle(t *testing.T) {
	p := NewPool()
	b := p.Get()
	if b.Journey() != 0 {
		t.Fatalf("fresh buffer journey = %d, want 0", b.Journey())
	}
	b.SetJourney(42)
	b.Append([]byte("pkt"))

	// Clone carries the journey: a retransmitted or fragmented copy is
	// the same logical packet.
	c := b.Clone()
	if c.Journey() != 42 {
		t.Errorf("clone journey = %d, want 42", c.Journey())
	}
	c.SetJourney(9)
	if b.Journey() != 42 {
		t.Errorf("clone SetJourney leaked to original: %d", b.Journey())
	}
	c.Release()
	b.Release()

	// Pool reuse must not leak the previous journey into a new packet.
	n := p.Get()
	if n.Journey() != 0 {
		t.Errorf("reused buffer journey = %d, want 0 (stale ID leaked)", n.Journey())
	}
	n.Release()
}

func TestBufferJourneyAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.SetJourney(5)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("Journey() on released buffer did not panic")
		}
	}()
	_ = b.Journey()
}
