package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RadioState enumerates the power states of a low-power wireless node.
// Every packet on the simulated medium pays energy through these states,
// so the paper's energy claims (duty-cycling, funneling drain, detection
// cost) are measured rather than asserted.
type RadioState int

const (
	// StateSleep is the radio off, MCU sleeping.
	StateSleep RadioState = iota
	// StateListen is idle listening: radio on, no frame in the air.
	StateListen
	// StateRx is actively receiving a frame.
	StateRx
	// StateTx is actively transmitting a frame.
	StateTx
	// StateCPU is MCU-active processing with the radio off.
	StateCPU
	numStates
)

// String returns the state name.
func (s RadioState) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateListen:
		return "listen"
	case StateRx:
		return "rx"
	case StateTx:
		return "tx"
	case StateCPU:
		return "cpu"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

// PowerProfile gives the power draw, in watts, of each radio state.
type PowerProfile struct {
	Sleep  float64
	Listen float64
	Rx     float64
	Tx     float64
	CPU    float64
}

// DefaultPowerProfile models a CC2420-class IEEE 802.15.4 transceiver with
// a low-power MCU at 3 V: the platform family the paper's sensing-and-
// actuation layer discussion assumes.
func DefaultPowerProfile() PowerProfile {
	return PowerProfile{
		Sleep:  0.00006, // 20 µA deep sleep
		Listen: 0.0564,  // 18.8 mA radio on, idle
		Rx:     0.0564,  // 18.8 mA receive
		Tx:     0.0522,  // 17.4 mA transmit at 0 dBm
		CPU:    0.0054,  // 1.8 mA MCU active
	}
}

func (p PowerProfile) watts(s RadioState) float64 {
	switch s {
	case StateSleep:
		return p.Sleep
	case StateListen:
		return p.Listen
	case StateRx:
		return p.Rx
	case StateTx:
		return p.Tx
	case StateCPU:
		return p.CPU
	default:
		return 0
	}
}

// EnergyLedger accumulates per-state time for one node. Durations are
// exact integer nanoseconds held in atomics — Spend sits on the radio
// delivery fan-out (one call per receiver per frame), where a mutex was
// measurably hot at city scale — and joules are derived on read as
// watts x total time, which is both cheaper and numerically tighter
// than accumulating per-frame float products.
type EnergyLedger struct {
	profile PowerProfile
	dur     [numStates]atomic.Int64 // nanoseconds in state
}

// NewEnergyLedger returns a ledger using the given power profile.
func NewEnergyLedger(p PowerProfile) *EnergyLedger {
	return &EnergyLedger{profile: p}
}

// Spend charges d of time in state s.
func (l *EnergyLedger) Spend(s RadioState, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: EnergyLedger.Spend negative duration %v", d))
	}
	l.dur[s].Add(int64(d))
}

// Joules returns the energy spent in state s.
func (l *EnergyLedger) Joules(s RadioState) float64 {
	return l.profile.watts(s) * l.Duration(s).Seconds()
}

// TotalJoules returns the energy spent across all states.
func (l *EnergyLedger) TotalJoules() float64 {
	var t float64
	for s := RadioState(0); s < numStates; s++ {
		t += l.Joules(s)
	}
	return t
}

// Duration returns the accumulated time in state s.
func (l *EnergyLedger) Duration(s RadioState) time.Duration {
	return time.Duration(l.dur[s].Load())
}

// RadioOn returns the accumulated time with the radio powered
// (listen + rx + tx) — the quantity duty-cycling minimizes.
func (l *EnergyLedger) RadioOn() time.Duration {
	return l.Duration(StateListen) + l.Duration(StateRx) + l.Duration(StateTx)
}

// DutyCycle returns the fraction of total accounted time with the radio
// powered. It returns 0 when nothing has been accounted.
func (l *EnergyLedger) DutyCycle() float64 {
	var total time.Duration
	for s := RadioState(0); s < numStates; s++ {
		total += l.Duration(s)
	}
	if total == 0 {
		return 0
	}
	on := l.RadioOn()
	return float64(on) / float64(total)
}

// EnergySet tracks ledgers for a population of nodes keyed by an integer
// node ID, and answers fleet-level questions (max drain, mean drain).
type EnergySet struct {
	mu      sync.Mutex
	profile PowerProfile
	ledgers map[int]*EnergyLedger
}

// NewEnergySet returns an empty set whose ledgers use profile p.
func NewEnergySet(p PowerProfile) *EnergySet {
	return &EnergySet{profile: p, ledgers: make(map[int]*EnergyLedger)}
}

// Ledger returns the ledger for node id, creating it if needed.
func (s *EnergySet) Ledger(id int) *EnergyLedger {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledgers[id]
	if !ok {
		l = NewEnergyLedger(s.profile)
		s.ledgers[id] = l
	}
	return l
}

// MaxTotalJoules returns the worst per-node energy drain and the node that
// incurred it; the network's lifetime is governed by this node.
func (s *EnergySet) MaxTotalJoules() (id int, joules float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := true
	ids := make([]int, 0, len(s.ledgers))
	for i := range s.ledgers {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	for _, i := range ids {
		j := s.ledgers[i].TotalJoules()
		if first || j > joules {
			id, joules, first = i, j, false
		}
	}
	return id, joules
}

// MeanTotalJoules returns the mean per-node energy drain, or 0 when empty.
func (s *EnergySet) MeanTotalJoules() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ledgers) == 0 {
		return 0
	}
	var sum float64
	for _, l := range s.ledgers {
		sum += l.TotalJoules()
	}
	return sum / float64(len(s.ledgers))
}
