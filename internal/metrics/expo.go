package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind distinguishes the metric kinds in a Snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return []byte(strconv.Quote(k.String())), nil }

// Point is one series in a Snapshot. Value holds the counter or gauge
// value; for histograms Value is the sample sum and Hist carries the
// full digest.
type Point struct {
	Name   string     `json:"name"`
	Labels []Label    `json:"labels,omitempty"`
	Kind   Kind       `json:"kind"`
	Value  float64    `json:"value"`
	Hist   *HistStats `json:"hist,omitempty"`
}

// Snapshot returns every series in the registry, sorted by kind then
// name then label set, so iteration order (and any report built from it)
// is deterministic. The registry lock is held only while collecting the
// series list; each metric's value is then read under its own lock, and
// the returned slice can be formatted with no lock at all.
func (r *Registry) Snapshot() []Point {
	type entry struct {
		key  string
		s    series
		c    *Counter
		g    *Gauge
		h    *Histogram
		kind Kind
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for key, c := range r.counters {
		entries = append(entries, entry{key: key, s: r.meta[key], c: c, kind: KindCounter})
	}
	for key, g := range r.gauges {
		entries = append(entries, entry{key: key, s: r.meta[key], g: g, kind: KindGauge})
	}
	for key, h := range r.histograms {
		entries = append(entries, entry{key: key, s: r.meta[key], h: h, kind: KindHistogram})
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].kind != entries[j].kind {
			return entries[i].kind < entries[j].kind
		}
		return entries[i].key < entries[j].key
	})

	points := make([]Point, 0, len(entries))
	for _, e := range entries {
		p := Point{Name: e.s.name, Labels: e.s.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = e.c.Value()
		case KindGauge:
			p.Value = e.g.Value()
		case KindHistogram:
			st := e.h.Stats()
			p.Value = st.Sum
			p.Hist = &st
		}
		points = append(points, p)
	}
	return points
}

// promName sanitizes a dotted metric name into the Prometheus charset:
// dots and dashes become underscores.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

func promLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
}

func promValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Counters and gauges emit one sample per series; histograms
// emit summary-style quantile samples plus _sum and _count. Output order
// follows Snapshot and is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	var b strings.Builder
	lastFamily := ""
	for _, p := range points {
		name := promName(p.Name)
		if name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, promKind(p.Kind))
			lastFamily = name
		}
		switch p.Kind {
		case KindHistogram:
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", p.Hist.P50}, {"0.9", p.Hist.P90}, {"0.99", p.Hist.P99}} {
				b.WriteString(name)
				promLabels(&b, p.Labels, Label{Key: "quantile", Value: q.q})
				b.WriteByte(' ')
				b.WriteString(promValue(q.v))
				b.WriteByte('\n')
			}
			b.WriteString(name + "_sum")
			promLabels(&b, p.Labels)
			b.WriteByte(' ')
			b.WriteString(promValue(p.Hist.Sum))
			b.WriteByte('\n')
			b.WriteString(name + "_count")
			promLabels(&b, p.Labels)
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(p.Hist.Count))
			b.WriteByte('\n')
		default:
			b.WriteString(name)
			promLabels(&b, p.Labels)
			b.WriteByte(' ')
			b.WriteString(promValue(p.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promKind(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// ExpvarFunc adapts the registry to expvar.Publish:
//
//	expvar.Publish("iiot", expvar.Func(reg.ExpvarFunc()))
//
// The returned closure produces the Snapshot, which encoding/json
// renders deterministically (it is a sorted slice, not a map).
func (r *Registry) ExpvarFunc() func() any {
	return func() any { return r.Snapshot() }
}
