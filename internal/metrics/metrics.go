// Package metrics provides the lightweight instrumentation primitives used
// throughout the emulation: counters, gauges, sample histograms, and an
// energy ledger for duty-cycled radio accounting.
//
// The simulation is single-threaded, but the CoAP/bus code also runs over
// real sockets, so all primitives are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increments the counter by d, which must be non-negative.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%v) with negative delta", d))
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram records individual observations and answers summary queries.
// It keeps all samples; simulation scales (≤ millions of observations) make
// this affordable and it keeps quantiles exact.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean, or NaN if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return math.NaN()
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank, or NaN
// if the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		h.sortLocked()
		return h.samples[0]
	}
	if q >= 1 {
		h.sortLocked()
		return h.samples[n-1]
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or NaN if empty.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or NaN if empty.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation, or NaN if empty.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return math.NaN()
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = true
	h.mu.Unlock()
}

// Registry is a named collection of metrics. The zero value is ready to
// use. Lookups create metrics on demand so instrumentation sites never need
// registration boilerplate.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
