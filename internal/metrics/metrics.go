// Package metrics provides the lightweight instrumentation primitives used
// throughout the emulation: counters, gauges, sample histograms, and an
// energy ledger for duty-cycled radio accounting.
//
// The simulation is single-threaded, but the CoAP/bus code also runs over
// real sockets, so all primitives are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. It is updated on the
// radio per-frame path (tx/rx/collision accounting), so it stores its
// float64 as atomic bits with a CAS add instead of taking a mutex: the
// single writer per kernel makes the CAS succeed on the first try.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by d, which must be non-negative.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%v) with negative delta", d))
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram records individual observations and answers summary queries.
// It keeps all samples; simulation scales (≤ millions of observations) make
// this affordable and it keeps quantiles exact.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
	h.mu.Unlock()
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean, or 0 if empty. Empty histograms yield
// defined values (not NaN) so report formatting and JSON encoding never
// have to special-case missing data.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank. An
// empty histogram returns 0; a single sample is every quantile.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		h.sortLocked()
		return h.samples[0]
	}
	if q >= 1 {
		h.sortLocked()
		return h.samples[n-1]
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation, or 0 if empty.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// HistStats is a point-in-time digest of a histogram, computed in one
// pass under the histogram's lock. All fields are defined (zero) for an
// empty histogram.
type HistStats struct {
	Count  int     `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Stats computes the digest under the lock and returns it by value, so
// callers format or encode it without holding any lock.
func (h *Histogram) Stats() HistStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return HistStats{}
	}
	h.sortLocked()
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	rank := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return h.samples[idx]
	}
	return HistStats{
		Count:  n,
		Sum:    h.sum,
		Mean:   mean,
		Min:    h.samples[0],
		Max:    h.samples[n-1],
		Stddev: math.Sqrt(ss / float64(n)),
		P50:    rank(0.5),
		P90:    rank(0.9),
		P99:    rank(0.99),
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = true
	h.mu.Unlock()
}

// Label is one key=value dimension of a metric series. A metric name
// plus its sorted label set identifies a series; the same name with
// different labels (e.g. mac="csma" vs mac="lpl") yields independent
// series that exposition groups under one metric family.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label at an instrumentation site.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey encodes name plus sorted labels into a unique map key.
// 0x1f/0x1e (ASCII unit/record separators) cannot appear in sane metric
// names or label values.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0x1e)
		sb.WriteString(l.Key)
		sb.WriteByte(0x1f)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// sortLabels returns labels sorted by key (copying only when needed) so
// CounterWith(n, a, b) and CounterWith(n, b, a) address the same series.
func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	if sort.SliceIsSorted(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key }) {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

type series struct {
	name   string
	labels []Label // sorted by key
}

// Registry is a named collection of metric series. The zero value is
// ready to use. Lookups create series on demand so instrumentation sites
// never need registration boilerplate.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       map[string]series // series key → identity, shared by all kinds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) record(key, name string, labels []Label) {
	if r.meta == nil {
		r.meta = make(map[string]series)
	}
	if _, ok := r.meta[key]; !ok {
		stored := make([]Label, len(labels))
		copy(stored, labels)
		r.meta[key] = series{name: name, labels: stored}
	}
}

// Counter returns the unlabeled counter with the given name, creating it
// if needed.
func (r *Registry) Counter(name string) *Counter { return r.CounterWith(name) }

// CounterWith returns the counter series for name plus labels, creating
// it if needed. Label order does not matter.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.record(key, name, labels)
	}
	return c
}

// Gauge returns the unlabeled gauge with the given name, creating it if
// needed.
func (r *Registry) Gauge(name string) *Gauge { return r.GaugeWith(name) }

// GaugeWith returns the gauge series for name plus labels, creating it
// if needed.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.record(key, name, labels)
	}
	return g
}

// Histogram returns the unlabeled histogram with the given name,
// creating it if needed.
func (r *Registry) Histogram(name string) *Histogram { return r.HistogramWith(name) }

// HistogramWith returns the histogram series for name plus labels,
// creating it if needed.
func (r *Registry) HistogramWith(name string, labels ...Label) *Histogram {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[key]
	if !ok {
		h = &Histogram{}
		r.histograms[key] = h
		r.record(key, name, labels)
	}
	return h
}

// CounterNames returns the sorted distinct names of all counter series.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.counters))
	names := make([]string, 0, len(r.counters))
	for key := range r.counters {
		n := r.meta[key].name
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
