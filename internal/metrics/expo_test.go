package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLabeledSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("mac.retries", L("mac", "csma"))
	b := r.CounterWith("mac.retries", L("mac", "lpl"))
	if a == b {
		t.Fatal("different label values returned the same counter")
	}
	if r.CounterWith("mac.retries", L("mac", "csma")) != a {
		t.Fatal("same label set did not return the same counter")
	}
	// Label order must not matter.
	x := r.GaugeWith("g", L("a", "1"), L("b", "2"))
	y := r.GaugeWith("g", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
	if r.Counter("plain") != r.CounterWith("plain") {
		t.Fatal("Counter(name) and CounterWith(name) disagree")
	}
}

func TestCounterNamesDistinct(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("mac.retries", L("mac", "csma")).Inc()
	r.CounterWith("mac.retries", L("mac", "lpl")).Inc()
	r.Counter("radio.tx_frames").Inc()
	names := r.CounterNames()
	want := []string{"mac.retries", "radio.tx_frames"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("CounterNames() = %v, want %v", names, want)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("b.count", L("k", "2")).Add(2)
	r.CounterWith("b.count", L("k", "1")).Add(1)
	r.Counter("a.count").Add(5)
	r.Gauge("z.gauge").Set(-3)
	h := r.HistogramWith("lat", L("op", "get"))
	h.Observe(1)
	h.Observe(3)

	pts := r.Snapshot()
	if len(pts) != 5 {
		t.Fatalf("Snapshot has %d points, want 5", len(pts))
	}
	// Counters first (sorted by name then labels), then gauges, then
	// histograms.
	if pts[0].Name != "a.count" || pts[0].Value != 5 {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[1].Name != "b.count" || pts[1].Labels[0].Value != "1" {
		t.Errorf("pts[1] = %+v", pts[1])
	}
	if pts[2].Name != "b.count" || pts[2].Labels[0].Value != "2" {
		t.Errorf("pts[2] = %+v", pts[2])
	}
	if pts[3].Kind != KindGauge || pts[3].Value != -3 {
		t.Errorf("pts[3] = %+v", pts[3])
	}
	hp := pts[4]
	if hp.Kind != KindHistogram || hp.Hist == nil || hp.Hist.Count != 2 || hp.Value != 4 {
		t.Errorf("pts[4] = %+v hist=%+v", hp, hp.Hist)
	}

	// Snapshot JSON-encodes deterministically (sorted slice, named kinds).
	j1, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(r.Snapshot())
	if string(j1) != string(j2) {
		t.Error("snapshot JSON not stable across calls")
	}
	if !strings.Contains(string(j1), `"kind":"counter"`) {
		t.Errorf("kind not named in JSON: %s", j1)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("mac.retries", L("mac", "csma")).Add(7)
	r.CounterWith("mac.retries", L("mac", "lpl")).Add(2)
	r.Gauge("rpl.rank").Set(256)
	h := r.Histogram("e2e.latency")
	h.Observe(0.5)
	h.Observe(1.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE mac_retries counter\n",
		"mac_retries{mac=\"csma\"} 7\n",
		"mac_retries{mac=\"lpl\"} 2\n",
		"# TYPE rpl_rank gauge\n",
		"rpl_rank 256\n",
		"# TYPE e2e_latency summary\n",
		"e2e_latency{quantile=\"0.5\"} 0.5\n",
		"e2e_latency_sum 2\n",
		"e2e_latency_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line must appear once per family, not per series.
	if strings.Count(out, "# TYPE mac_retries") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
	// Output must be byte-stable.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Error("prometheus output not deterministic")
	}
}

func TestExpvarFunc(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	f := r.ExpvarFunc()
	v, ok := f().([]Point)
	if !ok || len(v) != 1 || v[0].Name != "x" {
		t.Fatalf("ExpvarFunc() = %#v", f())
	}
}
