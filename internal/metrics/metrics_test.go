package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("Value() = %v, want 3.5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %v, want 7", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum() = %v", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean() = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := h.Quantile(0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	// Observing after a quantile query must keep results correct.
	h.Observe(0)
	if h.Min() != 0 {
		t.Fatalf("Min after new observation = %v, want 0", h.Min())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	// Empty summaries must be defined (zero), never NaN, so reports and
	// JSON encoders need no special-casing.
	for name, v := range map[string]float64{
		"Mean":     h.Mean(),
		"Quantile": h.Quantile(0.5),
		"Stddev":   h.Stddev(),
		"Min":      h.Min(),
		"Max":      h.Max(),
	} {
		if v != 0 {
			t.Errorf("empty histogram %s = %v, want 0", name, v)
		}
	}
	if st := h.Stats(); st != (HistStats{}) {
		t.Errorf("empty histogram Stats = %+v, want zero", st)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", q, got)
		}
	}
	st := h.Stats()
	if st.Count != 1 || st.Mean != 7 || st.Min != 7 || st.Max != 7 ||
		st.P50 != 7 || st.P99 != 7 || st.Stddev != 0 {
		t.Errorf("single-sample Stats = %+v", st)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stddev() = %v, want 2", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistogramQuantileProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		// Quantile is monotone and within [min, max].
		prev := h.Quantile(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Quantile(0) <= h.Mean() || h.Quantile(1) >= h.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if got := r.Counter("a").Value(); got != 1 {
		t.Fatalf("counter not shared: %v", got)
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not shared")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram not shared")
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("CounterNames() = %v", names)
	}
}

func TestConcurrentCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value() = %v, want 8000", got)
	}
}

func TestEnergyLedger(t *testing.T) {
	p := PowerProfile{Sleep: 1, Listen: 2, Rx: 3, Tx: 4, CPU: 5}
	l := NewEnergyLedger(p)
	l.Spend(StateSleep, time.Second)
	l.Spend(StateListen, time.Second)
	l.Spend(StateRx, 2*time.Second)
	l.Spend(StateTx, time.Second)
	if got := l.Joules(StateRx); got != 6 {
		t.Fatalf("Rx joules = %v, want 6", got)
	}
	if got := l.TotalJoules(); got != 1+2+6+4 {
		t.Fatalf("TotalJoules() = %v, want 13", got)
	}
	if got := l.RadioOn(); got != 4*time.Second {
		t.Fatalf("RadioOn() = %v, want 4s", got)
	}
	if got := l.DutyCycle(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("DutyCycle() = %v, want 0.8", got)
	}
	if got := l.Duration(StateSleep); got != time.Second {
		t.Fatalf("Duration(sleep) = %v", got)
	}
}

func TestEnergyLedgerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEnergyLedger(DefaultPowerProfile()).Spend(StateTx, -time.Second)
}

func TestDefaultProfileOrdering(t *testing.T) {
	p := DefaultPowerProfile()
	if !(p.Sleep < p.CPU && p.CPU < p.Tx && p.Tx < p.Rx) {
		t.Fatalf("power profile ordering unrealistic: %+v", p)
	}
}

func TestEnergySet(t *testing.T) {
	s := NewEnergySet(PowerProfile{Tx: 1})
	s.Ledger(1).Spend(StateTx, time.Second)
	s.Ledger(2).Spend(StateTx, 3*time.Second)
	s.Ledger(3).Spend(StateTx, 2*time.Second)
	id, j := s.MaxTotalJoules()
	if id != 2 || j != 3 {
		t.Fatalf("MaxTotalJoules() = (%d, %v), want (2, 3)", id, j)
	}
	if got := s.MeanTotalJoules(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanTotalJoules() = %v, want 2", got)
	}
	if s.Ledger(1) != s.Ledger(1) {
		t.Fatal("ledger identity not stable")
	}
}

func TestEnergySetEmpty(t *testing.T) {
	s := NewEnergySet(DefaultPowerProfile())
	if got := s.MeanTotalJoules(); got != 0 {
		t.Fatalf("MeanTotalJoules() = %v, want 0", got)
	}
}

func TestRadioStateString(t *testing.T) {
	cases := map[RadioState]string{
		StateSleep: "sleep", StateListen: "listen", StateRx: "rx",
		StateTx: "tx", StateCPU: "cpu", RadioState(99): "RadioState(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
