// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the multi-node industrial-IoT
// emulation runs: radios, MACs, routing protocols, and application logic
// all schedule their work as events on a single virtual clock. Determinism
// is a design rule (DESIGN.md §5): all randomness flows from one seeded
// generator owned by the kernel, events at equal timestamps fire in
// scheduling order, and no component may consult the wall clock.
//
// Scheduling is allocation-light: fired and canceled events return their
// backing structs to a kernel-local free pool, and canceled events are
// removed from the heap eagerly so their slots are reused instead of
// lingering as tombstones. Handles returned by the Schedule family are
// generation-checked values — operating on a handle whose event has
// already fired (or whose slot was recycled) is a safe no-op.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation (t = 0).
type Time = time.Duration

// event is the kernel-owned scheduling record. Structs are pooled: after
// an event fires or is canceled its struct goes back to the kernel's free
// list and its generation advances, invalidating outstanding handles.
type event struct {
	k     *Kernel
	at    Time
	seq   uint64
	index int // heap index, -1 when not queued
	fn    func()
	gen   uint64
}

// Event is a handle to a scheduled callback, created by the Schedule
// family of Kernel methods. It is a small value: copy it freely. The zero
// Event is valid and inert. A handle goes stale once its event fires or
// is canceled; Cancel and Pending on a stale handle are safe no-ops even
// after the underlying slot has been recycled for a different event.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At returns the virtual time at which the event fires (or fired, or
// would have fired if canceled).
func (ev Event) At() Time { return ev.at }

// live reports whether the handle still refers to a queued event.
func (ev Event) live() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.index >= 0
}

// Cancel prevents the event from firing, removing it from the kernel's
// queue immediately. Canceling an already-fired, already-canceled, or
// zero event is a no-op. It reports whether the event was still pending.
func (ev Event) Cancel() bool {
	if !ev.live() {
		return false
	}
	e := ev.e
	heap.Remove(&e.k.queue, e.index)
	e.k.stats.Canceled++
	e.k.recycle(e)
	return true
}

// Pending reports whether the event is still queued.
func (ev Event) Pending() bool { return ev.live() }

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Stats are the kernel's scheduling counters. Trials report them through
// exp.RunStats so the experiment runner can account for the event load
// behind every table.
type Stats struct {
	// Scheduled counts events accepted by Schedule/At/Every.
	Scheduled uint64 `json:"scheduled"`
	// Fired counts events executed.
	Fired uint64 `json:"fired"`
	// Canceled counts events removed from the queue before firing.
	Canceled uint64 `json:"canceled"`
	// Reused counts schedules served from the free pool instead of a
	// fresh allocation.
	Reused uint64 `json:"reused"`
	// MaxHeapDepth is the high-water mark of the event queue.
	MaxHeapDepth int `json:"max_heap_depth"`
}

// Add merges o into s: counters sum, high-water marks take the max.
func (s *Stats) Add(o Stats) {
	s.Scheduled += o.Scheduled
	s.Fired += o.Fired
	s.Canceled += o.Canceled
	s.Reused += o.Reused
	if o.MaxHeapDepth > s.MaxHeapDepth {
		s.MaxHeapDepth = o.MaxHeapDepth
	}
}

// Kernel is a discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use: the simulation is single-threaded by
// construction, which is what makes runs reproducible. Parallelism lives
// one layer up (exp.RunTrials), where independent trials each own a
// kernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	free    []*event
	stats   Stats
}

// New returns a kernel whose random generator is seeded with seed.
// Two kernels constructed with the same seed and driven by the same
// event program produce identical executions.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random generator. All simulated
// randomness (link loss, jitter, workload arrivals) must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far; useful for tests and
// runaway detection.
func (k *Kernel) Fired() uint64 { return k.stats.Fired }

// Stats returns a snapshot of the kernel's scheduling counters.
func (k *Kernel) Stats() Stats { return k.stats }

// recycle invalidates outstanding handles to e and returns its struct to
// the free pool.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.index = -1
	k.free = append(k.free, e)
}

// Schedule runs fn after d of virtual time. A negative d is treated as 0
// (fire as soon as the kernel resumes, after already-queued events at the
// current instant).
func (k *Kernel) Schedule(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (k *Kernel) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < k.now {
		t = k.now
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		k.stats.Reused++
	} else {
		e = &event{k: k}
	}
	e.at = t
	e.seq = k.seq
	e.fn = fn
	k.seq++
	k.stats.Scheduled++
	heap.Push(&k.queue, e)
	if d := len(k.queue); d > k.stats.MaxHeapDepth {
		k.stats.MaxHeapDepth = d
	}
	return Event{e: e, gen: e.gen, at: t}
}

// Every schedules fn to run every interval, starting after the first
// interval elapses. The returned Repeater can be stopped. If jitter is
// non-zero, each period is perturbed by a uniform offset in [0, jitter)
// drawn from the kernel RNG — the standard trick protocols use to avoid
// synchronization artifacts.
func (k *Kernel) Every(interval, jitter Time, fn func()) *Repeater {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive interval %v", interval))
	}
	r := &Repeater{k: k, interval: interval, jitter: jitter, fn: fn}
	r.schedule()
	return r
}

// Repeater is a periodic event created by Every.
type Repeater struct {
	k        *Kernel
	interval Time
	jitter   Time
	fn       func()
	ev       Event
	stopped  bool
}

func (r *Repeater) schedule() {
	d := r.interval
	if r.jitter > 0 {
		d += Time(r.k.rng.Int63n(int64(r.jitter)))
	}
	r.ev = r.k.Schedule(d, func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.schedule()
		}
	})
}

// Stop cancels the repeater. It is idempotent.
func (r *Repeater) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.ev.Cancel()
}

// Stop makes the current Run/RunUntil call return once the in-flight event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*event)
	k.now = e.at
	k.stats.Fired++
	fn := e.fn
	// Recycle before running fn: handles to this event are already stale,
	// and events scheduled inside fn can reuse the slot immediately.
	k.recycle(e)
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if the queue drained earlier or later events remain).
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if k.queue.Len() == 0 || k.queue[0].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

// RunBefore executes events with timestamps strictly before t, then
// advances the clock to exactly t. It is the windowed-execution
// primitive of the conservative shard scheduler (shard.go): a shard may
// run freely up to — but not including — the next synchronization
// barrier, so events AT the barrier instant run in the following window
// after cross-shard handoffs have been applied.
func (k *Kernel) RunBefore(t Time) {
	k.stopped = false
	for !k.stopped {
		if k.queue.Len() == 0 || k.queue[0].at >= t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// NextEventAt returns the timestamp of the earliest queued event, and
// whether one exists. The shard scheduler uses it to size adaptive
// synchronization windows without popping anything.
func (k *Kernel) NextEventAt() (Time, bool) {
	if k.queue.Len() == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// Pending returns the number of queued events. Canceled events are
// removed eagerly, so this counts only events that will still fire.
func (k *Kernel) Pending() int { return k.queue.Len() }
