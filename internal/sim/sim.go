// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the multi-node industrial-IoT
// emulation runs: radios, MACs, routing protocols, and application logic
// all schedule their work as events on a single virtual clock. Determinism
// is a design rule (DESIGN.md §5): all randomness flows from one seeded
// generator owned by the kernel, events at equal timestamps fire in
// scheduling order, and no component may consult the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation (t = 0).
type Time = time.Duration

// Event is a scheduled callback. It is created by the Schedule family of
// Kernel methods and may be canceled before it fires.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// At returns the virtual time at which the event fires (or would have
// fired, if canceled).
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.canceled }

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler with a virtual clock.
// It is not safe for concurrent use: the simulation is single-threaded by
// construction, which is what makes runs reproducible.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// New returns a kernel whose random generator is seeded with seed.
// Two kernels constructed with the same seed and driven by the same
// event program produce identical executions.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random generator. All simulated
// randomness (link loss, jitter, workload arrivals) must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far; useful for tests and
// runaway detection.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule runs fn after d of virtual time. A negative d is treated as 0
// (fire as soon as the kernel resumes, after already-queued events at the
// current instant).
func (k *Kernel) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (k *Kernel) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < k.now {
		t = k.now
	}
	e := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Every schedules fn to run every interval, starting after the first
// interval elapses. The returned Repeater can be stopped. If jitter is
// non-zero, each period is perturbed by a uniform offset in [0, jitter)
// drawn from the kernel RNG — the standard trick protocols use to avoid
// synchronization artifacts.
func (k *Kernel) Every(interval, jitter Time, fn func()) *Repeater {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive interval %v", interval))
	}
	r := &Repeater{k: k, interval: interval, jitter: jitter, fn: fn}
	r.schedule()
	return r
}

// Repeater is a periodic event created by Every.
type Repeater struct {
	k        *Kernel
	interval Time
	jitter   Time
	fn       func()
	ev       *Event
	stopped  bool
}

func (r *Repeater) schedule() {
	d := r.interval
	if r.jitter > 0 {
		d += Time(r.k.rng.Int63n(int64(r.jitter)))
	}
	r.ev = r.k.Schedule(d, func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.schedule()
		}
	})
}

// Stop cancels the repeater. It is idempotent.
func (r *Repeater) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	if r.ev != nil {
		r.ev.Cancel()
	}
}

// Stop makes the current Run/RunUntil call return once the in-flight event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if the queue drained earlier or later events remain).
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for !k.stopped {
		if k.queue.Len() == 0 {
			break
		}
		// Peek.
		next := k.queue[0]
		if next.canceled {
			heap.Pop(&k.queue)
			continue
		}
		if next.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

// Pending returns the number of queued (possibly canceled) events.
func (k *Kernel) Pending() int { return k.queue.Len() }
