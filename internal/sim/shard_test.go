package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestRunBeforeStrictBound pins the windowed-execution primitive: events
// strictly before the bound run, events at the bound stay queued, and
// the clock lands exactly on the bound either way.
func TestRunBeforeStrictBound(t *testing.T) {
	k := New(1)
	var fired []string
	k.At(10*time.Millisecond, func() { fired = append(fired, "early") })
	k.At(20*time.Millisecond, func() { fired = append(fired, "at-bound") })
	k.RunBefore(20 * time.Millisecond)
	if got, want := fmt.Sprint(fired), "[early]"; got != want {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if k.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v, want 20ms", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("event at the bound should remain queued, pending=%d", k.Pending())
	}
	k.RunBefore(20*time.Millisecond + 1)
	if got, want := fmt.Sprint(fired), "[early at-bound]"; got != want {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

// TestNextEventAt pins the peek primitive.
func TestNextEventAt(t *testing.T) {
	k := New(1)
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	k.At(30*time.Millisecond, func() {})
	k.At(10*time.Millisecond, func() {})
	at, ok := k.NextEventAt()
	if !ok || at != 10*time.Millisecond {
		t.Fatalf("NextEventAt = %v,%v, want 10ms,true", at, ok)
	}
}

// shardScript drives a two-stripe group where each stripe runs a
// periodic local workload drawing from its own RNG and occasionally
// hands a message across the barrier. Each stripe keeps its own
// transcript (stripes share nothing during a window, including a log).
func shardScript(workers int) [][]string {
	k0, k1 := New(100), New(200)
	g := NewShardGroup(time.Millisecond, k0, k1)
	g.SetWorkers(workers)

	logs := make([][]string, 2)
	kernels := []*Kernel{k0, k1}
	for i, k := range kernels {
		i, k := i, k
		var tick func()
		tick = func() {
			v := k.Rand().Intn(1000)
			logs[i] = append(logs[i], fmt.Sprintf("t=%v draw=%d", k.Now(), v))
			if v%3 == 0 {
				dst := 1 - i
				at := k.Now()
				g.Post(i, dst, func() {
					kernels[dst].At(at+g.Lookahead(), func() {
						logs[dst] = append(logs[dst], fmt.Sprintf("t=%v recv-from-s%d", kernels[dst].Now(), i))
					})
				})
			}
			k.Schedule(700*time.Microsecond, tick)
		}
		k.Schedule(time.Duration(i+1)*300*time.Microsecond, tick)
	}
	g.At(25*time.Millisecond, func() { logs[0] = append(logs[0], fmt.Sprintf("ctl t=%v", g.Now())) })
	g.RunUntil(50 * time.Millisecond)
	return logs
}

// TestShardGroupWorkerInvariance is the core determinism property: each
// stripe's full transcript (RNG draws, handoff arrival times, control
// callbacks) is identical whether stripes run on one worker or many.
func TestShardGroupWorkerInvariance(t *testing.T) {
	seq := shardScript(1)
	if len(seq[0]) == 0 || len(seq[1]) == 0 {
		t.Fatal("script produced no events")
	}
	for _, w := range []int{2, 4} {
		if par := shardScript(w); !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d transcripts differ from workers=1:\nseq: %v\npar: %v", w, seq, par)
		}
	}
}

// TestShardGroupControlExactness checks that control callbacks run at
// their exact requested instant (a barrier is forced there) and before
// stripe events at the same instant.
func TestShardGroupControlExactness(t *testing.T) {
	k0, k1 := New(1), New(2)
	g := NewShardGroup(500*time.Microsecond, k0, k1)
	var order []string
	k0.At(10*time.Millisecond, func() { order = append(order, "stripe-event") })
	g.At(10*time.Millisecond, func() {
		order = append(order, fmt.Sprintf("control@%v", g.Now()))
	})
	g.RunUntil(11 * time.Millisecond)
	want := []string{"control@10ms", "stripe-event"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestShardGroupHandoffDelivery checks that a handoff posted in a window
// is applied by the next barrier, never later than lookahead after its
// cause — the conservative bound cross-stripe effects rely on.
func TestShardGroupHandoffDelivery(t *testing.T) {
	k0, k1 := New(1), New(2)
	L := time.Millisecond
	g := NewShardGroup(L, k0, k1)
	var appliedAt Time = -1
	sent := 7 * time.Millisecond
	k0.At(sent, func() {
		g.Post(0, 1, func() { appliedAt = k1.Now() })
	})
	g.RunUntil(20 * time.Millisecond)
	if appliedAt < 0 {
		t.Fatal("handoff never applied")
	}
	if appliedAt < sent || appliedAt > sent+L {
		t.Fatalf("handoff applied at %v, want within (%v, %v]", appliedAt, sent, sent+L)
	}
	if g.Handoffs() != 1 {
		t.Fatalf("Handoffs() = %d, want 1", g.Handoffs())
	}
}

// TestShardGroupEmptyAdvance: with no events at all, RunUntil must still
// land the group (and every stripe clock) on the target instant.
func TestShardGroupEmptyAdvance(t *testing.T) {
	k0, k1 := New(1), New(2)
	g := NewShardGroup(time.Millisecond, k0, k1)
	g.RunUntil(3 * time.Second)
	if g.Now() != 3*time.Second || k0.Now() != 3*time.Second || k1.Now() != 3*time.Second {
		t.Fatalf("clocks %v/%v/%v, want 3s each", g.Now(), k0.Now(), k1.Now())
	}
}
