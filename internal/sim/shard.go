// Conservative parallel discrete-event scheduling for one deployment.
//
// A ShardGroup drives several kernels ("stripes") through shared virtual
// time in lockstep windows. The discipline is classic conservative PDES:
// no stripe may run past the earliest event any stripe still has queued
// plus the model's lookahead — the minimum virtual delay before anything
// one stripe does can become visible to another (for the radio medium,
// the minimum frame airtime: a frame transmitted at t delivers no
// earlier than t + airtime). Inside a window the stripes share nothing
// and may therefore execute on separate OS threads; at the window
// barrier, cross-stripe handoffs queued with Post are applied in a fixed
// (source stripe, append) order on the driver goroutine.
//
// Determinism (DESIGN.md §5) survives by construction: the window
// sequence is a pure function of the stripes' queue states at barriers,
// each stripe's execution inside a window is single-threaded against its
// own kernel and RNG, and the barrier drain order is fixed. The worker
// count (SetWorkers) only chooses how many OS threads the per-window
// stripe runs are spread over — it can never reorder a draw — so a run
// is byte-identical at any worker count, the same property the trial
// runner gives independent trials.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// ShardGroup synchronizes a fixed set of kernels (stripes) through
// common virtual time. The stripe count is part of the model: it decides
// which events are separated by a barrier. The worker count is not — it
// is pure execution policy.
//
// Thread contract: all ShardGroup methods are driver-goroutine only.
// The one exception is Post, which must be called from the posting
// stripe's own execution (its kernel callbacks) during a window.
type ShardGroup struct {
	kernels   []*Kernel
	lookahead Time
	workers   int
	now       Time

	// out[src][dst] holds the handoffs stripe src queued for stripe dst
	// during the current window. Only stripe src's goroutine appends to
	// out[src][*], so no locking is needed; the drain happens after the
	// barrier, on the driver goroutine.
	out [][][]func()

	// ctl is the control timeline: driver-time callbacks (workload
	// arming, fault injection, convergence polling) that must run with
	// every stripe quiescent. Kept sorted by (at, seq).
	ctl    []ctlItem
	ctlSeq uint64

	windows  uint64
	handoffs uint64
}

type ctlItem struct {
	at  Time
	seq uint64
	fn  func()
}

// NewShardGroup creates a group over the given kernels. lookahead is the
// model's minimum cross-stripe visibility delay and must be positive;
// windows never extend more than lookahead past the earliest queued
// event, which is what makes cross-stripe deliveries timing-exact (an
// effect produced at t lands at its target no earlier than t+lookahead,
// and every barrier falls at or before that instant).
func NewShardGroup(lookahead Time, kernels ...*Kernel) *ShardGroup {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ShardGroup lookahead %v must be positive", lookahead))
	}
	if len(kernels) == 0 {
		panic("sim: ShardGroup needs at least one kernel")
	}
	out := make([][][]func(), len(kernels))
	for i := range out {
		out[i] = make([][]func(), len(kernels))
	}
	return &ShardGroup{kernels: kernels, lookahead: lookahead, workers: 1, out: out}
}

// Kernels returns the stripes in index order.
func (g *ShardGroup) Kernels() []*Kernel { return g.kernels }

// Kernel returns stripe i's kernel.
func (g *ShardGroup) Kernel(i int) *Kernel { return g.kernels[i] }

// Stripes returns the stripe count.
func (g *ShardGroup) Stripes() int { return len(g.kernels) }

// Lookahead returns the group's conservative lookahead.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Now returns the group's virtual time (the last barrier instant).
func (g *ShardGroup) Now() Time { return g.now }

// Windows returns how many synchronization windows have run.
func (g *ShardGroup) Windows() uint64 { return g.windows }

// Handoffs returns how many cross-stripe handoffs have been applied.
func (g *ShardGroup) Handoffs() uint64 { return g.handoffs }

// SetWorkers sets how many OS threads per-window stripe execution fans
// across. n is clamped to [1, Stripes()]. The setting never affects
// results, only wall-clock time.
func (g *ShardGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(g.kernels) {
		n = len(g.kernels)
	}
	g.workers = n
}

// Workers returns the effective worker count.
func (g *ShardGroup) Workers() int { return g.workers }

// Post queues fn to run at the next barrier, attributed to source stripe
// src. fn executes on the driver goroutine with every stripe quiescent
// and may mutate stripe dst's state (typically scheduling events on its
// kernel). Handoffs drain in (src, dst, append) order, so the apply
// sequence — and any randomness the handoffs consume from the target
// kernels — is identical at every worker count.
func (g *ShardGroup) Post(src, dst int, fn func()) {
	if fn == nil {
		panic("sim: Post with nil fn")
	}
	g.out[src][dst] = append(g.out[src][dst], fn)
}

// At schedules fn on the control timeline at absolute virtual time t
// (clamped to the present). Control callbacks run on the driver
// goroutine at the exact requested instant — windows are cut short to
// land a barrier there — before any stripe executes its own events at
// that instant. The returned handle is inert (control events cannot be
// canceled); it exists so the group satisfies the same scheduling
// interface as a Kernel for fault-injection glue.
func (g *ShardGroup) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: ShardGroup.At with nil fn")
	}
	if t < g.now {
		t = g.now
	}
	it := ctlItem{at: t, seq: g.ctlSeq, fn: fn}
	g.ctlSeq++
	i := sort.Search(len(g.ctl), func(i int) bool {
		if g.ctl[i].at != it.at {
			return g.ctl[i].at > it.at
		}
		return g.ctl[i].seq > it.seq
	})
	g.ctl = append(g.ctl, ctlItem{})
	copy(g.ctl[i+1:], g.ctl[i:])
	g.ctl[i] = it
	return Event{}
}

// Schedule runs fn on the control timeline after d of virtual time.
func (g *ShardGroup) Schedule(d Time, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return g.At(g.now+d, fn)
}

// nextEvent returns the earliest queued event across all stripes.
func (g *ShardGroup) nextEvent() (Time, bool) {
	var best Time
	ok := false
	for _, k := range g.kernels {
		if at, has := k.NextEventAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// runControl fires control callbacks due at or before the current
// barrier, in (at, seq) order. Callbacks may add more control events
// (including at the same instant) and mutate any stripe.
func (g *ShardGroup) runControl() {
	for len(g.ctl) > 0 && g.ctl[0].at <= g.now {
		it := g.ctl[0]
		g.ctl = g.ctl[1:]
		it.fn()
	}
}

// runWindow advances every stripe to end (executing events strictly
// before it), then applies the window's handoffs.
func (g *ShardGroup) runWindow(end Time) {
	w := g.workers
	if w > len(g.kernels) {
		w = len(g.kernels)
	}
	if w <= 1 {
		for _, k := range g.kernels {
			k.RunBefore(end)
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for j := i; j < len(g.kernels); j += w {
					g.kernels[j].RunBefore(end)
				}
			}(i)
		}
		wg.Wait()
	}
	g.windows++
	g.now = end
	for s := range g.out {
		for d := range g.out[s] {
			q := g.out[s][d]
			if len(q) == 0 {
				continue
			}
			// Handoffs applied at this barrier may themselves Post; those
			// land in a fresh slice and drain at the NEXT barrier, so the
			// queue being iterated is never appended to.
			g.out[s][d] = nil
			for _, fn := range q {
				fn()
			}
			g.handoffs += uint64(len(q))
			if g.out[s][d] == nil {
				g.out[s][d] = q[:0] // recycle capacity
			}
		}
	}
}

// RunUntil advances the whole group to virtual time t. Windows are sized
// adaptively: each extends to the earliest queued event plus lookahead,
// cut short by pending control callbacks and by t itself. Events at
// exactly t stay queued (they run first thing in the next call), which
// is the windowed analogue of RunBefore's strict bound.
func (g *ShardGroup) RunUntil(t Time) {
	for {
		g.runControl()
		if g.now >= t {
			return
		}
		end := t
		if len(g.ctl) > 0 && g.ctl[0].at < end {
			end = g.ctl[0].at
		}
		if next, ok := g.nextEvent(); ok && next+g.lookahead < end {
			end = next + g.lookahead
		}
		g.runWindow(end)
	}
}

// RunFor is RunUntil(Now()+d).
func (g *ShardGroup) RunFor(d Time) { g.RunUntil(g.now + d) }

// Stats returns the aggregated scheduling counters of every stripe.
func (g *ShardGroup) Stats() Stats {
	var s Stats
	for _, k := range g.kernels {
		s.Add(k.Stats())
	}
	return s
}
