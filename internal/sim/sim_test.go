package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.Schedule(3*time.Second, func() { got = append(got, 3) })
	k.Schedule(1*time.Second, func() { got = append(got, 1) })
	k.Schedule(2*time.Second, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.Schedule(time.Second, func() { fired = true })
	if !e.Pending() {
		t.Fatal("event should be pending before run")
	}
	if !e.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	k := New(1)
	e := k.Schedule(time.Second, func() {})
	k.Run()
	if e.Cancel() {
		t.Fatal("Cancel after firing should report false")
	}
	if e.Pending() {
		t.Fatal("fired event reports pending")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := New(1)
	fired := 0
	k.Schedule(time.Second, func() { fired++ })
	k.Schedule(10*time.Second, func() { fired++ })
	k.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", k.Now())
	}
	k.RunUntil(20 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if k.Now() != 20*time.Second {
		t.Fatalf("Now() = %v, want 20s", k.Now())
	}
}

func TestRunForRelative(t *testing.T) {
	k := New(1)
	k.RunFor(3 * time.Second)
	k.RunFor(4 * time.Second)
	if k.Now() != 7*time.Second {
		t.Fatalf("Now() = %v, want 7s", k.Now())
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	k := New(1)
	var times []Time
	k.Schedule(time.Second, func() {
		times = append(times, k.Now())
		k.Schedule(time.Second, func() {
			times = append(times, k.Now())
		})
	})
	k.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestPastEventClampedToNow(t *testing.T) {
	k := New(1)
	k.RunUntil(10 * time.Second)
	var at Time
	k.At(time.Second, func() { at = k.Now() })
	k.Run()
	if at != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 10s", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := New(1)
	fired := false
	k.Schedule(-time.Second, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i)*time.Second, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	k.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestEveryRepeatsAndStops(t *testing.T) {
	k := New(1)
	count := 0
	r := k.Every(time.Second, 0, func() { count++ })
	k.RunUntil(5500 * time.Millisecond)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	r.Stop()
	r.Stop() // idempotent
	k.RunUntil(time.Minute)
	if count != 5 {
		t.Fatalf("count after stop = %d, want 5", count)
	}
}

func TestEveryJitterBounded(t *testing.T) {
	k := New(42)
	var gaps []Time
	last := Time(0)
	k.Every(time.Second, 500*time.Millisecond, func() {
		gaps = append(gaps, k.Now()-last)
		last = k.Now()
	})
	k.RunUntil(time.Minute)
	if len(gaps) == 0 {
		t.Fatal("no firings")
	}
	for _, g := range gaps {
		if g < time.Second || g >= 1500*time.Millisecond {
			t.Fatalf("gap %v outside [1s, 1.5s)", g)
		}
	}
}

func TestStopRepeaterFromOwnCallback(t *testing.T) {
	k := New(1)
	count := 0
	var r *Repeater
	r = k.Every(time.Second, 0, func() {
		count++
		if count == 2 {
			r.Stop()
		}
	})
	k.RunUntil(time.Minute)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		k := New(seed)
		var trace []int64
		k.Every(time.Second, 700*time.Millisecond, func() {
			trace = append(trace, int64(k.Now()), k.Rand().Int63n(1000))
		})
		k.RunUntil(30 * time.Second)
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPropertyEventsFireInTimestampOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(3)
		var fired []Time
		for _, d := range delays {
			k.Schedule(Time(d)*time.Millisecond, func() {
				fired = append(fired, k.Now())
			})
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAtNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	New(1).At(0, nil)
}

func TestStatsCounters(t *testing.T) {
	k := New(1)
	a := k.Schedule(time.Second, func() {})
	k.Schedule(2*time.Second, func() {})
	k.Schedule(3*time.Second, func() {})
	a.Cancel()
	k.Run()
	st := k.Stats()
	if st.Scheduled != 3 || st.Fired != 2 || st.Canceled != 1 {
		t.Fatalf("stats = %+v, want scheduled=3 fired=2 canceled=1", st)
	}
	if st.MaxHeapDepth != 3 {
		t.Fatalf("MaxHeapDepth = %d, want 3", st.MaxHeapDepth)
	}
	if k.Fired() != st.Fired {
		t.Fatalf("Fired() = %d, Stats().Fired = %d", k.Fired(), st.Fired)
	}
}

func TestEventPoolReuse(t *testing.T) {
	k := New(1)
	for i := 0; i < 100; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {})
		k.Run()
	}
	st := k.Stats()
	if st.Reused < 90 {
		t.Fatalf("Reused = %d, want most of the %d schedules served from the pool", st.Reused, st.Scheduled)
	}
}

// TestStaleHandleIsInert pins the safety contract that makes pooling
// sound: a handle whose event already fired must not affect the event
// that later reuses its slot.
func TestStaleHandleIsInert(t *testing.T) {
	k := New(1)
	a := k.Schedule(time.Second, func() {})
	k.Run()
	fired := false
	b := k.Schedule(time.Second, func() { fired = true })
	if a.Cancel() {
		t.Fatal("stale Cancel reported true")
	}
	if a.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if !b.Pending() {
		t.Fatal("live event lost by stale Cancel")
	}
	k.Run()
	if !fired {
		t.Fatal("reused-slot event did not fire")
	}
}

func TestCancelRemovesFromHeap(t *testing.T) {
	k := New(1)
	e := k.Schedule(time.Second, func() {})
	k.Schedule(2*time.Second, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	e.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (eager removal)", k.Pending())
	}
}

func TestAtReturnsFireTime(t *testing.T) {
	k := New(1)
	k.RunUntil(4 * time.Second)
	e := k.Schedule(2*time.Second, func() {})
	if e.At() != 6*time.Second {
		t.Fatalf("At() = %v, want 6s", e.At())
	}
	k.Run()
	if e.At() != 6*time.Second {
		t.Fatalf("At() after fire = %v, want 6s", e.At())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	k := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
	}
	k.Run()
}
