package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"iiotds/internal/coap"
	"iiotds/internal/radio"
)

// shardedGridStack is a 6×6 grid (X span 0..60 m, 12 m spacing): with 3
// stripes the slabs are 20 m wide — narrower than RangeMax (35 m) — so
// almost every transmission crosses a stripe boundary. The harshest
// small-scale exercise of the announcement path.
func shardedGridStack(seed int64) Stack {
	return Stack{
		Seed:     seed,
		Profiles: []Profile{{Name: DefaultProfile, WithCoAP: true}},
		Topology: Uniform(DefaultProfile, radio.GridTopology(36, 12)),
	}
}

// runShardedScript converges a 3-stripe fleet, probes a far cross-stripe
// node over CoAP, crashes and recovers a border node mid-run, and
// returns a full-run digest: join states, probe outcomes, scheduling
// stats, and handoff counts.
func runShardedScript(t *testing.T, workers int) string {
	t.Helper()
	sd := NewShardedStack(shardedGridStack(7), 3)
	sd.G.SetWorkers(workers)
	ok, took := sd.RunUntilConverged(3 * time.Minute)
	if !ok {
		t.Fatalf("workers=%d: fleet never converged (took %v)", workers, took)
	}

	// Cross-stripe CoAP probe: root is at the grid corner (stripe 0),
	// node 35 at the far corner (stripe 2), multiple hops away.
	far := sd.Nodes[35]
	if sd.StripeOf(0) == sd.StripeOf(35) {
		t.Fatal("test topology broken: root and target share a stripe")
	}
	far.Server.Resource("status").Get(
		func(string, *coap.Message) *coap.Message { return coap.TextResponse("ok") })
	probes := []string{}
	sd.G.At(sd.G.Now(), func() {
		sd.Root().CoAP.Get(far.Addr(), "status", func(m *coap.Message, err error) {
			probes = append(probes, fmt.Sprintf("probe err=%v ok=%v at=%v", err, err == nil && m.Code.IsSuccess(), sd.Shards[0].K.Now()))
		})
	})

	// Crash a stripe-border node, then recover it.
	victim := radio.NodeID(14)
	sd.G.Schedule(10*time.Second, func() { sd.Crash(victim) })
	sd.G.Schedule(40*time.Second, func() { sd.Recover(victim) })
	sd.G.RunFor(3 * time.Minute)

	var b strings.Builder
	fmt.Fprintf(&b, "converged=%v handoffs=%d windows=%d stats=%+v\n",
		sd.Converged(), sd.G.Handoffs(), sd.G.Windows(), sd.Stats())
	fmt.Fprintf(&b, "probes=%v\n", probes)
	for _, n := range sd.Nodes {
		j, at := n.Router.Joined()
		fmt.Fprintf(&b, "n%d stripe=%d joined=%v at=%v\n", n.ID, sd.StripeOf(n.ID), j, at)
	}
	return b.String()
}

// TestShardedWorkerInvariance is the sharded-engine determinism gate:
// the digest of a full run — convergence, cross-stripe CoAP, crash and
// rejoin — is byte-identical whether the stripes execute on 1, 2, or 4
// workers.
func TestShardedWorkerInvariance(t *testing.T) {
	ref := runShardedScript(t, 1)
	if !strings.Contains(ref, "ok=true") {
		t.Fatalf("cross-stripe probe failed:\n%s", ref)
	}
	if !strings.Contains(ref, "converged=true") {
		t.Fatalf("fleet did not re-converge after crash/recover:\n%s", ref)
	}
	for _, w := range []int{2, 4} {
		if got := runShardedScript(t, w); got != ref {
			t.Fatalf("workers=%d digest differs from workers=1:\n--- w1 ---\n%s--- w%d ---\n%s", w, ref, w, got)
		}
	}
}

// TestShardedMatchesStripeCount pins that stripes are a model parameter
// carried by construction: nodes are assigned to slabs by X coordinate
// and every stripe gets its own substrate.
func TestShardedMatchesStripeCount(t *testing.T) {
	sd := NewShardedStack(shardedGridStack(1), 3)
	if sd.Stripes() != 3 || len(sd.Shards) != 3 {
		t.Fatalf("stripes = %d/%d, want 3", sd.Stripes(), len(sd.Shards))
	}
	counts := make([]int, 3)
	for _, n := range sd.Nodes {
		s := sd.StripeOf(n.ID)
		counts[s]++
		if sd.Shards[s].M.PositionOf(n.ID).X != sd.stack.Topology[int(n.ID)].Pos.X {
			t.Fatalf("node %d not attached to its owning stripe %d", n.ID, s)
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("stripe %d owns no nodes: %v", s, counts)
		}
	}
}

// TestShardedCrossStripeOverride: a PRR override between far-apart
// nodes on different stripes is a distance-free link; the
// extra-announce bookkeeping must mirror the sender's frames into the
// receiver's stripe even though the slabs are not adjacent in range.
func TestShardedCrossStripeOverride(t *testing.T) {
	// A wide two-cluster line: stripe 0 around x=0, stripe 1 around
	// x=1000 — far beyond RangeMax.
	topo := radio.Topology{{X: 0}, {X: 5}, {X: 1000}, {X: 1005}}
	sd := NewShardedStack(Stack{
		Seed:     3,
		Profiles: []Profile{{Name: DefaultProfile}},
		Topology: Uniform(DefaultProfile, topo),
	}, 2)
	if sd.StripeOf(1) == sd.StripeOf(2) {
		t.Fatal("clusters landed on one stripe")
	}
	// Silence the protocol stacks so the only traffic is the raw frames
	// this test injects, then force node 2's radio on.
	for _, n := range sd.Nodes {
		n.Router.Stop()
		n.MAC.Stop()
	}
	rxMedium := sd.Shards[sd.StripeOf(2)].M
	rxMedium.SetListening(2, true)
	rxFrames := func() float64 {
		return sd.Shards[sd.StripeOf(2)].Reg.Counter("radio.rx_frames").Value()
	}

	sd.SetLinkPRR(1, 2, 1.0)
	sd.G.At(time.Millisecond, func() {
		sd.Shards[sd.StripeOf(1)].M.Send(radio.Frame{From: 1, To: 2, Size: 20})
	})
	sd.G.RunUntil(time.Second)
	if got := rxFrames(); got != 1 {
		t.Fatalf("cross-stripe override delivered %v frames, want 1", got)
	}

	// Removing the override stops the mirroring.
	sd.SetLinkPRR(1, 2, -1)
	sd.G.At(sd.G.Now(), func() {
		sd.Shards[sd.StripeOf(1)].M.Send(radio.Frame{From: 1, To: 2, Size: 20})
	})
	sd.G.RunFor(time.Second)
	if got := rxFrames(); got != 1 {
		t.Fatalf("override removal leaked announcements: rx = %v, want still 1", got)
	}
}
