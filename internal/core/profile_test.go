package core

import (
	"strings"
	"testing"
	"time"

	"iiotds/internal/link"
	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
)

// twoClassStack is a small heterogeneous fleet: a CSMA root + backbone
// pair, with LPL leaves hung off them.
func twoClassStack(opts func(*Stack)) Stack {
	s := Stack{
		Seed: 23,
		Profiles: []Profile{
			{Name: "backbone", MAC: MACCSMA},
			{Name: "leaf", MAC: MACLPL, LPL: mac.LPLConfig{WakeInterval: 250 * time.Millisecond},
				Router: &rpl.Config{Trickle: rpl.TrickleConfig{
					Imin: 500 * time.Millisecond, Doublings: 1, K: 1 << 30,
				}}},
		},
		Topology: Topology{
			{Pos: radio.Position{}, Profile: "backbone"},
			{Pos: radio.Position{X: 15}, Profile: "backbone"},
			{Pos: radio.Position{X: 8, Y: 10}, Profile: "leaf"},
			{Pos: radio.Position{X: 20, Y: 10}, Profile: "leaf"},
		},
	}
	if opts != nil {
		opts(&s)
	}
	return s
}

// The leaf profile above gives its class fast fixed-rate root beaconing
// so the mixed DODAG converges quickly; see e13Fleets for the same idiom.

func TestHeterogeneousStackConverges(t *testing.T) {
	d := NewStack(twoClassStack(nil))
	ok, _ := d.RunUntilConverged(2 * time.Minute)
	if !ok {
		t.Fatal("mixed CSMA/LPL stack did not converge")
	}
	for _, n := range d.Nodes {
		if n.Profile() == nil {
			t.Fatalf("node %d has no profile", n.ID)
		}
	}
	if got := d.Nodes[2].MAC.Name(); got != "lpl" {
		t.Fatalf("leaf node built %q MAC, want lpl", got)
	}
	if got := d.Nodes[1].MAC.Name(); got != "csma" {
		t.Fatalf("backbone node built %q MAC, want csma", got)
	}
}

func TestNodesByProfile(t *testing.T) {
	d := NewStack(twoClassStack(nil))
	backbone := d.NodesByProfile("backbone")
	leaves := d.NodesByProfile("leaf")
	if len(backbone) != 2 || len(leaves) != 2 {
		t.Fatalf("NodesByProfile split %d/%d, want 2/2", len(backbone), len(leaves))
	}
	for _, n := range leaves {
		if n.Profile().Name != "leaf" {
			t.Fatalf("node %d grouped as leaf but profiled %q", n.ID, n.Profile().Name)
		}
	}
	if got := d.NodesByProfile("no-such-class"); len(got) != 0 {
		t.Fatalf("unknown profile returned %d nodes", len(got))
	}
}

// TestFactoriesInterpose proves the per-layer seams: a custom MAC factory
// can wrap/observe construction per profile, and the deployment still
// runs on what it returns.
func TestFactoriesInterpose(t *testing.T) {
	built := map[string]int{}
	var linkCalls, routerCalls int
	s := twoClassStack(func(s *Stack) {
		s.Factories = Factories{
			MAC: func(m *radio.Medium, id radio.NodeID, p *Profile) mac.MAC {
				built[p.Name]++
				return DefaultMAC(m, id, p)
			},
			Link: func(id radio.NodeID, mc mac.MAC) *link.Link {
				linkCalls++
				return link.New(id, mc)
			},
			Router: func(k *sim.Kernel, lnk *link.Link, isRoot bool, root radio.NodeID, cfg rpl.Config, reg *metrics.Registry) *rpl.Router {
				routerCalls++
				return rpl.NewRouter(k, lnk, isRoot, root, cfg, reg)
			},
		}
	})
	d := NewStack(s)
	if built["backbone"] != 2 || built["leaf"] != 2 {
		t.Fatalf("MAC factory calls per profile = %v, want 2 each", built)
	}
	if linkCalls != 4 || routerCalls != 4 {
		t.Fatalf("link/router factory calls = %d/%d, want 4/4", linkCalls, routerCalls)
	}
	if ok, _ := d.RunUntilConverged(2 * time.Minute); !ok {
		t.Fatal("stack with interposed factories did not converge")
	}
}

// TestConfigStackExpansion checks the compat shim: a flat Config expands
// to exactly one profile bound uniformly to the topology.
func TestConfigStackExpansion(t *testing.T) {
	cfg := Config{
		Seed:     3,
		Topology: radio.GridTopology(4, 15),
		MAC:      MACLPL,
		LPL:      mac.LPLConfig{WakeInterval: time.Second},
		Tenant:   "acme",
		Channel:  4,
		WithCoAP: true,
	}
	s := cfg.Stack()
	if len(s.Profiles) != 1 || s.Profiles[0].Name != DefaultProfile {
		t.Fatalf("expanded to %d profiles (first %q)", len(s.Profiles), s.Profiles[0].Name)
	}
	p := s.Profiles[0]
	if p.MAC != MACLPL || p.Tenant != "acme" || p.Channel != 4 || !p.WithCoAP {
		t.Fatalf("profile dropped Config fields: %+v", p)
	}
	if len(s.Topology) != 4 {
		t.Fatalf("topology has %d specs, want 4", len(s.Topology))
	}
	for i, spec := range s.Topology {
		if spec.Profile != DefaultProfile {
			t.Fatalf("spec %d bound to %q", i, spec.Profile)
		}
		if spec.Pos != cfg.Topology[i] {
			t.Fatalf("spec %d lost its position", i)
		}
	}
}

func TestTopologyPositionsRoundTrip(t *testing.T) {
	pos := radio.GridTopology(9, 10)
	topo := Uniform("x", pos)
	got := topo.Positions()
	if len(got) != len(pos) {
		t.Fatalf("Positions() returned %d, want %d", len(got), len(pos))
	}
	for i := range pos {
		if got[i] != pos[i] {
			t.Fatalf("position %d mangled: %v vs %v", i, got[i], pos[i])
		}
	}
}

// stackPanic runs NewStack and returns the recovered panic message.
func stackPanic(t *testing.T, s Stack) string {
	t.Helper()
	msg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		NewStack(s)
	}()
	if msg == "" {
		t.Fatal("expected NewStack to panic")
	}
	return msg
}

// TestStackValidationNamesField checks that every structural panic names
// the offending field, per the centralized-defaulting contract.
func TestStackValidationNamesField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Stack)
		want string
	}{
		{"empty topology", func(s *Stack) { s.Topology = nil }, "Stack.Topology"},
		{"no profiles", func(s *Stack) { s.Profiles = nil }, "Stack.Profiles"},
		{"unnamed profile", func(s *Stack) { s.Profiles[1].Name = "" }, "Stack.Profiles[1].Name"},
		{"duplicate profile", func(s *Stack) { s.Profiles[1].Name = "backbone" }, "Stack.Profiles[1].Name"},
		{"unknown binding", func(s *Stack) { s.Topology[2].Profile = "ghost" }, `Stack.Topology[2].Profile "ghost"`},
		{"negative trickle", func(s *Stack) { s.Router.Trickle.Imin = -time.Second }, "Stack.Router.Trickle.Imin"},
		{"negative profile trickle", func(s *Stack) {
			s.Profiles[1].Router.Trickle.Imin = -time.Second
		}, "Stack.Profiles[1].Router.Trickle.Imin"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := twoClassStack(c.mut)
			msg := stackPanic(t, s)
			if !strings.Contains(msg, c.want) {
				t.Fatalf("panic %q does not name %q", msg, c.want)
			}
		})
	}
}

// TestPerProfileRouterOverride checks that a profile's Router config
// replaces the stack-wide one for that class only.
func TestPerProfileRouterOverride(t *testing.T) {
	d := NewStack(twoClassStack(nil))
	leaf := d.NodesByProfile("leaf")[0]
	if leaf.Profile().Router == nil {
		t.Fatal("leaf profile lost its Router override")
	}
	if got := leaf.Profile().Router.Trickle.Doublings; got != 1 {
		t.Fatalf("leaf trickle doublings = %d, want the override's 1", got)
	}
	backbone := d.NodesByProfile("backbone")[0]
	if backbone.Profile().Router != nil {
		t.Fatal("backbone profile grew a Router override it was never given")
	}
}

func TestRetuneTenantByProfile(t *testing.T) {
	s := twoClassStack(func(s *Stack) {
		s.Profiles[1].Tenant = "plant-b" // leaves belong to another tenant
	})
	d := NewStack(s)
	d.RetuneTenant("plant-b", 9)
	// Retuning one tenant must not touch the other class's channel: the
	// backbone keeps delivering on channel 0 while the leaves moved.
	for _, n := range d.NodesByProfile("leaf") {
		if got := d.M.ChannelOf(n.ID); got != 9 {
			t.Fatalf("leaf %d on channel %d after retune, want 9", n.ID, got)
		}
	}
	for _, n := range d.NodesByProfile("backbone") {
		if got := d.M.ChannelOf(n.ID); got != 0 {
			t.Fatalf("backbone %d moved to channel %d, want 0", n.ID, got)
		}
	}
}
