// Package core is the middleware that assembles the paper's three-tier
// architecture (Fig. 1) into a running system:
//
//   - sensing-and-actuation layer: emulated nodes, each with a radio,
//     a MAC (CSMA or LPL), a link layer, an RPL router, the aggregation
//     service, and a CoAP endpoint reachable over the mesh;
//   - application-logic layer: a pub/sub broker plus whatever rules the
//     application wires to it;
//   - data-storage layer: a time-series store fed from the broker.
//
// A Deployment owns the whole stack and exposes the operations the
// experiments and examples need: build, run, sample, observe, crash,
// recover, retune.
package core

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/bus"
	"iiotds/internal/coap"
	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
	"iiotds/internal/store"
	"iiotds/internal/trace"
)

// MACKind selects the medium-access discipline for a device class.
type MACKind int

// Available MAC kinds.
const (
	MACCSMA MACKind = iota
	MACLPL
	MACRIMAC
)

// Config describes a homogeneous deployment: every node gets the same
// MAC, radio, channel, and tenant. It is a thin shim over the layered
// Stack/Profile builder (profile.go) — Stack() expands it to a single
// profile bound to every position — kept because most experiments and
// tests study one device class at a time.
type Config struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Topology gives node positions; index 0 is the border router.
	Topology radio.Topology
	// Radio parameterizes the medium (zero value = DefaultParams).
	Radio radio.Params
	// MAC selects the discipline; LPL/CSMA/RIMAC tune it.
	MAC   MACKind
	LPL   mac.LPLConfig
	CSMA  mac.CSMAConfig
	RIMAC mac.RIMACConfig
	// Router tunes RPL. Reasonable fast-converging defaults are applied
	// when zero.
	Router rpl.Config
	// Tenant tags all frames (§IV-C); Channel tunes all radios.
	Tenant  string
	Channel uint8
	// RNFD, when non-nil, attaches the root-failure detector to every
	// non-root node.
	RNFD *rpl.RNFDConfig
	// WithCoAP attaches a CoAP endpoint (server+client) to every node.
	WithCoAP bool
	// WithBackend creates the broker and time-series store tiers.
	WithBackend bool
	// TraceCapacity sizes the deployment's flight-recorder ring buffer
	// (events retained). Zero uses trace.DefaultCapacity(); a negative
	// value disables tracing entirely (zero-allocation emit paths).
	TraceCapacity int
}

// Node is one emulated field device with its full protocol stack.
type Node struct {
	ID     radio.NodeID
	MAC    mac.MAC
	Link   *link.Link
	Router *rpl.Router
	Agg    *agg.Node
	RNFD   *rpl.RNFD

	// CoAP endpoint over the mesh (nil unless the node's profile says
	// WithCoAP).
	CoAP   *coap.Conn
	Server *coap.Server

	profile *Profile
	sampler agg.Sampler
	up      bool
	d       *Deployment
}

// Profile returns the device class this node was built from.
func (n *Node) Profile() *Profile { return n.profile }

// Addr returns the node's CoAP address on the mesh transport.
func (n *Node) Addr() string { return strconv.Itoa(int(n.ID)) }

// Up reports whether the node is running.
func (n *Node) Up() bool { return n.up }

// SetSampler installs the function that produces this node's local
// sensor readings for aggregation queries.
func (n *Node) SetSampler(s agg.Sampler) { n.sampler = s }

// Deployment is a full three-tier system under emulation.
type Deployment struct {
	K     *sim.Kernel
	M     *radio.Medium
	Reg   *metrics.Registry
	Trace *trace.Recorder // nil when tracing is disabled
	Nodes []*Node
	stack Stack

	// Application and storage tiers (nil unless Stack.WithBackend).
	Bus      *bus.Broker
	TSDB     *store.TSDB
	Registry *registry.Registry
}

// Stack expands the flat homogeneous Config into the layered description
// NewStack consumes: one profile, bound to every position.
func (c Config) Stack() Stack {
	return Stack{
		Seed:   c.Seed,
		Radio:  c.Radio,
		Router: c.Router,
		Profiles: []Profile{{
			Name:     DefaultProfile,
			MAC:      c.MAC,
			CSMA:     c.CSMA,
			LPL:      c.LPL,
			RIMAC:    c.RIMAC,
			Channel:  c.Channel,
			Tenant:   c.Tenant,
			RNFD:     c.RNFD,
			WithCoAP: c.WithCoAP,
		}},
		Topology:      Uniform(DefaultProfile, c.Topology),
		WithBackend:   c.WithBackend,
		TraceCapacity: c.TraceCapacity,
	}
}

// NewDeployment builds and starts the full stack for a homogeneous
// fleet. It is Config.Stack followed by NewStack.
func NewDeployment(cfg Config) *Deployment {
	if len(cfg.Topology) == 0 {
		panic("core: Config.Topology is empty")
	}
	return NewStack(cfg.Stack())
}

// Root returns the border-router node.
func (d *Deployment) Root() *Node { return d.Nodes[0] }

// Crash stops a node's whole stack (fault.Target).
func (d *Deployment) Crash(id radio.NodeID) {
	n := d.Nodes[int(id)]
	if !n.up {
		return
	}
	n.up = false
	n.Router.Stop()
	if n.RNFD != nil {
		n.RNFD.Stop()
	}
	n.MAC.Stop()
	if n.CoAP != nil {
		// A crash loses exchange state: pending CONs stop retransmitting
		// and fail now instead of leaking in `pending` until a timeout
		// that would fire mid-reboot.
		n.CoAP.Reset()
	}
	d.M.SetDown(id, true)
}

// Recover restarts a crashed node with empty volatile state
// (fault.Target).
func (d *Deployment) Recover(id radio.NodeID) {
	n := d.Nodes[int(id)]
	if n.up {
		return
	}
	n.up = true
	d.M.SetDown(id, false)
	// The reboot clears the node's own volatile link/MAC state (fresh
	// sequence numbers, empty neighbor table) before the radio comes
	// back up...
	n.Link.Reboot()
	// ...and peers must drop what they held about the old incarnation:
	// a retained dedup entry can match the rebooted node's restarted
	// sequence numbering and silently discard its first unicast as an
	// ARQ duplicate, and stale ETX estimates would steer routing on
	// link quality the reboot invalidated.
	for _, p := range d.Nodes {
		if p.ID != id {
			p.Link.ForgetNeighbor(id)
		}
	}
	n.MAC.Start()
	n.Router.Restart()
	if n.profile.RNFD != nil && id != 0 {
		n.RNFD = n.Router.AttachRNFD(*n.profile.RNFD)
	}
}

// RetuneTenant implements spectrum.Retuner: every node whose profile
// belongs to the named tenant moves to ch.
func (d *Deployment) RetuneTenant(tenant string, ch uint8) {
	for _, n := range d.Nodes {
		if n.profile.Tenant == tenant {
			n.MAC.Retune(ch)
		}
	}
}

// Converged reports whether every running node has joined the DODAG.
func (d *Deployment) Converged() bool {
	for _, n := range d.Nodes {
		if !n.up {
			continue
		}
		if n.Router.Partitioned() {
			return false
		}
		if joined, _ := n.Router.Joined(); !joined {
			return false
		}
	}
	return true
}

// RunUntilConverged advances virtual time until the DODAG is complete or
// maxSim elapses; it reports success and the convergence time.
func (d *Deployment) RunUntilConverged(maxSim time.Duration) (bool, time.Duration) {
	start := d.K.Now()
	deadline := start + maxSim
	for d.K.Now() < deadline {
		if d.Converged() {
			return true, d.K.Now() - start
		}
		d.K.RunFor(time.Second)
	}
	return d.Converged(), d.K.Now() - start
}

// PublishObservation routes a canonical observation into the backend
// tiers: broker topic obs/<device>/<cap> and the time-series store.
func (d *Deployment) PublishObservation(o registry.Observation) error {
	if d.Bus == nil {
		return fmt.Errorf("core: deployment has no backend")
	}
	payload := []byte(fmt.Sprintf("%g", o.Value))
	if err := d.Bus.Publish(o.Topic(), payload, true); err != nil {
		return err
	}
	d.TSDB.Series(o.Topic()).Append(store.Point{T: o.At, V: o.Value})
	return nil
}

// Close releases backend resources.
func (d *Deployment) Close() {
	if d.Bus != nil {
		d.Bus.Close()
	}
}

// meshTransport adapts the RPL data plane to coap.Transport. Addresses
// are decimal node IDs.
type meshTransport struct {
	node *Node
	recv func(from string, data []byte)
}

// Send implements coap.Transport.
func (t *meshTransport) Send(addr string, data []byte) error {
	dst, err := strconv.Atoi(addr)
	if err != nil {
		return fmt.Errorf("core: bad mesh address %q: %w", addr, err)
	}
	return t.node.Router.SendTo(radio.NodeID(dst), lowpan.ProtoCoAP, data)
}

// SetReceiver implements coap.Transport.
func (t *meshTransport) SetReceiver(fn func(from string, data []byte)) { t.recv = fn }

func (t *meshTransport) deliver(from string, data []byte) {
	if t.recv != nil {
		t.recv(from, data)
	}
}

// LocalAddr implements coap.Transport.
func (t *meshTransport) LocalAddr() string { return t.node.Addr() }

// Close implements coap.Transport.
func (t *meshTransport) Close() error { return nil }

var _ coap.Transport = (*meshTransport)(nil)
