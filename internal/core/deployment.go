// Package core is the middleware that assembles the paper's three-tier
// architecture (Fig. 1) into a running system:
//
//   - sensing-and-actuation layer: emulated nodes, each with a radio,
//     a MAC (CSMA or LPL), a link layer, an RPL router, the aggregation
//     service, and a CoAP endpoint reachable over the mesh;
//   - application-logic layer: a pub/sub broker plus whatever rules the
//     application wires to it;
//   - data-storage layer: a time-series store fed from the broker.
//
// A Deployment owns the whole stack and exposes the operations the
// experiments and examples need: build, run, sample, observe, crash,
// recover, retune.
package core

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/bus"
	"iiotds/internal/clock"
	"iiotds/internal/coap"
	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
	"iiotds/internal/store"
	"iiotds/internal/trace"
)

// MACKind selects the medium-access discipline for all nodes.
type MACKind int

// Available MAC kinds.
const (
	MACCSMA MACKind = iota
	MACLPL
	MACRIMAC
)

// Config describes a deployment.
type Config struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Topology gives node positions; index 0 is the border router.
	Topology radio.Topology
	// Radio parameterizes the medium (zero value = DefaultParams).
	Radio radio.Params
	// MAC selects the discipline; LPL/CSMA/RIMAC tune it.
	MAC   MACKind
	LPL   mac.LPLConfig
	CSMA  mac.CSMAConfig
	RIMAC mac.RIMACConfig
	// Router tunes RPL. Reasonable fast-converging defaults are applied
	// when zero.
	Router rpl.Config
	// Tenant tags all frames (§IV-C); Channel tunes all radios.
	Tenant  string
	Channel uint8
	// RNFD, when non-nil, attaches the root-failure detector to every
	// non-root node.
	RNFD *rpl.RNFDConfig
	// WithCoAP attaches a CoAP endpoint (server+client) to every node.
	WithCoAP bool
	// WithBackend creates the broker and time-series store tiers.
	WithBackend bool
	// TraceCapacity sizes the deployment's flight-recorder ring buffer
	// (events retained). Zero uses trace.DefaultCapacity(); a negative
	// value disables tracing entirely (zero-allocation emit paths).
	TraceCapacity int
}

// Node is one emulated field device with its full protocol stack.
type Node struct {
	ID     radio.NodeID
	MAC    mac.MAC
	Link   *link.Link
	Router *rpl.Router
	Agg    *agg.Node
	RNFD   *rpl.RNFD

	// CoAP endpoint over the mesh (nil unless Config.WithCoAP).
	CoAP   *coap.Conn
	Server *coap.Server

	sampler agg.Sampler
	up      bool
	d       *Deployment
}

// Addr returns the node's CoAP address on the mesh transport.
func (n *Node) Addr() string { return strconv.Itoa(int(n.ID)) }

// Up reports whether the node is running.
func (n *Node) Up() bool { return n.up }

// SetSampler installs the function that produces this node's local
// sensor readings for aggregation queries.
func (n *Node) SetSampler(s agg.Sampler) { n.sampler = s }

// Deployment is a full three-tier system under emulation.
type Deployment struct {
	K     *sim.Kernel
	M     *radio.Medium
	Reg   *metrics.Registry
	Trace *trace.Recorder // nil when tracing is disabled
	Nodes []*Node
	cfg   Config

	// Application and storage tiers (nil unless Config.WithBackend).
	Bus      *bus.Broker
	TSDB     *store.TSDB
	Registry *registry.Registry
}

// NewDeployment builds and starts the full stack.
func NewDeployment(cfg Config) *Deployment {
	if len(cfg.Topology) == 0 {
		panic("core: empty topology")
	}
	if cfg.Radio.BitRate == 0 {
		cfg.Radio = radio.DefaultParams()
	}
	if cfg.Router.Trickle.Imin == 0 {
		cfg.Router.Trickle = rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 5, K: 3}
	}
	if cfg.Router.DAOInterval == 0 {
		cfg.Router.DAOInterval = 15 * time.Second
	}
	if cfg.Router.ParentProbeInterval == 0 {
		cfg.Router.ParentProbeInterval = 10 * time.Second
	}

	k := sim.New(cfg.Seed)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, cfg.Radio, reg)
	d := &Deployment{K: k, M: m, Reg: reg, cfg: cfg}
	traceCap := cfg.TraceCapacity
	if traceCap == 0 {
		traceCap = trace.DefaultCapacity()
	}
	if traceCap > 0 {
		// The recorder's clock is the kernel's virtual time, so events
		// are ordered by simulated time and byte-identical across runs.
		d.Trace = trace.New(traceCap, k.Now)
		m.SetRecorder(d.Trace)
	}
	if cfg.WithBackend {
		// The broker delivers inline on the simulation thread: bus
		// handlers routinely re-enter the kernel (schedule CoAP traffic,
		// read the virtual clock), which is single-threaded by
		// construction, and inline delivery keeps the whole deployment
		// deterministic (DESIGN.md §5).
		d.Bus = bus.NewSyncBroker()
		d.Bus.UseRegistry(reg)
		d.Bus.SetTrace(d.Trace)
		d.TSDB = store.NewTSDB(4096)
		d.Registry = registry.New()
	}

	for i := range cfg.Topology {
		id := radio.NodeID(i)
		n := &Node{ID: id, d: d, up: true}
		d.Nodes = append(d.Nodes, n)
		m.Attach(id, cfg.Topology[i], radio.ReceiverFunc(func(f radio.Frame) {
			n.MAC.(radio.Receiver).RadioReceive(f)
		}))
		switch cfg.MAC {
		case MACLPL:
			lcfg := cfg.LPL
			lcfg.Channel = cfg.Channel
			lcfg.Tenant = cfg.Tenant
			n.MAC = mac.NewLPL(m, id, lcfg)
		case MACRIMAC:
			rcfg := cfg.RIMAC
			rcfg.Channel = cfg.Channel
			rcfg.Tenant = cfg.Tenant
			n.MAC = mac.NewRIMAC(m, id, rcfg)
		default:
			ccfg := cfg.CSMA
			ccfg.Channel = cfg.Channel
			ccfg.Tenant = cfg.Tenant
			n.MAC = mac.NewCSMA(m, id, ccfg)
		}
		n.Link = link.New(id, n.MAC)
		n.Link.SetRecorder(d.Trace)
		n.Router = rpl.NewRouter(k, n.Link, i == 0, 0, cfg.Router, reg)
		n.Router.SetRecorder(d.Trace)
		idx := i
		n.Agg = agg.NewNode(k, n.Router, n.Link, func(attr string) (float64, bool) {
			if d.Nodes[idx].sampler == nil {
				return 0, false
			}
			return d.Nodes[idx].sampler(attr)
		})
		if cfg.WithCoAP {
			tr := &meshTransport{node: n}
			n.Router.Handle(lowpan.ProtoCoAP, func(src radio.NodeID, payload []byte) {
				tr.deliver(strconv.Itoa(int(src)), payload)
			})
			n.CoAP = coap.NewConn(tr, clock.Kernel{K: k}, coap.ConnConfig{
				Seed: cfg.Seed + int64(i) + 1,
				// The mesh is slow (multi-hop, duty-cycled): give the
				// message layer room before retransmitting.
				AckTimeout: 4 * time.Second,
			})
			n.CoAP.SetTrace(d.Trace, int32(id))
			n.Server = coap.NewServer()
			n.CoAP.Serve(n.Server)
		}
		n.MAC.Start()
		n.Router.Start()
		if cfg.RNFD != nil && i != 0 {
			n.RNFD = n.Router.AttachRNFD(*cfg.RNFD)
		}
	}
	return d
}

// Root returns the border-router node.
func (d *Deployment) Root() *Node { return d.Nodes[0] }

// Crash stops a node's whole stack (fault.Target).
func (d *Deployment) Crash(id radio.NodeID) {
	n := d.Nodes[int(id)]
	if !n.up {
		return
	}
	n.up = false
	n.Router.Stop()
	if n.RNFD != nil {
		n.RNFD.Stop()
	}
	n.MAC.Stop()
	d.M.SetDown(id, true)
}

// Recover restarts a crashed node with empty volatile state
// (fault.Target).
func (d *Deployment) Recover(id radio.NodeID) {
	n := d.Nodes[int(id)]
	if n.up {
		return
	}
	n.up = true
	d.M.SetDown(id, false)
	n.MAC.Start()
	n.Router.Restart()
	if d.cfg.RNFD != nil && id != 0 {
		n.RNFD = n.Router.AttachRNFD(*d.cfg.RNFD)
	}
}

// RetuneTenant implements spectrum.Retuner for single-tenant deployments:
// every node moves to ch.
func (d *Deployment) RetuneTenant(tenant string, ch uint8) {
	if tenant != d.cfg.Tenant {
		return
	}
	for _, n := range d.Nodes {
		n.MAC.Retune(ch)
	}
}

// Converged reports whether every running node has joined the DODAG.
func (d *Deployment) Converged() bool {
	for _, n := range d.Nodes {
		if !n.up {
			continue
		}
		if n.Router.Partitioned() {
			return false
		}
		if joined, _ := n.Router.Joined(); !joined {
			return false
		}
	}
	return true
}

// RunUntilConverged advances virtual time until the DODAG is complete or
// maxSim elapses; it reports success and the convergence time.
func (d *Deployment) RunUntilConverged(maxSim time.Duration) (bool, time.Duration) {
	start := d.K.Now()
	deadline := start + maxSim
	for d.K.Now() < deadline {
		if d.Converged() {
			return true, d.K.Now() - start
		}
		d.K.RunFor(time.Second)
	}
	return d.Converged(), d.K.Now() - start
}

// PublishObservation routes a canonical observation into the backend
// tiers: broker topic obs/<device>/<cap> and the time-series store.
func (d *Deployment) PublishObservation(o registry.Observation) error {
	if d.Bus == nil {
		return fmt.Errorf("core: deployment has no backend")
	}
	payload := []byte(fmt.Sprintf("%g", o.Value))
	if err := d.Bus.Publish(o.Topic(), payload, true); err != nil {
		return err
	}
	d.TSDB.Series(o.Topic()).Append(store.Point{T: o.At, V: o.Value})
	return nil
}

// Close releases backend resources.
func (d *Deployment) Close() {
	if d.Bus != nil {
		d.Bus.Close()
	}
}

// meshTransport adapts the RPL data plane to coap.Transport. Addresses
// are decimal node IDs.
type meshTransport struct {
	node *Node
	recv func(from string, data []byte)
}

// Send implements coap.Transport.
func (t *meshTransport) Send(addr string, data []byte) error {
	dst, err := strconv.Atoi(addr)
	if err != nil {
		return fmt.Errorf("core: bad mesh address %q: %w", addr, err)
	}
	return t.node.Router.SendTo(radio.NodeID(dst), lowpan.ProtoCoAP, data)
}

// SetReceiver implements coap.Transport.
func (t *meshTransport) SetReceiver(fn func(from string, data []byte)) { t.recv = fn }

func (t *meshTransport) deliver(from string, data []byte) {
	if t.recv != nil {
		t.recv(from, data)
	}
}

// LocalAddr implements coap.Transport.
func (t *meshTransport) LocalAddr() string { return t.node.Addr() }

// Close implements coap.Transport.
func (t *meshTransport) Close() error { return nil }

var _ coap.Transport = (*meshTransport)(nil)
