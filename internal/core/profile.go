// Heterogeneous deployments (§III, §IV-C): the sensing-and-actuation
// layer of a real facility is not one device class but many — mixed MAC
// disciplines, vendors, channels, and administrative domains that must
// still interoperate on one medium. This file is the layered stack
// builder that makes such fleets expressible: a Profile describes one
// device class, a Topology binds every node position to a profile, and
// NewStack composes each node's per-layer stack (radio → MAC → link →
// RPL → agg/CoAP) through replaceable Factories. The flat single-class
// Config in deployment.go is a thin shim over this builder.
package core

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/bus"
	"iiotds/internal/clock"
	"iiotds/internal/coap"
	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
	"iiotds/internal/rpl"
	"iiotds/internal/sim"
	"iiotds/internal/store"
	"iiotds/internal/trace"
)

// DefaultProfile is the name Config.Stack gives its single expanded
// profile.
const DefaultProfile = "default"

// Profile describes one device class: the MAC discipline and its tuning,
// the channel and administrative tenant the class operates under, an
// optional per-class router configuration, and the class's roles (CoAP
// endpoint, RNFD sentinel duty, default sampler). Nodes of different
// profiles share one medium and one DODAG — heterogeneity lives below
// the network layer, interoperation above it.
type Profile struct {
	// Name is the profile's identity; Topology entries reference it.
	Name string
	// MAC selects the discipline; the matching config below tunes it.
	MAC   MACKind
	CSMA  mac.CSMAConfig
	LPL   mac.LPLConfig
	RIMAC mac.RIMACConfig
	// Channel tunes this class's radios; Tenant tags its frames (§IV-C).
	Channel uint8
	Tenant  string
	// Router, when non-nil, overrides the deployment-wide rpl.Config for
	// this class (e.g. mains-powered backbone routers can afford faster
	// beaconing than duty-cycled leaves).
	Router *rpl.Config
	// RNFD, when non-nil, attaches the root-failure detector to this
	// class's non-root nodes.
	RNFD *rpl.RNFDConfig
	// WithCoAP attaches a CoAP endpoint (server+client) to this class.
	WithCoAP bool
	// Sampler, when non-nil, is the class-wide default sensor; a
	// per-node Node.SetSampler overrides it.
	Sampler agg.Sampler
}

// NodeSpec places one node and names the device class it instantiates.
type NodeSpec struct {
	Pos     radio.Position
	Profile string
}

// Topology is a heterogeneous deployment plan: one entry per node, in
// node-ID order; index 0 is the border router.
type Topology []NodeSpec

// Uniform binds every position to the same profile — the homogeneous
// special case the flat Config expands to.
func Uniform(profile string, positions radio.Topology) Topology {
	t := make(Topology, len(positions))
	for i, pos := range positions {
		t[i] = NodeSpec{Pos: pos, Profile: profile}
	}
	return t
}

// Positions strips the profile bindings back to radio positions.
func (t Topology) Positions() radio.Topology {
	out := make(radio.Topology, len(t))
	for i, ns := range t {
		out[i] = ns.Pos
	}
	return out
}

// Factories are the per-layer construction hooks NewStack composes each
// node's stack through. A nil field means the default construction for
// that layer; tests and experiments can interpose wrappers (e.g. a MAC
// that drops every third frame) without forking the builder.
type Factories struct {
	// MAC builds the medium-access layer for one node of profile p.
	MAC func(m *radio.Medium, id radio.NodeID, p *Profile) mac.MAC
	// Link builds the framing/ARQ/ETX layer over the node's MAC.
	Link func(id radio.NodeID, mc mac.MAC) *link.Link
	// Router builds the RPL layer over the node's link.
	Router func(k *sim.Kernel, lnk *link.Link, isRoot bool, root radio.NodeID, cfg rpl.Config, reg *metrics.Registry) *rpl.Router
}

// DefaultMAC builds the stock medium-access layer for one node: it
// dispatches on the profile's MAC kind, stamping the class's
// channel and tenant into the discipline config.
func DefaultMAC(m *radio.Medium, id radio.NodeID, p *Profile) mac.MAC {
	switch p.MAC {
	case MACLPL:
		lcfg := p.LPL
		lcfg.Channel = p.Channel
		lcfg.Tenant = p.Tenant
		return mac.NewLPL(m, id, lcfg)
	case MACRIMAC:
		rcfg := p.RIMAC
		rcfg.Channel = p.Channel
		rcfg.Tenant = p.Tenant
		return mac.NewRIMAC(m, id, rcfg)
	default:
		ccfg := p.CSMA
		ccfg.Channel = p.Channel
		ccfg.Tenant = p.Tenant
		return mac.NewCSMA(m, id, ccfg)
	}
}

// withDefaults fills nil hooks with the default per-layer constructors.
func (f Factories) withDefaults() Factories {
	if f.MAC == nil {
		f.MAC = DefaultMAC
	}
	if f.Link == nil {
		f.Link = link.New
	}
	if f.Router == nil {
		f.Router = rpl.NewRouter
	}
	return f
}

// Stack describes a heterogeneous deployment: the shared substrate
// (seed, medium, backend tiers) plus the device classes and the plan
// binding each node to one.
type Stack struct {
	// Seed drives all simulation randomness.
	Seed int64
	// Radio parameterizes the shared medium (zero value = DefaultParams).
	Radio radio.Params
	// Router is the deployment-wide RPL configuration; a profile's
	// Router field overrides it per class.
	Router rpl.Config
	// Profiles are the device classes; Topology references them by name.
	Profiles []Profile
	// Topology binds each node to a position and a profile; index 0 is
	// the border router.
	Topology Topology
	// WithBackend creates the broker and time-series store tiers.
	WithBackend bool
	// TraceCapacity sizes the flight-recorder ring (0 = default,
	// negative = tracing disabled).
	TraceCapacity int
	// Factories override per-layer construction; zero value = defaults.
	Factories Factories
}

// applyDefaults validates the stack description and fills layer
// defaults, panicking with the offending field's name on structural
// errors. It is the single defaulting point for the core layer; the
// MAC/RPL layers apply their own applyDefaults in their constructors.
func (s *Stack) applyDefaults() {
	if len(s.Topology) == 0 {
		panic("core: Stack.Topology is empty")
	}
	if len(s.Profiles) == 0 {
		panic("core: Stack.Profiles is empty")
	}
	byName := make(map[string]bool, len(s.Profiles))
	for i := range s.Profiles {
		name := s.Profiles[i].Name
		if name == "" {
			panic(fmt.Sprintf("core: Stack.Profiles[%d].Name is empty", i))
		}
		if byName[name] {
			panic(fmt.Sprintf("core: Stack.Profiles[%d].Name %q is a duplicate", i, name))
		}
		byName[name] = true
	}
	for i, ns := range s.Topology {
		if !byName[ns.Profile] {
			panic(fmt.Sprintf("core: Stack.Topology[%d].Profile %q is not in Stack.Profiles", i, ns.Profile))
		}
	}
	if s.Radio.BitRate < 0 {
		panic("core: Stack.Radio.BitRate is negative")
	}
	if s.Radio.BitRate == 0 {
		s.Radio = radio.DefaultParams()
	}
	applyRouterDefaults(&s.Router, "Stack.Router")
	for i := range s.Profiles {
		if r := s.Profiles[i].Router; r != nil {
			applyRouterDefaults(r, fmt.Sprintf("Stack.Profiles[%d].Router", i))
		}
	}
}

// applyRouterDefaults fills the deployment-wide fast-converging RPL
// defaults (the rpl layer's own zero-value defaults are tuned for
// standalone use and converge more slowly).
func applyRouterDefaults(c *rpl.Config, field string) {
	if c.Trickle.Imin < 0 {
		panic("core: " + field + ".Trickle.Imin is negative")
	}
	if c.DAOInterval < 0 {
		panic("core: " + field + ".DAOInterval is negative")
	}
	if c.ParentProbeInterval < 0 {
		panic("core: " + field + ".ParentProbeInterval is negative")
	}
	if c.Trickle.Imin == 0 {
		c.Trickle = rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 5, K: 3}
	}
	if c.DAOInterval == 0 {
		c.DAOInterval = 15 * time.Second
	}
	if c.ParentProbeInterval == 0 {
		c.ParentProbeInterval = 10 * time.Second
	}
}

// profileIn returns the named profile from a stack description; the
// name is known valid after applyDefaults.
func profileIn(s *Stack, name string) *Profile {
	for i := range s.Profiles {
		if s.Profiles[i].Name == name {
			return &s.Profiles[i]
		}
	}
	panic(fmt.Sprintf("core: unknown profile %q", name))
}

// profileOf returns the named profile from d's stored stack.
func (d *Deployment) profileOf(name string) *Profile {
	return profileIn(&d.stack, name)
}

// nodeEnv is the substrate one node's stack is composed on. For a flat
// deployment every node shares one env; in a sharded deployment each
// stripe has its own kernel, medium, and registry (sharded.go).
type nodeEnv struct {
	k      *sim.Kernel
	m      *radio.Medium
	reg    *metrics.Registry
	trace  *trace.Recorder // nil when tracing is disabled
	seed   int64           // deployment seed; per-node CoAP seeds derive from it
	router rpl.Config      // deployment-wide default, overridable per profile
	f      Factories       // already withDefaults()
}

// buildNode composes and starts node i of profile p at pos on env's
// substrate: radio attach, MAC, link, RPL, aggregation, optional CoAP
// endpoint and RNFD sentinel. It is the single construction path for
// flat and sharded deployments.
func buildNode(env nodeEnv, i int, pos radio.Position, p *Profile) *Node {
	id := radio.NodeID(i)
	n := &Node{ID: id, up: true, profile: p}
	env.m.Attach(id, pos, radio.ReceiverFunc(func(fr radio.Frame) {
		n.MAC.(radio.Receiver).RadioReceive(fr)
	}))
	n.MAC = env.f.MAC(env.m, id, p)
	n.Link = env.f.Link(id, n.MAC)
	n.Link.SetRecorder(env.trace)
	rcfg := env.router
	if p.Router != nil {
		rcfg = *p.Router
	}
	n.Router = env.f.Router(env.k, n.Link, i == 0, 0, rcfg, env.reg)
	n.Router.SetRecorder(env.trace)
	n.Agg = agg.NewNode(env.k, n.Router, n.Link, func(attr string) (float64, bool) {
		if n.sampler == nil {
			return 0, false
		}
		return n.sampler(attr)
	})
	n.sampler = p.Sampler
	if p.WithCoAP {
		tr := &meshTransport{node: n}
		n.Router.Handle(lowpan.ProtoCoAP, func(src radio.NodeID, payload []byte) {
			tr.deliver(strconv.Itoa(int(src)), payload)
		})
		n.CoAP = coap.NewConn(tr, clock.Kernel{K: env.k}, coap.ConnConfig{
			Seed: env.seed + int64(i) + 1,
			// The mesh is slow (multi-hop, duty-cycled): give the
			// message layer room before retransmitting.
			AckTimeout: 4 * time.Second,
		})
		n.CoAP.SetTrace(env.trace, int32(id))
		n.CoAP.SetJourneys(env.m.Buffers().Journeys())
		n.Server = coap.NewServer()
		n.CoAP.Serve(n.Server)
	}
	n.MAC.Start()
	n.Router.Start()
	if p.RNFD != nil && i != 0 {
		n.RNFD = n.Router.AttachRNFD(*p.RNFD)
	}
	return n
}

// NewStack builds and starts a heterogeneous deployment: every node's
// stack is composed per its profile through the per-layer factories, on
// one shared medium and (optionally) one backend.
func NewStack(cfg Stack) *Deployment {
	cfg.applyDefaults()

	k := sim.New(cfg.Seed)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, cfg.Radio, reg)
	d := &Deployment{K: k, M: m, Reg: reg, stack: cfg}
	traceCap := cfg.TraceCapacity
	if traceCap == 0 {
		traceCap = trace.DefaultCapacity()
	}
	if traceCap > 0 {
		// The recorder's clock is the kernel's virtual time, so events
		// are ordered by simulated time and byte-identical across runs.
		d.Trace = trace.New(traceCap, k.Now)
		m.SetRecorder(d.Trace)
	}
	if cfg.WithBackend {
		// The broker delivers inline on the simulation thread: bus
		// handlers routinely re-enter the kernel (schedule CoAP traffic,
		// read the virtual clock), which is single-threaded by
		// construction, and inline delivery keeps the whole deployment
		// deterministic (DESIGN.md §5).
		d.Bus = bus.NewSyncBroker()
		d.Bus.UseRegistry(reg)
		d.Bus.SetTrace(d.Trace)
		d.TSDB = store.NewTSDB(4096)
		d.Registry = registry.New()
	}

	env := nodeEnv{
		k:      k,
		m:      m,
		reg:    reg,
		trace:  d.Trace,
		seed:   cfg.Seed,
		router: d.stack.Router,
		f:      d.stack.Factories.withDefaults(),
	}
	for i := range d.stack.Topology {
		ns := d.stack.Topology[i]
		n := buildNode(env, i, ns.Pos, d.profileOf(ns.Profile))
		n.d = d
		d.Nodes = append(d.Nodes, n)
	}
	return d
}

// NodesByProfile returns the nodes instantiated from the named profile,
// in node-ID order.
func (d *Deployment) NodesByProfile(name string) []*Node {
	var out []*Node
	for _, n := range d.Nodes {
		if n.profile.Name == name {
			out = append(out, n)
		}
	}
	return out
}
