package core

import (
	"fmt"
	"testing"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/bus"
	"iiotds/internal/coap"
	"iiotds/internal/fault"
	"iiotds/internal/link"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
	"iiotds/internal/rpl"
	"iiotds/internal/store"
)

func smallGrid(t *testing.T, n int, opts func(*Config)) *Deployment {
	t.Helper()
	cfg := Config{
		Seed:     11,
		Topology: radio.GridTopology(n, 15),
	}
	if opts != nil {
		opts(&cfg)
	}
	return NewDeployment(cfg)
}

func TestDeploymentConverges(t *testing.T) {
	d := smallGrid(t, 16, nil)
	ok, took := d.RunUntilConverged(2 * time.Minute)
	if !ok {
		t.Fatal("deployment did not converge")
	}
	if took > time.Minute {
		t.Fatalf("convergence took %v", took)
	}
}

func TestAggregationQueryOverDeployment(t *testing.T) {
	d := smallGrid(t, 9, nil)
	for i := 1; i < 9; i++ {
		i := i
		d.Nodes[i].SetSampler(func(attr string) (float64, bool) {
			if attr != "temp" {
				return 0, false
			}
			return 20 + float64(i), true
		})
	}
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	var results []agg.Result
	d.Root().Agg.OnResult = func(r agg.Result) { results = append(results, r) }
	d.Root().Agg.RunQuery(agg.Query{ID: 1, Fn: agg.Avg, Attr: "temp", Epoch: 10 * time.Second, MaxDepth: 6})
	d.K.RunFor(2 * time.Minute)
	if len(results) < 3 {
		t.Fatalf("only %d epochs reported", len(results))
	}
	// Average of 21..28 = 24.5. Individual epochs may miss a straggler
	// record (TAG's smearing), so check the best epoch is complete and
	// exact, and that coverage is high overall.
	var best agg.Result
	var covered float64
	for _, r := range results {
		if r.Count > best.Count {
			best = r
		}
		covered += float64(r.Count)
	}
	if best.Count != 8 {
		t.Fatalf("best epoch count = %d, want 8", best.Count)
	}
	if best.Value < 24 || best.Value > 25 {
		t.Fatalf("avg = %v, want 24.5", best.Value)
	}
	if covered/float64(8*len(results)) < 0.7 {
		t.Fatalf("epoch coverage too low: %v records over %d epochs", covered, len(results))
	}
}

func TestCoAPOverMesh(t *testing.T) {
	d := smallGrid(t, 9, func(c *Config) { c.WithCoAP = true })
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	// Node 8 (far corner) serves a sensor resource; the root reads it.
	d.Nodes[8].Server.Resource("sensors/temp").Get(func(from string, req *coap.Message) *coap.Message {
		return coap.TextResponse("23.75")
	})
	var got string
	var gotErr error
	done := false
	d.Root().CoAP.Get(d.Nodes[8].Addr(), "sensors/temp", func(m *coap.Message, err error) {
		done = true
		gotErr = err
		if err == nil {
			got = string(m.Payload)
		}
	})
	d.K.RunFor(2 * time.Minute)
	if !done {
		t.Fatal("no CoAP response over mesh")
	}
	if gotErr != nil || got != "23.75" {
		t.Fatalf("got %q, err %v", got, gotErr)
	}
}

func TestCoAPObserveOverMesh(t *testing.T) {
	d := smallGrid(t, 4, func(c *Config) { c.WithCoAP = true })
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	res := d.Nodes[3].Server.Resource("sensors/level").Observable().Get(
		func(string, *coap.Message) *coap.Message { return coap.TextResponse("0") })
	var notes []string
	d.Root().CoAP.Observe(d.Nodes[3].Addr(), "sensors/level", func(m *coap.Message, err error) {
		if err == nil {
			notes = append(notes, string(m.Payload))
		}
	})
	d.K.RunFor(15 * time.Second)
	res.Notify(coap.FormatText, []byte("42"))
	d.K.RunFor(15 * time.Second)
	if len(notes) < 2 || notes[len(notes)-1] != "42" {
		t.Fatalf("notifications = %v", notes)
	}
}

func TestCrashRecoverCycle(t *testing.T) {
	d := smallGrid(t, 9, nil)
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	victim := radio.NodeID(4) // grid center: a likely forwarder
	d.Crash(victim)
	d.Crash(victim) // idempotent
	if d.Nodes[4].Up() {
		t.Fatal("node still up after crash")
	}
	d.K.RunFor(2 * time.Minute)
	// The rest of the network must have healed around the crash.
	for i, n := range d.Nodes {
		if i == 4 || !n.up {
			continue
		}
		if n.Router.Partitioned() {
			t.Fatalf("node %d partitioned after center crash", i)
		}
	}
	d.Recover(victim)
	d.Recover(victim) // idempotent
	ok, _ := d.RunUntilConverged(2 * time.Minute)
	if !ok {
		t.Fatal("recovered node did not rejoin")
	}
}

// TestRecoverResetsNeighborState is the deployment-level regression test
// for the stale-state recovery bug: a rebooted node must come back with
// an empty neighbor table (its RAM is gone), and its peers must drop the
// ETX estimate and MAC dedup entry they held for the old incarnation —
// otherwise routing leans on dead link quality and the restarted
// sequence numbering can be silently deduped (see the mac conformance
// reboot tests for the frame-level mechanism).
func TestRecoverResetsNeighborState(t *testing.T) {
	d := smallGrid(t, 9, nil)
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	d.K.RunFor(time.Minute) // accumulate link-quality history
	victim := radio.NodeID(4)
	withEntry := 0
	for i, n := range d.Nodes {
		if radio.NodeID(i) != victim && n.Link.Neighbors().Lookup(victim) != nil {
			withEntry++
		}
	}
	if withEntry == 0 {
		t.Fatal("no peer ever learned about the victim; test premise broken")
	}
	if d.Nodes[victim].Link.Neighbors().Len() == 0 {
		t.Fatal("victim has no neighbors pre-crash; test premise broken")
	}

	d.Crash(victim)
	d.K.RunFor(30 * time.Second)
	d.Recover(victim)

	// Immediately after Recover, before any new traffic: the victim's own
	// table is empty and every peer forgot the old incarnation.
	if n := d.Nodes[victim].Link.Neighbors().Len(); n != 0 {
		t.Fatalf("victim rebooted with %d retained neighbors", n)
	}
	for i, n := range d.Nodes {
		if radio.NodeID(i) == victim {
			continue
		}
		if e := n.Link.Neighbors().Lookup(victim); e != nil {
			t.Fatalf("peer %d retained ETX state for rebooted node: %+v", i, e)
		}
	}

	// The first post-reboot unicast must be delivered, not deduped: a
	// peer handler sees the payload.
	peer := radio.NodeID(1)
	var got []string
	d.Nodes[peer].Link.Handle(link.ProtoApp, func(from radio.NodeID, p []byte) {
		if from == victim {
			got = append(got, string(p))
		}
	})
	delivered := false
	d.Nodes[victim].Link.Send(peer, link.ProtoApp, []byte("post-reboot"), func(ok bool) { delivered = ok })
	d.K.RunFor(10 * time.Second)
	if !delivered {
		t.Fatal("first post-reboot unicast not acknowledged")
	}
	if len(got) == 0 || got[0] != "post-reboot" {
		t.Fatalf("first post-reboot unicast not delivered to handler: %v", got)
	}
	if ok, _ := d.RunUntilConverged(2 * time.Minute); !ok {
		t.Fatal("recovered node did not rejoin")
	}
}

// TestCrashResetsCoAPExchanges covers the other half of the recovery
// bug: Deployment.Crash must drop the victim's CoAP exchange state. An
// outstanding request from the victim fails with ErrClosed at crash
// time, and the endpoint holds no pending/awaiting entries across the
// reboot.
func TestCrashResetsCoAPExchanges(t *testing.T) {
	d := smallGrid(t, 9, func(c *Config) { c.WithCoAP = true })
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	d.Root().Server.Resource("cfg").Get(func(string, *coap.Message) *coap.Message {
		return coap.TextResponse("v1")
	})
	victim := radio.NodeID(8)
	// Make the root unreachable first so the victim's GET stays pending,
	// then crash the victim with the exchange in flight.
	var gotErr error
	done := false
	d.M.SetDown(0, true)
	d.Nodes[victim].CoAP.Get(d.Root().Addr(), "cfg", func(m *coap.Message, err error) {
		done, gotErr = true, err
	})
	d.K.RunFor(5 * time.Second)
	if done {
		t.Fatalf("request resolved before crash (err=%v); premise broken", gotErr)
	}
	if p, a := d.Nodes[victim].CoAP.Exchanges(); p == 0 && a == 0 {
		t.Fatal("no in-flight exchange state; premise broken")
	}
	d.Crash(victim)
	if !done || gotErr == nil {
		t.Fatal("crash did not fail the in-flight request")
	}
	if p, a := d.Nodes[victim].CoAP.Exchanges(); p != 0 || a != 0 {
		t.Fatalf("crashed node leaked exchange state: pending=%d awaiting=%d", p, a)
	}
	d.M.SetDown(0, false)
	d.Recover(victim)
	if ok, _ := d.RunUntilConverged(2 * time.Minute); !ok {
		t.Fatal("recovered node did not rejoin")
	}
	// The rebooted endpoint is usable: a fresh request round-trips.
	var got string
	d.Nodes[victim].CoAP.Get(d.Root().Addr(), "cfg", func(m *coap.Message, err error) {
		if err == nil {
			got = string(m.Payload)
		}
	})
	d.K.RunFor(2 * time.Minute)
	if got != "v1" {
		t.Fatalf("post-reboot request failed, got %q", got)
	}
}

// TestPendingCONToCrashedNodeTimesOutCleanly pins the sender side: a CON
// addressed to a node that crashes mid-exchange fails with ErrTimeout
// after the retransmission budget — it neither hangs nor leaks a pending
// entry at the sender.
func TestPendingCONToCrashedNodeTimesOutCleanly(t *testing.T) {
	d := smallGrid(t, 9, func(c *Config) { c.WithCoAP = true })
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	victim := radio.NodeID(8)
	d.Crash(victim)
	var gotErr error
	done := false
	d.Root().CoAP.Get(d.Nodes[victim].Addr(), "anything", func(m *coap.Message, err error) {
		done, gotErr = true, err
	})
	// Retransmission budget: up to ~31 × AckTimeout(4 s) × 1.5 ≈ 186 s.
	d.K.RunFor(4 * time.Minute)
	if !done {
		t.Fatal("CON to crashed node never resolved")
	}
	if gotErr != coap.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if p, a := d.Root().CoAP.Exchanges(); p != 0 || a != 0 {
		t.Fatalf("sender leaked exchange state: pending=%d awaiting=%d", p, a)
	}
}

func TestFaultInjectorIntegration(t *testing.T) {
	d := smallGrid(t, 4, nil)
	ledger := fault.NewLedger(0)
	inj := fault.NewInjector(d.K, d.M, d, ledger)
	inj.CrashAt(30*time.Second, 2)
	inj.RecoverAt(60*time.Second, 2)
	d.K.RunUntil(90 * time.Second)
	s := ledger.StatsOf("node-2", d.K.Now())
	if s.Failures != 1 || s.Repairs != 1 {
		t.Fatalf("ledger stats = %+v", s)
	}
	if !d.Nodes[2].Up() {
		t.Fatal("node not recovered")
	}
}

func TestRNFDIntegration(t *testing.T) {
	d := smallGrid(t, 9, func(c *Config) {
		c.RNFD = &rpl.RNFDConfig{SuspectTimeout: 25 * time.Second, Quorum: 2}
	})
	if ok, _ := d.RunUntilConverged(time.Minute); !ok {
		t.Fatal("no convergence")
	}
	// Sentinels qualify on proven unicast history (DAOs, probes), so
	// give the network steady-state time before the failure.
	d.K.RunFor(2 * time.Minute)
	d.Crash(0)
	d.K.RunFor(3 * time.Minute)
	aware := 0
	for i := 1; i < 9; i++ {
		if d.Nodes[i].Router.RootDead() {
			aware++
		}
	}
	if aware < 6 {
		t.Fatalf("only %d/8 nodes learned of border-router death", aware)
	}
}

func TestBackendPublish(t *testing.T) {
	d := smallGrid(t, 4, func(c *Config) { c.WithBackend = true })
	defer d.Close()
	obs := observationFixture()
	if err := d.PublishObservation(obs); err != nil {
		t.Fatal(err)
	}
	// Storage tier.
	s := d.TSDB.Series("obs/press-1/temp")
	if s.Len() != 1 {
		t.Fatalf("series len = %d", s.Len())
	}
	p, _ := s.Last()
	if p.V != 36.5 {
		t.Fatalf("stored %v", p.V)
	}
	// Application tier: retained message replays to a late subscriber.
	got := make(chan string, 1)
	if _, err := d.Bus.Subscribe("obs/press-1/+", func(m bus.Message) {
		select {
		case got <- string(m.Payload):
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "36.5" {
			t.Fatalf("bus payload = %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retained observation not replayed")
	}
}

func TestDeploymentWithoutBackendRejectsPublish(t *testing.T) {
	d := smallGrid(t, 4, nil)
	if err := d.PublishObservation(observationFixture()); err == nil {
		t.Fatal("publish without backend accepted")
	}
}

func TestLPLDeploymentConverges(t *testing.T) {
	cfg := Config{
		Seed:     13,
		Topology: radio.GridTopology(9, 15),
		MAC:      MACLPL,
	}
	cfg.LPL.WakeInterval = 250 * time.Millisecond
	d := NewDeployment(cfg)
	ok, _ := d.RunUntilConverged(5 * time.Minute)
	if !ok {
		for i, n := range d.Nodes {
			t.Logf("node %d rank=%d parent=%d", i, n.Router.Rank(), n.Router.Parent())
		}
		t.Fatal("LPL deployment did not converge")
	}
	// Steady-state radio-on fraction of a leaf must be far below
	// always-on; measure a quiet window after convergence so the join
	// phase's strobing does not dominate.
	before := d.M.Energy().Ledger(8).RadioOn()
	t0 := d.K.Now()
	d.K.RunFor(5 * time.Minute)
	frac := float64(d.M.Energy().Ledger(8).RadioOn()-before) / float64(d.K.Now()-t0)
	if frac > 0.5 {
		t.Fatalf("LPL steady-state radio-on fraction = %v", frac)
	}
}

func TestRIMACDeploymentConverges(t *testing.T) {
	cfg := Config{
		Seed:     17,
		Topology: radio.GridTopology(9, 15),
		MAC:      MACRIMAC,
	}
	cfg.RIMAC.BeaconInterval = 250 * time.Millisecond
	d := NewDeployment(cfg)
	ok, _ := d.RunUntilConverged(5 * time.Minute)
	if !ok {
		for i, n := range d.Nodes {
			t.Logf("node %d rank=%d parent=%d", i, n.Router.Rank(), n.Router.Parent())
		}
		t.Fatal("RI-MAC deployment did not converge")
	}
	// Receiver-initiated rendezvous must still deliver upward traffic
	// (individual datagrams may miss a rendezvous; most must arrive).
	got := 0
	d.Root().Router.Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) { got++ })
	for i := 0; i < 5; i++ {
		i := i
		d.K.Schedule(time.Duration(i)*10*time.Second, func() {
			_ = d.Nodes[8].Router.SendUp(lowpan.ProtoRaw, []byte{byte(i)})
		})
	}
	d.K.RunFor(2 * time.Minute)
	if got < 3 {
		t.Fatalf("only %d/5 upward datagrams delivered over RI-MAC mesh", got)
	}
}

func TestEmptyTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDeployment(Config{})
}

func observationFixture() registry.Observation {
	return registry.Observation{
		Device: "press-1",
		Cap:    "temp",
		Value:  36.5,
		Unit:   "C",
		At:     time.Second,
	}
}

func ExampleDeployment() {
	d := NewDeployment(Config{Seed: 1, Topology: radio.GridTopology(4, 10)})
	ok, _ := d.RunUntilConverged(time.Minute)
	fmt.Println("converged:", ok)
	// Output: converged: true
}

var _ = store.Point{} // storage-tier type used via the TSDB assertions
