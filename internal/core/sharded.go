// Sharded deployments: one fleet split over several simulation kernels
// so a single run uses multiple cores (DESIGN.md §9).
//
// The deployment plane is cut into vertical slabs ("stripes") by X
// coordinate. Each stripe owns a full substrate — kernel, medium,
// packet-buffer pool, metrics registry — and hosts the complete stacks
// of its nodes. Stripes share virtual time through a sim.ShardGroup
// whose lookahead is the minimum frame airtime; transmissions near a
// slab boundary are mirrored into the audible neighbor stripes as
// radio.Announcements carried across the group barrier.
//
// The stripe count is a MODEL parameter: it decides which frames cross
// a barrier, so results depend on it, exactly like they depend on the
// topology. The worker count (ShardGroup.SetWorkers) is pure execution
// policy — a run is byte-identical at any worker count.
package core

import (
	"fmt"
	"math"
	"time"

	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// Shard is one stripe's substrate.
type Shard struct {
	K   *sim.Kernel
	M   *radio.Medium
	Reg *metrics.Registry
}

// ShardedDeployment is a fleet running across several stripes under one
// ShardGroup. It implements the same fault-injection surfaces as a flat
// Deployment (fault.Target, fault.MediumCtl), with control operations
// fanned to the owning stripe(s).
type ShardedDeployment struct {
	G      *sim.ShardGroup
	Shards []*Shard
	Nodes  []*Node // node ID order, across all stripes

	stack    Stack
	stripeOf []int // node index -> stripe index
	stripes  int
	minX     float64
	slabW    float64

	// extraAnnounce[s][t] counts PRR overrides whose sender lives on
	// stripe s and receiver on stripe t: such links may be audible at
	// any distance, so while any exist every frame from s is announced
	// to t regardless of position.
	extraAnnounce [][]int
	overPairs     map[[2]radio.NodeID][2]int // installed override -> (src stripe, dst stripe)
}

// NewShardedStack builds and starts a deployment striped over the given
// number of stripes. The stack description is the same one NewStack
// takes, with two restrictions: backend tiers and tracing are not
// supported on the sharded engine (both assume one kernel).
func NewShardedStack(cfg Stack, stripes int) *ShardedDeployment {
	if stripes < 1 {
		panic("core: NewShardedStack needs at least one stripe")
	}
	cfg.applyDefaults()
	if cfg.WithBackend {
		panic("core: sharded stacks do not support WithBackend")
	}
	if cfg.TraceCapacity > 0 {
		panic("core: sharded stacks do not support tracing")
	}

	sd := &ShardedDeployment{stack: cfg, stripes: stripes}

	// Slab geometry over the topology's X extent. Nodes are assigned by
	// clamped slab index, so outliers land in the edge stripes.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, ns := range cfg.Topology {
		minX = math.Min(minX, ns.Pos.X)
		maxX = math.Max(maxX, ns.Pos.X)
	}
	sd.minX = minX
	sd.slabW = (maxX - minX) / float64(stripes)
	if sd.slabW <= 0 {
		sd.slabW = 1 // degenerate: all nodes share an X; everyone lands in stripe 0
	}
	sd.stripeOf = make([]int, len(cfg.Topology))
	for i, ns := range cfg.Topology {
		sd.stripeOf[i] = sd.stripeAt(ns.Pos.X)
	}

	// Per-stripe substrates. Stripe seeds derive from the deployment
	// seed by a fixed mix, so one Spec seed still pins the whole run.
	kernels := make([]*sim.Kernel, stripes)
	for s := 0; s < stripes; s++ {
		k := sim.New(cfg.Seed + int64(s)*1_000_003)
		reg := metrics.NewRegistry()
		kernels[s] = k
		sd.Shards = append(sd.Shards, &Shard{K: k, M: radio.NewMedium(k, cfg.Radio, reg), Reg: reg})
	}
	// Lookahead: the minimum cross-stripe visibility delay is the
	// airtime of a zero-payload frame (propagation is instantaneous in
	// the model).
	sd.G = sim.NewShardGroup(sd.Shards[0].M.Airtime(0), kernels...)

	sd.extraAnnounce = make([][]int, stripes)
	for s := range sd.extraAnnounce {
		sd.extraAnnounce[s] = make([]int, stripes)
	}
	sd.overPairs = make(map[[2]radio.NodeID][2]int)

	// Announce glue: every accepted transmission on stripe s is posted
	// to each other stripe t whose slab it could be audible in.
	for s := range sd.Shards {
		s := s
		sd.Shards[s].M.SetAnnounce(func(f radio.Frame, pos radio.Position, start, end sim.Time) {
			var a radio.Announcement
			captured := false
			for t := range sd.Shards {
				if t == s || !sd.announces(s, t, pos) {
					continue
				}
				if !captured {
					a = radio.NewAnnouncement(f, pos, start, end)
					captured = true
				}
				dst := sd.Shards[t].M
				sd.G.Post(s, t, func() { dst.ApplyForeign(a) })
			}
		})
	}

	env := nodeEnv{
		seed:   cfg.Seed,
		router: cfg.Router,
		f:      cfg.Factories.withDefaults(),
	}
	for i := range cfg.Topology {
		ns := cfg.Topology[i]
		sh := sd.Shards[sd.stripeOf[i]]
		env.k, env.m, env.reg = sh.K, sh.M, sh.Reg
		sd.Nodes = append(sd.Nodes, buildNode(env, i, ns.Pos, profileIn(&sd.stack, ns.Profile)))
	}
	return sd
}

// stripeAt maps an X coordinate to its owning stripe (clamped: the
// node at max X belongs to the last stripe).
func (sd *ShardedDeployment) stripeAt(x float64) int {
	s := int((x - sd.minX) / sd.slabW)
	if s < 0 {
		s = 0
	}
	if s >= sd.stripes {
		s = sd.stripes - 1
	}
	return s
}

// announces reports whether a frame sent from pos on stripe s must be
// mirrored to stripe t: within interference range of t's slab, or a
// distance-free override link currently points from s into t.
func (sd *ShardedDeployment) announces(s, t int, pos radio.Position) bool {
	if sd.extraAnnounce[s][t] > 0 {
		return true
	}
	lo := sd.minX + float64(t)*sd.slabW
	hi := lo + sd.slabW
	r := sd.stack.Radio.RangeMax // applyDefaults filled it
	return pos.X > lo-r && pos.X < hi+r
}

// Stripes returns the stripe count.
func (sd *ShardedDeployment) Stripes() int { return len(sd.Shards) }

// StripeOf returns the stripe that owns node id.
func (sd *ShardedDeployment) StripeOf(id radio.NodeID) int { return sd.stripeOf[int(id)] }

// Root returns the border-router node.
func (sd *ShardedDeployment) Root() *Node { return sd.Nodes[0] }

// shardOfNode returns the substrate of the stripe owning id.
func (sd *ShardedDeployment) shardOfNode(id radio.NodeID) *Shard {
	return sd.Shards[sd.stripeOf[int(id)]]
}

// Crash stops a node's whole stack (fault.Target). Must run at a group
// barrier (control timeline), like all cross-stripe mutation.
func (sd *ShardedDeployment) Crash(id radio.NodeID) {
	n := sd.Nodes[int(id)]
	if !n.up {
		return
	}
	n.up = false
	n.Router.Stop()
	if n.RNFD != nil {
		n.RNFD.Stop()
	}
	n.MAC.Stop()
	if n.CoAP != nil {
		n.CoAP.Reset()
	}
	sd.shardOfNode(id).M.SetDown(id, true)
}

// Recover restarts a crashed node with empty volatile state
// (fault.Target). Peer state about the old incarnation is dropped
// across every stripe.
func (sd *ShardedDeployment) Recover(id radio.NodeID) {
	n := sd.Nodes[int(id)]
	if n.up {
		return
	}
	n.up = true
	sd.shardOfNode(id).M.SetDown(id, false)
	n.Link.Reboot()
	for _, p := range sd.Nodes {
		if p.ID != id {
			p.Link.ForgetNeighbor(id)
		}
	}
	n.MAC.Start()
	n.Router.Restart()
	if n.profile.RNFD != nil && id != 0 {
		n.RNFD = n.Router.AttachRNFD(*n.profile.RNFD)
	}
}

// SetDown marks a node crashed/recovered on its owning stripe's medium
// (fault.MediumCtl).
func (sd *ShardedDeployment) SetDown(id radio.NodeID, down bool) {
	sd.shardOfNode(id).M.SetDown(id, down)
}

// SetLinkFilter installs a delivery veto on every stripe
// (fault.MediumCtl). Filters are keyed by deployment-global IDs, so one
// function serves local and ghost fan-out alike.
func (sd *ShardedDeployment) SetLinkFilter(f radio.LinkFilter) {
	for _, sh := range sd.Shards {
		sh.M.SetLinkFilter(f)
	}
}

// SetLinkPRR overrides the PRR of the directed link from->to
// (fault.MediumCtl). The override is installed on both endpoint
// stripes — the sender's for its local fan-out, the receiver's for
// ghost fan-out — and cross-stripe overrides additionally force
// announcements between the two stripes (override links are
// distance-free, so slab adjacency cannot be relied on).
func (sd *ShardedDeployment) SetLinkPRR(from, to radio.NodeID, prr float64) {
	key := [2]radio.NodeID{from, to}
	ss, ts := sd.stripeOf[int(from)], sd.stripeOf[int(to)]
	sd.Shards[ss].M.SetLinkPRR(from, to, prr)
	if ts != ss {
		sd.Shards[ts].M.SetLinkPRR(from, to, prr)
	}
	if prr < 0 {
		if pair, ok := sd.overPairs[key]; ok {
			delete(sd.overPairs, key)
			if pair[0] != pair[1] {
				sd.extraAnnounce[pair[0]][pair[1]]--
			}
		}
		return
	}
	if _, ok := sd.overPairs[key]; !ok {
		sd.overPairs[key] = [2]int{ss, ts}
		if ss != ts {
			sd.extraAnnounce[ss][ts]++
		}
	}
}

// RetuneTenant implements spectrum.Retuner across all stripes.
func (sd *ShardedDeployment) RetuneTenant(tenant string, ch uint8) {
	for _, n := range sd.Nodes {
		if n.profile.Tenant == tenant {
			n.MAC.Retune(ch)
		}
	}
}

// Converged reports whether every running node has joined the DODAG.
// Safe only at a group barrier.
func (sd *ShardedDeployment) Converged() bool {
	for _, n := range sd.Nodes {
		if !n.up {
			continue
		}
		if n.Router.Partitioned() {
			return false
		}
		if joined, _ := n.Router.Joined(); !joined {
			return false
		}
	}
	return true
}

// ConvergedFraction returns the fraction of running nodes that have
// joined the DODAG — the city-scale metric: at 10k+ nodes the question
// is how much of the fleet is routable, not whether the last straggler
// made it.
func (sd *ShardedDeployment) ConvergedFraction() float64 {
	up, joined := 0, 0
	for _, n := range sd.Nodes {
		if !n.up {
			continue
		}
		up++
		if j, _ := n.Router.Joined(); j && !n.Router.Partitioned() {
			joined++
		}
	}
	if up == 0 {
		return 0
	}
	return float64(joined) / float64(up)
}

// RunUntilConverged advances the group until the DODAG is complete or
// maxSim elapses; it reports success and the convergence time.
func (sd *ShardedDeployment) RunUntilConverged(maxSim time.Duration) (bool, time.Duration) {
	start := sd.G.Now()
	deadline := start + maxSim
	for sd.G.Now() < deadline {
		if sd.Converged() {
			return true, sd.G.Now() - start
		}
		sd.G.RunFor(time.Second)
	}
	return sd.Converged(), sd.G.Now() - start
}

// Stats aggregates the scheduling counters of every stripe kernel.
func (sd *ShardedDeployment) Stats() sim.Stats { return sd.G.Stats() }

// String summarizes the sharding layout for logs.
func (sd *ShardedDeployment) String() string {
	return fmt.Sprintf("sharded{stripes=%d nodes=%d slab=%.1fm lookahead=%v}",
		len(sd.Shards), len(sd.Nodes), sd.slabW, sd.G.Lookahead())
}
