// Package registry defines the canonical device model of the middleware
// — the neutral vocabulary every protocol adapter translates into — and
// the device registry that tracks what is deployed where. This is the
// O(M) integration pivot of §III: M protocol families need M adapters to
// the canonical model instead of M² pairwise translators.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DeviceID uniquely names a device.
type DeviceID string

// CapabilityKind distinguishes sensing from actuation.
type CapabilityKind int

// Capability kinds.
const (
	KindSensor CapabilityKind = iota
	KindActuator
)

// String names the kind.
func (k CapabilityKind) String() string {
	if k == KindSensor {
		return "sensor"
	}
	return "actuator"
}

// Capability is one named measurement or control point of a device.
type Capability struct {
	Name string
	Kind CapabilityKind
	Unit string
}

// Device is the canonical description of a field device.
type Device struct {
	ID       DeviceID
	Vendor   string
	Model    string
	Protocol string // adapter protocol name ("modbus", "blegatt", ...)
	Tenant   string // administrative domain (§IV-C)
	Caps     []Capability
}

// Capability returns the named capability.
func (d *Device) Capability(name string) (Capability, bool) {
	for _, c := range d.Caps {
		if c.Name == name {
			return c, true
		}
	}
	return Capability{}, false
}

// Observation is a canonical sensor reading.
type Observation struct {
	Device DeviceID
	Cap    string
	Value  float64
	Unit   string
	At     time.Duration
}

// Topic returns the bus topic for this observation.
func (o Observation) Topic() string {
	return fmt.Sprintf("obs/%s/%s", o.Device, o.Cap)
}

// Command is a canonical actuation request.
type Command struct {
	Device DeviceID
	Cap    string
	Value  float64
}

// Registry errors.
var (
	ErrDuplicate = errors.New("registry: device already registered")
	ErrNotFound  = errors.New("registry: device not found")
)

// Registry tracks registered devices. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	devices map[DeviceID]*Device
	hooks   []func(*Device)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{devices: make(map[DeviceID]*Device)}
}

// Register adds a device.
func (r *Registry) Register(d *Device) error {
	if d.ID == "" {
		return errors.New("registry: empty device ID")
	}
	r.mu.Lock()
	if _, dup := r.devices[d.ID]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, d.ID)
	}
	r.devices[d.ID] = d
	hooks := make([]func(*Device), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, h := range hooks {
		h(d)
	}
	return nil
}

// Deregister removes a device.
func (r *Registry) Deregister(id DeviceID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.devices[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(r.devices, id)
	return nil
}

// Lookup returns the device with the given ID.
func (r *Registry) Lookup(id DeviceID) (*Device, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return d, nil
}

// OnRegister adds a hook called for each newly registered device.
func (r *Registry) OnRegister(h func(*Device)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, h)
	r.mu.Unlock()
}

// All returns all devices sorted by ID.
func (r *Registry) All() []*Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Device, 0, len(r.devices))
	for _, d := range r.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByProtocol returns devices speaking the given protocol, sorted by ID.
func (r *Registry) ByProtocol(proto string) []*Device {
	var out []*Device
	for _, d := range r.All() {
		if d.Protocol == proto {
			out = append(out, d)
		}
	}
	return out
}

// ByTenant returns devices of one administrative domain, sorted by ID.
func (r *Registry) ByTenant(tenant string) []*Device {
	var out []*Device
	for _, d := range r.All() {
		if d.Tenant == tenant {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.devices)
}
