package registry

import (
	"errors"
	"testing"
	"time"
)

func device(id DeviceID) *Device {
	return &Device{
		ID: id, Vendor: "v", Model: "m", Protocol: "modbus", Tenant: "acme",
		Caps: []Capability{
			{Name: "temp", Kind: KindSensor, Unit: "C"},
			{Name: "valve", Kind: KindActuator, Unit: "%"},
		},
	}
}

func TestRegisterLookupDeregister(t *testing.T) {
	r := New()
	if err := r.Register(device("d1")); err != nil {
		t.Fatal(err)
	}
	d, err := r.Lookup("d1")
	if err != nil || d.Vendor != "v" {
		t.Fatalf("Lookup: %v", err)
	}
	if err := r.Register(device("d1")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
	if err := r.Deregister("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-deregister err = %v", err)
	}
	if err := r.Deregister("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deregister err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register(&Device{}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestHooksFireOnRegister(t *testing.T) {
	r := New()
	var got []DeviceID
	r.OnRegister(func(d *Device) { got = append(got, d.ID) })
	_ = r.Register(device("a"))
	_ = r.Register(device("b"))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hooks = %v", got)
	}
}

func TestQueriesSortedAndFiltered(t *testing.T) {
	r := New()
	_ = r.Register(device("b"))
	_ = r.Register(device("a"))
	other := device("c")
	other.Protocol = "blegatt"
	other.Tenant = "globex"
	_ = r.Register(other)

	all := r.All()
	if len(all) != 3 || all[0].ID != "a" || all[2].ID != "c" {
		t.Fatalf("All = %v", all)
	}
	if got := r.ByProtocol("modbus"); len(got) != 2 {
		t.Fatalf("ByProtocol = %d", len(got))
	}
	if got := r.ByTenant("globex"); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("ByTenant = %v", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestCapabilityLookup(t *testing.T) {
	d := device("x")
	c, ok := d.Capability("valve")
	if !ok || c.Kind != KindActuator {
		t.Fatalf("Capability = %+v ok=%v", c, ok)
	}
	if _, ok := d.Capability("ghost"); ok {
		t.Fatal("phantom capability")
	}
	if KindSensor.String() != "sensor" || KindActuator.String() != "actuator" {
		t.Fatal("kind strings wrong")
	}
}

func TestObservationTopic(t *testing.T) {
	o := Observation{Device: "press-1", Cap: "temp", Value: 20, At: time.Second}
	if o.Topic() != "obs/press-1/temp" {
		t.Fatalf("Topic = %q", o.Topic())
	}
}
