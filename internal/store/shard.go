package store

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/gossip"
	"iiotds/internal/metrics"
	"iiotds/internal/trace"
)

// Sharded is the partitioned, replicated time-series store: series keys
// are hash-partitioned across P shards, and each shard is an R-replica
// group of store.Replica running under a per-shard consistency policy
// (CP quorum or AP CRDT + gossip anti-entropy). Every append for a
// series is routed through replica 0 of its owning shard — the shard
// coordinator — which is what makes CP version numbers totally ordered
// (see cpSeries).
//
// Each shard gets its own in-memory gossip.Network so replication and
// anti-entropy traffic never crosses shard boundaries; partitions are
// injected per shard (PartitionReplica), mirroring a rack or zone cut
// that splits every replica group the same way.
type Sharded struct {
	sched     clock.Scheduler
	rec       *trace.Recorder
	node      int32
	batchSize int
	shards    []*Shard
}

// ShardPolicy is the per-shard consistency/replication policy — the
// lifted form of the old per-replica Mode/ClusterSize pair.
type ShardPolicy struct {
	Mode Mode
	// Replicas is the replica-group size R (default 3).
	Replicas int
}

func (p *ShardPolicy) applyDefaults() {
	if p.Replicas == 0 {
		p.Replicas = 3
	}
}

// ShardedConfig tunes the sharded store.
type ShardedConfig struct {
	// Shards is the partition count P (default 1).
	Shards int
	// Policy is the default per-shard policy.
	Policy ShardPolicy
	// PerShard overrides the policy for specific shard indices, so a
	// deployment can keep, say, billing-critical partitions CP while
	// the telemetry firehose runs AP.
	PerShard map[int]ShardPolicy
	// SegmentSize is the series-engine points-per-segment
	// (0 = DefaultSegmentSize).
	SegmentSize int
	// BatchSize is the Appender flush threshold (default 64 points).
	BatchSize int
	// QuorumTimeout bounds CP operations (default 2 s).
	QuorumTimeout time.Duration
	// GossipInterval is the AP anti-entropy period (default 1 s).
	GossipInterval time.Duration
	// Seed derives the per-replica gossip jitter seeds.
	Seed int64
	// Codec selects the replication wire encoding (default CodecBinary).
	Codec Codec
	// Rec, when set, receives LayerStore trace events.
	Rec *trace.Recorder
	// Metrics, when set, receives the store_* counters.
	Metrics *metrics.Registry
	// Node is the trace node ID stamped on store events (-1 for a
	// free-standing store not owned by any simulated node).
	Node int32
}

func (c *ShardedConfig) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = time.Second
	}
	c.Policy.applyDefaults()
}

// Shard is one replica group.
type Shard struct {
	Index    int
	Policy   ShardPolicy
	Net      *gossip.Network
	Replicas []*Replica

	ingestDone func(err error) // default done: counts unavailability

	mBatches *metrics.Counter
	mPoints  *metrics.Counter
	mUnavail *metrics.Counter
	mMerge   *metrics.Counter
	mFlush   *metrics.Counter
	mCompact *metrics.Counter
}

// Coordinator returns the shard's replica 0 — the replica every append
// and quorum read for the shard's series is routed through.
func (sh *Shard) Coordinator() *Replica { return sh.Replicas[0] }

// NewSharded builds the store: P shards × R replicas, each shard on its
// own gossip fabric.
func NewSharded(sched clock.Scheduler, cfg ShardedConfig) *Sharded {
	cfg.applyDefaults()
	s := &Sharded{
		sched:     sched,
		rec:       cfg.Rec,
		node:      cfg.Node,
		batchSize: cfg.BatchSize,
		shards:    make([]*Shard, cfg.Shards),
	}
	for i := range s.shards {
		policy := cfg.Policy
		if over, ok := cfg.PerShard[i]; ok {
			over.applyDefaults()
			policy = over
		}
		sh := &Shard{
			Index:  i,
			Policy: policy,
			Net:    gossip.NewNetwork(),
		}
		if reg := cfg.Metrics; reg != nil {
			lbl := metrics.L("shard", strconv.Itoa(i))
			mode := metrics.L("mode", policy.Mode.String())
			sh.mBatches = reg.CounterWith("store_ingest_batches", lbl, mode)
			sh.mPoints = reg.CounterWith("store_ingest_points", lbl, mode)
			sh.mUnavail = reg.CounterWith("store_unavail_ops", lbl, mode)
			sh.mMerge = reg.CounterWith("store_merge_points", lbl, mode)
			sh.mFlush = reg.CounterWith("store_flush_points", lbl, mode)
			sh.mCompact = reg.CounterWith("store_compactions", lbl, mode)
		}
		rcfg := ReplicaConfig{
			Mode:          policy.Mode,
			ClusterSize:   policy.Replicas,
			QuorumTimeout: cfg.QuorumTimeout,
			Codec:         cfg.Codec,
			SegmentSize:   cfg.SegmentSize,
		}
		for j := 0; j < policy.Replicas; j++ {
			port := sh.Net.Attach(fmt.Sprintf("s%d/r%d", i, j))
			rc := rcfg
			rc.Gossip = gossip.Config{
				Interval: cfg.GossipInterval,
				Seed:     cfg.Seed + int64(i*policy.Replicas+j) + 1,
			}
			rep := NewReplica(port, sched, rc)
			if policy.Mode == ModeAP {
				shard := int64(i)
				rep.SetMergeHook(func(_ string, added int) {
					s.rec.Emit(s.node, trace.StoreAntiEntropy, shard, int64(added), 0, 0)
					if sh.mMerge != nil {
						sh.mMerge.Add(float64(added))
					}
				})
			}
			sh.Replicas = append(sh.Replicas, rep)
		}
		shard := int64(i)
		sh.ingestDone = func(err error) {
			if err != nil {
				s.rec.Emit(s.node, trace.StoreUnavail, shard, 0, 0, 0)
				if sh.mUnavail != nil {
					sh.mUnavail.Add(1)
				}
			}
		}
		s.shards[i] = sh
	}
	return s
}

// Stop halts all replicas' background activity.
func (s *Sharded) Stop() {
	for _, sh := range s.shards {
		for _, r := range sh.Replicas {
			r.Stop()
		}
	}
}

// NumShards returns the partition count P.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i.
func (s *Sharded) Shard(i int) *Shard { return s.shards[i] }

// ShardOf routes a series key to its owning shard (FNV-1a hash mod P).
func (s *Sharded) ShardOf(series string) int {
	h := fnvOffset
	for i := 0; i < len(series); i++ {
		h = (h ^ uint64(series[i])) * fnvPrime
	}
	return int(h % uint64(len(s.shards)))
}

// Ingest appends a batch of points to series through its shard
// coordinator. done follows Replica.AppendPoints semantics; when nil, a
// default callback records CP unavailability in the trace/metrics. The
// batch is not retained.
func (s *Sharded) Ingest(series string, pts []Point, done func(err error)) {
	sh := s.shards[s.ShardOf(series)]
	s.rec.Emit(s.node, trace.StoreAppend, int64(sh.Index), int64(len(pts)), 0, 0)
	if sh.mBatches != nil {
		sh.mBatches.Add(1)
		sh.mPoints.Add(float64(len(pts)))
	}
	if done == nil {
		done = sh.ingestDone
	}
	sh.Coordinator().AppendPoints(series, pts, done)
}

// Range reads the points of series with from <= T < to through its
// shard coordinator (quorum freshest-wins in CP, local merged view in
// AP).
func (s *Sharded) Range(series string, from, to time.Duration, done func(pts []Point, err error)) {
	sh := s.shards[s.ShardOf(series)]
	sh.Coordinator().RangeSeries(series, from, to, done)
}

// Flush closes every open series head across all replicas (points
// become encoded segments immediately instead of waiting for a fill).
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		open := 0
		for _, r := range sh.Replicas {
			open += r.SeriesStats().OpenPoints
			r.FlushSeries()
		}
		if open > 0 {
			s.rec.Emit(s.node, trace.StoreFlush, int64(sh.Index), int64(open), 0, 0)
			if sh.mFlush != nil {
				sh.mFlush.Add(float64(open))
			}
		}
	}
}

// Compact force-merges closed segments across all replicas.
func (s *Sharded) Compact() {
	for _, sh := range s.shards {
		before := 0
		for _, r := range sh.Replicas {
			before += r.SeriesStats().ClosedSegs
		}
		for _, r := range sh.Replicas {
			r.CompactSeries()
		}
		after := 0
		for _, r := range sh.Replicas {
			after += r.SeriesStats().ClosedSegs
		}
		if merged := before - after; merged > 0 {
			s.rec.Emit(s.node, trace.StoreCompact, int64(sh.Index), int64(merged), 0, 0)
			if sh.mCompact != nil {
				sh.mCompact.Add(float64(merged))
			}
		}
	}
}

// PartitionReplica cuts replica j out of every shard's fabric — the
// zone-cut fault the E16 experiment injects. Partitioning replica 0
// isolates every coordinator (CP ingest goes unavailable); a nonzero j
// leaves quorums intact but forces catch-up on heal.
func (s *Sharded) PartitionReplica(j int) {
	for _, sh := range s.shards {
		if j >= sh.Policy.Replicas {
			continue
		}
		iso := []string{fmt.Sprintf("s%d/r%d", sh.Index, j)}
		rest := make([]string, 0, sh.Policy.Replicas-1)
		for k := 0; k < sh.Policy.Replicas; k++ {
			if k != j {
				rest = append(rest, fmt.Sprintf("s%d/r%d", sh.Index, k))
			}
		}
		sh.Net.SetPartition(iso, rest)
	}
}

// Heal removes all injected partitions.
func (s *Sharded) Heal() {
	for _, sh := range s.shards {
		sh.Net.Heal()
	}
}

// Repair pushes each CP coordinator's full series state to its peers so
// shards that diverged across a partition reconverge even when no
// further appends arrive. AP shards reconverge on their own via gossip.
func (s *Sharded) Repair() {
	for _, sh := range s.shards {
		sh.Coordinator().Repair()
	}
}

// ConvergedShards returns how many shards have all replicas reporting
// equal series digests.
func (s *Sharded) ConvergedShards() int {
	n := 0
	for _, sh := range s.shards {
		if shardConverged(sh.Replicas) {
			n++
		}
	}
	return n
}

// Converged reports whether every shard has converged.
func (s *Sharded) Converged() bool { return s.ConvergedShards() == len(s.shards) }

func shardConverged(replicas []*Replica) bool {
	want := replicas[0].SeriesDigest()
	for _, r := range replicas[1:] {
		if r.SeriesDigest() != want {
			return false
		}
	}
	return true
}

// ShardStats is one shard's point-in-time digest.
type ShardStats struct {
	Mode      Mode
	Replicas  int
	Engine    EngineStats // coordinator's engines (authoritative copy)
	OpsOK     int
	OpsFailed int
}

// ShardedStats aggregates per-shard stats.
type ShardedStats struct {
	Shards []ShardStats
}

// TotalPoints sums the points ever ingested across coordinators.
func (st ShardedStats) TotalPoints() uint64 {
	var n uint64
	for _, s := range st.Shards {
		n += s.Engine.Points
	}
	return n
}

// Stats snapshots every shard.
func (s *Sharded) Stats() ShardedStats {
	out := ShardedStats{Shards: make([]ShardStats, len(s.shards))}
	for i, sh := range s.shards {
		coord := sh.Coordinator()
		coord.mu.Lock()
		ok, failed := coord.OpsOK, coord.OpsFailed
		coord.mu.Unlock()
		out.Shards[i] = ShardStats{
			Mode:      sh.Policy.Mode,
			Replicas:  sh.Policy.Replicas,
			Engine:    coord.SeriesStats(),
			OpsOK:     ok,
			OpsFailed: failed,
		}
	}
	return out
}
