package store

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SeriesEngine is the append-optimized storage engine for one series:
// an open head of raw points that absorbs appends allocation-free, and
// a list of immutable closed Segments (delta-of-delta encoded) behind
// it. When the head fills it is sorted (repairing any out-of-order
// arrivals), encoded, and closed; compaction merges closed segments
// into larger ones so long-retention series stay O(log) segments
// instead of O(points/segSize).
//
// Range semantics: AppendRange returns every retained point with
// from <= T < to in non-decreasing timestamp order; arrival order is
// preserved among equal timestamps. Out-of-order arrivals are counted
// (OutOfOrder) and placed by timestamp, not arrival.
//
// Concurrency: guarded by a mutex like Series, so the engine is safe
// under the CoAP/socket paths; in the single-kernel emulation the lock
// is uncontended.
type SeriesEngine struct {
	mu      sync.Mutex
	segSize int
	maxSegs int // retention bound on closed segments (0 = unbounded)

	head    []Point // open segment, arrival order
	headOOO bool    // head holds at least one out-of-order point
	lastT   time.Duration
	seenAny bool
	last    Point // most recent arrival
	closed  []*Segment

	scratch []byte  // reused encode buffer
	sortBuf []Point // reused close/compact work buffer

	total       uint64 // points ever appended
	ooo         uint64 // out-of-order arrivals
	segsClosed  uint64
	compactions uint64
	evicted     uint64 // points dropped by the retention bound
}

// DefaultSegmentSize is the points-per-segment default: small enough
// that short test runs exercise the close path, large enough that the
// varint streams amortize.
const DefaultSegmentSize = 512

// compactFanIn is how many closed segments trigger (and merge in) one
// compaction: whenever compactFanIn consecutive closed segments each
// hold fewer than segSize*compactFanIn points, they merge into one.
// Repeated application yields O(log_fanIn(segments)) levels, like an
// LSM tree's size-tiered policy.
const compactFanIn = 8

// NewSeriesEngine creates an engine closing segments of segSize points
// (0 = DefaultSegmentSize).
func NewSeriesEngine(segSize int) *SeriesEngine {
	if segSize < 0 {
		panic(fmt.Sprintf("store: segment size %d", segSize))
	}
	if segSize == 0 {
		segSize = DefaultSegmentSize
	}
	return &SeriesEngine{
		segSize: segSize,
		head:    make([]Point, 0, segSize),
	}
}

// SetRetention bounds the closed segments retained; the oldest segment
// is evicted when the bound is exceeded (0 = keep everything).
func (e *SeriesEngine) SetRetention(maxClosedSegments int) {
	e.mu.Lock()
	e.maxSegs = maxClosedSegments
	e.enforceRetention()
	e.mu.Unlock()
}

// Append records one point.
func (e *SeriesEngine) Append(p Point) {
	e.mu.Lock()
	e.append(p)
	e.mu.Unlock()
}

// AppendBatch records a batch of points under one lock acquisition —
// the ingest hot path. Points are bulk-copied into the open head
// (chunked at segment boundaries) rather than appended one by one, so
// the per-point cost is a vectorized copy plus a monotonicity scan.
// It does not retain pts.
func (e *SeriesEngine) AppendBatch(pts []Point) {
	if len(pts) == 0 {
		return
	}
	e.mu.Lock()
	for len(pts) > 0 {
		chunk := pts
		if room := e.segSize - len(e.head); len(chunk) > room {
			chunk = pts[:room]
		}
		n := len(e.head)
		e.head = e.head[:n+len(chunk)] // head is preallocated to segSize
		copy(e.head[n:], chunk)
		lastT, seen := e.lastT, e.seenAny
		for i := range chunk {
			if seen && chunk[i].T < lastT {
				e.ooo++
				e.headOOO = true
			} else {
				lastT = chunk[i].T
			}
			seen = true
		}
		e.lastT, e.seenAny = lastT, seen
		e.last = chunk[len(chunk)-1]
		e.total += uint64(len(chunk))
		pts = pts[len(chunk):]
		if len(e.head) >= e.segSize {
			e.closeHead()
		}
	}
	e.mu.Unlock()
}

func (e *SeriesEngine) append(p Point) {
	if e.seenAny && p.T < e.lastT {
		e.ooo++
		e.headOOO = true
	} else {
		e.lastT = p.T
	}
	e.seenAny = true
	e.last = p
	e.head = append(e.head, p)
	e.total++
	if len(e.head) >= e.segSize {
		e.closeHead()
	}
}

// closeHead sorts (if needed), encodes, and closes the open head.
func (e *SeriesEngine) closeHead() {
	if len(e.head) == 0 {
		return
	}
	if e.headOOO {
		sort.SliceStable(e.head, func(i, j int) bool { return e.head[i].T < e.head[j].T })
	}
	var seg *Segment
	seg, e.scratch = newSegment(e.head, e.scratch)
	e.closed = append(e.closed, seg)
	e.head = e.head[:0]
	e.headOOO = false
	e.segsClosed++
	e.maybeCompact()
	e.enforceRetention()
}

// maybeCompact merges the newest run of small closed segments when
// compactFanIn of them have accumulated (size-tiered policy).
func (e *SeriesEngine) maybeCompact() {
	n := len(e.closed)
	if n < compactFanIn {
		return
	}
	limit := e.segSize * compactFanIn
	run := 0
	for i := n - 1; i >= 0 && e.closed[i].Count() < limit; i-- {
		run++
	}
	if run < compactFanIn {
		return
	}
	start := n - run
	var seg *Segment
	seg, e.sortBuf, e.scratch = mergeSegments(e.closed[start:], e.sortBuf, e.scratch)
	e.closed = append(e.closed[:start], seg)
	e.compactions++
}

// Compact force-merges every closed segment into one — the maintenance
// entry point the sharded store schedules in the background.
func (e *SeriesEngine) Compact() {
	e.mu.Lock()
	if len(e.closed) > 1 {
		var seg *Segment
		seg, e.sortBuf, e.scratch = mergeSegments(e.closed, e.sortBuf, e.scratch)
		e.closed = append(e.closed[:0], seg)
		e.compactions++
	}
	e.mu.Unlock()
}

// enforceRetention drops the oldest closed segments past the bound.
func (e *SeriesEngine) enforceRetention() {
	if e.maxSegs <= 0 {
		return
	}
	for len(e.closed) > e.maxSegs {
		e.evicted += uint64(e.closed[0].Count())
		e.closed = e.closed[1:]
	}
}

// Flush closes the open head early so its points reach encoded form
// (and, via snapshots, other replicas) without waiting for a fill.
func (e *SeriesEngine) Flush() {
	e.mu.Lock()
	e.closeHead()
	e.mu.Unlock()
}

// Len returns the number of retained points.
func (e *SeriesEngine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.head)
	for _, s := range e.closed {
		n += s.Count()
	}
	return n
}

// Total returns the number of points ever appended.
func (e *SeriesEngine) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// OutOfOrder returns how many appended points arrived with a timestamp
// earlier than a previously appended one.
func (e *SeriesEngine) OutOfOrder() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ooo
}

// Last returns the most recently appended point, if any.
func (e *SeriesEngine) Last() (Point, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last, e.seenAny && e.total > e.evicted
}

// Range returns the retained points with from <= T < to in timestamp
// order (see the engine doc for the out-of-order contract).
func (e *SeriesEngine) Range(from, to time.Duration) []Point {
	return e.AppendRange(nil, from, to)
}

// AppendRange appends the retained points with from <= T < to onto dst
// in timestamp order and returns the extended slice. Passing a reused
// dst keeps the query path allocation-free at steady state.
func (e *SeriesEngine) AppendRange(dst []Point, from, to time.Duration) []Point {
	e.mu.Lock()
	defer e.mu.Unlock()
	start := len(dst)
	for _, s := range e.closed {
		dst = s.AppendRange(dst, from, to)
	}
	for _, p := range e.head {
		if p.T >= from && p.T < to {
			dst = append(dst, p)
		}
	}
	// Closed segments are internally sorted but may overlap each other
	// (and the head) when arrivals were out of order; one stable sort
	// restores the global contract and is a near-no-op when sorted.
	tail := dst[start:]
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].T < tail[j].T })
	return dst
}

// EngineStats is a point-in-time digest of an engine.
type EngineStats struct {
	Points      uint64 // ever appended
	Retained    int    // currently held
	OutOfOrder  uint64
	OpenPoints  int // in the unencoded head
	ClosedSegs  int
	SegsClosed  uint64 // closes ever performed
	Compactions uint64
	Evicted     uint64
	Bytes       int // encoded bytes across closed segments
}

// Stats returns the engine counters.
func (e *SeriesEngine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineStats{
		Points:      e.total,
		OutOfOrder:  e.ooo,
		OpenPoints:  len(e.head),
		ClosedSegs:  len(e.closed),
		SegsClosed:  e.segsClosed,
		Compactions: e.compactions,
		Evicted:     e.evicted,
	}
	st.Retained = len(e.head)
	for _, s := range e.closed {
		st.Retained += s.Count()
		st.Bytes += s.SizeBytes()
	}
	return st
}

// FNV-1a parameters shared by the store's convergence digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// digestU64 folds v into an FNV-1a hash, low byte first.
func digestU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// digestString folds s (length-prefixed) into an FNV-1a hash.
func digestString(h uint64, s string) uint64 {
	h = digestU64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// digestPoints folds a point stream, order-sensitively, into an FNV-1a
// hash.
func digestPoints(h uint64, pts []Point) uint64 {
	h = digestU64(h, uint64(len(pts)))
	for _, p := range pts {
		h = digestU64(h, uint64(p.T))
		h = digestU64(h, math.Float64bits(p.V))
	}
	return h
}

// digest folds the retained point stream into an order-sensitive
// FNV-1a hash — equal digests mean equal retained points. It hashes
// decoded points, not segment bytes, so replicas that closed or
// compacted segments at different times still compare equal when their
// data matches (the comparison the convergence checks rely on).
func (e *SeriesEngine) digest(h uint64) uint64 {
	pts := e.AppendRange(nil, minTime, maxTime) // canonical: timestamp-sorted, arrival-stable
	return digestPoints(h, pts)
}
