// Package store is the data-storage tier of the three-layer architecture
// (Fig. 1): a bounded time-series store for telemetry and a replicated
// key-value store that can run in CP (quorum) or AP (CRDT) mode — the two
// ends of the CAP trade-off §V-C analyzes for always-on industrial
// systems.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"iiotds/internal/metrics"
)

// Point is one telemetry sample.
type Point struct {
	T time.Duration // virtual or wall time since start
	V float64
}

// Series is a bounded in-memory time series (ring buffer). The zero
// value is not usable; create with NewSeries.
type Series struct {
	mu      sync.Mutex
	cap     int
	pts     []Point
	start   int
	count   int
	total   uint64
	lastT   time.Duration
	seenAny bool
	ooo     uint64
	oooCtr  *metrics.Counter
}

// NewSeries creates a series retaining the most recent capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		panic(fmt.Sprintf("store: series capacity %d", capacity))
	}
	return &Series{cap: capacity, pts: make([]Point, capacity)}
}

// Append records a sample. Samples should arrive in time order; a
// sample whose T precedes the previously appended one is still stored
// (retention is arrival-ordered) but is detected and counted — see
// OutOfOrder and the Range contract.
func (s *Series) Append(p Point) {
	s.mu.Lock()
	if s.seenAny && p.T < s.lastT {
		s.ooo++
		if s.oooCtr != nil {
			s.oooCtr.Add(1)
		}
	} else {
		s.lastT = p.T
	}
	s.seenAny = true
	idx := (s.start + s.count) % s.cap
	if s.count == s.cap {
		s.pts[s.start] = p
		s.start = (s.start + 1) % s.cap
	} else {
		s.pts[idx] = p
		s.count++
	}
	s.total++
	s.mu.Unlock()
}

// OutOfOrder returns how many appended samples arrived with a timestamp
// earlier than a previously appended one.
func (s *Series) OutOfOrder() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ooo
}

// SetMetrics counts this series' out-of-order arrivals in reg's
// "store_ooo_points" counter, labeled with the series name.
func (s *Series) SetMetrics(reg *metrics.Registry, name string) {
	ctr := reg.CounterWith("store_ooo_points", metrics.L("series", name))
	s.mu.Lock()
	s.oooCtr = ctr
	s.mu.Unlock()
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Total returns the number of points ever appended.
func (s *Series) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the most recent point, if any.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Point{}, false
	}
	return s.pts[(s.start+s.count-1)%s.cap], true
}

// Range returns the retained points with from <= T < to in
// non-decreasing timestamp order. When every sample arrived in time
// order this is exactly arrival order; when out-of-order samples were
// appended the result is stable-sorted by T, so samples with equal
// timestamps keep their arrival order. (Retention is unaffected: the
// ring always evicts the oldest *arrival*, not the oldest timestamp.)
func (s *Series) Range(from, to time.Duration) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Point
	for i := 0; i < s.count; i++ {
		p := s.pts[(s.start+i)%s.cap]
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	if s.ooo > 0 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	}
	return out
}

// Mean returns the mean of retained values, or false when empty.
func (s *Series) Mean() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, false
	}
	var sum float64
	for i := 0; i < s.count; i++ {
		sum += s.pts[(s.start+i)%s.cap].V
	}
	return sum / float64(s.count), true
}

// TSDB is a set of named series with a shared per-series capacity.
type TSDB struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*Series
}

// NewTSDB creates a store whose series retain capacity points each.
func NewTSDB(capacity int) *TSDB {
	return &TSDB{capacity: capacity, series: make(map[string]*Series)}
}

// Series returns (creating if needed) the named series.
func (db *TSDB) Series(name string) *Series {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[name]
	if !ok {
		s = NewSeries(db.capacity)
		db.series[name] = s
	}
	return s
}

// Names returns all series names, sorted.
func (db *TSDB) Names() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.series))
	for n := range db.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
