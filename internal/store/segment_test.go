package store

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func secs(i int) time.Duration { return time.Duration(i) * time.Second }

func TestPointCodecRoundTrip(t *testing.T) {
	cases := [][]Point{
		nil,
		{{T: 0, V: 0}},
		{{T: secs(1), V: 20.5}, {T: secs(2), V: 20.5}, {T: secs(3), V: 20.7}},
		{{T: -secs(5), V: -1}, {T: 0, V: math.Inf(1)}, {T: secs(9), V: math.SmallestNonzeroFloat64}},
		// irregular cadence — exercises nonzero delta-of-deltas
		{{T: 1, V: 1}, {T: 100, V: 2}, {T: 101, V: 3}, {T: 5000, V: 4}},
	}
	for i, pts := range cases {
		enc := appendPoints(nil, pts)
		got, used, err := decodePoints(nil, enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if used != len(enc) {
			t.Fatalf("case %d: used %d of %d bytes", i, used, len(enc))
		}
		if len(got) != len(pts) {
			t.Fatalf("case %d: %d points, want %d", i, len(got), len(pts))
		}
		for j := range pts {
			if got[j].T != pts[j].T || math.Float64bits(got[j].V) != math.Float64bits(pts[j].V) {
				t.Fatalf("case %d point %d: %+v != %+v", i, j, got[j], pts[j])
			}
		}
	}
}

func TestPointCodecRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point, 1000)
	tm := time.Duration(0)
	for i := range pts {
		tm += time.Duration(rng.Intn(2000)-3) * time.Millisecond // occasionally backwards
		pts[i] = Point{T: tm, V: rng.NormFloat64() * 100}
	}
	enc := appendPoints(nil, pts)
	got, _, err := decodePoints(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Fatal("random round-trip mismatch")
	}
}

func TestPointCodecCompressesConstantCadence(t *testing.T) {
	// Constant-cadence, slow-drift telemetry is the target workload:
	// the encoding should be far below the 16 raw bytes per point.
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{T: secs(i), V: 20 + float64(i%3)*0.25}
	}
	enc := appendPoints(nil, pts)
	if perPt := float64(len(enc)) / float64(len(pts)); perPt > 8 {
		t.Fatalf("%.1f bytes/point, want <= 8", perPt)
	}
}

func TestDecodePointsTruncated(t *testing.T) {
	enc := appendPoints(nil, []Point{{T: secs(1), V: 1}, {T: secs(2), V: 2}})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodePoints(nil, enc[:cut]); err == nil && cut < len(enc) {
			// A prefix that still parses must at least not claim more
			// points than it holds; the count prefix makes short cuts fail.
			t.Fatalf("truncated to %d bytes decoded without error", cut)
		}
	}
}

func TestSegmentRange(t *testing.T) {
	pts := []Point{{T: secs(1), V: 1}, {T: secs(2), V: 2}, {T: secs(3), V: 3}, {T: secs(4), V: 4}}
	seg, _ := newSegment(pts, nil)
	if seg.Count() != 4 || seg.MinT() != secs(1) || seg.MaxT() != secs(4) {
		t.Fatalf("bounds: n=%d min=%v max=%v", seg.Count(), seg.MinT(), seg.MaxT())
	}
	got := seg.AppendRange(nil, secs(2), secs(4)) // half-open: [2s, 4s)
	if len(got) != 2 || got[0].V != 2 || got[1].V != 3 {
		t.Fatalf("range = %+v", got)
	}
	if got := seg.AppendRange(nil, secs(10), secs(20)); len(got) != 0 {
		t.Fatalf("out-of-bounds range = %+v", got)
	}
}

func TestMergeSegmentsSortsAcross(t *testing.T) {
	a, _ := newSegment([]Point{{T: secs(5), V: 5}, {T: secs(7), V: 7}}, nil)
	b, _ := newSegment([]Point{{T: secs(1), V: 1}, {T: secs(6), V: 6}}, nil)
	merged, _, _ := mergeSegments([]*Segment{a, b}, nil, nil)
	got := merged.AppendAll(nil)
	want := []float64{1, 5, 6, 7}
	if len(got) != 4 {
		t.Fatalf("merged %d points", len(got))
	}
	for i, v := range want {
		if got[i].V != v {
			t.Fatalf("merged[%d] = %+v, want V=%v", i, got[i], v)
		}
	}
}
