package store

import (
	"testing"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/gossip"
	"iiotds/internal/sim"
)

// --- time series ---

func TestSeriesAppendAndLast(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last point")
	}
	for i := 1; i <= 3; i++ {
		s.Append(Point{T: time.Duration(i) * time.Second, V: float64(i)})
	}
	last, ok := s.Last()
	if !ok || last.V != 3 {
		t.Fatalf("Last = %+v", last)
	}
	if s.Len() != 3 || s.Total() != 3 {
		t.Fatalf("Len/Total = %d/%d", s.Len(), s.Total())
	}
}

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries(3)
	for i := 1; i <= 5; i++ {
		s.Append(Point{T: time.Duration(i) * time.Second, V: float64(i)})
	}
	if s.Len() != 3 || s.Total() != 5 {
		t.Fatalf("Len/Total = %d/%d", s.Len(), s.Total())
	}
	pts := s.Range(0, time.Hour)
	if len(pts) != 3 || pts[0].V != 3 || pts[2].V != 5 {
		t.Fatalf("Range = %+v", pts)
	}
	mean, ok := s.Mean()
	if !ok || mean != 4 {
		t.Fatalf("Mean = %v", mean)
	}
}

func TestSeriesRangeBounds(t *testing.T) {
	s := NewSeries(10)
	for i := 0; i < 10; i++ {
		s.Append(Point{T: time.Duration(i) * time.Second, V: float64(i)})
	}
	got := s.Range(3*time.Second, 6*time.Second)
	if len(got) != 3 || got[0].V != 3 || got[2].V != 5 {
		t.Fatalf("Range = %+v", got)
	}
}

func TestSeriesZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestTSDB(t *testing.T) {
	db := NewTSDB(8)
	db.Series("plant/temp").Append(Point{V: 20})
	db.Series("plant/rpm").Append(Point{V: 900})
	if db.Series("plant/temp") != db.Series("plant/temp") {
		t.Fatal("series identity unstable")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "plant/rpm" || names[1] != "plant/temp" {
		t.Fatalf("Names = %v", names)
	}
}

// --- replicated KV ---

type cluster struct {
	k        *sim.Kernel
	net      *gossip.Network
	replicas []*Replica
}

func newCluster(t *testing.T, mode Mode, n int) *cluster {
	t.Helper()
	k := sim.New(3)
	net := gossip.NewNetwork()
	c := &cluster{k: k, net: net}
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		r := NewReplica(net.Attach(name), clock.Kernel{K: k}, ReplicaConfig{
			Mode:        mode,
			ClusterSize: n,
			Gossip:      gossip.Config{Interval: time.Second, Seed: int64(i + 1)},
		})
		c.replicas = append(c.replicas, r)
	}
	return c
}

func TestCPPutGetQuorum(t *testing.T) {
	c := newCluster(t, ModeCP, 3)
	var putErr error = errNotCalled
	c.replicas[0].Put("k", []byte("v1"), func(err error) { putErr = err })
	c.k.RunFor(time.Second)
	if putErr != nil {
		t.Fatalf("Put err = %v", putErr)
	}
	var got []byte
	var getErr error = errNotCalled
	c.replicas[1].Get("k", func(val []byte, err error) { got, getErr = val, err })
	c.k.RunFor(time.Second)
	if getErr != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, getErr)
	}
}

var errNotCalled = ErrUnavailable // sentinel reused; distinct value not needed

func TestCPMinorityPartitionUnavailable(t *testing.T) {
	c := newCluster(t, ModeCP, 5)
	// a,b in minority; c,d,e in majority.
	c.net.SetPartition([]string{"a", "b"}, []string{"c", "d", "e"})
	var minorityErr, majorityErr error
	called := 0
	c.replicas[0].Put("k", []byte("x"), func(err error) { minorityErr = err; called++ })
	c.replicas[2].Put("k", []byte("y"), func(err error) { majorityErr = err; called++ })
	c.k.RunFor(time.Minute)
	if called != 2 {
		t.Fatalf("callbacks = %d", called)
	}
	if minorityErr != ErrUnavailable {
		t.Fatalf("minority Put err = %v, want ErrUnavailable", minorityErr)
	}
	if majorityErr != nil {
		t.Fatalf("majority Put err = %v, want nil", majorityErr)
	}
	if c.replicas[0].OpsFailed != 1 || c.replicas[2].OpsOK != 1 {
		t.Fatalf("stats: failed=%d ok=%d", c.replicas[0].OpsFailed, c.replicas[2].OpsOK)
	}
}

func TestCPReadReturnsNewestVersion(t *testing.T) {
	c := newCluster(t, ModeCP, 3)
	c.replicas[0].Put("k", []byte("v1"), nil)
	c.k.RunFor(time.Second)
	c.replicas[1].Put("k", []byte("v2"), nil)
	c.k.RunFor(time.Second)
	var got []byte
	c.replicas[2].Get("k", func(val []byte, err error) { got = val })
	c.k.RunFor(time.Second)
	if string(got) != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
}

func TestAPAlwaysAvailableUnderPartition(t *testing.T) {
	c := newCluster(t, ModeAP, 4)
	c.net.SetPartition([]string{"a", "b"}, []string{"c", "d"})
	okPuts := 0
	for i, r := range c.replicas {
		r.Put("k", []byte{byte('0' + i)}, func(err error) {
			if err == nil {
				okPuts++
			}
		})
	}
	c.k.RunFor(10 * time.Second)
	if okPuts != 4 {
		t.Fatalf("AP puts ok = %d/4 under partition", okPuts)
	}
	// Reads succeed locally too.
	reads := 0
	for _, r := range c.replicas {
		r.Get("k", func(val []byte, err error) {
			if err == nil {
				reads++
			}
		})
	}
	c.k.RunFor(time.Second)
	if reads != 4 {
		t.Fatalf("AP reads ok = %d/4", reads)
	}
}

func TestAPConvergesAfterHeal(t *testing.T) {
	c := newCluster(t, ModeAP, 4)
	c.net.SetPartition([]string{"a", "b"}, []string{"c", "d"})
	c.k.RunFor(time.Second)
	c.replicas[0].Put("k", []byte("left"), nil)
	c.k.RunFor(2 * time.Second)
	c.replicas[2].Put("k", []byte("right"), nil) // later write wins (LWW)
	c.k.RunFor(10 * time.Second)
	c.net.Heal()
	c.k.RunFor(30 * time.Second)
	want := c.replicas[0].LocalValue("k")
	if string(want) != "right" {
		t.Fatalf("converged value = %q, want right (later write)", want)
	}
	for i, r := range c.replicas {
		if got := r.LocalValue("k"); string(got) != string(want) {
			t.Fatalf("replica %d = %q, want %q", i, got, want)
		}
	}
}

func TestAPGetMissingKey(t *testing.T) {
	c := newCluster(t, ModeAP, 2)
	var got []byte = []byte("sentinel")
	c.replicas[0].Get("nope", func(val []byte, err error) { got = val })
	c.k.RunFor(time.Second)
	if got != nil {
		t.Fatalf("missing key = %q, want nil", got)
	}
}

func TestSingleReplicaCPWorksAlone(t *testing.T) {
	c := newCluster(t, ModeCP, 1)
	var err error = errNotCalled
	c.replicas[0].Put("k", []byte("v"), func(e error) { err = e })
	c.k.RunFor(time.Second)
	if err != nil {
		t.Fatalf("solo Put err = %v", err)
	}
	var got []byte
	c.replicas[0].Get("k", func(val []byte, e error) { got = val })
	c.k.RunFor(time.Second)
	if string(got) != "v" {
		t.Fatalf("solo Get = %q", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeCP.String() != "CP" || ModeAP.String() != "AP" {
		t.Fatal("mode strings wrong")
	}
}
