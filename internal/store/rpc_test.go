package store

import (
	"reflect"
	"testing"
	"time"
)

func rpcFixtures() []rpc {
	return []rpc{
		{Kind: kindWrite, ReqID: 1, Key: "k", Val: []byte("v1"), Ver: 3},
		{Kind: kindWriteAck, ReqID: 1, Key: "k", OK: true},
		{Kind: kindRead, ReqID: 2, Key: "sensor/温度"},
		{Kind: kindReadReply, ReqID: 2, Key: "k", Val: []byte{}, Ver: 9, OK: true},
		{Kind: kindAppend, ReqID: 3, Key: "m/press", Ver: 7,
			Pts: []Point{{T: time.Second, V: 1.5}, {T: 2 * time.Second, V: 1.75}}},
		{Kind: kindAppendAck, ReqID: 3, Key: "m/press", OK: true},
		{Kind: kindRange, ReqID: 4, Key: "m/press", From: -time.Second, To: time.Hour},
		{Kind: kindRangeReply, ReqID: 4, Key: "m/press", Ver: 7, OK: true,
			Pts: []Point{{T: time.Second, V: 1.5}}},
		{Kind: kindSync, Key: "m/press"},
		{Kind: kindSyncReply, Key: "m/press", Ver: 7,
			Pts: []Point{{T: time.Second, V: 1.5}, {T: 2 * time.Second, V: 1.75}}},
	}
}

func TestRPCRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		for _, m := range rpcFixtures() {
			data, release, err := marshalRPC(codec, &m)
			if err != nil {
				t.Fatalf("%s %s: marshal: %v", codec, m.Kind, err)
			}
			got, err := unmarshalRPC(data)
			release()
			if err != nil {
				t.Fatalf("%s %s: unmarshal: %v", codec, m.Kind, err)
			}
			// Normalize zero-length slices: JSON turns them into nil.
			if len(m.Val) == 0 {
				m.Val, got.Val = nil, nil
			}
			if len(m.Pts) == 0 {
				m.Pts, got.Pts = nil, nil
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s %s round-trip:\n got %+v\nwant %+v", codec, m.Kind, got, m)
			}
		}
	}
}

func TestRPCBinaryFramesAreTagged(t *testing.T) {
	m := rpc{Kind: kindWrite, ReqID: 1, Key: "k", Val: []byte("v")}
	data, release, err := marshalRPC(CodecBinary, &m)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != rpcMagic {
		t.Fatalf("binary frame starts with %#x, want %#x", data[0], rpcMagic)
	}
	release()
	// JSON frames never start with the magic byte, so a mixed-codec
	// cluster (debug session) still decodes every message.
	data, release, err = marshalRPC(CodecJSON, &m)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if data[0] == rpcMagic {
		t.Fatal("JSON frame collides with the binary magic byte")
	}
	if _, err := unmarshalRPC(data); err != nil {
		t.Fatalf("JSON frame rejected: %v", err)
	}
}

func TestRPCBinaryRejectsCorruptFrames(t *testing.T) {
	m := rpc{Kind: kindAppend, ReqID: 3, Key: "s", Ver: 1, Pts: []Point{{T: 1, V: 1}}}
	data, release, err := marshalRPC(CodecBinary, &m)
	if err != nil {
		t.Fatal(err)
	}
	enc := append([]byte(nil), data...)
	release()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := unmarshalRPC(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := unmarshalRPC(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[1] = 0xEE // unknown kind code
	if _, err := unmarshalRPC(bad); err == nil {
		t.Fatal("unknown kind code accepted")
	}
}

// BenchmarkRPCCodec is the satellite before/after: the binary codec vs
// the JSON marshalling the CP hot path used before this refactor.
func BenchmarkRPCCodec(b *testing.B) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{T: time.Duration(i) * 50 * time.Millisecond, V: 20 + float64(i%5)*0.25}
	}
	m := rpc{Kind: kindAppend, ReqID: 42, Key: "plant/line3/temp", Ver: 900, Pts: pts}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		b.Run(codec.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, release, err := marshalRPC(codec, &m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := unmarshalRPC(data); err != nil {
					b.Fatal(err)
				}
				release()
			}
		})
	}
}

// BenchmarkRPCEncode isolates the send-side cost (the part the pooled
// buffers eliminate).
func BenchmarkRPCEncode(b *testing.B) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{T: time.Duration(i) * 50 * time.Millisecond, V: 20 + float64(i%5)*0.25}
	}
	m := rpc{Kind: kindAppend, ReqID: 42, Key: "plant/line3/temp", Ver: 900, Pts: pts}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		b.Run(codec.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, release, err := marshalRPC(codec, &m)
				if err != nil || len(data) == 0 {
					b.Fatal(err)
				}
				release()
			}
		})
	}
}
