package store

import (
	"testing"
	"time"

	"iiotds/internal/metrics"
)

// Regression tests for the out-of-order contract on the flat Series
// ring: late samples are stored (arrival-ordered retention), counted,
// surfaced via a labeled metric, and Range repairs the order.

func TestSeriesOutOfOrderDetected(t *testing.T) {
	s := NewSeries(10)
	s.Append(Point{T: secs(1), V: 1})
	s.Append(Point{T: secs(3), V: 3})
	s.Append(Point{T: secs(2), V: 2}) // late
	s.Append(Point{T: secs(3), V: 3.5})
	if s.OutOfOrder() != 1 {
		t.Fatalf("OutOfOrder = %d, want 1 (equal timestamps are in order)", s.OutOfOrder())
	}
	if s.Total() != 4 || s.Len() != 4 {
		t.Fatalf("late sample dropped: Total=%d Len=%d", s.Total(), s.Len())
	}
}

func TestSeriesRangeSortsOutOfOrder(t *testing.T) {
	s := NewSeries(10)
	for _, i := range []int{1, 4, 2, 3} {
		s.Append(Point{T: secs(i), V: float64(i)})
	}
	got := s.Range(0, time.Hour)
	for i, p := range got {
		if p.T != secs(i+1) {
			t.Fatalf("Range not time-sorted: %+v", got)
		}
	}
	// Bounded ranges sort too.
	got = s.Range(secs(2), secs(4))
	if len(got) != 2 || got[0].V != 2 || got[1].V != 3 {
		t.Fatalf("bounded Range = %+v", got)
	}
}

func TestSeriesRangeStableForEqualTimestamps(t *testing.T) {
	s := NewSeries(10)
	s.Append(Point{T: secs(2), V: 1}) // first arrival at T=2s
	s.Append(Point{T: secs(1), V: 0}) // late: forces the sort path
	s.Append(Point{T: secs(2), V: 2}) // second arrival at T=2s
	got := s.Range(0, time.Hour)
	if len(got) != 3 || got[0].V != 0 || got[1].V != 1 || got[2].V != 2 {
		t.Fatalf("equal-T arrival order broken: %+v", got)
	}
}

func TestSeriesRangeInOrderFastPathUnchanged(t *testing.T) {
	// With no out-of-order arrivals Range stays the plain arrival-order
	// scan (the pre-refactor behavior).
	s := NewSeries(5)
	for i := 0; i < 8; i++ { // wraps the ring
		s.Append(Point{T: secs(i), V: float64(i)})
	}
	got := s.Range(0, time.Hour)
	if len(got) != 5 || got[0].V != 3 || got[4].V != 7 {
		t.Fatalf("Range = %+v", got)
	}
	if s.OutOfOrder() != 0 {
		t.Fatalf("OutOfOrder = %d on in-order input", s.OutOfOrder())
	}
}

func TestSeriesOutOfOrderEvictionKeepsArrivalRetention(t *testing.T) {
	// Retention evicts the oldest arrival, not the oldest timestamp: a
	// late-but-retained sample survives an earlier-arrived newer one.
	s := NewSeries(2)
	s.Append(Point{T: secs(5), V: 5})
	s.Append(Point{T: secs(1), V: 1}) // late
	s.Append(Point{T: secs(6), V: 6}) // evicts the T=5s sample (oldest arrival)
	got := s.Range(0, time.Hour)
	if len(got) != 2 || got[0].T != secs(1) || got[1].T != secs(6) {
		t.Fatalf("retained = %+v", got)
	}
}

func TestSeriesOutOfOrderLabeledMetric(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSeries(10)
	s.SetMetrics(reg, "plant/temp")
	s.Append(Point{T: secs(2), V: 2})
	s.Append(Point{T: secs(1), V: 1})
	s.Append(Point{T: secs(3), V: 3})
	s.Append(Point{T: secs(1), V: 1})
	ctr := reg.CounterWith("store_ooo_points", metrics.L("series", "plant/temp"))
	if got := ctr.Value(); got != 2 {
		t.Fatalf("store_ooo_points{series=plant/temp} = %v, want 2", got)
	}
}
