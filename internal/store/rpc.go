package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// The CP replication wire format. The original implementation JSON-
// marshalled every quorum RPC, which put encoding/json allocations on
// the ingest hot path; the default is now a compact binary codec with
// pooled encode buffers (appendRPC/parseRPC below). JSON survives as a
// debug option (CodecJSON) — switch it on to read RPC payloads off a
// wire dump — and as the before/after baseline for the codec benchmark
// (BenchmarkRPCCodec).

// Codec selects the CP wire encoding.
type Codec uint8

// Codecs.
const (
	// CodecBinary is the default compact binary framing.
	CodecBinary Codec = iota
	// CodecJSON is the debug encoding (human-readable payloads).
	CodecJSON
)

// String names the codec.
func (c Codec) String() string {
	if c == CodecJSON {
		return "json"
	}
	return "binary"
}

// RPC kinds. The string values are the JSON wire names (and the
// pre-refactor format); the binary codec maps them to one byte.
const (
	kindWrite      = "write"
	kindWriteAck   = "write_ack"
	kindRead       = "read"
	kindReadReply  = "read_reply"
	kindAppend     = "append"
	kindAppendAck  = "append_ack"
	kindRange      = "range"
	kindRangeReply = "range_reply"
	kindSync       = "sync"
	kindSyncReply  = "sync_reply"
)

var kindCodes = map[string]byte{
	kindWrite: 1, kindWriteAck: 2, kindRead: 3, kindReadReply: 4,
	kindAppend: 5, kindAppendAck: 6, kindRange: 7, kindRangeReply: 8,
	kindSync: 9, kindSyncReply: 10,
}

var kindNames = func() map[byte]string {
	m := make(map[byte]string, len(kindCodes))
	for k, v := range kindCodes {
		m[v] = k
	}
	return m
}()

// rpc is one CP message. Val carries KV payloads; Pts carries
// time-series batches (appends and range replies) in the shared
// point-stream encoding; From/To bound range requests.
type rpc struct {
	Kind  string        `json:"kind"`
	ReqID uint64        `json:"req_id"`
	Key   string        `json:"key"`
	Val   []byte        `json:"val,omitempty"`
	Ver   uint64        `json:"ver"`
	OK    bool          `json:"ok"`
	Pts   []Point       `json:"pts,omitempty"`
	From  time.Duration `json:"from,omitempty"`
	To    time.Duration `json:"to,omitempty"`
}

// rpcMagic tags binary frames so the two codecs cannot be confused:
// 0xB5 is not a valid first byte of any JSON document.
const rpcMagic = 0xB5

const (
	rpcFlagOK     = 1 << 0
	rpcFlagHasVal = 1 << 1
)

// appendRPC encodes m onto dst in the binary framing.
func appendRPC(dst []byte, m *rpc) ([]byte, error) {
	code, ok := kindCodes[m.Kind]
	if !ok {
		return dst, fmt.Errorf("store: unknown rpc kind %q", m.Kind)
	}
	var flags byte
	if m.OK {
		flags |= rpcFlagOK
	}
	if m.Val != nil {
		flags |= rpcFlagHasVal
	}
	dst = append(dst, rpcMagic, code, flags)
	dst = binary.AppendUvarint(dst, m.ReqID)
	dst = binary.AppendUvarint(dst, m.Ver)
	dst = binary.AppendUvarint(dst, uint64(len(m.Key)))
	dst = append(dst, m.Key...)
	if m.Val != nil {
		dst = binary.AppendUvarint(dst, uint64(len(m.Val)))
		dst = append(dst, m.Val...)
	}
	dst = binary.AppendUvarint(dst, zigzag(int64(m.From)))
	dst = binary.AppendUvarint(dst, zigzag(int64(m.To)))
	dst = appendPoints(dst, m.Pts)
	return dst, nil
}

// parseRPC decodes a binary frame.
func parseRPC(data []byte) (rpc, error) {
	var m rpc
	if len(data) < 3 || data[0] != rpcMagic {
		return m, fmt.Errorf("store: not a binary rpc frame")
	}
	kind, ok := kindNames[data[1]]
	if !ok {
		return m, fmt.Errorf("store: unknown rpc kind code %d", data[1])
	}
	m.Kind = kind
	flags := data[2]
	m.OK = flags&rpcFlagOK != 0
	off := 3
	uv := func() uint64 {
		if off < 0 {
			return 0
		}
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			off = -1
			return 0
		}
		off += n
		return v
	}
	m.ReqID = uv()
	m.Ver = uv()
	klen := uv()
	if off < 0 || klen > uint64(len(data)-off) {
		return rpc{}, fmt.Errorf("store: truncated rpc frame")
	}
	m.Key = string(data[off : off+int(klen)])
	off += int(klen)
	if flags&rpcFlagHasVal != 0 {
		vlen := uv()
		if off < 0 || vlen > uint64(len(data)-off) {
			return rpc{}, fmt.Errorf("store: truncated rpc value")
		}
		m.Val = append([]byte(nil), data[off:off+int(vlen)]...)
		off += int(vlen)
	}
	m.From = time.Duration(unzigzag(uv()))
	m.To = time.Duration(unzigzag(uv()))
	if off < 0 {
		return rpc{}, fmt.Errorf("store: truncated rpc frame")
	}
	pts, used, err := decodePoints(nil, data[off:])
	if err != nil {
		return rpc{}, err
	}
	off += used
	if off != len(data) {
		return rpc{}, fmt.Errorf("store: %d trailing bytes in rpc frame", len(data)-off)
	}
	m.Pts = pts
	return m, nil
}

// rpcBufPool recycles encode buffers across sends. The replica may run
// on the wall clock (System scheduler) where sends race, so this is a
// sync.Pool rather than the kernel-local freelists of internal/netbuf.
var rpcBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// marshalRPC encodes m under the selected codec. The returned release
// func recycles the buffer; callers must not retain data after calling
// it (the in-memory gossip fabric and the CoAP transport both copy on
// send, see gossip.Messenger).
func marshalRPC(c Codec, m *rpc) (data []byte, release func(), err error) {
	if c == CodecJSON {
		data, err = json.Marshal(m)
		return data, func() {}, err
	}
	bp := rpcBufPool.Get().(*[]byte)
	buf, err := appendRPC((*bp)[:0], m)
	if err != nil {
		rpcBufPool.Put(bp)
		return nil, nil, err
	}
	*bp = buf
	return buf, func() { rpcBufPool.Put(bp) }, nil
}

// unmarshalRPC decodes either framing: binary frames are tagged with
// rpcMagic, anything else is treated as the JSON debug encoding — so a
// cluster can be flipped to CodecJSON for a debug session without a
// flag-day (replicas accept both at all times).
func unmarshalRPC(data []byte) (rpc, error) {
	if len(data) > 0 && data[0] == rpcMagic {
		return parseRPC(data)
	}
	var m rpc
	if err := json.Unmarshal(data, &m); err != nil {
		return rpc{}, err
	}
	return m, nil
}
