package store

import (
	"testing"
	"time"
)

func TestEngineAppendRangeAcrossSegments(t *testing.T) {
	e := NewSeriesEngine(4) // tiny segments: closes every 4 points
	for i := 0; i < 10; i++ {
		e.Append(Point{T: secs(i), V: float64(i)})
	}
	if e.Len() != 10 || e.Total() != 10 {
		t.Fatalf("Len/Total = %d/%d", e.Len(), e.Total())
	}
	st := e.Stats()
	if st.ClosedSegs != 2 || st.OpenPoints != 2 {
		t.Fatalf("segments: %+v", st)
	}
	got := e.Range(secs(3), secs(8)) // spans closed/closed/open
	if len(got) != 5 {
		t.Fatalf("range = %d points", len(got))
	}
	for i, p := range got {
		if p.V != float64(i+3) {
			t.Fatalf("range[%d] = %+v", i, p)
		}
	}
}

func TestEngineOutOfOrderCountedAndSorted(t *testing.T) {
	e := NewSeriesEngine(4)
	times := []int{1, 2, 5, 3, 4, 8, 6, 7} // late arrivals: 3, 4 (after 5) and 6, 7 (after 8)
	for _, i := range times {
		e.Append(Point{T: secs(i), V: float64(i)})
	}
	if e.OutOfOrder() != 4 {
		t.Fatalf("OutOfOrder = %d, want 4", e.OutOfOrder())
	}
	got := e.Range(0, time.Hour)
	for i, p := range got {
		if p.T != secs(i+1) {
			t.Fatalf("range not time-sorted at %d: %+v", i, got)
		}
	}
}

func TestEngineEqualTimestampsKeepArrivalOrder(t *testing.T) {
	e := NewSeriesEngine(3)
	for i := 0; i < 7; i++ {
		e.Append(Point{T: secs(1), V: float64(i)}) // all equal T
	}
	got := e.Range(0, time.Hour)
	for i, p := range got {
		if p.V != float64(i) {
			t.Fatalf("equal-T arrival order broken: %+v", got)
		}
	}
}

func TestEngineFlushClosesHead(t *testing.T) {
	e := NewSeriesEngine(100)
	e.Append(Point{T: secs(1), V: 1})
	e.Append(Point{T: secs(2), V: 2})
	if st := e.Stats(); st.OpenPoints != 2 || st.ClosedSegs != 0 {
		t.Fatalf("pre-flush: %+v", st)
	}
	e.Flush()
	if st := e.Stats(); st.OpenPoints != 0 || st.ClosedSegs != 1 {
		t.Fatalf("post-flush: %+v", st)
	}
	if got := e.Range(0, time.Hour); len(got) != 2 {
		t.Fatalf("post-flush range = %+v", got)
	}
}

func TestEngineSizeTieredCompaction(t *testing.T) {
	e := NewSeriesEngine(2)
	// 2*compactFanIn segments of 2 points each: one compaction fires.
	for i := 0; i < 2*2*compactFanIn; i++ {
		e.Append(Point{T: secs(i), V: float64(i)})
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d closes: %+v", st.SegsClosed, st)
	}
	if st.ClosedSegs >= int(st.SegsClosed) {
		t.Fatalf("compaction did not shrink segment count: %+v", st)
	}
	if e.Len() != 2*2*compactFanIn {
		t.Fatalf("points lost in compaction: %d", e.Len())
	}
}

func TestEngineForceCompact(t *testing.T) {
	e := NewSeriesEngine(2)
	for i := 0; i < 10; i++ {
		e.Append(Point{T: secs(i), V: float64(i)})
	}
	e.Flush()
	e.Compact()
	if st := e.Stats(); st.ClosedSegs != 1 {
		t.Fatalf("Compact left %d segments", st.ClosedSegs)
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d after Compact", e.Len())
	}
}

func TestEngineRetention(t *testing.T) {
	e := NewSeriesEngine(2)
	e.SetRetention(2) // keep at most 2 closed segments
	for i := 0; i < 12; i++ {
		e.Append(Point{T: secs(i), V: float64(i)})
	}
	st := e.Stats()
	if st.ClosedSegs > 2 {
		t.Fatalf("retention not enforced: %+v", st)
	}
	if st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if e.Len()+int(st.Evicted) != 12 {
		t.Fatalf("retained %d + evicted %d != 12", e.Len(), st.Evicted)
	}
	// The newest points survive.
	got := e.Range(0, time.Hour)
	if got[len(got)-1].V != 11 {
		t.Fatalf("newest point evicted: %+v", got)
	}
}

func TestEngineDigestSegmentationIndependent(t *testing.T) {
	// Same points, different close/compact timing -> same digest.
	a := NewSeriesEngine(4)
	b := NewSeriesEngine(64)
	for i := 0; i < 50; i++ {
		p := Point{T: secs(i), V: float64(i)}
		a.Append(p)
		b.Append(p)
	}
	a.Flush()
	a.Compact()
	if da, db := a.digest(fnvOffset), b.digest(fnvOffset); da != db {
		t.Fatalf("digest depends on segmentation: %x != %x", da, db)
	}
	b.Append(Point{T: secs(50), V: 50})
	if da, db := a.digest(fnvOffset), b.digest(fnvOffset); da == db {
		t.Fatal("digest blind to extra point")
	}
}

// TestBatchedAppendZeroAllocs is the CI allocation gate for the ingest
// hot path: appending batches into an open head (no segment close in
// the measured window) must not allocate. Closing a segment is the
// amortized slow path — encode buffer and segment bytes — exactly like
// the netbuf pool refill.
func TestBatchedAppendZeroAllocs(t *testing.T) {
	e := NewSeriesEngine(1 << 20)
	batch := make([]Point, 16)
	var tm time.Duration
	fill := func() {
		for i := range batch {
			tm += time.Millisecond
			batch[i] = Point{T: tm, V: float64(i)}
		}
	}
	fill()
	e.AppendBatch(batch) // touch once so the head exists
	allocs := testing.AllocsPerRun(1000, func() {
		fill()
		e.AppendBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	e := NewSeriesEngine(0)
	batch := make([]Point, 64)
	var tm time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			tm += time.Millisecond
			batch[j] = Point{T: tm, V: float64(j)}
		}
		e.AppendBatch(batch)
	}
}
