package store

import "sync/atomic"

// Appender is the batched ingest front of a Sharded store: points
// accumulate in per-series batches (preallocated to the configured
// batch size) and flush to the owning shard's coordinator when a batch
// fills, so the per-point hot path is a map lookup and a slice append —
// zero allocations at steady state (CI-gated). One Appender serves one
// producer; it is not safe for concurrent use, but its completion
// counters are atomic so CP acks landing from scheduler callbacks are
// counted safely.
type Appender struct {
	s         *Sharded
	batchSize int
	batches   map[string]*batch
	order     []string // first-touch order: deterministic Flush sequence
	done      func(err error)

	// Last-series cache: producers overwhelmingly append runs of the
	// same series, so the common case skips the map lookup entirely
	// (string equality on an identical pointer is one comparison).
	lastSeries string
	lastBatch  *batch

	acked  atomic.Uint64
	failed atomic.Uint64
}

type batch struct {
	pts []Point
}

// NewAppender creates an appender batching at the store's configured
// batch size.
func (s *Sharded) NewAppender() *Appender {
	a := &Appender{
		s:         s,
		batchSize: s.batchSize,
		batches:   make(map[string]*batch),
	}
	a.done = func(err error) {
		if err != nil {
			a.failed.Add(1)
		} else {
			a.acked.Add(1)
		}
	}
	return a
}

// Append buffers one point for series, flushing the series' batch to
// its shard when full.
func (a *Appender) Append(series string, p Point) {
	b := a.lastBatch
	if b == nil || series != a.lastSeries {
		var ok bool
		b, ok = a.batches[series]
		if !ok {
			b = &batch{pts: make([]Point, 0, a.batchSize)}
			a.batches[series] = b
			a.order = append(a.order, series)
		}
		a.lastSeries, a.lastBatch = series, b
	}
	b.pts = append(b.pts, p)
	if len(b.pts) >= a.batchSize {
		a.flush(series, b)
	}
}

func (a *Appender) flush(series string, b *batch) {
	a.s.Ingest(series, b.pts, a.done)
	b.pts = b.pts[:0] // Ingest does not retain the batch
}

// Flush pushes every non-empty batch, in first-touch series order.
func (a *Appender) Flush() {
	for _, series := range a.order {
		if b := a.batches[series]; len(b.pts) > 0 {
			a.flush(series, b)
		}
	}
}

// Acked returns how many flushed batches completed successfully.
func (a *Appender) Acked() uint64 { return a.acked.Load() }

// Failed returns how many flushed batches failed (CP quorum loss).
func (a *Appender) Failed() uint64 { return a.failed.Load() }
