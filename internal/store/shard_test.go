package store

import (
	"fmt"
	"testing"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/metrics"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

func newSharded(t *testing.T, shards, replicas int, mode Mode) (*Sharded, *sim.Kernel) {
	t.Helper()
	k := sim.New(3)
	s := NewSharded(clock.Kernel{K: k}, ShardedConfig{
		Shards: shards,
		Policy: ShardPolicy{Mode: mode, Replicas: replicas},
		Seed:   7,
		Node:   -1,
	})
	t.Cleanup(s.Stop)
	return s, k
}

func ingestN(s *Sharded, series []string, n int) {
	a := s.NewAppender()
	for i := 0; i < n; i++ {
		for _, name := range series {
			a.Append(name, Point{T: time.Duration(i) * 100 * time.Millisecond, V: float64(i)})
		}
	}
	a.Flush()
}

func testSeries(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("plant/line%d/temp", i)
	}
	return out
}

func TestShardOfStableAndSpread(t *testing.T) {
	s, _ := newSharded(t, 8, 1, ModeAP)
	hit := make(map[int]bool)
	for _, name := range testSeries(64) {
		a, b := s.ShardOf(name), s.ShardOf(name)
		if a != b || a < 0 || a >= 8 {
			t.Fatalf("ShardOf(%q) unstable or out of range: %d/%d", name, a, b)
		}
		hit[a] = true
	}
	if len(hit) < 6 { // 64 keys over 8 shards: expect most shards used
		t.Fatalf("FNV routing collapsed to %d/8 shards", len(hit))
	}
}

func TestShardedAPIngestConvergesNoDuplicates(t *testing.T) {
	s, k := newSharded(t, 4, 3, ModeAP)
	series := testSeries(8)
	ingestN(s, series, 100)
	k.RunFor(30 * time.Second) // anti-entropy rounds
	if !s.Converged() {
		t.Fatalf("converged %d/%d shards", s.ConvergedShards(), s.NumShards())
	}
	// Every point ingested exactly once per replica: coordinator totals
	// across shards must equal the 8*100 appended, and every replica in
	// a shard must match its coordinator (digest equality above), so
	// gossip re-delivery added no duplicates.
	if got := s.Stats().TotalPoints(); got != 8*100 {
		t.Fatalf("coordinator points = %d, want %d", got, 8*100)
	}
	for i := 0; i < s.NumShards(); i++ {
		sh := s.Shard(i)
		want := sh.Coordinator().SeriesStats().Points
		for j, r := range sh.Replicas {
			if got := r.SeriesStats().Points; got != want {
				t.Fatalf("shard %d replica %d points = %d, coordinator %d", i, j, got, want)
			}
		}
	}
}

func TestShardedAPPartitionHealConverges(t *testing.T) {
	s, k := newSharded(t, 2, 3, ModeAP)
	series := testSeries(4)
	ingestN(s, series, 10)
	k.RunFor(10 * time.Second)
	s.PartitionReplica(2)
	ingestN(s, series, 10) // AP ingest keeps succeeding
	k.RunFor(10 * time.Second)
	if s.Converged() {
		t.Fatal("converged across an active partition")
	}
	s.Heal()
	k.RunFor(30 * time.Second)
	if !s.Converged() {
		t.Fatalf("not converged after heal: %d/%d shards", s.ConvergedShards(), s.NumShards())
	}
}

func TestShardedCPQuorumIngestAndFollowerCatchUp(t *testing.T) {
	s, k := newSharded(t, 2, 3, ModeCP)
	series := testSeries(4)
	a := s.NewAppender()
	for i := 0; i < 100; i++ {
		for _, name := range series {
			a.Append(name, Point{T: time.Duration(i) * time.Second, V: float64(i)})
		}
	}
	a.Flush()
	k.RunFor(time.Minute)
	if a.Failed() != 0 {
		t.Fatalf("healthy CP ingest failed %d batches", a.Failed())
	}
	if !s.Converged() {
		t.Fatal("CP shards not converged after quorum ingest")
	}
	// Cut a follower out: quorum 2/3 holds, ingest keeps succeeding.
	s.PartitionReplica(2)
	for i := 100; i < 120; i++ {
		for _, name := range series {
			a.Append(name, Point{T: time.Duration(i) * time.Second, V: float64(i)})
		}
	}
	a.Flush()
	k.RunFor(time.Minute)
	if a.Failed() != 0 {
		t.Fatalf("CP ingest with majority failed %d batches", a.Failed())
	}
	if s.Converged() {
		t.Fatal("stale follower counted as converged")
	}
	// Heal; the next append hits the stale follower with a version gap,
	// which triggers the full-series sync catch-up.
	s.Heal()
	for _, name := range series {
		a.Append(name, Point{T: 120 * time.Second, V: 120})
	}
	a.Flush()
	k.RunFor(time.Minute)
	if !s.Converged() {
		t.Fatalf("follower did not catch up after heal: %d/%d shards", s.ConvergedShards(), s.NumShards())
	}
}

func TestShardedCPCoordinatorPartitionUnavailable(t *testing.T) {
	s, k := newSharded(t, 2, 3, ModeCP)
	series := testSeries(4)
	ingestN(s, series, 10)
	k.RunFor(10 * time.Second)
	s.PartitionReplica(0) // isolate every coordinator: no quorum
	a := s.NewAppender()
	for _, name := range series {
		a.Append(name, Point{T: 100 * time.Second, V: 1})
	}
	a.Flush()
	k.RunFor(time.Minute) // quorum timeouts fire
	if a.Failed() != uint64(len(series)) {
		t.Fatalf("minority CP ingest: %d failed, want %d", a.Failed(), len(series))
	}
	// Heal + explicit repair reconverges even with no further appends.
	s.Heal()
	s.Repair()
	k.RunFor(time.Minute)
	if !s.Converged() {
		t.Fatalf("CP shards not repaired after heal: %d/%d", s.ConvergedShards(), s.NumShards())
	}
}

func TestShardedPerShardPolicyOverride(t *testing.T) {
	k := sim.New(3)
	s := NewSharded(clock.Kernel{K: k}, ShardedConfig{
		Shards:   2,
		Policy:   ShardPolicy{Mode: ModeAP, Replicas: 3},
		PerShard: map[int]ShardPolicy{1: {Mode: ModeCP, Replicas: 5}},
		Node:     -1,
	})
	defer s.Stop()
	if s.Shard(0).Policy.Mode != ModeAP || len(s.Shard(0).Replicas) != 3 {
		t.Fatalf("shard 0 policy: %+v", s.Shard(0).Policy)
	}
	if s.Shard(1).Policy.Mode != ModeCP || len(s.Shard(1).Replicas) != 5 {
		t.Fatalf("shard 1 override ignored: %+v", s.Shard(1).Policy)
	}
}

func TestShardedRangeQuery(t *testing.T) {
	for _, mode := range []Mode{ModeCP, ModeAP} {
		s, k := newSharded(t, 4, 3, mode)
		name := "plant/line1/temp"
		var pts []Point
		for i := 0; i < 50; i++ {
			pts = append(pts, Point{T: time.Duration(i) * time.Second, V: float64(i)})
		}
		s.Ingest(name, pts, nil)
		k.RunFor(30 * time.Second)
		var got []Point
		var gotErr error
		s.Range(name, 10*time.Second, 20*time.Second, func(p []Point, err error) { got, gotErr = p, err })
		k.RunFor(10 * time.Second)
		if gotErr != nil {
			t.Fatalf("%v Range err: %v", mode, gotErr)
		}
		if len(got) != 10 || got[0].V != 10 || got[9].V != 19 {
			t.Fatalf("%v Range = %d points %+v", mode, len(got), got)
		}
		s.Stop()
	}
}

func TestShardedCPRangeFreshestWins(t *testing.T) {
	s, k := newSharded(t, 1, 3, ModeCP)
	name := "m"
	s.Ingest(name, []Point{{T: secs(1), V: 1}}, nil)
	k.RunFor(5 * time.Second)
	// Stale follower: cut replica 2, append more, heal. Replica 2 now
	// holds version 1 while the quorum holds version 2.
	s.PartitionReplica(2)
	s.Ingest(name, []Point{{T: secs(2), V: 2}}, nil)
	k.RunFor(5 * time.Second)
	s.Heal()
	// A quorum range through the coordinator must return the fresh data
	// regardless of the stale follower's reply.
	var got []Point
	s.Range(name, 0, time.Hour, func(p []Point, err error) { got = p })
	k.RunFor(5 * time.Second)
	if len(got) != 2 {
		t.Fatalf("freshest-wins range = %+v", got)
	}
}

func TestAppenderBatchesAndFlushOrder(t *testing.T) {
	s, _ := newSharded(t, 2, 1, ModeCP)
	a := s.NewAppender()
	// Below the batch size nothing is ingested...
	for i := 0; i < 10; i++ {
		a.Append("x", Point{T: secs(i), V: float64(i)})
	}
	if got := s.Stats().TotalPoints(); got != 0 {
		t.Fatalf("ingested %d points before batch filled", got)
	}
	// ...the 64th point triggers the flush.
	for i := 10; i < 64; i++ {
		a.Append("x", Point{T: secs(i), V: float64(i)})
	}
	if got := s.Stats().TotalPoints(); got != 64 {
		t.Fatalf("batch flush ingested %d, want 64", got)
	}
	// Manual flush drains partial batches.
	a.Append("y", Point{T: 0, V: 1})
	a.Append("x", Point{T: secs(64), V: 64})
	a.Flush()
	if got := s.Stats().TotalPoints(); got != 66 {
		t.Fatalf("after Flush: %d, want 66", got)
	}
	if a.Acked() != 3 || a.Failed() != 0 {
		t.Fatalf("acked/failed = %d/%d", a.Acked(), a.Failed())
	}
}

// TestAppenderZeroAllocs is the CI gate for the full batched ingest
// path: Appender.Append → Sharded.Ingest → coordinator AppendPoints →
// engine AppendBatch, on a single-replica shard (no quorum round). At
// steady state — batches recycled, head within capacity — the path
// must not allocate.
func TestAppenderZeroAllocs(t *testing.T) {
	k := sim.New(3)
	s := NewSharded(clock.Kernel{K: k}, ShardedConfig{
		Shards:      1,
		Policy:      ShardPolicy{Mode: ModeCP, Replicas: 1},
		SegmentSize: 1 << 20, // no segment close inside the measured window
		Node:        -1,
	})
	defer s.Stop()
	a := s.NewAppender()
	var tm time.Duration
	append64 := func() {
		for i := 0; i < 64; i++ { // exactly one batch: one flush per run
			tm += time.Millisecond
			a.Append("plant/temp", Point{T: tm, V: 1.5})
		}
	}
	append64() // warm: create the batch, the series, the engine head
	allocs := testing.AllocsPerRun(2000, append64)
	if allocs != 0 {
		t.Fatalf("batched ingest allocs per 64-point batch = %v, want 0", allocs)
	}
}

func TestShardedTraceAndMetrics(t *testing.T) {
	k := sim.New(3)
	rec := trace.New(256, func() trace.Time { return k.Now() })
	reg := metrics.NewRegistry()
	s := NewSharded(clock.Kernel{K: k}, ShardedConfig{
		Shards:  2,
		Policy:  ShardPolicy{Mode: ModeAP, Replicas: 2},
		Seed:    3,
		Rec:     rec,
		Metrics: reg,
		Node:    -1,
	})
	defer s.Stop()
	series := testSeries(4)
	ingestN(s, series, 100)
	k.RunFor(20 * time.Second)
	s.Flush()
	s.Compact()
	if n := rec.Count(trace.StoreAppend); n == 0 {
		t.Fatal("no StoreAppend events")
	}
	if n := rec.Count(trace.StoreAntiEntropy); n == 0 {
		t.Fatal("no StoreAntiEntropy events")
	}
	if n := rec.Count(trace.StoreFlush); n == 0 {
		t.Fatal("no StoreFlush events")
	}
	total := 0.0
	for i := 0; i < 2; i++ {
		total += reg.CounterWith("store_ingest_points",
			metrics.L("shard", fmt.Sprint(i)), metrics.L("mode", "AP")).Value()
	}
	if total != 400 {
		t.Fatalf("store_ingest_points = %v, want 400", total)
	}
}

// --- ingest throughput: single replica vs sharded (BENCH_store.json) ---

// benchIngest measures readings/sec through the store's write path.
// batched=false reproduces the pre-refactor shape — every reading is an
// individual replicated append (per-reading routing, locking, and
// completion), which is how the single-replica toy tier absorbed
// telemetry. batched=true runs the new Appender pipeline: per-series
// batches amortize routing and locks over BatchSize points and land in
// the engine as one bulk copy. The CI host is a single core, so any
// speedup recorded here is algorithmic (batching + bulk segment
// appends), not hardware parallelism.
func benchIngest(b *testing.B, shards, replicas, producers int, mode Mode, batched bool) {
	// Wall clock: throughput benchmarks measure real ingest rates, and
	// the System scheduler is safe for concurrent producers (the sim
	// kernel is single-threaded by design).
	s := NewSharded(&clock.System{}, ShardedConfig{
		Shards:         shards,
		Policy:         ShardPolicy{Mode: mode, Replicas: replicas},
		GossipInterval: time.Hour, // measure the ingest path, not anti-entropy
		Node:           -1,
	})
	defer s.Stop()
	perProducer := b.N / producers
	if perProducer == 0 {
		perProducer = 1
	}
	// One producer per shard: pick series names that hash onto distinct
	// shards so the benchmark measures P-way ingest, not hash collisions
	// piling producers onto one coordinator.
	names := make([]string, producers)
	for p := range names {
		for probe := 0; ; probe++ {
			name := fmt.Sprintf("plant/line%d/%d/temp", p, probe)
			if s.ShardOf(name) == p%shards {
				names[p] = name
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{}, producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			series := names[p]
			if batched {
				a := s.NewAppender()
				for i := 0; i < perProducer; i++ {
					a.Append(series, Point{T: time.Duration(i) * time.Millisecond, V: float64(i)})
				}
				a.Flush()
			} else {
				one := make([]Point, 1)
				for i := 0; i < perProducer; i++ {
					one[0] = Point{T: time.Duration(i) * time.Millisecond, V: float64(i)}
					s.Ingest(series, one, nil)
				}
			}
			done <- struct{}{}
		}(p)
	}
	for p := 0; p < producers; p++ {
		<-done
	}
	b.StopTimer()
	b.ReportMetric(float64(perProducer*producers)/b.Elapsed().Seconds(), "readings/s")
}

// BenchmarkIngestSingleReplica is the pre-refactor baseline: one
// unsharded replica, one reading per append.
func BenchmarkIngestSingleReplica(b *testing.B) { benchIngest(b, 1, 1, 1, ModeCP, false) }

// BenchmarkIngestUnshardedCPUnbatched is the serializing replicated
// baseline the refactor is measured against (the 2PC-redundant-storage
// shape): one unsharded 3-replica CP group, every reading an individual
// quorum round.
func BenchmarkIngestUnshardedCPUnbatched(b *testing.B) { benchIngest(b, 1, 3, 1, ModeCP, false) }

// BenchmarkIngestSingleReplicaBatched isolates the batching win on the
// same single-replica topology.
func BenchmarkIngestSingleReplicaBatched(b *testing.B) { benchIngest(b, 1, 1, 1, ModeCP, true) }

func BenchmarkIngestSharded8AP(b *testing.B) { benchIngest(b, 8, 3, 8, ModeAP, true) }

func BenchmarkIngestSharded8CP(b *testing.B) { benchIngest(b, 8, 3, 8, ModeCP, true) }
