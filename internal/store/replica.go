package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/crdt"
	"iiotds/internal/gossip"
	"iiotds/internal/netbuf"
)

// Mode selects the replica's consistency/availability trade-off.
type Mode int

// Available modes.
const (
	// ModeCP is quorum-based: reads and writes require a majority of
	// replicas and fail (ErrUnavailable) in a minority partition —
	// consistent but not available under partition.
	ModeCP Mode = iota
	// ModeAP is CRDT-based: reads and writes always succeed locally and
	// anti-entropy gossip converges replicas when connectivity allows —
	// available but only eventually consistent.
	ModeAP
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeCP {
		return "CP"
	}
	return "AP"
}

// ParseMode parses "cp"/"CP" or "ap"/"AP".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "cp", "CP":
		return ModeCP, nil
	case "ap", "AP":
		return ModeAP, nil
	}
	return ModeCP, fmt.Errorf("store: unknown mode %q (want cp or ap)", s)
}

// ErrUnavailable is returned by CP operations that cannot reach a quorum
// — Brewer's CAP trade-off made concrete (paper ref [43]).
var ErrUnavailable = errors.New("store: quorum unavailable")

// ReplicaConfig tunes a replica.
type ReplicaConfig struct {
	Mode Mode
	// ClusterSize is the total number of replicas (for quorum math).
	ClusterSize int
	// QuorumTimeout bounds CP operations (default 2 s).
	QuorumTimeout time.Duration
	// Gossip tunes AP anti-entropy.
	Gossip gossip.Config
	// Codec selects the CP wire encoding (default CodecBinary;
	// CodecJSON is the debug option).
	Codec Codec
	// SegmentSize is the series-engine points-per-segment
	// (0 = DefaultSegmentSize).
	SegmentSize int
}

func (c *ReplicaConfig) applyDefaults() {
	if c.QuorumTimeout == 0 {
		c.QuorumTimeout = 2 * time.Second
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 1
	}
}

// Time bounds wide enough to cover any retained point; used for
// whole-series ranges (sync, digests).
const (
	minTime = time.Duration(-1 << 62)
	maxTime = time.Duration(1 << 62)
)

// versioned is a CP-mode stored value.
type versioned struct {
	Val []byte `json:"val"`
	Ver uint64 `json:"ver"`
}

// cpSeries is one CP-mode time series: version = accepted append
// batches from the series' single coordinator (Sharded routes every
// append for a series through replica 0 of its shard, so versions are
// totally ordered and a gap can only mean a missed batch across a
// partition — which triggers a full-series sync).
type cpSeries struct {
	ver uint64
	eng *SeriesEngine
}

// pendingOp collects quorum responses.
type pendingOp struct {
	needed  int
	acks    int
	bestVer uint64
	bestVal []byte
	bestPts []Point
	done    func(val []byte, err error)
	donePts func(pts []Point, err error)
	cancel  clock.CancelFunc
}

func (op *pendingOp) complete(err error) {
	if op.donePts != nil {
		op.donePts(op.bestPts, err)
		return
	}
	op.done(op.bestVal, err)
}

// apState is the AP-mode CRDT state; it implements gossip.State. KV
// keys are LWW registers (as before); time series are per-origin
// grow-only append logs — each origin's log is an immutable-prefix
// sequence, so anti-entropy merge is "adopt the remote suffix when the
// remote log is longer", which is commutative, associative, and
// idempotent (re-delivered snapshots add nothing). A per-series
// SeriesEngine holds the merged view for range queries.
type apState struct {
	mu      sync.Mutex
	regs    map[string]*crdt.LWWRegister
	logs    map[string]map[crdt.ReplicaID][]Point
	eng     map[string]*SeriesEngine
	segSize int
	onMerge func(series string, added int)
}

// apSnapshot is the anti-entropy wire shape.
type apSnapshot struct {
	Regs   map[string]*crdt.LWWRegister         `json:"regs"`
	Series map[string]map[crdt.ReplicaID][]byte `json:"series,omitempty"`
}

func (s *apState) engineLocked(name string) *SeriesEngine {
	eng, ok := s.eng[name]
	if !ok {
		eng = NewSeriesEngine(s.segSize)
		s.eng[name] = eng
	}
	return eng
}

func (s *apState) appendLocal(origin crdt.ReplicaID, series string, pts []Point) {
	s.mu.Lock()
	origins, ok := s.logs[series]
	if !ok {
		origins = make(map[crdt.ReplicaID][]Point)
		s.logs[series] = origins
	}
	origins[origin] = append(origins[origin], pts...)
	s.engineLocked(series).AppendBatch(pts)
	s.mu.Unlock()
}

// Snapshot implements gossip.State.
func (s *apState) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := apSnapshot{Regs: s.regs}
	if len(s.logs) > 0 {
		snap.Series = make(map[string]map[crdt.ReplicaID][]byte, len(s.logs))
		for name, origins := range s.logs {
			m := make(map[crdt.ReplicaID][]byte, len(origins))
			for id, pts := range origins {
				m[id] = appendPoints(nil, pts)
			}
			snap.Series[name] = m
		}
	}
	return json.Marshal(snap)
}

// Merge implements gossip.State. Series and origins are merged in
// sorted order so the merged engines — and everything derived from
// them — are deterministic run to run.
func (s *apState) Merge(remote []byte) error {
	var in apSnapshot
	if err := json.Unmarshal(remote, &in); err != nil {
		return err
	}
	type mergeNote struct {
		series string
		added  int
	}
	var notes []mergeNote
	s.mu.Lock()
	for k, r := range in.Regs {
		cur, ok := s.regs[k]
		if !ok {
			cur = crdt.NewLWWRegister()
			s.regs[k] = cur
		}
		cur.Merge(r)
	}
	names := make([]string, 0, len(in.Series))
	for name := range in.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		remOrigins := in.Series[name]
		ids := make([]string, 0, len(remOrigins))
		for id := range remOrigins {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		added := 0
		for _, ids := range ids {
			id := crdt.ReplicaID(ids)
			pts, _, err := decodePoints(nil, remOrigins[id])
			if err != nil {
				continue // corrupt origin stream: skip, keep the rest
			}
			local := s.logs[name][id]
			if len(pts) <= len(local) {
				continue // prefix already known — idempotent re-delivery
			}
			suffix := pts[len(local):]
			origins, ok := s.logs[name]
			if !ok {
				origins = make(map[crdt.ReplicaID][]Point)
				s.logs[name] = origins
			}
			origins[id] = append(local, suffix...)
			s.engineLocked(name).AppendBatch(suffix)
			added += len(suffix)
		}
		if added > 0 {
			notes = append(notes, mergeNote{series: name, added: added})
		}
	}
	hook := s.onMerge
	s.mu.Unlock()
	if hook != nil {
		for _, n := range notes {
			hook(n.series, n.added)
		}
	}
	return nil
}

// Replica is one node of the replicated store: a key-value map (the
// original E9 surface) plus the partitioned time-series ingest surface
// (AppendPoints/RangeSeries) the sharded store builds on.
type Replica struct {
	cfg   ReplicaConfig
	msg   gossip.Messenger
	sched clock.Scheduler
	id    crdt.ReplicaID

	mu      sync.Mutex
	cp      map[string]versioned
	cpTS    map[string]*cpSeries
	ap      *apState
	engine  *gossip.Engine
	nextReq uint64
	pending map[uint64]*pendingOp

	// Stats for the CAP experiment.
	OpsOK     int
	OpsFailed int
}

// NewReplica creates a replica named by msg.Self().
func NewReplica(msg gossip.Messenger, sched clock.Scheduler, cfg ReplicaConfig) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		cfg:   cfg,
		msg:   msg,
		sched: sched,
		id:    crdt.ReplicaID(msg.Self()),
		cp:    make(map[string]versioned),
		cpTS:  make(map[string]*cpSeries),
		ap: &apState{
			regs:    make(map[string]*crdt.LWWRegister),
			logs:    make(map[string]map[crdt.ReplicaID][]Point),
			eng:     make(map[string]*SeriesEngine),
			segSize: cfg.SegmentSize,
		},
		pending: make(map[uint64]*pendingOp),
	}
	if cfg.Mode == ModeAP {
		r.engine = gossip.New(msg, sched, r.ap, cfg.Gossip)
		r.engine.Start()
	} else {
		msg.SetReceiver(r.onCPMessage)
	}
	return r
}

// Stop halts background activity.
func (r *Replica) Stop() {
	if r.engine != nil {
		r.engine.Stop()
	}
}

// Mode returns the replica's mode.
func (r *Replica) Mode() Mode { return r.cfg.Mode }

// Gossip returns the AP anti-entropy engine (nil in CP mode).
func (r *Replica) Gossip() *gossip.Engine { return r.engine }

// SetMergeHook registers fn to be called after anti-entropy merges
// points into a series (AP mode only; added is the merged point count).
// The sharded store uses it to emit trace events and metrics.
func (r *Replica) SetMergeHook(fn func(series string, added int)) {
	r.ap.mu.Lock()
	r.ap.onMerge = fn
	r.ap.mu.Unlock()
}

// quorum returns the majority size for the configured cluster.
func (r *Replica) quorum() int { return r.cfg.ClusterSize/2 + 1 }

// broadcast sends m to every peer under the configured codec.
func (r *Replica) broadcast(m *rpc) {
	data, release, err := marshalRPC(r.cfg.Codec, m)
	if err != nil {
		return
	}
	for _, p := range r.msg.Peers() {
		_ = r.msg.Send(p, data)
	}
	release()
}

// send sends m to one peer under the configured codec.
func (r *Replica) send(to string, m *rpc) {
	data, release, err := marshalRPC(r.cfg.Codec, m)
	if err != nil {
		return
	}
	_ = r.msg.Send(to, data)
	release()
}

// Put stores key=val. done receives nil on success or ErrUnavailable.
func (r *Replica) Put(key string, val []byte, done func(err error)) {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		reg, ok := r.ap.regs[key]
		if !ok {
			reg = crdt.NewLWWRegister()
			r.ap.regs[key] = reg
		}
		reg.Set(int64(r.sched.Now()), r.id, val)
		r.ap.mu.Unlock()
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		if done != nil {
			done(nil)
		}
		return
	}
	r.mu.Lock()
	r.nextReq++
	reqID := r.nextReq
	ver := r.cp[key].Ver + 1
	r.cp[key] = versioned{Val: netbuf.CloneBytes(val), Ver: ver}
	op := &pendingOp{needed: r.quorum() - 1, done: func(_ []byte, err error) {
		r.finishOp(err == nil)
		if done != nil {
			done(err)
		}
	}}
	if op.needed <= 0 {
		delete(r.pending, reqID)
		r.mu.Unlock()
		r.finishOp(true)
		if done != nil {
			done(nil)
		}
		return
	}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	r.broadcast(&rpc{Kind: kindWrite, ReqID: reqID, Key: key, Val: val, Ver: ver})
}

// Get reads key. done receives the value (nil if absent) or
// ErrUnavailable in CP mode without quorum.
func (r *Replica) Get(key string, done func(val []byte, err error)) {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		var val []byte
		if reg, ok := r.ap.regs[key]; ok {
			val = netbuf.CloneBytes(reg.Value())
		}
		r.ap.mu.Unlock()
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		done(val, nil)
		return
	}
	r.mu.Lock()
	r.nextReq++
	reqID := r.nextReq
	local := r.cp[key]
	op := &pendingOp{
		needed:  r.quorum() - 1,
		bestVer: local.Ver,
		bestVal: local.Val,
		done: func(val []byte, err error) {
			r.finishOp(err == nil)
			done(val, err)
		},
	}
	if op.needed <= 0 {
		delete(r.pending, reqID)
		r.mu.Unlock()
		r.finishOp(true)
		done(local.Val, nil)
		return
	}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	r.broadcast(&rpc{Kind: kindRead, ReqID: reqID, Key: key})
}

// cpSeriesLocked returns (creating if needed) the CP state for series.
// Caller holds r.mu.
func (r *Replica) cpSeriesLocked(series string) *cpSeries {
	st, ok := r.cpTS[series]
	if !ok {
		st = &cpSeries{eng: NewSeriesEngine(r.cfg.SegmentSize)}
		r.cpTS[series] = st
	}
	return st
}

// AppendPoints ingests a batch into series. In AP mode the batch lands
// in this replica's origin log (gossip spreads it); in CP mode it is
// applied locally and quorum-acknowledged — done receives
// ErrUnavailable when a majority cannot be reached. CP appends for a
// given series must all originate at one coordinator replica (the
// sharded store routes them through replica 0 of the owning shard).
// The batch is not retained.
func (r *Replica) AppendPoints(series string, pts []Point, done func(err error)) {
	if len(pts) == 0 {
		if done != nil {
			done(nil)
		}
		return
	}
	if r.cfg.Mode == ModeAP {
		r.ap.appendLocal(r.id, series, pts)
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		if done != nil {
			done(nil)
		}
		return
	}
	r.mu.Lock()
	st := r.cpSeriesLocked(series)
	st.ver++
	ver := st.ver
	st.eng.AppendBatch(pts)
	needed := r.quorum() - 1
	if needed <= 0 { // single replica: no quorum round, no op allocation
		r.mu.Unlock()
		r.finishOp(true)
		if done != nil {
			done(nil)
		}
		return
	}
	r.nextReq++
	reqID := r.nextReq
	op := &pendingOp{needed: needed, done: func(_ []byte, err error) {
		r.finishOp(err == nil)
		if done != nil {
			done(err)
		}
	}}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	r.broadcast(&rpc{Kind: kindAppend, ReqID: reqID, Key: series, Ver: ver, Pts: pts})
}

// RangeSeries reads the points with from <= T < to. In AP mode the
// local merged view answers immediately; in CP mode a quorum is read
// and the freshest replica's answer (highest series version) wins —
// done receives ErrUnavailable when a majority cannot be reached.
func (r *Replica) RangeSeries(series string, from, to time.Duration, done func(pts []Point, err error)) {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		var pts []Point
		if eng, ok := r.ap.eng[series]; ok {
			pts = eng.Range(from, to)
		}
		r.ap.mu.Unlock()
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		done(pts, nil)
		return
	}
	r.mu.Lock()
	r.nextReq++
	reqID := r.nextReq
	st := r.cpSeriesLocked(series)
	op := &pendingOp{
		needed:  r.quorum() - 1,
		bestVer: st.ver,
		bestPts: st.eng.Range(from, to),
		donePts: func(pts []Point, err error) {
			r.finishOp(err == nil)
			done(pts, err)
		},
	}
	if op.needed <= 0 {
		local := op.bestPts
		delete(r.pending, reqID)
		r.mu.Unlock()
		r.finishOp(true)
		done(local, nil)
		return
	}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	r.broadcast(&rpc{Kind: kindRange, ReqID: reqID, Key: series, From: from, To: to})
}

// Repair pushes this replica's full CP series state to every peer
// (peers adopt any series with a higher version). The sharded store
// calls it after partitions heal so CP shards reconverge even when no
// further appends arrive; AP shards reconverge via gossip and ignore
// it. Series are pushed in sorted order for determinism.
func (r *Replica) Repair() {
	if r.cfg.Mode != ModeCP {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.cpTS))
	for name := range r.cpTS {
		names = append(names, name)
	}
	sort.Strings(names)
	type push struct {
		name string
		ver  uint64
		pts  []Point
	}
	pushes := make([]push, 0, len(names))
	for _, name := range names {
		st := r.cpTS[name]
		pushes = append(pushes, push{name: name, ver: st.ver, pts: st.eng.AppendRange(nil, minTime, maxTime)})
	}
	r.mu.Unlock()
	for _, p := range pushes {
		r.broadcast(&rpc{Kind: kindSyncReply, Key: p.name, Ver: p.ver, Pts: p.pts})
	}
}

func (r *Replica) finishOp(ok bool) {
	r.mu.Lock()
	if ok {
		r.OpsOK++
	} else {
		r.OpsFailed++
	}
	r.mu.Unlock()
}

func (r *Replica) timeoutOp(reqID uint64) {
	r.mu.Lock()
	op, ok := r.pending[reqID]
	if ok {
		delete(r.pending, reqID)
	}
	r.mu.Unlock()
	if ok {
		op.bestVal, op.bestPts = nil, nil
		op.complete(ErrUnavailable)
	}
}

func (r *Replica) onCPMessage(from string, data []byte) {
	m, err := unmarshalRPC(data)
	if err != nil {
		return
	}
	switch m.Kind {
	case kindWrite:
		r.mu.Lock()
		cur := r.cp[m.Key]
		if m.Ver > cur.Ver {
			r.cp[m.Key] = versioned{Val: m.Val, Ver: m.Ver}
		}
		r.mu.Unlock()
		r.send(from, &rpc{Kind: kindWriteAck, ReqID: m.ReqID, Key: m.Key, OK: true})
	case kindRead:
		r.mu.Lock()
		cur := r.cp[m.Key]
		r.mu.Unlock()
		r.send(from, &rpc{Kind: kindReadReply, ReqID: m.ReqID, Key: m.Key, Val: cur.Val, Ver: cur.Ver, OK: true})
	case kindAppend:
		r.mu.Lock()
		st := r.cpSeriesLocked(m.Key)
		switch {
		case m.Ver == st.ver+1: // contiguous: apply and ack
			st.eng.AppendBatch(m.Pts)
			st.ver = m.Ver
			r.mu.Unlock()
			r.send(from, &rpc{Kind: kindAppendAck, ReqID: m.ReqID, Key: m.Key, OK: true})
		case m.Ver <= st.ver: // duplicate of an applied batch: ack, don't re-apply
			r.mu.Unlock()
			r.send(from, &rpc{Kind: kindAppendAck, ReqID: m.ReqID, Key: m.Key, OK: true})
		default: // gap: this replica missed batches across a partition —
			// catch up via full-series sync instead of acking
			r.mu.Unlock()
			r.send(from, &rpc{Kind: kindSync, Key: m.Key})
		}
	case kindRange:
		r.mu.Lock()
		st := r.cpSeriesLocked(m.Key)
		ver := st.ver
		pts := st.eng.Range(m.From, m.To)
		r.mu.Unlock()
		r.send(from, &rpc{Kind: kindRangeReply, ReqID: m.ReqID, Key: m.Key, Ver: ver, Pts: pts, OK: true})
	case kindSync:
		r.mu.Lock()
		st := r.cpSeriesLocked(m.Key)
		ver := st.ver
		pts := st.eng.AppendRange(nil, minTime, maxTime)
		r.mu.Unlock()
		r.send(from, &rpc{Kind: kindSyncReply, Key: m.Key, Ver: ver, Pts: pts})
	case kindSyncReply:
		r.mu.Lock()
		st := r.cpSeriesLocked(m.Key)
		if m.Ver > st.ver { // remote is strictly fresher: adopt its history
			eng := NewSeriesEngine(r.cfg.SegmentSize)
			eng.AppendBatch(m.Pts)
			st.eng = eng
			st.ver = m.Ver
		}
		r.mu.Unlock()
	case kindWriteAck, kindReadReply, kindAppendAck, kindRangeReply:
		r.mu.Lock()
		op, ok := r.pending[m.ReqID]
		if !ok {
			r.mu.Unlock()
			return
		}
		op.acks++
		if m.Kind == kindReadReply && m.Ver > op.bestVer {
			op.bestVer = m.Ver
			op.bestVal = m.Val
		}
		if m.Kind == kindRangeReply && m.Ver > op.bestVer {
			op.bestVer = m.Ver
			op.bestPts = m.Pts
		}
		finished := op.acks >= op.needed
		if finished {
			delete(r.pending, m.ReqID)
			if op.cancel != nil {
				op.cancel()
			}
		}
		r.mu.Unlock()
		if finished {
			op.complete(nil)
		}
	}
}

// LocalValue returns the replica's local view of key (either mode),
// bypassing quorum — used to check convergence in experiments.
func (r *Replica) LocalValue(key string) []byte {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		defer r.ap.mu.Unlock()
		if reg, ok := r.ap.regs[key]; ok {
			return netbuf.CloneBytes(reg.Value())
		}
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return netbuf.CloneBytes(r.cp[key].Val)
}

// LocalSeriesRange returns the replica's local view of series points
// with from <= T < to, bypassing quorum — convergence checks and the
// scenario invariant read this.
func (r *Replica) LocalSeriesRange(series string, from, to time.Duration) []Point {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		defer r.ap.mu.Unlock()
		if eng, ok := r.ap.eng[series]; ok {
			return eng.Range(from, to)
		}
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.cpTS[series]; ok {
		return st.eng.Range(from, to)
	}
	return nil
}

// SeriesNames returns the locally known series, sorted.
func (r *Replica) SeriesNames() []string {
	var names []string
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		for name := range r.ap.logs {
			names = append(names, name)
		}
		r.ap.mu.Unlock()
	} else {
		r.mu.Lock()
		for name := range r.cpTS {
			names = append(names, name)
		}
		r.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// SeriesDigest folds the replica's time-series state into one hash;
// equal digests across a replica group mean the group has converged.
// AP hashes the CRDT origin logs (the authoritative state — merged
// engines may order equal timestamps differently per replica); CP
// hashes the canonical engine streams (single writer, same order
// everywhere).
func (r *Replica) SeriesDigest() uint64 {
	h := uint64(fnvOffset)
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		defer r.ap.mu.Unlock()
		names := make([]string, 0, len(r.ap.logs))
		for name := range r.ap.logs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h = digestString(h, name)
			origins := r.ap.logs[name]
			ids := make([]string, 0, len(origins))
			for id := range origins {
				ids = append(ids, string(id))
			}
			sort.Strings(ids)
			for _, id := range ids {
				h = digestString(h, id)
				h = digestPoints(h, origins[crdt.ReplicaID(id)])
			}
		}
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.cpTS))
	for name := range r.cpTS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h = digestString(h, name)
		h = r.cpTS[name].eng.digest(h)
	}
	return h
}

// SeriesStats sums the engine counters across the replica's series.
func (r *Replica) SeriesStats() EngineStats {
	var sum EngineStats
	add := func(st EngineStats) {
		sum.Points += st.Points
		sum.Retained += st.Retained
		sum.OutOfOrder += st.OutOfOrder
		sum.OpenPoints += st.OpenPoints
		sum.ClosedSegs += st.ClosedSegs
		sum.SegsClosed += st.SegsClosed
		sum.Compactions += st.Compactions
		sum.Evicted += st.Evicted
		sum.Bytes += st.Bytes
	}
	for _, eng := range r.seriesEngines() {
		add(eng.Stats())
	}
	return sum
}

// FlushSeries closes every open head so buffered points reach encoded
// segments.
func (r *Replica) FlushSeries() {
	for _, eng := range r.seriesEngines() {
		eng.Flush()
	}
}

// CompactSeries force-merges every series' closed segments.
func (r *Replica) CompactSeries() {
	for _, eng := range r.seriesEngines() {
		eng.Compact()
	}
}

// seriesEngines snapshots the replica's engines in sorted series order.
func (r *Replica) seriesEngines() []*SeriesEngine {
	var names []string
	byName := make(map[string]*SeriesEngine)
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		for name, eng := range r.ap.eng {
			names = append(names, name)
			byName[name] = eng
		}
		r.ap.mu.Unlock()
	} else {
		r.mu.Lock()
		for name, st := range r.cpTS {
			names = append(names, name)
			byName[name] = st.eng
		}
		r.mu.Unlock()
	}
	sort.Strings(names)
	engines := make([]*SeriesEngine, len(names))
	for i, name := range names {
		engines[i] = byName[name]
	}
	return engines
}

// String describes the replica.
func (r *Replica) String() string {
	return fmt.Sprintf("replica(%s, %s)", r.msg.Self(), r.cfg.Mode)
}
