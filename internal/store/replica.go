package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/crdt"
	"iiotds/internal/gossip"
	"iiotds/internal/netbuf"
)

// Mode selects the replica's consistency/availability trade-off.
type Mode int

// Available modes.
const (
	// ModeCP is quorum-based: reads and writes require a majority of
	// replicas and fail (ErrUnavailable) in a minority partition —
	// consistent but not available under partition.
	ModeCP Mode = iota
	// ModeAP is CRDT-based: reads and writes always succeed locally and
	// anti-entropy gossip converges replicas when connectivity allows —
	// available but only eventually consistent.
	ModeAP
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeCP {
		return "CP"
	}
	return "AP"
}

// ErrUnavailable is returned by CP operations that cannot reach a quorum
// — Brewer's CAP trade-off made concrete (paper ref [43]).
var ErrUnavailable = errors.New("store: quorum unavailable")

// ReplicaConfig tunes a replica.
type ReplicaConfig struct {
	Mode Mode
	// ClusterSize is the total number of replicas (for quorum math).
	ClusterSize int
	// QuorumTimeout bounds CP operations (default 2 s).
	QuorumTimeout time.Duration
	// Gossip tunes AP anti-entropy.
	Gossip gossip.Config
}

func (c *ReplicaConfig) applyDefaults() {
	if c.QuorumTimeout == 0 {
		c.QuorumTimeout = 2 * time.Second
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 1
	}
}

// versioned is a CP-mode stored value.
type versioned struct {
	Val []byte `json:"val"`
	Ver uint64 `json:"ver"`
}

// rpc is the CP wire format.
type rpc struct {
	Kind  string `json:"kind"` // write | write_ack | read | read_reply
	ReqID uint64 `json:"req_id"`
	Key   string `json:"key"`
	Val   []byte `json:"val,omitempty"`
	Ver   uint64 `json:"ver"`
	OK    bool   `json:"ok"`
}

// pendingOp collects quorum responses.
type pendingOp struct {
	needed  int
	acks    int
	bestVer uint64
	bestVal []byte
	done    func(val []byte, err error)
	cancel  clock.CancelFunc
}

// apState is the AP-mode CRDT map; it implements gossip.State.
type apState struct {
	mu   sync.Mutex
	regs map[string]*crdt.LWWRegister
}

// Snapshot implements gossip.State.
func (s *apState) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(s.regs)
}

// Merge implements gossip.State.
func (s *apState) Merge(remote []byte) error {
	var in map[string]*crdt.LWWRegister
	if err := json.Unmarshal(remote, &in); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, r := range in {
		cur, ok := s.regs[k]
		if !ok {
			cur = crdt.NewLWWRegister()
			s.regs[k] = cur
		}
		cur.Merge(r)
	}
	return nil
}

// Replica is one node of the replicated key-value store.
type Replica struct {
	cfg   ReplicaConfig
	msg   gossip.Messenger
	sched clock.Scheduler
	id    crdt.ReplicaID

	mu      sync.Mutex
	cp      map[string]versioned
	ap      *apState
	engine  *gossip.Engine
	nextReq uint64
	pending map[uint64]*pendingOp

	// Stats for the CAP experiment.
	OpsOK     int
	OpsFailed int
}

// NewReplica creates a replica named by msg.Self().
func NewReplica(msg gossip.Messenger, sched clock.Scheduler, cfg ReplicaConfig) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		cfg:     cfg,
		msg:     msg,
		sched:   sched,
		id:      crdt.ReplicaID(msg.Self()),
		cp:      make(map[string]versioned),
		ap:      &apState{regs: make(map[string]*crdt.LWWRegister)},
		pending: make(map[uint64]*pendingOp),
	}
	if cfg.Mode == ModeAP {
		r.engine = gossip.New(msg, sched, r.ap, cfg.Gossip)
		r.engine.Start()
	} else {
		msg.SetReceiver(r.onCPMessage)
	}
	return r
}

// Stop halts background activity.
func (r *Replica) Stop() {
	if r.engine != nil {
		r.engine.Stop()
	}
}

// Mode returns the replica's mode.
func (r *Replica) Mode() Mode { return r.cfg.Mode }

// Gossip returns the AP anti-entropy engine (nil in CP mode).
func (r *Replica) Gossip() *gossip.Engine { return r.engine }

// quorum returns the majority size for the configured cluster.
func (r *Replica) quorum() int { return r.cfg.ClusterSize/2 + 1 }

// Put stores key=val. done receives nil on success or ErrUnavailable.
func (r *Replica) Put(key string, val []byte, done func(err error)) {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		reg, ok := r.ap.regs[key]
		if !ok {
			reg = crdt.NewLWWRegister()
			r.ap.regs[key] = reg
		}
		reg.Set(int64(r.sched.Now()), r.id, val)
		r.ap.mu.Unlock()
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		if done != nil {
			done(nil)
		}
		return
	}
	r.mu.Lock()
	r.nextReq++
	reqID := r.nextReq
	ver := r.cp[key].Ver + 1
	r.cp[key] = versioned{Val: netbuf.CloneBytes(val), Ver: ver}
	op := &pendingOp{needed: r.quorum() - 1, done: func(_ []byte, err error) {
		r.finishOp(err == nil)
		if done != nil {
			done(err)
		}
	}}
	if op.needed <= 0 {
		delete(r.pending, reqID)
		r.mu.Unlock()
		r.finishOp(true)
		if done != nil {
			done(nil)
		}
		return
	}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	out, _ := json.Marshal(rpc{Kind: "write", ReqID: reqID, Key: key, Val: val, Ver: ver})
	for _, p := range r.msg.Peers() {
		_ = r.msg.Send(p, out)
	}
}

// Get reads key. done receives the value (nil if absent) or
// ErrUnavailable in CP mode without quorum.
func (r *Replica) Get(key string, done func(val []byte, err error)) {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		var val []byte
		if reg, ok := r.ap.regs[key]; ok {
			val = netbuf.CloneBytes(reg.Value())
		}
		r.ap.mu.Unlock()
		r.mu.Lock()
		r.OpsOK++
		r.mu.Unlock()
		done(val, nil)
		return
	}
	r.mu.Lock()
	r.nextReq++
	reqID := r.nextReq
	local := r.cp[key]
	op := &pendingOp{
		needed:  r.quorum() - 1,
		bestVer: local.Ver,
		bestVal: local.Val,
		done: func(val []byte, err error) {
			r.finishOp(err == nil)
			done(val, err)
		},
	}
	if op.needed <= 0 {
		delete(r.pending, reqID)
		r.mu.Unlock()
		r.finishOp(true)
		done(local.Val, nil)
		return
	}
	r.pending[reqID] = op
	op.cancel = r.sched.Schedule(r.cfg.QuorumTimeout, func() { r.timeoutOp(reqID) })
	r.mu.Unlock()

	out, _ := json.Marshal(rpc{Kind: "read", ReqID: reqID, Key: key})
	for _, p := range r.msg.Peers() {
		_ = r.msg.Send(p, out)
	}
}

func (r *Replica) finishOp(ok bool) {
	r.mu.Lock()
	if ok {
		r.OpsOK++
	} else {
		r.OpsFailed++
	}
	r.mu.Unlock()
}

func (r *Replica) timeoutOp(reqID uint64) {
	r.mu.Lock()
	op, ok := r.pending[reqID]
	if ok {
		delete(r.pending, reqID)
	}
	r.mu.Unlock()
	if ok {
		op.done(nil, ErrUnavailable)
	}
}

func (r *Replica) onCPMessage(from string, data []byte) {
	var m rpc
	if err := json.Unmarshal(data, &m); err != nil {
		return
	}
	switch m.Kind {
	case "write":
		r.mu.Lock()
		cur := r.cp[m.Key]
		if m.Ver > cur.Ver {
			r.cp[m.Key] = versioned{Val: m.Val, Ver: m.Ver}
		}
		r.mu.Unlock()
		out, _ := json.Marshal(rpc{Kind: "write_ack", ReqID: m.ReqID, Key: m.Key, OK: true})
		_ = r.msg.Send(from, out)
	case "read":
		r.mu.Lock()
		cur := r.cp[m.Key]
		r.mu.Unlock()
		out, _ := json.Marshal(rpc{Kind: "read_reply", ReqID: m.ReqID, Key: m.Key, Val: cur.Val, Ver: cur.Ver, OK: true})
		_ = r.msg.Send(from, out)
	case "write_ack", "read_reply":
		r.mu.Lock()
		op, ok := r.pending[m.ReqID]
		if !ok {
			r.mu.Unlock()
			return
		}
		op.acks++
		if m.Kind == "read_reply" && m.Ver > op.bestVer {
			op.bestVer = m.Ver
			op.bestVal = m.Val
		}
		finished := op.acks >= op.needed
		if finished {
			delete(r.pending, m.ReqID)
			if op.cancel != nil {
				op.cancel()
			}
		}
		val := op.bestVal
		r.mu.Unlock()
		if finished {
			op.done(val, nil)
		}
	}
}

// LocalValue returns the replica's local view of key (either mode),
// bypassing quorum — used to check convergence in experiments.
func (r *Replica) LocalValue(key string) []byte {
	if r.cfg.Mode == ModeAP {
		r.ap.mu.Lock()
		defer r.ap.mu.Unlock()
		if reg, ok := r.ap.regs[key]; ok {
			return netbuf.CloneBytes(reg.Value())
		}
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return netbuf.CloneBytes(r.cp[key].Val)
}

// String describes the replica.
func (r *Replica) String() string {
	return fmt.Sprintf("replica(%s, %s)", r.msg.Self(), r.cfg.Mode)
}
