package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// The segment codec. A Segment is an immutable, closed run of points
// encoded with delta-of-delta timestamps and XOR'd value bits — the
// append-optimized layout the ingest tier stores telemetry in once the
// open head of a SeriesEngine fills. Timestamps in telemetry arrive at
// near-constant cadence, so the second-order delta is almost always a
// small integer (often zero) and a varint encodes it in one byte;
// values drift slowly, so XORing consecutive float bits zeroes the
// high bytes the varint then drops.
//
// The same point-stream encoding carries ingest batches on the CP
// replication wire (rpc.go) and per-origin logs in AP anti-entropy
// snapshots (replica.go), so a reading is encoded the same way at rest
// and in flight.

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendPoints encodes pts onto dst with a leading count: the shared
// point-stream format of segments, RPC batches, and gossip snapshots.
func appendPoints(dst []byte, pts []Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	var prevT, prevDelta int64
	var prevBits uint64
	for i, p := range pts {
		t := int64(p.T)
		switch i {
		case 0:
			dst = binary.AppendUvarint(dst, zigzag(t))
			prevT = t
		default:
			delta := t - prevT
			dst = binary.AppendUvarint(dst, zigzag(delta-prevDelta))
			prevDelta = delta
			prevT = t
		}
		// XOR of consecutive float bits concentrates change in the HIGH
		// bytes (exponent + top mantissa) and zeros the low ones;
		// byte-reversing moves the zeros to the front where the varint
		// drops them — one byte for repeated values, two-three for the
		// slow drift telemetry exhibits.
		b := math.Float64bits(p.V)
		dst = binary.AppendUvarint(dst, bits.ReverseBytes64(b^prevBits))
		prevBits = b
	}
	return dst
}

// decodePoints appends the points encoded at data onto dst and returns
// the extended slice plus the number of bytes consumed.
func decodePoints(dst []Point, data []byte) ([]Point, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return dst, 0, fmt.Errorf("store: truncated point count")
	}
	if n > uint64(len(data)) { // every point takes >= 2 bytes
		return dst, 0, fmt.Errorf("store: point count %d exceeds payload", n)
	}
	off := used
	var prevT, prevDelta int64
	var prevBits uint64
	for i := uint64(0); i < n; i++ {
		u, used := binary.Uvarint(data[off:])
		if used <= 0 {
			return dst, 0, fmt.Errorf("store: truncated timestamp")
		}
		off += used
		var t int64
		if i == 0 {
			t = unzigzag(u)
		} else {
			prevDelta += unzigzag(u)
			t = prevT + prevDelta
		}
		prevT = t
		x, used := binary.Uvarint(data[off:])
		if used <= 0 {
			return dst, 0, fmt.Errorf("store: truncated value")
		}
		off += used
		prevBits ^= bits.ReverseBytes64(x)
		dst = append(dst, Point{T: time.Duration(t), V: math.Float64frombits(prevBits)})
	}
	return dst, off, nil
}

// Segment is one immutable closed run of a series: points encoded with
// the delta-of-delta codec, bracketed by their time bounds for range
// pruning. Segments are created by SeriesEngine when the open head
// fills (or by compaction merging smaller segments) and never mutated.
type Segment struct {
	data []byte
	n    int
	minT time.Duration
	maxT time.Duration
}

// newSegment encodes pts (which must be sorted by T ascending; the
// engine sorts at close) into a fresh exact-size segment. scratch is an
// optional reusable encode buffer; the (possibly grown) buffer is
// returned so callers can keep it across closes.
func newSegment(pts []Point, scratch []byte) (*Segment, []byte) {
	if len(pts) == 0 {
		panic("store: empty segment")
	}
	scratch = appendPoints(scratch[:0], pts)
	data := make([]byte, len(scratch))
	copy(data, scratch)
	return &Segment{
		data: data,
		n:    len(pts),
		minT: pts[0].T,
		maxT: pts[len(pts)-1].T,
	}, scratch
}

// Count returns the number of points in the segment.
func (s *Segment) Count() int { return s.n }

// MinT returns the earliest timestamp in the segment.
func (s *Segment) MinT() time.Duration { return s.minT }

// MaxT returns the latest timestamp in the segment.
func (s *Segment) MaxT() time.Duration { return s.maxT }

// SizeBytes returns the encoded size.
func (s *Segment) SizeBytes() int { return len(s.data) }

// AppendAll decodes every point onto dst.
func (s *Segment) AppendAll(dst []Point) []Point {
	out, _, err := decodePoints(dst, s.data)
	if err != nil {
		panic(fmt.Sprintf("store: corrupt segment: %v", err)) // encode/decode are a closed pair
	}
	return out
}

// AppendRange decodes the points with from <= T < to onto dst. The
// segment is time-sorted, so decode stops at the first point past to.
func (s *Segment) AppendRange(dst []Point, from, to time.Duration) []Point {
	if to <= s.minT || from > s.maxT {
		return dst
	}
	start := len(dst)
	dst = s.AppendAll(dst)
	kept := dst[:start]
	for _, p := range dst[start:] {
		if p.T >= from && p.T < to {
			kept = append(kept, p)
		}
	}
	return kept
}

// mergeSegments decodes and re-encodes segs into one segment, stable
// sorting by timestamp (cross-segment out-of-order arrivals are
// repaired here, preserving arrival order among equal timestamps).
// sortBuf and scratch are reusable work buffers, returned grown.
func mergeSegments(segs []*Segment, sortBuf []Point, scratch []byte) (*Segment, []Point, []byte) {
	sortBuf = sortBuf[:0]
	for _, s := range segs {
		sortBuf = s.AppendAll(sortBuf)
	}
	sort.SliceStable(sortBuf, func(i, j int) bool { return sortBuf[i].T < sortBuf[j].T })
	seg, scratch := newSegment(sortBuf, scratch)
	return seg, sortBuf, scratch
}
