package exp

import (
	"fmt"
	"time"

	"iiotds/internal/adapter"
	"iiotds/internal/registry"
)

// e1Family bundles one protocol family's fixtures.
type e1Family struct {
	name string
	dev  *registry.Device
	emu  adapter.Emulator
	caps []string
	wcap string // a writable capability
}

func e1Fixtures(devicesPerFamily int) (*adapter.Mux, []e1Family) {
	mb := adapter.NewModbusAdapter()
	mbMap := adapter.ModbusMap{
		"temp":     {Register: 100, Scale: 100, Unit: "C"},
		"setpoint": {Register: 101, Scale: 100, Unit: "C", Writable: true},
	}
	mb.RegisterModel("plc-7", mbMap)

	ga := adapter.NewGattAdapter()
	gaMap := adapter.GattMap{
		"humidity": {UUID: 0x2A6F, Unit: "%"},
		"led":      {UUID: 0xFF01, Writable: true},
	}
	ga.RegisterModel("tag-3", gaMap)

	vt := adapter.NewVendorTLVAdapter()
	vtMap := adapter.VendorMap{
		"flow":  {Tag: 'F', Unit: "l/min"},
		"valve": {Tag: 'V', Unit: "%", Writable: true},
	}
	vt.RegisterModel("fm-9", vtMap)

	mux := adapter.NewMux(mb, ga, vt)
	var fams []e1Family
	for i := 0; i < devicesPerFamily; i++ {
		mbDev := &registry.Device{
			ID: registry.DeviceID(fmt.Sprintf("press-%d", i)), Vendor: "Siematic",
			Model: "plc-7", Protocol: adapter.ProtocolModbus,
		}
		fams = append(fams, e1Family{
			name: adapter.ProtocolModbus, dev: mbDev,
			emu:  adapter.NewModbusEmulator(mbDev, mbMap),
			caps: []string{"temp", "setpoint"}, wcap: "setpoint",
		})
		gaDev := &registry.Device{
			ID: registry.DeviceID(fmt.Sprintf("tag-%d", i)), Vendor: "Nordic-ish",
			Model: "tag-3", Protocol: adapter.ProtocolBLEGatt,
		}
		fams = append(fams, e1Family{
			name: adapter.ProtocolBLEGatt, dev: gaDev,
			emu:  adapter.NewGattEmulator(gaDev, gaMap),
			caps: []string{"humidity", "led"}, wcap: "led",
		})
		vtDev := &registry.Device{
			ID: registry.DeviceID(fmt.Sprintf("flow-%d", i)), Vendor: "AcmeFluid",
			Model: "fm-9", Protocol: adapter.ProtocolVendorTLV,
		}
		fams = append(fams, e1Family{
			name: adapter.ProtocolVendorTLV, dev: vtDev,
			emu:  adapter.NewVendorTLVEmulator(vtDev, vtMap),
			caps: []string{"flow", "valve"}, wcap: "valve",
		})
	}
	return mux, fams
}

// E1Interop tests §III's interoperability claim: middleware with a
// canonical model integrates M heterogeneous/legacy protocol families
// with M adapters (instead of M·(M−1) pairwise translators), and the
// translation works in both directions for every family.
func E1Interop(s Scale) *Table {
	perFamily := 5
	rounds := 200
	if s == Full {
		perFamily = 50
		rounds = 2000
	}
	mux, fams := e1Fixtures(perFamily)
	reg := registry.New()
	for _, f := range fams {
		if err := reg.Register(f.dev); err != nil {
			panic(err)
		}
	}

	t := &Table{
		ID:      "E1",
		Title:   "Middleware interoperability across heterogeneous protocol families",
		Claim:   "§III: adapters to a canonical model integrate M families at O(M) cost, including legacy protocols",
		Columns: []string{"family", "devices", "frames decoded", "observations", "commands applied", "errors"},
	}

	type stats struct{ devices, frames, obs, cmds, errs int }
	// One trial per family fixture: each owns its emulator, and the mux's
	// adapter tables are immutable once built, so the trials fan out
	// cleanly across workers.
	perFam, rs := Sweep(fams, func(_ *Trial, f e1Family) stats {
		var st stats
		for r := 0; r < rounds/perFamily; r++ {
			for i, c := range f.caps {
				f.emu.SetState(c, 20+float64(r+i))
			}
			obs, err := mux.Decode(f.dev, f.emu.Frame(), time.Duration(r)*time.Second)
			if err != nil {
				st.errs++
				continue
			}
			st.frames++
			st.obs += len(obs)
			raw, err := mux.EncodeCommand(f.dev, registry.Command{
				Device: f.dev.ID, Cap: f.wcap, Value: float64(40 + r),
			})
			if err != nil {
				st.errs++
				continue
			}
			if err := f.emu.Apply(raw); err != nil {
				st.errs++
				continue
			}
			if v, ok := f.emu.State(f.wcap); !ok || v != float64(40+r) {
				st.errs++
				continue
			}
			st.cmds++
		}
		return st
	})
	t.Stats = rs
	perProto := map[string]*stats{}
	for i, f := range fams {
		st, ok := perProto[f.name]
		if !ok {
			st = &stats{}
			perProto[f.name] = st
		}
		st.devices++
		st.frames += perFam[i].frames
		st.obs += perFam[i].obs
		st.cmds += perFam[i].cmds
		st.errs += perFam[i].errs
	}

	totalErrs := 0
	for _, proto := range mux.Protocols() {
		st := perProto[proto]
		t.AddRow(proto, di(st.devices), di(st.frames), di(st.obs), di(st.cmds), di(st.errs))
		totalErrs += st.errs
	}
	m := len(mux.Protocols())
	t.Finding = fmt.Sprintf(
		"%d families × %d devices interoperate through %d adapters (pairwise would need %d translators); %d translation errors",
		m, perFamily, m, m*(m-1), totalErrs)
	return t
}
