package exp

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/bus"
	"iiotds/internal/coap"
	"iiotds/internal/core"
	"iiotds/internal/radio"
	"iiotds/internal/registry"
	"iiotds/internal/store"
)

// F1ThreeTier exercises Fig. 1 end to end as one coherent system: a
// sensor on a mesh leaf publishes through CoAP observe; the border
// router lifts readings into the application tier (pub/sub); a rule
// subscribes, decides, and actuates a different leaf over CoAP; the
// storage tier records the series. The measurement is the closed-loop
// sense→decide→actuate latency across all three tiers.
func F1ThreeTier(s Scale) *Table {
	rounds := 5
	if s == Full {
		rounds = 20
	}

	// F1's rounds share one deployment, so it is a single trial — wrapped
	// in the runner anyway so its kernel stats are reported like every
	// other experiment's.
	tables, rs := RunTrials(1, func(tr *Trial) *Table {
		return runF1(tr, rounds)
	})
	t := tables[0]
	t.Stats = rs
	return t
}

func runF1(tr *Trial, rounds int) *Table {
	d := core.NewDeployment(core.Config{
		Seed:        1201,
		Topology:    radio.GridTopology(16, 15),
		WithCoAP:    true,
		WithBackend: true,
	})
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)
	defer d.Close()
	d.RunUntilConverged(3 * time.Minute)

	const (
		sensorNode   = 15 // far corner
		actuatorNode = 12
	)
	// Sensing tier: leaf 15 exposes an observable temperature. All three
	// tiers run on the simulation thread (the bus delivers inline), so
	// plain variables suffice.
	temp := 20.0
	tempRes := d.Nodes[sensorNode].Server.Resource("sensors/temp").Observable().
		Get(func(string, *coap.Message) *coap.Message {
			return coap.TextResponse(fmt.Sprintf("%.2f", temp))
		})
	// Actuation tier: leaf 12 exposes a vent actuator.
	ventState := "closed"
	var ventChangedAt []time.Duration
	d.Nodes[actuatorNode].Server.Resource("actuators/vent").
		Put(func(_ string, req *coap.Message) *coap.Message {
			ventState = string(req.Payload)
			ventChangedAt = append(ventChangedAt, d.K.Now())
			return &coap.Message{Code: coap.CodeChanged}
		})

	// Border router observes the sensor and lifts readings to the bus
	// and the time-series store.
	d.Root().CoAP.Observe(strconv.Itoa(sensorNode), "sensors/temp", func(m *coap.Message, err error) {
		if err != nil {
			return
		}
		var v float64
		if _, e := fmt.Sscanf(string(m.Payload), "%f", &v); e != nil {
			return
		}
		_ = d.PublishObservation(registry.Observation{
			Device: "leaf-15", Cap: "temp", Value: v, Unit: "C", At: d.K.Now(),
		})
	})

	// Application tier: a rule opens the vent when temp exceeds 26 °C.
	commanded := 0
	if _, err := d.Bus.Subscribe("obs/leaf-15/temp", func(m bus.Message) {
		var v float64
		if _, e := fmt.Sscanf(string(m.Payload), "%f", &v); e != nil {
			return
		}
		want := "closed"
		if v > 26 {
			want = "open"
		}
		if want != ventState {
			commanded++
			d.Root().CoAP.Put(strconv.Itoa(actuatorNode), "actuators/vent",
				coap.FormatText, []byte(want), nil)
		}
	}); err != nil {
		panic(err)
	}

	t := &Table{
		ID:      "F1",
		Title:   "Fig. 1 three-tier closed loop: sense → decide → actuate",
		Claim:   "§II: the layered system behaves as a single coherent facility across sensing, logic, and storage tiers",
		Columns: []string{"round", "stimulus", "vent reacted", "loop latency"},
	}

	okRounds := 0
	var latSum time.Duration
	for r := 0; r < rounds; r++ {
		// Alternate hot and normal stimuli.
		hot := r%2 == 0
		if hot {
			temp = 30
		} else {
			temp = 20
		}
		stimulusAt := d.K.Now()
		prevChanges := len(ventChangedAt)
		tempRes.Notify(coap.FormatText, []byte(fmt.Sprintf("%.2f", temp)))
		// The bus tier delivers inline on the simulation thread, so the
		// whole loop advances on virtual time alone.
		deadline := d.K.Now() + 2*time.Minute
		for len(ventChangedAt) == prevChanges && d.K.Now() < deadline {
			d.K.RunFor(500 * time.Millisecond)
		}
		reacted := len(ventChangedAt) > prevChanges
		lat := time.Duration(0)
		if reacted {
			lat = ventChangedAt[len(ventChangedAt)-1] - stimulusAt
			okRounds++
			latSum += lat
		}
		t.AddRow(di(r+1), fmt.Sprintf("%.0f°C", temp), fmt.Sprintf("%v", reacted),
			fmt.Sprintf("%.2f s", lat.Seconds()))
	}

	series := d.TSDB.Series("obs/leaf-15/temp")
	mean := time.Duration(0)
	if okRounds > 0 {
		mean = latSum / time.Duration(okRounds)
	}
	t.Finding = fmt.Sprintf(
		"%d/%d closed loops completed across all three tiers, mean sense→actuate latency %.2f s (virtual); storage tier recorded %d samples",
		okRounds, rounds, mean.Seconds(), series.Len())
	_ = store.Point{}
	return t
}
