package exp

import (
	"fmt"
	"math/rand"
	"time"

	"iiotds/internal/redundancy"
)

// E7Redundancy tests §V-A: the three redundancy types each buy
// reliability in their own regime — information redundancy (FEC) without
// extra latency, time redundancy (ARQ) at the price of deadline misses,
// and physical redundancy (replicated sensors) masking faulty readings —
// and their costs differ exactly as the paper warns.
func E7Redundancy(s Scale) *Table {
	trials := 2000
	if s == Full {
		trials = 20000
	}
	lossRates := []float64{0.05, 0.2, 0.4, 0.6}
	const (
		k           = 4                     // FEC data blocks per group
		attemptCost = 40 * time.Millisecond // per-try latency (frame + timeout)
		deadline    = 120 * time.Millisecond
	)

	t := &Table{
		ID:      "E7",
		Title:   "Information vs time vs physical redundancy under loss",
		Claim:   "§V-A: each redundancy type is limited at the sensing layer; time redundancy conflicts with soft-realtime deadlines [42]",
		Columns: []string{"loss", "strategy", "success", "cost", "deadline misses"},
	}

	// One trial per loss rate: each owns its RNG (seeded identically, as
	// the sequential loop did), so the Monte-Carlo sweeps fan out without
	// perturbing each other's random streams.
	type e7Run struct {
		plainRate, fecRate, fecBlocks  float64
		arqRate, arqTries, arqMissRate float64
		physRate                       float64
	}
	runs, rs := Sweep(lossRates, func(_ *Trial, loss float64) e7Run {
		rng := rand.New(rand.NewSource(701))
		lk := redundancy.LinkFunc(func([]byte) bool { return rng.Float64() >= loss })
		var r e7Run

		// Plain: the same payload as the FEC case (k fragments), no
		// redundancy — every fragment must arrive.
		okPlain := 0
		for i := 0; i < trials; i++ {
			all := true
			for j := 0; j < k; j++ {
				if !lk.Try(nil) {
					all = false
				}
			}
			if all {
				okPlain++
			}
		}
		r.plainRate = float64(okPlain) / float64(trials)

		// Information redundancy: k data blocks + 1 parity, single shot.
		okFEC, blocks := 0, 0
		payload := make([]byte, 256)
		for i := 0; i < trials; i++ {
			ok, sent, err := redundancy.SendFEC(lk, payload, k)
			if err != nil {
				panic(err)
			}
			blocks += sent
			if ok {
				okFEC++
			}
		}
		r.fecRate = float64(okFEC) / float64(trials)
		r.fecBlocks = float64(blocks) / float64(trials)

		// Time redundancy: retransmit under a deadline.
		pol := redundancy.ARQPolicy{MaxRetries: 5, AttemptCost: attemptCost, Deadline: deadline}
		okARQ, misses, attempts := 0, 0, 0
		for i := 0; i < trials; i++ {
			ok, att, _, missed := pol.Send(lk, nil)
			attempts += att
			if ok {
				okARQ++
			}
			if missed {
				misses++
			}
		}
		r.arqRate = float64(okARQ) / float64(trials)
		r.arqTries = float64(attempts) / float64(trials)
		r.arqMissRate = float64(misses) / float64(trials)

		// Physical redundancy: 3 replicated sensors, one of which fails
		// to report with probability = loss; the median of survivors
		// masks loss entirely as long as one sensor reports.
		okPhys := 0
		for i := 0; i < trials; i++ {
			readings := []float64{20.1, 20.2, 20.3}
			valid := []bool{rng.Float64() >= loss, rng.Float64() >= loss, rng.Float64() >= loss}
			if _, err := redundancy.VoteMedian(readings, valid, 1); err == nil {
				okPhys++
			}
		}
		r.physRate = float64(okPhys) / float64(trials)
		return r
	})
	t.Stats = rs

	var arqMissAtHighLoss, fecAtHighLoss, plainAtModerateLoss float64
	for i, loss := range lossRates {
		r := runs[i]
		t.AddRow(pct(loss), fmt.Sprintf("none (%d frags)", k), pct(r.plainRate),
			fmt.Sprintf("%d frames", k), "0")
		t.AddRow(pct(loss), fmt.Sprintf("FEC %d+1", k), pct(r.fecRate),
			fmt.Sprintf("%.2f frames", r.fecBlocks), "0")
		t.AddRow(pct(loss), "ARQ ≤120ms", pct(r.arqRate),
			fmt.Sprintf("%.2f tries", r.arqTries),
			pct(r.arqMissRate))
		t.AddRow(pct(loss), "3x sensors", pct(r.physRate), "3 sensors", "0")

		if loss == 0.2 {
			arqMissAtHighLoss = r.arqMissRate
			fecAtHighLoss = r.fecRate
			plainAtModerateLoss = r.plainRate
		}
	}
	t.Finding = fmt.Sprintf(
		"at 20%% loss FEC lifts %d-fragment delivery from %.0f%% to %.0f%% at fixed latency; ARQ reaches higher delivery but misses its 120 ms deadline on %.1f%% of packets — the paper's time-redundancy/deadline conflict (worse at higher loss)",
		4, plainAtModerateLoss*100, fecAtHighLoss*100, arqMissAtHighLoss*100)
	return t
}
