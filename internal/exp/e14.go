package exp

import (
	"fmt"
	"strconv"
	"time"

	"iiotds/internal/coap"
	"iiotds/internal/core"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/scenario"
)

// e14Run is one churn-soak measurement: a fleet held under sustained,
// seeded fault load (crash/recover churn, link flapping, burst loss,
// partition storms) while a CoAP workload runs over it.
type e14Run struct {
	nodes      int
	cycles     int // completed crash→recover cycles
	mttf       time.Duration
	mttr       time.Duration
	avail      float64
	recoveries int
	rejoins    int
	meanRejoin time.Duration
	maxRejoin  time.Duration
	coapOK     int
	coapFail   int
}

// e14Params sizes one soak.
type e14Params struct {
	n      int
	seed   int64
	soak   time.Duration
	faults scenario.FaultSpec
	// reqEvery is the CoAP probe period; drain bounds the post-soak
	// settling phase (recoveries owed, rejoins, CON timeouts).
	reqEvery time.Duration
	drain    time.Duration
}

// e14Healthy reports whether a node is attached to the DODAG through a
// live parent (the e10 notion of repaired: right after churn, nodes can
// still point at corpses).
func e14Healthy(d *core.Deployment, id radio.NodeID) bool {
	n := d.Nodes[int(id)]
	if !n.Up() || n.Router.Partitioned() {
		return false
	}
	p := n.Router.Parent()
	return p != rpl.NoParent && d.Nodes[int(p)].Up()
}

// runE14 converges the fleet, soaks it under churn, drains, and reads
// the reliability ledger. Determinism: the churn schedule comes from the
// engine's own seeded generator, every poll iterates the churn-node
// slice (never a map), and per-node ledger stats are folded in sorted
// Components() order — so the row is byte-identical at any -parallel.
func runE14(tr *Trial, p e14Params) e14Run {
	b := scenario.Build(scenario.Spec{
		Seed:     p.seed,
		Topo:     scenario.TopoSpec{Kind: scenario.TopoGrid, N: p.n},
		WithCoAP: true,
		Faults:   p.faults,
	})
	d := b.D
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)
	d.RunUntilConverged(3 * time.Minute)

	// Arm after convergence so the reliability ledger's observation
	// window starts at steady state, not mid-join.
	b.ArmFaults()
	ledger, churn := b.Ledger, b.Churn
	churners := p.faults.Churn.Resolve(p.n)

	// Rejoin probe: every recovery opens a measurement window; a 1 s
	// poller closes it when the node is healthily attached again. A
	// re-crash while the window is open counts that recovery as a
	// failed rejoin.
	out := e14Run{nodes: p.n}
	pendingSince := make(map[radio.NodeID]time.Duration)
	var rejoinTotal time.Duration
	churn.OnRecover = func(id radio.NodeID) { pendingSince[id] = d.K.Now() }
	churn.OnCrash = func(id radio.NodeID) { delete(pendingSince, id) }
	poll := d.K.Every(time.Second, 0, func() {
		for _, id := range churners {
			t0, open := pendingSince[id]
			if !open || !e14Healthy(d, id) {
				continue
			}
			delete(pendingSince, id)
			took := d.K.Now() - t0
			out.rejoins++
			rejoinTotal += took
			if took > out.maxRejoin {
				out.maxRejoin = took
			}
		}
	})

	// CoAP workload: every churn node serves /status; the border router
	// probes them round-robin with confirmable GETs. Requests addressed
	// to a crashed node exercise the retransmit-then-ErrTimeout path.
	for _, id := range churners {
		d.Nodes[int(id)].Server.Resource("status").Get(
			func(string, *coap.Message) *coap.Message { return coap.TextResponse("ok") })
	}
	outstanding := 0
	next := 0
	workload := d.K.Every(p.reqEvery, 0, func() {
		id := churners[next%len(churners)]
		next++
		outstanding++
		d.Root().CoAP.Get(strconv.Itoa(int(id)), "status", func(m *coap.Message, err error) {
			outstanding--
			if err == nil && m.Code.IsSuccess() {
				out.coapOK++
			} else {
				out.coapFail++
			}
		})
	})

	churn.Start()
	d.K.RunFor(p.soak)
	churn.Stop()
	workload.Stop()

	// Drain: owed recoveries fire, rejoin windows close, and in-flight
	// CONs to dead incarnations finish their backoff (up to
	// ~31×AckTimeout×1.5 before ErrTimeout).
	deadline := d.K.Now() + p.drain
	for d.K.Now() < deadline {
		if outstanding == 0 && len(pendingSince) == 0 {
			settled := true
			for _, id := range churners {
				if !e14Healthy(d, id) {
					settled = false
					break
				}
			}
			if settled {
				break
			}
		}
		d.K.RunFor(time.Second)
	}
	poll.Stop()

	out.cycles = churn.Recoveries()
	out.recoveries = churn.Recoveries()
	if out.rejoins > 0 {
		out.meanRejoin = rejoinTotal / time.Duration(out.rejoins)
	}

	// Fold per-node reliability stats in sorted component order; the
	// fleet averages stay byte-stable (never SystemAvailability, whose
	// map-order float sum is not).
	now := d.K.Now()
	comps := ledger.Components()
	var mttf, mttr time.Duration
	var avail float64
	for _, name := range comps {
		s := ledger.StatsOf(name, now)
		mttf += s.MTTF
		mttr += s.MTTR
		avail += s.Availability
	}
	if len(comps) > 0 {
		out.mttf = mttf / time.Duration(len(comps))
		out.mttr = mttr / time.Duration(len(comps))
		out.avail = avail / float64(len(comps))
	}
	return out
}

// e14Faults builds the fault schedule for the soak: crash/recover churn
// over the odd-numbered half of the fleet (the root, node 0, is never
// crashed), one flapping link, one Gilbert–Elliott bursty link, and
// periodic partition storms that cleave off the far half. The spec is
// fleet-size independent; scenario.Build expands it per n.
func e14Faults(up, minUp, down, minDown, flap, part, hold time.Duration) scenario.FaultSpec {
	return scenario.FaultSpec{
		Churn:  scenario.NodeSel{Kind: "odd"},
		MeanUp: up, MinUp: minUp,
		MeanDown: down, MinDown: minDown,

		FlapLink:  [2]int{1, 2},
		FlapEvery: flap,
		FlapPRR:   0.2,

		GELink:     [2]int{5, 8},
		GEPGoodBad: 0.1, GEPBadGood: 0.3, GEBadPRR: 0.3,
		GEStep: 5 * time.Second,

		Part:      scenario.NodeSel{Kind: "farhalf"},
		PartEvery: part,
		PartHold:  hold,
	}
}

// E14ChurnSoak tests §V-A: reliability, availability, and maintainability
// are first-class requirements of the sensing-and-actuation layer — so
// the stack must survive sustained churn, not just one staged failure.
// The soak holds two fleet sizes under seeded crash/recover churn plus
// link faults for the full period, then checks that every recovered node
// rejoined the DODAG unattended and reports the ledger's availability
// figures alongside end-to-end CoAP success.
func E14ChurnSoak(s Scale) *Table {
	sizes := []int{9, 16}
	soak := 6 * time.Minute
	faults := e14Faults(25*time.Second, 25*time.Second, 5*time.Second, 5*time.Second,
		60*time.Second, 150*time.Second, 10*time.Second)
	reqEvery := 5 * time.Second
	if s == Full {
		sizes = []int{16, 36}
		soak = 30 * time.Minute
		faults = e14Faults(90*time.Second, 60*time.Second, 20*time.Second, 10*time.Second,
			120*time.Second, 400*time.Second, 15*time.Second)
		reqEvery = 10 * time.Second
	}

	t := &Table{
		ID:      "E14",
		Title:   "Churn soak: availability and self-repair under sustained faults",
		Claim:   "§V-A: reliability, availability, maintainability are first-class requirements; the layer must self-repair through continuous churn",
		Columns: []string{"nodes", "cycles", "MTTF", "MTTR", "availability", "rejoined", "rejoin mean/max", "CoAP success"},
	}

	rows, rs := Sweep(sizes, func(tr *Trial, n int) e14Run {
		return runE14(tr, e14Params{
			n:        n,
			seed:     1501 + int64(n),
			soak:     soak,
			faults:   faults,
			reqEvery: reqEvery,
			drain:    4 * time.Minute,
		})
	})
	t.Stats = rs
	for _, r := range rows {
		succ := 0.0
		if r.coapOK+r.coapFail > 0 {
			succ = float64(r.coapOK) / float64(r.coapOK+r.coapFail)
		}
		t.AddRow(di(r.nodes), di(r.cycles),
			fmt.Sprintf("%.0f s", r.mttf.Seconds()),
			fmt.Sprintf("%.1f s", r.mttr.Seconds()),
			f3(r.avail),
			fmt.Sprintf("%d/%d", r.rejoins, r.recoveries),
			fmt.Sprintf("%.1f/%.0f s", r.meanRejoin.Seconds(), r.maxRejoin.Seconds()),
			pct(succ))
	}

	last := rows[len(rows)-1]
	t.Finding = fmt.Sprintf(
		"across %d crash/recover cycles at %d nodes, %d/%d recovered nodes rejoined the DODAG unattended (mean %.1f s); fleet availability %.3f with end-to-end CoAP success %.1f%% under sustained churn",
		last.cycles, last.nodes, last.rejoins, last.recoveries, last.meanRejoin.Seconds(),
		last.avail, 100*float64(last.coapOK)/maxf(float64(last.coapOK+last.coapFail), 1))
	return t
}
