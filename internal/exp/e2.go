package exp

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"iiotds/internal/agg"
	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/scenario"
)

// collectStats summarizes one collection run.
type collectStats struct {
	n            int
	converged    bool
	coverage     float64       // fraction of node readings represented at the root per epoch
	ring1TxTime  time.Duration // transmit airtime burned by the root's radio neighbors
	meanEnergyJ  float64
	maxEnergyJ   float64
	rootMsgs     int // datagrams the root had to receive per run
	netDatagrams float64
}

// runCollection builds an n-node grid (declared as a scenario spec) and
// collects one reading per node per epoch for dur, either as raw
// per-node pushes or through in-network aggregation. It returns per-run
// statistics. It is one trial: the whole run lives on its own kernel,
// registered with tr for stats aggregation.
func runCollection(tr *Trial, n int, seed int64, useAgg bool, epoch, dur time.Duration) collectStats {
	d := scenario.Build(scenario.Spec{
		Seed: seed,
		Topo: scenario.TopoSpec{Kind: scenario.TopoGrid, N: n},
	}).D
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)
	st := collectStats{n: n}
	ok, _ := d.RunUntilConverged(3 * time.Minute)
	st.converged = ok

	for i := 1; i < n; i++ {
		i := i
		d.Nodes[i].SetSampler(func(attr string) (float64, bool) { return 20 + float64(i%10), true })
	}

	epochs := 0
	received := 0
	var represented float64
	if useAgg {
		d.Root().Agg.OnResult = func(r agg.Result) {
			epochs++
			represented += float64(r.Count)
		}
		d.Root().Agg.RunQuery(agg.Query{ID: 1, Fn: agg.Avg, Attr: "temp", Epoch: epoch, MaxDepth: 12})
	} else {
		d.Root().Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
			received++
		})
		for i := 1; i < n; i++ {
			i := i
			d.K.Every(epoch, epoch/4, func() {
				var buf [8]byte
				binary.BigEndian.PutUint64(buf[:], math.Float64bits(20+float64(i%10)))
				_ = d.Nodes[i].Router.SendUp(lowpan.ProtoRaw, buf[:])
			})
		}
	}

	startTx := ring1TxTime(d)
	d.K.RunFor(dur)

	if useAgg {
		if epochs > 0 {
			st.coverage = represented / float64(epochs) / float64(n-1)
		}
		st.rootMsgs = epochs
	} else {
		st.rootMsgs = received
		sent := float64(n-1) * (float64(dur) / float64(epoch))
		if sent > 0 {
			st.coverage = float64(received) / sent
		}
	}
	st.ring1TxTime = ring1TxTime(d) - startTx
	st.meanEnergyJ = d.M.Energy().MeanTotalJoules()
	_, st.maxEnergyJ = d.M.Energy().MaxTotalJoules()
	st.netDatagrams = d.Reg.Counter("rpl.datagrams_forwarded").Value()
	return st
}

// ring1TxTime sums transmit airtime across the root's radio neighbors —
// the funnel the paper says drains first (§IV-B).
func ring1TxTime(d *core.Deployment) time.Duration {
	var sum time.Duration
	for _, id := range d.M.NeighborsOf(0) {
		sum += d.M.Energy().Ledger(int(id)).Duration(metrics.StateTx)
	}
	return sum
}

// E2SizeScalability tests §IV-A: centralized collection (every node
// pushes raw readings to the border router) degrades as the network
// grows, while decentralized in-network aggregation keeps the root-side
// load per epoch roughly flat.
func E2SizeScalability(s Scale) *Table {
	sizes := []int{16, 36}
	dur := 2 * time.Minute
	if s == Full {
		sizes = []int{16, 36, 64, 100}
		dur = 5 * time.Minute
	}
	const epoch = 10 * time.Second

	t := &Table{
		ID:      "E2",
		Title:   "Centralized vs in-network collection as the network grows",
		Claim:   "§IV-A: sensing-layer functionality must be decentralized; central collection degrades with N",
		Columns: []string{"N", "mode", "root msgs", "ring-1 tx (s)", "mean energy (J)", "max energy (J)"},
	}

	type e2Point struct {
		n      int
		useAgg bool
	}
	var pts []e2Point
	for _, n := range sizes {
		pts = append(pts, e2Point{n, false}, e2Point{n, true})
	}
	runs, rs := Sweep(pts, func(tr *Trial, p e2Point) collectStats {
		return runCollection(tr, p.n, 101, p.useAgg, epoch, dur)
	})
	t.Stats = rs

	type point struct {
		n    int
		raw  collectStats
		aggr collectStats
	}
	var points []point
	for i, n := range sizes {
		raw, ag := runs[2*i], runs[2*i+1]
		points = append(points, point{n, raw, ag})
		t.AddRow(di(n), "raw-push", di(raw.rootMsgs), f2(raw.ring1TxTime.Seconds()), f2(raw.meanEnergyJ), f2(raw.maxEnergyJ))
		t.AddRow(di(n), "aggregate", di(ag.rootMsgs), f2(ag.ring1TxTime.Seconds()), f2(ag.meanEnergyJ), f2(ag.maxEnergyJ))
	}

	first, last := points[0], points[len(points)-1]
	rawGrowth := last.raw.ring1TxTime.Seconds() / math.Max(first.raw.ring1TxTime.Seconds(), 1e-9)
	aggGrowth := last.aggr.ring1TxTime.Seconds() / math.Max(first.aggr.ring1TxTime.Seconds(), 1e-9)
	t.Finding = fmt.Sprintf(
		"growing N %d→%d multiplies ring-1 transmit load by %.1fx under raw push but only %.1fx with in-network aggregation",
		first.n, last.n, rawGrowth, aggGrowth)
	return t
}
