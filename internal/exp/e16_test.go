package exp

import (
	"strings"
	"testing"
)

// TestE16CAPDifferential pins E16's shape: every row recovers after the
// heal, AP rows ack every batch, and CP rows lose writes for the span
// of the coordinator partition — the availability split the experiment
// exists to demonstrate.
func TestE16CAPDifferential(t *testing.T) {
	tab := E16StoreIngest(Quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows (2 modes × {1, sharded}), got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mode, failed, recovered := row[0], row[3], row[5]
		if recovered != "true" {
			t.Errorf("%s %s: did not reconverge after heal", mode, row[1])
		}
		switch mode {
		case "AP":
			if failed != "0" {
				t.Errorf("AP %s: %s batches failed; AP ingest must stay available under partition", row[1], failed)
			}
		case "CP":
			if failed == "0" {
				t.Errorf("CP %s: no batches failed; the coordinator partition never bit", row[1])
			}
		default:
			t.Errorf("unknown mode cell %q", mode)
		}
	}
}

// TestE16Knobs exercises the -store-shards / -store-mode seams: the
// shard knob renames the sharded rows, the mode knob halves the table,
// and both are model parameters — each configuration reproduces itself
// byte-identically.
func TestE16Knobs(t *testing.T) {
	SetStoreShards(4)
	SetStoreMode("ap")
	defer func() {
		SetStoreShards(0)
		SetStoreMode("")
	}()
	tab := E16StoreIngest(Quick)
	if len(tab.Rows) != 2 {
		t.Fatalf("mode knob: expected 2 AP rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[0] != "AP" {
			t.Errorf("mode knob leaked a %s row", row[0])
		}
	}
	if tab.Rows[1][1] != "4×3" {
		t.Errorf("shard knob: sharded row is %q, want 4×3", tab.Rows[1][1])
	}
	if again := E16StoreIngest(Quick); tab.String() != again.String() {
		t.Error("knobbed table is not reproducible")
	}
	if !strings.Contains(tab.Notes["engine"], "shards=4") {
		t.Errorf("engine note %q missing knob state", tab.Notes["engine"])
	}
}
