package exp

import (
	"fmt"
	"math"
	"time"
)

// E4Funneling tests §IV-B's funneling claim: the nodes within one hop of
// the border router carry the whole network's traffic under raw
// collection and drain first; in-network aggregation collapses that load
// to one merged record per child per epoch.
func E4Funneling(s Scale) *Table {
	n := 36
	dur := 3 * time.Minute
	if s == Full {
		n = 81
		dur = 10 * time.Minute
	}
	const epoch = 10 * time.Second

	runs, rs := Sweep([]bool{false, true}, func(tr *Trial, useAgg bool) collectStats {
		return runCollection(tr, n, 401, useAgg, epoch, dur)
	})
	raw, ag := runs[0], runs[1]

	t := &Table{
		ID:      "E4",
		Title:   "Load in the border-router funnel: raw collection vs aggregation",
		Claim:   "§IV-B: aggregation + pulling alleviates the heavy load near border routers [30,31]",
		Columns: []string{"mode", "root msgs", "coverage", "ring-1 tx (s)", "max node energy (J)", "datagrams fwd"},
	}
	t.Stats = rs
	t.AddRow("raw-push", di(raw.rootMsgs), pct(raw.coverage), f2(raw.ring1TxTime.Seconds()),
		f2(raw.maxEnergyJ), f1(raw.netDatagrams))
	t.AddRow("aggregate", di(ag.rootMsgs), pct(ag.coverage), f2(ag.ring1TxTime.Seconds()),
		f2(ag.maxEnergyJ), f1(ag.netDatagrams))

	reduction := raw.ring1TxTime.Seconds() / math.Max(ag.ring1TxTime.Seconds(), 1e-9)
	t.Finding = fmt.Sprintf(
		"aggregation cuts ring-1 transmit load %.1fx (%.2fs → %.2fs) at %.0f%% epoch coverage on a %d-node network",
		reduction, raw.ring1TxTime.Seconds(), ag.ring1TxTime.Seconds(), ag.coverage*100, n)
	return t
}
