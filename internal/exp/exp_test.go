package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every harness at Quick scale and checks
// the tables are well-formed. Individual shape assertions follow below.
func TestAllExperimentsQuick(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab := r.Run(Quick)
			if tab.ID != r.ID {
				t.Fatalf("table ID = %q, want %q", tab.ID, r.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("ragged row: %v", row)
				}
			}
			if tab.Finding == "" {
				t.Fatal("no finding")
			}
			if !strings.Contains(tab.String(), tab.ID) {
				t.Fatal("String() missing ID")
			}
			if !strings.Contains(tab.Markdown(), "|") {
				t.Fatal("Markdown() missing table")
			}
			t.Log("\n" + tab.String())
		})
	}
}

func TestTableAddRowValidatesArity(t *testing.T) {
	tab := &Table{ID: "X", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow("only-one")
}
