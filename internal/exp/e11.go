package exp

import (
	"bytes"
	"fmt"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/netbuf"
	"iiotds/internal/radio"
	"iiotds/internal/security"
	"iiotds/internal/sim"
)

// e11Run measures one protection mode over a one-hop link.
type e11Run struct {
	mode         string
	delivered    int
	bytesOnAir   float64
	energyJ      float64
	meanLatency  time.Duration
	attacksTried int
	attacksOK    int // attacks that *succeeded* (accepted by receiver)
}

// runE11 pushes msgs sensor readings from node 1 to node 0 over CSMA,
// optionally AEAD-protected, while an attacker node replays and tampers
// frames at the application layer. It returns delivery, overhead, and
// attack outcomes.
func runE11(tr *Trial, secured bool, msgs int, seed int64) e11Run {
	k := sim.New(seed)
	tr.Observe(k)
	m := radio.NewMedium(k, radio.DefaultParams(), nil)
	tr.ObserveMedium(k, m)
	macs := make([]*mac.CSMA, 3)
	for i := 0; i < 3; i++ {
		idx := i
		m.Attach(radio.NodeID(i), radio.Position{X: float64(i) * 8}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].RadioReceive(f)
		}))
		macs[i] = mac.NewCSMA(m, radio.NodeID(i), mac.CSMAConfig{})
		macs[i].Start()
	}

	out := e11Run{}
	var tx, rx *security.Channel
	if secured {
		ks := security.NewKeyStore()
		// Session establishment over the PSK handshake.
		psk := bytes.Repeat([]byte{0x42}, 16)
		a, b := security.NewHandshake(psk), security.NewHandshake(psk)
		m1 := a.Initiate([]byte("node1-nonce"))
		m2, kb := b.Respond(m1, []byte("node0-nonce"))
		ka := a.Complete(m2)
		if err := ks.Set(1, ka); err != nil {
			panic(err)
		}
		ks2 := security.NewKeyStore()
		if err := ks2.Set(1, kb); err != nil {
			panic(err)
		}
		var err error
		if tx, err = security.NewChannel(ks, 1); err != nil {
			panic(err)
		}
		if rx, err = security.NewChannel(ks2, 1); err != nil {
			panic(err)
		}
	}

	// The attacker captures application frames by overhearing and later
	// replays them (and injects tampered copies) toward the sink.
	var captured [][]byte
	accepted := 0
	var latSum time.Duration
	sendTimes := map[byte]sim.Time{}
	macs[0].OnReceive(func(from radio.NodeID, p []byte) {
		var plain []byte
		if secured {
			var err error
			plain, err = rx.Open(p, nil)
			if err != nil {
				return // rejected at the security layer
			}
		} else {
			plain = p
		}
		if len(plain) == 0 {
			return
		}
		accepted++
		if at, ok := sendTimes[plain[0]]; ok {
			latSum += k.Now() - at
			delete(sendTimes, plain[0])
			out.delivered++
		} else {
			// No matching live send: a replay/tamper got through.
			out.attacksOK++
		}
	})

	for i := 0; i < msgs; i++ {
		i := i
		k.Schedule(time.Duration(i)*200*time.Millisecond, func() {
			reading := []byte{byte(i), 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70}
			if secured {
				// Seal in place in a pooled buffer and hand it straight to
				// the MAC; the attacker's capture is its own copy.
				b := macs[1].Buffers().Get()
				b.Append(reading)
				tx.SealBuffer(b, nil)
				captured = append(captured, netbuf.CloneBytes(b.Bytes()))
				sendTimes[byte(i)] = k.Now()
				macs[1].SendBuf(0, b, nil)
				return
			}
			captured = append(captured, reading)
			sendTimes[byte(i)] = k.Now()
			macs[1].Send(0, reading, nil)
		})
	}
	k.RunFor(time.Duration(msgs)*200*time.Millisecond + 5*time.Second)

	// Attack phase: the adversary (node 2) replays every captured frame
	// and injects bit-flipped variants.
	attackStart := k.Now()
	for i, f := range captured {
		i, f := i, netbuf.CloneBytes(f)
		k.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			out.attacksTried += 2
			macs[2].Send(0, f, nil) // replay
			tampered := netbuf.CloneBytes(f)
			tampered[len(tampered)-1] ^= 0xFF
			macs[2].Send(0, tampered, nil) // tamper
		})
	}
	k.RunFor(time.Duration(len(captured))*100*time.Millisecond + 5*time.Second)
	_ = attackStart

	if out.delivered > 0 {
		out.meanLatency = latSum / time.Duration(out.delivered)
	}
	out.bytesOnAir = m.Registry().Counter("radio.tx_bytes").Value()
	out.energyJ = m.Energy().Ledger(1).TotalJoules() + m.Energy().Ledger(0).TotalJoules()
	if secured {
		out.mode = "AEAD+replay-window"
	} else {
		out.mode = "plain"
	}
	return out
}

// E11Security tests §V-E: the secure modes the standards define but
// deployments skip cost little — a fixed per-frame overhead — and without
// them arbitrary faults (replays, tampered frames) enter the system
// freely, violating designers' assumptions.
func E11Security(s Scale) *Table {
	msgs := 50
	if s == Full {
		msgs = 500
	}

	runs, rs := Sweep([]bool{false, true}, func(tr *Trial, secured bool) e11Run {
		return runE11(tr, secured, msgs, 1101)
	})
	plain, sec := runs[0], runs[1]

	t := &Table{
		ID:      "E11",
		Title:   "Cost of link protection vs exposure without it",
		Claim:   "§V-E: security provisions exist but are hardly implemented; unsecured layers admit arbitrary fault injection",
		Columns: []string{"mode", "delivered", "mean latency", "bytes on air", "energy (J)", "attacks accepted"},
	}
	t.Stats = rs
	for _, r := range []e11Run{plain, sec} {
		t.AddRow(r.mode, fmt.Sprintf("%d/%d", r.delivered, msgs),
			fmt.Sprintf("%.1f ms", float64(r.meanLatency.Microseconds())/1000),
			f1(r.bytesOnAir), f3(r.energyJ),
			fmt.Sprintf("%d/%d", r.attacksOK, r.attacksTried))
	}

	overheadPct := (sec.bytesOnAir - plain.bytesOnAir) / plain.bytesOnAir * 100
	t.Finding = fmt.Sprintf(
		"AEAD framing adds %d B/frame (%.0f%% on-air here) and blocks all %d injected attacks; the plain link accepted %d of %d",
		security.Overhead(), overheadPct, sec.attacksTried, plain.attacksOK, plain.attacksTried)
	return t
}
