package exp

import (
	"fmt"
	"math"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/metrics"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/spectrum"
)

// e6Regime is one coexistence strategy.
type e6Regime int

const (
	e6Uncoordinated e6Regime = iota
	e6Coordinated
	e6Adaptive
)

func (r e6Regime) String() string {
	switch r {
	case e6Uncoordinated:
		return "uncoordinated"
	case e6Coordinated:
		return "coordinated"
	default:
		return "adaptive-hop"
	}
}

// e6Tenant is one administrative domain's star network.
type e6Tenant struct {
	name     string
	macs     []*mac.CSMA
	sent     int
	ok       int
	failures metrics.Counter
}

// runE6 colocates k tenants (one sink + leaves each) in the same space —
// the construction-site scenario of §IV-C — and measures delivery under
// the given regime for dur.
func runE6(tr *Trial, kTenants, leaves int, regime e6Regime, seed int64, dur time.Duration) (delivery float64, crossCollisions float64, retriesPerMsg float64, hops int) {
	k := sim.New(seed)
	tr.Observe(k)
	reg := metrics.NewRegistry()
	m := radio.NewMedium(k, radio.DefaultParams(), reg)
	tr.ObserveMedium(k, m)

	names := make([]string, kTenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%c", 'a'+i)
	}
	var plan spectrum.Plan
	switch regime {
	case e6Coordinated:
		plan = spectrum.CoordinatedPlan(names)
	default:
		plan = spectrum.UncoordinatedPlan(names)
	}

	tenants := make([]*e6Tenant, kTenants)
	nextID := radio.NodeID(0)
	for ti, name := range names {
		t := &e6Tenant{name: name}
		tenants[ti] = t
		ch := plan.ChannelOf(name)
		// Tenant stars spread across one shared site (a construction
		// site, §IV-C): adjacent tenants hear each other, distant ones
		// are hidden terminals whose transmissions still collide at the
		// sinks in between.
		center := radio.Position{X: 15 + float64(ti)*12, Y: 25}
		n := leaves + 1
		ids := make([]radio.NodeID, n)
		for j := 0; j < n; j++ {
			id := nextID
			nextID++
			ids[j] = id
			pos := center
			if j > 0 {
				ang := 2 * math.Pi * float64(j) / float64(leaves)
				pos = radio.Position{X: center.X + 10*math.Cos(ang), Y: center.Y + 10*math.Sin(ang)}
			}
			idx := j
			m.Attach(id, pos, radio.ReceiverFunc(func(f radio.Frame) {
				t.macs[idx].RadioReceive(f)
			}))
		}
		t.macs = make([]*mac.CSMA, n)
		for j := 0; j < n; j++ {
			t.macs[j] = mac.NewCSMA(m, ids[j], mac.CSMAConfig{
				Config: mac.Config{Channel: ch, Tenant: name},
			})
			t.macs[j].Start()
		}
		// Leaves push a 48-byte reading every 300 ms: the aggregate
		// offered load saturates a single shared channel but is light
		// when tenants occupy distinct channels.
		sink := ids[0]
		payload := make([]byte, 48)
		for j := 1; j < n; j++ {
			j := j
			k.Every(200*time.Millisecond, 100*time.Millisecond, func() {
				if t.macs[j].QueueLen() > 4 {
					return // don't build unbounded backlog
				}
				t.sent++
				t.macs[j].Send(sink, payload, func(ok bool) {
					if ok {
						t.ok++
					} else {
						t.failures.Inc()
					}
				})
			})
		}
		if regime == e6Adaptive {
			tt := t
			hopper := spectrum.NewHopper(k, name, ch, &t.failures,
				spectrum.RetunerFunc(func(_ string, newCh uint8) {
					for _, mc := range tt.macs {
						mc.Retune(newCh)
					}
				}),
				spectrum.HopperConfig{Interval: 10 * time.Second, CollisionThreshold: 2})
			hopper.Start()
			defer func(h *spectrum.Hopper) { hops += h.Hops }(hopper)
		}
	}

	k.RunFor(dur)
	totalSent, totalOK := 0, 0
	for _, t := range tenants {
		totalSent += t.sent
		totalOK += t.ok
	}
	if totalSent > 0 {
		delivery = float64(totalOK) / float64(totalSent)
		// Retries are the hidden price ARQ pays to mask contention:
		// every one is airtime and energy burned on coexistence.
		retriesPerMsg = reg.CounterWith("mac.retries", metrics.L("mac", "csma")).Value() / float64(totalSent)
	}
	crossCollisions = reg.Counter("radio.collisions_cross_tenant").Value()
	return delivery, crossCollisions, retriesPerMsg, hops
}

// E6Coexistence tests §IV-C: administrative scalability requires sharing
// the spectrum; uncoordinated tenants collapse each other's delivery as
// their number grows, a coordinated plan restores it, and decentralized
// adaptive hopping approaches the coordinated outcome without any
// inter-administration agreement.
func E6Coexistence(s Scale) *Table {
	tenantCounts := []int{1, 4}
	leaves := 6
	dur := 2 * time.Minute
	if s == Full {
		tenantCounts = []int{1, 2, 4, 8}
		leaves = 8
		dur = 5 * time.Minute
	}

	t := &Table{
		ID:      "E6",
		Title:   "Multi-tenant spectrum sharing in one physical space",
		Claim:   "§IV-C: co-located systems of different administrations compete for channels [35,36]",
		Columns: []string{"tenants", "regime", "delivery", "retries/msg", "cross-tenant collisions", "hops"},
	}

	type e6Point struct {
		kT     int
		regime e6Regime
	}
	var pts []e6Point
	for _, kT := range tenantCounts {
		for _, regime := range []e6Regime{e6Uncoordinated, e6Coordinated, e6Adaptive} {
			pts = append(pts, e6Point{kT, regime})
		}
	}
	type e6Run struct {
		del, cross, retries float64
		hops                int
	}
	runs, rs := Sweep(pts, func(tr *Trial, p e6Point) e6Run {
		del, cross, retries, hops := runE6(tr, p.kT, leaves, p.regime, 601, dur)
		return e6Run{del, cross, retries, hops}
	})
	t.Stats = rs

	type outcome struct{ del, retries, cross float64 }
	results := map[e6Regime]outcome{}
	maxK := tenantCounts[len(tenantCounts)-1]
	for i, p := range pts {
		r := runs[i]
		t.AddRow(di(p.kT), p.regime.String(), pct(r.del), f2(r.retries), f1(r.cross), di(r.hops))
		if p.kT == maxK {
			results[p.regime] = outcome{r.del, r.retries, r.cross}
		}
	}
	t.Finding = fmt.Sprintf(
		"at %d co-located tenants the shared channel costs %.2f retries/msg and %.0f cross-tenant collisions (%.1f%% delivered); a spectrum plan eliminates them (%.2f retries/msg, %.1f%%); adaptive hopping gets %.2f retries/msg with no coordination",
		maxK, results[e6Uncoordinated].retries, results[e6Uncoordinated].cross, results[e6Uncoordinated].del*100,
		results[e6Coordinated].retries, results[e6Coordinated].del*100, results[e6Adaptive].retries)
	return t
}
