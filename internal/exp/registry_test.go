package exp

import "testing"

// TestRegistryAudit pins the experiment catalog: every shipped ID
// resolves through ByID exactly once, report order is stable, and the
// E12 gap is intentional (the ID was never assigned — E13/E14 landed
// under their own numbers while E12 stayed reserved; see
// EXPERIMENTS.md). If someone assigns E12 or double-registers an ID,
// this test forces them to update the documented catalog too.
func TestRegistryAudit(t *testing.T) {
	want := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E13", "E14", "E15", "E16", "F1",
	}

	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("report order: All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}

	counts := map[string]int{}
	for _, r := range all {
		counts[r.ID]++
		if r.Run == nil {
			t.Errorf("%s: nil Run", r.ID)
		}
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("%s registered %d times", id, n)
		}
	}

	for _, id := range want {
		r, ok := ByID(id)
		if !ok {
			t.Errorf("ByID(%q) did not resolve", id)
			continue
		}
		if r.ID != id {
			t.Errorf("ByID(%q) returned %s", id, r.ID)
		}
	}

	// The one hole in the numbering is deliberate; it must stay a hole
	// unless the catalog doc changes with it.
	if _, ok := ByID("E12"); ok {
		t.Error("E12 resolved: the ID is documented as intentionally unassigned (EXPERIMENTS.md); update the catalog note if it is now real")
	}
}
