package exp

import (
	"fmt"
	"time"

	"iiotds/internal/coap"
	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/scenario"
)

// E15 runs one deployment across several simulation kernels (the
// DESIGN.md §9 sharded engine) instead of fanning trials. Two
// process-wide knobs configure the engine without touching results:
// the worker count is pure execution policy (byte-identical tables at
// any setting — the CI shards-1-vs-4 gate), and the spatial-index
// switch selects the O(neighbors) cell-grid fan-out or the O(N)
// brute-force scan (identical results, different wall time — the
// BENCH_spatial.json baseline).

// shardWorkers is the worker-thread count for sharded experiments;
// <= 0 means one worker per stripe.
var shardWorkers = 0

// spatialIndex selects the cell-grid fan-out (true, default) or the
// brute-force O(N) scan.
var spatialIndex = true

// SetShardWorkers sets how many OS threads a sharded experiment fans
// its stripes across. n <= 0 restores the default (one per stripe).
// Execution policy only: tables are byte-identical at any setting.
func SetShardWorkers(n int) { shardWorkers = n }

// SetSpatialIndex selects the radio fan-out implementation: the
// cell-grid index (true, default) or the brute-force O(N) scan used as
// the before/after benchmark baseline. Results are identical either
// way; only nodes-simulated-per-wall-second changes.
func SetSpatialIndex(on bool) { spatialIndex = on }

// e15Stripes is the stripe count — a MODEL parameter (it decides which
// frames cross a shard barrier), fixed so every E15 row names one
// reproducible system regardless of the worker knob.
const e15Stripes = 8

// e15Params sizes one city-scale run.
type e15Params struct {
	n        int
	seed     int64
	converge time.Duration // DODAG convergence budget
	soak     time.Duration // workload phase
	hbEvery  time.Duration // per-node raw heartbeat period
	prEvery  time.Duration // root CoAP probe period
	probes   int           // deterministic probe-target subset size
}

// e15Run is one city-scale measurement.
type e15Run struct {
	nodes      int
	convFrac   float64
	convIn     time.Duration
	converged  bool
	heartbeats int
	delivered  int
	probeOK    int
	probeFail  int
	handoffs   uint64
	windows    uint64
	simFor     time.Duration // total virtual time advanced
	wall       time.Duration // wall clock for the same span (Notes only)
}

// runE15 builds an RGG fleet striped over e15Stripes kernels, converges
// it under a budget, then drives a CoAP probe + raw heartbeat workload
// through it. Every row cell is deterministic (virtual-time protocol
// outcomes); wall-clock throughput goes to Table.Notes.
func runE15(tr *Trial, p e15Params) e15Run {
	// HopLimit 255: at city scale the DODAG is ~40-100 hops deep, far
	// past the 32-hop default meant for room-sized fleets.
	b := scenario.BuildSharded(scenario.Spec{
		Seed: p.seed,
		Topo: scenario.TopoSpec{Kind: scenario.TopoRGG, N: p.n, Density: 6},
		Profiles: []core.Profile{{
			Name:     "city",
			WithCoAP: true,
			Router:   &rpl.Config{HopLimit: 255},
		}},
	}, e15Stripes)
	sd := b.D
	sd.G.SetWorkers(e15Workers())
	if !spatialIndex {
		for _, sh := range sd.Shards {
			sh.M.SetBruteForce(true)
		}
	}
	for _, sh := range sd.Shards {
		tr.Observe(sh.K)
	}

	out := e15Run{nodes: p.n}
	start := time.Now()
	simStart := sd.G.Now()
	out.converged, out.convIn = sd.RunUntilConverged(p.converge)
	out.convFrac = sd.ConvergedFraction()

	// Heartbeat workload: every node raw-pushes up the DODAG from its
	// own stripe's kernel. Counters are per stripe — each is written
	// only by its owning kernel goroutine — and summed after the run.
	sent := make([]int, e15Stripes)
	sd.Root().Router.Handle(lowpan.ProtoRaw, func(radio.NodeID, []byte) { out.delivered++ })
	var stops []interface{ Stop() }
	for _, n := range sd.Nodes[1:] {
		n := n
		s := sd.StripeOf(n.ID)
		stops = append(stops, sd.Shards[s].K.Every(p.hbEvery, p.hbEvery/4, func() {
			if !n.Up() {
				return
			}
			sent[s]++
			_ = n.Router.SendUp(lowpan.ProtoRaw, []byte{0x15, byte(n.ID)})
		}))
	}

	// CoAP probe workload: the root walks a fixed stride-spread subset
	// of the fleet round-robin — nearby and tens-of-hops-away targets.
	stride := (p.n - 1) / p.probes
	if stride < 1 {
		stride = 1
	}
	var targets []radio.NodeID
	for i := 0; i < p.probes && 1+i*stride < p.n; i++ {
		targets = append(targets, radio.NodeID(1+i*stride))
	}
	for _, id := range targets {
		sd.Nodes[int(id)].Server.Resource("status").Get(
			func(string, *coap.Message) *coap.Message { return coap.TextResponse("ok") })
	}
	next := 0
	rootK := sd.Shards[sd.StripeOf(0)].K
	stops = append(stops, rootK.Every(p.prEvery, 0, func() {
		id := targets[next%len(targets)]
		next++
		sd.Root().CoAP.Get(sd.Nodes[int(id)].Addr(), "status", func(m *coap.Message, err error) {
			if err == nil && m.Code.IsSuccess() {
				out.probeOK++
			} else {
				out.probeFail++
			}
		})
	}))

	sd.G.RunFor(p.soak)
	for _, s := range stops {
		s.Stop()
	}

	for _, c := range sent {
		out.heartbeats += c
	}
	out.handoffs = sd.G.Handoffs()
	out.windows = sd.G.Windows()
	out.simFor = time.Duration(sd.G.Now() - simStart)
	out.wall = time.Since(start)
	return out
}

// e15Workers resolves the worker knob to an effective count.
func e15Workers() int {
	if shardWorkers <= 0 {
		return e15Stripes
	}
	return shardWorkers
}

// E15CityScale tests §IV scalability in size at deployment scale: a
// 10k-node random-geometric city fleet striped over eight simulation
// kernels, converging one DODAG and carrying CoAP + heartbeat traffic
// across stripe boundaries. The deterministic row reports how much of
// the fleet becomes routable and what the workload delivers; the
// engine's wall-clock throughput (nodes-simulated-per-wall-second, the
// BENCH_spatial.json figure) is recorded in Notes since it is a
// property of the machine, not the model.
func E15CityScale(s Scale) *Table {
	params := []e15Params{
		{n: 192, seed: 1601, converge: 4 * time.Minute, soak: 90 * time.Second,
			hbEvery: 15 * time.Second, prEvery: 5 * time.Second, probes: 8},
		{n: 384, seed: 1602, converge: 4 * time.Minute, soak: 90 * time.Second,
			hbEvery: 15 * time.Second, prEvery: 5 * time.Second, probes: 8},
	}
	if s == Full {
		params = []e15Params{
			{n: 10000, seed: 1610, converge: 20 * time.Minute, soak: 3 * time.Minute,
				hbEvery: 60 * time.Second, prEvery: 5 * time.Second, probes: 32},
		}
	}

	t := &Table{
		ID:      "E15",
		Title:   "City-scale fleet: sharded emulation of a 10k-node RGG deployment",
		Claim:   "§IV: scalability in size is a defining IIoT property — behavior must be testable at deployment scale, not extrapolated from 100-node rooms",
		Columns: []string{"nodes", "stripes", "converged", "conv frac", "conv time", "heartbeats", "probe ok/fail", "handoffs", "windows"},
	}

	rows, rs := Sweep(params, func(tr *Trial, p e15Params) e15Run {
		return runE15(tr, p)
	})
	t.Stats = rs
	t.Note("engine", fmt.Sprintf("stripes=%d workers=%d spatial_index=%v", e15Stripes, e15Workers(), spatialIndex))
	for _, r := range rows {
		t.AddRow(di(r.nodes), di(e15Stripes),
			fmt.Sprintf("%v", r.converged),
			f3(r.convFrac),
			fmt.Sprintf("%.0f s", r.convIn.Seconds()),
			fmt.Sprintf("%d/%d", r.delivered, r.heartbeats),
			fmt.Sprintf("%d/%d", r.probeOK, r.probeFail),
			fmt.Sprintf("%d", r.handoffs),
			fmt.Sprintf("%d", r.windows))
		rate := float64(r.nodes) * r.simFor.Seconds() / maxf(r.wall.Seconds(), 1e-9)
		t.Note(fmt.Sprintf("rate_n%d", r.nodes),
			fmt.Sprintf("%.0f node-sim-seconds/wall-second (sim %.0f s in wall %.2f s)",
				rate, r.simFor.Seconds(), r.wall.Seconds()))
	}

	last := rows[len(rows)-1]
	hbPct := 0.0
	if last.heartbeats > 0 {
		hbPct = 100 * float64(last.delivered) / float64(last.heartbeats)
	}
	t.Finding = fmt.Sprintf(
		"a %d-node RGG fleet striped over %d kernels converged %.1f%% of the fleet in %.0f s of virtual time and answered %d/%d cross-stripe CoAP probes; the raw per-node uplink delivered %d of %d heartbeats (%.1f%%) — at this scale the funnel collapse E2/E4 measure in the small (§IV-A) dominates the uplink, observed under test rather than extrapolated",
		last.nodes, e15Stripes, 100*last.convFrac, last.convIn.Seconds(),
		last.probeOK, last.probeOK+last.probeFail,
		last.delivered, last.heartbeats, hbPct)
	return t
}
