package exp

import (
	"fmt"
	"time"

	"iiotds/internal/clock"
	"iiotds/internal/sim"
	"iiotds/internal/store"
)

// E16 drives the partitioned time-series store (DESIGN.md §10) through
// a coordinator partition and measures the CAP differential the paper's
// storage discussion predicts: AP shards keep acking every write and
// reconverge by anti-entropy alone, while CP shards refuse writes for
// the duration of the episode and need the post-heal repair push. Two
// process-wide knobs (-store-shards / -store-mode on iiotbench) resize
// the sharded rows; they are MODEL parameters — the table changes with
// them, deterministically — unlike E15's execution-only worker knob.

// storeShards is the partition count for the sharded rows; <= 0 means
// the default 8.
var storeShards = 0

// storeMode restricts E16 to one replication mode ("cp" or "ap");
// empty means both.
var storeMode = ""

// SetStoreShards sets the shard count P for E16's sharded rows. n <= 0
// restores the default (8). A model parameter: rows change with it.
func SetStoreShards(n int) { storeShards = n }

// SetStoreMode restricts E16 to one replication mode ("cp" or "ap");
// "" restores the default (both modes).
func SetStoreMode(mode string) { storeMode = mode }

// e16Shards resolves the shard knob.
func e16Shards() int {
	if storeShards <= 0 {
		return 8
	}
	return storeShards
}

// e16Modes resolves the mode knob to the row set.
func e16Modes() []store.Mode {
	switch storeMode {
	case "cp":
		return []store.Mode{store.ModeCP}
	case "ap":
		return []store.Mode{store.ModeAP}
	}
	return []store.Mode{store.ModeCP, store.ModeAP}
}

// e16Replicas is the replica-group size R for every row. Fixed at 3 so
// a single isolated replica cannot break CP quorum by itself — the
// episode isolates the COORDINATOR, which CP cannot route around.
const e16Replicas = 3

// e16Params sizes one store run.
type e16Params struct {
	mode      store.Mode
	shards    int
	seed      int64
	producers int           // concurrent series
	every     time.Duration // per-series append period
	pre       time.Duration // healthy ingest before the episode
	part      time.Duration // coordinator isolation span
	deadline  time.Duration // post-heal convergence budget
}

// e16Run is one store measurement.
type e16Run struct {
	acked     uint64        // batches acked to producers
	failed    uint64        // batches whose quorum round failed
	opsOK     int           // coordinator ops committed
	opsFailed int           // coordinator ops timed out
	recovered bool          // all shards digest-equal before deadline
	convIn    time.Duration // heal → first all-converged observation
	wall      time.Duration // wall clock for the run (Notes only)
}

// runE16 runs one (mode, shards) cell: batched ingest through a
// per-shard coordinator partition, heal (+ repair push for CP), then a
// poll until every shard's replicas report equal series digests. All
// row cells derive from virtual time and deterministic counters.
func runE16(tr *Trial, p e16Params) e16Run {
	start := time.Now()
	k := sim.New(p.seed)
	tr.Observe(k)
	st := store.NewSharded(clock.Kernel{K: k}, store.ShardedConfig{
		Shards: p.shards,
		Policy: store.ShardPolicy{Mode: p.mode, Replicas: e16Replicas},
		Seed:   p.seed,
		Node:   -1,
	})
	defer st.Stop()

	app := st.NewAppender()
	names := make([]string, p.producers)
	for i := range names {
		names[i] = fmt.Sprintf("plant/line%d/temp", i)
	}

	stopAt := p.pre + p.part
	healAt := stopAt + time.Second
	var reps []*sim.Repeater
	for i := range names {
		name := names[i]
		v := float64(i)
		reps = append(reps, k.Every(p.every, p.every/4, func() {
			app.Append(name, store.Point{T: time.Duration(k.Now()), V: v})
		}))
	}
	reps = append(reps, k.Every(time.Second, 0, func() { app.Flush() }))

	k.At(sim.Time(p.pre), func() { st.PartitionReplica(0) })
	k.At(sim.Time(stopAt), func() {
		for _, r := range reps {
			r.Stop()
		}
		app.Flush()
	})
	k.At(sim.Time(healAt), func() {
		st.Heal()
		st.Repair() // AP no-op; CP pushes the coordinator history
	})
	convIn := time.Duration(-1)
	poll := k.Every(100*time.Millisecond, 0, func() {
		if now := time.Duration(k.Now()); now > healAt && convIn < 0 && st.Converged() {
			convIn = now - healAt
		}
	})
	k.RunFor(sim.Time(healAt + p.deadline))
	poll.Stop()

	out := e16Run{
		acked:     app.Acked(),
		failed:    app.Failed(),
		recovered: convIn >= 0,
		convIn:    convIn,
		wall:      time.Since(start),
	}
	for _, sh := range st.Stats().Shards {
		out.opsOK += sh.OpsOK
		out.opsFailed += sh.OpsFailed
	}
	return out
}

// E16StoreIngest tests the storage-tier claim: a partitioned,
// replicated ingest path whose availability under partition is a
// per-shard policy choice. Every row isolates each shard's coordinator
// mid-ingest and reports what producers observed (acked vs failed
// batches) and how long the healed shard set took to reach digest
// equality. Wall-clock cost goes to Notes.
func E16StoreIngest(s Scale) *Table {
	base := e16Params{
		producers: 8, every: 250 * time.Millisecond,
		pre: 20 * time.Second, part: 20 * time.Second,
		deadline: 60 * time.Second,
	}
	if s == Full {
		base.producers = 32
		base.pre, base.part = time.Minute, time.Minute
	}

	var params []e16Params
	seed := int64(1701)
	for _, mode := range e16Modes() {
		for _, shards := range []int{1, e16Shards()} {
			p := base
			p.mode, p.shards, p.seed = mode, shards, seed
			seed++
			params = append(params, p)
		}
	}

	t := &Table{
		ID:      "E16",
		Title:   "Partitioned time-series ingest: availability and recovery across AP/CP shards",
		Claim:   "§V-C at the data-storage tier (§II): partition-tolerant ingest needs AP designs — the AP/CP trade is a per-shard policy, with CRDT ingest staying writable where quorum replication refuses writes",
		Columns: []string{"mode", "shards×R", "acked batches", "failed batches", "ops ok/failed", "recovered", "conv after heal"},
	}

	rows, rs := Sweep(params, func(tr *Trial, p e16Params) e16Run {
		return runE16(tr, p)
	})
	t.Stats = rs
	t.Note("engine", fmt.Sprintf("shards=%d modes=%s replicas=%d", e16Shards(), storeMode, e16Replicas))

	var apFailed, cpFailed uint64
	var apConv, cpConv time.Duration
	for i, r := range rows {
		p := params[i]
		conv := "never"
		if r.recovered {
			conv = fmt.Sprintf("%.1f s", r.convIn.Seconds())
		}
		t.AddRow(p.mode.String(),
			fmt.Sprintf("%d×%d", p.shards, e16Replicas),
			fmt.Sprintf("%d", r.acked),
			fmt.Sprintf("%d", r.failed),
			fmt.Sprintf("%d/%d", r.opsOK, r.opsFailed),
			fmt.Sprintf("%v", r.recovered),
			conv)
		t.Note(fmt.Sprintf("wall_%s_p%d", p.mode, p.shards), fmt.Sprintf("%.3f s", r.wall.Seconds()))
		if p.shards > 1 {
			if p.mode == store.ModeAP {
				apFailed, apConv = r.failed, r.convIn
			} else {
				cpFailed, cpConv = r.failed, r.convIn
			}
		}
	}

	t.Finding = fmt.Sprintf(
		"with every coordinator isolated mid-ingest, AP shards acked all writes (%d failed) and reconverged by anti-entropy %.1f s after heal, while CP shards refused %d batches for the whole episode and needed the repair push to reconverge (%.1f s) — availability under partition is a shard policy, not a store-wide constant",
		apFailed, apConv.Seconds(), cpFailed, cpConv.Seconds())
	return t
}
