package exp

import (
	"fmt"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/lowpan"
	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
	"iiotds/internal/scenario"
	"iiotds/internal/sim"
)

// e13Fleet names one fleet composition under test.
type e13Fleet struct {
	name     string
	backbone core.Profile
	leaf     core.Profile
}

// e13Fleets returns the three compositions: the heterogeneous fleet the
// profile builder exists for, plus the two homogeneous baselines. Each
// fleet uses its class-appropriate configuration — that freedom is the
// point: mains-powered CSMA backbone routers can afford fast fixed-rate
// beaconing (so duty-cycled leaves sleeping through most DIOs still
// catch one quickly), while battery leaves duty-cycle at wake.
func e13Fleets(wake time.Duration) []e13Fleet {
	fastBeacon := &rpl.Config{
		Trickle: rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 1, K: 1 << 30},
	}
	lpl := mac.LPLConfig{WakeInterval: wake}
	return []e13Fleet{
		{
			name:     "mixed",
			backbone: core.Profile{Name: "backbone", MAC: core.MACCSMA, Router: fastBeacon},
			leaf:     core.Profile{Name: "leaf", MAC: core.MACLPL, LPL: lpl},
		},
		{
			name:     "all-CSMA",
			backbone: core.Profile{Name: "backbone", MAC: core.MACCSMA},
			leaf:     core.Profile{Name: "leaf", MAC: core.MACCSMA},
		},
		{
			name:     "all-LPL",
			backbone: core.Profile{Name: "backbone", MAC: core.MACLPL, LPL: lpl},
			leaf:     core.Profile{Name: "leaf", MAC: core.MACLPL, LPL: lpl},
		},
	}
}

// e13Class is one (fleet, device class) measurement.
type e13Class struct {
	nodes     int
	radioOn   float64 // steady-state radio-on fraction over the window
	sent      int     // leaf readings originated (0 for the backbone row)
	delivered int
	meanLat   time.Duration
}

// e13Run is one fleet's measurement: per-class steady state plus
// convergence.
type e13Run struct {
	converged bool
	backbone  e13Class
	leaf      e13Class
}

// runE13 builds one fleet on the scenario cluster topology — a plant
// spine with the border router at the origin, `spine` backbone routers
// 15 m apart, and `leaves` leaf sensors hung 12 m off each — converges
// it, then has every leaf push one reading upward per period for
// window; it measures delivery, end-to-end latency, and the per-class
// radio-on fraction over the window.
func runE13(tr *Trial, fleet e13Fleet, spine, leaves int, seed int64, period, window time.Duration) e13Run {
	d := scenario.Build(scenario.Spec{
		Seed:     seed,
		Topo:     scenario.TopoSpec{Kind: scenario.TopoCluster, Heads: spine, Members: leaves},
		Profiles: []core.Profile{fleet.backbone, fleet.leaf},
	}).D
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)

	out := e13Run{}
	out.converged, _ = d.RunUntilConverged(10 * time.Minute)
	// Settle: let DAO refresh and trickle reach steady state so the
	// window measures operation, not joining.
	d.K.RunFor(time.Minute)

	leafNodes := d.NodesByProfile("leaf")
	sentAt := make([]sim.Time, 0, 256)
	var latSum time.Duration
	delivered := 0
	d.Root().Router.Handle(lowpan.ProtoRaw, func(src radio.NodeID, payload []byte) {
		if len(payload) < 2 {
			return
		}
		idx := int(payload[0])<<8 | int(payload[1])
		if idx < len(sentAt) {
			latSum += d.K.Now() - sentAt[idx]
			delivered++
		}
	})
	sent := 0
	stopAt := d.K.Now() + window
	for _, n := range leafNodes {
		n := n
		// Jitter staggers leaf reporting phases, as real sensors drift.
		d.K.Every(period, period/2, func() {
			if d.K.Now() >= stopAt {
				return // kernel keeps running past the window for stragglers
			}
			idx := len(sentAt)
			sentAt = append(sentAt, d.K.Now())
			sent++
			_ = n.Router.SendUp(lowpan.ProtoRaw, []byte{byte(idx >> 8), byte(idx), 0x5a, 0x5a})
		})
	}

	classOn := func(name string) (on time.Duration, nodes int) {
		for _, n := range d.NodesByProfile(name) {
			on += d.M.Energy().Ledger(int(n.ID)).RadioOn()
			nodes++
		}
		return on, nodes
	}
	// Always-on MACs accrue idle listening in whole-second quanta that
	// overlap tx/rx airtime, so the raw fraction can exceed 1 by the
	// traffic fraction; clamp to the physical duty cycle.
	frac := func(on time.Duration, nodes int, span time.Duration) float64 {
		f := float64(on) / float64(nodes) / float64(span)
		if f > 1 {
			f = 1
		}
		return f
	}
	bOn0, bN := classOn("backbone")
	lOn0, lN := classOn("leaf")
	start := d.K.Now()
	d.K.RunFor(window + 30*time.Second) // 30 s of grace for in-flight readings
	span := d.K.Now() - start
	bOn1, _ := classOn("backbone")
	lOn1, _ := classOn("leaf")

	out.backbone = e13Class{nodes: bN, radioOn: frac(bOn1-bOn0, bN, span)}
	out.leaf = e13Class{
		nodes:   lN,
		radioOn: frac(lOn1-lOn0, lN, span),
		sent:    sent, delivered: delivered,
	}
	if delivered > 0 {
		out.leaf.meanLat = latSum / time.Duration(delivered)
	}
	return out
}

// E13MixedFleet tests the heterogeneity the profile builder makes
// expressible (§III, §IV-B): one shared medium carrying two device
// classes — mains-powered CSMA backbone routers and LPL duty-cycled
// battery leaves — and measures §IV-B's lifetime/latency trade-off *per
// class* against both homogeneous baselines. A homogeneous fleet must
// pick one point on the trade-off for everyone; a mixed fleet buys
// near-CSMA delivery latency while the leaf class keeps a duty-cycled
// radio.
func E13MixedFleet(s Scale) *Table {
	spine, leaves := 3, 2
	wake := 250 * time.Millisecond
	period, window := 10*time.Second, 2*time.Minute
	if s == Full {
		spine, leaves = 6, 3
		window = 5 * time.Minute
	}

	t := &Table{
		ID:    "E13",
		Title: "Heterogeneous fleet: CSMA backbone + LPL leaves vs homogeneous baselines",
		Claim: "§III/§IV-B: the sensing layer is heterogeneous; per-class composition buys latency AND lifetime where a homogeneous fleet must choose",
		Columns: []string{
			"fleet", "class", "nodes", "delivered", "mean latency", "radio-on",
		},
	}

	fleets := e13Fleets(wake)
	runs, rs := Sweep(fleets, func(tr *Trial, f e13Fleet) e13Run {
		return runE13(tr, f, spine, leaves, 1301, period, window)
	})
	t.Stats = rs

	for i, f := range fleets {
		r := runs[i]
		t.AddRow(f.name, fmt.Sprintf("backbone(%s)", macName(f.backbone.MAC)),
			di(r.backbone.nodes), "-", "-", pct(r.backbone.radioOn))
		t.AddRow(f.name, fmt.Sprintf("leaf(%s)", macName(f.leaf.MAC)),
			di(r.leaf.nodes),
			fmt.Sprintf("%d/%d", r.leaf.delivered, r.leaf.sent),
			fmt.Sprintf("%.0f ms", float64(r.leaf.meanLat.Milliseconds())),
			pct(r.leaf.radioOn))
	}

	mixed, csma, lpl := runs[0], runs[1], runs[2]
	t.Finding = fmt.Sprintf(
		"the mixed fleet delivers leaf readings in %.0f ms (all-LPL: %.0f ms, %.1fx slower) while its leaves keep a %.1f%% duty cycle (all-CSMA leaves: %.0f%%); on one medium the classes diverge %.0fx in radio-on time (backbone %.0f%% vs leaf %.1f%%)",
		float64(mixed.leaf.meanLat.Milliseconds()),
		float64(lpl.leaf.meanLat.Milliseconds()),
		float64(lpl.leaf.meanLat)/maxf(float64(mixed.leaf.meanLat), 1),
		mixed.leaf.radioOn*100, csma.leaf.radioOn*100,
		mixed.backbone.radioOn/maxf(mixed.leaf.radioOn, 1e-9),
		mixed.backbone.radioOn*100, mixed.leaf.radioOn*100)
	return t
}

// macName renders a MACKind for table rows.
func macName(k core.MACKind) string {
	switch k {
	case core.MACLPL:
		return "LPL"
	case core.MACRIMAC:
		return "RI-MAC"
	default:
		return "CSMA"
	}
}
