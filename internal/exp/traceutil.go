package exp

import (
	"iiotds/internal/radio"
	"iiotds/internal/sim"
	"iiotds/internal/trace"
)

// ObserveMedium attaches a flight recorder to a hand-built radio medium
// and registers it with the trial, sized by trace.DefaultCapacity().
// Experiments that assemble their own stack (rather than going through
// core.NewDeployment) call this right after radio.NewMedium so their
// MAC/radio events land in the sweep's trace summary. Returns nil — and
// records nothing — when tracing is disabled, so the emit fast paths
// stay allocation-free.
func (t *Trial) ObserveMedium(k *sim.Kernel, m *radio.Medium) *trace.Recorder {
	c := trace.DefaultCapacity()
	if c <= 0 {
		return nil
	}
	rec := trace.New(c, k.Now)
	m.SetRecorder(rec)
	t.ObserveTrace(rec)
	return rec
}
