package exp

import (
	"fmt"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/radio"
	"iiotds/internal/rpl"
)

// e10Run is one self-healing measurement.
type e10Run struct {
	variant     string
	reconverged bool
	reconvTime  time.Duration
	controlMsgs float64 // routing control messages per node-minute, steady state
	switches    float64
}

// runE10 converges an n-node grid, measures steady-state control
// overhead, kills `kills` non-root nodes at once, and measures the time
// until every survivor is joined again.
func runE10(tr *Trial, n int, seed int64, trickle rpl.TrickleConfig, kills []int, observe time.Duration) e10Run {
	cfg := core.Config{Seed: seed, Topology: radio.GridTopology(n, 15)}
	cfg.Router.Trickle = trickle
	d := core.NewDeployment(cfg)
	tr.Observe(d.K)
	tr.ObserveTrace(d.Trace)
	d.RunUntilConverged(3 * time.Minute)

	// Steady-state beaconing cost over 2 minutes. Probes and DAOs run
	// at fixed rates in both variants; the DIO rate is what adaptive
	// (trickle) vs fixed beaconing changes.
	ctrl := func() float64 { return d.Reg.Counter("rpl.dio_sent").Value() }
	before := ctrl()
	d.K.RunFor(2 * time.Minute)
	steady := (ctrl() - before) / float64(n) / 2 // DIOs per node-minute

	switchesBefore := d.Reg.Counter("rpl.parent_switches").Value()
	for _, v := range kills {
		d.Crash(radio.NodeID(v))
	}
	killAt := d.K.Now()

	out := e10Run{controlMsgs: steady}
	deadline := killAt + observe
	for d.K.Now() < deadline {
		healthy := true
		for i, node := range d.Nodes {
			if i == 0 || !node.Up() {
				continue
			}
			// Repaired means: attached, and not through a dead parent
			// (right after the kill survivors still point at corpses).
			p := node.Router.Parent()
			if node.Router.Partitioned() || p == rpl.NoParent || !d.Nodes[int(p)].Up() {
				healthy = false
				break
			}
		}
		if healthy {
			out.reconverged = true
			out.reconvTime = d.K.Now() - killAt
			break
		}
		d.K.RunFor(time.Second)
	}
	out.switches = d.Reg.Counter("rpl.parent_switches").Value() - switchesBefore
	return out
}

// E10SelfHealing tests §V-D: the routing layer is self-organizing — it
// heals around simultaneous node failures without operator action — and
// trickle's adaptive beaconing keeps the steady-state maintenance cost
// low compared to fixed-rate beaconing at the same reactivity.
func E10SelfHealing(s Scale) *Table {
	n := 25
	observe := 4 * time.Minute
	kills := []int{6, 12} // interior forwarders
	if s == Full {
		n = 64
		observe = 6 * time.Minute
		kills = []int{9, 18, 27, 36}
	}

	adaptive := rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 6, K: 3}
	// Fixed-rate beaconing at the adaptive scheme's reactive rate:
	// Imin 500 ms, one doubling (Imax 1 s), no suppression.
	fixed := rpl.TrickleConfig{Imin: 500 * time.Millisecond, Doublings: 1, K: 1 << 30}

	t := &Table{
		ID:      "E10",
		Title:   "Self-healing after node failures; maintenance cost of beaconing",
		Claim:   "§V-D: networking protocols at this layer are largely self-organized; adaptive beaconing keeps that affordable",
		Columns: []string{"beaconing", "killed", "reconverged", "repair time", "DIOs/node/min", "parent switches"},
	}

	variants := []struct {
		name string
		cfg  rpl.TrickleConfig
	}{{"trickle (adaptive)", adaptive}, {"fixed-rate", fixed}}
	rows, rs := Sweep(variants, func(tr *Trial, v struct {
		name string
		cfg  rpl.TrickleConfig
	}) e10Run {
		r := runE10(tr, n, 1001, v.cfg, kills, observe)
		r.variant = v.name
		return r
	})
	t.Stats = rs
	for _, r := range rows {
		repair := "never"
		if r.reconverged {
			repair = fmt.Sprintf("%.0f s", r.reconvTime.Seconds())
		}
		t.AddRow(r.variant, di(len(kills)), fmt.Sprintf("%v", r.reconverged), repair,
			f2(r.controlMsgs), f1(r.switches))
	}

	t.Finding = fmt.Sprintf(
		"the network healed %d simultaneous failures in %.0f s unattended; trickle beacons %.1f DIOs/node/min in steady state vs %.1f for fixed-rate beaconing (%.0fx less)",
		len(kills), rows[0].reconvTime.Seconds(), rows[0].controlMsgs, rows[1].controlMsgs,
		rows[1].controlMsgs/maxf(rows[0].controlMsgs, 0.01))
	return t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
