package exp

import (
	"fmt"
	"time"

	"iiotds/internal/mac"
	"iiotds/internal/radio"
	"iiotds/internal/sim"
)

// chainLatency measures mean end-to-end latency of packets forwarded hop
// by hop along an (hops+1)-node chain under the given MAC factory, plus
// the per-node radio-on fraction.
func chainLatency(tr *Trial, hops int, seed int64, packets int, mk func(m *radio.Medium, id radio.NodeID, idx, n int) mac.MAC) (mean time.Duration, radioOnFrac float64, delivered int) {
	n := hops + 1
	k := sim.New(seed)
	tr.Observe(k)
	// 18 m spacing: neighbors are reliable, two-hop links are out of
	// range, so the topology is a true chain.
	params := radio.DefaultParams()
	m := radio.NewMedium(k, params, nil)
	tr.ObserveMedium(k, m)
	macs := make([]mac.MAC, n)
	for i := 0; i < n; i++ {
		id := radio.NodeID(i)
		idx := i
		m.Attach(id, radio.Position{X: float64(i) * 18}, radio.ReceiverFunc(func(f radio.Frame) {
			macs[idx].(radio.Receiver).RadioReceive(f)
		}))
	}
	for i := 0; i < n; i++ {
		macs[i] = mk(m, radio.NodeID(i), i, n)
		macs[i].Start()
	}
	// Forward toward node 0.
	for i := 1; i < n; i++ {
		i := i
		macs[i].OnReceive(func(_ radio.NodeID, p []byte) {
			macs[i].Send(radio.NodeID(i-1), p, nil)
		})
	}
	var sentAt []sim.Time
	var total time.Duration
	macs[0].OnReceive(func(_ radio.NodeID, p []byte) {
		idx := int(p[0])
		if idx < len(sentAt) {
			total += k.Now() - sentAt[idx]
			delivered++
		}
	})
	// Let duty-cycle schedules settle, then send spaced packets.
	k.RunFor(5 * time.Second)
	gap := 10 * time.Second
	for p := 0; p < packets; p++ {
		p := p
		k.Schedule(time.Duration(p)*gap, func() {
			sentAt = append(sentAt, k.Now())
			macs[n-1].Send(radio.NodeID(n-2), []byte{byte(p)}, nil)
		})
	}
	start := k.Now()
	k.RunFor(time.Duration(packets)*gap + 30*time.Second)
	if delivered > 0 {
		mean = total / time.Duration(delivered)
	}
	var on time.Duration
	for i := 0; i < n; i++ {
		on += m.Energy().Ledger(i).RadioOn()
	}
	radioOnFrac = float64(on) / float64(n) / float64(k.Now()-start)
	return mean, radioOnFrac, delivered
}

// E3DutyCycleLatency tests §IV-B: with duty-cycled (LPL) MACs, multi-hop
// latency is dominated by wake intervals — seconds over a few hops —
// while a tightly synchronized TDMA pipeline crosses one hop per slot.
func E3DutyCycleLatency(s Scale) *Table {
	hopCounts := []int{2, 4, 8}
	wakes := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond}
	packets := 6
	if s == Full {
		hopCounts = []int{2, 4, 8, 12, 16}
		wakes = []time.Duration{125 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond, time.Second}
		packets = 20
	}
	const slot = 10 * time.Millisecond

	t := &Table{
		ID:      "E3",
		Title:   "End-to-end latency over duty-cycled multi-hop paths",
		Claim:   "§IV-B: packets take ~wake/2 per duty-cycled hop (seconds over few hops); synchronized pipelines minimize it",
		Columns: []string{"MAC", "hops", "mean latency", "per hop", "radio-on", "delivered"},
	}

	// Flatten the hops × MAC grid into one trial list so every chain run
	// fans out independently; rows and the finding are derived from the
	// merged results in the original order.
	type e3Point struct {
		label string
		hops  int
		isLPL bool
		mk    func(m *radio.Medium, id radio.NodeID, idx, n int) mac.MAC
	}
	var pts []e3Point
	for _, hops := range hopCounts {
		for _, wake := range wakes {
			w := wake
			pts = append(pts, e3Point{
				label: fmt.Sprintf("LPL w=%v", w), hops: hops, isLPL: true,
				mk: func(m *radio.Medium, id radio.NodeID, idx, n int) mac.MAC {
					return mac.NewLPL(m, id, mac.LPLConfig{WakeInterval: w})
				},
			})
		}
		// RI-MAC: same duty-cycle class as LPL, rendezvous via receiver
		// beacons instead of sender strobes.
		pts = append(pts, e3Point{
			label: "RI-MAC w=500ms", hops: hops,
			mk: func(m *radio.Medium, id radio.NodeID, idx, n int) mac.MAC {
				return mac.NewRIMAC(m, id, mac.RIMACConfig{BeaconInterval: 500 * time.Millisecond})
			},
		})
		// TDMA pipeline: slot i owned by depth maxDepth-i.
		pts = append(pts, e3Point{
			label: "TDMA pipeline", hops: hops,
			mk: func(m *radio.Medium, id radio.NodeID, idx, n int) mac.MAC {
				maxDepth := n - 1
				tx := maxDepth - idx
				var rx []int
				if idx < n-1 {
					rx = []int{maxDepth - idx - 1}
				}
				cfg := mac.TDMAConfig{SlotDuration: slot, SlotsPerEpoch: n, TxSlot: tx, RxSlots: rx}
				if idx == 0 {
					cfg.TxSlot = -1
				}
				return mac.NewTDMA(m, id, cfg)
			},
		})
	}

	type e3Run struct {
		mean time.Duration
		on   float64
		got  int
	}
	runs, rs := Sweep(pts, func(tr *Trial, p e3Point) e3Run {
		mean, on, got := chainLatency(tr, p.hops, 301, packets, p.mk)
		return e3Run{mean, on, got}
	})
	t.Stats = rs

	var lplWorst, tdmaAtWorst time.Duration
	for i, p := range pts {
		r := runs[i]
		t.AddRow(p.label, di(p.hops),
			fmt.Sprintf("%.0f ms", float64(r.mean.Milliseconds())),
			fmt.Sprintf("%.0f ms", float64(r.mean.Milliseconds())/float64(p.hops)),
			pct(r.on), fmt.Sprintf("%d/%d", r.got, packets))
		if p.isLPL && r.mean > lplWorst {
			lplWorst = r.mean
		}
		if p.label == "TDMA pipeline" && p.hops == hopCounts[len(hopCounts)-1] {
			tdmaAtWorst = r.mean
		}
	}
	speedup := float64(lplWorst) / float64(tdmaAtWorst+1)
	t.Finding = fmt.Sprintf(
		"LPL latency grows with hops×wake/2 (worst %.1f s); the synchronized pipeline crosses the longest chain in %.0f ms (~%.0fx faster)",
		lplWorst.Seconds(), float64(tdmaAtWorst.Milliseconds()), speedup)
	return t
}
