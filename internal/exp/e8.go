package exp

import (
	"fmt"

	"iiotds/internal/hvac"
)

// E8HVAC runs the paper's §V-B worked example: three control policies on
// the same building week, showing safety as a continuum — soft comfort
// margins that flex with occupancy, deliberately traded against energy,
// with the provider's revenue coupled to both.
func E8HVAC(s Scale) *Table {
	cfg := hvac.DefaultSimConfig()
	if s == Quick {
		cfg.Days = 3
	} else {
		cfg.Days = 14
	}

	t := &Table{
		ID:      "E8",
		Title:   "HVAC comfort/energy trade-off across control policies",
		Claim:   "§V-B: soft safety margins can vary with occupancy and be deliberately violated to save energy, with revenue tied to both",
		Columns: []string{"controller", "energy (kWh)", "comfort violations (min)", "severity (°C·min)", "net revenue"},
	}

	// hvac.Simulate is self-contained (its RNG comes from cfg.Seed), so
	// the three policies run as parallel trials.
	results, rs := Sweep(hvac.Controllers(), func(_ *Trial, c hvac.Controller) hvac.Result {
		return hvac.Simulate(c, cfg)
	})
	t.Stats = rs
	baseline := results[0].EnergyKWh // strict = the no-savings reference
	const (
		pricePerKWh      = 0.20
		penaltyPerDegMin = 0.002
	)
	var revenues []float64
	for _, r := range results {
		rev := pricePerKWh*(baseline-r.EnergyKWh) - penaltyPerDegMin*r.SeverityDegMin
		revenues = append(revenues, rev)
		t.AddRow(r.Controller, f1(r.EnergyKWh), f1(r.ComfortViolationMin), f1(r.SeverityDegMin),
			fmt.Sprintf("%+.2f", rev))
	}

	best, bestIdx := revenues[0], 0
	for i, r := range revenues {
		if r > best {
			best, bestIdx = r, i
		}
	}
	t.Finding = fmt.Sprintf(
		"occupancy-aware margins save %.0f%% energy vs strict (%.1f vs %.1f kWh) at %.0f min of comfort violations; %q maximizes contract revenue",
		(1-results[2].EnergyKWh/results[0].EnergyKWh)*100,
		results[2].EnergyKWh, results[0].EnergyKWh,
		results[2].ComfortViolationMin, results[bestIdx].Controller)
	return t
}
