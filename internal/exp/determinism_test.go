package exp

import (
	"testing"
)

// render flattens a table to the exact bytes a user sees; byte equality
// of this string is the determinism contract under test.
func render(t *Table) string { return t.String() + "\n" + t.Markdown() }

// TestDeterminismSameSeedSameTable runs every registered experiment twice
// at Quick scale (each harness carries its own fixed seed) and asserts
// the rendered tables are byte-identical — the DESIGN.md §5 regression
// gate.
func TestDeterminismSameSeedSameTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			a := render(r.Run(Quick))
			b := render(r.Run(Quick))
			if a != b {
				t.Fatalf("two runs of %s differ:\n--- first ---\n%s\n--- second ---\n%s", r.ID, a, b)
			}
		})
	}
}

// TestParallelMatchesSequential proves the tentpole property: for every
// experiment, the table produced with the trial fan-out across all cores
// is byte-identical to the one produced by a single sequential worker.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// Parallelism is a package global, so the two configurations must not
	// interleave; run every experiment sequentially at 1 worker first.
	seq := map[string]string{}
	stats := map[string]RunStats{}
	SetParallelism(1)
	for _, r := range All() {
		tab := r.Run(Quick)
		seq[r.ID] = render(tab)
		stats[r.ID] = tab.Stats
	}
	SetParallelism(0) // default: GOMAXPROCS
	defer SetParallelism(0)
	for _, r := range All() {
		tab := r.Run(Quick)
		if got := render(tab); got != seq[r.ID] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				r.ID, seq[r.ID], got)
		}
		// The aggregated kernel stats are order-independent sums/maxes, so
		// they must match too.
		if tab.Stats != stats[r.ID] {
			t.Errorf("%s: parallel stats %+v differ from sequential %+v", r.ID, tab.Stats, stats[r.ID])
		}
	}
}

// TestStatsPopulated checks that the kernel-backed experiments actually
// report event counters through the runner.
func TestStatsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	withKernels := map[string]bool{
		"E2": true, "E3": true, "E4": true, "E5": true, "E6": true,
		"E9": true, "E10": true, "E11": true, "F1": true,
	}
	for _, r := range All() {
		tab := r.Run(Quick)
		if tab.Stats.Trials == 0 {
			t.Errorf("%s: no trials reported", r.ID)
		}
		if withKernels[r.ID] && tab.Stats.Events.Fired == 0 {
			t.Errorf("%s: expected kernel events, stats = %+v", r.ID, tab.Stats)
		}
	}
}
