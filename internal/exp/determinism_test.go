package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"iiotds/internal/core"
	"iiotds/internal/fault"
	"iiotds/internal/radio"
	"iiotds/internal/scenario"
	"iiotds/internal/trace"
)

// render flattens a table to the exact bytes a user sees; byte equality
// of this string is the determinism contract under test.
func render(t *Table) string { return t.String() + "\n" + t.Markdown() }

// TestDeterminismSameSeedSameTable runs every registered experiment twice
// at Quick scale (each harness carries its own fixed seed) and asserts
// the rendered tables are byte-identical — the DESIGN.md §5 regression
// gate.
func TestDeterminismSameSeedSameTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			a := render(r.Run(Quick))
			b := render(r.Run(Quick))
			if a != b {
				t.Fatalf("two runs of %s differ:\n--- first ---\n%s\n--- second ---\n%s", r.ID, a, b)
			}
		})
	}
}

// TestParallelMatchesSequential proves the tentpole property: for every
// experiment, the table produced with the trial fan-out across all cores
// is byte-identical to the one produced by a single sequential worker.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	// Parallelism is a package global, so the two configurations must not
	// interleave; run every experiment sequentially at 1 worker first.
	seq := map[string]string{}
	stats := map[string]RunStats{}
	SetParallelism(1)
	for _, r := range All() {
		tab := r.Run(Quick)
		seq[r.ID] = render(tab)
		stats[r.ID] = tab.Stats
	}
	SetParallelism(0) // default: GOMAXPROCS
	defer SetParallelism(0)
	for _, r := range All() {
		tab := r.Run(Quick)
		if got := render(tab); got != seq[r.ID] {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				r.ID, seq[r.ID], got)
		}
		// The aggregated kernel stats are order-independent sums/maxes
		// (and the trace summary an order-independent merge), so they
		// must match too.
		if !reflect.DeepEqual(tab.Stats, stats[r.ID]) {
			t.Errorf("%s: parallel stats %+v differ from sequential %+v", r.ID, tab.Stats, stats[r.ID])
		}
	}
}

// TestTraceDeterminism turns the flight recorder on and asserts the
// strongest observability contract in ISSUE.md: for every experiment,
// the full JSONL event stream (every trial, in trial order) plus the
// rendered table is byte-identical between a single-worker run and a
// fully parallel run — and therefore also between repeated runs.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	old := trace.DefaultCapacity()
	trace.SetDefaultCapacity(1 << 15)
	defer trace.SetDefaultCapacity(old)
	defer SetTraceSink(nil)

	// capture renders each experiment's complete trace: a JSONL dump per
	// trial (drained by the sink in trial-index order) plus the table.
	capture := func() map[string]string {
		out := map[string]string{}
		for _, r := range All() {
			var buf bytes.Buffer
			SetTraceSink(func(i int, rec *trace.Recorder) {
				fmt.Fprintf(&buf, "# trial %d\n", i)
				if err := rec.WriteJSONL(&buf, trace.All()); err != nil {
					t.Fatalf("%s: WriteJSONL: %v", r.ID, err)
				}
			})
			tab := r.Run(Quick)
			out[r.ID] = buf.String() + "\n" + render(tab)
		}
		return out
	}

	SetParallelism(1)
	seq := capture()
	SetParallelism(0) // default: GOMAXPROCS
	defer SetParallelism(0)
	par := capture()

	for _, r := range All() {
		if seq[r.ID] != par[r.ID] {
			a, b := seq[r.ID], par[r.ID]
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := max(0, i-200)
			t.Errorf("%s: parallel trace differs from sequential at byte %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				r.ID, i, a[lo:min(len(a), i+200)], b[lo:min(len(b), i+200)])
		}
	}
}

// TestChurnDeterminism pins the churn engine's reproducibility contract
// at the experiment level: the same (built-in) seeds produce
// byte-identical E14 tables whether the two soak trials run on one
// worker or fan out across eight, and a different churn seed produces a
// genuinely different fault schedule (same infrastructure, different
// draws).
func TestChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	r, ok := ByID("E14")
	if !ok {
		t.Fatal("E14 not registered")
	}
	SetParallelism(1)
	seq := render(r.Run(Quick))
	SetParallelism(8)
	par := render(r.Run(Quick))
	SetParallelism(0)
	defer SetParallelism(0)
	if seq != par {
		t.Fatalf("E14 at -parallel 8 differs from -parallel 1:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}

	// Different seeds ⇒ different schedules: drive a small deployment
	// with two churn engines that differ only in seed and compare the
	// crash timelines from the fault-layer trace events.
	schedule := func(seed int64) []string {
		d := core.NewDeployment(core.Config{
			Seed: 42, Topology: radio.GridTopology(9, 15),
			TraceCapacity: 1 << 14,
		})
		d.RunUntilConverged(3 * time.Minute)
		inj := fault.NewInjector(d.K, d.M, d, nil)
		inj.SetRecorder(d.Trace)
		churn := fault.NewChurn(inj, seed, fault.ChurnConfig{
			Nodes:  []radio.NodeID{1, 3, 5, 7},
			MeanUp: 20 * time.Second, MinUp: 10 * time.Second,
			MeanDown: 5 * time.Second, MinDown: 2 * time.Second,
		})
		churn.Start()
		d.K.RunFor(4 * time.Minute)
		churn.Stop()
		var events []string
		for _, ev := range d.Trace.Events() {
			if ev.Type == trace.FaultCrash || ev.Type == trace.FaultRecover {
				events = append(events, fmt.Sprintf("%d %s %d", ev.At, ev.Type, ev.Node))
			}
		}
		return events
	}
	a, b := schedule(1), schedule(2)
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("no churn events recorded: %d vs %d", len(a), len(b))
	}
	if reflect.DeepEqual(a, b) {
		t.Fatalf("seeds 1 and 2 produced identical %d-event schedules", len(a))
	}
	if again := schedule(1); !reflect.DeepEqual(a, again) {
		t.Fatalf("seed 1 replay produced a different schedule")
	}
}

// TestScenarioQuickDeterminism pins the property harness to the same
// parallelism contract as the experiment tables: a fixed-seed
// scenario.Quick sweep produces a byte-identical report log (including
// the FNV digest over every trial's full Result) on one worker and on
// eight. The harness fans triples across the same trial runner the
// experiments use, so this is the end-to-end proof that a CI property
// failure replays identically on a laptop at any -parallel.
func TestScenarioQuickDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	cfg := scenario.QuickConfig{Triples: 12, Seed: 5}
	SetParallelism(1)
	seq := scenario.Quick(cfg)
	SetParallelism(8)
	par := scenario.Quick(cfg)
	SetParallelism(0)
	defer SetParallelism(0)
	if seq.Log != par.Log {
		t.Fatalf("scenario.Quick log at -parallel 8 differs from -parallel 1:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.Log, par.Log)
	}
	if seq.Failed() {
		t.Fatalf("clean stack failed the property sweep:\n%s", seq.Log)
	}
}

// TestShardWorkerInvariance is the sharded-engine analogue of
// TestParallelMatchesSequential: E15's table must be byte-identical
// whether its eight stripes execute on one OS thread or four — worker
// count is execution policy, never model (the CI shards-1-vs-4 gate).
// The brute-force fan-out must also reproduce the indexed table
// exactly: the spatial index is an optimization, not a model change.
func TestShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	r, ok := ByID("E15")
	if !ok {
		t.Fatal("E15 not registered")
	}
	SetShardWorkers(1)
	seq := render(r.Run(Quick))
	SetShardWorkers(4)
	par := render(r.Run(Quick))
	SetShardWorkers(0)
	defer SetShardWorkers(0)
	if seq != par {
		t.Fatalf("E15 at 4 shard workers differs from 1:\n--- 1 ---\n%s\n--- 4 ---\n%s", seq, par)
	}
	SetSpatialIndex(false)
	brute := render(r.Run(Quick))
	SetSpatialIndex(true)
	if brute != seq {
		t.Fatalf("E15 with brute-force fan-out differs from indexed:\n--- indexed ---\n%s\n--- brute ---\n%s", seq, brute)
	}
}

// TestStatsPopulated checks that the kernel-backed experiments actually
// report event counters through the runner.
func TestStatsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	withKernels := map[string]bool{
		"E2": true, "E3": true, "E4": true, "E5": true, "E6": true,
		"E9": true, "E10": true, "E11": true, "E13": true, "E14": true,
		"E15": true, "E16": true, "F1": true,
	}
	for _, r := range All() {
		tab := r.Run(Quick)
		if tab.Stats.Trials == 0 {
			t.Errorf("%s: no trials reported", r.ID)
		}
		if withKernels[r.ID] && tab.Stats.Events.Fired == 0 {
			t.Errorf("%s: expected kernel events, stats = %+v", r.ID, tab.Stats)
		}
	}
}
